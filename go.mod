module smartrpc

go 1.22

package srpc_test

import (
	"errors"
	"testing"

	srpc "smartrpc"
)

// listSchema registers a singly linked list node type.
func listSchema(t *testing.T) *srpc.Registry {
	t.Helper()
	reg := srpc.NewRegistry()
	reg.MustRegister(&srpc.TypeDesc{
		ID:   1,
		Name: "Node",
		Fields: []srpc.Field{
			{Name: "next", Kind: srpc.KindPtr, Elem: 1},
			{Name: "val", Kind: srpc.KindInt64},
		},
	})
	if err := reg.Validate(); err != nil {
		t.Fatal(err)
	}
	return reg
}

// twoRuntimes wires two runtimes over a local network via the public API.
func twoRuntimes(t *testing.T, reg *srpc.Registry) (*srpc.Runtime, *srpc.Runtime) {
	t.Helper()
	net, err := srpc.NewLocalNetwork(srpc.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	an, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := srpc.New(srpc.Options{ID: 1, Node: an, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b, err := srpc.New(srpc.Options{ID: 2, Node: bn, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return a, b
}

// buildList creates a linked list 1..n in rt's heap and returns its head.
func buildList(t *testing.T, rt *srpc.Runtime, n int) srpc.Value {
	t.Helper()
	head := srpc.NullPtr(1)
	for i := n; i >= 1; i-- {
		v, err := rt.NewObject(1)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := rt.Deref(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.SetInt("val", 0, int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := ref.SetPtr("next", 0, head); err != nil {
			t.Fatal(err)
		}
		head = v
	}
	return head
}

func TestPublicAPIQuickstart(t *testing.T) {
	reg := listSchema(t)
	a, b := twoRuntimes(t, reg)
	err := b.Register("sum", func(ctx *srpc.Ctx, args []srpc.Value) ([]srpc.Value, error) {
		total := int64(0)
		v := args[0]
		for !v.IsNullPtr() {
			ref, err := ctx.Runtime().Deref(v)
			if err != nil {
				return nil, err
			}
			n, err := ref.Int("val", 0)
			if err != nil {
				return nil, err
			}
			total += n
			if v, err = ref.Ptr("next", 0); err != nil {
				return nil, err
			}
		}
		return []srpc.Value{srpc.Int64Value(total)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	head := buildList(t, a, 100)
	if err := a.BeginSession(); err != nil {
		t.Fatal(err)
	}
	res, err := a.Call(2, "sum", []srpc.Value{head})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.EndSession(); err != nil {
		t.Fatal(err)
	}
	if got := res[0].Int64(); got != 5050 {
		t.Errorf("remote sum = %d, want 5050", got)
	}
}

func TestPublicAPIErrorsMatchable(t *testing.T) {
	reg := listSchema(t)
	a, _ := twoRuntimes(t, reg)
	if _, err := a.Call(2, "sum", nil); !errors.Is(err, srpc.ErrNoSession) {
		t.Errorf("err = %v, want ErrNoSession", err)
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	reg := listSchema(t)
	for _, pol := range []srpc.Policy{srpc.PolicySmart, srpc.PolicyEager, srpc.PolicyLazy} {
		net, err := srpc.NewLocalNetwork(srpc.NetModel{})
		if err != nil {
			t.Fatal(err)
		}
		an, _ := net.Attach(1)
		bn, _ := net.Attach(2)
		a, err := srpc.New(srpc.Options{ID: 1, Node: an, Registry: reg, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		b, err := srpc.New(srpc.Options{ID: 2, Node: bn, Registry: reg, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		err = b.Register("len", func(ctx *srpc.Ctx, args []srpc.Value) ([]srpc.Value, error) {
			n := int64(0)
			v := args[0]
			for !v.IsNullPtr() {
				ref, err := ctx.Runtime().Deref(v)
				if err != nil {
					return nil, err
				}
				n++
				if v, err = ref.Ptr("next", 0); err != nil {
					return nil, err
				}
			}
			return []srpc.Value{srpc.Int64Value(n)}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		head := buildList(t, a, 17)
		if err := a.BeginSession(); err != nil {
			t.Fatal(err)
		}
		res, err := a.Call(2, "len", []srpc.Value{head})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if err := a.EndSession(); err != nil {
			t.Fatal(err)
		}
		if res[0].Int64() != 17 {
			t.Errorf("%v: len = %d", pol, res[0].Int64())
		}
		_ = a.Close()
		_ = b.Close()
		_ = net.Close()
	}
}

func TestPublicAPIOverTCP(t *testing.T) {
	reg := listSchema(t)
	serverNode, err := srpc.ListenTCP(2, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	clientNode, err := srpc.ListenTCP(1, "127.0.0.1:0", map[uint32]string{2: serverNode.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	server, err := srpc.New(srpc.Options{ID: 2, Node: serverNode, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	client, err := srpc.New(srpc.Options{ID: 1, Node: clientNode, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })

	err = server.Register("sumAll", func(ctx *srpc.Ctx, args []srpc.Value) ([]srpc.Value, error) {
		total := int64(0)
		v := args[0]
		for !v.IsNullPtr() {
			ref, err := ctx.Runtime().Deref(v)
			if err != nil {
				return nil, err
			}
			n, err := ref.Int("val", 0)
			if err != nil {
				return nil, err
			}
			total += n
			if v, err = ref.Ptr("next", 0); err != nil {
				return nil, err
			}
		}
		return []srpc.Value{srpc.Int64Value(total)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	head := buildList(t, client, 25)
	if err := client.BeginSession(); err != nil {
		t.Fatal(err)
	}
	res, err := client.Call(2, "sumAll", []srpc.Value{head})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.EndSession(); err != nil {
		t.Fatal(err)
	}
	if got := res[0].Int64(); got != 325 {
		t.Errorf("sum over TCP = %d, want 325", got)
	}
}

func TestPublicAPIHeterogeneous(t *testing.T) {
	reg := listSchema(t)
	net, err := srpc.NewLocalNetwork(srpc.NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	an, _ := net.Attach(1)
	bn, _ := net.Attach(2)
	a, err := srpc.New(srpc.Options{ID: 1, Node: an, Registry: reg, Profile: srpc.SPARC32()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b, err := srpc.New(srpc.Options{ID: 2, Node: bn, Registry: reg, Profile: srpc.Alpha64()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	err = b.Register("first", func(ctx *srpc.Ctx, args []srpc.Value) ([]srpc.Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		v, err := ref.Int("val", 0)
		if err != nil {
			return nil, err
		}
		return []srpc.Value{srpc.Int64Value(v)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	head := buildList(t, a, 3)
	if err := a.BeginSession(); err != nil {
		t.Fatal(err)
	}
	res, err := a.Call(2, "first", []srpc.Value{head})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.EndSession(); err != nil {
		t.Fatal(err)
	}
	if res[0].Int64() != 1 {
		t.Errorf("first = %d", res[0].Int64())
	}
}

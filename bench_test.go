package srpc_test

// One benchmark per table and figure of the paper's evaluation (§4), plus
// the design-choice ablations from DESIGN.md §5 and micro-benchmarks of
// the substrate hot paths.
//
// The figure benchmarks report the deterministic modeled time of the
// experiment ("model-s" metric) next to the host wall-clock; the modeled
// numbers are the ones comparable to the paper (see EXPERIMENTS.md).
// Benchmarks default to a 8191-node tree so `go test -bench .` stays
// fast; `cmd/srpcbench` runs the full 32,767-node sweeps.

import (
	"fmt"
	"testing"

	srpc "smartrpc"
	"smartrpc/internal/bench"
	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
	"smartrpc/internal/swizzle"
	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
	"smartrpc/internal/xdr"
)

const benchNodes = 8191

func benchModel() netsim.Model { return netsim.Ethernet10SPARC() }

func runTreeBench(b *testing.B, cfg bench.TreeConfig) {
	b.Helper()
	var last bench.TreeResult
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTree(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Time.Seconds(), "model-s")
	b.ReportMetric(float64(last.Callbacks), "callbacks")
	b.ReportMetric(float64(last.Bytes), "net-bytes")
}

// BenchmarkTable1 regenerates the data allocation table illustration.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 measures processing time against access ratio for the
// three methods (Figure 4).
func BenchmarkFig4(b *testing.B) {
	policies := map[string]core.Policy{
		"eager": core.PolicyEager,
		"lazy":  core.PolicyLazy,
		"smart": core.PolicySmart,
	}
	for _, ratio := range []float64{0, 0.5, 1.0} {
		for name, pol := range policies {
			b.Run(fmt.Sprintf("policy=%s/ratio=%.1f", name, ratio), func(b *testing.B) {
				runTreeBench(b, bench.TreeConfig{
					Policy:      pol,
					Nodes:       benchNodes,
					AccessRatio: ratio,
					Model:       benchModel(),
				})
			})
		}
	}
}

// BenchmarkFig5 measures callback counts for lazy vs smart (Figure 5).
func BenchmarkFig5(b *testing.B) {
	for _, pol := range []core.Policy{core.PolicyLazy, core.PolicySmart} {
		b.Run(fmt.Sprintf("policy=%s", pol), func(b *testing.B) {
			runTreeBench(b, bench.TreeConfig{
				Policy:      pol,
				Nodes:       benchNodes,
				AccessRatio: 1.0,
				Model:       benchModel(),
			})
		})
	}
}

// BenchmarkFig6 measures the closure-size sweep with repeated searches
// (Figure 6).
func BenchmarkFig6(b *testing.B) {
	for _, closure := range []int{512, 4096, 8192, 65536} {
		b.Run(fmt.Sprintf("closure=%d", closure), func(b *testing.B) {
			runTreeBench(b, bench.TreeConfig{
				Nodes:       benchNodes,
				ClosureSize: closure,
				AccessRatio: 1.0,
				Repeats:     10,
				Model:       benchModel(),
			})
		})
	}
}

// BenchmarkFig7 measures update vs read-only cost (Figure 7).
func BenchmarkFig7(b *testing.B) {
	for _, update := range []bool{false, true} {
		b.Run(fmt.Sprintf("update=%v", update), func(b *testing.B) {
			runTreeBench(b, bench.TreeConfig{
				Nodes:       benchNodes,
				AccessRatio: 0.5,
				Update:      update,
				Model:       benchModel(),
			})
		})
	}
}

// BenchmarkAblationPageSize sweeps the protection grain.
func BenchmarkAblationPageSize(b *testing.B) {
	for _, ps := range []int{512, 4096, 16384} {
		b.Run(fmt.Sprintf("page=%d", ps), func(b *testing.B) {
			runTreeBench(b, bench.TreeConfig{
				Nodes:       benchNodes,
				AccessRatio: 0.5,
				PageSize:    ps,
				Model:       benchModel(),
			})
		})
	}
}

// BenchmarkAblationTraversal compares BFS and DFS closure orders.
func BenchmarkAblationTraversal(b *testing.B) {
	for _, tr := range []core.Traversal{core.TraverseBFS, core.TraverseDFS} {
		name := "bfs"
		if tr == core.TraverseDFS {
			name = "dfs"
		}
		b.Run(name, func(b *testing.B) {
			runTreeBench(b, bench.TreeConfig{
				Nodes:       benchNodes,
				AccessRatio: 1.0,
				Traversal:   tr,
				Model:       benchModel(),
			})
		})
	}
}

// BenchmarkAblationCoherence compares piggyback vs naive write-back.
func BenchmarkAblationCoherence(b *testing.B) {
	for _, co := range []core.Coherence{core.CoherencePiggyback, core.CoherenceWriteBack} {
		name := "piggyback"
		if co == core.CoherenceWriteBack {
			name = "writeback"
		}
		b.Run(name, func(b *testing.B) {
			runTreeBench(b, bench.TreeConfig{
				Nodes:       benchNodes,
				AccessRatio: 0.5,
				Update:      true,
				Coherence:   co,
				Model:       benchModel(),
			})
		})
	}
}

// BenchmarkAblationAllocPolicy compares the per-origin page heuristic
// against mixed packing on a two-origin workload.
func BenchmarkAblationAllocPolicy(b *testing.B) {
	for _, ap := range []swizzle.AllocPolicy{swizzle.PolicyPerOrigin, swizzle.PolicyMixed} {
		name := "per-origin"
		if ap == swizzle.PolicyMixed {
			name = "mixed"
		}
		b.Run(name, func(b *testing.B) {
			var last bench.TreeResult
			for i := 0; i < b.N; i++ {
				res, err := bench.RunTwoOriginSearch(benchModel(), 256, ap)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Time.Seconds(), "model-s")
			b.ReportMetric(float64(last.Callbacks), "callbacks")
		})
	}
}

// BenchmarkAblationAllocBatching compares batched remote allocation with
// the modeled per-operation alternative.
func BenchmarkAblationAllocBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.BatchingAblation(benchModel(), 500)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].Time.Seconds(), "batched-model-s")
			b.ReportMetric(rows[1].Time.Seconds(), "per-op-model-s")
		}
	}
}

// --- substrate micro-benchmarks (host time) ---

// BenchmarkXDREncodeNode measures canonical encoding of one tree node.
func BenchmarkXDREncodeNode(b *testing.B) {
	e := xdr.NewEncoder(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutUint32(1)
		e.PutUint32(0x1000)
		e.PutUint32(1)
		e.PutUint32(1)
		e.PutUint32(0x2000)
		e.PutUint32(1)
		e.PutInt64(42)
	}
}

// BenchmarkSwizzle measures long-pointer translation (table hit).
func BenchmarkSwizzle(b *testing.B) {
	sp, err := vmem.NewSpace(vmem.Config{})
	if err != nil {
		b.Fatal(err)
	}
	reg := bench.NewRegistry()
	tb := swizzle.New(sp, reg, 1, swizzle.PolicyPerOrigin)
	lp := wire.LongPtr{Space: 2, Addr: 0x1000, Type: bench.NodeType}
	if _, _, err := tb.Swizzle(lp); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tb.Swizzle(lp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachedAccess measures a read of cached remote data: the cost
// the paper claims is "exactly the same as the cost to access ordinary
// local data" (plus our software MMU check).
func BenchmarkCachedAccess(b *testing.B) {
	sp, err := vmem.NewSpace(vmem.Config{})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := sp.Alloc(16, 8)
	if err != nil {
		b.Fatal(err)
	}
	if err := sp.WriteUint(addr, 8, 42); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.ReadUint(addr, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNullCall measures a scalar-only RPC round trip over the
// in-process transport (host time).
func BenchmarkNullCall(b *testing.B) {
	net, err := srpc.NewLocalNetwork(srpc.NetModel{})
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	reg := bench.NewRegistry()
	an, _ := net.Attach(1)
	bn, _ := net.Attach(2)
	caller, err := core.New(core.Options{ID: 1, Node: an, Registry: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer caller.Close()
	callee, err := core.New(core.Options{ID: 2, Node: bn, Registry: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer callee.Close()
	err = callee.Register("echo", func(ctx *core.Ctx, args []core.Value) ([]core.Value, error) {
		return args, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := caller.BeginSession(); err != nil {
		b.Fatal(err)
	}
	defer caller.EndSession()
	arg := []core.Value{core.Int64Value(7)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := caller.Call(2, "echo", arg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTypeLayout measures layout computation with the registry cache.
func BenchmarkTypeLayout(b *testing.B) {
	reg := bench.NewRegistry()
	p := srpc.SPARC32()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Layout(types.ID(1), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationClosureHint compares unrestricted closure traversal
// against a programmer-supplied "left"-only shape hint on a path walk.
func BenchmarkAblationClosureHint(b *testing.B) {
	for _, hint := range []bool{false, true} {
		name := "none"
		if hint {
			name = "left-only"
		}
		b.Run(name, func(b *testing.B) {
			var last bench.TreeResult
			for i := 0; i < b.N; i++ {
				res, err := bench.RunPathWalk(benchModel(), 12, 8192, hint)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Time.Seconds(), "model-s")
			b.ReportMetric(float64(last.Bytes), "net-bytes")
		})
	}
}

// BenchmarkAblationChainCoherence compares the circulating piggyback
// protocol against naive write-back on a three-space update chain.
func BenchmarkAblationChainCoherence(b *testing.B) {
	for _, co := range []core.Coherence{core.CoherencePiggyback, core.CoherenceWriteBack} {
		name := "piggyback"
		if co == core.CoherenceWriteBack {
			name = "writeback"
		}
		b.Run(name, func(b *testing.B) {
			var last bench.TreeResult
			for i := 0; i < b.N; i++ {
				res, err := bench.RunChainUpdate(benchModel(), 8, co)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Time.Seconds(), "model-s")
			b.ReportMetric(float64(last.Messages), "messages")
		})
	}
}

package srpc

import (
	"smartrpc/internal/arch"
	"smartrpc/internal/core"
	"smartrpc/internal/nameserver"
	"smartrpc/internal/netsim"
	"smartrpc/internal/swizzle"
	"smartrpc/internal/transport"
	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
)

// Core runtime types.
type (
	// Runtime is one address space's Smart RPC runtime system.
	Runtime = core.Runtime
	// Options configures a Runtime.
	Options = core.Options
	// Value is one RPC argument or result.
	Value = core.Value
	// Ref is a dereferenced pointer with field accessors.
	Ref = core.Ref
	// Ctx carries session context into handlers (callbacks, nested RPC).
	Ctx = core.Ctx
	// Handler is a remote procedure body.
	Handler = core.Handler
	// Policy selects the pointer-transfer strategy.
	Policy = core.Policy
	// Traversal selects the closure traversal order.
	Traversal = core.Traversal
	// Coherence selects the coherency protocol variant.
	Coherence = core.Coherence
	// Stats is a snapshot of a runtime's counters.
	Stats = core.Stats
	// CacheStats is a snapshot of the cached working set (§3.4).
	CacheStats = core.CacheStats
)

// Policies, traversals and coherence protocols.
const (
	// PolicySmart is the paper's proposed method.
	PolicySmart = core.PolicySmart
	// PolicyEager is the fully eager baseline (whole closure up front).
	PolicyEager = core.PolicyEager
	// PolicyLazy is the fully lazy baseline (callback per dereference).
	PolicyLazy = core.PolicyLazy

	// TraverseBFS is the paper's breadth-first closure traversal.
	TraverseBFS = core.TraverseBFS
	// TraverseDFS is the depth-first ablation.
	TraverseDFS = core.TraverseDFS

	// CoherencePiggyback ships dirty data with the thread of control.
	CoherencePiggyback = core.CoherencePiggyback
	// CoherenceWriteBack sends dirty data home on each transfer.
	CoherenceWriteBack = core.CoherenceWriteBack
)

// Sentinel errors re-exported for matching with errors.Is.
var (
	// ErrNoSession is returned by Call outside an RPC session.
	ErrNoSession = core.ErrNoSession
	// ErrSessionBusy reports a conflicting concurrent session.
	ErrSessionBusy = core.ErrSessionBusy
	// ErrUnknownProc reports a call to an unregistered procedure.
	ErrUnknownProc = core.ErrUnknownProc
	// ErrDeadline reports a remote round trip that exceeded
	// Options.CallTimeout (a crashed or partitioned peer).
	ErrDeadline = core.ErrDeadline
	// ErrInvariant reports a coherency invariant violation detected by
	// the runtime's self-checks (enabled with Options.CheckInvariants).
	ErrInvariant = core.ErrInvariant
	// ErrOriginRestarted reports an origin whose reply carried a new
	// restart incarnation mid-relationship: every address imported from
	// it refers to a heap that no longer exists. The session must be
	// abandoned and re-imported; retrying cannot help.
	ErrOriginRestarted = core.ErrOriginRestarted
)

// New creates and starts a runtime attached to a transport node.
func New(opts Options) (*Runtime, error) { return core.New(opts) }

// Value constructors.
var (
	// Int64Value builds a signed integer argument.
	Int64Value = core.Int64Value
	// Uint64Value builds an unsigned integer argument.
	Uint64Value = core.Uint64Value
	// Float64Value builds a double-precision argument.
	Float64Value = core.Float64Value
	// BoolValue builds a boolean argument.
	BoolValue = core.BoolValue
	// NullPtr builds a null pointer of the given element type.
	NullPtr = core.NullPtr
)

// Type database (schema) surface.
type (
	// Registry is the type database shared by all runtimes.
	Registry = types.Registry
	// TypeDesc describes one structured data type.
	TypeDesc = types.Desc
	// Field is one member of a TypeDesc.
	Field = types.Field
	// Kind is a field's element kind.
	Kind = types.Kind
	// TypeID identifies a type across the distributed system.
	TypeID = types.ID
)

// Field kinds.
const (
	KindInt8    = types.Int8
	KindUint8   = types.Uint8
	KindInt16   = types.Int16
	KindUint16  = types.Uint16
	KindInt32   = types.Int32
	KindUint32  = types.Uint32
	KindInt64   = types.Int64
	KindUint64  = types.Uint64
	KindFloat32 = types.Float32
	KindFloat64 = types.Float64
	KindBool    = types.Bool
	KindPtr     = types.Ptr
)

// NewRegistry creates an empty type database.
func NewRegistry() *Registry { return types.NewRegistry() }

// Transport surface.
type (
	// Node is one space's attachment to a network.
	Node = transport.Node
	// LocalNetwork is the in-process message switch with deterministic
	// cost accounting.
	LocalNetwork = transport.Network
	// TCPNode is a node communicating over real TCP connections.
	TCPNode = transport.TCPNode
	// NetModel is the linear network cost model used by LocalNetwork.
	NetModel = netsim.Model
	// NetClock accumulates modeled network time.
	NetClock = netsim.Clock
	// NetStats counts messages and bytes.
	NetStats = netsim.Stats
)

// NewLocalNetwork creates an in-process network charging each message to
// model. Pass a zero NetModel for a free (untimed) network.
func NewLocalNetwork(model NetModel) (*LocalNetwork, error) {
	return transport.NewNetwork(model, nil, nil)
}

// NewLocalNetworkWithInstruments creates an in-process network with an
// externally owned clock and counters (both may be nil).
func NewLocalNetworkWithInstruments(model NetModel, clock *NetClock, stats *NetStats) (*LocalNetwork, error) {
	return transport.NewNetwork(model, clock, stats)
}

// ListenTCP starts a TCP transport node for space id on addr; book maps
// peer space IDs to their listen addresses.
func ListenTCP(id uint32, addr string, book map[uint32]string) (*TCPNode, error) {
	return transport.ListenTCP(id, addr, book)
}

// Ethernet10SPARC is the network cost model calibrated to the paper's
// testbed (SPARCstations on 10 Mbps Ethernet).
func Ethernet10SPARC() NetModel { return netsim.Ethernet10SPARC() }

// Architecture profiles for heterogeneous deployments.
type ArchProfile = arch.Profile

// Profiles.
var (
	// SPARC32 is a 32-bit big-endian machine (the paper's testbed).
	SPARC32 = arch.SPARC32
	// Alpha64 is a 64-bit little-endian machine.
	Alpha64 = arch.Alpha64
	// M68K32 is a 32-bit big-endian machine with 2-byte packing.
	M68K32 = arch.M68K32
)

// Allocation policies for the cache page grouping heuristic.
const (
	// AllocPerOrigin groups each origin space's data on its own pages
	// (the paper's heuristic).
	AllocPerOrigin = swizzle.PolicyPerOrigin
	// AllocMixed packs all origins together (worst-case ablation).
	AllocMixed = swizzle.PolicyMixed
)

// VAddr is an ordinary pointer within one simulated address space.
type VAddr = vmem.VAddr

// Type name-server surface: the network type database of §3.2 ("a
// database that serves as a network name server"). Independently started
// processes bootstrap their schemas from it instead of compiling in a
// shared registry.
type (
	// TypeServer serves an authoritative registry over the network.
	TypeServer = nameserver.Server
	// TypeClient resolves and publishes types against a TypeServer,
	// caching them in a local registry.
	TypeClient = nameserver.Client
)

// NewTypeServer starts a type database service on node, serving reg.
func NewTypeServer(node Node, reg *Registry) *TypeServer {
	return nameserver.NewServer(node, reg)
}

// NewTypeClient creates a resolver talking to the server space over node;
// resolved types are cached in local.
func NewTypeClient(node Node, server uint32, local *Registry) *TypeClient {
	return nameserver.NewClient(node, server, local)
}

// Tracing surface: structured runtime events (faults, fetches, dirty
// collection, write-backs) for observability. Install with
// Runtime.SetTracer.
type (
	// TraceEvent is one traced runtime occurrence.
	TraceEvent = core.Event
	// TraceEventKind discriminates trace events.
	TraceEventKind = core.EventKind
	// Tracer receives runtime events.
	Tracer = core.Tracer
	// RecordingTracer collects events in memory.
	RecordingTracer = core.RecordingTracer
	// WriterTracer renders one line per event to an io.Writer.
	WriterTracer = core.WriterTracer
)

// Trace event kinds.
const (
	EvSessionBegin   = core.EvSessionBegin
	EvSessionEnd     = core.EvSessionEnd
	EvCallSent       = core.EvCallSent
	EvCallServed     = core.EvCallServed
	EvFault          = core.EvFault
	EvFetchSent      = core.EvFetchSent
	EvFetchServed    = core.EvFetchServed
	EvInstall        = core.EvInstall
	EvDirtyCollected = core.EvDirtyCollected
	EvWriteBackSent  = core.EvWriteBackSent
	EvInvalidateSent = core.EvInvalidateSent
	EvAllocFlush     = core.EvAllocFlush
	EvChecksumReject = core.EvChecksumReject
)

// NewWriterTracer builds a line-per-event tracer writing to w.
var NewWriterTracer = core.NewWriterTracer

// Package srpc is a Go reproduction of "Smart Remote Procedure Calls:
// Transparent Treatment of Remote Pointers" (Kono, Kato, Masuda;
// ICDCS 1994).
//
// Smart RPC lets programs pass pointers to remote procedures and
// dereference them exactly like local pointers. Three techniques combine
// to make that transparent:
//
//   - Virtual-memory manipulation: remotely referenced data is given a
//     protected page area; the first access faults, the runtime fetches
//     the data for the whole page, and access protection is released.
//     Go cannot take over SIGSEGV or retag pointers under its garbage
//     collector, so the MMU is simulated in software (package
//     internal/vmem): every access is a checked load/store against a
//     paged 32-bit address space with the same fault semantics.
//
//   - Pointer swizzling: a long pointer (address-space ID, address,
//     type ID) travels on the wire and is translated into an ordinary
//     (local) pointer on arrival, recorded in a data allocation table.
//
//   - A session coherency protocol: within an RPC session only one
//     thread of control is active; dirty cached pages travel with it on
//     every call and return, and at session end the ground runtime
//     writes all modifications back to their origin spaces and
//     multicasts an invalidation.
//
// # Quick start
//
// Define a schema, attach two runtimes to a network, and pass a pointer:
//
//	reg := srpc.NewRegistry()
//	reg.MustRegister(&srpc.TypeDesc{
//		ID: 1, Name: "Node",
//		Fields: []srpc.Field{
//			{Name: "next", Kind: srpc.KindPtr, Elem: 1},
//			{Name: "val", Kind: srpc.KindInt64},
//		},
//	})
//
//	net, _ := srpc.NewLocalNetwork(srpc.Ethernet10SPARC())
//	an, _ := net.Attach(1)
//	bn, _ := net.Attach(2)
//	a, _ := srpc.New(srpc.Options{ID: 1, Node: an, Registry: reg})
//	b, _ := srpc.New(srpc.Options{ID: 2, Node: bn, Registry: reg})
//
//	b.Register("sum", func(ctx *srpc.Ctx, args []srpc.Value) ([]srpc.Value, error) {
//		total := int64(0)
//		for v := args[0]; !v.IsNullPtr(); {
//			ref, err := ctx.Runtime().Deref(v) // transparent remote deref
//			if err != nil {
//				return nil, err
//			}
//			n, _ := ref.Int("val", 0)
//			total += n
//			v, _ = ref.Ptr("next", 0)
//		}
//		return []srpc.Value{srpc.Int64Value(total)}, nil
//	})
//
//	a.BeginSession()
//	res, _ := a.Call(2, "sum", []srpc.Value{list})
//	a.EndSession()
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package srpc

// Command srpcgen is the stub generator: it reads a Smart RPC IDL file
// and emits Go stubs (type registration, typed reference wrappers, and
// client/server stubs).
//
//	srpcgen -in tree.idl -pkg treegen -out gen.go
//
// See internal/idl for the IDL grammar.
package main

import (
	"flag"
	"fmt"
	"os"

	"smartrpc/internal/idl"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "srpcgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("srpcgen", flag.ContinueOnError)
	in := fs.String("in", "", "input IDL file")
	out := fs.String("out", "", "output Go file (default stdout)")
	pkg := fs.String("pkg", "stubs", "generated package name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in FILE")
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	file, err := idl.Parse(string(src))
	if err != nil {
		return err
	}
	code, err := idl.Generate(file, *pkg)
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(code)
		return err
	}
	return os.WriteFile(*out, code, 0o644)
}

// Command srpcchaos runs seeded fault-injection soaks against the smart
// RPC runtime (internal/faultsim): randomized session workloads over a
// chaos transport that drops, duplicates, delays, corrupts, and
// partitions frames and crash-restarts spaces, with the coherency
// invariant checker enabled throughout.
//
// Usage:
//
//	srpcchaos                        # 100 seeds, default fault mix
//	srpcchaos -seeds 500 -start 1000
//	srpcchaos -policy lazy -drop 80 -corrupt 40
//	srpcchaos -seed 7                # one specific scenario, verbose
//	srpcchaos -recover -seeds 200    # recovery soak: retry/replay/fence totals per seed
//
// On the first failing seed the runner shrinks the scenario to a minimal
// reproducing configuration, prints the repro line and the injected
// fault schedule, and exits nonzero.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/faultsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "srpcchaos:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("srpcchaos", flag.ContinueOnError)
	seeds := fs.Int("seeds", 100, "number of consecutive seeds to soak")
	start := fs.Uint64("start", 1, "first seed")
	one := fs.Uint64("seed", 0, "run exactly this seed and print its result (overrides -seeds/-start)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-scenario deadline")
	policy := fs.String("policy", "", "force a policy for every scenario: smart|eager|lazy (default: seed-derived mix)")
	drop := fs.Int("drop", -1, "override drop probability, permille")
	dup := fs.Int("dup", -1, "override duplicate probability, permille")
	corrupt := fs.Int("corrupt", -1, "override corruption probability, permille")
	delay := fs.Int("delay", -1, "override reply-delay probability, permille")
	crash := fs.Int("crash", -1, "override per-op crash-restart probability, permille")
	partition := fs.Int("partition", -1, "override per-op one-way-partition probability, permille")
	noShrink := fs.Bool("noshrink", false, "skip shrinking on failure (faster triage)")
	concurrent := fs.Bool("concurrent", false, "force the concurrent (goroutine-per-space) workload with the linearizability oracle for every scenario; about a third of seeds draw it anyway")
	recover := fs.Bool("recover", false, "force transparent exchange recovery (retry budgets, replay caches, incarnation fencing) for every scenario and report per-seed recovery totals; about a third of seeds draw it anyway")
	if err := fs.Parse(args); err != nil {
		return err
	}

	shape := func(seed uint64) (faultsim.Scenario, error) {
		sc := faultsim.DefaultScenario(seed)
		switch *policy {
		case "":
		case "smart":
			sc.Policy = core.PolicySmart
		case "eager":
			sc.Policy = core.PolicyEager
		case "lazy":
			sc.Policy = core.PolicyLazy
		default:
			return sc, fmt.Errorf("unknown -policy %q", *policy)
		}
		if *drop >= 0 {
			sc.Faults.DropPermille = *drop
		}
		if *dup >= 0 {
			sc.Faults.DupPermille = *dup
		}
		if *corrupt >= 0 {
			sc.Faults.CorruptPermille = *corrupt
		}
		if *delay >= 0 {
			sc.Faults.DelayPermille = *delay
		}
		if *crash >= 0 {
			sc.CrashPermille = *crash
		}
		if *partition >= 0 {
			sc.PartitionPermille = *partition
		}
		if *concurrent {
			sc.Concurrent = true
		}
		if *recover {
			sc.Recovery = true
		}
		return sc, nil
	}

	first, count := *start, *seeds
	if *one != 0 {
		first, count = *one, 1
	}

	var ops, errs, verified, crashes int
	var faults, retries, replays, fences uint64
	began := time.Now()
	for i := 0; i < count; i++ {
		seed := first + uint64(i)
		sc, err := shape(seed)
		if err != nil {
			return err
		}
		res, err := faultsim.RunWithTimeout(sc, *timeout)
		if err != nil {
			var fe *faultsim.FailureError
			if errors.As(err, &fe) && !*noShrink {
				fmt.Fprintf(os.Stderr, "seed %d FAILED, shrinking...\n", seed)
				min, minErr := faultsim.Shrink(sc, *timeout)
				return fmt.Errorf("seed %d failed: %w\n\nshrunk repro: srpcchaos -seed %d  with scenario %+v\nshrunk failure: %v",
					seed, err, min.Seed, min, minErr)
			}
			return fmt.Errorf("seed %d failed: %w", seed, err)
		}
		ops += res.Ops
		errs += res.Errors
		verified += res.Verified
		crashes += res.Crashes
		faults += res.Faults
		retries += res.Retries
		replays += res.Replays
		fences += res.FenceTrips
		if *one != 0 {
			fmt.Printf("seed %d: %+v\n", seed, res)
		}
		if *recover && count > 1 {
			fmt.Printf("seed %d: %d retries, %d replay-cache hits, %d fence trips, %d/%d sessions errored\n",
				seed, res.Retries, res.Replays, res.FenceTrips, res.Errors, res.Ops)
		}
	}
	fmt.Printf("soak OK: %d seeds in %v — %d sessions, %d typed errors, %d value-verified, %d crash-restarts, %d faults injected\n",
		count, time.Since(began).Round(time.Millisecond), ops, errs, verified, crashes, faults)
	if *recover {
		fmt.Printf("recovery: %d retries, %d replay-cache hits, %d fence trips\n", retries, replays, fences)
	}
	return nil
}

// Command srpcbench regenerates the paper's evaluation: every figure of
// §4 plus the design-choice ablations listed in DESIGN.md.
//
// Usage:
//
//	srpcbench -exp all
//	srpcbench -exp fig4 -nodes 32767 -closure 8192
//	srpcbench -exp fig6 -repeats 10
//	srpcbench -exp table1
//	srpcbench -exp ablations
//
// Timing is virtual (deterministic), produced by the netsim cost model
// calibrated to the paper's testbed: SPARCstation (28.5 MIPS) on 10 Mbps
// Ethernet with TCP_NODELAY.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"smartrpc/internal/bench"
	"smartrpc/internal/netsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "srpcbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("srpcbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: fig4|fig5|fig6|fig7|table1|ablations|warm|pipeline|scaleout|concurrent|stream|recover|all")
	nodes := fs.Int("nodes", 32767, "tree size (2^k - 1 nodes)")
	closure := fs.Int("closure", 8192, "closure size in bytes")
	repeats := fs.Int("repeats", 10, "repeated searches for fig6")
	csvOut := fs.Bool("csv", false, "emit figure data as CSV instead of tables")
	jsonOut := fs.Bool("json", false, "run the regression suite and emit a JSON report (srpcbench -json > BENCH_<n>.json)")
	runs := fs.Int("runs", 5, "measured repetitions per point in -json mode")
	checkFile := fs.String("check", "", "compare the regression suite's deterministic modeled columns against a committed BENCH_<n>.json snapshot; exit nonzero on any drift")
	if err := fs.Parse(args); err != nil {
		return err
	}
	csv = *csvOut
	model := netsim.Ethernet10SPARC()
	if *checkFile != "" {
		return checkAgainst(model, *checkFile)
	}
	if *jsonOut {
		return emitJSON(model, *nodes, *closure, *runs)
	}

	runOne := func(name string) error {
		switch name {
		case "fig4":
			return fig4(model, *nodes, *closure)
		case "fig5":
			return fig5(model, *nodes, *closure)
		case "fig6":
			return fig6(model, *repeats)
		case "fig7":
			return fig7(model, *nodes, *closure)
		case "table1":
			return table1()
		case "ablations":
			return ablations(model)
		case "warm":
			return warm(model, *nodes, *closure)
		case "pipeline":
			return pipeline(model, *nodes, *closure)
		case "scaleout":
			return scaleout(model, *nodes, *closure)
		case "concurrent":
			return concurrent(*nodes, *closure)
		case "stream":
			return stream(model, *nodes)
		case "recover":
			return recoverExp(model, *closure)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "fig4", "fig5", "fig6", "fig7", "ablations", "warm", "pipeline", "scaleout", "concurrent", "stream", "recover"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*exp)
}

// csv switches figure output to comma-separated series for plotting.
var csv bool

// emitJSON runs the benchmark-regression suite and writes the report to
// stdout. Redirect into a BENCH_<n>.json snapshot and diff snapshots to
// catch regressions: modeled columns must match exactly, wall/allocation
// columns within noise.
func emitJSON(model netsim.Model, nodes, closure, runs int) error {
	rep, err := bench.BuildReport(model, nodes, closure, runs)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(out))
	return err
}

// checkAgainst rebuilds the regression suite at the baseline's
// configuration and fails if any deterministic modeled column moved. A
// single measured run suffices: the modeled outputs are identical across
// runs by construction, and the host-dependent columns are not compared.
func checkAgainst(model netsim.Model, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var baseline bench.Report
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	cur, err := bench.BuildReport(model, baseline.Nodes, baseline.Closure, 1)
	if err != nil {
		return err
	}
	if err := bench.Check(baseline, cur); err != nil {
		return fmt.Errorf("against %s: %w", path, err)
	}
	fmt.Printf("srpcbench: modeled columns match %s (%d rows, schema %d)\n", path, len(baseline.Rows), baseline.Schema)
	return nil
}

func sec(d time.Duration) float64 { return d.Seconds() }

func fig4(model netsim.Model, nodes, closure int) error {
	rows, err := bench.Fig4(model, nodes, closure, nil)
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("fig4.ratio,eager_s,lazy_s,smart_s")
		for _, r := range rows {
			fmt.Printf("%.2f,%.6f,%.6f,%.6f\n", r.Ratio, sec(r.Eager), sec(r.Lazy), sec(r.Smart))
		}
		return nil
	}
	fmt.Printf("\n== Figure 4: processing time (s) vs access ratio ==\n")
	fmt.Printf("   tree %d nodes, closure %d bytes\n", nodes, closure)
	fmt.Printf("%-8s %-12s %-12s %-12s\n", "ratio", "fully-eager", "fully-lazy", "proposed")
	for _, r := range rows {
		fmt.Printf("%-8.2f %-12.3f %-12.3f %-12.3f\n", r.Ratio, sec(r.Eager), sec(r.Lazy), sec(r.Smart))
	}
	return nil
}

func fig5(model netsim.Model, nodes, closure int) error {
	rows, err := bench.Fig5(model, nodes, closure, nil)
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("fig5.ratio,lazy_callbacks,smart_callbacks")
		for _, r := range rows {
			fmt.Printf("%.2f,%d,%d\n", r.Ratio, r.Lazy, r.Smart)
		}
		return nil
	}
	fmt.Printf("\n== Figure 5: number of callbacks vs access ratio ==\n")
	fmt.Printf("   tree %d nodes, closure %d bytes\n", nodes, closure)
	fmt.Printf("%-8s %-12s %-12s\n", "ratio", "fully-lazy", "proposed")
	for _, r := range rows {
		fmt.Printf("%-8.2f %-12d %-12d\n", r.Ratio, r.Lazy, r.Smart)
	}
	return nil
}

func fig6(model netsim.Model, repeats int) error {
	cells, err := bench.Fig6(model, nil, nil, repeats)
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("fig6.nodes,closure_bytes,time_s")
		for _, c := range cells {
			fmt.Printf("%d,%d,%.6f\n", c.Nodes, c.Closure, sec(c.Time))
		}
		return nil
	}
	fmt.Printf("\n== Figure 6: processing time (s) vs closure size (%d repeated searches) ==\n", repeats)
	fmt.Printf("%-14s", "closure(KB)")
	for _, n := range bench.DefaultTreeSizes {
		fmt.Printf(" %-14s", fmt.Sprintf("%d nodes", n))
	}
	fmt.Println()
	for _, cs := range bench.DefaultClosureSizes {
		fmt.Printf("%-14.1f", float64(cs)/1024)
		for _, n := range bench.DefaultTreeSizes {
			for _, c := range cells {
				if c.Nodes == n && c.Closure == cs {
					fmt.Printf(" %-14.3f", sec(c.Time))
				}
			}
		}
		fmt.Println()
	}
	return nil
}

func fig7(model netsim.Model, nodes, closure int) error {
	rows, err := bench.Fig7(model, nodes, closure, nil)
	if err != nil {
		return err
	}
	if csv {
		fmt.Println("fig7.ratio,updated_s,not_updated_s")
		for _, r := range rows {
			fmt.Printf("%.2f,%.6f,%.6f\n", r.Ratio, sec(r.Updated), sec(r.NotUpdated))
		}
		return nil
	}
	fmt.Printf("\n== Figure 7: update performance (s) vs update ratio ==\n")
	fmt.Printf("   tree %d nodes, closure %d bytes\n", nodes, closure)
	fmt.Printf("%-8s %-12s %-12s %-8s\n", "ratio", "updated", "not-updated", "×")
	for _, r := range rows {
		ratio := 0.0
		if r.NotUpdated > 0 {
			ratio = float64(r.Updated) / float64(r.NotUpdated)
		}
		fmt.Printf("%-8.2f %-12.3f %-12.3f %-8.2f\n", r.Ratio, sec(r.Updated), sec(r.NotUpdated), ratio)
	}
	return nil
}

// warm prints the repeated-session workload: K back-to-back sessions
// over the same pair of spaces, with a fraction of the tree mutated at
// the origin between sessions. Session 1 is the cold start; the later
// rows show what the warm cross-session cache actually re-ships.
func warm(model netsim.Model, nodes, closure int) error {
	const sessions = 4
	if csv {
		fmt.Println("warm.config,mutation_ratio,session,time_s,item_body_bytes,reval_hits,reval_misses,reval_bytes,messages,net_bytes")
	} else {
		fmt.Printf("\n== Warm cross-session cache: %d sessions, tree %d nodes, closure %d bytes ==\n",
			sessions, nodes, closure)
	}
	for _, pt := range []struct {
		name   string
		ratio  float64
		noWarm bool
	}{
		{"smart-warm", 0, false},
		{"smart-warm", 0.05, false},
		{"smart-warm", 0.25, false},
		{"smart-coldstart", 0, true},
	} {
		res, err := bench.RunWarmSessions(bench.WarmConfig{
			Nodes:            nodes,
			ClosureSize:      closure,
			Sessions:         sessions,
			MutationRatio:    pt.ratio,
			Model:            model,
			DisableWarmCache: pt.noWarm,
		})
		if err != nil {
			return err
		}
		if !csv {
			fmt.Printf("\n-- %s, mutation ratio %.2f --\n", pt.name, pt.ratio)
			fmt.Printf("%-9s %-10s %-16s %-11s %-13s %-12s %-10s %-12s\n",
				"session", "time(s)", "item-body-bytes", "reval-hits", "reval-misses", "reval-bytes", "messages", "net-bytes")
		}
		cold := res.Sessions[0].ItemBodyBytes
		for i, s := range res.Sessions {
			if csv {
				fmt.Printf("%s,%.2f,%d,%.6f,%d,%d,%d,%d,%d,%d\n",
					pt.name, pt.ratio, i+1, sec(s.Time), s.ItemBodyBytes,
					s.RevalidateHits, s.RevalidateMisses, s.RevalidateBytes, s.Messages, s.Bytes)
				continue
			}
			note := ""
			if i > 0 && cold > 0 {
				note = fmt.Sprintf("  (%.1f%% of cold)", 100*float64(s.ItemBodyBytes)/float64(cold))
			}
			fmt.Printf("%-9d %-10.3f %-16d %-11d %-13d %-12d %-10d %-12d%s\n",
				i+1, sec(s.Time), s.ItemBodyBytes, s.RevalidateHits, s.RevalidateMisses,
				s.RevalidateBytes, s.Messages, s.Bytes, note)
		}
	}
	return nil
}

// pipeline prints the asynchronous fetch pipeline workload: a pointer
// chase built to defeat the eager closure (every shipment ends at a cold
// page). The first block is the deterministic comparison (one client,
// synchronous speculation) whose rows the BENCH_5 snapshot checks; the
// second is a wall-clock demonstration on a real 1 ms link delay, where
// asynchronous speculation physically overlaps fetch round trips with the
// application's own chewing.
func pipeline(model netsim.Model, nodes, closure int) error {
	type pt struct {
		name string
		cfg  bench.PipelineConfig
	}
	det := []pt{
		{"smart-demand", bench.PipelineConfig{ChainNodes: nodes, ClosureSize: closure, Model: model}},
		{"smart-prefetch", bench.PipelineConfig{ChainNodes: nodes, ClosureSize: closure, Model: model,
			Prefetch: true, SyncPrefetch: true}},
	}
	if csv {
		fmt.Println("pipeline.config,time_s,messages,net_bytes,fetches,blocking_fetches,pf_issued,pf_hits,pf_wasted")
	} else {
		fmt.Printf("\n== Fetch pipeline: pointer chase, chain %d nodes, closure %d bytes ==\n", nodes, closure)
		fmt.Printf("%-16s %-10s %-10s %-12s %-9s %-10s %-10s %-8s %-8s\n",
			"config", "time(s)", "messages", "bytes", "fetches", "blocking", "pf-issued", "pf-hits", "pf-waste")
	}
	for _, p := range det {
		res, err := bench.RunPipeline(p.cfg)
		if err != nil {
			return err
		}
		if csv {
			fmt.Printf("%s,%.6f,%d,%d,%d,%d,%d,%d,%d\n", p.name, sec(res.Time), res.Messages,
				res.Bytes, res.Fetches, res.BlockingFetches, res.PfIssued, res.PfHits, res.PfWasted)
			continue
		}
		fmt.Printf("%-16s %-10.3f %-10d %-12d %-9d %-10d %-10d %-8d %-8d\n",
			p.name, sec(res.Time), res.Messages, res.Bytes, res.Fetches,
			res.BlockingFetches, res.PfIssued, res.PfHits, res.PfWasted)
	}
	if csv {
		return nil
	}
	// A 5 ms one-way delay (10 ms round trip) against ~13 ms of per-closure
	// application think time: enough computation that asynchronous
	// speculation can hide the round trips behind it, as real clients do.
	const (
		demoClients = 2
		demoDelay   = 5 * time.Millisecond
		demoThink   = time.Millisecond
		demoEvery   = 20 // nodes per think pause
	)
	demoNodes := nodes / 4
	fmt.Printf("\n-- wall-clock overlap: %d clients, chain %d nodes, %s link delay, %s think per %d nodes --\n",
		demoClients, demoNodes, demoDelay, demoThink, demoEvery)
	fmt.Printf("%-16s %-12s %-9s %-10s %-10s %-10s\n",
		"config", "wall(s)", "fetches", "blocking", "pf-issued", "coalesced")
	for _, p := range []pt{
		{"smart-demand", bench.PipelineConfig{ChainNodes: demoNodes, Clients: demoClients,
			ClosureSize: closure, LinkDelay: demoDelay, Think: demoThink, ThinkEvery: demoEvery}},
		{"smart-prefetch", bench.PipelineConfig{ChainNodes: demoNodes, Clients: demoClients,
			ClosureSize: closure, LinkDelay: demoDelay, Think: demoThink, ThinkEvery: demoEvery,
			Prefetch: true}},
	} {
		res, err := bench.RunPipeline(p.cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %-12.3f %-9d %-10d %-10d %-10d\n",
			p.name, res.WallTime.Seconds(), res.Fetches, res.BlockingFetches,
			res.PfIssued, res.PfCoalesced)
	}
	return nil
}

// scaleout prints the multi-client origin-sharing workload: N client
// spaces walk one shared tree over two rounds each. The client sweep
// shows the encode cache amortizing the origin's marshaling across
// clients, the mutation sweep shows invalidation eroding the hit rate,
// and the ablation row is the re-encode-everything control.
func scaleout(model netsim.Model, nodes, closure int) error {
	if csv {
		fmt.Println("scaleout.config,clients,mutation_ratio,time_s,messages,net_bytes,enc_hits,enc_misses,enc_evictions,enc_invalidations,enc_bytes")
	} else {
		fmt.Printf("\n== Scale-out: clients sharing one origin, tree %d nodes, closure %d bytes, 2 rounds ==\n",
			nodes, closure)
		fmt.Printf("%-18s %-8s %-7s %-10s %-10s %-12s %-9s %-9s %-8s %-8s %-10s\n",
			"config", "clients", "ratio", "time(s)", "messages", "bytes",
			"enc-hits", "enc-miss", "evict", "inval", "enc-bytes")
	}
	type pt struct {
		name    string
		clients int
		ratio   float64
		noEnc   bool
	}
	var pts []pt
	for _, n := range []int{1, 2, 4, 8, 16} {
		pts = append(pts, pt{"smart-enccache", n, 0, false})
	}
	for _, r := range []float64{0.05, 0.25} {
		pts = append(pts, pt{"smart-enccache", 8, r, false})
	}
	pts = append(pts, pt{"smart-noenccache", 8, 0, true})
	for _, p := range pts {
		res, err := bench.RunScaleout(bench.ScaleoutConfig{
			Nodes:              nodes,
			ClosureSize:        closure,
			Clients:            p.clients,
			Rounds:             2,
			MutationRatio:      p.ratio,
			Model:              model,
			DisableEncodeCache: p.noEnc,
		})
		if err != nil {
			return err
		}
		if csv {
			fmt.Printf("%s,%d,%.2f,%.6f,%d,%d,%d,%d,%d,%d,%d\n",
				p.name, p.clients, p.ratio, sec(res.Time), res.Messages, res.Bytes,
				res.EncHits, res.EncMisses, res.EncEvictions, res.EncInvalidations, res.EncBytes)
			continue
		}
		fmt.Printf("%-18s %-8d %-7.2f %-10.3f %-10d %-12d %-9d %-9d %-8d %-8d %-10d\n",
			p.name, p.clients, p.ratio, sec(res.Time), res.Messages, res.Bytes,
			res.EncHits, res.EncMisses, res.EncEvictions, res.EncInvalidations, res.EncBytes)
	}
	return nil
}

// concurrent prints the overlapping-sessions workload: K client spaces
// run sessions against one shared origin at the same time, and every
// run's history is verified linearizable by internal/histcheck before
// its numbers are printed. Traffic and wall time vary with the real
// interleaving; the operation counts are seed-deterministic.
func concurrent(nodes, closure int) error {
	if csv {
		fmt.Println("concurrent.clients,write_ratio,sessions,reads,writes,checked_ops,partitions,check_s,wall_s,messages,net_bytes")
	} else {
		fmt.Printf("\n== Concurrent sessions: clients sharing one origin, tree %d nodes, closure %d bytes ==\n",
			nodes, closure)
		fmt.Printf("   every row's history verified linearizable (internal/histcheck)\n")
		fmt.Printf("%-8s %-7s %-9s %-7s %-7s %-9s %-11s %-9s %-9s %-10s %-12s\n",
			"clients", "ratio", "sessions", "reads", "writes", "checked", "partitions", "check(s)", "wall(s)", "messages", "bytes")
	}
	for _, p := range []struct {
		clients int
		ratio   float64
	}{
		{2, 0.25},
		{4, 0.25},
		{8, 0},
		{8, 0.05},
		{8, 0.25},
	} {
		res, err := bench.RunConcurrent(bench.ConcurrentConfig{
			Nodes:       nodes,
			ClosureSize: closure,
			Clients:     p.clients,
			WriteRatio:  p.ratio,
			Seed:        1,
		})
		if err != nil {
			return err
		}
		if csv {
			fmt.Printf("%d,%.2f,%d,%d,%d,%d,%d,%.6f,%.6f,%d,%d\n",
				p.clients, p.ratio, res.Sessions, res.Reads, res.Writes,
				res.CheckedOps, res.Partitions, sec(res.CheckTime), sec(res.Wall), res.Messages, res.Bytes)
			continue
		}
		fmt.Printf("%-8d %-7.2f %-9d %-7d %-7d %-9d %-11d %-9.3f %-9.3f %-10d %-12d\n",
			p.clients, p.ratio, res.Sessions, res.Reads, res.Writes,
			res.CheckedOps, res.Partitions, sec(res.CheckTime), sec(res.Wall), res.Messages, res.Bytes)
	}
	return nil
}

// stream prints the streamed-transfer workload: one client faults on a
// chain whose whole closure fits the (large) fetch budget, over a chunk
// sweep plus the monolithic-reply ablation. The ttfa column is the
// wall-clock latency of the faulting access itself — with streaming it
// waits only for chunk 0; without it, for the entire reply.
func stream(model netsim.Model, nodes int) error {
	if csv {
		fmt.Println("stream.config,chunk_bytes,ttfa_usec,wall_s,messages,net_bytes,chunks,fetches")
	} else {
		fmt.Printf("\n== Streamed transfer: chain %d nodes, one closure-sized FETCH ==\n", nodes)
		fmt.Printf("%-18s %-12s %-12s %-10s %-10s %-12s %-8s %-8s\n",
			"config", "chunk", "ttfa(us)", "wall(s)", "messages", "bytes", "chunks", "fetches")
	}
	for _, p := range []struct {
		name  string
		chunk int
	}{
		{"smart-stream-16k", 16 << 10},
		{"smart-stream-64k", 64 << 10},
		{"smart-stream-256k", 256 << 10},
		{"smart-nostream", -1},
	} {
		res, err := bench.RunStream(bench.StreamConfig{
			Nodes:            nodes,
			StreamChunkBytes: p.chunk,
			Model:            model,
		})
		if err != nil {
			return err
		}
		chunk := "off"
		if p.chunk > 0 {
			chunk = fmt.Sprintf("%dK", p.chunk>>10)
		}
		if csv {
			fmt.Printf("%s,%d,%d,%.6f,%d,%d,%d,%d\n",
				p.name, p.chunk, res.TTFA.Microseconds(), res.WallTime.Seconds(),
				res.Messages, res.Bytes, res.Chunks, res.Fetches)
			continue
		}
		fmt.Printf("%-18s %-12s %-12d %-10.3f %-10d %-12d %-8d %-8d\n",
			p.name, chunk, res.TTFA.Microseconds(), res.WallTime.Seconds(),
			res.Messages, res.Bytes, res.Chunks, res.Fetches)
	}
	return nil
}

// recoverExp prints the transparent exchange-recovery workload: the
// repeated-session caller/callee pair run through the chaos transport.
// The first two rows are the zero-overhead control (identical fault-free
// workload with recovery disarmed and armed — their traffic columns must
// be byte-identical); the faulted rows show every session still
// completing, with the retry/replay counters pricing the recovery.
func recoverExp(model netsim.Model, closure int) error {
	if csv {
		fmt.Println("recover.config,model_s,messages,net_bytes,sessions,chaos_faults,retries,retry_ok,replays,stale_drops")
	} else {
		fmt.Printf("\n== Exchange recovery: 3 sessions under transient faults, tree 1023 nodes, closure %d bytes ==\n", closure)
		fmt.Printf("   every row's per-session checksum verified against the mutation oracle\n")
		fmt.Printf("%-22s %-10s %-10s %-12s %-10s %-8s %-9s %-10s %-9s %-11s\n",
			"config", "model(s)", "messages", "bytes", "sessions", "chaos", "retries", "retry-ok", "replays", "stale-drops")
	}
	for _, p := range []struct {
		name               string
		drop, dup, corrupt int
		disabled           bool
	}{
		{name: "smart-recover-off", disabled: true},
		{name: "smart-recover-clean"},
		{name: "smart-recover-drop", drop: 250},
		{name: "smart-recover-dup", dup: 100},
		{name: "smart-recover-corrupt", corrupt: 60},
		{name: "smart-recover-mix", drop: 150, dup: 150, corrupt: 60},
	} {
		res, err := bench.RunRecover(bench.RecoverConfig{
			ClosureSize:     closure,
			MutationRatio:   0.05,
			DropPermille:    p.drop,
			DupPermille:     p.dup,
			CorruptPermille: p.corrupt,
			Seed:            1,
			DisableRecovery: p.disabled,
			Model:           model,
		})
		if err != nil {
			return err
		}
		if csv {
			fmt.Printf("%s,%.6f,%d,%d,%d,%d,%d,%d,%d,%d\n",
				p.name, sec(res.Time), res.Messages, res.Bytes, res.Sessions,
				res.ChaosFaults, res.Retries, res.RetrySuccesses, res.Replays, res.StaleDrops)
			continue
		}
		fmt.Printf("%-22s %-10.3f %-10d %-12d %-10d %-8d %-9d %-10d %-9d %-11d\n",
			p.name, sec(res.Time), res.Messages, res.Bytes, res.Sessions,
			res.ChaosFaults, res.Retries, res.RetrySuccesses, res.Replays, res.StaleDrops)
	}
	return nil
}

func table1() error {
	fmt.Printf("\n== Table 1: data allocation table after swizzling pointers A and B ==\n")
	s, err := bench.Table1()
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}

func ablations(model netsim.Model) error {
	fmt.Printf("\n== Ablations (DESIGN.md §5) ==\n")
	print := func(title string, rows []bench.AblationRow, err error) error {
		if err != nil {
			return err
		}
		fmt.Printf("\n-- %s --\n", title)
		fmt.Printf("%-24s %-10s %-11s %-10s %-12s\n", "config", "time(s)", "callbacks", "messages", "bytes")
		for _, r := range rows {
			fmt.Printf("%-24s %-10.3f %-11d %-10d %-12d\n", r.Name, sec(r.Time), r.Callbacks, r.Messages, r.Bytes)
		}
		return nil
	}
	rows, err := bench.PageSizeAblation(model, 8191, nil)
	if err := print("page size (protection grain)", rows, err); err != nil {
		return err
	}
	rows, err = bench.TraversalAblation(model, 8191, 8192)
	if err := print("closure traversal order", rows, err); err != nil {
		return err
	}
	rows, err = bench.CoherenceAblation(model, 8191, 8192)
	if err := print("coherency protocol", rows, err); err != nil {
		return err
	}
	rows, err = bench.DeltaShipAblation(model, 8191, 8192, 8)
	if err != nil {
		return err
	}
	fmt.Printf("\n-- delta shipping (repeated update searches) --\n")
	fmt.Printf("%-24s %-10s %-11s %-10s %-12s %-12s\n", "config", "time(s)", "callbacks", "messages", "bytes", "coh-bytes")
	for _, r := range rows {
		fmt.Printf("%-24s %-10.3f %-11d %-10d %-12d %-12d\n", r.Name, sec(r.Time), r.Callbacks, r.Messages, r.Bytes, r.CohBytes)
	}
	rows, err = bench.AllocPolicyAblation(model, 512)
	if err := print("cache page allocation heuristic", rows, err); err != nil {
		return err
	}
	rows, err = bench.BatchingAblation(model, 1000)
	if err := print("remote malloc batching", rows, err); err != nil {
		return err
	}
	rows, err = bench.ClosureHintAblation(model, 12, 8192)
	if err := print("closure shape hints (left-path walk)", rows, err); err != nil {
		return err
	}
	rows, err = bench.ChainCoherenceAblation(model, 8)
	if err := print("coherency on a 3-space chain", rows, err); err != nil {
		return err
	}
	rows, err = bench.HashWorkload(model, 16384, 16)
	if err := print("hash-table retrieval (sparse access, §4.1 remark)", rows, err); err != nil {
		return err
	}
	return nil
}

// Command treesrv is a real-network (TCP) demonstration of Smart RPC: a
// server process searches a binary tree that lives in the client
// process's address space, dereferencing the client's pointers
// transparently, like the paper's SPARCstations did over Ethernet.
//
// The server also hosts the type database (§3.2's network name server) on
// a second port; the client process compiles in NO schema — it resolves
// "TreeNode" over the wire before starting its runtime.
//
// Start the server, then run the client against it:
//
//	treesrv -serve 127.0.0.1:7070 -typedb 127.0.0.1:7071
//	treesrv -connect 127.0.0.1:7070 -typedb 127.0.0.1:7071 -nodes 8191 -ratio 0.5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	srpc "smartrpc"
)

// Space IDs: the client is 1 (it owns the tree), the server is 2, the
// type database is 100, and the client's resolver node is 101.
const (
	clientID   uint32 = 1
	serverID   uint32 = 2
	typedbID   uint32 = 100
	resolverID uint32 = 101
)

// traceEvents enables protocol event logging on the runtimes.
var traceEvents bool

// maybeTrace attaches a stderr tracer when -trace is set.
func maybeTrace(rt *srpc.Runtime) {
	if traceEvents {
		rt.SetTracer(srpc.NewWriterTracer(os.Stderr))
	}
}

func main() {
	serve := flag.String("serve", "", "run as server, listening on this address")
	connect := flag.String("connect", "", "run as client against this server address")
	typedb := flag.String("typedb", "127.0.0.1:7071", "type database (name server) address")
	nodes := flag.Int("nodes", 8191, "tree size (2^k - 1)")
	ratio := flag.Float64("ratio", 0.5, "fraction of nodes to search")
	closure := flag.Int("closure", 8192, "closure size in bytes")
	trace := flag.Bool("trace", false, "log runtime protocol events to stderr")
	flag.Parse()
	traceEvents = *trace
	var err error
	switch {
	case *serve != "":
		err = runServer(*serve, *typedb, *closure)
	case *connect != "":
		err = runClient(*connect, *typedb, *nodes, *ratio, *closure)
	default:
		err = fmt.Errorf("need -serve ADDR or -connect ADDR")
	}
	if err != nil {
		log.Fatal(err)
	}
}

// schema builds the authoritative registry. Only the SERVER compiles this
// in; the client resolves it from the type database at startup.
func schema() (*srpc.Registry, error) {
	reg := srpc.NewRegistry()
	reg.MustRegister(&srpc.TypeDesc{
		ID:   1,
		Name: "TreeNode",
		Fields: []srpc.Field{
			{Name: "left", Kind: srpc.KindPtr, Elem: 1},
			{Name: "right", Kind: srpc.KindPtr, Elem: 1},
			{Name: "data", Kind: srpc.KindInt64},
		},
	})
	return reg, reg.Validate()
}

func runServer(addr, typedbAddr string, closure int) error {
	reg, err := schema()
	if err != nil {
		return err
	}
	// Host the type database (the paper's network name server).
	dbNode, err := srpc.ListenTCP(typedbID, typedbAddr, nil)
	if err != nil {
		return err
	}
	db := srpc.NewTypeServer(dbNode, reg)
	defer db.Close()
	log.Printf("type database on %s (space %d)", dbNode.Addr(), typedbID)

	node, err := srpc.ListenTCP(serverID, addr, nil)
	if err != nil {
		return err
	}
	rt, err := srpc.New(srpc.Options{
		ID:          serverID,
		Node:        node,
		Registry:    reg,
		ClosureSize: closure,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	maybeTrace(rt)
	err = rt.Register("searchTree", func(ctx *srpc.Ctx, args []srpc.Value) ([]srpc.Value, error) {
		budget := args[1].Int64()
		var visited, sum int64
		var walk func(v srpc.Value) error
		walk = func(v srpc.Value) error {
			if v.IsNullPtr() || visited >= budget {
				return nil
			}
			ref, err := ctx.Runtime().Deref(v)
			if err != nil {
				return err
			}
			visited++
			d, err := ref.Int("data", 0)
			if err != nil {
				return err
			}
			sum += d
			l, err := ref.Ptr("left", 0)
			if err != nil {
				return err
			}
			if err := walk(l); err != nil {
				return err
			}
			r, err := ref.Ptr("right", 0)
			if err != nil {
				return err
			}
			return walk(r)
		}
		if err := walk(args[0]); err != nil {
			return nil, err
		}
		log.Printf("searched %d nodes, sum %d", visited, sum)
		return []srpc.Value{srpc.Int64Value(visited), srpc.Int64Value(sum)}, nil
	})
	if err != nil {
		return err
	}
	log.Printf("tree search server on %s (space %d); ^C to stop", node.Addr(), serverID)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	return nil
}

func runClient(serverAddr, typedbAddr string, nodes int, ratio float64, closure int) error {
	// Bootstrap the schema from the network name server: this process
	// compiles in no type definitions at all.
	resolverNode, err := srpc.ListenTCP(resolverID, "127.0.0.1:0", map[uint32]string{typedbID: typedbAddr})
	if err != nil {
		return err
	}
	reg := srpc.NewRegistry()
	resolver := srpc.NewTypeClient(resolverNode, typedbID, reg)
	defer resolver.Close()
	desc, err := resolver.ResolveName("TreeNode")
	if err != nil {
		return fmt.Errorf("resolve schema from type database: %w", err)
	}
	log.Printf("resolved type %q (id %d) from the name server", desc.Name, desc.ID)

	node, err := srpc.ListenTCP(clientID, "127.0.0.1:0", map[uint32]string{serverID: serverAddr})
	if err != nil {
		return err
	}
	rt, err := srpc.New(srpc.Options{
		ID:          clientID,
		Node:        node,
		Registry:    reg,
		ClosureSize: closure,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	maybeTrace(rt)

	root, err := buildTree(rt, desc.ID, nodes)
	if err != nil {
		return err
	}
	budget := int64(ratio * float64(nodes))
	if err := rt.BeginSession(); err != nil {
		return err
	}
	res, err := rt.Call(serverID, "searchTree", []srpc.Value{
		root, srpc.Int64Value(budget),
	})
	if err != nil {
		return err
	}
	if err := rt.EndSession(); err != nil {
		return err
	}
	fmt.Printf("server visited %d of %d nodes; checksum %d\n", res[0].Int64(), nodes, res[1].Int64())
	st := rt.Stats()
	fmt.Printf("client served %d fetch requests\n", st.FetchesServed)
	return nil
}

func buildTree(rt *srpc.Runtime, nodeType srpc.TypeID, n int) (srpc.Value, error) {
	levels := 0
	for (1 << (levels + 1)) <= n+1 {
		levels++
	}
	if (1<<levels)-1 != n {
		return srpc.Value{}, fmt.Errorf("%d is not 2^k - 1", n)
	}
	counter := int64(0)
	var build func(level int) (srpc.Value, error)
	build = func(level int) (srpc.Value, error) {
		if level == 0 {
			return srpc.NullPtr(nodeType), nil
		}
		v, err := rt.NewObject(nodeType)
		if err != nil {
			return srpc.Value{}, err
		}
		counter++
		ref, err := rt.Deref(v)
		if err != nil {
			return srpc.Value{}, err
		}
		if err := ref.SetInt("data", 0, counter); err != nil {
			return srpc.Value{}, err
		}
		l, err := build(level - 1)
		if err != nil {
			return srpc.Value{}, err
		}
		if err := ref.SetPtr("left", 0, l); err != nil {
			return srpc.Value{}, err
		}
		r, err := build(level - 1)
		if err != nil {
			return srpc.Value{}, err
		}
		if err := ref.SetPtr("right", 0, r); err != nil {
			return srpc.Value{}, err
		}
		return v, nil
	}
	return build(levels)
}

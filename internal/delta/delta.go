// Package delta computes and applies byte-range diffs between two
// canonical encodings of the same datum. The coherency protocol uses it
// to ship only the changed ranges of a modified object across an
// address-space boundary when the receiving space already holds an older
// encoding (the baseline), instead of re-transmitting the full value on
// every crossing.
//
// A diff is a list of runs, each an (offset, bytes) pair against the
// baseline. Runs are produced in increasing offset order and never
// overlap; applying them to the baseline reproduces the current encoding
// exactly. Because canonical encodings of a fixed-shape object never
// change length, diffs are only defined between equal-length buffers —
// Diff returns nil for anything else and the caller falls back to
// shipping the full body.
package delta

import (
	"fmt"

	"smartrpc/internal/xdr"
)

// DefaultGap is the coalescing distance used by the runtime: two changed
// ranges separated by fewer than this many unchanged bytes are merged
// into one run. Each run costs runOverhead bytes of framing, so bridging
// a gap shorter than that is always a net win on the wire.
const DefaultGap = 8

// runOverhead is the encoded framing cost of one run: offset word plus
// the opaque length word (payload padding is accounted separately).
const runOverhead = 8

// Run is one contiguous byte-range replacement at Off in the baseline.
type Run struct {
	Off  uint32
	Data []byte
}

// Diff returns the runs that transform base into cur, coalescing changed
// ranges separated by fewer than gap unchanged bytes. It returns nil
// (meaning "no diff representable") when the lengths differ, and an
// empty, non-nil slice when the buffers are equal. Run data aliases cur.
func Diff(base, cur []byte, gap int) []Run {
	if len(base) != len(cur) {
		return nil
	}
	if gap < 1 {
		gap = 1
	}
	runs := []Run{}
	n := len(cur)
	for i := 0; i < n; {
		if base[i] == cur[i] {
			i++
			continue
		}
		// A changed byte starts a run; extend it while the next change is
		// within gap bytes of the last one.
		start := i
		last := i
		for j := i + 1; j < n && j-last <= gap; j++ {
			if base[j] != cur[j] {
				last = j
			}
		}
		runs = append(runs, Run{Off: uint32(start), Data: cur[start : last+1]})
		i = last + 1
	}
	return runs
}

// Apply patches base with runs and returns the resulting buffer (a fresh
// copy; base is not modified). A run extending past the end of base is an
// error: it means the diff was computed against a different baseline.
func Apply(base []byte, runs []Run) ([]byte, error) {
	out := make([]byte, len(base))
	copy(out, base)
	for _, r := range runs {
		end := int(r.Off) + len(r.Data)
		if end > len(out) {
			return nil, fmt.Errorf("delta: run [%d:%d) exceeds baseline length %d", r.Off, end, len(out))
		}
		copy(out[r.Off:], r.Data)
	}
	return out, nil
}

// EncodedSize returns the exact length of Encode(runs), so callers can
// compare a delta against the full body before committing to either.
func EncodedSize(runs []Run) int {
	n := 4
	for _, r := range runs {
		n += runOverhead + len(r.Data) + pad4(len(r.Data))
	}
	return n
}

func pad4(n int) int { return (4 - n%4) % 4 }

// Encode returns the canonical (XDR) encoding of runs:
//
//	uint32 nruns; { uint32 off; opaque data }[nruns]
func Encode(runs []Run) []byte {
	e := xdr.NewEncoder(EncodedSize(runs))
	e.PutUint32(uint32(len(runs)))
	for _, r := range runs {
		e.PutUint32(r.Off)
		e.PutOpaque(r.Data)
	}
	return e.Bytes()
}

// maxRuns bounds a decoded run vector; a legitimate diff never has more
// runs than bytes in the object.
const maxRuns = 1 << 22

// Decode parses an encoded run vector. Run data aliases b.
func Decode(b []byte) ([]Run, error) {
	d := xdr.NewDecoder(b)
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > maxRuns {
		return nil, fmt.Errorf("delta: run count %d out of range", n)
	}
	// A run encodes to at least 8 bytes (offset word + opaque length), so
	// a count exceeding the bytes remaining is corrupt; rejecting it here
	// also keeps a hostile count from forcing a giant preallocation.
	if int(n) > d.Remaining()/runOverhead {
		return nil, fmt.Errorf("delta: run count %d exceeds the %d bytes remaining", n, d.Remaining())
	}
	runs := make([]Run, 0, n)
	prevEnd := -1
	for i := uint32(0); i < n; i++ {
		var r Run
		if r.Off, err = d.Uint32(); err != nil {
			return nil, err
		}
		if r.Data, err = d.Opaque(); err != nil {
			return nil, err
		}
		if int(r.Off) <= prevEnd {
			return nil, fmt.Errorf("delta: runs out of order or overlapping at offset %d", r.Off)
		}
		prevEnd = int(r.Off) + len(r.Data) - 1
		runs = append(runs, r)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("delta: %d trailing bytes after runs", d.Remaining())
	}
	return runs, nil
}

package delta

import (
	"bytes"
	"testing"
)

// FuzzDeltaPatch: arbitrary bytes fed to Decode either error out or
// yield runs that Apply cleanly rejects or patches within bounds —
// never a panic, never an out-of-range write.
func FuzzDeltaPatch(f *testing.F) {
	base := bytes.Repeat([]byte{0xAB}, 64)
	cur := append([]byte(nil), base...)
	cur[5] = 1
	cur[40] = 2
	f.Add(Encode(Diff(base, cur, DefaultGap)), base)
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 200, 0, 0, 0, 4, 1, 2, 3, 4}, base)
	f.Fuzz(func(t *testing.T, enc, baseline []byte) {
		runs, err := Decode(enc)
		if err != nil {
			return
		}
		out, err := Apply(baseline, runs)
		if err != nil {
			return
		}
		if len(out) != len(baseline) {
			t.Fatalf("patched length %d != baseline length %d", len(out), len(baseline))
		}
	})
}

// FuzzDeltaRoundTrip: for any two equal-length buffers, the diff must
// encode, decode, and apply back to exactly the target buffer.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte("the quick brown fox"), []byte("the quick brown fix"))
	f.Add(make([]byte, 128), bytes.Repeat([]byte{7}, 128))
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, base, cur []byte) {
		if len(base) != len(cur) {
			if Diff(base, cur, DefaultGap) != nil {
				t.Fatal("Diff returned runs for unequal lengths")
			}
			return
		}
		runs := Diff(base, cur, DefaultGap)
		if runs == nil {
			t.Fatal("Diff returned nil for equal lengths")
		}
		decoded, err := Decode(Encode(runs))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		out, err := Apply(base, decoded)
		if err != nil {
			t.Fatalf("apply of own diff failed: %v", err)
		}
		if !bytes.Equal(out, cur) {
			t.Fatalf("diff round trip lost data:\nbase %x\ncur  %x\ngot  %x", base, cur, out)
		}
	})
}

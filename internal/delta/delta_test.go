package delta

import (
	"bytes"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, base, cur []byte, gap int) []Run {
	t.Helper()
	runs := Diff(base, cur, gap)
	if runs == nil {
		t.Fatalf("Diff returned nil for equal-length buffers (%d bytes)", len(base))
	}
	got, err := Apply(base, runs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatalf("Apply(Diff) mismatch:\nbase %x\ncur  %x\ngot  %x\nruns %v", base, cur, got, runs)
	}
	enc := Encode(runs)
	if len(enc) != EncodedSize(runs) {
		t.Fatalf("EncodedSize = %d, len(Encode) = %d", EncodedSize(runs), len(enc))
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Apply(base, dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, cur) {
		t.Fatal("Apply(Decode(Encode(Diff))) mismatch")
	}
	return runs
}

func TestDiffEqual(t *testing.T) {
	b := []byte{1, 2, 3, 4}
	runs := Diff(b, []byte{1, 2, 3, 4}, DefaultGap)
	if runs == nil || len(runs) != 0 {
		t.Fatalf("diff of equal buffers = %v, want empty", runs)
	}
}

func TestDiffLengthMismatch(t *testing.T) {
	if runs := Diff([]byte{1, 2}, []byte{1, 2, 3}, DefaultGap); runs != nil {
		t.Fatalf("diff across lengths = %v, want nil", runs)
	}
}

func TestDiffSingleChange(t *testing.T) {
	base := make([]byte, 64)
	cur := make([]byte, 64)
	copy(cur, base)
	cur[17] = 0xff
	runs := roundTrip(t, base, cur, DefaultGap)
	if len(runs) != 1 || runs[0].Off != 17 || len(runs[0].Data) != 1 {
		t.Fatalf("runs = %v, want one single-byte run at 17", runs)
	}
}

func TestDiffCoalescesNearbyChanges(t *testing.T) {
	base := make([]byte, 64)
	cur := make([]byte, 64)
	cur[10] = 1
	cur[14] = 1 // 3 unchanged bytes between: within gap 8 → one run
	runs := roundTrip(t, base, cur, 8)
	if len(runs) != 1 || runs[0].Off != 10 || len(runs[0].Data) != 5 {
		t.Fatalf("runs = %v, want one coalesced run [10,15)", runs)
	}
}

func TestDiffSplitsDistantChanges(t *testing.T) {
	base := make([]byte, 64)
	cur := make([]byte, 64)
	cur[0] = 1
	cur[40] = 1
	runs := roundTrip(t, base, cur, 8)
	if len(runs) != 2 {
		t.Fatalf("runs = %v, want two runs", runs)
	}
}

func TestDiffEdges(t *testing.T) {
	base := []byte{9, 9, 9, 9}
	cur := []byte{1, 9, 9, 2} // changes at both ends
	roundTrip(t, base, cur, 1)
	roundTrip(t, base, []byte{1, 2, 3, 4}, DefaultGap)
	roundTrip(t, []byte{}, []byte{}, DefaultGap)
}

func TestDiffRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(256)
		base := make([]byte, n)
		rng.Read(base)
		cur := make([]byte, n)
		copy(cur, base)
		for flips := rng.Intn(8); flips > 0; flips-- {
			if n == 0 {
				break
			}
			cur[rng.Intn(n)] ^= byte(1 + rng.Intn(255))
		}
		roundTrip(t, base, cur, 1+rng.Intn(16))
	}
}

func TestApplyRejectsOutOfRangeRun(t *testing.T) {
	if _, err := Apply([]byte{1, 2}, []Run{{Off: 1, Data: []byte{0, 0}}}); err == nil {
		t.Fatal("out-of-range run applied without error")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	// Overlapping runs.
	enc := Encode([]Run{{Off: 0, Data: []byte{1, 2, 3, 4}}, {Off: 2, Data: []byte{5}}})
	if _, err := Decode(enc); err == nil {
		t.Fatal("overlapping runs decoded without error")
	}
	// Trailing garbage.
	enc = append(Encode([]Run{{Off: 0, Data: []byte{1}}}), 0, 0, 0, 0)
	if _, err := Decode(enc); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
	// Truncated.
	if _, err := Decode(Encode([]Run{{Off: 0, Data: []byte{1, 2, 3}}})[:6]); err == nil {
		t.Fatal("truncated encoding decoded without error")
	}
}

func TestEncodedSizeFavorsFullBodyWhenDense(t *testing.T) {
	// A fully rewritten buffer must cost more as a delta than as a body,
	// so the shipping layer's fallback comparison picks the full body.
	base := make([]byte, 32)
	cur := bytes.Repeat([]byte{0xaa}, 32)
	runs := Diff(base, cur, DefaultGap)
	if EncodedSize(runs) <= len(cur) {
		t.Fatalf("dense delta size %d not above body size %d", EncodedSize(runs), len(cur))
	}
}

func BenchmarkDiffSparse(b *testing.B) {
	base := make([]byte, 4096)
	cur := make([]byte, 4096)
	copy(cur, base)
	cur[100] = 1
	cur[2000] = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Diff(base, cur, DefaultGap)
	}
}

func BenchmarkDiffEqualBuffers(b *testing.B) {
	base := make([]byte, 4096)
	cur := make([]byte, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Diff(base, cur, DefaultGap)
	}
}

func BenchmarkApplySparse(b *testing.B) {
	base := make([]byte, 4096)
	runs := []Run{{Off: 100, Data: []byte{1}}, {Off: 2000, Data: []byte{2}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(base, runs); err != nil {
			b.Fatal(err)
		}
	}
}

// Package nameserver implements the type database service the paper
// assumes: "the system can obtain an actual data structure from a data
// type specifier by querying a database that serves as a network name
// server" (§3.2).
//
// A Server is attached to a transport node and answers type-lookup
// requests from its authoritative registry. A Client wraps a local
// registry; lookups that miss locally are resolved over the network and
// cached, so independently started processes (e.g. the TCP deployment)
// need only agree on the name server's address, not on a shared schema
// object.
//
// The lookup protocol deliberately reuses the runtime's message framing
// but lives outside RPC sessions: type resolution can happen while a
// session is in progress (a fetch may reference a type the space has
// never seen).
package nameserver

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"smartrpc/internal/transport"
	"smartrpc/internal/types"
	"smartrpc/internal/wire"
	"smartrpc/internal/xdr"
)

// Procedure names served by the type database.
const (
	lookupByIDProc   = "_typedb.lookupID"
	lookupByNameProc = "_typedb.lookupName"
	registerProc     = "_typedb.register"
	listProc         = "_typedb.list"
)

// ErrClosed is returned by operations on a closed client or server.
var ErrClosed = errors.New("nameserver: closed")

// encodeDesc serializes a descriptor canonically.
func encodeDesc(e *xdr.Encoder, d *types.Desc) {
	e.PutUint32(uint32(d.ID))
	e.PutString(d.Name)
	e.PutUint32(uint32(len(d.Fields)))
	for _, f := range d.Fields {
		e.PutString(f.Name)
		e.PutUint32(uint32(f.Kind))
		e.PutUint32(uint32(f.Elem))
		e.PutUint32(uint32(f.Count))
	}
}

// decodeDesc parses a descriptor.
func decodeDesc(dec *xdr.Decoder) (*types.Desc, error) {
	id, err := dec.Uint32()
	if err != nil {
		return nil, err
	}
	name, err := dec.String()
	if err != nil {
		return nil, err
	}
	n, err := dec.Uint32()
	if err != nil {
		return nil, err
	}
	if n > 1<<12 {
		return nil, fmt.Errorf("nameserver: field count %d out of range", n)
	}
	d := &types.Desc{ID: types.ID(id), Name: name, Fields: make([]types.Field, 0, n)}
	for i := uint32(0); i < n; i++ {
		var f types.Field
		if f.Name, err = dec.String(); err != nil {
			return nil, err
		}
		k, err := dec.Uint32()
		if err != nil {
			return nil, err
		}
		f.Kind = types.Kind(k)
		e, err := dec.Uint32()
		if err != nil {
			return nil, err
		}
		f.Elem = types.ID(e)
		c, err := dec.Uint32()
		if err != nil {
			return nil, err
		}
		f.Count = int(c)
		d.Fields = append(d.Fields, f)
	}
	return d, d.Validate()
}

// Server is the authoritative type database attached to a network node.
type Server struct {
	node transport.Node
	reg  *types.Registry

	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewServer starts a type database service on node, serving from reg.
// Additional types may be registered on reg while the server runs.
func NewServer(node transport.Node, reg *types.Registry) *Server {
	s := &Server{
		node: node,
		reg:  reg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go s.loop()
	return s
}

// Registry returns the authoritative registry.
func (s *Server) Registry() *types.Registry { return s.reg }

// Close shuts the server down.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		_ = s.node.Close()
		<-s.done
	})
	return nil
}

func (s *Server) loop() {
	defer close(s.done)
	for {
		m, err := s.node.Recv()
		if err != nil {
			return
		}
		if m.Kind != wire.KindCall {
			continue // the type database only serves lookups
		}
		s.serve(m)
	}
}

func (s *Server) serve(m wire.Message) {
	reply := func(payload []byte, errStr string) {
		if payload == nil {
			payload = []byte{}
		}
		_ = s.node.Send(wire.Message{
			Kind:    wire.KindReturn,
			Session: m.Session,
			Seq:     m.Seq,
			To:      m.From,
			Err:     errStr,
			Payload: payload,
		})
	}
	dec := xdr.NewDecoder(m.Payload)
	switch m.Proc {
	case lookupByIDProc:
		id, err := dec.Uint32()
		if err != nil {
			reply(nil, err.Error())
			return
		}
		d, err := s.reg.Lookup(types.ID(id))
		if err != nil {
			reply(nil, err.Error())
			return
		}
		enc := xdr.NewEncoder(64)
		encodeDesc(enc, d)
		reply(enc.Bytes(), "")
	case lookupByNameProc:
		name, err := dec.String()
		if err != nil {
			reply(nil, err.Error())
			return
		}
		d, err := s.reg.LookupName(name)
		if err != nil {
			reply(nil, err.Error())
			return
		}
		enc := xdr.NewEncoder(64)
		encodeDesc(enc, d)
		reply(enc.Bytes(), "")
	case registerProc:
		d, err := decodeDesc(dec)
		if err != nil {
			reply(nil, err.Error())
			return
		}
		if err := s.reg.Register(d); err != nil {
			// Idempotent registration of an identical schema is fine.
			if existing, lerr := s.reg.Lookup(d.ID); lerr == nil && sameDesc(existing, d) {
				reply(nil, "")
				return
			}
			reply(nil, err.Error())
			return
		}
		reply(nil, "")
	case listProc:
		names := s.reg.Names()
		enc := xdr.NewEncoder(16 * len(names))
		enc.PutUint32(uint32(len(names)))
		for _, n := range names {
			enc.PutString(n)
		}
		reply(enc.Bytes(), "")
	default:
		reply(nil, fmt.Sprintf("nameserver: unknown procedure %q", m.Proc))
	}
}

// sameDesc reports structural equality of two descriptors.
func sameDesc(a, b *types.Desc) bool {
	if a.ID != b.ID || a.Name != b.Name || len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		if a.Fields[i] != b.Fields[i] {
			return false
		}
	}
	return true
}

// Client resolves types against a remote Server, caching them in a local
// registry that the Smart RPC runtime shares. It owns its transport node.
type Client struct {
	node   transport.Node
	server uint32
	local  *types.Registry
	seq    atomic.Uint64

	mu        sync.Mutex
	pending   map[uint64]chan wire.Message
	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewClient creates a resolver talking to the server space over node.
// local is the registry the runtime uses; resolved types are registered
// into it.
func NewClient(node transport.Node, server uint32, local *types.Registry) *Client {
	c := &Client{
		node:    node,
		server:  server,
		local:   local,
		pending: make(map[uint64]chan wire.Message),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.loop()
	return c
}

// Close shuts the client down.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		close(c.stop)
		_ = c.node.Close()
		<-c.done
		c.mu.Lock()
		for seq, ch := range c.pending {
			close(ch)
			delete(c.pending, seq)
		}
		c.mu.Unlock()
	})
	return nil
}

func (c *Client) loop() {
	defer close(c.done)
	for {
		m, err := c.node.Recv()
		if err != nil {
			return
		}
		if m.Kind != wire.KindReturn {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[m.Seq]
		if ok {
			delete(c.pending, m.Seq)
		}
		c.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

func (c *Client) call(proc string, payload []byte) (wire.Message, error) {
	seq := c.seq.Add(1)
	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	c.pending[seq] = ch
	c.mu.Unlock()
	err := c.node.Send(wire.Message{
		Kind:    wire.KindCall,
		Seq:     seq,
		To:      c.server,
		Proc:    proc,
		Payload: payload,
	})
	if err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return wire.Message{}, err
	}
	select {
	case m, ok := <-ch:
		if !ok {
			return wire.Message{}, ErrClosed
		}
		if m.Err != "" {
			return wire.Message{}, fmt.Errorf("nameserver: %s", m.Err)
		}
		return m, nil
	case <-c.stop:
		return wire.Message{}, ErrClosed
	}
}

// Resolve fetches type id (with its transitive pointer element types) from
// the server and registers everything missing into the local registry.
func (c *Client) Resolve(id types.ID) (*types.Desc, error) {
	if d, err := c.local.Lookup(id); err == nil {
		return d, nil
	}
	queue := []types.ID{id}
	seen := map[types.ID]bool{}
	for len(queue) > 0 {
		next := queue[0]
		queue = queue[1:]
		if seen[next] {
			continue
		}
		seen[next] = true
		if _, err := c.local.Lookup(next); err == nil {
			continue
		}
		enc := xdr.NewEncoder(8)
		enc.PutUint32(uint32(next))
		m, err := c.call(lookupByIDProc, enc.Bytes())
		if err != nil {
			return nil, err
		}
		d, err := decodeDesc(xdr.NewDecoder(m.Payload))
		if err != nil {
			return nil, err
		}
		if err := c.local.Register(d); err != nil {
			return nil, err
		}
		for _, f := range d.Fields {
			if f.Kind == types.Ptr {
				queue = append(queue, f.Elem)
			}
		}
	}
	return c.local.Lookup(id)
}

// ResolveName fetches a type by name, with its transitive closure.
func (c *Client) ResolveName(name string) (*types.Desc, error) {
	if d, err := c.local.LookupName(name); err == nil {
		return d, nil
	}
	enc := xdr.NewEncoder(16 + len(name))
	enc.PutString(name)
	m, err := c.call(lookupByNameProc, enc.Bytes())
	if err != nil {
		return nil, err
	}
	d, err := decodeDesc(xdr.NewDecoder(m.Payload))
	if err != nil {
		return nil, err
	}
	// Register through Resolve to pull in pointer element types too.
	if _, lerr := c.local.Lookup(d.ID); lerr != nil {
		if err := c.local.Register(d); err != nil {
			return nil, err
		}
	}
	for _, f := range d.Fields {
		if f.Kind == types.Ptr {
			if _, err := c.Resolve(f.Elem); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// Publish registers a descriptor with the remote server (idempotent for
// identical schemas).
func (c *Client) Publish(d *types.Desc) error {
	if err := d.Validate(); err != nil {
		return err
	}
	enc := xdr.NewEncoder(128)
	encodeDesc(enc, d)
	_, err := c.call(registerProc, enc.Bytes())
	return err
}

// List returns the names of every type the server knows.
func (c *Client) List() ([]string, error) {
	m, err := c.call(listProc, []byte{})
	if err != nil {
		return nil, err
	}
	dec := xdr.NewDecoder(m.Payload)
	n, err := dec.Uint32()
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("nameserver: name count %d out of range", n)
	}
	names := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		s, err := dec.String()
		if err != nil {
			return nil, err
		}
		names = append(names, s)
	}
	return names, nil
}

package nameserver

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/types"
	"smartrpc/internal/wire"
	"smartrpc/internal/xdr"
)

const serverID = 100

func authoritative(t *testing.T) *types.Registry {
	t.Helper()
	reg := types.NewRegistry()
	reg.MustRegister(&types.Desc{
		ID: 1, Name: "TreeNode",
		Fields: []types.Field{
			{Name: "left", Kind: types.Ptr, Elem: 1},
			{Name: "right", Kind: types.Ptr, Elem: 1},
			{Name: "data", Kind: types.Int64},
		},
	})
	reg.MustRegister(&types.Desc{
		ID: 2, Name: "Pair",
		Fields: []types.Field{
			{Name: "a", Kind: types.Ptr, Elem: 1},
			{Name: "b", Kind: types.Ptr, Elem: 3},
		},
	})
	reg.MustRegister(&types.Desc{
		ID: 3, Name: "Leaf",
		Fields: []types.Field{
			{Name: "v", Kind: types.Float64},
		},
	})
	return reg
}

func setup(t *testing.T) (*Server, *Client, *types.Registry) {
	t.Helper()
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	sn, err := net.Attach(serverID)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sn, authoritative(t))
	t.Cleanup(func() { _ = srv.Close() })
	cn, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	local := types.NewRegistry()
	cli := NewClient(cn, serverID, local)
	t.Cleanup(func() { _ = cli.Close() })
	return srv, cli, local
}

func TestResolveByID(t *testing.T) {
	_, cli, local := setup(t)
	d, err := cli.Resolve(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "TreeNode" || len(d.Fields) != 3 {
		t.Errorf("resolved %+v", d)
	}
	// The local registry now has it.
	if _, err := local.Lookup(1); err != nil {
		t.Errorf("local registry missing resolved type: %v", err)
	}
	// Second resolve is a local hit (server closed to prove it).
	d2, err := cli.Resolve(1)
	if err != nil || d2.ID != 1 {
		t.Errorf("cached resolve = %v, %v", d2, err)
	}
}

func TestResolveTransitiveClosure(t *testing.T) {
	_, cli, local := setup(t)
	// Pair points at TreeNode and Leaf; resolving Pair must pull both.
	if _, err := cli.Resolve(2); err != nil {
		t.Fatal(err)
	}
	for _, id := range []types.ID{1, 2, 3} {
		if _, err := local.Lookup(id); err != nil {
			t.Errorf("type %d not resolved transitively: %v", id, err)
		}
	}
	if err := local.Validate(); err != nil {
		t.Errorf("local registry invalid after resolution: %v", err)
	}
}

func TestResolveName(t *testing.T) {
	_, cli, local := setup(t)
	d, err := cli.ResolveName("Pair")
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != 2 {
		t.Errorf("ResolveName = %+v", d)
	}
	if err := local.Validate(); err != nil {
		t.Errorf("local registry invalid: %v", err)
	}
}

func TestResolveUnknown(t *testing.T) {
	_, cli, _ := setup(t)
	if _, err := cli.Resolve(99); err == nil {
		t.Error("unknown type resolved")
	}
	if _, err := cli.ResolveName("Nope"); err == nil {
		t.Error("unknown name resolved")
	}
}

func TestPublishAndList(t *testing.T) {
	srv, cli, _ := setup(t)
	d := &types.Desc{
		ID: 10, Name: "Fresh",
		Fields: []types.Field{{Name: "x", Kind: types.Int32}},
	}
	if err := cli.Publish(d); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Lookup(10); err != nil {
		t.Errorf("server missing published type: %v", err)
	}
	// Idempotent republish of the identical schema.
	if err := cli.Publish(d); err != nil {
		t.Errorf("identical republish rejected: %v", err)
	}
	// Conflicting republish rejected.
	bad := &types.Desc{ID: 10, Name: "Fresh", Fields: []types.Field{{Name: "y", Kind: types.Int64}}}
	if err := cli.Publish(bad); err == nil {
		t.Error("conflicting republish accepted")
	}
	names, err := cli.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Fresh", "Leaf", "Pair", "TreeNode"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("List = %v, want %v", names, want)
	}
}

func TestPublishInvalidDescriptor(t *testing.T) {
	_, cli, _ := setup(t)
	if err := cli.Publish(&types.Desc{}); err == nil {
		t.Error("invalid descriptor published")
	}
}

func TestClientClosedErrors(t *testing.T) {
	_, cli, _ := setup(t)
	_ = cli.Close()
	if _, err := cli.Resolve(1); err == nil {
		t.Error("resolve after close succeeded")
	}
}

func TestServerIgnoresNonCalls(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	sn, _ := net.Attach(serverID)
	srv := NewServer(sn, authoritative(t))
	t.Cleanup(func() { _ = srv.Close() })
	raw, _ := net.Attach(5)
	// A stray fetch should be silently ignored, then a real lookup works.
	if err := raw.Send(wire.Message{Kind: wire.KindFetch, To: serverID, Payload: []byte{}}); err != nil {
		t.Fatal(err)
	}
	enc := xdr.NewEncoder(8)
	enc.PutUint32(1)
	if err := raw.Send(wire.Message{Kind: wire.KindCall, Seq: 1, To: serverID, Proc: "_typedb.lookupID", Payload: enc.Bytes()}); err != nil {
		t.Fatal(err)
	}
	m, err := raw.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Err != "" || m.Kind != wire.KindReturn {
		t.Errorf("lookup reply = %+v", m)
	}
}

func TestServerUnknownProcedure(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	sn, _ := net.Attach(serverID)
	srv := NewServer(sn, authoritative(t))
	t.Cleanup(func() { _ = srv.Close() })
	raw, _ := net.Attach(5)
	if err := raw.Send(wire.Message{Kind: wire.KindCall, Seq: 2, To: serverID, Proc: "bogus", Payload: []byte{}}); err != nil {
		t.Fatal(err)
	}
	m, err := raw.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Err == "" || !strings.Contains(m.Err, "unknown procedure") {
		t.Errorf("reply = %+v", m)
	}
}

func TestDescRoundTrip(t *testing.T) {
	reg := authoritative(t)
	for _, id := range []types.ID{1, 2, 3} {
		d, err := reg.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		enc := xdr.NewEncoder(128)
		encodeDesc(enc, d)
		got, err := decodeDesc(xdr.NewDecoder(enc.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != d.ID || got.Name != d.Name || !reflect.DeepEqual(got.Fields, d.Fields) {
			t.Errorf("descriptor round trip:\n got %+v\nwant %+v", got, d)
		}
	}
}

func TestDecodeDescTruncated(t *testing.T) {
	reg := authoritative(t)
	d, _ := reg.Lookup(1)
	enc := xdr.NewEncoder(128)
	encodeDesc(enc, d)
	full := enc.Bytes()
	for n := 0; n < len(full); n += 8 {
		if _, err := decodeDesc(xdr.NewDecoder(full[:n])); err == nil {
			t.Errorf("truncation to %d accepted", n)
		}
	}
}

func TestClosedSentinel(t *testing.T) {
	if !errors.Is(ErrClosed, ErrClosed) {
		t.Error("sentinel identity")
	}
}

// TestEndToEndWithRuntime exercises the intended deployment: two spaces
// that share no registry object bootstrap their schemas from the name
// server, then run a Smart RPC session.
func TestEndToEndWithRuntime(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	sn, _ := net.Attach(serverID)
	srv := NewServer(sn, authoritative(t))
	t.Cleanup(func() { _ = srv.Close() })

	resolve := func(clientNodeID uint32) *types.Registry {
		cn, err := net.Attach(clientNodeID)
		if err != nil {
			t.Fatal(err)
		}
		local := types.NewRegistry()
		cli := NewClient(cn, serverID, local)
		t.Cleanup(func() { _ = cli.Close() })
		if _, err := cli.ResolveName("TreeNode"); err != nil {
			t.Fatal(err)
		}
		return local
	}
	regA := resolve(201)
	regB := resolve(202)
	if regA == regB {
		t.Fatal("registries must be independent")
	}
	// The registries were resolved independently but describe the same
	// schema.
	da, _ := regA.Lookup(1)
	db, _ := regB.Lookup(1)
	if !reflect.DeepEqual(da, db) {
		t.Errorf("independently resolved schemas differ: %+v vs %+v", da, db)
	}
}

func TestConcurrentResolvers(t *testing.T) {
	// Many clients resolve the same schema concurrently from one server.
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	sn, _ := net.Attach(serverID)
	srv := NewServer(sn, authoritative(t))
	t.Cleanup(func() { _ = srv.Close() })

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		id := uint32(200 + i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			cn, err := net.Attach(id)
			if err != nil {
				errs <- err
				return
			}
			local := types.NewRegistry()
			cli := NewClient(cn, serverID, local)
			defer cli.Close()
			if _, err := cli.Resolve(2); err != nil {
				errs <- err
				return
			}
			if err := local.Validate(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

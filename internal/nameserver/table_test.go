package nameserver

import (
	"strings"
	"testing"

	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/types"
)

// TestRegistrationCollisions drives the publish path through every
// collision shape: the server must accept byte-identical re-registration
// (restarted clients republish their schemas) and reject anything that
// would silently change the meaning of an ID other spaces already
// resolved.
func TestRegistrationCollisions(t *testing.T) {
	base := &types.Desc{
		ID: 10, Name: "Record",
		Fields: []types.Field{
			{Name: "k", Kind: types.Int64},
			{Name: "next", Kind: types.Ptr, Elem: 10},
		},
	}
	cases := []struct {
		name    string
		desc    *types.Desc
		wantErr bool
	}{
		{
			name:    "identical republish",
			desc:    base,
			wantErr: false,
		},
		{
			name: "same ID, different type name",
			desc: &types.Desc{ID: 10, Name: "Renamed",
				Fields: base.Fields},
			wantErr: true,
		},
		{
			name: "same ID, field renamed",
			desc: &types.Desc{ID: 10, Name: "Record",
				Fields: []types.Field{
					{Name: "key", Kind: types.Int64},
					{Name: "next", Kind: types.Ptr, Elem: 10},
				}},
			wantErr: true,
		},
		{
			name: "same ID, field kind changed",
			desc: &types.Desc{ID: 10, Name: "Record",
				Fields: []types.Field{
					{Name: "k", Kind: types.Int32},
					{Name: "next", Kind: types.Ptr, Elem: 10},
				}},
			wantErr: true,
		},
		{
			name: "same ID, field dropped",
			desc: &types.Desc{ID: 10, Name: "Record",
				Fields: []types.Field{
					{Name: "k", Kind: types.Int64},
				}},
			wantErr: true,
		},
		{
			name: "same ID, pointer element changed",
			desc: &types.Desc{ID: 10, Name: "Record",
				Fields: []types.Field{
					{Name: "k", Kind: types.Int64},
					{Name: "next", Kind: types.Ptr, Elem: 1},
				}},
			wantErr: true,
		},
		{
			name: "same ID, array length changed",
			desc: &types.Desc{ID: 10, Name: "Record",
				Fields: []types.Field{
					{Name: "k", Kind: types.Int64, Count: 4},
					{Name: "next", Kind: types.Ptr, Elem: 10},
				}},
			wantErr: true,
		},
		{
			name: "name collision under a fresh ID",
			desc: &types.Desc{ID: 11, Name: "Record",
				Fields: []types.Field{
					{Name: "k", Kind: types.Int64},
				}},
			wantErr: true,
		},
	}
	_, cli, _ := setup(t)
	if err := cli.Publish(base); err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := cli.Publish(tc.desc)
			if tc.wantErr && err == nil {
				t.Errorf("collision accepted: %+v", tc.desc)
			}
			if !tc.wantErr && err != nil {
				t.Errorf("publish rejected: %v", err)
			}
		})
	}
	// Whatever the collisions did, the authoritative schema must be the
	// original one.
	d, err := cli.Resolve(10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "Record" || len(d.Fields) != 2 || d.Fields[0].Kind != types.Int64 {
		t.Errorf("schema mutated by rejected collisions: %+v", d)
	}
}

// TestLookupDeadOrigin drives every client operation against origins in
// the two dead states a process actually meets: a server that existed
// and shut down, and an address nothing ever listened on. Each call
// must fail fast with a routing error — not hang waiting for a reply
// that cannot come.
func TestLookupDeadOrigin(t *testing.T) {
	ops := []struct {
		name string
		call func(c *Client) error
	}{
		{"resolve by ID", func(c *Client) error { _, err := c.Resolve(1); return err }},
		{"resolve by name", func(c *Client) error { _, err := c.ResolveName("TreeNode"); return err }},
		{"publish", func(c *Client) error {
			return c.Publish(&types.Desc{ID: 20, Name: "X",
				Fields: []types.Field{{Name: "v", Kind: types.Int32}}})
		}},
		{"list", func(c *Client) error { _, err := c.List(); return err }},
	}
	deadServers := []struct {
		name  string
		setup func(t *testing.T, net *transport.Network) uint32
	}{
		{
			name: "server shut down",
			setup: func(t *testing.T, net *transport.Network) uint32 {
				sn, err := net.Attach(serverID)
				if err != nil {
					t.Fatal(err)
				}
				srv := NewServer(sn, authoritative(t))
				_ = srv.Close()
				return serverID
			},
		},
		{
			name: "never attached",
			setup: func(t *testing.T, net *transport.Network) uint32 {
				return serverID + 1
			},
		},
	}
	for _, ds := range deadServers {
		t.Run(ds.name, func(t *testing.T) {
			net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = net.Close() })
			target := ds.setup(t, net)
			cn, err := net.Attach(1)
			if err != nil {
				t.Fatal(err)
			}
			cli := NewClient(cn, target, types.NewRegistry())
			t.Cleanup(func() { _ = cli.Close() })
			for _, op := range ops {
				t.Run(op.name, func(t *testing.T) {
					err := op.call(cli)
					if err == nil {
						t.Fatal("call against dead origin succeeded")
					}
					if !strings.Contains(err.Error(), "transport") {
						t.Errorf("error %q does not identify the routing failure", err)
					}
				})
			}
		})
	}
}

package bench

import "testing"

// TestScaleoutCheckum runs the scale-out workload at a small size and
// checks the encode-cache effectiveness claims: with N clients sharing
// one origin read-only, only the first walk misses, so the hit rate is
// (N*R-1)/(N*R) for R rounds.
func TestScaleoutHitRate(t *testing.T) {
	res, err := RunScaleout(ScaleoutConfig{Nodes: 255, Clients: 8, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.EncHits == 0 || res.EncMisses == 0 {
		t.Fatalf("degenerate counters: hits=%d misses=%d", res.EncHits, res.EncMisses)
	}
	rate := float64(res.EncHits) / float64(res.EncHits+res.EncMisses)
	if rate < 0.90 {
		t.Fatalf("read-only 8-client hit rate %.3f, want >= 0.90 (hits=%d misses=%d)",
			rate, res.EncHits, res.EncMisses)
	}
	if res.EncInvalidations != 0 {
		t.Fatalf("read-only run recorded %d invalidations", res.EncInvalidations)
	}
}

// TestScaleoutMutation checks that a mutation sweep both keeps the
// checksum oracle honest (RunScaleout fails internally on any stale
// byte) and actually erodes the hit rate via invalidation.
func TestScaleoutMutation(t *testing.T) {
	ro, err := RunScaleout(ScaleoutConfig{Nodes: 255, Clients: 4, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	mut, err := RunScaleout(ScaleoutConfig{Nodes: 255, Clients: 4, Rounds: 2, MutationRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if mut.EncInvalidations == 0 {
		t.Fatal("mutating run recorded no encode-cache invalidations")
	}
	if mut.EncMisses <= ro.EncMisses {
		t.Fatalf("mutating run misses %d not above read-only misses %d",
			mut.EncMisses, ro.EncMisses)
	}
}

// TestScaleoutAblation checks the DisableEncodeCache ablation: no cache
// counters move, and the checksum still validates (the cache is a pure
// performance artifact, invisible to correctness).
func TestScaleoutAblation(t *testing.T) {
	res, err := RunScaleout(ScaleoutConfig{Nodes: 255, Clients: 4, Rounds: 2, DisableEncodeCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.EncHits != 0 || res.EncMisses != 0 || res.EncBytes != 0 {
		t.Fatalf("ablation run moved cache counters: hits=%d misses=%d bytes=%d",
			res.EncHits, res.EncMisses, res.EncBytes)
	}
}

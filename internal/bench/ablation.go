package bench

import (
	"fmt"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/types"
)

// RunPathWalk has the callee walk the leftmost root-to-leaf path of a
// tree owned by the caller. With hint=true, the caller (the data owner
// serving the fetches) follows only the "left" pointer during closure
// traversal — §6's programmer-supplied shape suggestion for a path-shaped
// consumer.
func RunPathWalk(model netsim.Model, levels, closure int, hint bool) (TreeResult, error) {
	clock := &netsim.Clock{}
	stats := &netsim.Stats{}
	net, err := transport.NewNetwork(model, clock, stats)
	if err != nil {
		return TreeResult{}, err
	}
	defer net.Close()
	reg := NewRegistry()
	an, err := net.Attach(CallerID)
	if err != nil {
		return TreeResult{}, err
	}
	bn, err := net.Attach(CalleeID)
	if err != nil {
		return TreeResult{}, err
	}
	ownerOpts := core.Options{ID: CallerID, Node: an, Registry: reg, ClosureSize: closure}
	if hint {
		ownerOpts.ClosureHints = map[types.ID][]string{NodeType: {"left"}}
	}
	owner, err := core.New(ownerOpts)
	if err != nil {
		return TreeResult{}, err
	}
	defer owner.Close()
	walker, err := core.New(core.Options{ID: CalleeID, Node: bn, Registry: reg, ClosureSize: closure})
	if err != nil {
		return TreeResult{}, err
	}
	defer walker.Close()

	err = walker.Register("leftPath", func(ctx *core.Ctx, args []core.Value) ([]core.Value, error) {
		rt := ctx.Runtime()
		var n, sum int64
		v := args[0]
		for !v.IsNullPtr() {
			ref, err := rt.Deref(v)
			if err != nil {
				return nil, err
			}
			n++
			d, err := ref.Int("data", 0)
			if err != nil {
				return nil, err
			}
			sum += d
			if v, err = ref.Ptr("left", 0); err != nil {
				return nil, err
			}
		}
		return []core.Value{core.Int64Value(n), core.Int64Value(sum)}, nil
	})
	if err != nil {
		return TreeResult{}, err
	}

	root, err := BuildTree(owner, (1<<levels)-1)
	if err != nil {
		return TreeResult{}, err
	}
	clock.Reset()
	stats.Reset()
	if err := owner.BeginSession(); err != nil {
		return TreeResult{}, err
	}
	res, err := owner.Call(CalleeID, "leftPath", []core.Value{root})
	if err != nil {
		return TreeResult{}, err
	}
	if err := owner.EndSession(); err != nil {
		return TreeResult{}, err
	}
	return TreeResult{
		Time:      clock.Now(),
		Callbacks: walker.Stats().FetchesSent,
		Messages:  stats.Messages(),
		Bytes:     stats.Bytes(),
		Visited:   res[0].Int64(),
		Sum:       res[1].Int64(),
	}, nil
}

// ClosureHintAblation compares unrestricted closure traversal against a
// "left"-only shape hint on a leftmost-path workload.
func ClosureHintAblation(model netsim.Model, levels, closure int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, hint := range []bool{false, true} {
		name := "hint=none"
		if hint {
			name = "hint=left-only"
		}
		res, err := RunPathWalk(model, levels, closure, hint)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, AblationRow{
			Name: name, Time: res.Time,
			Callbacks: res.Callbacks, Messages: res.Messages, Bytes: res.Bytes,
		})
	}
	return rows, nil
}

// RunChainUpdate drives a three-space chain A→B→C where B and C both
// update A's data on every hop. Under the paper's piggyback protocol the
// modified set rides the existing control transfers; under the naive
// write-back ablation every hop adds separate write-back messages to the
// origin.
func RunChainUpdate(model netsim.Model, hops int, coherence core.Coherence) (TreeResult, error) {
	clock := &netsim.Clock{}
	stats := &netsim.Stats{}
	net, err := transport.NewNetwork(model, clock, stats)
	if err != nil {
		return TreeResult{}, err
	}
	defer net.Close()
	reg := NewRegistry()
	const thirdID uint32 = 3
	mk := func(id uint32) (*core.Runtime, error) {
		node, err := net.Attach(id)
		if err != nil {
			return nil, err
		}
		return core.New(core.Options{ID: id, Node: node, Registry: reg, Coherence: coherence})
	}
	a, err := mk(CallerID)
	if err != nil {
		return TreeResult{}, err
	}
	defer a.Close()
	b, err := mk(CalleeID)
	if err != nil {
		return TreeResult{}, err
	}
	defer b.Close()
	c, err := mk(thirdID)
	if err != nil {
		return TreeResult{}, err
	}
	defer c.Close()

	bump := func(ctx *core.Ctx, args []core.Value) ([]core.Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		d, err := ref.Int("data", 0)
		if err != nil {
			return nil, err
		}
		return []core.Value{core.Int64Value(d)}, ref.SetInt("data", 0, d+1)
	}
	if err := c.Register("bump", bump); err != nil {
		return TreeResult{}, err
	}
	err = b.Register("bumpAndForward", func(ctx *core.Ctx, args []core.Value) ([]core.Value, error) {
		if _, err := bump(ctx, args); err != nil {
			return nil, err
		}
		return ctx.Call(thirdID, "bump", args)
	})
	if err != nil {
		return TreeResult{}, err
	}

	node, err := a.NewObject(NodeType)
	if err != nil {
		return TreeResult{}, err
	}
	clock.Reset()
	stats.Reset()
	if err := a.BeginSession(); err != nil {
		return TreeResult{}, err
	}
	for i := 0; i < hops; i++ {
		if _, err := a.Call(CalleeID, "bumpAndForward", []core.Value{node}); err != nil {
			return TreeResult{}, err
		}
	}
	if err := a.EndSession(); err != nil {
		return TreeResult{}, err
	}
	ref, err := a.Deref(node)
	if err != nil {
		return TreeResult{}, err
	}
	final, err := ref.Int("data", 0)
	if err != nil {
		return TreeResult{}, err
	}
	return TreeResult{
		Time:     clock.Now(),
		Messages: stats.Messages(),
		Bytes:    stats.Bytes(),
		Sum:      final,
	}, nil
}

// ChainCoherenceAblation runs the three-space chain under both coherency
// protocols, reporting cost and the final counter value (2×hops when the
// protocol is correct).
func ChainCoherenceAblation(model netsim.Model, hops int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, co := range []core.Coherence{core.CoherencePiggyback, core.CoherenceWriteBack} {
		name := "chain/piggyback"
		if co == core.CoherenceWriteBack {
			name = "chain/writeback"
		}
		res, err := RunChainUpdate(model, hops, co)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, AblationRow{
			Name: fmt.Sprintf("%s (final=%d, want %d)", name, res.Sum, 2*hops),
			Time: res.Time, Messages: res.Messages, Bytes: res.Bytes,
		})
	}
	return rows, nil
}

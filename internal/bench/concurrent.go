package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/histcheck"
	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
)

// This file is the concurrent-sessions workload: K client spaces hold
// truly overlapping sessions (one goroutine each) over one shared
// origin tree, randomly reading and writing node values, while an
// internal/histcheck recorder captures every operation. The run fails
// unless the recorded multi-client history is linearizable, so the
// benchmark doubles as a coherency check: every number it reports was
// produced by an execution proven consistent.
//
// Concurrency makes wire traffic and virtual time interleaving-
// dependent, so unlike the sequential families only the operation
// counts — sessions, recorded reads/writes, checked operations and
// partitions, all functions of the per-client seeds alone — are
// deterministic and snapshot-checked (BENCH_8.json). Traffic and wall
// time are reported for the human tables.

// ConcurrentConfig parameterizes one concurrent-sessions run.
type ConcurrentConfig struct {
	// Nodes is the shared tree size.
	Nodes int
	// ClosureSize is the eager-transfer budget in bytes.
	ClosureSize int
	// Clients is the number of concurrently running client spaces.
	Clients int
	// Rounds is how many sessions each client runs back to back.
	Rounds int
	// Visits is how many random nodes each session touches.
	Visits int
	// WriteRatio is the fraction of visits that write (0.0 = read-only).
	WriteRatio float64
	// PageSize overrides the simulated page size.
	PageSize int
	// Model is the network cost model; zero value = free network.
	Model netsim.Model
	// Seed varies the per-client visit streams.
	Seed int64
}

func (c *ConcurrentConfig) fill() error {
	if c.Nodes <= 0 {
		c.Nodes = 8191
	}
	if c.ClosureSize == 0 {
		c.ClosureSize = 8192
	}
	if c.Clients <= 0 {
		c.Clients = 2
	}
	if c.Clients > 64 {
		return fmt.Errorf("bench: %d concurrent clients (max 64)", c.Clients)
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.Visits <= 0 {
		c.Visits = 8
	}
	if c.WriteRatio < 0 || c.WriteRatio > 1 {
		return fmt.Errorf("bench: write ratio %v out of [0,1]", c.WriteRatio)
	}
	return nil
}

// ConcurrentResult is the outcome of one concurrent-sessions run.
type ConcurrentResult struct {
	// Sessions, Reads, Writes count committed sessions and the
	// operations they performed (deterministic per seed).
	Sessions, Reads, Writes uint64
	// CheckedOps and Partitions are the linearizability checker's
	// history size and per-object partition count (deterministic:
	// read-your-own-writes reads are excluded by the recorder, but which
	// reads those are is a function of the per-client streams alone).
	CheckedOps, Partitions uint64
	// CheckTime is how long the linearizability search took.
	CheckTime time.Duration
	// Wall is the wall-clock time of the concurrent phase.
	Wall time.Duration
	// Messages and Bytes are total network traffic
	// (interleaving-dependent; reported, never snapshot-checked).
	Messages, Bytes uint64
}

// concTracer forwards session lifecycle trace events into a histcheck
// client.
type concTracer struct{ c *histcheck.Client }

func (t concTracer) Trace(e core.Event) {
	switch e.Kind {
	case core.EvSessionBegin:
		t.c.OnSessionBegin()
	case core.EvSessionEnd:
		t.c.OnSessionEnd()
	}
}

// RunConcurrent executes one concurrent-sessions run and verifies the
// recorded history is linearizable.
func RunConcurrent(cfg ConcurrentConfig) (ConcurrentResult, error) {
	if err := cfg.fill(); err != nil {
		return ConcurrentResult{}, err
	}
	clock := &netsim.Clock{}
	stats := &netsim.Stats{}
	net, err := transport.NewNetwork(cfg.Model, clock, stats)
	if err != nil {
		return ConcurrentResult{}, err
	}
	defer net.Close()
	reg := NewRegistry()

	mk := func(id uint32) (*core.Runtime, error) {
		node, err := net.Attach(id)
		if err != nil {
			return nil, err
		}
		return core.New(core.Options{
			ID:          id,
			Node:        node,
			Registry:    reg,
			Policy:      core.PolicySmart,
			ClosureSize: cfg.ClosureSize,
			PageSize:    cfg.PageSize,
			Concurrent:  true,
		})
	}
	server, err := mk(PipelineServerID)
	if err != nil {
		return ConcurrentResult{}, err
	}
	defer server.Close()
	clients := make([]*core.Runtime, cfg.Clients)
	for i := range clients {
		if clients[i], err = mk(PipelineClientID0 + uint32(i)); err != nil {
			return ConcurrentResult{}, err
		}
		defer clients[i].Close()
	}

	root, err := BuildTree(server, cfg.Nodes)
	if err != nil {
		return ConcurrentResult{}, err
	}
	nodes, vals, err := collectTreeNodes(server, root)
	if err != nil {
		return ConcurrentResult{}, err
	}
	rec := histcheck.NewRecorder()
	for i, lp := range nodes {
		rec.Init(lp, vals[i])
	}

	stats.Reset()
	var out ConcurrentResult
	var wg sync.WaitGroup
	errs := make([]error, cfg.Clients)
	start := time.Now()
	for ci, cl := range clients {
		hc := rec.Client(ci)
		cl.SetTracer(concTracer{c: hc})
		wg.Add(1)
		go func(ci int, cl *core.Runtime, hc *histcheck.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919))
			errs[ci] = runConcClient(cl, hc, rng, nodes, ci, cfg)
		}(ci, cl, hc)
	}
	wg.Wait()
	out.Wall = time.Since(start)
	for ci, err := range errs {
		if err != nil {
			return ConcurrentResult{}, fmt.Errorf("bench: concurrent client %d: %w", ci, err)
		}
	}

	checkStart := time.Now()
	res := rec.Check()
	out.CheckTime = time.Since(checkStart)
	if !res.Ok {
		return ConcurrentResult{}, fmt.Errorf("bench: concurrent history not linearizable:\n%s", res.Err())
	}
	out.CheckedOps = uint64(res.Ops)
	out.Partitions = uint64(res.Partitions)
	out.Sessions = uint64(cfg.Clients * cfg.Rounds)
	for ci := 0; ci < cfg.Clients; ci++ {
		// Re-derive each client's deterministic read/write split from its
		// seed stream (cheaper than threading counters out of goroutines,
		// and it pins the contract that the stream alone decides).
		rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919))
		for r := 0; r < cfg.Rounds; r++ {
			for v := 0; v < cfg.Visits; v++ {
				rng.Intn(len(nodes))
				if rng.Float64() < cfg.WriteRatio {
					out.Writes++
				} else {
					out.Reads++
				}
			}
		}
	}
	out.Messages = stats.Messages()
	out.Bytes = stats.Bytes()
	return out, nil
}

// runConcClient drives one client's rounds: every session imports
// random nodes and reads or writes their data field, recorded through
// the histcheck session.
func runConcClient(cl *core.Runtime, hc *histcheck.Client, rng *rand.Rand, nodes []wire.LongPtr, ci int, cfg ConcurrentConfig) error {
	for round := 0; round < cfg.Rounds; round++ {
		hs := hc.Begin()
		if err := cl.BeginSession(); err != nil {
			hs.Abandon()
			return err
		}
		for v := 0; v < cfg.Visits; v++ {
			lp := nodes[rng.Intn(len(nodes))]
			pv, err := cl.ImportPtr(lp)
			if err == nil {
				var ref core.Ref
				ref, err = cl.Deref(pv)
				if err == nil {
					if rng.Float64() < cfg.WriteRatio {
						wv := int64(ci+1)*1_000_000 + int64(round)*1_000 + int64(v)
						err = hs.Write(lp, wv, func() error {
							return ref.SetInt("data", 0, wv)
						})
					} else {
						_, err = hs.Read(lp, func() (int64, error) {
							return ref.Int("data", 0)
						})
					}
				}
			}
			if err != nil {
				cl.AbortSession()
				hs.Abandon()
				return err
			}
		}
		if err := cl.EndSession(); err != nil {
			cl.AbortSession()
			hs.Abandon()
			return err
		}
		hs.Commit()
	}
	return nil
}

// collectTreeNodes walks a server-local tree in preorder and returns
// every node's long pointer with its committed data value.
func collectTreeNodes(rt *core.Runtime, root core.Value) ([]wire.LongPtr, []int64, error) {
	var lps []wire.LongPtr
	var vals []int64
	var walk func(v core.Value) error
	walk = func(v core.Value) error {
		if v.IsNullPtr() {
			return nil
		}
		ref, err := rt.Deref(v)
		if err != nil {
			return err
		}
		d, err := ref.Int("data", 0)
		if err != nil {
			return err
		}
		lps = append(lps, v.LP)
		vals = append(vals, d)
		for _, f := range []string{"left", "right"} {
			c, err := ref.Ptr(f, 0)
			if err != nil {
				return err
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, nil, err
	}
	return lps, vals, nil
}

package bench

import (
	"fmt"
	"sync"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
)

// This file is the asynchronous-fetch-pipeline workload: a pointer-chase
// designed to defeat the eager closure. The shared data server owns one
// left-linked chain per client (TreeNode with only `left` set); each
// client imports its chain's root pointer, begins its own session, and
// walks the chain by dereference. Every closure shipment ends at a
// pointer into a cold page, so without speculation the walk blocks on one
// demand-fetch round trip per closure — the worst case for the paper's
// protocol and the best case for the speculative prefetcher, which can
// keep the next closure in flight while the client chews through the
// current one.
//
// No client ever issues a Call: chains are reached through ImportPtr, so
// N clients hold N independent sessions against one server and their
// FETCH streams exercise the server's concurrent serve pool. With
// Clients=1 and SyncPrefetch the run is fully deterministic (the BENCH_5
// regression rows); multi-client asynchronous runs demonstrate wall-time
// overlap and are not snapshot-checked.

// PipelineServerID is the shared data server's space ID; clients are
// numbered PipelineClientID0, +1, +2, ...
const (
	PipelineServerID  uint32 = 1
	PipelineClientID0 uint32 = 100
)

// PipelineConfig parameterizes one pointer-chase run.
type PipelineConfig struct {
	// ChainNodes is the length of each client's chain.
	ChainNodes int
	// Clients is the number of concurrent client spaces (default 1).
	Clients int
	// ClosureSize is the eager-transfer budget in bytes.
	ClosureSize int
	// PageSize overrides the simulated page size.
	PageSize int
	// Prefetch enables the speculative prefetcher on the clients;
	// PrefetchDepth and SyncPrefetch pass through to core.Options.
	Prefetch      bool
	PrefetchDepth int
	SyncPrefetch  bool
	// Model is the network cost model; zero value = free network (tests).
	Model netsim.Model
	// LinkDelay adds a real wall-clock delivery delay per message, making
	// hidden round trips observable in WallTime. Leave zero for modeled
	// (deterministic) runs.
	LinkDelay time.Duration
	// Think models per-node application computation in the wall-clock
	// experiments: each client sleeps Think after every ThinkEvery nodes
	// chased (ThinkEvery defaults to 1). Speculation can only shorten wall
	// time when there is computation to overlap the round trips with;
	// leave zero for modeled runs.
	Think      time.Duration
	ThinkEvery int
}

func (c *PipelineConfig) fill() error {
	if c.ChainNodes <= 0 {
		c.ChainNodes = 8191
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.ClosureSize == 0 {
		c.ClosureSize = 8192
	}
	if c.Clients > 64 {
		return fmt.Errorf("bench: %d pipeline clients (max 64)", c.Clients)
	}
	if c.ThinkEvery <= 0 {
		c.ThinkEvery = 1
	}
	return nil
}

// PipelineResult is the outcome of one pointer-chase run. All counters
// are summed over the clients.
type PipelineResult struct {
	// Time is the virtual processing time; WallTime the real elapsed time
	// (meaningful only with LinkDelay set).
	Time     time.Duration
	WallTime time.Duration
	// Messages and Bytes are total network traffic.
	Messages, Bytes uint64
	// Fetches counts the clients' FETCH messages, demand and speculative
	// alike; BlockingFetches = Fetches - PfIssued is how many round trips
	// the chases actually stalled on.
	Fetches, BlockingFetches uint64
	// Faults is the clients' access-violation count.
	Faults uint64
	// PfIssued..PfBytes aggregate the clients' prefetch counters.
	PfIssued, PfCoalesced, PfHits, PfWasted, PfBytes uint64
	// Sum is the total chase checksum (validates correctness).
	Sum int64
}

// RunPipeline executes one pointer-chase run: the server builds the
// chains, every client chases its own concurrently, and each client tears
// its session down.
func RunPipeline(cfg PipelineConfig) (PipelineResult, error) {
	if err := cfg.fill(); err != nil {
		return PipelineResult{}, err
	}
	clock := &netsim.Clock{}
	stats := &netsim.Stats{}
	net, err := transport.NewNetwork(cfg.Model, clock, stats)
	if err != nil {
		return PipelineResult{}, err
	}
	defer net.Close()
	reg := NewRegistry()

	mk := func(id uint32, prefetch bool) (*core.Runtime, error) {
		node, err := net.Attach(id)
		if err != nil {
			return nil, err
		}
		return core.New(core.Options{
			ID:            id,
			Node:          node,
			Registry:      reg,
			Policy:        core.PolicySmart,
			ClosureSize:   cfg.ClosureSize,
			PageSize:      cfg.PageSize,
			Prefetch:      prefetch,
			PrefetchDepth: cfg.PrefetchDepth,
			SyncPrefetch:  cfg.SyncPrefetch,
		})
	}
	server, err := mk(PipelineServerID, false)
	if err != nil {
		return PipelineResult{}, err
	}
	defer server.Close()

	clients := make([]*core.Runtime, cfg.Clients)
	roots := make([]wire.LongPtr, cfg.Clients)
	wants := make([]int64, cfg.Clients)
	for i := range clients {
		if clients[i], err = mk(PipelineClientID0+uint32(i), cfg.Prefetch); err != nil {
			return PipelineResult{}, err
		}
		defer clients[i].Close()
		root, sum, err := BuildChain(server, cfg.ChainNodes, int64(i)*int64(cfg.ChainNodes))
		if err != nil {
			return PipelineResult{}, err
		}
		roots[i] = root
		wants[i] = sum
	}

	// The chains are built and the runtimes idle: measurement starts here.
	clock.Reset()
	stats.Reset()
	net.SetLinkDelay(cfg.LinkDelay)
	start := time.Now()
	sums := make([]int64, cfg.Clients)
	errs := make([]error, cfg.Clients)
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *core.Runtime) {
			defer wg.Done()
			sums[i], errs[i] = chaseChain(cl, roots[i], cfg.Think, cfg.ThinkEvery)
		}(i, cl)
	}
	wg.Wait()
	net.SetLinkDelay(0)
	wall := time.Since(start)

	out := PipelineResult{
		Time:     clock.Now(),
		WallTime: wall,
		Messages: stats.Messages(),
		Bytes:    stats.Bytes(),
	}
	for i, cl := range clients {
		if errs[i] != nil {
			return PipelineResult{}, fmt.Errorf("bench: pipeline client %d: %w", i, errs[i])
		}
		if sums[i] != wants[i] {
			return PipelineResult{}, fmt.Errorf("bench: pipeline client %d checksum %d, want %d", i, sums[i], wants[i])
		}
		st := cl.Stats()
		out.Fetches += st.FetchesSent
		out.Faults += st.Faults
		out.PfIssued += st.PfIssued
		out.PfCoalesced += st.PfCoalesced
		out.PfHits += st.PfHits
		out.PfWasted += st.PfWasted
		out.PfBytes += st.PfBytes
		out.Sum += sums[i]
	}
	out.BlockingFetches = out.Fetches - out.PfIssued
	return out, nil
}

// chaseChain walks one chain inside its own session and returns the data
// checksum, sleeping think after every thinkEvery nodes to model the
// application computation the speculative fetches overlap with.
func chaseChain(cl *core.Runtime, root wire.LongPtr, think time.Duration, thinkEvery int) (int64, error) {
	v, err := cl.ImportPtr(root)
	if err != nil {
		return 0, err
	}
	if err := cl.BeginSession(); err != nil {
		return 0, err
	}
	var sum int64
	for n := 1; !v.IsNullPtr(); n++ {
		ref, err := cl.Deref(v)
		if err != nil {
			return 0, err
		}
		d, err := ref.Int("data", 0)
		if err != nil {
			return 0, err
		}
		sum += d
		if v, err = ref.Ptr("left", 0); err != nil {
			return 0, err
		}
		if think > 0 && n%thinkEvery == 0 {
			time.Sleep(think)
		}
	}
	if err := cl.EndSession(); err != nil {
		return 0, err
	}
	return sum, nil
}

// BuildChain allocates a left-linked chain of n nodes in rt's heap, node
// data running base+1..base+n from the head, and returns the head's long
// pointer plus the expected data sum.
func BuildChain(rt *core.Runtime, n int, base int64) (wire.LongPtr, int64, error) {
	if n <= 0 {
		return wire.LongPtr{}, 0, fmt.Errorf("bench: chain size must be positive")
	}
	next := core.NullPtr(NodeType)
	var sum int64
	for i := n; i >= 1; i-- {
		v, err := rt.NewObject(NodeType)
		if err != nil {
			return wire.LongPtr{}, 0, err
		}
		ref, err := rt.Deref(v)
		if err != nil {
			return wire.LongPtr{}, 0, err
		}
		if err := ref.SetInt("data", 0, base+int64(i)); err != nil {
			return wire.LongPtr{}, 0, err
		}
		if err := ref.SetPtr("left", 0, next); err != nil {
			return wire.LongPtr{}, 0, err
		}
		sum += base + int64(i)
		next = v
	}
	return next.LP, sum, nil
}

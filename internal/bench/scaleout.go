package bench

import (
	"fmt"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
)

// This file is the multi-client scale-out workload for the origin-side
// encode cache: one shared data server owns a single tree, and N client
// spaces import its root and walk it, each in its own session. Every
// client asks the origin for the same objects, so without the encode
// cache the origin re-marshals the identical bytes N times; with it, the
// first walk pays the encodes and the other N-1 walks (and every warm
// revalidation in later rounds) are served from memoized encodings. A
// mutation-ratio sweep dirties a fraction of the tree between rounds to
// measure how invalidation erodes the hit rate.
//
// Clients run strictly sequentially, so every counter — including the
// cache's hit/miss/invalidation tallies — is deterministic and can be
// snapshot-checked (BENCH_6.json). Wall-clock concurrency is exercised
// elsewhere (the core package's -race tests); this harness measures
// work, not overlap.

// ScaleoutConfig parameterizes one scale-out run.
type ScaleoutConfig struct {
	// Nodes is the shared tree size.
	Nodes int
	// ClosureSize is the eager-transfer budget in bytes.
	ClosureSize int
	// Clients is the number of client spaces sharing the one origin.
	Clients int
	// Rounds is how many times each client walks the tree (>= 1). Each
	// walk is its own session; from round 2 the clients' warm caches
	// revalidate instead of refetching, exercising the validate path of
	// the encode cache.
	Rounds int
	// MutationRatio is the fraction of tree nodes rewritten in the
	// server's heap between rounds (0.0 = read-only sharing).
	MutationRatio float64
	// PageSize overrides the simulated page size.
	PageSize int
	// Model is the network cost model; zero value = free network (tests).
	Model netsim.Model
	// DisableEncodeCache runs the ablation: every serve re-encodes.
	DisableEncodeCache bool
}

func (c *ScaleoutConfig) fill() error {
	if c.Nodes <= 0 {
		c.Nodes = 8191
	}
	if c.ClosureSize == 0 {
		c.ClosureSize = 8192
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Clients > 64 {
		return fmt.Errorf("bench: %d scale-out clients (max 64)", c.Clients)
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.MutationRatio < 0 || c.MutationRatio > 1 {
		return fmt.Errorf("bench: mutation ratio %v out of [0,1]", c.MutationRatio)
	}
	return nil
}

// ScaleoutResult is the outcome of one scale-out run. Traffic counters
// are totals over all clients and rounds; the Enc* counters are the
// origin's encode-cache tallies.
type ScaleoutResult struct {
	// Time is the virtual processing time of the whole run.
	Time time.Duration
	// Messages and Bytes are total network traffic.
	Messages, Bytes uint64
	// Faults and Fetches sum the clients' access violations and FETCH
	// messages.
	Faults, Fetches uint64
	// EncHits .. EncInvalidations are the origin's encode-cache counters;
	// EncBytes is the cache's resident size when the run ends.
	EncHits, EncMisses, EncEvictions, EncInvalidations, EncBytes uint64
	// Sum is the final-round checksum each client computed (validates
	// that cached encodings never served stale bytes).
	Sum int64
}

// RunScaleout executes one scale-out run: the server builds the shared
// tree, then each round every client walks it in its own session, with
// the configured fraction of nodes mutated at the origin between rounds.
func RunScaleout(cfg ScaleoutConfig) (ScaleoutResult, error) {
	if err := cfg.fill(); err != nil {
		return ScaleoutResult{}, err
	}
	clock := &netsim.Clock{}
	stats := &netsim.Stats{}
	net, err := transport.NewNetwork(cfg.Model, clock, stats)
	if err != nil {
		return ScaleoutResult{}, err
	}
	defer net.Close()
	reg := NewRegistry()

	mk := func(id uint32) (*core.Runtime, error) {
		node, err := net.Attach(id)
		if err != nil {
			return nil, err
		}
		return core.New(core.Options{
			ID:                 id,
			Node:               node,
			Registry:           reg,
			Policy:             core.PolicySmart,
			ClosureSize:        cfg.ClosureSize,
			PageSize:           cfg.PageSize,
			DisableEncodeCache: cfg.DisableEncodeCache,
		})
	}
	server, err := mk(PipelineServerID)
	if err != nil {
		return ScaleoutResult{}, err
	}
	defer server.Close()
	clients := make([]*core.Runtime, cfg.Clients)
	for i := range clients {
		if clients[i], err = mk(PipelineClientID0 + uint32(i)); err != nil {
			return ScaleoutResult{}, err
		}
		defer clients[i].Close()
	}

	root, err := BuildTree(server, cfg.Nodes)
	if err != nil {
		return ScaleoutResult{}, err
	}
	want, err := localTreeSum(server, root)
	if err != nil {
		return ScaleoutResult{}, err
	}

	// The tree is built and the runtimes idle: measurement starts here.
	clock.Reset()
	stats.Reset()
	var out ScaleoutResult
	for round := 1; round <= cfg.Rounds; round++ {
		if round > 1 && cfg.MutationRatio > 0 {
			// Each selected node's data field gains 1 (MutateTree), so the
			// expected checksum advances by the selection count.
			mutated, err := MutateTree(server, root, cfg.MutationRatio, uint64(round))
			if err != nil {
				return ScaleoutResult{}, fmt.Errorf("bench: mutate before round %d: %w", round, err)
			}
			want += int64(mutated)
		}
		for i, cl := range clients {
			sum, err := clientTreeSum(cl, root.LP)
			if err != nil {
				return ScaleoutResult{}, fmt.Errorf("bench: scale-out client %d round %d: %w", i, round, err)
			}
			if sum != want {
				return ScaleoutResult{}, fmt.Errorf("bench: scale-out client %d round %d checksum %d, want %d",
					i, round, sum, want)
			}
			out.Sum = sum
		}
	}
	out.Time = clock.Now()
	out.Messages = stats.Messages()
	out.Bytes = stats.Bytes()
	for _, cl := range clients {
		st := cl.Stats()
		out.Faults += st.Faults
		out.Fetches += st.FetchesSent
	}
	st := server.Stats()
	out.EncHits = st.EncCacheHits
	out.EncMisses = st.EncCacheMisses
	out.EncEvictions = st.EncCacheEvictions
	out.EncInvalidations = st.EncCacheInvalidations
	out.EncBytes = st.EncCacheBytes
	return out, nil
}

// clientTreeSum imports the shared root, walks the whole tree inside one
// session (fault-driven fetches underneath), and returns the data sum.
func clientTreeSum(cl *core.Runtime, root wire.LongPtr) (int64, error) {
	v, err := cl.ImportPtr(root)
	if err != nil {
		return 0, err
	}
	if err := cl.BeginSession(); err != nil {
		return 0, err
	}
	sum, err := refTreeSum(cl, v)
	if err != nil {
		cl.AbortSession()
		return 0, err
	}
	if err := cl.EndSession(); err != nil {
		return 0, err
	}
	return sum, nil
}

// localTreeSum walks a locally owned tree without a session (heap reads
// only): the server-side oracle for the expected checksum.
func localTreeSum(rt *core.Runtime, root core.Value) (int64, error) {
	return refTreeSum(rt, root)
}

func refTreeSum(rt *core.Runtime, v core.Value) (int64, error) {
	if v.IsNullPtr() {
		return 0, nil
	}
	ref, err := rt.Deref(v)
	if err != nil {
		return 0, err
	}
	sum, err := ref.Int("data", 0)
	if err != nil {
		return 0, err
	}
	for _, f := range []string{"left", "right"} {
		c, err := ref.Ptr(f, 0)
		if err != nil {
			return 0, err
		}
		s, err := refTreeSum(rt, c)
		if err != nil {
			return 0, err
		}
		sum += s
	}
	return sum, nil
}

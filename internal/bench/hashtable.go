package bench

import (
	"fmt"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/types"
)

// The hash-table retrieval workload §4.1 alludes to: "the fully lazy
// method is expected to show good performance when a small portion of the
// large data is accessed (for example, retrieval of a hash table)". A
// large chained hash table lives in the caller; the callee performs a
// handful of lookups. Eager transfer of the whole table is wasteful;
// per-dereference callbacks touch only the probed chains.

// Hash workload type IDs (distinct from NodeType's registry slot).
const (
	HashTableType types.ID = 10
	HashEntryType types.ID = 11
)

// hashBuckets is the bucket-array fan-out of the table object.
const hashBuckets = 128

// RegisterHashTypes adds the hash-table schema to a registry.
func RegisterHashTypes(reg *types.Registry) {
	reg.MustRegister(&types.Desc{
		ID:   HashTableType,
		Name: "HashTable",
		Fields: []types.Field{
			{Name: "buckets", Kind: types.Ptr, Elem: HashEntryType, Count: hashBuckets},
		},
	})
	reg.MustRegister(&types.Desc{
		ID:   HashEntryType,
		Name: "HashEntry",
		Fields: []types.Field{
			{Name: "next", Kind: types.Ptr, Elem: HashEntryType},
			{Name: "key", Kind: types.Int64},
			{Name: "val", Kind: types.Int64},
		},
	})
}

// hashKey assigns key k to a bucket.
func hashKey(k int64) int {
	return int(uint64(k*2654435761) % hashBuckets)
}

// HashConfig parameterizes one hash-retrieval run.
type HashConfig struct {
	// Policy selects smart/eager/lazy.
	Policy core.Policy
	// Entries is the number of key/value pairs in the table.
	Entries int
	// Lookups is how many keys the callee probes.
	Lookups int
	// ClosureSize is the smart method's prefetch budget.
	ClosureSize int
	// Model is the network cost model.
	Model netsim.Model
	// DisableFetchBatch reverts to the single-want FETCH protocol.
	DisableFetchBatch bool
}

// RunHashLookup builds the table in the caller and has the callee probe
// it, returning cost and a correctness checksum (the sum of the values
// found; every probed key is present, so hits == Lookups).
func RunHashLookup(cfg HashConfig) (TreeResult, error) {
	if cfg.Policy == 0 {
		cfg.Policy = core.PolicySmart
	}
	if cfg.Entries <= 0 {
		cfg.Entries = 4096
	}
	if cfg.Lookups <= 0 {
		cfg.Lookups = 16
	}
	if cfg.ClosureSize == 0 {
		cfg.ClosureSize = 8192
	}
	clock := &netsim.Clock{}
	stats := &netsim.Stats{}
	net, err := transport.NewNetwork(cfg.Model, clock, stats)
	if err != nil {
		return TreeResult{}, err
	}
	defer net.Close()
	reg := NewRegistry()
	RegisterHashTypes(reg)
	mk := func(id uint32) (*core.Runtime, error) {
		node, err := net.Attach(id)
		if err != nil {
			return nil, err
		}
		return core.New(core.Options{
			ID: id, Node: node, Registry: reg,
			Policy: cfg.Policy, ClosureSize: cfg.ClosureSize,
			DisableFetchBatch: cfg.DisableFetchBatch,
		})
	}
	owner, err := mk(CallerID)
	if err != nil {
		return TreeResult{}, err
	}
	defer owner.Close()
	prober, err := mk(CalleeID)
	if err != nil {
		return TreeResult{}, err
	}
	defer prober.Close()

	err = prober.Register("probe", func(ctx *core.Ctx, args []core.Value) ([]core.Value, error) {
		rt := ctx.Runtime()
		table, count, stride := args[0], args[1].Int64(), args[2].Int64()
		tref, err := rt.Deref(table)
		if err != nil {
			return nil, err
		}
		var hits, sum int64
		for i := int64(0); i < count; i++ {
			key := i*stride + 1 // deterministic probe set, all keys present
			head, err := tref.Ptr("buckets", hashKey(key))
			if err != nil {
				return nil, err
			}
			for v := head; !v.IsNullPtr(); {
				eref, err := rt.Deref(v)
				if err != nil {
					return nil, err
				}
				k, err := eref.Int("key", 0)
				if err != nil {
					return nil, err
				}
				if k == key {
					val, err := eref.Int("val", 0)
					if err != nil {
						return nil, err
					}
					hits++
					sum += val
					break
				}
				if v, err = eref.Ptr("next", 0); err != nil {
					return nil, err
				}
			}
		}
		return []core.Value{core.Int64Value(hits), core.Int64Value(sum)}, nil
	})
	if err != nil {
		return TreeResult{}, err
	}

	// Build the table: keys 1..Entries, val = 3*key.
	table, err := owner.NewObject(HashTableType)
	if err != nil {
		return TreeResult{}, err
	}
	tref, err := owner.Deref(table)
	if err != nil {
		return TreeResult{}, err
	}
	for k := int64(1); k <= int64(cfg.Entries); k++ {
		e, err := owner.NewObject(HashEntryType)
		if err != nil {
			return TreeResult{}, err
		}
		eref, err := owner.Deref(e)
		if err != nil {
			return TreeResult{}, err
		}
		if err := eref.SetInt("key", 0, k); err != nil {
			return TreeResult{}, err
		}
		if err := eref.SetInt("val", 0, 3*k); err != nil {
			return TreeResult{}, err
		}
		b := hashKey(k)
		head, err := tref.Ptr("buckets", b)
		if err != nil {
			return TreeResult{}, err
		}
		if err := eref.SetPtr("next", 0, head); err != nil {
			return TreeResult{}, err
		}
		if err := tref.SetPtr("buckets", b, e); err != nil {
			return TreeResult{}, err
		}
	}

	// Probe keys 1, 1+stride, 1+2*stride, ... all present in the table.
	stride := int64(cfg.Entries / cfg.Lookups)
	if stride < 1 {
		stride = 1
	}
	clock.Reset()
	stats.Reset()
	if err := owner.BeginSession(); err != nil {
		return TreeResult{}, err
	}
	res, err := owner.Call(CalleeID, "probe", []core.Value{
		table, core.Int64Value(int64(cfg.Lookups)), core.Int64Value(stride),
	})
	if err != nil {
		return TreeResult{}, err
	}
	if err := owner.EndSession(); err != nil {
		return TreeResult{}, err
	}
	return TreeResult{
		Time:      clock.Now(),
		Callbacks: prober.Stats().FetchesSent,
		Messages:  stats.Messages(),
		Bytes:     stats.Bytes(),
		Visited:   res[0].Int64(),
		Sum:       res[1].Int64(),
	}, nil
}

// HashWorkload compares the three methods on the sparse hash retrieval.
func HashWorkload(model netsim.Model, entries, lookups int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, pol := range []core.Policy{core.PolicyEager, core.PolicyLazy, core.PolicySmart} {
		res, err := RunHashLookup(HashConfig{
			Policy:  pol,
			Entries: entries,
			Lookups: lookups,
			Model:   model,
		})
		if err != nil {
			return nil, fmt.Errorf("%v: %w", pol, err)
		}
		if res.Visited != int64(lookups) {
			return nil, fmt.Errorf("%v: %d hits, want %d", pol, res.Visited, lookups)
		}
		name := map[core.Policy]string{
			core.PolicyEager: "hash/fully-eager",
			core.PolicyLazy:  "hash/fully-lazy",
			core.PolicySmart: "hash/proposed",
		}[pol]
		rows = append(rows, AblationRow{
			Name: name, Time: res.Time,
			Callbacks: res.Callbacks, Messages: res.Messages, Bytes: res.Bytes,
		})
	}
	return rows, nil
}

package bench

import (
	"testing"
	"time"

	"smartrpc/internal/netsim"
)

// TestPipelineDemandVsPrefetch is the tentpole acceptance check at test
// scale: on the pointer-chase workload, the speculative prefetcher must
// cut the blocking demand-fetch round trips by at least 30% at an equal
// closure budget, without changing the answer.
func TestPipelineDemandVsPrefetch(t *testing.T) {
	base := PipelineConfig{ChainNodes: 2047, ClosureSize: 8192}
	demand, err := RunPipeline(base)
	if err != nil {
		t.Fatalf("demand run: %v", err)
	}
	withPf := base
	withPf.Prefetch = true
	withPf.SyncPrefetch = true
	pf, err := RunPipeline(withPf)
	if err != nil {
		t.Fatalf("prefetch run: %v", err)
	}
	if demand.Sum != pf.Sum {
		t.Fatalf("checksums differ: demand %d, prefetch %d", demand.Sum, pf.Sum)
	}
	if demand.PfIssued != 0 || demand.BlockingFetches != demand.Fetches {
		t.Fatalf("demand run shows speculation: %+v", demand)
	}
	if pf.PfIssued == 0 {
		t.Fatalf("prefetch run issued no speculative fetches: %+v", pf)
	}
	if pf.BlockingFetches > demand.BlockingFetches*7/10 {
		t.Fatalf("blocking fetches %d of %d: less than a 30%% reduction",
			pf.BlockingFetches, demand.BlockingFetches)
	}
	// Total protocol work must not balloon: speculation replaces demand
	// fetches one for one on a linear chase.
	if pf.Fetches != demand.Fetches {
		t.Errorf("total fetches moved: demand %d, prefetch %d", demand.Fetches, pf.Fetches)
	}
	if pf.PfWasted != 0 {
		t.Errorf("full chase wasted %d prefetched pages", pf.PfWasted)
	}
}

// TestPipelineDeterministic re-runs the snapshot configuration and
// requires identical modeled outputs: the BENCH_5 rows depend on it.
func TestPipelineDeterministic(t *testing.T) {
	cfg := PipelineConfig{
		ChainNodes:   2047,
		ClosureSize:  8192,
		Prefetch:     true,
		SyncPrefetch: true,
		Model:        netsim.Ethernet10SPARC(),
	}
	first, err := RunPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.WallTime = 0 // host-dependent; everything else is modeled
	for i := 0; i < 3; i++ {
		again, err := RunPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		again.WallTime = 0
		if again != first {
			t.Fatalf("run %d diverged:\n  %+v\n  %+v", i+2, first, again)
		}
	}
}

// TestPipelineConcurrentClients drives several clients with asynchronous
// speculation against one server (the -race build makes this the
// concurrency check). Checksums are validated inside RunPipeline; here
// the aggregate counters must add up. The link delay gives the
// background fetchers room to actually get ahead of the walkers — on an
// instantaneous network the demand fault always wins the race and every
// speculation degenerates into a join.
func TestPipelineConcurrentClients(t *testing.T) {
	res, err := RunPipeline(PipelineConfig{
		ChainNodes:    1023,
		Clients:       4,
		ClosureSize:   4096,
		Prefetch:      true,
		PrefetchDepth: 2,
		LinkDelay:     300 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetches == 0 || res.BlockingFetches > res.Fetches {
		t.Fatalf("implausible fetch counters: %+v", res)
	}
	if res.PfIssued+res.PfCoalesced == 0 {
		t.Errorf("no speculation observed across 4 clients: %+v", res)
	}
}

package bench

import (
	"strings"
	"testing"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
	"smartrpc/internal/swizzle"
)

// sumFirstN is the expected checksum for visiting the first n nodes in
// preorder of a tree whose data is the preorder index starting at 1.
func sumFirstN(n int64) int64 { return n * (n + 1) / 2 }

func TestRunTreeCorrectAcrossPolicies(t *testing.T) {
	for _, pol := range []core.Policy{core.PolicySmart, core.PolicyEager, core.PolicyLazy} {
		res, err := RunTree(TreeConfig{Policy: pol, Nodes: 127, AccessRatio: 1.0})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.Visited != 127 || res.Sum != sumFirstN(127) {
			t.Errorf("%v: visited %d sum %d, want 127 / %d", pol, res.Visited, res.Sum, sumFirstN(127))
		}
	}
}

func TestRunTreePartialAccess(t *testing.T) {
	res, err := RunTree(TreeConfig{Nodes: 127, AccessRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 63 {
		t.Errorf("visited %d, want 63", res.Visited)
	}
	// Depth-first preorder: the first 63 visits are preorder indices 1..63.
	if res.Sum != sumFirstN(63) {
		t.Errorf("sum %d, want %d", res.Sum, sumFirstN(63))
	}
}

func TestRunTreeZeroRatio(t *testing.T) {
	res, err := RunTree(TreeConfig{Nodes: 127, AccessRatio: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 0 || res.Sum != 0 {
		t.Errorf("zero ratio visited %d sum %d", res.Visited, res.Sum)
	}
	if res.Callbacks != 0 {
		t.Errorf("zero ratio issued %d callbacks", res.Callbacks)
	}
}

func TestRunTreeUpdateWritesBack(t *testing.T) {
	res, err := RunTree(TreeConfig{Nodes: 63, AccessRatio: 1.0, Update: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 63 {
		t.Errorf("visited %d", res.Visited)
	}
}

func TestRunTreeRejectsBadConfig(t *testing.T) {
	if _, err := RunTree(TreeConfig{Nodes: 100}); err == nil {
		t.Error("non 2^k-1 tree size accepted")
	}
	if _, err := RunTree(TreeConfig{Nodes: 127, AccessRatio: 1.5}); err == nil {
		t.Error("ratio > 1 accepted")
	}
}

func TestCallbackOrderingLazyVsSmart(t *testing.T) {
	lazy, err := RunTree(TreeConfig{Policy: core.PolicyLazy, Nodes: 255, AccessRatio: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	smart, err := RunTree(TreeConfig{Policy: core.PolicySmart, Nodes: 255, AccessRatio: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Callbacks != 255 {
		t.Errorf("lazy callbacks = %d, want 255 (one per visited node)", lazy.Callbacks)
	}
	if smart.Callbacks >= lazy.Callbacks {
		t.Errorf("smart callbacks (%d) not below lazy (%d)", smart.Callbacks, lazy.Callbacks)
	}
	eager, err := RunTree(TreeConfig{Policy: core.PolicyEager, Nodes: 255, AccessRatio: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if eager.Callbacks != 0 {
		t.Errorf("eager callbacks = %d, want 0", eager.Callbacks)
	}
}

func TestEagerTimeFlatAcrossRatios(t *testing.T) {
	model := netsim.Ethernet10SPARC()
	t0, err := RunTree(TreeConfig{Policy: core.PolicyEager, Nodes: 1023, AccessRatio: 0, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := RunTree(TreeConfig{Policy: core.PolicyEager, Nodes: 1023, AccessRatio: 1, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := t0.Time, t1.Time
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi-lo)/float64(hi) > 0.05 {
		t.Errorf("eager time not flat: ratio0 %v vs ratio1 %v", t0.Time, t1.Time)
	}
}

func TestSmartBeatsLazyOnFullScan(t *testing.T) {
	model := netsim.Ethernet10SPARC()
	lazy, err := RunTree(TreeConfig{Policy: core.PolicyLazy, Nodes: 2047, AccessRatio: 1, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	smart, err := RunTree(TreeConfig{Policy: core.PolicySmart, Nodes: 2047, AccessRatio: 1, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if smart.Time >= lazy.Time {
		t.Errorf("smart (%v) not faster than lazy (%v) at full access", smart.Time, lazy.Time)
	}
}

func TestSmartBeatsEagerOnSmallAccess(t *testing.T) {
	model := netsim.Ethernet10SPARC()
	eager, err := RunTree(TreeConfig{Policy: core.PolicyEager, Nodes: 8191, AccessRatio: 0.1, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	smart, err := RunTree(TreeConfig{Policy: core.PolicySmart, Nodes: 8191, AccessRatio: 0.1, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if smart.Time >= eager.Time {
		t.Errorf("smart (%v) not faster than eager (%v) at 10%% access", smart.Time, eager.Time)
	}
}

func TestFig4SmallShape(t *testing.T) {
	rows, err := Fig4(netsim.Ethernet10SPARC(), 1023, 2048, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Lazy grows with ratio; smart at ratio 0 is cheapest of the three.
	if !(rows[0].Lazy < rows[1].Lazy && rows[1].Lazy < rows[2].Lazy) {
		t.Errorf("lazy not increasing: %v %v %v", rows[0].Lazy, rows[1].Lazy, rows[2].Lazy)
	}
	if rows[0].Smart >= rows[0].Eager {
		t.Errorf("at ratio 0 smart (%v) not below eager (%v)", rows[0].Smart, rows[0].Eager)
	}
}

func TestFig5SmallShape(t *testing.T) {
	rows, err := Fig5(netsim.Model{}, 1023, 2048, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Smart >= r.Lazy {
			t.Errorf("ratio %v: smart callbacks %d >= lazy %d", r.Ratio, r.Smart, r.Lazy)
		}
	}
}

func TestFig6SmallRuns(t *testing.T) {
	cells, err := Fig6(netsim.Ethernet10SPARC(), []int{1023}, []int{512, 8192}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Time <= 0 {
			t.Errorf("cell %+v has non-positive time", c)
		}
	}
}

func TestFig7SmallShape(t *testing.T) {
	rows, err := Fig7(netsim.Ethernet10SPARC(), 1023, 2048, []float64{0.25, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Updated <= r.NotUpdated {
			t.Errorf("ratio %v: updated (%v) not above not-updated (%v)", r.Ratio, r.Updated, r.NotUpdated)
		}
	}
	// Update cost scales with the update ratio.
	if !(rows[0].Updated < rows[2].Updated) {
		t.Errorf("updated time not increasing: %v .. %v", rows[0].Updated, rows[2].Updated)
	}
}

func TestTable1Rendering(t *testing.T) {
	s, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "long pointer") || !strings.Contains(s, "(A") && !strings.Contains(s, "A (") {
		t.Errorf("table rendering missing headers/rows:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Errorf("table has %d lines, want header + 2 rows:\n%s", len(lines), s)
	}
}

func TestAblations(t *testing.T) {
	model := netsim.Ethernet10SPARC()
	if rows, err := PageSizeAblation(model, 1023, []int{512, 4096}); err != nil || len(rows) != 2 {
		t.Errorf("page size ablation: %v, %d rows", err, len(rows))
	}
	if rows, err := TraversalAblation(model, 1023, 2048); err != nil || len(rows) != 2 {
		t.Errorf("traversal ablation: %v, %d rows", err, len(rows))
	}
	if rows, err := CoherenceAblation(model, 1023, 2048); err != nil || len(rows) != 2 {
		t.Errorf("coherence ablation: %v, %d rows", err, len(rows))
	}
	if rows, err := BatchingAblation(model, 100); err != nil || len(rows) != 2 {
		t.Errorf("batching ablation: %v, %d rows", err, len(rows))
	} else if rows[1].Time <= rows[0].Time {
		t.Errorf("per-op alloc (%v) not slower than batched (%v)", rows[1].Time, rows[0].Time)
	}
}

func TestAllocPolicyAblation(t *testing.T) {
	rows, err := AllocPolicyAblation(netsim.Ethernet10SPARC(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Mixed packing needs at least as many fetch messages (two origins per
	// page), typically more.
	if rows[1].Callbacks < rows[0].Callbacks {
		t.Errorf("mixed (%d callbacks) below per-origin (%d)", rows[1].Callbacks, rows[0].Callbacks)
	}
}

func TestTwoOriginSearchCorrect(t *testing.T) {
	res, err := RunTwoOriginSearch(netsim.Model{}, 50, swizzle.PolicyPerOrigin)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 50 || res.Sum != sumFirstN(50) {
		t.Errorf("two-origin search visited %d sum %d", res.Visited, res.Sum)
	}
}

func TestPathWalkCorrect(t *testing.T) {
	res, err := RunPathWalk(netsim.Model{}, 8, 4096, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 8 {
		t.Errorf("path visited %d nodes, want 8", res.Visited)
	}
}

func TestClosureHintAblation(t *testing.T) {
	rows, err := ClosureHintAblation(netsim.Ethernet10SPARC(), 10, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Bytes >= rows[0].Bytes {
		t.Errorf("hinted closure moved %d bytes, unhinted %d", rows[1].Bytes, rows[0].Bytes)
	}
}

func TestChainUpdateCoherence(t *testing.T) {
	const hops = 5
	// The paper's piggyback protocol keeps every space's view current: the
	// counter reaches 2×hops.
	res, err := RunChainUpdate(netsim.Model{}, hops, core.CoherencePiggyback)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != 2*hops {
		t.Errorf("piggyback: final counter %d, want %d", res.Sum, 2*hops)
	}
	// The naive write-back ablation demonstrates WHY: sending dirty data
	// home does not refresh the cached copies other spaces already hold,
	// so repeated hops operate on stale values and the counter falls
	// short. This is the incoherence §3.4's circulating protocol prevents.
	res, err = RunChainUpdate(netsim.Model{}, hops, core.CoherenceWriteBack)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum >= 2*hops {
		t.Errorf("write-back ablation: final counter %d; expected it to lag behind %d (stale caches)",
			res.Sum, 2*hops)
	}
}

func TestChainCoherenceAblationMessages(t *testing.T) {
	rows, err := ChainCoherenceAblation(netsim.Ethernet10SPARC(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Messages <= rows[0].Messages {
		t.Errorf("write-back chain used %d messages, piggyback %d; naive protocol should cost more",
			rows[1].Messages, rows[0].Messages)
	}
}

func TestHashLookupCorrectAcrossPolicies(t *testing.T) {
	for _, pol := range []core.Policy{core.PolicySmart, core.PolicyEager, core.PolicyLazy} {
		res, err := RunHashLookup(HashConfig{Policy: pol, Entries: 512, Lookups: 8})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.Visited != 8 {
			t.Errorf("%v: hits = %d, want 8", pol, res.Visited)
		}
		// Values are 3×key for keys 1, 1+64, ..., 1+7×64.
		var want int64
		for i := int64(0); i < 8; i++ {
			want += 3 * (i*64 + 1)
		}
		if res.Sum != want {
			t.Errorf("%v: sum = %d, want %d", pol, res.Sum, want)
		}
	}
}

func TestHashWorkloadLazyBeatsEager(t *testing.T) {
	rows, err := HashWorkload(netsim.Ethernet10SPARC(), 4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	eager, lazy, smart := rows[0], rows[1], rows[2]
	// The paper's §4.1 remark: sparse retrieval favors laziness. Eager
	// ships the whole table and must be slowest by a wide margin.
	if lazy.Time >= eager.Time {
		t.Errorf("lazy (%v) not faster than eager (%v) on sparse retrieval", lazy.Time, eager.Time)
	}
	if smart.Time >= eager.Time {
		t.Errorf("smart (%v) not faster than eager (%v) on sparse retrieval", smart.Time, eager.Time)
	}
	if eager.Bytes < 5*lazy.Bytes {
		t.Errorf("eager moved %d bytes vs lazy %d; expected >5x blowup", eager.Bytes, lazy.Bytes)
	}
}

// The multi-want FETCH protocol must cut message counts against the seed
// single-want protocol on the Fig. 5 sweep: entries stranded on partially
// resident pages by a budget boundary ride along on the next fault's FETCH
// instead of costing their own round trip. Results must be unchanged.
func TestFetchBatchingReducesMessages(t *testing.T) {
	for _, ratio := range []float64{0.1, 0.5, 1.0} {
		run := func(disable bool) TreeResult {
			res, err := RunTree(TreeConfig{
				Policy:            core.PolicySmart,
				Nodes:             8191,
				AccessRatio:       ratio,
				DisableFetchBatch: disable,
			})
			if err != nil {
				t.Fatalf("ratio %v (disable=%v): %v", ratio, disable, err)
			}
			return res
		}
		single, batched := run(true), run(false)
		if batched.Visited != single.Visited || batched.Sum != single.Sum {
			t.Errorf("ratio %v: batched result (%d, %d) != single-want (%d, %d)",
				ratio, batched.Visited, batched.Sum, single.Visited, single.Sum)
		}
		if batched.Callbacks >= single.Callbacks {
			t.Errorf("ratio %v: batched fetches %d not below single-want %d",
				ratio, batched.Callbacks, single.Callbacks)
		}
		if batched.Messages >= single.Messages {
			t.Errorf("ratio %v: batched messages %d not below single-want %d",
				ratio, batched.Messages, single.Messages)
		}
	}
}

package bench

import (
	"fmt"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/faultsim"
	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
)

// RecoverConfig parameterizes the exchange-recovery workload: the
// caller/callee pair from the repeated-session experiment, run through
// the chaos transport with a seeded mix of transient faults (drops,
// duplicates, corruption) while every exchange carries a retry budget
// and origins dedup retried non-idempotent exchanges through their
// replay caches. The claim under measurement is twofold: with no faults
// configured, arming recovery adds zero messages and zero bytes to the
// wire; with faults configured, every session still completes with the
// correct checksum, and the retry/replay counters price the recovery.
type RecoverConfig struct {
	// Nodes is the complete binary tree size.
	Nodes int
	// ClosureSize is the eager-transfer budget in bytes.
	ClosureSize int
	// Sessions is how many back-to-back sessions to run; a fraction of
	// the tree mutates between sessions so write-back and revalidation
	// traffic is in the fault mix's reach too.
	Sessions int
	// MutationRatio is the fraction of nodes rewritten between sessions.
	MutationRatio float64
	// DropPermille / DupPermille / CorruptPermille configure the chaos
	// transport (per frame, out of 1000). All zero = fault-free.
	DropPermille, DupPermille, CorruptPermille int
	// Seed fixes the chaos schedule.
	Seed uint64
	// DisableRecovery runs the identical workload with no retry budget
	// (the seed's fail-fast behavior) — only meaningful fault-free, as
	// the control the zero-overhead claim is measured against.
	DisableRecovery bool
	// CallTimeout is the per-attempt reply deadline (real time; the
	// retry machinery races it against injected faults). Zero = 50ms.
	CallTimeout time.Duration
	// PageSize overrides the simulated page size.
	PageSize int
	// Model is the network cost model; zero value = free network.
	Model netsim.Model
}

func (c *RecoverConfig) fill() error {
	if c.Nodes <= 0 {
		c.Nodes = 1023
	}
	if c.ClosureSize == 0 {
		c.ClosureSize = 8192
	}
	if c.Sessions <= 0 {
		c.Sessions = 3
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 50 * time.Millisecond
	}
	if c.MutationRatio < 0 || c.MutationRatio > 1 {
		return fmt.Errorf("bench: mutation ratio %v out of [0,1]", c.MutationRatio)
	}
	return nil
}

// RecoverResult is the outcome of one recovery run.
type RecoverResult struct {
	// Time is the virtual processing time (meaningful only fault-free:
	// under faults, retries burn real time the virtual clock never sees).
	Time time.Duration
	// Messages and Bytes are total network traffic actually carried
	// (frames the chaos layer dropped never reach the wire; duplicated
	// frames are counted twice).
	Messages, Bytes uint64
	// Sessions is how many sessions completed; every configured session
	// must, or RunRecover returns an error.
	Sessions uint64
	// Faults is the callee's access-violation (page-fault) count.
	Faults uint64
	// ChaosFaults is how many faults the chaos transport injected.
	ChaosFaults uint64
	// Retries / RetrySuccesses / Replays / StaleDrops are the recovery
	// machinery's totals over both spaces: attempts beyond the first,
	// exchanges that eventually completed, origin replay-cache hits, and
	// late replies to abandoned attempts that were discarded.
	Retries, RetrySuccesses, Replays, StaleDrops uint64
	// Sum is the final session's checksum (verified internally).
	Sum int64
}

// RunRecover executes the recovery experiment and verifies every
// session's checksum against the model expectation — under faults this
// is the correctness half of the claim (retries must be exactly-once,
// never double-applying a mutation or serving a torn install).
func RunRecover(cfg RecoverConfig) (RecoverResult, error) {
	if err := cfg.fill(); err != nil {
		return RecoverResult{}, err
	}
	clock := &netsim.Clock{}
	stats := &netsim.Stats{}
	net, err := transport.NewNetwork(cfg.Model, clock, stats)
	if err != nil {
		return RecoverResult{}, err
	}
	defer net.Close()
	chaos := faultsim.New(net, faultsim.Config{
		Seed:            cfg.Seed,
		DropPermille:    cfg.DropPermille,
		DupPermille:     cfg.DupPermille,
		CorruptPermille: cfg.CorruptPermille,
	})
	reg := NewRegistry()

	mk := func(id uint32) (*core.Runtime, error) {
		node, err := chaos.Attach(id)
		if err != nil {
			return nil, err
		}
		opts := core.Options{
			ID:          id,
			Node:        node,
			Registry:    reg,
			Policy:      core.PolicySmart,
			ClosureSize: cfg.ClosureSize,
			PageSize:    cfg.PageSize,
			CallTimeout: cfg.CallTimeout,
		}
		if !cfg.DisableRecovery {
			opts.RetryBudget = 30 * cfg.CallTimeout
			opts.MaxRetries = 25
		}
		return core.New(opts)
	}
	caller, err := mk(CallerID)
	if err != nil {
		return RecoverResult{}, err
	}
	defer caller.Close()
	callee, err := mk(CalleeID)
	if err != nil {
		return RecoverResult{}, err
	}
	defer callee.Close()
	if err := RegisterSearch(callee); err != nil {
		return RecoverResult{}, err
	}

	root, err := BuildTree(caller, cfg.Nodes)
	if err != nil {
		return RecoverResult{}, err
	}
	// BuildTree numbers nodes by preorder index, so the full-tree
	// checksum starts at n(n+1)/2; each mutation adds 1 to one node.
	want := int64(cfg.Nodes) * int64(cfg.Nodes+1) / 2

	clock.Reset()
	stats.Reset()
	var out RecoverResult
	for s := 0; s < cfg.Sessions; s++ {
		if s > 0 && cfg.MutationRatio > 0 {
			mutated, err := MutateTree(caller, root, cfg.MutationRatio, uint64(s))
			if err != nil {
				return RecoverResult{}, fmt.Errorf("bench: mutate before session %d: %w", s+1, err)
			}
			want += int64(mutated)
		}
		if err := caller.BeginSession(); err != nil {
			return RecoverResult{}, err
		}
		res, err := caller.Call(CalleeID, SearchProc, []core.Value{
			root,
			core.Int64Value(int64(cfg.Nodes)),
			core.BoolValue(false),
		})
		if err != nil {
			return RecoverResult{}, fmt.Errorf("bench: recover session %d search: %w", s+1, err)
		}
		if err := caller.EndSession(); err != nil {
			return RecoverResult{}, fmt.Errorf("bench: recover session %d end: %w", s+1, err)
		}
		if got := res[1].Int64(); got != want {
			return RecoverResult{}, fmt.Errorf("bench: recover session %d checksum = %d, want %d (fault handling corrupted data)", s+1, got, want)
		}
		out.Sum = res[1].Int64()
		out.Sessions++
	}

	out.Time = clock.Now()
	out.Messages = stats.Messages()
	out.Bytes = stats.Bytes()
	out.ChaosFaults = chaos.Total()
	for _, rt := range []*core.Runtime{caller, callee} {
		s := rt.Stats()
		out.Retries += s.Retries
		out.RetrySuccesses += s.RetrySuccesses
		out.Replays += s.DedupReplays
		out.StaleDrops += s.StaleReplyDrops
	}
	out.Faults = callee.Stats().Faults
	return out, nil
}

package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
)

// Report is the machine-readable output of the benchmark-regression
// harness (`srpcbench -json > BENCH_<n>.json`). Committed snapshots let a
// later change be checked against an earlier one with nothing but two
// files and a diff: modeled time and traffic must not move at all (the
// cost model is deterministic), and wall time / allocations must not
// regress beyond noise.
type Report struct {
	// Schema versions the report format.
	Schema int `json:"schema"`
	// Model names the network cost model the modeled times assume.
	Model string `json:"model"`
	// Nodes and Closure are the tree size and closure budget the rows
	// were produced with (individual rows may override Closure).
	Nodes   int `json:"nodes"`
	Closure int `json:"closure_bytes"`
	// Runs is how many measured repetitions each row averages over.
	Runs int         `json:"runs"`
	Rows []ReportRow `json:"rows"`
}

// ReportRow is one benchmark point.
type ReportRow struct {
	// Figure tags the experiment family: fig4, fig6, fetch-batch, or
	// coh-delta.
	Figure string `json:"figure"`
	// Config identifies the point within the family.
	Policy  string  `json:"policy"`
	Ratio   float64 `json:"ratio"`
	Closure int     `json:"closure_bytes"`

	// Deterministic outputs (must be identical between snapshots).
	ModelSec  float64 `json:"model_sec"`
	Callbacks uint64  `json:"callbacks"`
	Messages  uint64  `json:"messages"`
	NetBytes  uint64  `json:"net_bytes"`
	Faults    uint64  `json:"faults"`
	// Crossings counts boundary crossings of the thread of control
	// (call + return messages); MsgsPerCrossing divides total messages
	// by it. CohItemBytes and the item counters attribute bytes on the
	// wire to the coherency path (schema 2).
	Crossings       uint64  `json:"crossings"`
	MsgsPerCrossing float64 `json:"msgs_per_crossing"`
	CohItemBytes    uint64  `json:"coh_item_bytes"`
	CohItemsShipped uint64  `json:"coh_items_shipped"`
	CohDeltaItems   uint64  `json:"coh_delta_items"`
	CohItemsSkipped uint64  `json:"coh_items_skipped"`

	// Host-dependent outputs (regression-checked with slack).
	WallSec         float64 `json:"wall_sec"`
	AllocsPerOp     uint64  `json:"allocs_per_op"`
	AllocBytesPerOp uint64  `json:"alloc_bytes_per_op"`
}

// reportPoint is one configuration the report measures.
type reportPoint struct {
	figure  string
	policy  core.Policy
	name    string
	ratio   float64
	clos    int
	noBat   bool
	update  bool
	repeats int
	noDelta bool
}

// BuildReport runs the regression suite and returns the filled report.
// Each point runs once to warm caches, then `runs` measured times; wall
// time and allocation counts are averaged, while the modeled outputs are
// taken from the last run (they are identical across runs by
// construction).
func BuildReport(model netsim.Model, nodes, closure, runs int) (Report, error) {
	if runs < 1 {
		runs = 1
	}
	rep := Report{Schema: 2, Model: "ethernet10-sparc", Nodes: nodes, Closure: closure, Runs: runs}

	var points []reportPoint
	for _, pol := range []struct {
		p core.Policy
		n string
	}{{core.PolicyEager, "eager"}, {core.PolicyLazy, "lazy"}, {core.PolicySmart, "smart"}} {
		for _, ratio := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			points = append(points, reportPoint{
				figure: "fig4", policy: pol.p, name: pol.n, ratio: ratio, clos: closure,
			})
		}
	}
	for _, cs := range DefaultClosureSizes {
		points = append(points, reportPoint{
			figure: "fig6", policy: core.PolicySmart, name: "smart", ratio: 1.0, clos: cs,
		})
	}
	// The multi-want FETCH protocol against its single-want ablation: the
	// message counts quantify the batching win.
	for _, ratio := range []float64{0.5, 1.0} {
		for _, noBat := range []bool{false, true} {
			name := "smart"
			if noBat {
				name = "smart-nobatch"
			}
			points = append(points, reportPoint{
				figure: "fetch-batch", policy: core.PolicySmart, name: name,
				ratio: ratio, clos: closure, noBat: noBat,
			})
		}
	}
	// Delta shipping against its full-shipping ablation on the repeated
	// update workload: the coh_item_bytes column quantifies the win.
	for _, ratio := range []float64{0.5, 1.0} {
		for _, noDelta := range []bool{false, true} {
			name := "smart-delta"
			if noDelta {
				name = "smart-fullship"
			}
			points = append(points, reportPoint{
				figure: "coh-delta", policy: core.PolicySmart, name: name,
				ratio: ratio, clos: closure, update: true, repeats: 8, noDelta: noDelta,
			})
		}
	}

	for _, pt := range points {
		row, err := measurePoint(model, nodes, runs, pt)
		if err != nil {
			return Report{}, fmt.Errorf("report %s/%s/%.2f: %w", pt.figure, pt.name, pt.ratio, err)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Check compares the deterministic modeled columns of cur against a
// committed baseline snapshot. Every baseline row must be present in cur
// (matched by figure/policy/ratio/closure) with identical modeled
// outputs; rows that exist only in cur are new experiments and pass.
// Wall-clock and allocation columns are host-dependent and ignored.
// Schema-1 baselines predate the crossing/coherency columns, so only the
// columns they carry are compared.
func Check(baseline, cur Report) error {
	if baseline.Nodes != cur.Nodes || baseline.Closure != cur.Closure {
		return fmt.Errorf("config mismatch: baseline %d nodes/%d closure, current %d/%d",
			baseline.Nodes, baseline.Closure, cur.Nodes, cur.Closure)
	}
	byKey := make(map[string]ReportRow, len(cur.Rows))
	for _, r := range cur.Rows {
		byKey[rowKey(r)] = r
	}
	var drifts []string
	for _, want := range baseline.Rows {
		got, ok := byKey[rowKey(want)]
		if !ok {
			drifts = append(drifts, fmt.Sprintf("%s: row missing", rowKey(want)))
			continue
		}
		check := func(col string, wantV, gotV float64) {
			if wantV != gotV {
				drifts = append(drifts, fmt.Sprintf("%s: %s = %v, baseline %v", rowKey(want), col, gotV, wantV))
			}
		}
		check("model_sec", want.ModelSec, got.ModelSec)
		check("callbacks", float64(want.Callbacks), float64(got.Callbacks))
		check("messages", float64(want.Messages), float64(got.Messages))
		check("net_bytes", float64(want.NetBytes), float64(got.NetBytes))
		check("faults", float64(want.Faults), float64(got.Faults))
		if baseline.Schema >= 2 {
			check("crossings", float64(want.Crossings), float64(got.Crossings))
			check("msgs_per_crossing", want.MsgsPerCrossing, got.MsgsPerCrossing)
			check("coh_item_bytes", float64(want.CohItemBytes), float64(got.CohItemBytes))
			check("coh_items_shipped", float64(want.CohItemsShipped), float64(got.CohItemsShipped))
			check("coh_delta_items", float64(want.CohDeltaItems), float64(got.CohDeltaItems))
			check("coh_items_skipped", float64(want.CohItemsSkipped), float64(got.CohItemsSkipped))
		}
	}
	if len(drifts) > 0 {
		return fmt.Errorf("modeled columns drifted from baseline:\n  %s", strings.Join(drifts, "\n  "))
	}
	return nil
}

func rowKey(r ReportRow) string {
	return fmt.Sprintf("%s/%s/%.4f/%d", r.Figure, r.Policy, r.Ratio, r.Closure)
}

func measurePoint(model netsim.Model, nodes, runs int, pt reportPoint) (ReportRow, error) {
	cfg := TreeConfig{
		Policy:            pt.policy,
		Nodes:             nodes,
		ClosureSize:       pt.clos,
		AccessRatio:       pt.ratio,
		Update:            pt.update,
		Repeats:           pt.repeats,
		Model:             model,
		DisableFetchBatch: pt.noBat,
		DisableDeltaShip:  pt.noDelta,
	}
	// Warm-up run: first-use initialization (layout caches, pools) should
	// not be charged to the measurement.
	if _, err := RunTree(cfg); err != nil {
		return ReportRow{}, err
	}
	var last TreeResult
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	start := time.Now()
	for i := 0; i < runs; i++ {
		res, err := RunTree(cfg)
		if err != nil {
			return ReportRow{}, err
		}
		last = res
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms2)
	perCrossing := 0.0
	if last.Crossings > 0 {
		perCrossing = float64(last.Messages) / float64(last.Crossings)
	}
	return ReportRow{
		Figure:          pt.figure,
		Policy:          pt.name,
		Ratio:           pt.ratio,
		Closure:         pt.clos,
		ModelSec:        last.Time.Seconds(),
		Callbacks:       last.Callbacks,
		Messages:        last.Messages,
		NetBytes:        last.Bytes,
		Faults:          last.Faults,
		Crossings:       last.Crossings,
		MsgsPerCrossing: perCrossing,
		CohItemBytes:    last.CohItemBytes,
		CohItemsShipped: last.CohItemsShipped,
		CohDeltaItems:   last.CohDeltaItems,
		CohItemsSkipped: last.CohItemsSkipped,
		WallSec:         wall.Seconds() / float64(runs),
		AllocsPerOp:     (ms2.Mallocs - ms1.Mallocs) / uint64(runs),
		AllocBytesPerOp: (ms2.TotalAlloc - ms1.TotalAlloc) / uint64(runs),
	}, nil
}

package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
)

// Report is the machine-readable output of the benchmark-regression
// harness (`srpcbench -json > BENCH_<n>.json`). Committed snapshots let a
// later change be checked against an earlier one with nothing but two
// files and a diff: modeled time and traffic must not move at all (the
// cost model is deterministic), and wall time / allocations must not
// regress beyond noise.
type Report struct {
	// Schema versions the report format.
	Schema int `json:"schema"`
	// Model names the network cost model the modeled times assume.
	Model string `json:"model"`
	// Nodes and Closure are the tree size and closure budget the rows
	// were produced with (individual rows may override Closure).
	Nodes   int `json:"nodes"`
	Closure int `json:"closure_bytes"`
	// Runs is how many measured repetitions each row averages over.
	Runs int         `json:"runs"`
	Rows []ReportRow `json:"rows"`
}

// ReportRow is one benchmark point.
type ReportRow struct {
	// Figure tags the experiment family: fig4, fig6, fetch-batch,
	// coh-delta, warm-sessions, pipeline, scaleout, concurrent, or
	// stream.
	Figure string `json:"figure"`
	// Config identifies the point within the family.
	Policy  string  `json:"policy"`
	Ratio   float64 `json:"ratio"`
	Closure int     `json:"closure_bytes"`
	// Session numbers the rows of a repeated-session family (1 = cold
	// start); zero for single-session families (schema 3).
	Session int `json:"session,omitempty"`

	// Deterministic outputs (must be identical between snapshots).
	ModelSec  float64 `json:"model_sec"`
	Callbacks uint64  `json:"callbacks"`
	Messages  uint64  `json:"messages"`
	NetBytes  uint64  `json:"net_bytes"`
	Faults    uint64  `json:"faults"`
	// Crossings counts boundary crossings of the thread of control
	// (call + return messages); MsgsPerCrossing divides total messages
	// by it. CohItemBytes and the item counters attribute bytes on the
	// wire to the coherency path (schema 2).
	Crossings       uint64  `json:"crossings"`
	MsgsPerCrossing float64 `json:"msgs_per_crossing"`
	CohItemBytes    uint64  `json:"coh_item_bytes"`
	CohItemsShipped uint64  `json:"coh_items_shipped"`
	CohDeltaItems   uint64  `json:"coh_delta_items"`
	CohItemsSkipped uint64  `json:"coh_items_skipped"`
	// ItemBodyBytes is the combined per-session coherency/data item-body
	// wire bytes (fetch bodies + coherency items + revalidation bodies,
	// tokens = 0) and the CohRevalidate columns are the warm-cache
	// revalidation outcomes (schema 3, warm-sessions rows only).
	ItemBodyBytes       uint64 `json:"item_body_bytes,omitempty"`
	CohRevalidateHits   uint64 `json:"coh_revalidate_hits,omitempty"`
	CohRevalidateMisses uint64 `json:"coh_revalidate_misses,omitempty"`
	CohRevalidateBytes  uint64 `json:"coh_revalidate_bytes,omitempty"`
	// Fetch-pipeline columns (schema 4, pipeline rows only): Fetches is
	// the total FETCH count, BlockingFetches the subset the application
	// actually stalled on (total minus speculative), and the Pf columns
	// are the speculative prefetcher's own accounting.
	Fetches         uint64 `json:"fetches,omitempty"`
	BlockingFetches uint64 `json:"blocking_fetches,omitempty"`
	PfIssued        uint64 `json:"pf_issued,omitempty"`
	PfCoalesced     uint64 `json:"pf_coalesced,omitempty"`
	PfHits          uint64 `json:"pf_hits,omitempty"`
	PfWasted        uint64 `json:"pf_wasted,omitempty"`
	PfBytes         uint64 `json:"pf_bytes,omitempty"`
	// Scale-out columns (schema 5, scaleout rows only): Clients is the
	// number of client spaces sharing the one origin, and the Enc columns
	// are the origin-side encode cache's counters. EncBytes is a resident-
	// size gauge recorded for the human-readable tables but not
	// regression-checked (hits/misses/evictions/invalidations are).
	Clients          int    `json:"clients,omitempty"`
	EncHits          uint64 `json:"enc_hits,omitempty"`
	EncMisses        uint64 `json:"enc_misses,omitempty"`
	EncEvictions     uint64 `json:"enc_evictions,omitempty"`
	EncInvalidations uint64 `json:"enc_invalidations,omitempty"`
	EncBytes         uint64 `json:"enc_bytes,omitempty"`
	// Concurrent columns (schema 6, concurrent rows only): committed
	// sessions, the read/write split, and the linearizability checker's
	// history size and per-object partition count — all functions of the
	// per-client seed streams alone, so they are the only columns of a
	// concurrent row that drift-checking compares (traffic and timing
	// are interleaving-dependent under real concurrency). ConcCheckSec
	// is the checker's wall time, host-dependent like WallSec.
	ConcSessions   uint64  `json:"conc_sessions,omitempty"`
	ConcReads      uint64  `json:"conc_reads,omitempty"`
	ConcWrites     uint64  `json:"conc_writes,omitempty"`
	ConcCheckedOps uint64  `json:"conc_checked_ops,omitempty"`
	ConcPartitions uint64  `json:"conc_partitions,omitempty"`
	ConcCheckSec   float64 `json:"conc_check_sec,omitempty"`
	// Streaming columns (schema 7, stream rows only): Chunks counts the
	// KindFetchChunk frames on the wire — a pure function of the
	// configuration, so it is drift-checked — and TTFAUsec is the
	// wall-clock latency of the first faulting access in microseconds,
	// host-dependent like WallSec and therefore reported but not
	// compared.
	Chunks   uint64  `json:"chunks,omitempty"`
	TTFAUsec float64 `json:"ttfa_usec,omitempty"`
	// Recovery columns (schema 8, recover rows only): completed sessions,
	// chaos faults injected, and the recovery machinery's totals. On the
	// fault-free rows every recovery counter must be zero (that is the
	// zero-overhead claim) and all modeled columns are drift-checked; on
	// the faulted rows retries race real-time deadlines, so only
	// rec_sessions — completion itself — is compared.
	RecSessions   uint64 `json:"rec_sessions,omitempty"`
	RecFaults     uint64 `json:"rec_faults,omitempty"`
	RecRetries    uint64 `json:"rec_retries,omitempty"`
	RecReplays    uint64 `json:"rec_replays,omitempty"`
	RecStaleDrops uint64 `json:"rec_stale_drops,omitempty"`

	// Host-dependent outputs (regression-checked with slack).
	WallSec         float64 `json:"wall_sec"`
	AllocsPerOp     uint64  `json:"allocs_per_op"`
	AllocBytesPerOp uint64  `json:"alloc_bytes_per_op"`
}

// reportPoint is one configuration the report measures.
type reportPoint struct {
	figure  string
	policy  core.Policy
	name    string
	ratio   float64
	clos    int
	noBat   bool
	update  bool
	repeats int
	noDelta bool
}

// BuildReport runs the regression suite and returns the filled report.
// Each point runs once to warm caches, then `runs` measured times; wall
// time and allocation counts are averaged, while the modeled outputs are
// taken from the last run (they are identical across runs by
// construction).
func BuildReport(model netsim.Model, nodes, closure, runs int) (Report, error) {
	if runs < 1 {
		runs = 1
	}
	rep := Report{Schema: 8, Model: "ethernet10-sparc", Nodes: nodes, Closure: closure, Runs: runs}

	var points []reportPoint
	for _, pol := range []struct {
		p core.Policy
		n string
	}{{core.PolicyEager, "eager"}, {core.PolicyLazy, "lazy"}, {core.PolicySmart, "smart"}} {
		for _, ratio := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			points = append(points, reportPoint{
				figure: "fig4", policy: pol.p, name: pol.n, ratio: ratio, clos: closure,
			})
		}
	}
	for _, cs := range DefaultClosureSizes {
		points = append(points, reportPoint{
			figure: "fig6", policy: core.PolicySmart, name: "smart", ratio: 1.0, clos: cs,
		})
	}
	// The multi-want FETCH protocol against its single-want ablation: the
	// message counts quantify the batching win.
	for _, ratio := range []float64{0.5, 1.0} {
		for _, noBat := range []bool{false, true} {
			name := "smart"
			if noBat {
				name = "smart-nobatch"
			}
			points = append(points, reportPoint{
				figure: "fetch-batch", policy: core.PolicySmart, name: name,
				ratio: ratio, clos: closure, noBat: noBat,
			})
		}
	}
	// Delta shipping against its full-shipping ablation on the repeated
	// update workload: the coh_item_bytes column quantifies the win.
	for _, ratio := range []float64{0.5, 1.0} {
		for _, noDelta := range []bool{false, true} {
			name := "smart-delta"
			if noDelta {
				name = "smart-fullship"
			}
			points = append(points, reportPoint{
				figure: "coh-delta", policy: core.PolicySmart, name: name,
				ratio: ratio, clos: closure, update: true, repeats: 8, noDelta: noDelta,
			})
		}
	}

	for _, pt := range points {
		row, err := measurePoint(model, nodes, runs, pt)
		if err != nil {
			return Report{}, fmt.Errorf("report %s/%s/%.2f: %w", pt.figure, pt.name, pt.ratio, err)
		}
		rep.Rows = append(rep.Rows, row)
	}

	// The repeated-session family (schema 3): per-session traffic of the
	// warm cross-session cache over a mutation-ratio sweep, with the
	// discard-on-invalidate ablation at ratio 0 as the control.
	warmPoints := []struct {
		name   string
		ratio  float64
		noWarm bool
	}{
		{"smart-warm", 0, false},
		{"smart-warm", 0.05, false},
		{"smart-warm", 0.25, false},
		{"smart-coldstart", 0, true},
	}
	for _, wp := range warmPoints {
		rows, err := measureWarmPoint(model, nodes, closure, runs, wp.name, wp.ratio, wp.noWarm)
		if err != nil {
			return Report{}, fmt.Errorf("report warm-sessions/%s/%.2f: %w", wp.name, wp.ratio, err)
		}
		rep.Rows = append(rep.Rows, rows...)
	}

	// The fetch-pipeline family (schema 4): the pointer-chase workload with
	// the speculative prefetcher off (the demand baseline) and on. One
	// client with synchronous speculation keeps every modeled column —
	// including the prefetch counters — deterministic.
	for _, pp := range []struct {
		name     string
		prefetch bool
	}{
		{"smart-demand", false},
		{"smart-prefetch", true},
	} {
		row, err := measurePipelinePoint(model, nodes, closure, runs, pp.name, pp.prefetch)
		if err != nil {
			return Report{}, fmt.Errorf("report pipeline/%s: %w", pp.name, err)
		}
		rep.Rows = append(rep.Rows, row)
	}

	// The scale-out family (schema 5): N clients sharing one origin, with
	// the encode cache on (client sweep at ratio 0, mutation sweep at 8
	// clients) and the re-encode-everything ablation as the control.
	for _, sp := range []struct {
		name    string
		clients int
		ratio   float64
		noEnc   bool
	}{
		{"smart-enccache", 1, 0, false},
		{"smart-enccache", 4, 0, false},
		{"smart-enccache", 8, 0, false},
		{"smart-enccache", 8, 0.05, false},
		{"smart-enccache", 8, 0.25, false},
		{"smart-noenccache", 8, 0, true},
	} {
		row, err := measureScaleoutPoint(model, nodes, closure, runs, sp.name, sp.clients, sp.ratio, sp.noEnc)
		if err != nil {
			return Report{}, fmt.Errorf("report scaleout/%s/%d: %w", sp.name, sp.clients, err)
		}
		rep.Rows = append(rep.Rows, row)
	}

	// The concurrent family (schema 6): K clients holding truly
	// overlapping sessions over one shared origin, every run verified
	// linearizable by internal/histcheck. Only the seed-deterministic
	// operation counts are drift-checked.
	for _, cp := range []struct {
		clients int
		ratio   float64
	}{
		{2, 0.25},
		{4, 0.25},
		{8, 0},
		{8, 0.05},
		{8, 0.25},
	} {
		row, err := measureConcurrentPoint(nodes, closure, runs, cp.clients, cp.ratio)
		if err != nil {
			return Report{}, fmt.Errorf("report concurrent/%d/%.2f: %w", cp.clients, cp.ratio, err)
		}
		rep.Rows = append(rep.Rows, row)
	}

	// The stream family (schema 7): one huge closure shipped to a single
	// client, over a chunk-size sweep plus the monolithic-reply ablation.
	// The chunk count is deterministic and drift-checked; the
	// time-to-first-access column is the wall-clock payoff.
	for _, sp := range []struct {
		name  string
		chunk int
	}{
		{"smart-stream-16k", 16 << 10},
		{"smart-stream-64k", 64 << 10},
		{"smart-stream-256k", 256 << 10},
		{"smart-nostream", -1},
	} {
		row, err := measureStreamPoint(model, nodes, runs, sp.name, sp.chunk)
		if err != nil {
			return Report{}, fmt.Errorf("report stream/%s: %w", sp.name, err)
		}
		rep.Rows = append(rep.Rows, row)
	}

	// The recover family (schema 8): the zero-overhead pair first — the
	// identical fault-free workload with recovery disarmed and armed,
	// whose wire columns must be byte-identical — then a transient-fault
	// sweep where completion (rec_sessions) is the deterministic claim
	// and the retry/replay counters are the reported price.
	for _, rp := range []struct {
		name               string
		drop, dup, corrupt int
		disabled           bool
	}{
		{name: "smart-recover-off", disabled: true},
		{name: "smart-recover-clean"},
		{name: "smart-recover-drop", drop: 250},
		{name: "smart-recover-dup", dup: 100},
		{name: "smart-recover-corrupt", corrupt: 60},
		{name: "smart-recover-mix", drop: 150, dup: 150, corrupt: 60},
	} {
		row, err := measureRecoverPoint(model, closure, runs, rp.name, rp.drop, rp.dup, rp.corrupt, rp.disabled)
		if err != nil {
			return Report{}, fmt.Errorf("report recover/%s: %w", rp.name, err)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// measureRecoverPoint runs one exchange-recovery configuration and fills
// a recover row. The tree is kept small (the faulted points pay a real
// CallTimeout per absorbed fault, so the row has to stay affordable) and
// fixed independent of the report's Nodes setting so the chaos schedule
// is stable.
func measureRecoverPoint(model netsim.Model, closure, runs int, name string, drop, dup, corrupt int, disabled bool) (ReportRow, error) {
	cfg := RecoverConfig{
		Nodes:           1023,
		ClosureSize:     closure,
		Sessions:        3,
		MutationRatio:   0.05,
		DropPermille:    drop,
		DupPermille:     dup,
		CorruptPermille: corrupt,
		Seed:            1,
		DisableRecovery: disabled,
		Model:           model,
	}
	if _, err := RunRecover(cfg); err != nil { // warm-up
		return ReportRow{}, err
	}
	var last RecoverResult
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	start := time.Now()
	for i := 0; i < runs; i++ {
		res, err := RunRecover(cfg)
		if err != nil {
			return ReportRow{}, err
		}
		last = res
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms2)
	return ReportRow{
		Figure:          "recover",
		Policy:          name,
		Closure:         cfg.ClosureSize,
		ModelSec:        last.Time.Seconds(),
		Messages:        last.Messages,
		NetBytes:        last.Bytes,
		Faults:          last.Faults,
		RecSessions:     last.Sessions,
		RecFaults:       last.ChaosFaults,
		RecRetries:      last.Retries,
		RecReplays:      last.Replays,
		RecStaleDrops:   last.StaleDrops,
		WallSec:         wall.Seconds() / float64(runs),
		AllocsPerOp:     (ms2.Mallocs - ms1.Mallocs) / uint64(runs),
		AllocBytesPerOp: (ms2.TotalAlloc - ms1.TotalAlloc) / uint64(runs),
	}, nil
}

// measureStreamPoint runs one streamed-transfer configuration and fills
// a stream row. The closure budget is fixed large (StreamConfig's 4 MiB
// default) so the whole chain ships on the first fault regardless of the
// report's closure setting.
func measureStreamPoint(model netsim.Model, nodes, runs int, name string, chunk int) (ReportRow, error) {
	cfg := StreamConfig{
		Nodes:            nodes,
		StreamChunkBytes: chunk,
		Model:            model,
	}
	if _, err := RunStream(cfg); err != nil { // warm-up
		return ReportRow{}, err
	}
	var last StreamResult
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	start := time.Now()
	var ttfa time.Duration
	for i := 0; i < runs; i++ {
		res, err := RunStream(cfg)
		if err != nil {
			return ReportRow{}, err
		}
		last = res
		ttfa += res.TTFA
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms2)
	cfg.fill()
	return ReportRow{
		Figure:          "stream",
		Policy:          name,
		Closure:         cfg.ClosureSize,
		ModelSec:        last.Time.Seconds(),
		Messages:        last.Messages,
		NetBytes:        last.Bytes,
		Faults:          last.Faults,
		Fetches:         last.Fetches,
		Chunks:          last.Chunks,
		TTFAUsec:        float64(ttfa.Microseconds()) / float64(runs),
		WallSec:         wall.Seconds() / float64(runs),
		AllocsPerOp:     (ms2.Mallocs - ms1.Mallocs) / uint64(runs),
		AllocBytesPerOp: (ms2.TotalAlloc - ms1.TotalAlloc) / uint64(runs),
	}, nil
}

// measureConcurrentPoint runs one concurrent-sessions configuration and
// fills a concurrent row. The network model is left free: virtual time
// is ill-defined when sessions overlap, so the row's timing column is
// wall clock and its deterministic columns are the operation counts.
func measureConcurrentPoint(nodes, closure, runs int, clients int, ratio float64) (ReportRow, error) {
	cfg := ConcurrentConfig{
		Nodes:       nodes,
		ClosureSize: closure,
		Clients:     clients,
		WriteRatio:  ratio,
		Seed:        1,
	}
	if _, err := RunConcurrent(cfg); err != nil { // warm-up
		return ReportRow{}, err
	}
	var last ConcurrentResult
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	start := time.Now()
	for i := 0; i < runs; i++ {
		res, err := RunConcurrent(cfg)
		if err != nil {
			return ReportRow{}, err
		}
		last = res
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms2)
	return ReportRow{
		Figure:          "concurrent",
		Policy:          "smart-concurrent",
		Ratio:           ratio,
		Closure:         closure,
		Clients:         clients,
		Messages:        last.Messages,
		NetBytes:        last.Bytes,
		ConcSessions:    last.Sessions,
		ConcReads:       last.Reads,
		ConcWrites:      last.Writes,
		ConcCheckedOps:  last.CheckedOps,
		ConcPartitions:  last.Partitions,
		ConcCheckSec:    last.CheckTime.Seconds(),
		WallSec:         wall.Seconds() / float64(runs),
		AllocsPerOp:     (ms2.Mallocs - ms1.Mallocs) / uint64(runs),
		AllocBytesPerOp: (ms2.TotalAlloc - ms1.TotalAlloc) / uint64(runs),
	}, nil
}

// measureScaleoutPoint runs one multi-client scale-out configuration and
// fills a scaleout row. Clients run sequentially, so every modeled
// column — including the encode-cache counters — is deterministic.
func measureScaleoutPoint(model netsim.Model, nodes, closure, runs int, name string, clients int, ratio float64, noEnc bool) (ReportRow, error) {
	cfg := ScaleoutConfig{
		Nodes:              nodes,
		ClosureSize:        closure,
		Clients:            clients,
		Rounds:             2,
		MutationRatio:      ratio,
		Model:              model,
		DisableEncodeCache: noEnc,
	}
	if _, err := RunScaleout(cfg); err != nil { // warm-up
		return ReportRow{}, err
	}
	var last ScaleoutResult
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	start := time.Now()
	for i := 0; i < runs; i++ {
		res, err := RunScaleout(cfg)
		if err != nil {
			return ReportRow{}, err
		}
		last = res
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms2)
	return ReportRow{
		Figure:           "scaleout",
		Policy:           name,
		Ratio:            ratio,
		Closure:          closure,
		Clients:          clients,
		ModelSec:         last.Time.Seconds(),
		Messages:         last.Messages,
		NetBytes:         last.Bytes,
		Faults:           last.Faults,
		Fetches:          last.Fetches,
		EncHits:          last.EncHits,
		EncMisses:        last.EncMisses,
		EncEvictions:     last.EncEvictions,
		EncInvalidations: last.EncInvalidations,
		EncBytes:         last.EncBytes,
		WallSec:          wall.Seconds() / float64(runs),
		AllocsPerOp:      (ms2.Mallocs - ms1.Mallocs) / uint64(runs),
		AllocBytesPerOp:  (ms2.TotalAlloc - ms1.TotalAlloc) / uint64(runs),
	}, nil
}

// measurePipelinePoint runs one deterministic pointer-chase configuration
// (single client, synchronous speculation) and fills a pipeline row.
func measurePipelinePoint(model netsim.Model, nodes, closure, runs int, name string, prefetch bool) (ReportRow, error) {
	cfg := PipelineConfig{
		ChainNodes:   nodes,
		ClosureSize:  closure,
		Prefetch:     prefetch,
		SyncPrefetch: true,
		Model:        model,
	}
	if _, err := RunPipeline(cfg); err != nil { // warm-up
		return ReportRow{}, err
	}
	var last PipelineResult
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	start := time.Now()
	for i := 0; i < runs; i++ {
		res, err := RunPipeline(cfg)
		if err != nil {
			return ReportRow{}, err
		}
		last = res
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms2)
	return ReportRow{
		Figure:          "pipeline",
		Policy:          name,
		Closure:         closure,
		ModelSec:        last.Time.Seconds(),
		Messages:        last.Messages,
		NetBytes:        last.Bytes,
		Faults:          last.Faults,
		Fetches:         last.Fetches,
		BlockingFetches: last.BlockingFetches,
		PfIssued:        last.PfIssued,
		PfCoalesced:     last.PfCoalesced,
		PfHits:          last.PfHits,
		PfWasted:        last.PfWasted,
		PfBytes:         last.PfBytes,
		WallSec:         wall.Seconds() / float64(runs),
		AllocsPerOp:     (ms2.Mallocs - ms1.Mallocs) / uint64(runs),
		AllocBytesPerOp: (ms2.TotalAlloc - ms1.TotalAlloc) / uint64(runs),
	}, nil
}

// measureWarmPoint runs one repeated-session configuration and returns a
// row per session. Wall time and allocations are whole-run averages
// spread evenly over the sessions; the modeled columns are per-session.
func measureWarmPoint(model netsim.Model, nodes, closure, runs int, name string, ratio float64, noWarm bool) ([]ReportRow, error) {
	const sessions = 4
	cfg := WarmConfig{
		Nodes:            nodes,
		ClosureSize:      closure,
		Sessions:         sessions,
		MutationRatio:    ratio,
		Model:            model,
		DisableWarmCache: noWarm,
	}
	if _, err := RunWarmSessions(cfg); err != nil { // warm-up
		return nil, err
	}
	var last WarmResult
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	start := time.Now()
	for i := 0; i < runs; i++ {
		res, err := RunWarmSessions(cfg)
		if err != nil {
			return nil, err
		}
		last = res
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms2)
	ops := uint64(runs) * sessions
	rows := make([]ReportRow, 0, sessions)
	for i, s := range last.Sessions {
		perCrossing := 0.0
		if s.Crossings > 0 {
			perCrossing = float64(s.Messages) / float64(s.Crossings)
		}
		rows = append(rows, ReportRow{
			Figure:              "warm-sessions",
			Policy:              name,
			Ratio:               ratio,
			Closure:             closure,
			Session:             i + 1,
			ModelSec:            s.Time.Seconds(),
			Callbacks:           s.Callbacks,
			Messages:            s.Messages,
			NetBytes:            s.Bytes,
			Faults:              s.Faults,
			Crossings:           s.Crossings,
			MsgsPerCrossing:     perCrossing,
			ItemBodyBytes:       s.ItemBodyBytes,
			CohRevalidateHits:   s.RevalidateHits,
			CohRevalidateMisses: s.RevalidateMisses,
			CohRevalidateBytes:  s.RevalidateBytes,
			WallSec:             wall.Seconds() / float64(ops),
			AllocsPerOp:         (ms2.Mallocs - ms1.Mallocs) / ops,
			AllocBytesPerOp:     (ms2.TotalAlloc - ms1.TotalAlloc) / ops,
		})
	}
	return rows, nil
}

// Check compares the deterministic modeled columns of cur against a
// committed baseline snapshot. Every baseline row must be present in cur
// (matched by figure/policy/ratio/closure) with identical modeled
// outputs; rows that exist only in cur are new experiments and pass.
// Wall-clock and allocation columns are host-dependent and ignored.
// Schema-1 baselines predate the crossing/coherency columns, so only the
// columns they carry are compared.
func Check(baseline, cur Report) error {
	if baseline.Nodes != cur.Nodes || baseline.Closure != cur.Closure {
		return fmt.Errorf("config mismatch: baseline %d nodes/%d closure, current %d/%d",
			baseline.Nodes, baseline.Closure, cur.Nodes, cur.Closure)
	}
	byKey := make(map[string]ReportRow, len(cur.Rows))
	for _, r := range cur.Rows {
		byKey[rowKey(r)] = r
	}
	var drifts []string
	for _, want := range baseline.Rows {
		got, ok := byKey[rowKey(want)]
		if !ok {
			drifts = append(drifts, fmt.Sprintf("%s: row missing", rowKey(want)))
			continue
		}
		check := func(col string, wantV, gotV float64) {
			if wantV != gotV {
				drifts = append(drifts, fmt.Sprintf("%s: %s = %v, baseline %v", rowKey(want), col, gotV, wantV))
			}
		}
		if want.Figure == "recover" && (want.RecFaults > 0 || got.RecFaults > 0) {
			// Faulted recover rows: retries race real-time deadlines, so
			// traffic and timing are host-dependent. The deterministic
			// claim is completion — every configured session finished.
			check("rec_sessions", float64(want.RecSessions), float64(got.RecSessions))
			continue
		}
		if want.Figure == "concurrent" {
			// Concurrent rows run K goroutines against one origin: wire
			// traffic and timing depend on the real interleaving, so only
			// the seed-deterministic operation counts are compared.
			check("conc_sessions", float64(want.ConcSessions), float64(got.ConcSessions))
			check("conc_reads", float64(want.ConcReads), float64(got.ConcReads))
			check("conc_writes", float64(want.ConcWrites), float64(got.ConcWrites))
			check("conc_checked_ops", float64(want.ConcCheckedOps), float64(got.ConcCheckedOps))
			check("conc_partitions", float64(want.ConcPartitions), float64(got.ConcPartitions))
			continue
		}
		check("model_sec", want.ModelSec, got.ModelSec)
		check("callbacks", float64(want.Callbacks), float64(got.Callbacks))
		check("messages", float64(want.Messages), float64(got.Messages))
		check("net_bytes", float64(want.NetBytes), float64(got.NetBytes))
		check("faults", float64(want.Faults), float64(got.Faults))
		if baseline.Schema >= 2 {
			check("crossings", float64(want.Crossings), float64(got.Crossings))
			check("msgs_per_crossing", want.MsgsPerCrossing, got.MsgsPerCrossing)
			check("coh_item_bytes", float64(want.CohItemBytes), float64(got.CohItemBytes))
			check("coh_items_shipped", float64(want.CohItemsShipped), float64(got.CohItemsShipped))
			check("coh_delta_items", float64(want.CohDeltaItems), float64(got.CohDeltaItems))
			check("coh_items_skipped", float64(want.CohItemsSkipped), float64(got.CohItemsSkipped))
		}
		if baseline.Schema >= 3 {
			check("item_body_bytes", float64(want.ItemBodyBytes), float64(got.ItemBodyBytes))
			check("coh_revalidate_hits", float64(want.CohRevalidateHits), float64(got.CohRevalidateHits))
			check("coh_revalidate_misses", float64(want.CohRevalidateMisses), float64(got.CohRevalidateMisses))
			check("coh_revalidate_bytes", float64(want.CohRevalidateBytes), float64(got.CohRevalidateBytes))
		}
		if baseline.Schema >= 4 {
			check("fetches", float64(want.Fetches), float64(got.Fetches))
			check("blocking_fetches", float64(want.BlockingFetches), float64(got.BlockingFetches))
			check("pf_issued", float64(want.PfIssued), float64(got.PfIssued))
			check("pf_coalesced", float64(want.PfCoalesced), float64(got.PfCoalesced))
			check("pf_hits", float64(want.PfHits), float64(got.PfHits))
			check("pf_wasted", float64(want.PfWasted), float64(got.PfWasted))
			check("pf_bytes", float64(want.PfBytes), float64(got.PfBytes))
		}
		if baseline.Schema >= 5 {
			// EncBytes is a gauge (resident size at run end), not a
			// counter; it is reported but not drift-checked.
			check("enc_hits", float64(want.EncHits), float64(got.EncHits))
			check("enc_misses", float64(want.EncMisses), float64(got.EncMisses))
			check("enc_evictions", float64(want.EncEvictions), float64(got.EncEvictions))
			check("enc_invalidations", float64(want.EncInvalidations), float64(got.EncInvalidations))
		}
		if baseline.Schema >= 7 {
			// TTFAUsec is wall clock and skipped, like WallSec.
			check("chunks", float64(want.Chunks), float64(got.Chunks))
		}
		if baseline.Schema >= 8 {
			// Only fault-free recover rows reach here (faulted ones exit
			// above): armed-but-idle recovery must do zero retry work.
			check("rec_sessions", float64(want.RecSessions), float64(got.RecSessions))
			check("rec_retries", float64(want.RecRetries), float64(got.RecRetries))
			check("rec_replays", float64(want.RecReplays), float64(got.RecReplays))
			check("rec_stale_drops", float64(want.RecStaleDrops), float64(got.RecStaleDrops))
		}
	}
	if len(drifts) > 0 {
		return fmt.Errorf("modeled columns drifted from baseline:\n  %s", strings.Join(drifts, "\n  "))
	}
	return nil
}

func rowKey(r ReportRow) string {
	// Clients was added in schema 5; rows from older families carry 0
	// there, so pre-5 baselines keep matching their re-measured rows.
	return fmt.Sprintf("%s/%s/%.4f/%d/%d/%d", r.Figure, r.Policy, r.Ratio, r.Closure, r.Session, r.Clients)
}

func measurePoint(model netsim.Model, nodes, runs int, pt reportPoint) (ReportRow, error) {
	cfg := TreeConfig{
		Policy:            pt.policy,
		Nodes:             nodes,
		ClosureSize:       pt.clos,
		AccessRatio:       pt.ratio,
		Update:            pt.update,
		Repeats:           pt.repeats,
		Model:             model,
		DisableFetchBatch: pt.noBat,
		DisableDeltaShip:  pt.noDelta,
	}
	// Warm-up run: first-use initialization (layout caches, pools) should
	// not be charged to the measurement.
	if _, err := RunTree(cfg); err != nil {
		return ReportRow{}, err
	}
	var last TreeResult
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	start := time.Now()
	for i := 0; i < runs; i++ {
		res, err := RunTree(cfg)
		if err != nil {
			return ReportRow{}, err
		}
		last = res
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms2)
	perCrossing := 0.0
	if last.Crossings > 0 {
		perCrossing = float64(last.Messages) / float64(last.Crossings)
	}
	return ReportRow{
		Figure:          pt.figure,
		Policy:          pt.name,
		Ratio:           pt.ratio,
		Closure:         pt.clos,
		ModelSec:        last.Time.Seconds(),
		Callbacks:       last.Callbacks,
		Messages:        last.Messages,
		NetBytes:        last.Bytes,
		Faults:          last.Faults,
		Crossings:       last.Crossings,
		MsgsPerCrossing: perCrossing,
		CohItemBytes:    last.CohItemBytes,
		CohItemsShipped: last.CohItemsShipped,
		CohDeltaItems:   last.CohDeltaItems,
		CohItemsSkipped: last.CohItemsSkipped,
		WallSec:         wall.Seconds() / float64(runs),
		AllocsPerOp:     (ms2.Mallocs - ms1.Mallocs) / uint64(runs),
		AllocBytesPerOp: (ms2.TotalAlloc - ms1.TotalAlloc) / uint64(runs),
	}, nil
}

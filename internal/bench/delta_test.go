package bench

import (
	"testing"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
)

// deltaCfg is the fig6-style repeated-crossing update workload the issue
// pins: several full searches in one session with small in-place edits,
// so the modified data set re-crosses the boundary on every call and
// return.
func deltaCfg(noDelta bool) TreeConfig {
	return TreeConfig{
		Policy:           core.PolicySmart,
		Nodes:            255,
		ClosureSize:      2048,
		AccessRatio:      0.5,
		Update:           true,
		Repeats:          6,
		Model:            netsim.Ethernet10SPARC(),
		DisableDeltaShip: noDelta,
	}
}

// TestDeltaShipReducesCohBytes pins the acceptance criterion: on the
// repeated-crossing workload, delta shipping must move at least 40%
// fewer coherency-path bytes than the paper's full-shipping protocol,
// without changing the computed result or the message count.
func TestDeltaShipReducesCohBytes(t *testing.T) {
	ds, err := RunTree(deltaCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := RunTree(deltaCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Visited != fs.Visited || ds.Sum != fs.Sum {
		t.Fatalf("results diverge: delta visited/sum %d/%d, fullship %d/%d",
			ds.Visited, ds.Sum, fs.Visited, fs.Sum)
	}
	if ds.Messages != fs.Messages || ds.Crossings != fs.Crossings {
		t.Errorf("delta shipping changed the message flow: %d msgs/%d crossings vs %d/%d",
			ds.Messages, ds.Crossings, fs.Messages, fs.Crossings)
	}
	if fs.CohItemBytes == 0 {
		t.Fatal("full shipping moved no coherency bytes; workload does not exercise the path")
	}
	reduction := 1 - float64(ds.CohItemBytes)/float64(fs.CohItemBytes)
	if reduction < 0.40 {
		t.Errorf("coherency-path bytes reduced by %.1f%% (%d -> %d), want >= 40%%",
			100*reduction, fs.CohItemBytes, ds.CohItemBytes)
	}
	// The wire total must shrink by exactly the item-payload saving's
	// share (item bodies are the only payload delta shipping touches).
	if ds.Bytes >= fs.Bytes {
		t.Errorf("total bytes on the wire did not shrink: %d vs %d", ds.Bytes, fs.Bytes)
	}
	if ds.CohItemsSkipped == 0 || ds.CohDeltaItems == 0 {
		t.Errorf("expected both tokens and deltas on this workload: skipped=%d deltas=%d",
			ds.CohItemsSkipped, ds.CohDeltaItems)
	}
}

// TestDeltaShipAblationRows sanity-checks the ablation driver that backs
// the srpcbench report.
func TestDeltaShipAblationRows(t *testing.T) {
	rows, err := DeltaShipAblation(netsim.Ethernet10SPARC(), 255, 2048, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].CohBytes >= rows[1].CohBytes {
		t.Errorf("delta-ship coh bytes %d not below full-ship %d", rows[0].CohBytes, rows[1].CohBytes)
	}
}

// TestDeltaShipLeavesModeledFiguresUnchanged pins the other half of the
// acceptance criterion: the paper's modeled figures must not move.
// Read-only workloads (Fig. 4/6 and the fetch-batch family) have no
// modified data set, so every modeled output is identical with delta
// shipping on or off; update figures (Fig. 7, the coherence ablations)
// pin DisableDeltaShip and are full-shipping by construction.
func TestDeltaShipLeavesModeledFiguresUnchanged(t *testing.T) {
	model := netsim.Ethernet10SPARC()
	for _, ratio := range []float64{0.25, 1.0} {
		var got [2]TreeResult
		for i, noDelta := range []bool{false, true} {
			res, err := RunTree(TreeConfig{
				Policy:           core.PolicySmart,
				Nodes:            255,
				ClosureSize:      2048,
				AccessRatio:      ratio,
				Model:            model,
				DisableDeltaShip: noDelta,
			})
			if err != nil {
				t.Fatal(err)
			}
			got[i] = res
		}
		if got[0].Time != got[1].Time || got[0].Messages != got[1].Messages ||
			got[0].Bytes != got[1].Bytes || got[0].Callbacks != got[1].Callbacks ||
			got[0].Faults != got[1].Faults {
			t.Errorf("ratio %v: read-only modeled outputs differ with delta shipping: %+v vs %+v",
				ratio, got[0], got[1])
		}
	}
}

package bench

import (
	"fmt"
	"strings"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
	"smartrpc/internal/swizzle"
	"smartrpc/internal/transport"
	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
)

// DefaultRatios is the access-ratio sweep used by Figures 4, 5, and 7.
var DefaultRatios = []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Fig4Row is one X position of Figure 4: processing time by method.
type Fig4Row struct {
	Ratio              float64
	Eager, Lazy, Smart time.Duration
}

// Fig4 reproduces Figure 4: average processing time of one RPC that
// searches a 32,767-node tree, as a function of the access ratio, for the
// fully eager, fully lazy, and proposed (smart, closure 8192) methods.
func Fig4(model netsim.Model, nodes, closure int, ratios []float64) ([]Fig4Row, error) {
	if ratios == nil {
		ratios = DefaultRatios
	}
	rows := make([]Fig4Row, 0, len(ratios))
	for _, r := range ratios {
		row := Fig4Row{Ratio: r}
		for _, pol := range []core.Policy{core.PolicyEager, core.PolicyLazy, core.PolicySmart} {
			res, err := RunTree(TreeConfig{
				Policy:      pol,
				Nodes:       nodes,
				ClosureSize: closure,
				AccessRatio: r,
				Model:       model,
			})
			if err != nil {
				return nil, fmt.Errorf("fig4 ratio %v policy %v: %w", r, pol, err)
			}
			switch pol {
			case core.PolicyEager:
				row.Eager = res.Time
			case core.PolicyLazy:
				row.Lazy = res.Time
			case core.PolicySmart:
				row.Smart = res.Time
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig5Row is one X position of Figure 5: callback counts.
type Fig5Row struct {
	Ratio       float64
	Lazy, Smart uint64
}

// Fig5 reproduces Figure 5: the number of callbacks issued by the callee
// for the fully lazy and proposed methods, over the same sweep as Fig. 4.
func Fig5(model netsim.Model, nodes, closure int, ratios []float64) ([]Fig5Row, error) {
	if ratios == nil {
		ratios = DefaultRatios
	}
	rows := make([]Fig5Row, 0, len(ratios))
	for _, r := range ratios {
		row := Fig5Row{Ratio: r}
		for _, pol := range []core.Policy{core.PolicyLazy, core.PolicySmart} {
			res, err := RunTree(TreeConfig{
				Policy:      pol,
				Nodes:       nodes,
				ClosureSize: closure,
				AccessRatio: r,
				Model:       model,
			})
			if err != nil {
				return nil, fmt.Errorf("fig5 ratio %v policy %v: %w", r, pol, err)
			}
			if pol == core.PolicyLazy {
				row.Lazy = res.Callbacks
			} else {
				row.Smart = res.Callbacks
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DefaultClosureSizes is the closure sweep of Figure 6 (bytes).
var DefaultClosureSizes = []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144}

// DefaultTreeSizes is Figure 6's family of curves.
var DefaultTreeSizes = []int{16383, 32767, 65535}

// Fig6Cell is one (tree size, closure size) measurement.
type Fig6Cell struct {
	Nodes   int
	Closure int
	Time    time.Duration
}

// Fig6 reproduces Figure 6: processing time of a session performing 10
// repeated full searches of the tree, as a function of the closure size,
// for three tree sizes. Repetition exercises cache reuse: "nodes in the
// upper level will be reused in the subsequent searches".
func Fig6(model netsim.Model, treeSizes, closures []int, repeats int) ([]Fig6Cell, error) {
	if treeSizes == nil {
		treeSizes = DefaultTreeSizes
	}
	if closures == nil {
		closures = DefaultClosureSizes
	}
	if repeats <= 0 {
		repeats = 10
	}
	var cells []Fig6Cell
	for _, n := range treeSizes {
		for _, cs := range closures {
			res, err := RunTree(TreeConfig{
				Policy:      core.PolicySmart,
				Nodes:       n,
				ClosureSize: cs,
				AccessRatio: 1.0,
				Repeats:     repeats,
				Model:       model,
			})
			if err != nil {
				return nil, fmt.Errorf("fig6 nodes %d closure %d: %w", n, cs, err)
			}
			cells = append(cells, Fig6Cell{Nodes: n, Closure: cs, Time: res.Time})
		}
	}
	return cells, nil
}

// Fig7Row is one X position of Figure 7: update vs read-only cost.
type Fig7Row struct {
	Ratio               float64
	Updated, NotUpdated time.Duration
}

// Fig7 reproduces Figure 7: processing time when the visited nodes are
// updated versus merely visited, over the access-ratio sweep, with the
// proposed method at closure 8192. Delta shipping is disabled: the
// figure reproduces the paper's protocol, which re-transmits full
// encodings on every crossing (DeltaShipAblation measures the
// difference).
func Fig7(model netsim.Model, nodes, closure int, ratios []float64) ([]Fig7Row, error) {
	if ratios == nil {
		ratios = DefaultRatios
	}
	rows := make([]Fig7Row, 0, len(ratios))
	for _, r := range ratios {
		row := Fig7Row{Ratio: r}
		for _, update := range []bool{true, false} {
			res, err := RunTree(TreeConfig{
				Policy:           core.PolicySmart,
				Nodes:            nodes,
				ClosureSize:      closure,
				AccessRatio:      r,
				Update:           update,
				Model:            model,
				DisableDeltaShip: true,
			})
			if err != nil {
				return nil, fmt.Errorf("fig7 ratio %v update %v: %w", r, update, err)
			}
			if update {
				row.Updated = res.Time
			} else {
				row.NotUpdated = res.Time
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1 reproduces the paper's Table 1: the data allocation table of a
// callee just after two long pointers A and B have been swizzled into one
// protected page. It returns a rendered table.
func Table1() (string, error) {
	sp, err := vmem.NewSpace(vmem.Config{})
	if err != nil {
		return "", err
	}
	reg := NewRegistry()
	tb := swizzle.New(sp, reg, CalleeID, swizzle.PolicyPerOrigin)
	ptrA := wire.LongPtr{Space: CallerID, Addr: 0xA000, Type: NodeType}
	ptrB := wire.LongPtr{Space: CallerID, Addr: 0xB000, Type: NodeType}
	if _, _, err := tb.Swizzle(ptrA); err != nil {
		return "", err
	}
	if _, _, err := tb.Swizzle(ptrB); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-22s %s\n", "page #", "offset within the page", "long pointer")
	names := map[wire.LongPtr]string{ptrA: "A", ptrB: "B"}
	for _, e := range tb.Entries() {
		fmt.Fprintf(&b, "%-8d %-22d %s (%s)\n", e.Page, e.Offset, names[e.LP], e.LP)
	}
	return b.String(), nil
}

// Ablations beyond the paper's figures ----------------------------------

// AblationRow is one configuration's outcome in an ablation sweep.
type AblationRow struct {
	Name      string
	Time      time.Duration
	Callbacks uint64
	Messages  uint64
	Bytes     uint64
	// CohBytes is the coherency-path item payload actually shipped
	// (TreeResult.CohItemBytes); zero for rows that do not track it.
	CohBytes uint64
}

// PageSizeAblation sweeps the protection grain, a design choice the paper
// inherits from the hardware (SPARC: 4 KiB).
func PageSizeAblation(model netsim.Model, nodes int, pageSizes []int) ([]AblationRow, error) {
	if pageSizes == nil {
		pageSizes = []int{512, 1024, 2048, 4096, 8192, 16384}
	}
	var rows []AblationRow
	for _, ps := range pageSizes {
		res, err := RunTree(TreeConfig{
			Nodes:       nodes,
			AccessRatio: 0.5,
			PageSize:    ps,
			Model:       model,
		})
		if err != nil {
			return nil, fmt.Errorf("page size %d: %w", ps, err)
		}
		rows = append(rows, AblationRow{
			Name: fmt.Sprintf("page=%d", ps), Time: res.Time,
			Callbacks: res.Callbacks, Messages: res.Messages, Bytes: res.Bytes,
		})
	}
	return rows, nil
}

// TraversalAblation compares breadth-first (paper) and depth-first closure
// traversal (§3.3 mentions alternative algorithms).
func TraversalAblation(model netsim.Model, nodes, closure int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, tr := range []core.Traversal{core.TraverseBFS, core.TraverseDFS} {
		name := "closure=bfs"
		if tr == core.TraverseDFS {
			name = "closure=dfs"
		}
		res, err := RunTree(TreeConfig{
			Nodes:       nodes,
			ClosureSize: closure,
			AccessRatio: 1.0,
			Traversal:   tr,
			Model:       model,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, AblationRow{
			Name: name, Time: res.Time,
			Callbacks: res.Callbacks, Messages: res.Messages, Bytes: res.Bytes,
		})
	}
	return rows, nil
}

// CoherenceAblation compares the paper's piggyback protocol against naive
// write-back-on-transfer, on the update workload. Both arms run with
// delta shipping disabled so the comparison reproduces the paper's
// protocols as modeled.
func CoherenceAblation(model netsim.Model, nodes, closure int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, co := range []core.Coherence{core.CoherencePiggyback, core.CoherenceWriteBack} {
		name := "coherence=piggyback"
		if co == core.CoherenceWriteBack {
			name = "coherence=writeback"
		}
		res, err := RunTree(TreeConfig{
			Nodes:            nodes,
			ClosureSize:      closure,
			AccessRatio:      0.5,
			Update:           true,
			Coherence:        co,
			Model:            model,
			DisableDeltaShip: true,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, AblationRow{
			Name: name, Time: res.Time,
			Callbacks: res.Callbacks, Messages: res.Messages, Bytes: res.Bytes,
			CohBytes: res.CohItemBytes,
		})
	}
	return rows, nil
}

// DeltaShipAblation measures the delta-shipping win on the repeated
// update workload: several full searches in one session, each doubling
// every visited node in place, so the modified data set re-crosses the
// boundary on every call and return. Full shipping re-transmits every
// item's complete encoding each time; delta shipping sends byte-range
// diffs (8 of a node's 16 canonical data bytes change per visit) and
// zero-byte tokens for the untouched remainder of each dirty page.
func DeltaShipAblation(model netsim.Model, nodes, closure, repeats int) ([]AblationRow, error) {
	if repeats <= 0 {
		repeats = 8
	}
	var rows []AblationRow
	for _, noDelta := range []bool{false, true} {
		name := "coh=delta-ship"
		if noDelta {
			name = "coh=full-ship"
		}
		res, err := RunTree(TreeConfig{
			Nodes:            nodes,
			ClosureSize:      closure,
			AccessRatio:      0.5,
			Update:           true,
			Repeats:          repeats,
			Model:            model,
			DisableDeltaShip: noDelta,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, AblationRow{
			Name: name, Time: res.Time,
			Callbacks: res.Callbacks, Messages: res.Messages, Bytes: res.Bytes,
			CohBytes: res.CohItemBytes,
		})
	}
	return rows, nil
}

// AllocPolicyAblation compares the paper's one-origin-per-page heuristic
// against mixed-origin packing (§6's worst case) on a workload touching
// data from two origin spaces.
func AllocPolicyAblation(model netsim.Model, nodes int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, ap := range []swizzle.AllocPolicy{swizzle.PolicyPerOrigin, swizzle.PolicyMixed} {
		name := "alloc=per-origin"
		if ap == swizzle.PolicyMixed {
			name = "alloc=mixed"
		}
		res, err := RunTwoOriginSearch(model, nodes, ap)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, AblationRow{
			Name: name, Time: res.Time,
			Callbacks: res.Callbacks, Messages: res.Messages, Bytes: res.Bytes,
		})
	}
	return rows, nil
}

// BatchingAblation compares batched remote allocation (§3.5) against a
// hypothetical per-operation flush, estimated from the same run by
// charging one round trip per allocation instead of one per batch.
func BatchingAblation(model netsim.Model, allocs int) ([]AblationRow, error) {
	res, batches, err := runRemoteAllocWorkload(model, allocs)
	if err != nil {
		return nil, err
	}
	perOp := res.Time + time.Duration(allocs-int(batches))*2*model.Cost(64)
	return []AblationRow{
		{Name: "alloc=batched", Time: res.Time, Messages: res.Messages, Bytes: res.Bytes},
		{Name: "alloc=per-op (modeled)", Time: perOp, Messages: res.Messages + 2*uint64(allocs-int(batches)), Bytes: res.Bytes},
	}, nil
}

// runRemoteAllocWorkload has the callee extended_malloc a linked list of n
// nodes in the caller's space.
func runRemoteAllocWorkload(model netsim.Model, n int) (TreeResult, uint64, error) {
	clock := &netsim.Clock{}
	stats := &netsim.Stats{}
	net, err := transport.NewNetwork(model, clock, stats)
	if err != nil {
		return TreeResult{}, 0, err
	}
	defer net.Close()
	reg := NewRegistry()
	nodeA, err := net.Attach(CallerID)
	if err != nil {
		return TreeResult{}, 0, err
	}
	nodeB, err := net.Attach(CalleeID)
	if err != nil {
		return TreeResult{}, 0, err
	}
	caller, err := core.New(core.Options{ID: CallerID, Node: nodeA, Registry: reg})
	if err != nil {
		return TreeResult{}, 0, err
	}
	defer caller.Close()
	callee, err := core.New(core.Options{ID: CalleeID, Node: nodeB, Registry: reg})
	if err != nil {
		return TreeResult{}, 0, err
	}
	defer callee.Close()
	err = callee.Register("makeList", func(ctx *core.Ctx, args []core.Value) ([]core.Value, error) {
		rt := ctx.Runtime()
		prev := core.NullPtr(NodeType)
		count := args[0].Int64()
		for i := int64(0); i < count; i++ {
			v, err := rt.ExtendedMalloc(ctx.Caller(), NodeType)
			if err != nil {
				return nil, err
			}
			ref, err := rt.Deref(v)
			if err != nil {
				return nil, err
			}
			if err := ref.SetInt("data", 0, i); err != nil {
				return nil, err
			}
			if err := ref.SetPtr("left", 0, prev); err != nil {
				return nil, err
			}
			prev = v
		}
		return []core.Value{prev}, nil
	})
	if err != nil {
		return TreeResult{}, 0, err
	}
	clock.Reset()
	stats.Reset()
	if err := caller.BeginSession(); err != nil {
		return TreeResult{}, 0, err
	}
	if _, err := caller.Call(CalleeID, "makeList", []core.Value{core.Int64Value(int64(n))}); err != nil {
		return TreeResult{}, 0, err
	}
	if err := caller.EndSession(); err != nil {
		return TreeResult{}, 0, err
	}
	return TreeResult{
		Time:     clock.Now(),
		Messages: stats.Messages(),
		Bytes:    stats.Bytes(),
	}, callee.Stats().AllocBatches, nil
}

// RunTwoOriginSearch builds half the tree's children in a third space so a
// searching callee touches data from two origins, then searches it all.
// Under PolicyMixed the two origins share cache pages and one page fault
// needs fetches from both spaces.
func RunTwoOriginSearch(model netsim.Model, nodes int, ap swizzle.AllocPolicy) (TreeResult, error) {
	clock := &netsim.Clock{}
	stats := &netsim.Stats{}
	net, err := transport.NewNetwork(model, clock, stats)
	if err != nil {
		return TreeResult{}, err
	}
	defer net.Close()
	reg := NewRegistry()
	const thirdID uint32 = 3
	mk := func(id uint32) (*core.Runtime, error) {
		node, err := net.Attach(id)
		if err != nil {
			return nil, err
		}
		return core.New(core.Options{ID: id, Node: node, Registry: reg, AllocPolicy: ap})
	}
	caller, err := mk(CallerID)
	if err != nil {
		return TreeResult{}, err
	}
	defer caller.Close()
	callee, err := mk(CalleeID)
	if err != nil {
		return TreeResult{}, err
	}
	defer callee.Close()
	third, err := mk(thirdID)
	if err != nil {
		return TreeResult{}, err
	}
	defer third.Close()
	if err := RegisterSearch(callee); err != nil {
		return TreeResult{}, err
	}
	// The third space exposes a builder so half the nodes originate there.
	err = third.Register("makeNode", func(ctx *core.Ctx, args []core.Value) ([]core.Value, error) {
		rt := ctx.Runtime()
		v, err := rt.NewObject(NodeType)
		if err != nil {
			return nil, err
		}
		ref, err := rt.Deref(v)
		if err != nil {
			return nil, err
		}
		if err := ref.SetInt("data", 0, args[0].Int64()); err != nil {
			return nil, err
		}
		return []core.Value{v}, nil
	})
	if err != nil {
		return TreeResult{}, err
	}

	// Build a right-leaning list alternating owners: odd positions live in
	// the caller, even positions in the third space.
	if err := caller.BeginSession(); err != nil {
		return TreeResult{}, err
	}
	prev := core.NullPtr(NodeType)
	for i := nodes; i >= 1; i-- {
		var v core.Value
		if i%2 == 0 {
			res, err := caller.Call(thirdID, "makeNode", []core.Value{core.Int64Value(int64(i))})
			if err != nil {
				return TreeResult{}, err
			}
			v = res[0]
		} else {
			v, err = caller.NewObject(NodeType)
			if err != nil {
				return TreeResult{}, err
			}
			ref, err := caller.Deref(v)
			if err != nil {
				return TreeResult{}, err
			}
			if err := ref.SetInt("data", 0, int64(i)); err != nil {
				return TreeResult{}, err
			}
		}
		ref, err := caller.Deref(v)
		if err != nil {
			return TreeResult{}, err
		}
		if err := ref.SetPtr("right", 0, prev); err != nil {
			return TreeResult{}, err
		}
		prev = v
	}
	clock.Reset()
	stats.Reset()
	res, err := caller.Call(CalleeID, SearchProc, []core.Value{
		prev, core.Int64Value(int64(nodes)), core.BoolValue(false),
	})
	if err != nil {
		return TreeResult{}, err
	}
	elapsed := clock.Now()
	if err := caller.EndSession(); err != nil {
		return TreeResult{}, err
	}
	return TreeResult{
		Time:      elapsed,
		Callbacks: callee.Stats().FetchesSent,
		Messages:  stats.Messages(),
		Bytes:     stats.Bytes(),
		Visited:   res[0].Int64(),
		Sum:       res[1].Int64(),
	}, nil
}

// Package bench is the experiment harness that regenerates the paper's
// evaluation (§4): the three-way method comparison (Fig. 4), the callback
// counts (Fig. 5), the closure-size sweep (Fig. 6), the update-performance
// sweep (Fig. 7), and the data allocation table illustration (Table 1).
//
// All timings are virtual: every message is charged to a deterministic
// netsim cost model calibrated to the paper's testbed (SPARCstations on
// 10 Mbps Ethernet), so results reproduce bit-for-bit on any host and the
// curves can be compared to the paper's figures directly.
package bench

import (
	"errors"
	"fmt"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
	"smartrpc/internal/swizzle"
	"smartrpc/internal/transport"
	"smartrpc/internal/types"
	"smartrpc/internal/wire"
)

// NodeType is the tree node's type ID in the harness registry.
const NodeType types.ID = 1

// Space IDs used by the harness.
const (
	CallerID uint32 = 1
	CalleeID uint32 = 2
)

// SearchProc is the remote procedure name registered on the callee.
const SearchProc = "searchTree"

// NewRegistry builds the experiment schema: the paper's 16-byte tree node
// (two 4-byte pointers and 8 bytes of data on the 32-bit profile).
func NewRegistry() *types.Registry {
	r := types.NewRegistry()
	r.MustRegister(&types.Desc{
		ID:   NodeType,
		Name: "TreeNode",
		Fields: []types.Field{
			{Name: "left", Kind: types.Ptr, Elem: NodeType},
			{Name: "right", Kind: types.Ptr, Elem: NodeType},
			{Name: "data", Kind: types.Int64},
		},
	})
	return r
}

// TreeConfig parameterizes one tree-search experiment run.
type TreeConfig struct {
	// Policy selects smart/eager/lazy.
	Policy core.Policy
	// Nodes is the complete binary tree size (paper: 32,767).
	Nodes int
	// ClosureSize is the eager-transfer budget in bytes (paper: 8,192).
	ClosureSize int
	// AccessRatio is the fraction of nodes visited depth-first in the
	// callee (Fig. 4's X axis).
	AccessRatio float64
	// Update makes the callee write each visited node (Fig. 7).
	Update bool
	// Repeats repeats the full search within one session (Fig. 6 uses 10
	// to exercise cache reuse).
	Repeats int
	// PageSize overrides the simulated page size.
	PageSize int
	// AllocPolicy, Traversal, Coherence select the ablations.
	AllocPolicy swizzle.AllocPolicy
	Traversal   core.Traversal
	Coherence   core.Coherence
	// Model is the network cost model; zero value = free network (tests).
	Model netsim.Model
	// DisableFetchBatch reverts to the single-want FETCH protocol (one
	// faulting page per message), for measuring the batching win.
	DisableFetchBatch bool
	// DisableDeltaShip reverts the coherency path to full shipping (the
	// paper's modeled protocol), for measuring the delta-shipping win.
	DisableDeltaShip bool
}

func (c *TreeConfig) fill() error {
	if c.Policy == 0 {
		c.Policy = core.PolicySmart
	}
	if c.Nodes <= 0 {
		c.Nodes = 32767
	}
	if c.ClosureSize == 0 {
		c.ClosureSize = 8192
	}
	if c.AccessRatio < 0 || c.AccessRatio > 1 {
		return fmt.Errorf("bench: access ratio %v out of [0,1]", c.AccessRatio)
	}
	if c.Repeats <= 0 {
		c.Repeats = 1
	}
	return nil
}

// TreeResult is the outcome of one run.
type TreeResult struct {
	// Time is the virtual processing time of the whole RPC session.
	Time time.Duration
	// Callbacks is the number of data-request messages the callee issued
	// (Fig. 5's Y axis). For the lazy method this counts per-dereference
	// callbacks; for the smart method, page-fault fetches.
	Callbacks uint64
	// Messages and Bytes are total network traffic.
	Messages, Bytes uint64
	// Crossings counts address-space boundary crossings of the thread of
	// control (call + return messages): the denominator for per-crossing
	// traffic metrics.
	Crossings uint64
	// CohItemBytes is the encoded payload bytes of coherency-path data
	// items that actually crossed the wire, summed over all spaces
	// (deltas contribute their delta size, elided items nothing).
	CohItemBytes uint64
	// CohItemsShipped / CohDeltaItems / CohItemsSkipped break the
	// coherency-path items down: transmitted (full or delta), the delta
	// subset, and elided entirely.
	CohItemsShipped, CohDeltaItems, CohItemsSkipped uint64
	// Faults is the callee's access-violation count.
	Faults uint64
	// Visited is the number of nodes the callee actually visited.
	Visited int64
	// Sum is the checksum returned by the search (validates correctness).
	Sum int64
}

// RunTree executes one tree-search experiment: the caller builds the tree,
// the callee searches (and optionally updates) it remotely, and the
// session is torn down, all under the virtual clock.
func RunTree(cfg TreeConfig) (TreeResult, error) {
	if err := cfg.fill(); err != nil {
		return TreeResult{}, err
	}
	clock := &netsim.Clock{}
	stats := &netsim.Stats{}
	net, err := transport.NewNetwork(cfg.Model, clock, stats)
	if err != nil {
		return TreeResult{}, err
	}
	defer net.Close()
	reg := NewRegistry()

	mk := func(id uint32) (*core.Runtime, error) {
		node, err := net.Attach(id)
		if err != nil {
			return nil, err
		}
		return core.New(core.Options{
			ID:                id,
			Node:              node,
			Registry:          reg,
			Policy:            cfg.Policy,
			ClosureSize:       cfg.ClosureSize,
			PageSize:          cfg.PageSize,
			AllocPolicy:       cfg.AllocPolicy,
			Traversal:         cfg.Traversal,
			Coherence:         cfg.Coherence,
			DisableFetchBatch: cfg.DisableFetchBatch,
			DisableDeltaShip:  cfg.DisableDeltaShip,
		})
	}
	caller, err := mk(CallerID)
	if err != nil {
		return TreeResult{}, err
	}
	defer caller.Close()
	callee, err := mk(CalleeID)
	if err != nil {
		return TreeResult{}, err
	}
	defer callee.Close()
	if err := RegisterSearch(callee); err != nil {
		return TreeResult{}, err
	}

	root, err := BuildTree(caller, cfg.Nodes)
	if err != nil {
		return TreeResult{}, err
	}

	visitBudget := int64(cfg.AccessRatio * float64(cfg.Nodes))
	clock.Reset()
	stats.Reset()

	if err := caller.BeginSession(); err != nil {
		return TreeResult{}, err
	}
	var visited, sum int64
	for rep := 0; rep < cfg.Repeats; rep++ {
		res, err := caller.Call(CalleeID, SearchProc, []core.Value{
			root,
			core.Int64Value(visitBudget),
			core.BoolValue(cfg.Update),
		})
		if err != nil {
			return TreeResult{}, fmt.Errorf("bench: search call: %w", err)
		}
		if len(res) != 2 {
			return TreeResult{}, fmt.Errorf("bench: search returned %d values", len(res))
		}
		visited = res[0].Int64()
		sum = res[1].Int64()
	}
	if err := caller.EndSession(); err != nil {
		return TreeResult{}, err
	}

	st := callee.Stats()
	cst := caller.Stats()
	out := TreeResult{
		Time:      clock.Now(),
		Callbacks: st.FetchesSent,
		Messages:  stats.Messages(),
		Bytes:     stats.Bytes(),
		Crossings: stats.KindMessages(uint32(wire.KindCall)) +
			stats.KindMessages(uint32(wire.KindReturn)),
		CohItemBytes:    st.CohItemBytes + cst.CohItemBytes,
		CohItemsShipped: st.CohItemsShipped + cst.CohItemsShipped,
		CohDeltaItems:   st.CohDeltaItems + cst.CohDeltaItems,
		CohItemsSkipped: st.CohItemsSkipped + cst.CohItemsSkipped,
		Faults:          st.Faults,
		Visited:         visited,
		Sum:             sum,
	}
	if cfg.Policy == core.PolicyLazy && cfg.Update {
		// Lazy updates go home immediately; count them as callbacks too,
		// like the extra communication they are.
		out.Callbacks = st.FetchesSent + st.WriteBackMsgs
	}
	return out, nil
}

// BuildTree allocates a complete binary tree with n nodes (n = 2^k - 1) in
// rt's heap; node data is the preorder index starting at 1. It returns the
// root pointer value.
func BuildTree(rt *core.Runtime, n int) (core.Value, error) {
	if n <= 0 {
		return core.Value{}, errors.New("bench: tree size must be positive")
	}
	levels := 0
	for (1 << (levels + 1)) <= n+1 {
		levels++
	}
	if (1<<levels)-1 != n {
		return core.Value{}, fmt.Errorf("bench: %d is not a complete tree size (2^k-1)", n)
	}
	counter := int64(0)
	var build func(level int) (core.Value, error)
	build = func(level int) (core.Value, error) {
		if level == 0 {
			return core.NullPtr(NodeType), nil
		}
		v, err := rt.NewObject(NodeType)
		if err != nil {
			return core.Value{}, err
		}
		counter++
		ref, err := rt.Deref(v)
		if err != nil {
			return core.Value{}, err
		}
		if err := ref.SetInt("data", 0, counter); err != nil {
			return core.Value{}, err
		}
		l, err := build(level - 1)
		if err != nil {
			return core.Value{}, err
		}
		if err := ref.SetPtr("left", 0, l); err != nil {
			return core.Value{}, err
		}
		r, err := build(level - 1)
		if err != nil {
			return core.Value{}, err
		}
		if err := ref.SetPtr("right", 0, r); err != nil {
			return core.Value{}, err
		}
		return v, nil
	}
	return build(levels)
}

// RegisterSearch installs the experiment's remote procedure on the callee:
// a depth-first traversal that visits up to `budget` nodes, optionally
// updating each visited node's data (doubling it), and returns the visit
// count and the running checksum. This is exactly §4.1's workload: "the
// nodes of the tree were visited in a depth-first manner until the ratio
// of visited nodes to the total reached the ratio indicated".
func RegisterSearch(callee *core.Runtime) error {
	return callee.Register(SearchProc, func(ctx *core.Ctx, args []core.Value) ([]core.Value, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("searchTree: want 3 args, got %d", len(args))
		}
		rt := ctx.Runtime()
		budget := args[1].Int64()
		update := args[2].Bool()
		var visited, sum int64
		var walk func(v core.Value) error
		walk = func(v core.Value) error {
			if v.IsNullPtr() || visited >= budget {
				return nil
			}
			ref, err := rt.Deref(v)
			if err != nil {
				return err
			}
			visited++
			d, err := ref.Int("data", 0)
			if err != nil {
				return err
			}
			sum += d
			if update {
				if err := ref.SetInt("data", 0, d*2); err != nil {
					return err
				}
			}
			l, err := ref.Ptr("left", 0)
			if err != nil {
				return err
			}
			if err := walk(l); err != nil {
				return err
			}
			if visited >= budget {
				return nil
			}
			r, err := ref.Ptr("right", 0)
			if err != nil {
				return err
			}
			return walk(r)
		}
		if err := walk(args[0]); err != nil {
			return nil, err
		}
		return []core.Value{core.Int64Value(visited), core.Int64Value(sum)}, nil
	})
}

package bench

import "testing"

// TestConcurrentDeterministicCounts pins the snapshot contract of the
// concurrent family: the operation counts are a function of the
// per-client seed streams alone, so two runs of the same configuration
// must agree on every drift-checked column even though the real
// goroutine interleaving differs between them.
func TestConcurrentDeterministicCounts(t *testing.T) {
	cfg := ConcurrentConfig{
		Nodes:      255,
		Clients:    4,
		Rounds:     2,
		Visits:     6,
		WriteRatio: 0.25,
		Seed:       42,
	}
	a, err := RunConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if want := uint64(cfg.Clients * cfg.Rounds); a.Sessions != want {
		t.Errorf("sessions = %d, want %d", a.Sessions, want)
	}
	if total := a.Reads + a.Writes; total != uint64(cfg.Clients*cfg.Rounds*cfg.Visits) {
		t.Errorf("reads+writes = %d, want %d", total, cfg.Clients*cfg.Rounds*cfg.Visits)
	}
	if a.Writes == 0 {
		t.Error("write ratio 0.25 produced no writes")
	}
	if a.CheckedOps == 0 {
		t.Error("checker saw no operations")
	}
	if a.Partitions == 0 {
		t.Error("checker saw no object partitions")
	}

	if a.Sessions != b.Sessions || a.Reads != b.Reads || a.Writes != b.Writes ||
		a.CheckedOps != b.CheckedOps || a.Partitions != b.Partitions {
		t.Errorf("drift-checked columns differ between identical runs:\n  run 1: %+v\n  run 2: %+v", a, b)
	}
}

// TestConcurrentReadOnly covers the ratio-0 row: with no writes every
// read must return the initial tree values, and the checker still gets
// a non-trivial history to verify.
func TestConcurrentReadOnly(t *testing.T) {
	res, err := RunConcurrent(ConcurrentConfig{
		Nodes:   255,
		Clients: 2,
		Rounds:  2,
		Visits:  4,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes != 0 {
		t.Errorf("read-only run recorded %d writes", res.Writes)
	}
	if res.Reads != uint64(2*2*4) {
		t.Errorf("reads = %d, want %d", res.Reads, 2*2*4)
	}
	if res.CheckedOps == 0 {
		t.Error("checker saw no operations")
	}
}

package bench

import (
	"fmt"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
)

// WarmConfig parameterizes the repeated-session workload: the same
// caller/callee pair stays alive across K sessions, each session runs one
// full remote search, and between sessions a fraction of the tree's nodes
// is mutated in the caller's heap. Session 1 is the cold start; sessions
// 2..K measure what the warm cross-session cache re-ships.
type WarmConfig struct {
	// Nodes is the complete binary tree size.
	Nodes int
	// ClosureSize is the eager-transfer budget in bytes.
	ClosureSize int
	// Sessions is K, the number of back-to-back sessions (>= 2).
	Sessions int
	// MutationRatio is the fraction of nodes whose data is rewritten in
	// the caller's heap between sessions (0.0 = pure re-read workload).
	MutationRatio float64
	// PageSize overrides the simulated page size.
	PageSize int
	// Model is the network cost model; zero value = free network (tests).
	Model netsim.Model
	// DisableWarmCache reverts to discard-on-invalidate (the ablation:
	// every session pays the full cold-start transfer again).
	DisableWarmCache bool
	// AdaptiveEagerness turns on the per-origin closure-budget controller.
	AdaptiveEagerness bool
}

func (c *WarmConfig) fill() error {
	if c.Nodes <= 0 {
		c.Nodes = 8191
	}
	if c.ClosureSize == 0 {
		c.ClosureSize = 8192
	}
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.MutationRatio < 0 || c.MutationRatio > 1 {
		return fmt.Errorf("bench: mutation ratio %v out of [0,1]", c.MutationRatio)
	}
	return nil
}

// WarmSession is the traffic attributable to one session of the repeated
// workload (all counters are per-session deltas, not cumulative).
type WarmSession struct {
	// Time is the virtual processing time of the session.
	Time time.Duration
	// Messages and Bytes are total network traffic.
	Messages, Bytes uint64
	// Crossings counts call + return messages.
	Crossings uint64
	// Callbacks counts the callee's data-request messages (fetches plus
	// batched revalidations).
	Callbacks uint64
	// Faults is the callee's access-violation count.
	Faults uint64
	// ItemBodyBytes is the session's coherency/data item-body bytes on
	// the wire, summed over both spaces: fetch-path installs (wire ==
	// body), coherency-path items (deltas at delta size), and
	// revalidation bodies (deltas at delta size, tokens at zero). This is
	// the column the warm-cache acceptance criterion is measured on.
	ItemBodyBytes uint64
	// RevalidateHits / RevalidateMisses / RevalidateBytes are the
	// session's warm-cache revalidation outcomes on the callee.
	RevalidateHits, RevalidateMisses, RevalidateBytes uint64
	// Sum is the search checksum (validates correctness per session).
	Sum int64
}

// WarmResult is the outcome of one repeated-session run.
type WarmResult struct {
	Sessions []WarmSession
}

// statsSnap captures everything RunWarmSessions differentiates.
type statsSnap struct {
	clk            time.Duration
	msgs, bytes    uint64
	crossings      uint64
	caller, callee core.Stats
}

// RunWarmSessions executes the repeated-session experiment under the
// virtual clock and returns per-session traffic. The caller's tree
// survives across sessions; the callee's cache is demoted (warm) or
// discarded (ablation) at each session end by the runtime under test.
func RunWarmSessions(cfg WarmConfig) (WarmResult, error) {
	if err := cfg.fill(); err != nil {
		return WarmResult{}, err
	}
	clock := &netsim.Clock{}
	stats := &netsim.Stats{}
	net, err := transport.NewNetwork(cfg.Model, clock, stats)
	if err != nil {
		return WarmResult{}, err
	}
	defer net.Close()
	reg := NewRegistry()

	mk := func(id uint32) (*core.Runtime, error) {
		node, err := net.Attach(id)
		if err != nil {
			return nil, err
		}
		return core.New(core.Options{
			ID:                id,
			Node:              node,
			Registry:          reg,
			Policy:            core.PolicySmart,
			ClosureSize:       cfg.ClosureSize,
			PageSize:          cfg.PageSize,
			DisableWarmCache:  cfg.DisableWarmCache,
			AdaptiveEagerness: cfg.AdaptiveEagerness,
		})
	}
	caller, err := mk(CallerID)
	if err != nil {
		return WarmResult{}, err
	}
	defer caller.Close()
	callee, err := mk(CalleeID)
	if err != nil {
		return WarmResult{}, err
	}
	defer callee.Close()
	if err := RegisterSearch(callee); err != nil {
		return WarmResult{}, err
	}

	root, err := BuildTree(caller, cfg.Nodes)
	if err != nil {
		return WarmResult{}, err
	}

	take := func() statsSnap {
		return statsSnap{
			clk:  clock.Now(),
			msgs: stats.Messages(), bytes: stats.Bytes(),
			crossings: stats.KindMessages(uint32(wire.KindCall)) +
				stats.KindMessages(uint32(wire.KindReturn)),
			caller: caller.Stats(), callee: callee.Stats(),
		}
	}

	clock.Reset()
	stats.Reset()
	var out WarmResult
	for s := 0; s < cfg.Sessions; s++ {
		if s > 0 && cfg.MutationRatio > 0 {
			if _, err := MutateTree(caller, root, cfg.MutationRatio, uint64(s)); err != nil {
				return WarmResult{}, fmt.Errorf("bench: mutate before session %d: %w", s+1, err)
			}
		}
		before := take()
		if err := caller.BeginSession(); err != nil {
			return WarmResult{}, err
		}
		res, err := caller.Call(CalleeID, SearchProc, []core.Value{
			root,
			core.Int64Value(int64(cfg.Nodes)),
			core.BoolValue(false),
		})
		if err != nil {
			return WarmResult{}, fmt.Errorf("bench: warm session %d search: %w", s+1, err)
		}
		if err := caller.EndSession(); err != nil {
			return WarmResult{}, err
		}
		after := take()

		both := func(f func(core.Stats) uint64) uint64 {
			return f(after.caller) - f(before.caller) + f(after.callee) - f(before.callee)
		}
		out.Sessions = append(out.Sessions, WarmSession{
			Time:      after.clk - before.clk,
			Messages:  after.msgs - before.msgs,
			Bytes:     after.bytes - before.bytes,
			Crossings: after.crossings - before.crossings,
			Callbacks: after.callee.FetchesSent - before.callee.FetchesSent +
				after.callee.CohRevalidateMsgs - before.callee.CohRevalidateMsgs,
			Faults: after.callee.Faults - before.callee.Faults,
			ItemBodyBytes: both(func(s core.Stats) uint64 { return s.BytesInstalled }) +
				both(func(s core.Stats) uint64 { return s.CohItemBytes }) +
				both(func(s core.Stats) uint64 { return s.CohRevalidateBytes }),
			RevalidateHits:   after.callee.CohRevalidateHits - before.callee.CohRevalidateHits,
			RevalidateMisses: after.callee.CohRevalidateMisses - before.callee.CohRevalidateMisses,
			RevalidateBytes:  after.callee.CohRevalidateBytes - before.callee.CohRevalidateBytes,
			Sum:              res[1].Int64(),
		})
	}
	return out, nil
}

// MutateTree rewrites the data field of a deterministic, salt-dependent
// subset of the tree's nodes (preorder index hashed against ratio) in
// rt's local heap, adding 1 to each selected node. It returns how many
// nodes were selected, so callers can track the expected checksum
// incrementally. No session or network traffic is involved — this models
// the origin's data evolving between RPC sessions.
func MutateTree(rt *core.Runtime, root core.Value, ratio float64, salt uint64) (int, error) {
	if ratio <= 0 {
		return 0, nil
	}
	threshold := uint64(ratio * float64(1<<32))
	idx := int64(0)
	mutated := 0
	var walk func(v core.Value) error
	walk = func(v core.Value) error {
		if v.IsNullPtr() {
			return nil
		}
		idx++
		ref, err := rt.Deref(v)
		if err != nil {
			return err
		}
		if warmMix(uint64(idx), salt)&0xFFFFFFFF < threshold {
			d, err := ref.Int("data", 0)
			if err != nil {
				return err
			}
			if err := ref.SetInt("data", 0, d+1); err != nil {
				return err
			}
			mutated++
		}
		for _, f := range []string{"left", "right"} {
			c, err := ref.Ptr(f, 0)
			if err != nil {
				return err
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return mutated, err
	}
	return mutated, nil
}

// warmMix is a splitmix64-style hash making node selection deterministic
// in (index, salt) and independent across mutation rounds.
func warmMix(x, salt uint64) uint64 {
	x ^= salt * 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

package bench

import (
	"testing"
)

// TestWarmSessionsReadOnlyShipsAlmostNothing pins the headline acceptance
// criterion: at mutation ratio 0.0, every session after the first must
// ship at least 80% fewer coherency/data item-body bytes than the cold
// start (here they ship zero — every datum revalidates with a token).
func TestWarmSessionsReadOnlyShipsAlmostNothing(t *testing.T) {
	res, err := RunWarmSessions(WarmConfig{Nodes: 1023, Sessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	s1 := res.Sessions[0]
	if s1.ItemBodyBytes == 0 {
		t.Fatal("cold session shipped no item bytes — workload broken")
	}
	want := sumFirstN(1023)
	for i, s := range res.Sessions {
		if s.Sum != want {
			t.Errorf("session %d sum = %d, want %d", i+1, s.Sum, want)
		}
		if i == 0 {
			continue
		}
		if s.ItemBodyBytes > s1.ItemBodyBytes/5 {
			t.Errorf("session %d shipped %d item bytes, want <= 20%% of cold start (%d)",
				i+1, s.ItemBodyBytes, s1.ItemBodyBytes/5)
		}
		if s.RevalidateHits == 0 {
			t.Errorf("session %d: no revalidation hits", i+1)
		}
		if s.RevalidateBytes != 0 {
			t.Errorf("session %d: %d revalidation bytes on an unmutated tree, want 0 (all tokens)",
				i+1, s.RevalidateBytes)
		}
	}
}

// TestWarmSessionsMutationShipsOnlyChanges: with a fraction of nodes
// mutated between sessions, warm sessions must revalidate with a mix of
// tokens and misses, return the updated checksum, and still ship far
// fewer item bytes than the cold start.
func TestWarmSessionsMutationShipsOnlyChanges(t *testing.T) {
	const nodes, ratio = 1023, 0.25
	res, err := RunWarmSessions(WarmConfig{Nodes: nodes, Sessions: 3, MutationRatio: ratio})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the expected checksum by replaying the deterministic
	// mutation schedule: each selected node gains +1 per round.
	want := sumFirstN(nodes)
	threshold := uint64(ratio * float64(uint64(1)<<32))
	for i, s := range res.Sessions {
		if i > 0 {
			for idx := uint64(1); idx <= nodes; idx++ {
				if warmMix(idx, uint64(i))&0xFFFFFFFF < threshold {
					want++
				}
			}
		}
		if s.Sum != want {
			t.Fatalf("session %d sum = %d, want %d (stale data served?)", i+1, s.Sum, want)
		}
		if i == 0 {
			continue
		}
		if s.RevalidateHits == 0 || s.RevalidateMisses == 0 {
			t.Errorf("session %d: hits=%d misses=%d, want a mix at ratio %.2f",
				i+1, s.RevalidateHits, s.RevalidateMisses, ratio)
		}
		if s.ItemBodyBytes >= res.Sessions[0].ItemBodyBytes {
			t.Errorf("session %d shipped %d item bytes, not below cold start %d",
				i+1, s.ItemBodyBytes, res.Sessions[0].ItemBodyBytes)
		}
	}
}

// TestWarmSessionsAblationPaysColdStartEachTime: with the warm cache
// disabled, every session re-ships the full working set and nothing
// revalidates — the behavior the warm cache exists to remove.
func TestWarmSessionsAblationPaysColdStartEachTime(t *testing.T) {
	res, err := RunWarmSessions(WarmConfig{Nodes: 1023, Sessions: 3, DisableWarmCache: true})
	if err != nil {
		t.Fatal(err)
	}
	s1 := res.Sessions[0]
	for i, s := range res.Sessions {
		if s.RevalidateHits != 0 || s.RevalidateMisses != 0 || s.RevalidateBytes != 0 {
			t.Errorf("session %d: revalidation traffic with the warm cache disabled", i+1)
		}
		if s.ItemBodyBytes != s1.ItemBodyBytes {
			t.Errorf("session %d shipped %d item bytes, want the full cold start %d every time",
				i+1, s.ItemBodyBytes, s1.ItemBodyBytes)
		}
	}
}

// TestWarmSessionsAdaptiveStaysCorrect: the adaptive eagerness controller
// must not change results, only budgets.
func TestWarmSessionsAdaptiveStaysCorrect(t *testing.T) {
	res, err := RunWarmSessions(WarmConfig{Nodes: 1023, Sessions: 4, AdaptiveEagerness: true})
	if err != nil {
		t.Fatal(err)
	}
	want := sumFirstN(1023)
	for i, s := range res.Sessions {
		if s.Sum != want {
			t.Errorf("session %d sum = %d, want %d", i+1, s.Sum, want)
		}
	}
}

// TestMutateTreeDeterministic: the same (ratio, salt) selects the same
// node set, and the count matches the checksum replay used above.
func TestMutateTreeDeterministic(t *testing.T) {
	const nodes, ratio = 255, 0.5
	threshold := uint64(ratio * float64(uint64(1)<<32))
	wantCount := 0
	for idx := uint64(1); idx <= nodes; idx++ {
		if warmMix(idx, 1)&0xFFFFFFFF < threshold {
			wantCount++
		}
	}
	res, err := RunWarmSessions(WarmConfig{Nodes: nodes, Sessions: 2, MutationRatio: ratio})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Sessions[1].Sum-res.Sessions[0].Sum, int64(wantCount); got != want {
		t.Errorf("mutation round changed sum by %d, want %d selected nodes", got, want)
	}
}

package bench

import (
	"sort"
	"testing"
	"time"

	"smartrpc/internal/netsim"
)

// TestStreamTTFA is the tentpole acceptance check: on a transfer big
// enough to stream, the wall-clock time-to-first-access with chunked
// replies must come in under 25% of the monolithic-reply ablation's —
// the faulting access waits for chunk 0, not for the whole closure to
// be encoded, shipped, and installed. Medians over several runs damp
// scheduler noise; the expected gap is an order of magnitude, so the
// 25% bar has real margin.
func TestStreamTTFA(t *testing.T) {
	nodes := 32767
	if testing.Short() {
		nodes = 8191
	}
	median := func(chunk int) time.Duration {
		const runs = 5
		ttfas := make([]time.Duration, 0, runs)
		for i := 0; i < runs; i++ {
			res, err := RunStream(StreamConfig{Nodes: nodes, StreamChunkBytes: chunk})
			if err != nil {
				t.Fatalf("chunk %d: %v", chunk, err)
			}
			if chunk > 0 && res.Chunks == 0 {
				t.Fatalf("chunk %d: no chunk frames on the wire", chunk)
			}
			if chunk < 0 && res.Chunks != 0 {
				t.Fatalf("ablation put %d chunk frames on the wire", res.Chunks)
			}
			ttfas = append(ttfas, res.TTFA)
		}
		sort.Slice(ttfas, func(i, j int) bool { return ttfas[i] < ttfas[j] })
		return ttfas[len(ttfas)/2]
	}
	streamed := median(16 << 10)
	ablated := median(-1)
	t.Logf("ttfa streamed %v, monolithic %v", streamed, ablated)
	if streamed*4 >= ablated {
		t.Fatalf("streamed ttfa %v not under 25%% of monolithic %v", streamed, ablated)
	}
}

// TestStreamDeterministic re-runs a snapshot configuration and requires
// identical modeled outputs: the BENCH_9 stream rows depend on it.
func TestStreamDeterministic(t *testing.T) {
	cfg := StreamConfig{
		Nodes:            8191,
		StreamChunkBytes: 16 << 10,
		Model:            netsim.Ethernet10SPARC(),
	}
	first, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Fetches != 1 {
		t.Fatalf("chain did not ship on one fetch: %+v", first)
	}
	if first.Faults != 1 {
		t.Fatalf("verification walk faulted after the drain: %+v", first)
	}
	first.WallTime, first.TTFA = 0, 0 // host-dependent; the rest is modeled
	for i := 0; i < 3; i++ {
		again, err := RunStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		again.WallTime, again.TTFA = 0, 0
		if again != first {
			t.Fatalf("run %d diverged:\n  %+v\n  %+v", i+2, first, again)
		}
	}
}

// TestStreamChunkSweep checks the chunk-size knob does what it says:
// smaller chunks mean more frames, and every sweep point moves the same
// item bytes to the same checksum.
func TestStreamChunkSweep(t *testing.T) {
	var prevChunks uint64
	var prevSum int64
	for i, chunk := range []int{16 << 10, 64 << 10, 256 << 10} {
		res, err := RunStream(StreamConfig{Nodes: 8191, StreamChunkBytes: chunk})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if res.Chunks == 0 {
			t.Fatalf("chunk %d: reply did not stream", chunk)
		}
		if i > 0 {
			if res.Chunks >= prevChunks {
				t.Errorf("chunk %d produced %d frames, not fewer than %d", chunk, res.Chunks, prevChunks)
			}
			if res.Sum != prevSum {
				t.Errorf("chunk %d checksum %d, previous %d", chunk, res.Sum, prevSum)
			}
		}
		prevChunks, prevSum = res.Chunks, res.Sum
	}
}

package bench

import (
	"fmt"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
)

// This file is the streamed-transfer workload: one client faults on the
// head of a long chain whose whole closure fits the fetch budget, so a
// single FETCH pulls tens of thousands of items. With streaming the
// origin pipelines the encode as bounded KindFetchChunk frames and the
// client's faulting access unblocks as soon as chunk 0 installs; the
// ablation (DisableStreaming) makes the same access wait for the whole
// reply to be encoded, shipped, and installed. The gap between the two
// is the time-to-first-access column — the latency the paper's
// monolithic reply model charges every large transfer.
//
// After the first access the run waits for the background drain to
// finish before walking the rest of the chain: the walk then faults
// zero times, every modeled column (messages, bytes, chunk frames) is a
// pure function of the configuration, and the rows are snapshot-checked
// like any other deterministic family.

// Stream workload space IDs (distinct from the pipeline family's).
const (
	StreamServerID uint32 = 1
	StreamClientID uint32 = 200
)

// StreamConfig parameterizes one streamed-transfer run.
type StreamConfig struct {
	// Nodes is the chain length.
	Nodes int
	// ClosureSize is the eager-transfer budget in bytes; the default is
	// large (4 MiB) so the whole chain ships on the first fault.
	ClosureSize int
	// StreamChunkBytes is the origin's streaming threshold and chunk
	// size (core.Options.StreamChunkBytes); zero keeps the core default,
	// negative disables streaming (the monolithic-reply ablation).
	StreamChunkBytes int
	// PageSize overrides the simulated page size.
	PageSize int
	// Model is the network cost model; zero value = free network.
	Model netsim.Model
}

func (c *StreamConfig) fill() error {
	if c.Nodes <= 0 {
		c.Nodes = 32767
	}
	if c.ClosureSize == 0 {
		c.ClosureSize = 4 << 20
	}
	return nil
}

// StreamResult is the outcome of one streamed-transfer run.
type StreamResult struct {
	// Time is the virtual processing time; WallTime the real elapsed
	// time of the whole run (first access + drain + verification walk).
	Time     time.Duration
	WallTime time.Duration
	// TTFA is the wall-clock latency of the first faulting dereference:
	// from the access to the moment its datum is readable. This is the
	// column streaming exists to shrink.
	TTFA time.Duration
	// Messages and Bytes are total network traffic; Chunks is the
	// number of KindFetchChunk frames within Messages (0 when the reply
	// fit one frame or streaming was disabled).
	Messages, Bytes, Chunks uint64
	// Fetches counts the client's FETCH messages; Faults its access
	// violations.
	Fetches, Faults uint64
	// Sum is the chain checksum (validates every item installed).
	Sum int64
}

// RunStream executes one streamed-transfer run: the server builds the
// chain, the client times its first faulting access, waits out the
// background drain, and then walks the whole chain to verify it.
func RunStream(cfg StreamConfig) (StreamResult, error) {
	if err := cfg.fill(); err != nil {
		return StreamResult{}, err
	}
	clock := &netsim.Clock{}
	stats := &netsim.Stats{}
	net, err := transport.NewNetwork(cfg.Model, clock, stats)
	if err != nil {
		return StreamResult{}, err
	}
	defer net.Close()
	reg := NewRegistry()

	mk := func(id uint32, chunk int) (*core.Runtime, error) {
		node, err := net.Attach(id)
		if err != nil {
			return nil, err
		}
		return core.New(core.Options{
			ID:               id,
			Node:             node,
			Registry:         reg,
			Policy:           core.PolicySmart,
			ClosureSize:      cfg.ClosureSize,
			PageSize:         cfg.PageSize,
			StreamChunkBytes: chunk,
		})
	}
	server, err := mk(StreamServerID, cfg.StreamChunkBytes)
	if err != nil {
		return StreamResult{}, err
	}
	defer server.Close()
	client, err := mk(StreamClientID, 0)
	if err != nil {
		return StreamResult{}, err
	}
	defer client.Close()

	root, want, err := BuildChain(server, cfg.Nodes, 0)
	if err != nil {
		return StreamResult{}, err
	}

	// The chain is built and the runtimes idle: measurement starts here.
	clock.Reset()
	stats.Reset()
	start := time.Now()
	v, err := client.ImportPtr(root)
	if err != nil {
		return StreamResult{}, err
	}
	if err := client.BeginSession(); err != nil {
		return StreamResult{}, err
	}
	// The first dereference faults, ships the whole closure, and returns
	// as soon as the faulted datum is readable — after chunk 0 with
	// streaming, after the entire reply without.
	t0 := time.Now()
	ref, err := client.Deref(v)
	if err != nil {
		return StreamResult{}, err
	}
	first, err := ref.Int("data", 0)
	if err != nil {
		return StreamResult{}, err
	}
	ttfa := time.Since(t0)
	if first != 1 {
		return StreamResult{}, fmt.Errorf("bench: stream first access read %d, want 1", first)
	}
	// Wait out the background drain so the verification walk below finds
	// every item resident: zero further faults, deterministic traffic.
	for deadline := time.Now().Add(30 * time.Second); client.InflightFetches() > 0; {
		if time.Now().After(deadline) {
			return StreamResult{}, fmt.Errorf("bench: stream drain did not finish")
		}
		time.Sleep(100 * time.Microsecond)
	}
	var sum int64
	for !v.IsNullPtr() {
		ref, err := client.Deref(v)
		if err != nil {
			return StreamResult{}, err
		}
		d, err := ref.Int("data", 0)
		if err != nil {
			return StreamResult{}, err
		}
		sum += d
		if v, err = ref.Ptr("left", 0); err != nil {
			return StreamResult{}, err
		}
	}
	if err := client.EndSession(); err != nil {
		return StreamResult{}, err
	}
	if sum != want {
		return StreamResult{}, fmt.Errorf("bench: stream checksum %d, want %d", sum, want)
	}
	st := client.Stats()
	return StreamResult{
		Time:     clock.Now(),
		WallTime: time.Since(start),
		TTFA:     ttfa,
		Messages: stats.Messages(),
		Bytes:    stats.Bytes(),
		Chunks:   stats.KindMessages(uint32(wire.KindFetchChunk)),
		Fetches:  st.FetchesSent,
		Faults:   st.Faults,
		Sum:      sum,
	}, nil
}

package bench

import (
	"testing"
	"time"
)

// TestRecoverZeroOverheadWhenClean pins the headline acceptance
// criterion for the recovery machinery: on a fault-free network, arming
// retry budgets, replay caches, and incarnation stamping must add zero
// messages and zero bytes to the wire, and the recovery counters must
// all stay at zero.
func TestRecoverZeroOverheadWhenClean(t *testing.T) {
	off, err := RunRecover(RecoverConfig{DisableRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	on, err := RunRecover(RecoverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if on.Messages != off.Messages || on.Bytes != off.Bytes {
		t.Errorf("armed recovery changed fault-free traffic: %d msgs/%d bytes armed, %d/%d disarmed",
			on.Messages, on.Bytes, off.Messages, off.Bytes)
	}
	if on.Time != off.Time {
		t.Errorf("armed recovery changed modeled time: %v armed, %v disarmed", on.Time, off.Time)
	}
	if on.Retries != 0 || on.Replays != 0 || on.StaleDrops != 0 {
		t.Errorf("fault-free run did recovery work: %d retries, %d replays, %d stale drops",
			on.Retries, on.Replays, on.StaleDrops)
	}
	if on.Sessions != 3 || off.Sessions != 3 {
		t.Errorf("sessions = %d armed / %d disarmed, want 3", on.Sessions, off.Sessions)
	}
}

// TestRecoverCompletesUnderTransientFaults runs the mixed transient
// schedule: every session must still complete with the model-expected
// checksum (RunRecover verifies it internally), faults must actually
// have been injected, and the retry machinery must have earned its keep.
func TestRecoverCompletesUnderTransientFaults(t *testing.T) {
	res, err := RunRecover(RecoverConfig{
		MutationRatio:   0.05,
		DropPermille:    60,
		DupPermille:     60,
		CorruptPermille: 40,
		Seed:            1,
		CallTimeout:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 3 {
		t.Errorf("completed %d sessions, want 3", res.Sessions)
	}
	if res.ChaosFaults == 0 {
		t.Error("chaos transport injected no faults — schedule too quiet to test anything")
	}
	if res.Retries == 0 {
		t.Error("no retries under a faulted schedule — recovery never engaged")
	}
}

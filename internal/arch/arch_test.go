package arch

import (
	"strings"
	"testing"
)

func TestBuiltinProfilesValid(t *testing.T) {
	for _, p := range []Profile{SPARC32(), Alpha64(), M68K32()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfileProperties(t *testing.T) {
	sparc := SPARC32()
	if sparc.PointerSize != 4 || sparc.Order != BigEndian {
		t.Errorf("sparc32 = %+v", sparc)
	}
	alpha := Alpha64()
	if alpha.PointerSize != 8 || alpha.Order != LittleEndian {
		t.Errorf("alpha64 = %+v", alpha)
	}
	m68k := M68K32()
	if m68k.MaxAlign != 2 {
		t.Errorf("m68k32 MaxAlign = %d", m68k.MaxAlign)
	}
}

func TestValidateRejections(t *testing.T) {
	base := SPARC32()
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"pointer size 3", func(p *Profile) { p.PointerSize = 3 }},
		{"pointer size 16", func(p *Profile) { p.PointerSize = 16 }},
		{"zero pointer align", func(p *Profile) { p.PointerAlign = 0 }},
		{"non-pow2 pointer align", func(p *Profile) { p.PointerAlign = 3 }},
		{"zero max align", func(p *Profile) { p.MaxAlign = 0 }},
		{"non-pow2 max align", func(p *Profile) { p.MaxAlign = 6 }},
		{"bad byte order", func(p *Profile) { p.Order = ByteOrder(9) }},
	}
	for _, tc := range cases {
		p := base
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil", tc.name)
		}
	}
}

func TestByteOrderString(t *testing.T) {
	if BigEndian.String() != "big-endian" || LittleEndian.String() != "little-endian" {
		t.Error("ByteOrder.String mismatch")
	}
	if !strings.Contains(ByteOrder(42).String(), "42") {
		t.Error("unknown byte order string")
	}
}

package arch_test

import (
	"reflect"
	"testing"

	"smartrpc/internal/arch"
	"smartrpc/internal/types"
)

// The tests in this file pin the word-size, alignment, and endianness
// corner cases that make heterogeneity real: the same descriptor must
// produce a different concrete layout under each profile, with the
// pointer map the swizzler walks landing exactly where C rules put it.
// They live in the external test package because layout computation
// belongs to package types; arch only supplies the parameters.

// mixed is a descriptor chosen so every layout rule matters: a 1-byte
// field before a pointer (forces pointer-alignment padding), a pointer
// array (one PtrOffsets entry per element), a small scalar before an
// 8-byte field (forces MaxAlign-capped padding), and tail padding.
func mixed() *types.Desc {
	return &types.Desc{
		ID: 7, Name: "Mixed",
		Fields: []types.Field{
			{Name: "tag", Kind: types.Uint8},
			{Name: "next", Kind: types.Ptr, Elem: 7},
			{Name: "kids", Kind: types.Ptr, Elem: 7, Count: 2},
			{Name: "small", Kind: types.Int16},
			{Name: "wide", Kind: types.Float64},
			{Name: "flag", Kind: types.Bool},
		},
	}
}

func TestLayoutCornerCases(t *testing.T) {
	cases := []struct {
		profile    arch.Profile
		size       int
		align      int
		offsets    []int // one per field, first element
		ptrOffsets []int
	}{
		{
			// 32-bit big-endian, natural alignment: pointer fields are 4
			// bytes aligned to 4, the float64 aligns to 8.
			profile: arch.SPARC32(),
			size:    40,
			align:   8,
			offsets: []int{0, 4, 8, 16, 24, 32},
			// next at 4; kids[0] at 8, kids[1] at 12.
			ptrOffsets: []int{4, 8, 12},
		},
		{
			// 64-bit little-endian: pointers double to 8 bytes, pushing
			// every later field out and doubling the pointer-map stride.
			profile:    arch.Alpha64(),
			size:       56,
			align:      8,
			offsets:    []int{0, 8, 16, 32, 40, 48},
			ptrOffsets: []int{8, 16, 24},
		},
		{
			// 68k-style 2-byte packing: MaxAlign 2 caps every alignment, so
			// the float64 sits at an offset no natural-alignment machine
			// would ever produce and there is almost no padding.
			profile:    arch.M68K32(),
			size:       26,
			align:      2,
			offsets:    []int{0, 2, 6, 14, 16, 24},
			ptrOffsets: []int{2, 6, 10},
		},
	}
	d := mixed()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.profile.Name, func(t *testing.T) {
			l := types.LayoutOf(d, tc.profile)
			if l.Size != tc.size || l.Align != tc.align {
				t.Errorf("size/align = %d/%d, want %d/%d", l.Size, l.Align, tc.size, tc.align)
			}
			var got []int
			for _, f := range l.Fields {
				got = append(got, f.Offset)
			}
			if !reflect.DeepEqual(got, tc.offsets) {
				t.Errorf("field offsets = %v, want %v", got, tc.offsets)
			}
			if !reflect.DeepEqual(l.PtrOffsets, tc.ptrOffsets) {
				t.Errorf("pointer map = %v, want %v", l.PtrOffsets, tc.ptrOffsets)
			}
		})
	}
}

// TestLayoutWordSizeIndependentCanonical pins the property that makes
// the layouts above interoperable: the canonical (XDR) size of a type
// is the same no matter which profile each space runs, so a SPARC and
// an Alpha exchange identical wire bodies even though their in-memory
// sizes differ.
func TestLayoutWordSizeIndependentCanonical(t *testing.T) {
	d := mixed()
	want := d.CanonicalSize()
	for _, p := range []arch.Profile{arch.SPARC32(), arch.Alpha64(), arch.M68K32()} {
		l := types.LayoutOf(d, p)
		if l.Size == want {
			// Not an error — just document that any agreement is
			// coincidence, not a requirement.
			t.Logf("%s: in-memory size %d happens to equal canonical size", p.Name, l.Size)
		}
		if got := d.CanonicalSize(); got != want {
			t.Errorf("%s: canonical size %d, want %d", p.Name, got, want)
		}
	}
}

// TestLayoutPointerAlignBelowSize covers the corner where PointerAlign
// is smaller than PointerSize (legal: alignment and size are separate
// profile knobs): an 8-byte pointer aligned to 4 may straddle what a
// natural-alignment machine would consider a boundary.
func TestLayoutPointerAlignBelowSize(t *testing.T) {
	p := arch.Profile{
		Name:         "packed64",
		PointerSize:  8,
		PointerAlign: 4,
		MaxAlign:     8,
		Order:        arch.LittleEndian,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	d := &types.Desc{
		ID: 8, Name: "P",
		Fields: []types.Field{
			{Name: "b", Kind: types.Uint32},
			{Name: "p", Kind: types.Ptr, Elem: 8},
		},
	}
	l := types.LayoutOf(d, p)
	if l.Fields[1].Offset != 4 {
		t.Errorf("pointer offset = %d, want 4 (align 4 beats size 8)", l.Fields[1].Offset)
	}
	if l.Size != 12 {
		t.Errorf("size = %d, want 12", l.Size)
	}
}

// Package arch describes machine architecture profiles for the simulated
// heterogeneous environment.
//
// The paper's system preserves data types across machines with different
// word sizes, alignments, and byte orders by converting everything through
// a canonical representation (XDR). A Profile captures exactly the layout
// parameters the type database needs to compute a concrete in-memory layout
// for one machine, so two address spaces in one process can disagree about
// struct layout the same way a SPARC and a VAX would.
package arch

import "fmt"

// ByteOrder identifies the byte order of an architecture.
type ByteOrder int

// Supported byte orders.
const (
	BigEndian ByteOrder = iota + 1
	LittleEndian
)

// String returns the conventional name of the byte order.
func (o ByteOrder) String() string {
	switch o {
	case BigEndian:
		return "big-endian"
	case LittleEndian:
		return "little-endian"
	default:
		return fmt.Sprintf("ByteOrder(%d)", int(o))
	}
}

// Profile describes the layout rules of one simulated machine architecture.
// Layout computation in package types consumes a Profile; the XDR layer uses
// the canonical (big-endian) representation regardless of Profile, which is
// what makes spaces with different Profiles interoperable.
type Profile struct {
	// Name is a human-readable architecture name, e.g. "sparc32".
	Name string
	// PointerSize is the size in bytes of an ordinary (swizzled) pointer.
	PointerSize int
	// PointerAlign is the required alignment of pointer fields.
	PointerAlign int
	// MaxAlign caps the alignment of any field (like #pragma pack).
	MaxAlign int
	// Order is the in-memory byte order for scalar fields.
	Order ByteOrder
}

// Validate reports whether the profile is internally consistent.
func (p Profile) Validate() error {
	switch p.PointerSize {
	case 4, 8:
	default:
		return fmt.Errorf("arch %q: pointer size %d not in {4,8}", p.Name, p.PointerSize)
	}
	if p.PointerAlign <= 0 || p.PointerAlign&(p.PointerAlign-1) != 0 {
		return fmt.Errorf("arch %q: pointer align %d not a positive power of two", p.Name, p.PointerAlign)
	}
	if p.MaxAlign <= 0 || p.MaxAlign&(p.MaxAlign-1) != 0 {
		return fmt.Errorf("arch %q: max align %d not a positive power of two", p.Name, p.MaxAlign)
	}
	if p.Order != BigEndian && p.Order != LittleEndian {
		return fmt.Errorf("arch %q: invalid byte order %d", p.Name, int(p.Order))
	}
	return nil
}

// SPARC32 mimics the paper's Sun SPARC stations: 32-bit big-endian with
// natural alignment. This is the default profile.
func SPARC32() Profile {
	return Profile{
		Name:         "sparc32",
		PointerSize:  4,
		PointerAlign: 4,
		MaxAlign:     8,
		Order:        BigEndian,
	}
}

// Alpha64 mimics a 64-bit little-endian machine, exercising the
// heterogeneity paths (different pointer size, alignment, and byte order).
func Alpha64() Profile {
	return Profile{
		Name:         "alpha64",
		PointerSize:  8,
		PointerAlign: 8,
		MaxAlign:     8,
		Order:        LittleEndian,
	}
}

// M68K32 mimics a 32-bit big-endian machine with 2-byte alignment packing
// (as on classic 68k compilers), exercising layout disagreement beyond
// pointer size.
func M68K32() Profile {
	return Profile{
		Name:         "m68k32",
		PointerSize:  4,
		PointerAlign: 2,
		MaxAlign:     2,
		Order:        BigEndian,
	}
}

package histcheck

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"smartrpc/internal/wire"
)

// This file is the linearizability search. Linearizability is
// P-compositional: a history is linearizable over all objects iff its
// per-object projections are each linearizable (Herlihy & Wing), so the
// checker partitions by object identity and searches each partition
// independently — what makes 8-client histories check in milliseconds.
//
// Each partition is checked against a sequential register with the
// object's recorded initial value, using the Wing–Gong tree search with
// memoization on (completed-operation set, register value): at every
// step some minimal remaining operation — one invoked before the
// earliest response among remaining operations, and first in its
// client's program order — is chosen to take effect next. Reads must
// observe the register; writes set it; a maybe-write (unclean session)
// additionally branches into "never took effect". On failure the
// partition is shrunk to a 1-minimal counterexample by greedy removal.

// Result is the outcome of a history check.
type Result struct {
	Ok bool
	// Violations holds one human-readable entry per failed partition
	// (plus any read-your-own-writes violations caught at record time).
	Violations []string
	// Counterexamples holds the shrunk failing partitions, parallel to
	// the per-partition entries of Violations.
	Counterexamples [][]Op
	Partitions      int
	Ops             int
}

// Err renders the result as one error-shaped string (empty when Ok).
func (r *Result) Err() string {
	if r.Ok {
		return ""
	}
	return strings.Join(r.Violations, "\n")
}

// searchBudget caps the number of distinct (done-set, register) states
// one partition search may visit. Session-grain histories stay far
// below it; a pathological partition that exceeds the budget is treated
// as undecided and reported as passing rather than false-alarming.
const searchBudget = 5_000_000

// Check verifies that ops is linearizable against per-object sequential
// registers initialized from init (objects absent from init start at
// zero — but a read of a never-written, never-initialized value fails).
func Check(init map[wire.LongPtr]int64, ops []Op) *Result {
	parts := make(map[wire.LongPtr][]Op)
	for _, o := range ops {
		parts[o.Obj] = append(parts[o.Obj], o)
	}
	objs := make([]wire.LongPtr, 0, len(parts))
	for obj := range parts {
		objs = append(objs, obj)
	}
	slices.SortFunc(objs, func(a, b wire.LongPtr) int {
		if c := cmp.Compare(a.Space, b.Space); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Addr, b.Addr); c != 0 {
			return c
		}
		return cmp.Compare(a.Type, b.Type)
	})
	res := &Result{Ok: true, Partitions: len(parts), Ops: len(ops)}
	for _, obj := range objs {
		pops := parts[obj]
		if checkPartition(init[obj], pops) {
			continue
		}
		res.Ok = false
		minimal := shrinkPartition(init[obj], pops)
		res.Counterexamples = append(res.Counterexamples, minimal)
		res.Violations = append(res.Violations, formatCounterexample(obj, init[obj], minimal))
	}
	return res
}

type stateKey struct {
	done string
	reg  int64
}

// checkPartition reports whether one object's operations are
// linearizable against a register starting at init. Operations of one
// client must keep their slice order (program order — the recorder
// flushes each client's operations in execution order).
func checkPartition(init int64, ops []Op) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	// Per-client operation index lists, in program order.
	clientIdx := make(map[int][]int)
	var clientOrder []int
	for i, o := range ops {
		if _, ok := clientIdx[o.Client]; !ok {
			clientOrder = append(clientOrder, o.Client)
		}
		clientIdx[o.Client] = append(clientIdx[o.Client], i)
	}
	done := make([]uint64, (n+63)/64)
	// pos[k] is how many of client clientOrder[k]'s ops are done.
	pos := make([]int, len(clientOrder))
	lists := make([][]int, len(clientOrder))
	for k, cl := range clientOrder {
		lists[k] = clientIdx[cl]
	}
	memo := make(map[stateKey]bool)
	budget := searchBudget

	keyOf := func(reg int64) stateKey {
		var b strings.Builder
		b.Grow(len(done) * 8)
		for _, w := range done {
			for s := 0; s < 64; s += 8 {
				b.WriteByte(byte(w >> s))
			}
		}
		return stateKey{done: b.String(), reg: reg}
	}

	var rec func(reg int64, remaining int) bool
	rec = func(reg int64, remaining int) bool {
		if remaining == 0 {
			return true
		}
		k := keyOf(reg)
		if memo[k] {
			return false
		}
		if budget <= 0 {
			return true // undecided; do not false-alarm
		}
		budget--
		memo[k] = true
		// Minimality bound: an op may take effect next only if it was
		// invoked no later than the earliest response among remaining ops.
		minHi := int64(1<<63 - 1)
		for i := 0; i < n; i++ {
			if done[i/64]&(1<<(i%64)) == 0 && ops[i].Hi < minHi {
				minHi = ops[i].Hi
			}
		}
		for k2 := range lists {
			if pos[k2] >= len(lists[k2]) {
				continue
			}
			i := lists[k2][pos[k2]]
			op := ops[i]
			take := func(newReg int64) bool {
				done[i/64] |= 1 << (i % 64)
				pos[k2]++
				ok := rec(newReg, remaining-1)
				pos[k2]--
				done[i/64] &^= 1 << (i % 64)
				return ok
			}
			// A maybe-write may simply never have taken effect; dropping
			// it is legal regardless of real-time order.
			if op.Maybe && take(reg) {
				return true
			}
			if op.Lo > minHi {
				continue
			}
			switch op.Kind {
			case OpRead:
				if op.Value == reg && take(reg) {
					return true
				}
			case OpWrite:
				if take(op.Value) {
					return true
				}
			}
		}
		return false
	}
	return rec(init, n)
}

// shrinkPartition greedily removes operations while the remainder still
// fails, yielding a minimal counterexample: removing any single
// remaining operation (other than a write kept to explain a remaining
// read's value — dropping those would leave a terse "value from
// nowhere" report) makes the history linearizable.
func shrinkPartition(init int64, ops []Op) []Op {
	cur := slices.Clone(ops)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			if cur[i].Kind == OpWrite && explainsRead(cur, i) {
				continue
			}
			cand := slices.Concat(cur[:i], cur[i+1:])
			if !checkPartition(init, cand) {
				cur = cand
				changed = true
				i--
			}
		}
	}
	return cur
}

// explainsRead reports whether ops[i] (a write) supplies the value some
// remaining read observed.
func explainsRead(ops []Op, i int) bool {
	for j, o := range ops {
		if j != i && o.Kind == OpRead && o.Value == ops[i].Value {
			return true
		}
	}
	return false
}

func formatCounterexample(obj wire.LongPtr, init int64, ops []Op) string {
	var b strings.Builder
	fmt.Fprintf(&b, "histcheck: object %v (initial value %d): no linearization explains these %d operations:",
		obj, init, len(ops))
	for _, o := range ops {
		b.WriteString("\n  ")
		b.WriteString(o.String())
	}
	return b.String()
}

// Package histcheck records per-client operation histories for
// concurrent shared-origin sessions and checks them against a
// sequential shared-memory model with a Porcupine-style linearizability
// search (check.go).
//
// The protocol under test (§3.4 of the paper) gives a session
// snapshot-at-fetch semantics: a client reads whatever the origin had
// committed when the page was fetched (or revalidated) during its
// session, and its writes become visible to other clients when its
// end-of-session write-back is applied. Those semantics translate into
// per-operation time windows over a single logical clock:
//
//   - a read of object o returning v is linearizable anywhere in
//     [session begin, read return]: the fetch that produced v happened
//     at some point in that interval, and at that point v was the
//     origin's committed value;
//   - a write of v is linearizable in [write invocation, end-of-session
//     ack]: the value cannot reach the origin before the client issues
//     it, and the clean EndSession return guarantees the write-back was
//     applied and acknowledged;
//   - a write whose session did NOT end cleanly (EndSession failed, the
//     client aborted) is a "maybe" operation: its write-back may have
//     been applied at any later point — a delayed frame can land long
//     after the abort — or never. The checker tries both.
//
// Reads that follow the client's own write to the same object in the
// same session are served from the client's dirty cache page, not from
// anything the origin committed; they are checked directly
// (read-your-own-writes) and excluded from the global history.
//
// The recorder is glued to a runtime through the existing trace-event
// hooks: a core.Tracer forwards EvSessionBegin/EvSessionEnd to
// Client.OnSessionBegin/OnSessionEnd, which stamp the session-begin and
// end-of-session-ack times the windows above are built from. The
// package deliberately depends only on internal/wire so that
// internal/core's own tests can import it.
package histcheck

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"smartrpc/internal/wire"
)

// OpKind distinguishes the two model operations.
type OpKind uint8

const (
	OpRead OpKind = iota + 1
	OpWrite
)

func (k OpKind) String() string {
	if k == OpWrite {
		return "write"
	}
	return "read"
}

// Op is one completed operation in a history. Lo and Hi are the
// inclusive bounds (on the recorder's logical clock) within which the
// operation must take effect atomically for the history to be
// linearizable.
type Op struct {
	Client int
	Sess   int // client-local session ordinal, for reporting
	Kind   OpKind
	Obj    wire.LongPtr
	Value  int64
	Lo, Hi int64
	// Maybe marks a write from an unclean session: it may have taken
	// effect anywhere in [Lo, ∞) or not at all.
	Maybe bool
}

func (o Op) String() string {
	hi := fmt.Sprintf("%d", o.Hi)
	if o.Hi == math.MaxInt64 {
		hi = "inf"
	}
	maybe := ""
	if o.Maybe {
		maybe = " (maybe)"
	}
	return fmt.Sprintf("client %d sess %d: %s %v = %d @[%d,%s]%s",
		o.Client, o.Sess, o.Kind, o.Obj, o.Value, o.Lo, hi, maybe)
}

// Recorder accumulates a multi-client history against one shared tree.
// All methods are safe for concurrent use; each Client must be driven
// from a single goroutine (matching one runtime's session discipline).
type Recorder struct {
	clock atomic.Int64

	mu      sync.Mutex
	init    map[wire.LongPtr]int64
	ops     []Op
	viol    []string
	clients map[int]*Client
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		init:    make(map[wire.LongPtr]int64),
		clients: make(map[int]*Client),
	}
}

func (r *Recorder) now() int64 { return r.clock.Add(1) }

// Init records obj's committed value before any recorded session ran
// (the tree as built at the origin).
func (r *Recorder) Init(obj wire.LongPtr, v int64) {
	r.mu.Lock()
	r.init[obj] = v
	r.mu.Unlock()
}

// Client returns (creating on first use) the per-client recording
// handle for id.
func (r *Recorder) Client(id int) *Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.clients[id]
	if c == nil {
		c = &Client{r: r, id: id}
		r.clients[id] = c
	}
	return c
}

func (r *Recorder) violation(format string, args ...any) {
	r.mu.Lock()
	r.viol = append(r.viol, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

func (r *Recorder) flush(ops []Op) {
	r.mu.Lock()
	r.ops = append(r.ops, ops...)
	r.mu.Unlock()
}

// History snapshots the flushed operations (sessions still open are not
// included).
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Check runs the linearizability search over everything recorded so
// far, folding in any read-your-own-writes violations caught at record
// time.
func (r *Recorder) Check() *Result {
	r.mu.Lock()
	ops := make([]Op, len(r.ops))
	copy(ops, r.ops)
	init := make(map[wire.LongPtr]int64, len(r.init))
	for k, v := range r.init {
		init[k] = v
	}
	viol := make([]string, len(r.viol))
	copy(viol, r.viol)
	r.mu.Unlock()
	res := Check(init, ops)
	if len(viol) > 0 {
		res.Ok = false
		res.Violations = append(viol, res.Violations...)
	}
	return res
}

// Client records one client's sessions. Begin/OnSessionBegin/
// OnSessionEnd and the Session methods must all run on the client's own
// goroutine (trace hooks for EvSessionBegin/EvSessionEnd fire
// synchronously inside BeginSession/EndSession/AbortSession, so this
// holds naturally).
type Client struct {
	r       *Recorder
	id      int
	cur     atomic.Pointer[Session]
	sessSeq int
}

// Begin arms the client for its next session: the following
// OnSessionBegin stamps the session-begin time. Call it immediately
// before the runtime's BeginSession.
func (c *Client) Begin() *Session {
	c.sessSeq++
	s := &Session{
		c:     c,
		seq:   c.sessSeq,
		begin: -1,
		wrote: make(map[wire.LongPtr]int64),
	}
	c.cur.Store(s)
	return s
}

// OnSessionBegin stamps the armed session's begin time. Wire it to the
// runtime's EvSessionBegin trace event.
func (c *Client) OnSessionBegin() {
	if s := c.cur.Load(); s != nil && s.begin < 0 {
		s.begin = c.r.now()
	}
}

// OnSessionEnd stamps the armed session's end-of-session-ack time. Wire
// it to the runtime's EvSessionEnd trace event (EndSession traces it
// after every write-back and invalidation has been acknowledged;
// AbortSession traces it too).
func (c *Client) OnSessionEnd() {
	if s := c.cur.Load(); s != nil {
		s.endAck = c.r.now()
	}
}

// Session records the operations of one client session.
type Session struct {
	c      *Client
	seq    int
	begin  int64
	endAck int64
	ops    []Op                   // program order; write Hi patched at close
	wrote  map[wire.LongPtr]int64 // own writes, for read-your-own-writes
}

// Read runs do (the actual remote-pointer read) and records the
// returned value. A failed read records nothing.
func (s *Session) Read(obj wire.LongPtr, do func() (int64, error)) (int64, error) {
	v, err := do()
	hi := s.c.r.now()
	if err != nil {
		return v, err
	}
	if s.begin < 0 {
		s.c.r.violation("client %d sess %d: read of %v before OnSessionBegin stamped the session (tracer not wired?)",
			s.c.id, s.seq, obj)
		return v, nil
	}
	if wv, ok := s.wrote[obj]; ok {
		// Served from the client's own dirty page: check directly,
		// keep it out of the global history.
		if wv != v {
			s.c.r.violation("client %d sess %d: read own write of %v: got %d, wrote %d",
				s.c.id, s.seq, obj, v, wv)
		}
		return v, nil
	}
	s.ops = append(s.ops, Op{
		Client: s.c.id, Sess: s.seq, Kind: OpRead, Obj: obj, Value: v,
		Lo: s.begin, Hi: hi,
	})
	return v, nil
}

// Write runs do (the actual remote-pointer write of v) and records it.
// A failed do is recorded as a maybe-write: the attempt may still have
// reached the origin.
func (s *Session) Write(obj wire.LongPtr, v int64, do func() error) error {
	lo := s.c.r.now()
	err := do()
	if err != nil {
		s.ops = append(s.ops, Op{
			Client: s.c.id, Sess: s.seq, Kind: OpWrite, Obj: obj, Value: v,
			Lo: lo, Hi: math.MaxInt64, Maybe: true,
		})
		return err
	}
	s.ops = append(s.ops, Op{
		Client: s.c.id, Sess: s.seq, Kind: OpWrite, Obj: obj, Value: v,
		Lo: lo, Hi: -1, // patched at Commit/Abandon
	})
	s.wrote[obj] = v
	return nil
}

// Commit closes a session whose EndSession returned cleanly: writes
// became durable no later than the end-of-session ack.
func (s *Session) Commit() {
	end := s.endAck
	if end == 0 {
		end = s.c.r.now()
	}
	for i := range s.ops {
		if s.ops[i].Kind == OpWrite && s.ops[i].Hi < 0 {
			s.ops[i].Hi = end
		}
	}
	s.close()
}

// Abandon closes a session that did not end cleanly (EndSession failed
// and the client aborted): every write becomes a maybe-operation, reads
// remain real observations.
func (s *Session) Abandon() {
	for i := range s.ops {
		if s.ops[i].Kind == OpWrite {
			s.ops[i].Hi = math.MaxInt64
			s.ops[i].Maybe = true
		}
	}
	s.close()
}

func (s *Session) close() {
	s.c.cur.CompareAndSwap(s, nil)
	s.c.r.flush(s.ops)
	s.ops = nil
}

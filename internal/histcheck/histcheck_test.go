package histcheck

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
)

func obj(n uint32) wire.LongPtr {
	return wire.LongPtr{Space: 1, Addr: vmem.VAddr(0x100 * n), Type: 1}
}

func read(client, sess int, o wire.LongPtr, v, lo, hi int64) Op {
	return Op{Client: client, Sess: sess, Kind: OpRead, Obj: o, Value: v, Lo: lo, Hi: hi}
}

func write(client, sess int, o wire.LongPtr, v, lo, hi int64) Op {
	return Op{Client: client, Sess: sess, Kind: OpWrite, Obj: o, Value: v, Lo: lo, Hi: hi}
}

func maybeWrite(client, sess int, o wire.LongPtr, v, lo int64) Op {
	return Op{Client: client, Sess: sess, Kind: OpWrite, Obj: o, Value: v,
		Lo: lo, Hi: math.MaxInt64, Maybe: true}
}

func TestSequentialHistoryLinearizable(t *testing.T) {
	x := obj(1)
	init := map[wire.LongPtr]int64{x: 5}
	ops := []Op{
		read(1, 1, x, 5, 1, 10),
		write(1, 1, x, 7, 11, 20),
		read(2, 1, x, 7, 21, 30),
		write(2, 1, x, 9, 31, 40),
		read(1, 2, x, 9, 41, 50),
	}
	res := Check(init, ops)
	if !res.Ok {
		t.Fatalf("sequential history rejected:\n%s", res.Err())
	}
}

// A session-grain stale read inside an overlapping session is legal:
// the reader's window reaches back to its session begin, before the
// writer's commit.
func TestOverlappingSessionStaleReadLegal(t *testing.T) {
	x := obj(1)
	init := map[wire.LongPtr]int64{x: 5}
	ops := []Op{
		// Client 2 commits 7 at t=20.
		write(2, 1, x, 7, 10, 20),
		// Client 1's session began at t=2; a read returning at t=30 may
		// still observe the snapshot fetched before the commit.
		read(1, 1, x, 5, 2, 30),
		// And a different client whose session began after the commit
		// must see the new value.
		read(3, 1, x, 7, 25, 40),
	}
	if res := Check(init, ops); !res.Ok {
		t.Fatalf("legal session-grain staleness rejected:\n%s", res.Err())
	}
}

// A read that starts strictly after a committed write's ack and still
// observes the old value is the real coherency violation.
func TestStaleReadAfterCommitCaught(t *testing.T) {
	x := obj(1)
	init := map[wire.LongPtr]int64{x: 5}
	ops := []Op{
		write(2, 1, x, 7, 10, 20),
		read(1, 2, x, 5, 25, 30), // session began at 25 > ack 20
	}
	res := Check(init, ops)
	if res.Ok {
		t.Fatal("stale read after commit not caught")
	}
	if len(res.Counterexamples) != 1 {
		t.Fatalf("got %d counterexamples, want 1", len(res.Counterexamples))
	}
	cex := res.Counterexamples[0]
	if len(cex) != 2 {
		t.Fatalf("counterexample not shrunk to the 2 essential ops:\n%s", res.Err())
	}
	// 1-minimality: removing either remaining op must make it pass.
	for i := range cex {
		rest := append(append([]Op{}, cex[:i]...), cex[i+1:]...)
		if !checkPartition(init[x], rest) {
			t.Errorf("counterexample not 1-minimal: still fails without %v", cex[i])
		}
	}
}

// A maybe-write (unclean session) may have taken effect or not; the
// checker must accept histories explained by either branch, and reject
// histories explained by neither.
func TestMaybeWriteBranches(t *testing.T) {
	x := obj(1)
	init := map[wire.LongPtr]int64{x: 5}

	dropped := []Op{
		maybeWrite(1, 1, x, 7, 10),
		read(2, 1, x, 5, 30, 40), // old value: write never landed
	}
	if res := Check(init, dropped); !res.Ok {
		t.Fatalf("maybe-write drop branch rejected:\n%s", res.Err())
	}

	applied := []Op{
		maybeWrite(1, 1, x, 7, 10),
		read(2, 1, x, 7, 30, 40), // new value: delayed write-back landed
	}
	if res := Check(init, applied); !res.Ok {
		t.Fatalf("maybe-write apply branch rejected:\n%s", res.Err())
	}

	// Seen applied by an early reader, then unseen by a later one:
	// neither branch explains it (a register cannot revert).
	neither := []Op{
		maybeWrite(1, 1, x, 7, 10),
		read(2, 1, x, 7, 20, 25),
		read(2, 2, x, 5, 30, 40),
	}
	if res := Check(init, neither); res.Ok {
		t.Fatal("reverting maybe-write accepted")
	}
}

// Operations of one client must linearize in program order even when
// their recorded windows overlap completely.
func TestClientProgramOrderEnforced(t *testing.T) {
	x := obj(1)
	init := map[wire.LongPtr]int64{x: 0}
	ops := []Op{
		write(1, 1, x, 1, 1, 100),
		write(1, 1, x, 2, 2, 100),
		// Client 2 observes 2 then 1: only explainable by reordering
		// client 1's writes, which program order forbids.
		read(2, 1, x, 2, 3, 100),
		read(2, 1, x, 1, 4, 100),
	}
	if res := Check(init, ops); res.Ok {
		t.Fatal("program-order violation accepted")
	}
}

func TestUnknownValueCaught(t *testing.T) {
	x := obj(1)
	res := Check(nil, []Op{read(1, 1, x, 42, 1, 10)})
	if res.Ok {
		t.Fatal("read of a never-written value accepted")
	}
}

// Recorder end-to-end: sessions stamped through the trace-hook entry
// points, read-your-own-writes filtered from the global history but
// checked directly.
func TestRecorderFlow(t *testing.T) {
	r := NewRecorder()
	x := obj(1)
	r.Init(x, 5)

	c1 := r.Client(1)
	s := c1.Begin()
	c1.OnSessionBegin()
	if _, err := s.Read(x, func() (int64, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(x, 7, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	// Own-write read: filtered, not part of the global history.
	if _, err := s.Read(x, func() (int64, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	c1.OnSessionEnd()
	s.Commit()

	c2 := r.Client(2)
	s2 := c2.Begin()
	c2.OnSessionBegin()
	if _, err := s2.Read(x, func() (int64, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	c2.OnSessionEnd()
	s2.Commit()

	if got := len(r.History()); got != 3 {
		t.Fatalf("history holds %d ops, want 3 (own-write read filtered)", got)
	}
	if res := r.Check(); !res.Ok {
		t.Fatalf("clean recorded history rejected:\n%s", res.Err())
	}
}

func TestRecorderReadOwnWriteViolation(t *testing.T) {
	r := NewRecorder()
	x := obj(1)
	c := r.Client(1)
	s := c.Begin()
	c.OnSessionBegin()
	if err := s.Write(x, 7, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(x, func() (int64, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	c.OnSessionEnd()
	s.Commit()
	res := r.Check()
	if res.Ok {
		t.Fatal("read-own-write mismatch not caught")
	}
}

func TestRecorderAbandonMakesWritesMaybe(t *testing.T) {
	r := NewRecorder()
	x := obj(1)
	r.Init(x, 5)
	c := r.Client(1)
	s := c.Begin()
	c.OnSessionBegin()
	if err := s.Write(x, 7, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	c.OnSessionEnd() // AbortSession also traces EvSessionEnd
	s.Abandon()

	c2 := r.Client(2)
	s2 := c2.Begin()
	c2.OnSessionBegin()
	if _, err := s2.Read(x, func() (int64, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	c2.OnSessionEnd()
	s2.Commit()
	if res := r.Check(); !res.Ok {
		t.Fatalf("abandoned write treated as committed:\n%s", res.Err())
	}
}

func TestRecorderFailedWriteIsMaybe(t *testing.T) {
	r := NewRecorder()
	x := obj(1)
	r.Init(x, 5)
	c := r.Client(1)
	s := c.Begin()
	c.OnSessionBegin()
	wantErr := errors.New("boom")
	if err := s.Write(x, 7, func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Write did not forward the error: %v", err)
	}
	c.OnSessionEnd()
	s.Commit()
	h := r.History()
	if len(h) != 1 || !h[0].Maybe {
		t.Fatalf("failed write not recorded as maybe: %+v", h)
	}
}

// A large, genuinely overlapping multi-client history must check well
// under the 5-second acceptance bound (it should take milliseconds).
func TestCheckerPerformance(t *testing.T) {
	const (
		clients = 8
		rounds  = 60
		objects = 24
	)
	init := make(map[wire.LongPtr]int64)
	committed := make(map[wire.LongPtr]int64)
	for k := uint32(0); k < objects; k++ {
		init[obj(k)] = int64(k)
		committed[obj(k)] = int64(k)
	}
	var ops []Op
	for r := 0; r < rounds; r++ {
		base := int64(r) * 1000
		// One writer per round rotates through the objects; everyone
		// else reads — half observe the pre-round value with windows
		// spanning the write, half observe the new value late in the
		// round. All sessions overlap in time.
		wObj := obj(uint32(r % objects))
		writer := 1 + r%clients
		newV := int64(10_000 + r)
		for c := 1; c <= clients; c++ {
			sess := r + 1
			begin := base + int64(c)
			if c == writer {
				ops = append(ops, write(c, sess, wObj, newV, base+200, base+900))
				continue
			}
			// Reads of two untouched objects plus the contended one.
			for j := 0; j < 2; j++ {
				o := obj(uint32((r + c + j*7) % objects))
				if o == wObj {
					continue
				}
				ops = append(ops, read(c, sess, o, committed[o], begin, base+300+int64(c)))
			}
			if c%2 == 0 {
				ops = append(ops, read(c, sess, wObj, committed[wObj], begin, base+500+int64(c)))
			} else {
				ops = append(ops, read(c, sess, wObj, newV, begin, base+950+int64(c)))
			}
		}
		committed[wObj] = newV
	}
	start := time.Now()
	res := Check(init, ops)
	elapsed := time.Since(start)
	if !res.Ok {
		t.Fatalf("generated linearizable history rejected:\n%s", res.Err())
	}
	t.Logf("checked %d ops across %d partitions in %v", res.Ops, res.Partitions, elapsed)
	if elapsed > 5*time.Second {
		t.Fatalf("check took %v, budget is 5s", elapsed)
	}
}

// Shrinking keeps counterexamples small even when the violation is
// buried in a long healthy prefix.
func TestShrinkingBuriedViolation(t *testing.T) {
	x := obj(1)
	init := map[wire.LongPtr]int64{x: 0}
	var ops []Op
	v := int64(0)
	tns := int64(1)
	for i := 0; i < 40; i++ {
		c := 1 + i%4
		nv := int64(100 + i)
		ops = append(ops, write(c, i+1, x, nv, tns, tns+5))
		ops = append(ops, read(1+(i+1)%4, i+1, x, nv, tns+6, tns+9))
		v = nv
		tns += 10
	}
	_ = v
	// The violation: a fresh session reads a value 10 writes old.
	ops = append(ops, read(1, 99, x, 100+29, tns+1, tns+5))
	res := Check(init, ops)
	if res.Ok {
		t.Fatal("buried stale read not caught")
	}
	cex := res.Counterexamples[0]
	if len(cex) > 12 {
		t.Fatalf("shrunk counterexample has %d ops, want <= 12:\n%s", len(cex), res.Err())
	}
	// The write supplying the stale value must survive shrinking so the
	// report shows where the value came from.
	hasWrite := false
	for _, o := range cex {
		if o.Kind == OpWrite && o.Value == 100+29 {
			hasWrite = true
		}
	}
	if !hasWrite {
		t.Errorf("counterexample lost the write explaining the stale value:\n%s", res.Err())
	}
	t.Logf("shrunk %d ops to %d", len(ops), len(cex))
}

func TestResultErrFormat(t *testing.T) {
	x := obj(1)
	res := Check(map[wire.LongPtr]int64{x: 5}, []Op{
		write(2, 1, x, 7, 10, 20),
		read(1, 2, x, 5, 25, 30),
	})
	if res.Ok {
		t.Fatal("expected failure")
	}
	msg := res.Err()
	for _, want := range []string{"histcheck:", "initial value 5", "client 2", "write", "read"} {
		if !strings.Contains(msg, want) {
			t.Errorf("counterexample report %q missing %q", msg, want)
		}
	}
}

package core

import (
	"errors"
	"fmt"
	"testing"

	"smartrpc/internal/arch"
	"smartrpc/internal/netsim"
	"smartrpc/internal/swizzle"
	"smartrpc/internal/transport"
	"smartrpc/internal/types"
)

const nodeType types.ID = 1

// newTestRegistry builds the paper's TreeNode schema.
func newTestRegistry(t testing.TB) *types.Registry {
	t.Helper()
	r := types.NewRegistry()
	r.MustRegister(&types.Desc{
		ID:   nodeType,
		Name: "TreeNode",
		Fields: []types.Field{
			{Name: "left", Kind: types.Ptr, Elem: nodeType},
			{Name: "right", Kind: types.Ptr, Elem: nodeType},
			{Name: "data", Kind: types.Int64},
		},
	})
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	return r
}

// pair builds two connected runtimes (caller=1, callee=2) with the given
// option mutations applied to both.
func pair(t testing.TB, mut func(id uint32, o *Options)) (*Runtime, *Runtime) {
	t.Helper()
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	mk := func(id uint32) *Runtime {
		node, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		o := Options{ID: id, Node: node, Registry: reg}
		if mut != nil {
			mut(id, &o)
		}
		rt, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		return rt
	}
	return mk(1), mk(2)
}

// buildTree creates a complete binary tree of depth levels in rt's heap,
// with node values assigned in preorder starting at 1. Returns the root.
func buildTree(t testing.TB, rt *Runtime, levels int) Value {
	t.Helper()
	counter := int64(0)
	var build func(level int) Value
	build = func(level int) Value {
		if level == 0 {
			return NullPtr(nodeType)
		}
		v, err := rt.NewObject(nodeType)
		if err != nil {
			t.Fatal(err)
		}
		counter++
		ref, err := rt.Deref(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.SetInt("data", 0, counter); err != nil {
			t.Fatal(err)
		}
		if err := ref.SetPtr("left", 0, build(level-1)); err != nil {
			t.Fatal(err)
		}
		if err := ref.SetPtr("right", 0, build(level-1)); err != nil {
			t.Fatal(err)
		}
		return v
	}
	return build(levels)
}

// sumTree walks the whole tree through the Ref API and sums the data
// fields.
func sumTree(rt *Runtime, root Value) (int64, error) {
	if root.IsNullPtr() {
		return 0, nil
	}
	ref, err := rt.Deref(root)
	if err != nil {
		return 0, err
	}
	v, err := ref.Int("data", 0)
	if err != nil {
		return 0, err
	}
	left, err := ref.Ptr("left", 0)
	if err != nil {
		return 0, err
	}
	ls, err := sumTree(rt, left)
	if err != nil {
		return 0, err
	}
	right, err := ref.Ptr("right", 0)
	if err != nil {
		return 0, err
	}
	rs, err := sumTree(rt, right)
	if err != nil {
		return 0, err
	}
	return v + ls + rs, nil
}

func registerSumProc(t testing.TB, callee *Runtime) {
	t.Helper()
	err := callee.Register("sumTree", func(ctx *Ctx, args []Value) ([]Value, error) {
		if len(args) != 1 {
			return nil, errors.New("want 1 arg")
		}
		total, err := sumTree(ctx.Runtime(), args[0])
		if err != nil {
			return nil, err
		}
		return []Value{Int64Value(total)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func sessionCall(t testing.TB, caller *Runtime, target uint32, proc string, args ...Value) []Value {
	t.Helper()
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	res, err := caller.Call(target, proc, args)
	if err != nil {
		t.Fatalf("call %s: %v", proc, err)
	}
	if err := caller.EndSession(); err != nil {
		t.Fatalf("end session: %v", err)
	}
	return res
}

func wantSum(levels int) int64 {
	n := int64(1)<<levels - 1
	return n * (n + 1) / 2
}

func TestRemoteTreeSumSmart(t *testing.T) {
	caller, callee := pair(t, nil)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 7) // 127 nodes
	res := sessionCall(t, caller, 2, "sumTree", root)
	if got := res[0].Int64(); got != wantSum(7) {
		t.Errorf("remote sum = %d, want %d", got, wantSum(7))
	}
	// The callee actually cached data and faulted at page grain.
	st := callee.Stats()
	if st.Faults == 0 || st.FetchesSent == 0 || st.ItemsInstalled == 0 {
		t.Errorf("callee stats show no caching activity: %+v", st)
	}
}

func TestRemoteTreeSumEager(t *testing.T) {
	caller, callee := pair(t, func(id uint32, o *Options) { o.Policy = PolicyEager })
	registerSumProc(t, callee)
	root := buildTree(t, caller, 6)
	res := sessionCall(t, caller, 2, "sumTree", root)
	if got := res[0].Int64(); got != wantSum(6) {
		t.Errorf("remote sum = %d, want %d", got, wantSum(6))
	}
	// Fully eager: the whole tree went with the call; no faults, no
	// fetch callbacks.
	st := callee.Stats()
	if st.FetchesSent != 0 {
		t.Errorf("eager callee sent %d fetches, want 0", st.FetchesSent)
	}
	if st.ItemsInstalled != uint64(1)<<6-1 {
		t.Errorf("eager callee installed %d items, want %d", st.ItemsInstalled, 1<<6-1)
	}
}

func TestRemoteTreeSumLazy(t *testing.T) {
	caller, callee := pair(t, func(id uint32, o *Options) { o.Policy = PolicyLazy })
	registerSumProc(t, callee)
	root := buildTree(t, caller, 5)
	res := sessionCall(t, caller, 2, "sumTree", root)
	if got := res[0].Int64(); got != wantSum(5) {
		t.Errorf("remote sum = %d, want %d", got, wantSum(5))
	}
	// Fully lazy: callbacks scale with dereferences (3 field reads per
	// node), no caching at all.
	st := callee.Stats()
	if st.ItemsInstalled != 0 {
		t.Errorf("lazy callee cached %d items", st.ItemsInstalled)
	}
	nodes := uint64(1)<<5 - 1
	if st.FetchesSent != nodes {
		t.Errorf("lazy callee sent %d callbacks, want %d (one per dereference)", st.FetchesSent, nodes)
	}
}

func TestLazyRepeatedDereferenceCallsBackEveryTime(t *testing.T) {
	caller, callee := pair(t, func(id uint32, o *Options) { o.Policy = PolicyLazy })
	err := callee.Register("touchTwice", func(ctx *Ctx, args []Value) ([]Value, error) {
		// Two dereferences of the same pointer: two callbacks, no cache.
		for i := 0; i < 2; i++ {
			ref, err := ctx.Runtime().Deref(args[0])
			if err != nil {
				return nil, err
			}
			if _, err := ref.Int("data", 0); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 1)
	sessionCall(t, caller, 2, "touchTwice", root)
	if got := callee.Stats().FetchesSent; got != 2 {
		t.Errorf("repeated dereference sent %d callbacks, want 2 (no caching)", got)
	}
}

func TestSmartCachingNoRefetch(t *testing.T) {
	caller, callee := pair(t, nil)
	err := callee.Register("touchTwice", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		for i := 0; i < 10; i++ {
			if _, err := ref.Int("data", 0); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 1)
	sessionCall(t, caller, 2, "touchTwice", root)
	if got := callee.Stats().FetchesSent; got != 1 {
		t.Errorf("10 dereferences sent %d fetches, want 1 (cached)", got)
	}
}

func TestSmartClosurePrefetchReducesFetches(t *testing.T) {
	run := func(closure int) uint64 {
		caller, callee := pair(t, func(id uint32, o *Options) { o.ClosureSize = closure })
		registerSumProc(t, callee)
		root := buildTree(t, caller, 8) // 255 nodes
		sessionCall(t, caller, 2, "sumTree", root)
		return callee.Stats().FetchesSent
	}
	small := run(64)
	big := run(16384)
	if big >= small {
		t.Errorf("closure 16384 sent %d fetches, closure 64 sent %d; bigger closure should fetch less", big, small)
	}
	if big != 1 {
		t.Errorf("closure larger than tree sent %d fetches, want 1", big)
	}
}

func TestUpdateWritesBackAtSessionEnd(t *testing.T) {
	caller, callee := pair(t, nil)
	err := callee.Register("double", func(ctx *Ctx, args []Value) ([]Value, error) {
		rt := ctx.Runtime()
		var walk func(v Value) error
		walk = func(v Value) error {
			if v.IsNullPtr() {
				return nil
			}
			ref, err := rt.Deref(v)
			if err != nil {
				return err
			}
			d, err := ref.Int("data", 0)
			if err != nil {
				return err
			}
			if err := ref.SetInt("data", 0, d*2); err != nil {
				return err
			}
			l, err := ref.Ptr("left", 0)
			if err != nil {
				return err
			}
			if err := walk(l); err != nil {
				return err
			}
			r, err := ref.Ptr("right", 0)
			if err != nil {
				return err
			}
			return walk(r)
		}
		return nil, walk(args[0])
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 5)
	sessionCall(t, caller, 2, "double", root)
	// After session end, the caller's original tree must show the
	// modifications (write-back happened).
	got, err := sumTree(caller, root)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * wantSum(5); got != want {
		t.Errorf("after remote update, local sum = %d, want %d", got, want)
	}
}

func TestCalleeSeesOwnWritesImmediately(t *testing.T) {
	caller, callee := pair(t, nil)
	err := callee.Register("writeRead", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		if err := ref.SetInt("data", 0, 4242); err != nil {
			return nil, err
		}
		v, err := ref.Int("data", 0)
		if err != nil {
			return nil, err
		}
		return []Value{Int64Value(v)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 1)
	res := sessionCall(t, caller, 2, "writeRead", root)
	if res[0].Int64() != 4242 {
		t.Errorf("callee read back %d after write, want 4242", res[0].Int64())
	}
}

func TestNestedRPCDirtyDataMigrates(t *testing.T) {
	// Three spaces: A owns a node; A calls B which modifies it, then B
	// calls C which reads it. C must see B's modification even though the
	// data's origin A has not yet been written back (§3.4's thread-C
	// scenario).
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	mk := func(id uint32) *Runtime {
		node, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(Options{ID: id, Node: node, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		return rt
	}
	a, b, c := mk(1), mk(2), mk(3)

	err = c.Register("readNode", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		v, err := ref.Int("data", 0)
		if err != nil {
			return nil, err
		}
		return []Value{Int64Value(v)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = b.Register("modifyThenForward", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		if err := ref.SetInt("data", 0, 777); err != nil {
			return nil, err
		}
		// Nested RPC to C, passing the same pointer onward.
		return ctx.Call(3, "readNode", []Value{ref.Value()})
	})
	if err != nil {
		t.Fatal(err)
	}

	root := buildTree(t, a, 1)
	res := sessionCall(t, a, 2, "modifyThenForward", root)
	if res[0].Int64() != 777 {
		t.Errorf("space C read %d, want 777 (modified data must travel with control)", res[0].Int64())
	}
	// And A's original is updated after session end.
	refA, err := a.Deref(root)
	if err != nil {
		t.Fatal(err)
	}
	v, err := refA.Int("data", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 777 {
		t.Errorf("origin value after session = %d, want 777", v)
	}
}

func TestCallbackCalleeCallsCaller(t *testing.T) {
	caller, callee := pair(t, nil)
	err := caller.Register("help", func(ctx *Ctx, args []Value) ([]Value, error) {
		return []Value{Int64Value(args[0].Int64() + 1)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = callee.Register("work", func(ctx *Ctx, args []Value) ([]Value, error) {
		// Callback into the caller.
		return ctx.Call(ctx.Caller(), "help", []Value{Int64Value(41)})
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sessionCall(t, caller, 2, "work")
	if res[0].Int64() != 42 {
		t.Errorf("callback result = %d, want 42", res[0].Int64())
	}
}

func TestSessionLifecycleErrors(t *testing.T) {
	caller, _ := pair(t, nil)
	if _, err := caller.Call(2, "x", nil); !errors.Is(err, ErrNoSession) {
		t.Errorf("call without session: %v", err)
	}
	if err := caller.EndSession(); !errors.Is(err, ErrNoSession) {
		t.Errorf("end without begin: %v", err)
	}
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if err := caller.BeginSession(); !errors.Is(err, ErrSessionBusy) {
		t.Errorf("double begin: %v", err)
	}
	if err := caller.EndSession(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownProcedure(t *testing.T) {
	caller, _ := pair(t, nil)
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	defer caller.EndSession()
	if _, err := caller.Call(2, "nope", nil); err == nil {
		t.Error("call to unknown procedure succeeded")
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	caller, callee := pair(t, nil)
	boom := errors.New("handler exploded")
	if err := callee.Register("bad", func(*Ctx, []Value) ([]Value, error) { return nil, boom }); err != nil {
		t.Fatal(err)
	}
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	defer caller.EndSession()
	_, err := caller.Call(2, "bad", nil)
	if err == nil || !contains(err.Error(), "handler exploded") {
		t.Errorf("remote error = %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && (s[:len(sub)] == sub || contains(s[1:], sub))))
}

func TestRegisterValidation(t *testing.T) {
	caller, _ := pair(t, nil)
	if err := caller.Register("", nil); err == nil {
		t.Error("empty registration accepted")
	}
	if err := caller.Register("p", func(*Ctx, []Value) ([]Value, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := caller.Register("p", func(*Ctx, []Value) ([]Value, error) { return nil, nil }); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestInvalidationClearsCalleeCache(t *testing.T) {
	caller, callee := pair(t, nil)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 4)
	sessionCall(t, caller, 2, "sumTree", root)
	// The end-of-session invalidation demotes the callee's cache: rows
	// may survive as warm stale copies, but nothing stays resident.
	if cs := callee.CacheStats(); cs.ResidentEntries != 0 || cs.ResidentBytes != 0 {
		t.Errorf("callee cache still resident after session end: %+v", cs)
	}
	if callee.Session() != 0 {
		t.Errorf("callee still in session %#x", callee.Session())
	}
	// A fresh session works end to end after invalidation.
	res := sessionCall(t, caller, 2, "sumTree", root)
	if res[0].Int64() != wantSum(4) {
		t.Errorf("second session sum = %d", res[0].Int64())
	}
}

func TestInvalidationDiscardsCacheWhenWarmDisabled(t *testing.T) {
	// With the warm cache off, session-end invalidation is the seed
	// behavior: the callee's table empties outright.
	caller, callee := pair(t, func(id uint32, o *Options) { o.DisableWarmCache = true })
	registerSumProc(t, callee)
	root := buildTree(t, caller, 4)
	sessionCall(t, caller, 2, "sumTree", root)
	if callee.Table().Len() != 0 {
		t.Errorf("callee table has %d entries after session end", callee.Table().Len())
	}
	res := sessionCall(t, caller, 2, "sumTree", root)
	if res[0].Int64() != wantSum(4) {
		t.Errorf("second session sum = %d", res[0].Int64())
	}
}

func TestScalarArgsRoundTrip(t *testing.T) {
	caller, callee := pair(t, nil)
	err := callee.Register("echo", func(ctx *Ctx, args []Value) ([]Value, error) {
		return args, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sessionCall(t, caller, 2, "echo",
		Int64Value(-5), Uint64Value(7), Float64Value(2.5), BoolValue(true))
	if res[0].Int64() != -5 || res[1].Uint64() != 7 || res[2].Float64() != 2.5 || !res[3].Bool() {
		t.Errorf("echo = %+v", res)
	}
}

func TestReturnedPointerUsableInSession(t *testing.T) {
	caller, callee := pair(t, nil)
	// The callee allocates a node in its own heap and returns a pointer:
	// the caller dereferences it transparently.
	err := callee.Register("makeNode", func(ctx *Ctx, args []Value) ([]Value, error) {
		v, err := ctx.Runtime().NewObject(nodeType)
		if err != nil {
			return nil, err
		}
		ref, err := ctx.Runtime().Deref(v)
		if err != nil {
			return nil, err
		}
		if err := ref.SetInt("data", 0, 31337); err != nil {
			return nil, err
		}
		return []Value{v}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	res, err := caller.Call(2, "makeNode", nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := caller.Deref(res[0])
	if err != nil {
		t.Fatal(err)
	}
	v, err := ref.Int("data", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 31337 {
		t.Errorf("remote node data = %d", v)
	}
	if err := caller.EndSession(); err != nil {
		t.Fatal(err)
	}
}

func TestHeterogeneousArchitectures(t *testing.T) {
	// Caller is a 32-bit big-endian SPARC; callee a 64-bit little-endian
	// machine. The tree must still sum correctly (XDR conversion + layout
	// translation).
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	nodeA, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	caller, err := New(Options{ID: 1, Node: nodeA, Registry: reg, Profile: arch.SPARC32()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = caller.Close() })
	callee, err := New(Options{ID: 2, Node: nodeB, Registry: reg, Profile: arch.Alpha64()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = callee.Close() })
	registerSumProc(t, callee)
	root := buildTree(t, caller, 6)
	res := sessionCall(t, caller, 2, "sumTree", root)
	if got := res[0].Int64(); got != wantSum(6) {
		t.Errorf("heterogeneous sum = %d, want %d", got, wantSum(6))
	}
}

func TestHeterogeneousUpdateWriteBack(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	nodeA, _ := net.Attach(1)
	nodeB, _ := net.Attach(2)
	caller, err := New(Options{ID: 1, Node: nodeA, Registry: reg, Profile: arch.M68K32()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = caller.Close() })
	callee, err := New(Options{ID: 2, Node: nodeB, Registry: reg, Profile: arch.Alpha64()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = callee.Close() })
	err = callee.Register("set", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		return nil, ref.SetInt("data", 0, -123456789)
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 1)
	sessionCall(t, caller, 2, "set", root)
	ref, err := caller.Deref(root)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ref.Int("data", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != -123456789 {
		t.Errorf("cross-architecture write-back = %d, want -123456789", v)
	}
}

func TestExtendedMallocRemote(t *testing.T) {
	caller, callee := pair(t, nil)
	// The callee creates a node in the CALLER's space (extended_malloc),
	// links it, and the caller sees it after the session.
	err := callee.Register("append", func(ctx *Ctx, args []Value) ([]Value, error) {
		rt := ctx.Runtime()
		nv, err := rt.ExtendedMalloc(ctx.Caller(), nodeType)
		if err != nil {
			return nil, err
		}
		nref, err := rt.Deref(nv)
		if err != nil {
			return nil, err
		}
		if err := nref.SetInt("data", 0, 999); err != nil {
			return nil, err
		}
		rootRef, err := rt.Deref(args[0])
		if err != nil {
			return nil, err
		}
		if err := rootRef.SetPtr("left", 0, nv); err != nil {
			return nil, err
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 1) // leaf node, no children
	sessionCall(t, caller, 2, "append", root)

	ref, err := caller.Deref(root)
	if err != nil {
		t.Fatal(err)
	}
	left, err := ref.Ptr("left", 0)
	if err != nil {
		t.Fatal(err)
	}
	if left.IsNullPtr() {
		t.Fatal("appended child missing after session")
	}
	if !caller.Space().InHeap(left.Addr) {
		t.Errorf("extended_malloc'd node at %#x not in caller's heap", uint32(left.Addr))
	}
	lref, err := caller.Deref(left)
	if err != nil {
		t.Fatal(err)
	}
	v, err := lref.Int("data", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 999 {
		t.Errorf("appended node data = %d, want 999", v)
	}
}

func TestExtendedMallocBatching(t *testing.T) {
	caller, callee := pair(t, nil)
	const n = 50
	err := callee.Register("makeMany", func(ctx *Ctx, args []Value) ([]Value, error) {
		rt := ctx.Runtime()
		prev := NullPtr(nodeType)
		for i := 0; i < n; i++ {
			v, err := rt.ExtendedMalloc(ctx.Caller(), nodeType)
			if err != nil {
				return nil, err
			}
			ref, err := rt.Deref(v)
			if err != nil {
				return nil, err
			}
			if err := ref.SetInt("data", 0, int64(i)); err != nil {
				return nil, err
			}
			if err := ref.SetPtr("left", 0, prev); err != nil {
				return nil, err
			}
			prev = v
		}
		if rt.PendingAllocOps() != n {
			return nil, fmt.Errorf("batch has %d ops mid-handler, want %d", rt.PendingAllocOps(), n)
		}
		return []Value{prev}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	res, err := caller.Call(2, "makeMany", nil)
	if err != nil {
		t.Fatal(err)
	}
	// One batched alloc message total, not n.
	if got := callee.Stats().AllocBatches; got != 1 {
		t.Errorf("alloc batches = %d, want 1 (batched per control transfer)", got)
	}
	// The list is walkable from the caller.
	count := 0
	for v := res[0]; !v.IsNullPtr(); {
		ref, err := caller.Deref(v)
		if err != nil {
			t.Fatal(err)
		}
		count++
		v, err = ref.Ptr("left", 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if count != n {
		t.Errorf("walked %d nodes, want %d", count, n)
	}
	if err := caller.EndSession(); err != nil {
		t.Fatal(err)
	}
}

func TestExtendedFreeCancelsProvisional(t *testing.T) {
	caller, callee := pair(t, nil)
	err := callee.Register("allocFree", func(ctx *Ctx, args []Value) ([]Value, error) {
		rt := ctx.Runtime()
		v, err := rt.ExtendedMalloc(ctx.Caller(), nodeType)
		if err != nil {
			return nil, err
		}
		if err := rt.ExtendedFree(v); err != nil {
			return nil, err
		}
		if rt.PendingAllocOps() != 0 {
			return nil, fmt.Errorf("batch not canceled: %d ops", rt.PendingAllocOps())
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	heapBefore := caller.Space().HeapInUse()
	sessionCall(t, caller, 2, "allocFree")
	if got := caller.Space().HeapInUse(); got != heapBefore {
		t.Errorf("caller heap grew by %d after canceled alloc", got-heapBefore)
	}
}

func TestExtendedFreeRemote(t *testing.T) {
	caller, callee := pair(t, nil)
	root := buildTree(t, caller, 1)
	err := callee.Register("freeIt", func(ctx *Ctx, args []Value) ([]Value, error) {
		return nil, ctx.Runtime().ExtendedFree(args[0])
	})
	if err != nil {
		t.Fatal(err)
	}
	heapBefore := caller.Space().HeapInUse()
	sessionCall(t, caller, 2, "freeIt", root)
	if got := caller.Space().HeapInUse(); got >= heapBefore {
		t.Errorf("caller heap %d not reduced from %d by remote free", got, heapBefore)
	}
}

func TestMixedAllocationPolicy(t *testing.T) {
	// PolicyMixed still yields correct results (it only changes page
	// grouping).
	caller, callee := pair(t, func(id uint32, o *Options) { o.AllocPolicy = swizzle.PolicyMixed })
	registerSumProc(t, callee)
	root := buildTree(t, caller, 6)
	res := sessionCall(t, caller, 2, "sumTree", root)
	if got := res[0].Int64(); got != wantSum(6) {
		t.Errorf("mixed policy sum = %d, want %d", got, wantSum(6))
	}
}

func TestDFSTraversal(t *testing.T) {
	caller, callee := pair(t, func(id uint32, o *Options) { o.Traversal = TraverseDFS })
	registerSumProc(t, callee)
	root := buildTree(t, caller, 6)
	res := sessionCall(t, caller, 2, "sumTree", root)
	if got := res[0].Int64(); got != wantSum(6) {
		t.Errorf("DFS closure sum = %d, want %d", got, wantSum(6))
	}
}

func TestWriteBackCoherenceAblation(t *testing.T) {
	caller, callee := pair(t, func(id uint32, o *Options) { o.Coherence = CoherenceWriteBack })
	err := callee.Register("bump", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		d, err := ref.Int("data", 0)
		if err != nil {
			return nil, err
		}
		return nil, ref.SetInt("data", 0, d+100)
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 1)
	sessionCall(t, caller, 2, "bump", root)
	ref, err := caller.Deref(root)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ref.Int("data", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 101 {
		t.Errorf("write-back coherence result = %d, want 101", v)
	}
	if callee.Stats().WriteBackMsgs == 0 {
		t.Error("ablation sent no write-back messages")
	}
}

func TestOptionsValidation(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	node, _ := net.Attach(9)
	reg := types.NewRegistry()
	cases := []Options{
		{},
		{ID: 1},
		{ID: 1, Node: node},
		{ID: 0x80000001, Node: node, Registry: reg},
	}
	for i, o := range cases {
		if _, err := New(o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	caller, callee := pair(t, nil)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 5)
	sessionCall(t, caller, 2, "sumTree", root)
	cs := caller.Stats()
	if cs.CallsSent != 1 {
		t.Errorf("caller CallsSent = %d", cs.CallsSent)
	}
	if cs.FetchesServed == 0 {
		t.Errorf("caller served no fetches")
	}
	ks := callee.Stats()
	if ks.CallsServed != 1 || ks.BytesInstalled == 0 {
		t.Errorf("callee stats = %+v", ks)
	}
}

func TestPageFaultOutsideSessionFails(t *testing.T) {
	caller, callee := pair(t, nil)
	var leaked Value
	err := callee.Register("leak", func(ctx *Ctx, args []Value) ([]Value, error) {
		leaked = args[0]
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 2)
	sessionCall(t, caller, 2, "leak", root)
	// After the session the remote pointer has no meaning (§3.1); use of
	// the stale Ref fails rather than returning garbage.
	if leaked.Kind != types.Ptr {
		t.Fatal("handler did not capture pointer")
	}
	ref, err := callee.Deref(leaked)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Int("data", 0); err == nil {
		t.Error("stale remote pointer dereference succeeded after session end")
	}
}

func TestConcurrentSessionRejected(t *testing.T) {
	// A third space cannot call the callee while it is in another
	// session.
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	mk := func(id uint32) *Runtime {
		node, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(Options{ID: id, Node: node, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		return rt
	}
	a, b, c := mk(1), mk(2), mk(3)
	block := make(chan struct{})
	started := make(chan struct{})
	err = b.Register("wait", func(*Ctx, []Value) ([]Value, error) {
		close(started)
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.BeginSession(); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := a.Call(2, "wait", nil)
		errCh <- err
	}()
	<-started
	if err := c.BeginSession(); err != nil {
		t.Fatal(err)
	}
	_, err = c.Call(2, "anything", nil)
	if err == nil {
		t.Error("call into busy session succeeded")
	}
	close(block)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if err := a.EndSession(); err != nil {
		t.Fatal(err)
	}
}

func TestDeepNestedChainAcrossFiveSpaces(t *testing.T) {
	// A pointer travels A→B→C→D→E through nested RPCs; every space bumps
	// the counter in place. The final value must reflect all hops and be
	// written back to A at session end.
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	const spaces = 5
	rts := make([]*Runtime, spaces)
	for i := range rts {
		node, err := net.Attach(uint32(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(Options{ID: uint32(i + 1), Node: node, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		rts[i] = rt
	}
	for i := 1; i < spaces; i++ {
		next := uint32(i + 2) // next space in the chain, or none
		last := i == spaces-1
		err := rts[i].Register("hop", func(ctx *Ctx, args []Value) ([]Value, error) {
			ref, err := ctx.Runtime().Deref(args[0])
			if err != nil {
				return nil, err
			}
			d, err := ref.Int("data", 0)
			if err != nil {
				return nil, err
			}
			if err := ref.SetInt("data", 0, d+1); err != nil {
				return nil, err
			}
			if last {
				return []Value{Int64Value(d + 1)}, nil
			}
			return ctx.Call(next, "hop", args)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	owner := rts[0]
	node, err := owner.NewObject(nodeType)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.BeginSession(); err != nil {
		t.Fatal(err)
	}
	res, err := owner.Call(2, "hop", []Value{node})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Int64() != spaces-1 {
		t.Errorf("deepest space saw %d, want %d", res[0].Int64(), spaces-1)
	}
	if err := owner.EndSession(); err != nil {
		t.Fatal(err)
	}
	ref, err := owner.Deref(node)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ref.Int("data", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != spaces-1 {
		t.Errorf("owner sees %d after session, want %d", d, spaces-1)
	}
	// The invalidation multicast reached everyone: nothing resident
	// anywhere (warm stale rows may remain for revalidation).
	for i, rt := range rts {
		if cs := rt.CacheStats(); cs.ResidentEntries != 0 {
			t.Errorf("space %d retains %d resident cache entries after session end", i+1, cs.ResidentEntries)
		}
	}
}

func TestLargeObjectSpanningManyPages(t *testing.T) {
	// An object larger than a page is fetched and written back intact.
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	reg.MustRegister(&types.Desc{
		ID:   7,
		Name: "Blob",
		Fields: []types.Field{
			{Name: "pay", Kind: types.Uint8, Count: 10000},
			{Name: "sum", Kind: types.Int64},
		},
	})
	an, _ := net.Attach(1)
	bn, _ := net.Attach(2)
	owner, err := New(Options{ID: 1, Node: an, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = owner.Close() })
	worker, err := New(Options{ID: 2, Node: bn, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = worker.Close() })
	err = worker.Register("checksum", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		var sum int64
		for i := 0; i < 10000; i++ {
			v, err := ref.Uint("pay", i)
			if err != nil {
				return nil, err
			}
			sum += int64(v)
		}
		if err := ref.SetInt("sum", 0, sum); err != nil {
			return nil, err
		}
		return []Value{Int64Value(sum)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := owner.NewObject(7)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := owner.Deref(blob)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := 0; i < 10000; i++ {
		v := uint64(i % 251)
		want += int64(v)
		if err := ref.SetUint("pay", i, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := owner.BeginSession(); err != nil {
		t.Fatal(err)
	}
	res, err := owner.Call(2, "checksum", []Value{blob})
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.EndSession(); err != nil {
		t.Fatal(err)
	}
	if res[0].Int64() != want {
		t.Errorf("remote checksum = %d, want %d", res[0].Int64(), want)
	}
	got, err := ref.Int("sum", 0)
	if err != nil || got != want {
		t.Errorf("written-back sum = %d, %v; want %d", got, err, want)
	}
}

func TestLazyWritePath(t *testing.T) {
	// Lazy mode writes: read-modify-write-back per set, including pointer
	// stores.
	caller, callee := pair(t, func(id uint32, o *Options) { o.Policy = PolicyLazy })
	err := callee.Register("rewire", func(ctx *Ctx, args []Value) ([]Value, error) {
		rt := ctx.Runtime()
		ref, err := rt.Deref(args[0])
		if err != nil {
			return nil, err
		}
		if err := ref.SetInt("data", 0, 4040); err != nil {
			return nil, err
		}
		// Point left at the second node remotely.
		if err := ref.SetPtr("left", 0, args[1]); err != nil {
			return nil, err
		}
		d, err := ref.Int("data", 0) // stale Ref copy was refreshed by the set
		if err != nil {
			return nil, err
		}
		return []Value{Int64Value(d)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	a := buildTree(t, caller, 1)
	b := buildTree(t, caller, 1)
	res := sessionCall(t, caller, 2, "rewire", a, b)
	if res[0].Int64() != 4040 {
		t.Errorf("lazy read-after-write = %d", res[0].Int64())
	}
	// Writes landed at the origin immediately (lazy has no session cache).
	ref, err := caller.Deref(a)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ref.Int("data", 0)
	if err != nil || d != 4040 {
		t.Fatalf("origin data = %d, %v", d, err)
	}
	l, err := ref.Ptr("left", 0)
	if err != nil {
		t.Fatal(err)
	}
	// In lazy mode pointer values carry the long-pointer identity.
	if l.IsNullPtr() || l.LP.Addr != b.Addr {
		t.Errorf("origin left = %+v, want node b at %#x", l, uint32(b.Addr))
	}
}

func TestFloatFieldAccessors(t *testing.T) {
	caller, callee := pair(t, nil)
	reg := caller.Registry()
	reg.MustRegister(&types.Desc{
		ID:   20,
		Name: "Point",
		Fields: []types.Field{
			{Name: "x", Kind: types.Float64},
			{Name: "y", Kind: types.Float32},
		},
	})
	err := callee.Register("swap", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		x, err := ref.Float64Field("x", 0)
		if err != nil {
			return nil, err
		}
		return nil, ref.SetFloat64Field("x", 0, -x)
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := caller.NewObject(20)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := caller.Deref(p)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Type().Name != "Point" {
		t.Errorf("Ref.Type() = %q", ref.Type().Name)
	}
	if err := ref.SetFloat64Field("x", 0, 2.75); err != nil {
		t.Fatal(err)
	}
	sessionCall(t, caller, 2, "swap", p)
	x, err := ref.Float64Field("x", 0)
	if err != nil || x != -2.75 {
		t.Errorf("x after remote swap = %v, %v", x, err)
	}
}

func TestRuntimeAccessors(t *testing.T) {
	caller, _ := pair(t, nil)
	if caller.ID() != 1 {
		t.Errorf("ID = %d", caller.ID())
	}
	if caller.Registry() == nil {
		t.Error("Registry nil")
	}
	if caller.Policy() != PolicySmart {
		t.Errorf("Policy = %v", caller.Policy())
	}
	if caller.ClosureSize() != 8192 {
		t.Errorf("ClosureSize = %d", caller.ClosureSize())
	}
	for _, p := range []Policy{PolicySmart, PolicyEager, PolicyLazy, Policy(9)} {
		if p.String() == "" {
			t.Errorf("Policy(%d).String empty", int(p))
		}
	}
}

func TestSequentialSessionsRoleSwap(t *testing.T) {
	// A grounds a session calling B; then B grounds a session calling A.
	a, b := pair(t, nil)
	registerSumProc(t, b)
	registerSumProc(t, a)
	rootA := buildTree(t, a, 4)
	res := sessionCall(t, a, 2, "sumTree", rootA)
	if res[0].Int64() != wantSum(4) {
		t.Fatalf("first session sum = %d", res[0].Int64())
	}
	rootB := buildTree(t, b, 5)
	if err := b.BeginSession(); err != nil {
		t.Fatal(err)
	}
	res, err := b.Call(1, "sumTree", []Value{rootB})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.EndSession(); err != nil {
		t.Fatal(err)
	}
	if res[0].Int64() != wantSum(5) {
		t.Errorf("role-swapped session sum = %d, want %d", res[0].Int64(), wantSum(5))
	}
}

func TestCacheStatsWorkingSet(t *testing.T) {
	caller, callee := pair(t, nil)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 6) // 63 nodes
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Call(2, "sumTree", []Value{root}); err != nil {
		t.Fatal(err)
	}
	// Mid-session: the callee's working set holds the whole tree.
	cs := callee.CacheStats()
	if cs.ResidentEntries != 63 {
		t.Errorf("resident entries = %d, want 63", cs.ResidentEntries)
	}
	if cs.ResidentBytes != 63*16 {
		t.Errorf("resident bytes = %d, want %d", cs.ResidentBytes, 63*16)
	}
	if cs.DirtyPages != 0 {
		t.Errorf("dirty pages = %d on a read-only workload", cs.DirtyPages)
	}
	if err := caller.EndSession(); err != nil {
		t.Fatal(err)
	}
	// After the session nothing is resident: the rows survive only as
	// warm stale copies awaiting revalidation.
	cs = callee.CacheStats()
	if cs.ResidentEntries != 0 || cs.ResidentBytes != 0 || cs.DirtyPages != 0 {
		t.Errorf("working set survives session end: %+v", cs)
	}
}

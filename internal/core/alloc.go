package core

import (
	"fmt"
	"sort"

	"smartrpc/internal/swizzle"
	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
)

// provisionalBase is the start of the reserved provisional address range.
// Real addresses assigned by vmem are always below it, so a provisional
// long pointer can never collide with a real one.
const provisionalBase = uint32(0xF000_0000)

// NewObject allocates a zeroed object of the given type in the local heap
// and returns a pointer value to it.
func (rt *Runtime) NewObject(ty types.ID) (Value, error) {
	rv, err := rt.res.Resolve(ty)
	if err != nil {
		return Value{}, err
	}
	layout := rv.Layout
	addr, err := rt.space.Alloc(layout.Size, layout.Align)
	if err != nil {
		return Value{}, err
	}
	if err := rt.space.Zero(addr, layout.Size); err != nil {
		return Value{}, err
	}
	return rt.PtrValueAt(addr, ty), nil
}

// ExtendedMalloc is the paper's extended_malloc(address_space_ID,
// data_type_ID) primitive (§3.5): it allocates a memory area in the
// specified address space and returns a swizzled pointer valid locally.
// The actual allocation in the origin space is batched and flushed when
// the thread of control next leaves this space.
func (rt *Runtime) ExtendedMalloc(origin uint32, ty types.ID) (Value, error) {
	if origin == rt.id {
		return rt.NewObject(ty)
	}
	rt.sessMu.Lock()
	sess := rt.sess
	rt.sessMu.Unlock()
	if sess == 0 {
		return Value{}, ErrNoSession
	}
	rv, err := rt.res.Resolve(ty)
	if err != nil {
		return Value{}, err
	}
	layout := rv.Layout

	rt.allocMu.Lock()
	rt.provCount++
	prov := wire.LongPtr{
		Space: origin,
		Addr:  vmem.VAddr(provisionalBase | rt.provCount),
		Type:  ty,
	}
	b, ok := rt.batch[origin]
	if !ok {
		b = &originBatch{}
		rt.batch[origin] = b
	}
	b.allocs = append(b.allocs, provAlloc{lp: prov})
	rt.allocMu.Unlock()

	// Swizzle into a provisional area: born resident, writable, dirty, so
	// the new data travels with the modified data set and is eventually
	// written back to its origin.
	addr, fresh, err := rt.table.SwizzleIn(prov, origin|swizzle.ProvisionalAreaFlag)
	if err != nil {
		return Value{}, err
	}
	if !fresh {
		return Value{}, fmt.Errorf("core: provisional pointer %v collided", prov)
	}
	rt.touchObject(addr)
	if err := rt.space.Zero(addr, layout.Size); err != nil {
		return Value{}, err
	}
	rt.table.MarkResident(addr)
	first := rt.space.PageOf(addr)
	last := rt.space.PageOf(addr + vmem.VAddr(layout.Size-1))
	for pn := first; pn <= last; pn++ {
		if err := rt.space.SetProt(pn, vmem.ProtReadWrite); err != nil {
			return Value{}, err
		}
		if err := rt.space.MarkDirty(pn, true); err != nil {
			return Value{}, err
		}
	}
	return Value{Kind: types.Ptr, Addr: addr, LP: prov, Elem: ty}, nil
}

// ExtendedFree is the paper's extended_free(void *p) primitive (§3.5): it
// releases the memory area referenced by p, whose original location may be
// in another address space. Remote releases are batched like allocations;
// freeing a not-yet-flushed provisional allocation simply cancels it.
func (rt *Runtime) ExtendedFree(v Value) error {
	if v.Kind != types.Ptr || v.Addr == vmem.Null {
		return fmt.Errorf("core: ExtendedFree of non-pointer or null value")
	}
	if rt.space.InHeap(v.Addr) {
		if err := rt.space.Free(v.Addr); err != nil {
			return err
		}
		rt.encInvalidate(v.Addr)
		return nil
	}
	e, ok := rt.table.LookupAddr(v.Addr)
	if !ok {
		return fmt.Errorf("core: ExtendedFree of unknown cache address %#x", uint32(v.Addr))
	}
	lp := e.LP
	// Drop the table entry first: a freed object must never be fetched,
	// shipped with the modified data set, or written back.
	if err := rt.table.Remove(v.Addr); err != nil {
		return err
	}
	rt.allocMu.Lock()
	defer rt.allocMu.Unlock()
	if uint32(lp.Addr) >= provisionalBase {
		// Still provisional: cancel the batched allocation.
		b := rt.batch[lp.Space]
		if b != nil {
			for i := range b.allocs {
				if b.allocs[i].lp == lp {
					b.allocs = append(b.allocs[:i], b.allocs[i+1:]...)
					return nil
				}
			}
		}
		return fmt.Errorf("core: provisional %v not found in batch", lp)
	}
	b, ok := rt.batch[lp.Space]
	if !ok {
		b = &originBatch{}
		rt.batch[lp.Space] = b
	}
	b.frees = append(b.frees, lp)
	return nil
}

// PendingAllocOps reports the number of batched allocation and release
// operations not yet flushed (for tests and diagnostics).
func (rt *Runtime) PendingAllocOps() int {
	rt.allocMu.Lock()
	defer rt.allocMu.Unlock()
	n := 0
	for _, b := range rt.batch {
		n += len(b.allocs) + len(b.frees)
	}
	return n
}

// flushAllocBatches sends every batched allocation/release to its origin
// space in a single message per space (§3.5), then rebinds the provisional
// long pointers to the real addresses the origins assigned. Stored
// ordinary pointers need no rewriting: only the identity maps change.
func (rt *Runtime) flushAllocBatches(sess uint64) error {
	rt.allocMu.Lock()
	batches := rt.batch
	rt.batch = make(map[uint32]*originBatch)
	rt.allocMu.Unlock()

	origins := make([]uint32, 0, len(batches))
	for o := range batches {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, origin := range origins {
		b := batches[origin]
		if len(b.allocs) == 0 && len(b.frees) == 0 {
			continue
		}
		p := wire.AllocBatchPayload{Frees: b.frees}
		for _, a := range b.allocs {
			p.Allocs = append(p.Allocs, wire.AllocReq{Token: uint64(a.lp.Addr), Type: a.lp.Type})
		}
		rt.stats.allocBatches.Add(1)
		rt.trace(Event{Kind: EvAllocFlush, Target: origin, Count: len(p.Allocs) + len(p.Frees)})
		reply, err := rt.sendAndWait(wire.Message{
			Kind:    wire.KindAllocBatch,
			Session: sess,
			To:      origin,
			Payload: p.Encode(),
		})
		if err != nil {
			return fmt.Errorf("flush alloc batch to space %d: %w", origin, err)
		}
		if reply.Err != "" {
			return fmt.Errorf("space %d rejected alloc batch: %s", origin, reply.Err)
		}
		rp, err := wire.DecodeAllocReplyPayload(reply.Payload)
		if err != nil {
			return fmt.Errorf("decode alloc reply from space %d: %w", origin, err)
		}
		if len(rp.Addrs) != len(b.allocs) {
			return fmt.Errorf("space %d returned %d addresses for %d allocations",
				origin, len(rp.Addrs), len(b.allocs))
		}
		for i, a := range b.allocs {
			real := wire.LongPtr{Space: origin, Addr: rp.Addrs[i], Type: a.lp.Type}
			evicted, err := rt.table.Rebind(a.lp, real)
			if err != nil {
				return fmt.Errorf("rebind %v -> %v: %w", a.lp, real, err)
			}
			if evicted {
				// The origin reallocated an address this cache still tracked
				// as a dead (non-resident) row; Rebind dropped the row and
				// poisoned its slot. Any later dereference through a local
				// pointer still aimed at that slot is an application-level
				// use-after-free — this event is the marker that explains
				// the poison pattern it will read.
				rt.trace(Event{Kind: EvRebindEvict, Target: origin, LP: real})
			}
		}
		if len(b.allocs) > 0 {
			// Publish all of this batch's rebindings in one copy-on-write
			// step; resolveLP readers never take allocMu.
			rt.allocMu.Lock()
			old := *rt.provMap.Load()
			next := make(map[wire.LongPtr]wire.LongPtr, len(old)+len(b.allocs))
			for k, v := range old {
				next[k] = v
			}
			for i, a := range b.allocs {
				next[a.lp] = wire.LongPtr{Space: origin, Addr: rp.Addrs[i], Type: a.lp.Type}
			}
			rt.provMap.Store(&next)
			rt.allocMu.Unlock()
		}
		// The origin has now served this session even if no call ever
		// reached it; it must be in the participant set so the
		// end-of-session invalidation tears down whatever per-session
		// state this exchange created there.
		rt.mergeParts([]uint32{origin})
	}
	return nil
}

// resolveLP maps a possibly-provisional long pointer to its real,
// origin-assigned identity. Provisional identities are a private naming
// convention between ExtendedMalloc and flushAllocBatches; they must
// never reach the wire, because the origin space has nothing mapped at a
// provisional address. The smart/eager paths are immune (they ship
// identities read from the data allocation table, which Rebind fixes
// up), but lazy mode ships Value.LP by value, so any long pointer that
// is still provisional here forces the batched allocation through now
// and translates through the recorded rebinding.
func (rt *Runtime) resolveLP(lp wire.LongPtr) (wire.LongPtr, error) {
	if uint32(lp.Addr) < provisionalBase || lp.Space == rt.id {
		return lp, nil
	}
	if real, ok := (*rt.provMap.Load())[lp]; ok {
		return real, nil
	}
	rt.sessMu.Lock()
	sess := rt.sess
	rt.sessMu.Unlock()
	if sess == 0 {
		return lp, fmt.Errorf("core: provisional pointer %v outside any session", lp)
	}
	if err := rt.flushAllocBatches(sess); err != nil {
		return lp, fmt.Errorf("resolve provisional %v: %w", lp, err)
	}
	real, ok := (*rt.provMap.Load())[lp]
	if !ok {
		// Flushing did not produce a rebinding: the provisional
		// allocation was cancelled (ExtendedFree) or belongs to another
		// runtime. Either way the pointer is dead.
		return lp, fmt.Errorf("core: provisional pointer %v has no allocation", lp)
	}
	return real, nil
}

// serveAllocBatch performs the batched allocations and releases on the
// origin space and returns the assigned addresses.
func (rt *Runtime) serveAllocBatch(m wire.Message) {
	p, err := wire.DecodeAllocBatchPayload(m.Payload)
	if err != nil {
		rt.reply(m, wire.KindAllocReply, nil, fmt.Sprintf("decode: %v", err))
		return
	}
	// Allocation and free mutate the heap region concurrently served
	// fetches encode from: take the write side of the serve lock.
	rt.serveMu.Lock()
	defer rt.serveMu.Unlock()
	var out wire.AllocReplyPayload
	for _, req := range p.Allocs {
		rv, err := rt.res.Resolve(req.Type)
		if err != nil {
			rt.reply(m, wire.KindAllocReply, nil, err.Error())
			return
		}
		layout := rv.Layout
		addr, err := rt.space.Alloc(layout.Size, layout.Align)
		if err != nil {
			rt.reply(m, wire.KindAllocReply, nil, err.Error())
			return
		}
		if err := rt.space.Zero(addr, layout.Size); err != nil {
			rt.reply(m, wire.KindAllocReply, nil, err.Error())
			return
		}
		out.Addrs = append(out.Addrs, addr)
	}
	for _, lp := range p.Frees {
		if lp.Space != rt.id {
			rt.reply(m, wire.KindAllocReply, nil, fmt.Sprintf("free of foreign datum %v", lp))
			return
		}
		if err := rt.space.Free(lp.Addr); err != nil {
			rt.reply(m, wire.KindAllocReply, nil, err.Error())
			return
		}
		rt.dropModified(lp)
		rt.encInvalidate(lp.Addr)
	}
	rt.reply(m, wire.KindAllocReply, out.Encode(), "")
}

package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
)

// pipelineNet builds a server (id 1) plus n client runtimes (ids 100+i)
// on one in-memory network and returns the network for link-delay
// control. Clients run PolicySmart with the options mutation applied.
func pipelineNet(t testing.TB, n int, mut func(o *Options)) (*transport.Network, *Runtime, []*Runtime) {
	t.Helper()
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	mk := func(id uint32, client bool) *Runtime {
		node, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		o := Options{ID: id, Node: node, Registry: reg, Policy: PolicySmart}
		if client && mut != nil {
			mut(&o)
		}
		rt, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		return rt
	}
	server := mk(1, false)
	clients := make([]*Runtime, n)
	for i := range clients {
		clients[i] = mk(100+uint32(i), true)
	}
	return net, server, clients
}

// buildChain links n nodes through their left pointers in rt's heap and
// returns the head's long pointer plus the expected data sum.
func buildChain(t testing.TB, rt *Runtime, n int, base int64) (wire.LongPtr, int64) {
	t.Helper()
	next := NullPtr(nodeType)
	var sum int64
	for i := n; i >= 1; i-- {
		v, err := rt.NewObject(nodeType)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := rt.Deref(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.SetInt("data", 0, base+int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := ref.SetPtr("left", 0, next); err != nil {
			t.Fatal(err)
		}
		sum += base + int64(i)
		next = v
	}
	return next.LP, sum
}

// chase walks a chain by dereference inside its own session.
func chase(rt *Runtime, root wire.LongPtr) (int64, error) {
	v, err := rt.ImportPtr(root)
	if err != nil {
		return 0, err
	}
	if err := rt.BeginSession(); err != nil {
		return 0, err
	}
	var sum int64
	for !v.IsNullPtr() {
		ref, err := rt.Deref(v)
		if err != nil {
			return 0, err
		}
		d, err := ref.Int("data", 0)
		if err != nil {
			return 0, err
		}
		sum += d
		if v, err = ref.Ptr("left", 0); err != nil {
			return 0, err
		}
	}
	if err := rt.EndSession(); err != nil {
		return 0, err
	}
	return sum, nil
}

// TestDemandFaultCoalescesWithPrefetch: with a real link delay widening
// the window, the application's demand fault must land while the
// speculative exchange for the same page is still in flight, and join it
// through the registry instead of re-requesting — the pf_coalesced
// counter proves the join, and the equal fetch counts on both ends prove
// no duplicate request ever went out.
func TestDemandFaultCoalescesWithPrefetch(t *testing.T) {
	net, server, clients := pipelineNet(t, 1, func(o *Options) {
		o.Prefetch = true
		o.ClosureSize = 2048
	})
	cl := clients[0]
	root, want := buildChain(t, server, 1024, 0)

	net.SetLinkDelay(2 * time.Millisecond)
	defer net.SetLinkDelay(0)
	got, err := chase(cl, root)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("chase sum = %d, want %d", got, want)
	}
	st := cl.Stats()
	if st.PfCoalesced == 0 {
		t.Errorf("no demand fault coalesced onto an in-flight prefetch: %+v", st)
	}
	if st.PfIssued == 0 {
		t.Errorf("prefetcher issued no speculative fetches: %+v", st)
	}
	if sent, served := st.FetchesSent, server.Stats().FetchesServed; sent != served {
		t.Errorf("client sent %d fetches, server served %d", sent, served)
	}
	if n := cl.InflightFetches(); n != 0 {
		t.Errorf("%d in-flight registry entries leaked after session end", n)
	}
}

// TestSyncPrefetchOnPartialDemandPage: with a closure budget smaller than
// one page of nodes, the demand-faulted page still holds non-resident
// frontier entries when its own exchange completes, so the prefetcher's
// candidate list includes the very page the demand fault is completing.
// Under SyncPrefetch the speculative completion runs inline on the demand
// goroutine — it must register its own exchange after the demand slot is
// released, not join the goroutine's own still-held in-flight entry and
// deadlock waiting on itself.
func TestSyncPrefetchOnPartialDemandPage(t *testing.T) {
	_, server, clients := pipelineNet(t, 1, func(o *Options) {
		o.Prefetch = true
		o.SyncPrefetch = true
		o.ClosureSize = 128
	})
	cl := clients[0]
	root, want := buildChain(t, server, 256, 0)

	done := make(chan struct{})
	var got int64
	var chaseErr error
	go func() {
		defer close(done)
		got, chaseErr = chase(cl, root)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("chase wedged: inline speculative completion joined its own in-flight entry")
	}
	if chaseErr != nil {
		t.Fatal(chaseErr)
	}
	if got != want {
		t.Fatalf("chase sum = %d, want %d", got, want)
	}
	if n := cl.InflightFetches(); n != 0 {
		t.Errorf("%d in-flight registry entries leaked after session end", n)
	}
}

// TestConcurrentClientFetch drives several Call-free client spaces, each
// chasing its own chain in its own session against one server — the
// server's bounded worker pool serves their FETCH streams concurrently.
// Run under -race this is the serve-pool concurrency check.
func TestConcurrentClientFetch(t *testing.T) {
	const nClients = 4
	_, server, clients := pipelineNet(t, nClients, func(o *Options) {
		o.Prefetch = true
		o.ClosureSize = 1024
	})
	roots := make([]wire.LongPtr, nClients)
	wants := make([]int64, nClients)
	for i := range clients {
		roots[i], wants[i] = buildChain(t, server, 512, int64(i)*1000)
	}

	var wg sync.WaitGroup
	errs := make([]error, nClients)
	sums := make([]int64, nClients)
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Runtime) {
			defer wg.Done()
			sums[i], errs[i] = chase(cl, roots[i])
		}(i, cl)
	}
	wg.Wait()

	var sent uint64
	for i := range clients {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if sums[i] != wants[i] {
			t.Errorf("client %d sum = %d, want %d", i, sums[i], wants[i])
		}
		if n := clients[i].InflightFetches(); n != 0 {
			t.Errorf("client %d leaked %d in-flight registry entries", i, n)
		}
		sent += clients[i].Stats().FetchesSent
	}
	if served := server.Stats().FetchesServed; served != sent {
		t.Errorf("clients sent %d fetches, server served %d", sent, served)
	}
}

// singleLockPending is the pre-sharding pending table: one mutex, one
// map. Kept here solely as the benchmark baseline for the lock-striped
// replacement.
type singleLockPending struct {
	mu sync.Mutex
	m  map[uint64]chan wire.Message
}

func (t *singleLockPending) put(seq uint64, ch chan wire.Message) {
	t.mu.Lock()
	t.m[seq] = ch
	t.mu.Unlock()
}

func (t *singleLockPending) take(seq uint64) (chan wire.Message, bool) {
	t.mu.Lock()
	ch, ok := t.m[seq]
	if ok {
		delete(t.m, seq)
	}
	t.mu.Unlock()
	return ch, ok
}

// BenchmarkPendingTable measures put/take pairs under parallel load for
// the sharded table against the single-mutex map it replaced. The
// workload mirrors sendAndWait: consecutive sequence numbers from one
// atomic counter, registered and then claimed.
func BenchmarkPendingTable(b *testing.B) {
	b.Run("sharded", func(b *testing.B) {
		tab := newPendingTable()
		var seq atomic.Uint64
		ch := make(chan wire.Message, 1)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				s := seq.Add(1)
				tab.put(s, ch)
				if _, ok := tab.take(s); !ok {
					b.Fatal("lost pending entry")
				}
			}
		})
	})
	b.Run("single-lock", func(b *testing.B) {
		tab := &singleLockPending{m: make(map[uint64]chan wire.Message)}
		var seq atomic.Uint64
		ch := make(chan wire.Message, 1)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				s := seq.Add(1)
				tab.put(s, ch)
				if _, ok := tab.take(s); !ok {
					b.Fatal("lost pending entry")
				}
			}
		})
	})
}

//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; the
// allocation-count assertions skip under it (sync.Pool and the
// instrumented allocator change per-op counts).
const raceEnabled = false

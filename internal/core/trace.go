package core

import (
	"fmt"
	"io"
	"sync"

	"smartrpc/internal/wire"
)

// EventKind enumerates traceable runtime events.
type EventKind int

// Event kinds, in rough lifecycle order.
const (
	EvSessionBegin EventKind = iota + 1
	EvSessionEnd
	EvCallSent
	EvCallServed
	EvFault
	EvFetchSent
	EvFetchServed
	EvInstall
	EvDirtyCollected
	EvWriteBackSent
	EvInvalidateSent
	EvAllocFlush
	EvChecksumReject
	EvValidateSent
	EvValidateHit
	EvValidateMiss
	EvPrefetchIssued
	EvPrefetchHit
	EvPrefetchWasted
	EvRebindEvict
	EvEncCacheHit
	EvEncCacheMiss
	EvEncCacheEvict
	EvEncCacheInvalidate
	EvChunkSent
	EvChunkRecv
	EvChunkInstall
	// Recovery events: a retried exchange (Count carries the attempt
	// ordinal), an origin replaying a cached reply to a retried request,
	// a client tripping the incarnation fence against a restarted origin,
	// and the per-origin breaker opening / half-open probing / closing.
	EvRetry
	EvReplayedReply
	EvFenceTrip
	EvBreakerOpen
	EvBreakerProbe
	EvBreakerClose
)

var eventNames = map[EventKind]string{
	EvSessionBegin: "session-begin", EvSessionEnd: "session-end",
	EvCallSent: "call-sent", EvCallServed: "call-served",
	EvFault: "fault", EvFetchSent: "fetch-sent", EvFetchServed: "fetch-served",
	EvInstall: "install", EvDirtyCollected: "dirty-collected",
	EvWriteBackSent: "write-back-sent", EvInvalidateSent: "invalidate-sent",
	EvAllocFlush: "alloc-flush", EvChecksumReject: "checksum-reject",
	EvValidateSent: "validate-sent", EvValidateHit: "validate-hit",
	EvValidateMiss:   "validate-miss",
	EvPrefetchIssued: "prefetch-issued", EvPrefetchHit: "prefetch-hit",
	EvPrefetchWasted: "prefetch-wasted", EvRebindEvict: "rebind-evict",
	EvEncCacheHit: "enc-cache-hit", EvEncCacheMiss: "enc-cache-miss",
	EvEncCacheEvict: "enc-cache-evict", EvEncCacheInvalidate: "enc-cache-invalidate",
	EvChunkSent: "chunk-sent", EvChunkRecv: "chunk-recv",
	EvChunkInstall: "chunk-install",
	EvRetry:        "retry", EvReplayedReply: "replayed-reply",
	EvFenceTrip: "fence-trip", EvBreakerOpen: "breaker-open",
	EvBreakerProbe: "breaker-probe", EvBreakerClose: "breaker-close",
}

// EventKinds returns every defined event kind, in declaration order.
// Tests iterate it so a newly added event cannot silently escape
// coverage (the history checker depends on trace fidelity).
func EventKinds() []EventKind {
	out := make([]EventKind, 0, len(eventNames))
	for k := EvSessionBegin; ; k++ {
		if _, ok := eventNames[k]; !ok {
			break
		}
		out = append(out, k)
	}
	if len(out) != len(eventNames) {
		panic("core: eventNames holds kinds outside the contiguous Ev* range")
	}
	return out
}

// String names the event kind.
func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one traced runtime occurrence. Field meaning depends on Kind:
// Target is the peer space, Proc the procedure, Page the faulting page,
// Count the item/byte count involved.
type Event struct {
	Kind   EventKind
	Space  uint32
	Target uint32
	Proc   string
	Page   uint32
	LP     wire.LongPtr
	Count  int
}

// String renders the event compactly.
func (e Event) String() string {
	switch e.Kind {
	case EvCallSent, EvCallServed:
		return fmt.Sprintf("[%d] %v %s peer=%d", e.Space, e.Kind, e.Proc, e.Target)
	case EvFault:
		return fmt.Sprintf("[%d] %v page=%d", e.Space, e.Kind, e.Page)
	case EvFetchSent, EvWriteBackSent, EvInvalidateSent, EvAllocFlush, EvValidateSent:
		return fmt.Sprintf("[%d] %v peer=%d count=%d", e.Space, e.Kind, e.Target, e.Count)
	case EvFetchServed, EvInstall, EvDirtyCollected,
		EvEncCacheHit, EvEncCacheMiss, EvEncCacheEvict:
		return fmt.Sprintf("[%d] %v count=%d", e.Space, e.Kind, e.Count)
	case EvChunkSent, EvChunkRecv, EvChunkInstall:
		// Page carries the chunk ordinal; Count the item count.
		return fmt.Sprintf("[%d] %v peer=%d chunk=%d count=%d", e.Space, e.Kind, e.Target, e.Page, e.Count)
	case EvEncCacheInvalidate:
		return fmt.Sprintf("[%d] %v page=%d", e.Space, e.Kind, e.Page)
	case EvValidateHit, EvValidateMiss, EvRebindEvict:
		return fmt.Sprintf("[%d] %v %v", e.Space, e.Kind, e.LP)
	case EvPrefetchIssued, EvPrefetchHit, EvPrefetchWasted:
		return fmt.Sprintf("[%d] %v page=%d peer=%d", e.Space, e.Kind, e.Page, e.Target)
	case EvRetry:
		// Proc carries the retried kind's name; Count the attempt ordinal.
		return fmt.Sprintf("[%d] %v %s peer=%d attempt=%d", e.Space, e.Kind, e.Proc, e.Target, e.Count)
	case EvReplayedReply:
		return fmt.Sprintf("[%d] %v peer=%d", e.Space, e.Kind, e.Target)
	case EvFenceTrip:
		// Page carries the old incarnation; Count the new one.
		return fmt.Sprintf("[%d] %v peer=%d inc=%d->%d", e.Space, e.Kind, e.Target, e.Page, e.Count)
	case EvBreakerOpen, EvBreakerProbe, EvBreakerClose:
		return fmt.Sprintf("[%d] %v peer=%d", e.Space, e.Kind, e.Target)
	default:
		return fmt.Sprintf("[%d] %v", e.Space, e.Kind)
	}
}

// Tracer receives runtime events. Implementations must be safe for
// concurrent use; Trace is called on the runtime's hot paths and should
// return quickly.
type Tracer interface {
	Trace(Event)
}

// tracerBox wraps a Tracer for atomic swapping.
type tracerBox struct {
	t Tracer
}

// trace emits an event if a tracer is configured.
func (rt *Runtime) trace(e Event) {
	box := rt.tracer.Load()
	if box == nil || box.t == nil {
		return
	}
	e.Space = rt.id
	box.t.Trace(e)
}

// SetTracer installs (or removes, with nil) the runtime's tracer.
// Typically set once right after New.
func (rt *Runtime) SetTracer(t Tracer) {
	rt.tracer.Store(&tracerBox{t: t})
}

// RecordingTracer collects events in memory (for tests and diagnostics).
type RecordingTracer struct {
	mu     sync.Mutex
	events []Event
}

var _ Tracer = (*RecordingTracer)(nil)

// Trace implements Tracer.
func (r *RecordingTracer) Trace(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Events returns a snapshot of the recorded events.
func (r *RecordingTracer) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Count returns how many events of kind k were recorded.
func (r *RecordingTracer) Count(k EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Reset discards recorded events.
func (r *RecordingTracer) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}

// WriterTracer renders each event as one line to an io.Writer.
type WriterTracer struct {
	mu sync.Mutex
	w  io.Writer
}

var _ Tracer = (*WriterTracer)(nil)

// NewWriterTracer builds a line-per-event tracer.
func NewWriterTracer(w io.Writer) *WriterTracer {
	return &WriterTracer{w: w}
}

// Trace implements Tracer.
func (t *WriterTracer) Trace(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintln(t.w, e.String())
}

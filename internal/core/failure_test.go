package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
)

// --- transport and peer failures ---

func TestCallToDetachedSpaceFails(t *testing.T) {
	caller, _ := pair(t, nil)
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	defer caller.EndSession()
	if _, err := caller.Call(99, "x", nil); err == nil {
		t.Error("call to unattached space succeeded")
	}
}

func TestCalleeClosedMidSessionUnblocksCaller(t *testing.T) {
	caller, callee := pair(t, nil)
	started := make(chan struct{})
	err := callee.Register("hang", func(*Ctx, []Value) ([]Value, error) {
		close(started)
		select {} // never returns
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := caller.Call(2, "hang", nil)
		errCh <- err
	}()
	<-started
	// Closing the caller's runtime unblocks the pending call.
	_ = caller.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("call returned nil after runtime close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call did not unblock on close")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	caller, _ := pair(t, nil)
	if err := caller.Close(); err != nil {
		t.Fatal(err)
	}
	if err := caller.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCallAfterCloseFails(t *testing.T) {
	caller, _ := pair(t, nil)
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	_ = caller.Close()
	if _, err := caller.Call(2, "x", nil); err == nil {
		t.Error("call after close succeeded")
	}
}

// sealed stamps a hand-built frame's integrity checksum, as every
// well-formed sender must.
func sealed(m wire.Message) wire.Message {
	m.Seal()
	return m
}

// rawAttach attaches a bare transport node so tests can inject malformed
// protocol messages at a runtime.
func rawAttach(t *testing.T, rtNet *transport.Network, id uint32) transport.Node {
	t.Helper()
	n, err := rtNet.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func newRuntimeOnNet(t *testing.T, rtNet *transport.Network, id uint32) *Runtime {
	t.Helper()
	node := rawAttach(t, rtNet, id)
	rt, err := New(Options{ID: id, Node: node, Registry: newTestRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

func TestMalformedCallPayloadRejected(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	rt := newRuntimeOnNet(t, net, 2)
	_ = rt
	raw := rawAttach(t, net, 7)
	err = raw.Send(sealed(wire.Message{
		Kind:    wire.KindCall,
		Session: 0x700000001,
		Seq:     1,
		To:      2,
		Proc:    "anything",
		Payload: []byte{0xde, 0xad}, // truncated garbage
	}))
	if err != nil {
		t.Fatal(err)
	}
	reply, err := raw.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != wire.KindReturn || reply.Err == "" {
		t.Errorf("malformed call reply = %+v", reply)
	}
	if !strings.Contains(reply.Err, "decode") {
		t.Errorf("error %q does not mention decode", reply.Err)
	}
}

func TestFetchForForeignDataRejected(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	_ = newRuntimeOnNet(t, net, 2)
	raw := rawAttach(t, net, 7)
	p := wire.FetchPayload{
		Wants:  []wire.LongPtr{{Space: 3, Addr: 0x1000, Type: 1}}, // not owned by 2
		Budget: 0,
	}
	if err := raw.Send(sealed(wire.Message{Kind: wire.KindFetch, Seq: 9, To: 2, Payload: p.Encode()})); err != nil {
		t.Fatal(err)
	}
	reply, err := raw.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Err == "" {
		t.Error("fetch for foreign data accepted")
	}
}

func TestFetchForBogusAddressRejected(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	_ = newRuntimeOnNet(t, net, 2)
	raw := rawAttach(t, net, 7)
	p := wire.FetchPayload{
		Wants: []wire.LongPtr{{Space: 2, Addr: 0x3333_0000, Type: 1}}, // unmapped
	}
	if err := raw.Send(sealed(wire.Message{Kind: wire.KindFetch, Seq: 9, To: 2, Payload: p.Encode()})); err != nil {
		t.Fatal(err)
	}
	reply, err := raw.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Err == "" {
		t.Error("fetch for unmapped address accepted")
	}
}

func TestWriteBackForForeignDataRejected(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	_ = newRuntimeOnNet(t, net, 2)
	raw := rawAttach(t, net, 7)
	p := wire.ItemsPayload{Items: []wire.DataItem{
		{LP: wire.LongPtr{Space: 5, Addr: 0x100, Type: 1}, Bytes: make([]byte, 32)},
	}}
	if err := raw.Send(sealed(wire.Message{Kind: wire.KindWriteBack, Seq: 3, To: 2, Payload: p.Encode()})); err != nil {
		t.Fatal(err)
	}
	reply, err := raw.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != wire.KindWriteBackAck || reply.Err == "" {
		t.Errorf("foreign write-back reply = %+v", reply)
	}
}

func TestAllocBatchFreeingForeignDataRejected(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	_ = newRuntimeOnNet(t, net, 2)
	raw := rawAttach(t, net, 7)
	p := wire.AllocBatchPayload{Frees: []wire.LongPtr{{Space: 9, Addr: 0x100, Type: 1}}}
	if err := raw.Send(sealed(wire.Message{Kind: wire.KindAllocBatch, Seq: 4, To: 2, Payload: p.Encode()})); err != nil {
		t.Fatal(err)
	}
	reply, err := raw.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Err == "" {
		t.Error("foreign free accepted")
	}
}

func TestAllocBatchUnknownTypeRejected(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	_ = newRuntimeOnNet(t, net, 2)
	raw := rawAttach(t, net, 7)
	p := wire.AllocBatchPayload{Allocs: []wire.AllocReq{{Token: 1, Type: 77}}}
	if err := raw.Send(sealed(wire.Message{Kind: wire.KindAllocBatch, Seq: 5, To: 2, Payload: p.Encode()})); err != nil {
		t.Fatal(err)
	}
	reply, err := raw.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Err == "" {
		t.Error("allocation of unknown type accepted")
	}
}

func TestInvalidateFromStrangerIsSafe(t *testing.T) {
	// An invalidate for a session a runtime never joined must not
	// disturb local heap data (only cache state, which is empty).
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	rt := newRuntimeOnNet(t, net, 2)
	v, err := rt.NewObject(nodeType)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rt.Deref(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetInt("data", 0, 77); err != nil {
		t.Fatal(err)
	}
	raw := rawAttach(t, net, 7)
	if err := raw.Send(sealed(wire.Message{Kind: wire.KindInvalidate, Seq: 8, To: 2, Payload: []byte{}})); err != nil {
		t.Fatal(err)
	}
	reply, err := raw.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != wire.KindInvalidateAck || reply.Err != "" {
		t.Errorf("invalidate reply = %+v", reply)
	}
	d, err := ref.Int("data", 0)
	if err != nil || d != 77 {
		t.Errorf("heap data after stranger invalidate = %d, %v", d, err)
	}
}

func TestCorruptedFrameRejectedByChecksum(t *testing.T) {
	// A frame whose payload was corrupted in flight fails checksum
	// verification and is answered with a typed error — the receiver
	// must never install bytes from it. The 500-seed chaos soak found
	// the original hole: a single flipped bit in a call frame's shipped
	// data installed cleanly and produced a silently wrong sum.
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	_ = newRuntimeOnNet(t, net, 2)
	raw := rawAttach(t, net, 7)
	p := wire.CallPayload{}
	m := sealed(wire.Message{
		Kind: wire.KindCall, Session: 0x700000001, Seq: 1,
		To: 2, Proc: "anything", Payload: p.Encode(),
	})
	m.Payload[0] ^= 0x04 // in-flight bit flip, after sealing
	if err := raw.Send(m); err != nil {
		t.Fatal(err)
	}
	reply, err := raw.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Kind != wire.KindReturn || !strings.Contains(reply.Err, "checksum") {
		t.Errorf("corrupted frame reply = %+v, want checksum error", reply)
	}
	// The reply itself carries a valid checksum.
	if !reply.SumOK() {
		t.Error("error reply is not sealed")
	}
}

func TestUnsolicitedReplyIgnored(t *testing.T) {
	// Replies with no matching pending request are dropped, not crashed on.
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	rt := newRuntimeOnNet(t, net, 2)
	raw := rawAttach(t, net, 7)
	if err := raw.Send(sealed(wire.Message{Kind: wire.KindReturn, Seq: 4242, To: 2, Payload: []byte{}})); err != nil {
		t.Fatal(err)
	}
	// The runtime still works afterwards.
	v, err := rt.NewObject(nodeType)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rt.Deref(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetInt("data", 0, 1); err != nil {
		t.Fatal(err)
	}
}

// --- session edge cases ---

func TestHandlerErrorStillSendsCoherentReply(t *testing.T) {
	// Even when the handler fails, the caller gets a Return and the
	// session stays usable for further calls.
	caller, callee := pair(t, nil)
	boom := errors.New("no")
	err := callee.Register("fail", func(*Ctx, []Value) ([]Value, error) { return nil, boom })
	if err != nil {
		t.Fatal(err)
	}
	registerSumProc(t, callee)
	root := buildTree(t, caller, 3)
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Call(2, "fail", nil); err == nil {
		t.Error("failed handler returned success")
	}
	res, err := caller.Call(2, "sumTree", []Value{root})
	if err != nil {
		t.Fatalf("session unusable after handler error: %v", err)
	}
	if res[0].Int64() != wantSum(3) {
		t.Errorf("sum after failure = %d", res[0].Int64())
	}
	if err := caller.EndSession(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyDataSurvivesHandlerError(t *testing.T) {
	// A handler that modifies cached data and THEN fails: the paper's
	// protocol has no transactions — the modification still propagates
	// (documented semantics, matching C behavior where the write already
	// happened).
	caller, callee := pair(t, nil)
	boom := errors.New("late failure")
	err := callee.Register("writeThenFail", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		if err := ref.SetInt("data", 0, 555); err != nil {
			return nil, err
		}
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	registerSumProc(t, callee)
	root := buildTree(t, caller, 1)
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Call(2, "writeThenFail", []Value{root}); err == nil {
		t.Error("handler error lost")
	}
	// A follow-up call observes the modification (dirty set traveled on
	// the NEXT control transfer; error returns carry no payload).
	res, err := caller.Call(2, "sumTree", []Value{root})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Int64() != 555 {
		t.Errorf("sum after failed-but-written handler = %d, want 555", res[0].Int64())
	}
	if err := caller.EndSession(); err != nil {
		t.Fatal(err)
	}
	ref, err := caller.Deref(root)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ref.Int("data", 0)
	if err != nil || d != 555 {
		t.Errorf("origin after session = %d, %v; want 555", d, err)
	}
}

func TestEndSessionOnNonGroundFails(t *testing.T) {
	caller, callee := pair(t, nil)
	done := make(chan error, 1)
	err := callee.Register("tryEnd", func(ctx *Ctx, args []Value) ([]Value, error) {
		done <- ctx.Runtime().EndSession()
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sessionCall(t, caller, 2, "tryEnd")
	if err := <-done; err == nil {
		t.Error("EndSession on non-ground runtime succeeded")
	}
}

func TestSessionReusableAfterEnd(t *testing.T) {
	caller, callee := pair(t, nil)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 4)
	for i := 0; i < 5; i++ {
		res := sessionCall(t, caller, 2, "sumTree", root)
		if res[0].Int64() != wantSum(4) {
			t.Fatalf("iteration %d sum = %d", i, res[0].Int64())
		}
	}
}

func TestExtendedMallocOutsideSessionFails(t *testing.T) {
	caller, _ := pair(t, nil)
	if _, err := caller.ExtendedMalloc(2, nodeType); !errors.Is(err, ErrNoSession) {
		t.Errorf("ExtendedMalloc outside session: %v", err)
	}
}

func TestExtendedMallocUnknownType(t *testing.T) {
	caller, _ := pair(t, nil)
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	defer caller.EndSession()
	if _, err := caller.ExtendedMalloc(2, 99); err == nil {
		t.Error("ExtendedMalloc of unknown type succeeded")
	}
}

func TestExtendedFreeInvalidValues(t *testing.T) {
	caller, _ := pair(t, nil)
	if err := caller.ExtendedFree(Int64Value(1)); err == nil {
		t.Error("ExtendedFree of scalar succeeded")
	}
	if err := caller.ExtendedFree(NullPtr(nodeType)); err == nil {
		t.Error("ExtendedFree of null succeeded")
	}
}

func TestDirtyDataSurvivesHandlerErrorThenSessionEnd(t *testing.T) {
	// Stronger variant: the session ends immediately after the failing
	// call; the error return itself must carry the modified data home.
	caller, callee := pair(t, nil)
	err := callee.Register("writeThenFail", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		if err := ref.SetInt("data", 0, 666); err != nil {
			return nil, err
		}
		return nil, errors.New("late failure")
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 1)
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Call(2, "writeThenFail", []Value{root}); err == nil {
		t.Error("handler error lost")
	}
	if err := caller.EndSession(); err != nil {
		t.Fatal(err)
	}
	ref, err := caller.Deref(root)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ref.Int("data", 0)
	if err != nil || d != 666 {
		t.Errorf("origin after error+end = %d, %v; want 666", d, err)
	}
}

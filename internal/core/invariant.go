package core

import (
	"bytes"
	"errors"
	"fmt"

	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
)

// This file implements the coherency invariant checker: executable
// statements of what the protocol promises about runtime state. The
// paper's correctness argument rests on the modified data set hopping
// with the single thread of control (§3.4) and on the data allocation
// table mirroring the protected page areas exactly (§3.2); delta
// shipping (cohstate.go) adds per-edge baseline/version lockstep on top.
// A lost, duplicated, reordered, or corrupted frame that slipped past
// the protocol's defenses would violate one of these statements long
// before it produced a visibly wrong answer, so the chaos harness
// (internal/faultsim) runs them after every boundary crossing and at
// every quiescent point.
//
// Three granularities:
//
//   - CheckLocalInvariants: one runtime, any time it is not mid-install.
//     Table↔vmem agreement, the page release rule, dirty-bit sanity, no
//     dangling swizzled pointers, modified-set ownership.
//   - CheckIdleInvariants: one runtime whose cache should be empty
//     (after EndSession, AbortSession, or a received invalidation).
//   - CheckNetworkInvariants: a whole network at a quiescent point (no
//     messages in flight): every local check, single-dirty-owner (only
//     the thread-holding space may hold unshipped modifications), and
//     pairwise delta-shipping lockstep.

// ErrInvariant is the sentinel wrapped by every invariant violation.
// Match with errors.Is.
var ErrInvariant = errors.New("core: coherency invariant violated")

func invariantErr(space uint32, format string, args ...any) error {
	return fmt.Errorf("%w: space %d: %s", ErrInvariant, space, fmt.Sprintf(format, args...))
}

// CheckLocalInvariants verifies every invariant observable from this
// runtime alone. It is safe to call whenever the runtime is not in the
// middle of installing or collecting a transfer (the protocol's single
// active thread guarantees that at boundary crossings and at quiescent
// points).
func (rt *Runtime) CheckLocalInvariants() error {
	entries := rt.table.Entries()

	// Invariant 1 — table bijection: the long-pointer and address maps
	// agree with the rows, and every row's address lies in the cache
	// region on mapped pages.
	for _, e := range entries {
		if a, ok := rt.table.LookupLP(e.LP); !ok || a != e.Addr {
			return invariantErr(rt.id, "table row %v -> %#x not found by long pointer (got %#x, %v)",
				e.LP, uint32(e.Addr), uint32(a), ok)
		}
		if row, ok := rt.table.LookupAddr(e.Addr); !ok || row.LP != e.LP {
			return invariantErr(rt.id, "table row %v at %#x not found by address", e.LP, uint32(e.Addr))
		}
		if !rt.space.InCache(e.Addr) {
			return invariantErr(rt.id, "table row %v at %#x outside the cache region", e.LP, uint32(e.Addr))
		}
		first := rt.space.PageOf(e.Addr)
		last := rt.space.PageOf(e.Addr + vmem.VAddr(e.Size-1))
		for pn := first; pn <= last; pn++ {
			if _, err := rt.space.ProtOf(pn); err != nil {
				return invariantErr(rt.id, "table row %v spans unmapped page %d: %v", e.LP, pn, err)
			}
		}
	}

	// Invariant 2 — release rule (§3.2): once a page's protection has
	// been released, every datum overlapping it must be resident;
	// otherwise a first access to the missing datum would go undetected
	// and read zeroes.
	for _, e := range entries {
		if e.Resident {
			continue
		}
		first := rt.space.PageOf(e.Addr)
		last := rt.space.PageOf(e.Addr + vmem.VAddr(e.Size-1))
		for pn := first; pn <= last; pn++ {
			prot, err := rt.space.ProtOf(pn)
			if err != nil {
				return invariantErr(rt.id, "page %d of %v: %v", pn, e.LP, err)
			}
			if prot != vmem.ProtNone {
				return invariantErr(rt.id, "page %d released (%v) with non-resident datum %v on it",
					pn, prot, e.LP)
			}
		}
	}

	// Invariant 3 — dirty-bit sanity: the dirty bit marks a page holding
	// members of the circulating modified data set, so it may coexist
	// with any protection level (read-only when a circulating item was
	// installed on an already-released page, fully protected when it
	// landed on a partially resident one). What must hold is that every
	// dirty page is a live, mapped cache page — a dirty bit on an
	// unmapped page is modification tracking that survived a teardown.
	for _, pn := range rt.space.DirtyPages() {
		if _, err := rt.space.ProtOf(pn); err != nil {
			return invariantErr(rt.id, "dirty page %d: %v", pn, err)
		}
	}

	// Invariant 4 — no dangling swizzled pointers: every pointer word
	// inside a resident cached object must be null, point into the local
	// heap, or have its own data allocation table row. A pointer word
	// satisfying none of these is an address that was never swizzled —
	// a decode applied against the wrong baseline, or corruption.
	for _, e := range entries {
		if !e.Resident {
			continue
		}
		rv, err := rt.res.Resolve(e.LP.Type)
		if err != nil {
			return invariantErr(rt.id, "table row %v has unresolvable type: %v", e.LP, err)
		}
		for _, off := range rv.Layout.PtrOffsets {
			pv, err := rt.space.ReadPtrRaw(e.Addr + vmem.VAddr(off))
			if err != nil {
				return invariantErr(rt.id, "read pointer word of %v at +%d: %v", e.LP, off, err)
			}
			if pv == vmem.Null {
				continue
			}
			if rt.space.InHeap(pv) {
				continue
			}
			if _, ok := rt.table.LookupAddr(pv); !ok {
				return invariantErr(rt.id, "datum %v holds dangling pointer %#x (no table row, not heap)",
					e.LP, uint32(pv))
			}
		}
	}

	// Invariant 5 — modified-set ownership: the session-modified set
	// holds only locally owned data (it is the origin's duty to keep
	// modifications circulating, §3.4).
	rt.modMu.Lock()
	var badMod *wire.LongPtr
modScan:
	for _, set := range rt.sessionModified {
		for lp := range set {
			if lp.Space != rt.id {
				cp := lp
				badMod = &cp
				break modScan
			}
		}
	}
	rt.modMu.Unlock()
	if badMod != nil {
		return invariantErr(rt.id, "session-modified set holds foreign datum %v", *badMod)
	}

	// Invariant 6 — encode-cache coherence: every version-current cache
	// entry must hash identically to a live re-encode of its object
	// (enccache.go). Version-stale entries are unreachable by
	// construction and skipped.
	return rt.checkEncCacheInvariant()
}

// CheckIdleInvariants verifies that this runtime's cache is fully torn
// down: no resident data allocation table rows (stale warm-cache rows
// may remain, but every page they span must still be protected and
// their bytes must agree with the recorded revalidation baseline), no
// dirty pages, no delta-shipping state, and no batched allocation work.
// This is the state every space must reach after EndSession,
// AbortSession, or a received end-of-session invalidation — whatever
// faults occurred during the session.
func (rt *Runtime) CheckIdleInvariants() error {
	if err := rt.CheckLocalInvariants(); err != nil {
		return err
	}
	// Idle cache rule: nothing resident. With the warm cache disabled the
	// table must be empty outright (the seed invariant); with it enabled,
	// demotion leaves stale rows whose pages the release rule (local
	// invariant 2) already forces to ProtNone.
	for _, e := range rt.table.Entries() {
		if e.Resident {
			return invariantErr(rt.id, "idle with resident datum %v", e.LP)
		}
		if !e.Stale {
			continue
		}
		if !rt.warmEnabled() {
			return invariantErr(rt.id, "stale datum %v with the warm cache disabled", e.LP)
		}
		// Baseline consistency — the token-safety invariant: the bytes a
		// later revalidation token would promote (the page contents, whose
		// canonical encoding the offered hash describes) must be exactly
		// what this space recorded at demotion. A divergence here means a
		// token could resurrect data older than the origin's committed
		// version.
		rv, err := rt.res.Resolve(e.LP.Type)
		if err != nil {
			return invariantErr(rt.id, "stale datum %v has unresolvable type: %v", e.LP, err)
		}
		enc, err := encodeObject(rt.space, rt.table, rt.res, rv.Desc, e.Addr)
		if err != nil {
			return invariantErr(rt.id, "re-encode stale datum %v: %v", e.LP, err)
		}
		rt.warm.mu.Lock()
		v := rt.warm.views[e.LP]
		rt.warm.mu.Unlock()
		if v == nil {
			return invariantErr(rt.id, "stale datum %v has no revalidation baseline", e.LP)
		}
		if !bytes.Equal(v.bytes, enc) {
			return invariantErr(rt.id, "stale datum %v: page bytes diverge from the revalidation baseline", e.LP)
		}
		if v.sum != wire.Sum64(v.bytes) {
			return invariantErr(rt.id, "stale datum %v: baseline hash out of date", e.LP)
		}
	}
	if !rt.warmEnabled() {
		if n := rt.table.Len(); n != 0 {
			return invariantErr(rt.id, "idle with %d data allocation table rows", n)
		}
	}
	if pages := rt.space.DirtyPages(); len(pages) != 0 {
		return invariantErr(rt.id, "idle with dirty pages %v", pages)
	}
	rt.coh.mu.Lock()
	var cohDetail string
	for peer, p := range rt.coh.peers {
		cohDetail += fmt.Sprintf(" peer %d sess %#x:%d views", peer, p.sess, len(p.views))
		for lp := range p.views {
			cohDetail += fmt.Sprintf(" %v", lp)
		}
	}
	rt.coh.mu.Unlock()
	if cohDetail != "" {
		return invariantErr(rt.id, "idle with delta-shipping state:%s", cohDetail)
	}
	if n := rt.PendingAllocOps(); n != 0 {
		return invariantErr(rt.id, "idle with %d batched allocation operations", n)
	}
	rt.modMu.Lock()
	mods := 0
	for _, set := range rt.sessionModified {
		mods += len(set)
	}
	rt.modMu.Unlock()
	if mods != 0 {
		return invariantErr(rt.id, "idle with %d session-modified entries", mods)
	}
	return nil
}

// CheckCohLockstep verifies delta-shipping baseline/version lockstep on
// the edge between two runtimes: both sides must hold identical crossing
// versions and byte-identical baselines for every datum exchanged on the
// edge. It is only meaningful at a quiescent point with no messages in
// flight on the edge; a lost frame legitimately desynchronizes the edge
// until the protocol detects it on the next crossing.
func CheckCohLockstep(a, b *Runtime) error {
	// Lock both ship states in ID order so concurrent checks of (a,b)
	// and (b,a) cannot deadlock.
	lo, hi := a, b
	if lo.id > hi.id {
		lo, hi = hi, lo
	}
	lo.coh.mu.Lock()
	defer lo.coh.mu.Unlock()
	hi.coh.mu.Lock()
	defer hi.coh.mu.Unlock()

	var av, bv map[wire.LongPtr]cohView
	ap, bp := a.coh.peers[b.id], b.coh.peers[a.id]
	if ap != nil {
		av = ap.views
	}
	if bp != nil {
		bv = bp.views
	}
	if ap != nil && bp != nil && ap.sess != bp.sess {
		return invariantErr(a.id, "edge %d<->%d: ship state session split: %#x on space %d vs %#x on space %d",
			a.id, b.id, ap.sess, a.id, bp.sess, b.id)
	}
	for lp, view := range av {
		peer, ok := bv[lp]
		if !ok {
			return invariantErr(a.id, "edge %d<->%d: datum %v has ship state only on space %d (ver %d)",
				a.id, b.id, lp, a.id, view.ver)
		}
		if view.ver != peer.ver {
			return invariantErr(a.id, "edge %d<->%d: datum %v version split: %d on space %d vs %d on space %d",
				a.id, b.id, lp, view.ver, a.id, peer.ver, b.id)
		}
		if !bytes.Equal(view.bytes, peer.bytes) {
			return invariantErr(a.id, "edge %d<->%d: datum %v baselines differ at version %d",
				a.id, b.id, lp, view.ver)
		}
	}
	for lp, view := range bv {
		if _, ok := av[lp]; !ok {
			return invariantErr(b.id, "edge %d<->%d: datum %v has ship state only on space %d (ver %d)",
				a.id, b.id, lp, b.id, view.ver)
		}
	}
	return nil
}

// CheckNetworkInvariants verifies the cross-space coherency invariants
// over a whole network at a quiescent point: the thread of control rests
// on ground (nil when no session is active) and no messages are in
// flight.
//
//   - Every runtime's local invariants hold.
//   - Single dirty owner: the modified data set travels with the thread
//     of control (§3.4), so only the ground runtime may hold dirty cache
//     pages; every other space shipped its modifications out when the
//     thread left it.
//   - Delta-shipping lockstep holds on every edge.
//   - Warm revalidation soundness: no stale warm-cache copy could be
//     token-promoted into bytes differing from its origin's current
//     committed value.
func CheckNetworkInvariants(ground *Runtime, all []*Runtime) error {
	for _, rt := range all {
		if err := rt.CheckLocalInvariants(); err != nil {
			return err
		}
		if rt != ground {
			if pages := rt.space.DirtyPages(); len(pages) != 0 {
				return invariantErr(rt.id,
					"dirty pages %v on a space not holding the thread of control", pages)
			}
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if err := CheckCohLockstep(all[i], all[j]); err != nil {
				return err
			}
		}
	}
	byID := make(map[uint32]*Runtime, len(all))
	for _, rt := range all {
		byID[rt.id] = rt
	}
	for _, rt := range all {
		for _, e := range rt.table.Entries() {
			if !e.Stale {
				continue
			}
			rt.warm.mu.Lock()
			v := rt.warm.views[e.LP]
			rt.warm.mu.Unlock()
			if v == nil {
				return invariantErr(rt.id, "stale datum %v has no revalidation baseline", e.LP)
			}
			origin := byID[e.LP.Space]
			if origin == nil {
				continue // origin outside the checked set
			}
			rv, err := origin.res.Resolve(e.LP.Type)
			if err != nil {
				continue // origin cannot serve it; revalidation will degrade
			}
			cur, err := encodeObject(origin.space, origin.table, origin.res, rv.Desc, e.LP.Addr)
			if err != nil {
				continue // freed at origin; revalidation will degrade
			}
			// The warm baseline may legitimately lag the origin (that is
			// what revalidation is for). What must NEVER hold is a token
			// match — origin's current hash equal to the offered one —
			// against differing bytes: that token would promote a copy
			// older than the origin's committed version.
			if wire.Sum64(cur) == v.sum && !bytes.Equal(cur, v.bytes) {
				return invariantErr(rt.id,
					"warm baseline for %v would token-promote bytes differing from the origin's committed value", e.LP)
			}
		}
	}
	return nil
}

package core

import (
	"fmt"
	"sync"
	"testing"

	"smartrpc/internal/wire"
)

// TestEncCacheMultiClientSharing: three clients chasing the same chain on
// one origin pay the encode cost once, not three times — the first walk
// misses per node, the other two hit per node. Invariant checking stays
// on so every serve also validates the cached sums against live
// re-encodes.
func TestEncCacheMultiClientSharing(t *testing.T) {
	_, server, clients := pipelineNet(t, 3, nil)
	const n = 64
	head, want := buildChain(t, server, n, 0)
	for i, cl := range clients {
		sum, err := chase(cl, head)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if sum != want {
			t.Fatalf("client %d sum = %d, want %d", i, sum, want)
		}
	}
	s := server.Stats()
	if s.EncCacheMisses != n {
		t.Errorf("encode-cache misses = %d, want %d (each node encoded once)", s.EncCacheMisses, n)
	}
	if s.EncCacheHits != 2*n {
		t.Errorf("encode-cache hits = %d, want %d (clients 2 and 3 all hit)", s.EncCacheHits, 2*n)
	}
	if s.EncCacheBytes == 0 {
		t.Error("encode cache resident bytes = 0 after serving")
	}
	if err := server.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEncCacheWriteBackInvalidatesConcurrently is the -race stress for
// the tentpole's safety claim: one client repeatedly modifies shared
// data and writes it back while two others fetch it. No reader may ever
// observe a value the origin never held (stale cached bytes), values are
// monotone per reader, the final read sees the last write, and the
// write-back path must have fired the proactive invalidation.
func TestEncCacheWriteBackInvalidatesConcurrently(t *testing.T) {
	_, server, clients := pipelineNet(t, 3, nil)
	head, _ := buildChain(t, server, 1, 0) // one node, data = 1
	const bumps = 20

	readVal := func(cl *Runtime) (int64, error) { return chase(cl, head) }

	errc := make(chan error, len(clients))
	done := make(chan struct{})
	var writerWg, readerWg sync.WaitGroup
	writerWg.Add(1)
	go func() { // writer: client 0
		defer writerWg.Done()
		cl := clients[0]
		for i := 0; i < bumps; i++ {
			err := func() error {
				v, err := cl.ImportPtr(head)
				if err != nil {
					return err
				}
				if err := cl.BeginSession(); err != nil {
					return err
				}
				ref, err := cl.Deref(v)
				if err != nil {
					return err
				}
				d, err := ref.Int("data", 0)
				if err != nil {
					return err
				}
				if err := ref.SetInt("data", 0, d+1); err != nil {
					return err
				}
				return cl.EndSession()
			}()
			if err != nil {
				errc <- err
				return
			}
		}
	}()
	for r := 1; r < 3; r++ {
		readerWg.Add(1)
		go func(cl *Runtime) { // readers: clients 1 and 2
			defer readerWg.Done()
			last := int64(0)
			for {
				got, err := readVal(cl)
				if err != nil {
					errc <- err
					return
				}
				if got < last || got > 1+bumps {
					errc <- fmt.Errorf("stale or impossible read: got %d after %d (max %d)",
						got, last, 1+bumps)
					return
				}
				last = got
				select {
				case <-done:
					return
				default:
				}
			}
		}(clients[r])
	}
	writerWg.Wait()
	close(done)
	readerWg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if got, err := readVal(clients[1]); err != nil || got != 1+bumps {
		t.Fatalf("final read = %d, %v; want %d", got, err, 1+bumps)
	}
	if s := server.Stats(); s.EncCacheInvalidations == 0 {
		t.Error("write-backs raced fetches but the encode cache recorded no invalidations")
	}
	if err := server.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEncCacheEviction: a cache cap far below the working set forces the
// CLOCK hand to evict, the resident-bytes gauge respects the cap, and
// the served data is still correct.
func TestEncCacheEviction(t *testing.T) {
	capBytes := 16 * 64 // 64 bytes per shard: one ~40-byte node each
	_, server, clients := pipelineNet(t, 2, nil)
	// pipelineNet fixes the server's options, so swap in the tiny cache
	// directly before anything is served.
	server.enc = newEncCache(server.space, capBytes)
	head, want := buildChain(t, server, 128, 0)
	for i, cl := range clients {
		sum, err := chase(cl, head)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if sum != want {
			t.Fatalf("client %d sum = %d, want %d", i, sum, want)
		}
	}
	s := server.Stats()
	if s.EncCacheEvictions == 0 {
		t.Error("128 nodes through a 1 KiB cache evicted nothing")
	}
	if s.EncCacheBytes > uint64(capBytes) {
		t.Errorf("resident bytes %d exceed cap %d", s.EncCacheBytes, capBytes)
	}
	if err := server.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEncCacheDisabled: the ablation serves correctly and moves no cache
// counters.
func TestEncCacheDisabled(t *testing.T) {
	_, server, clients := pipelineNet(t, 2, nil)
	server.enc = nil // DisableEncodeCache equivalent for the shared-net helper
	head, want := buildChain(t, server, 32, 0)
	for i, cl := range clients {
		sum, err := chase(cl, head)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if sum != want {
			t.Fatalf("client %d sum = %d, want %d", i, sum, want)
		}
	}
	s := server.Stats()
	if s.EncCacheHits != 0 || s.EncCacheMisses != 0 || s.EncCacheBytes != 0 {
		t.Errorf("disabled cache moved counters: %+v", s)
	}
}

// TestEncCacheDisableOption exercises the real Options plumbing for the
// ablation flag.
func TestEncCacheDisableOption(t *testing.T) {
	caller, callee := pair(t, func(id uint32, o *Options) { o.DisableEncodeCache = true })
	registerSumProc(t, callee)
	root := buildTree(t, caller, 4)
	if got := sessionCall(t, caller, 2, "sumTree", root)[0].Int64(); got != wantSum(4) {
		t.Fatalf("sum = %d, want %d", got, wantSum(4))
	}
	if s := caller.Stats(); s.EncCacheHits != 0 || s.EncCacheMisses != 0 {
		t.Errorf("DisableEncodeCache origin moved counters: hits=%d misses=%d",
			s.EncCacheHits, s.EncCacheMisses)
	}
}

// --- satellite 1: the origin's hot serve path ---

// serveHotSetup builds an origin with a fully built tree and returns the
// wants list the serve loop answers.
func serveHotSetup(t testing.TB, disable bool) (*Runtime, []wire.LongPtr) {
	rt, _ := pair(t, func(id uint32, o *Options) { o.DisableEncodeCache = disable })
	root := buildTree(t, rt, 7) // 127 nodes
	return rt, []wire.LongPtr{root.LP}
}

// serveHot runs one serve exactly the way serveFetch does: pooled
// scratch in, closure build, scratch back.
func serveHot(t testing.TB, rt *Runtime, wants []wire.LongPtr) int {
	sc := serveScratchPool.Get().(*serveScratch)
	items, err := rt.buildClosureItems(wants, 0, 1<<20, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := len(items)
	sc.reset()
	serveScratchPool.Put(sc)
	return n
}

// BenchmarkServeFetchHot pins the allocation count of the origin's hot
// serve path: pooled scratch plus encode-cache hits should make a warm
// serve allocation-free up to the returned items' bookkeeping.
func BenchmarkServeFetchHot(b *testing.B) {
	rt, wants := serveHotSetup(b, false)
	serveHot(b, rt, wants) // warm the cache and the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveHot(b, rt, wants)
	}
}

// BenchmarkServeFetchHotNoCache is the ablation baseline for the same
// path: every serve re-encodes into a fresh arena.
func BenchmarkServeFetchHotNoCache(b *testing.B) {
	rt, wants := serveHotSetup(b, true)
	serveHot(b, rt, wants)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveHot(b, rt, wants)
	}
}

// TestServeFetchHotAllocsReduction is the acceptance check behind the
// benchmarks: with the encode cache on, a warm serve of a hot closure
// allocates less than half of what the re-encode-everything ablation
// does.
func TestServeFetchHotAllocsReduction(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	cached, wantsC := serveHotSetup(t, false)
	ablated, wantsA := serveHotSetup(t, true)
	serveHot(t, cached, wantsC)
	serveHot(t, ablated, wantsA)
	on := testing.AllocsPerRun(50, func() { serveHot(t, cached, wantsC) })
	off := testing.AllocsPerRun(50, func() { serveHot(t, ablated, wantsA) })
	if on > off/2 {
		t.Errorf("warm serve allocates %.1f/op with the cache vs %.1f/op ablated; want >= 50%% reduction", on, off)
	}
	s := cached.Stats()
	if s.EncCacheHits == 0 {
		t.Error("warm serves recorded no encode-cache hits")
	}
}

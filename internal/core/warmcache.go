package core

import (
	"bytes"
	"errors"
	"fmt"
	"slices"
	"sync"

	"smartrpc/internal/delta"
	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
	"smartrpc/internal/xdr"
)

// This file implements the warm cross-session cache. The paper's protocol
// (§3.4) discards every cached page at session end, so each new session
// pays the full fault-and-fetch cost again even when the origin data never
// changed. Here the end-of-session invalidation *demotes* instead: table
// rows become stale (swizzle.Entry.Stale), page bytes survive under
// ProtNone (vmem.DemoteCache), and this space records a revalidation
// baseline per datum. The next session's first fault over a stale page
// sends one batched Validate message carrying (pointer, version, content
// hash) tuples for the faulting page plus the stale ride-alongs in its
// closure neighborhood; the origin answers each tuple with a zero-byte
// "still current" token, a range delta against the cached baseline
// (internal/delta), or a full body — an unchanged working set costs one
// small round trip instead of N full fetches.
//
// Safety rests on two rules:
//
//   - The client baseline is derived ONLY by re-encoding the page bytes at
//     demote time, never from fetch- or coherency-path installs. Page and
//     baseline therefore agree by construction, and they stay in agreement
//     while the page sits under ProtNone.
//   - The content hash, not the version counter, is authoritative for
//     token decisions: the origin answers "still current" only when the
//     hash of its *current* encoding equals the offered hash. A dropped or
//     corrupted reply can therefore never set up a later token that
//     promotes bytes differing from the origin's — the failure mode of
//     version-lockstep schemes. Versions are carried for diagnostics.
//
// Any failure in the exchange degrades transparently: the affected entries
// lose their stale mark and baseline and are refetched in full by the
// ordinary fetch path. Correctness never depends on a warm baseline.

// warmView is this space's revalidation baseline for one stale datum: the
// canonical encoding its cached page held at the last demotion, the hash
// the origin compares against, and a demotion-generation counter.
type warmView struct {
	ver   uint32
	sum   uint64
	bytes []byte
}

// warmCache is a runtime's cross-session warm state. views is the client
// side: baselines for this space's own stale cached data. served is the
// server side: per peer, the canonical bytes this space last shipped for
// each of its own data — the delta base for Validate replies. Both
// deliberately survive session teardown; served entries are only ever
// used after an offered hash proves the peer still holds those bytes.
type warmCache struct {
	mu     sync.Mutex
	views  map[wire.LongPtr]*warmView
	served map[uint32]map[wire.LongPtr][]byte
}

// clearViews drops every client baseline (hard invalidation paths).
func (w *warmCache) clearViews() {
	w.mu.Lock()
	w.views = nil
	w.mu.Unlock()
}

// warmEnabled reports whether this runtime keeps its cache warm across
// sessions. Only the smart policy caches through the data allocation
// table in a way demotion can preserve.
func (rt *Runtime) warmEnabled() bool {
	return rt.policy == PolicySmart && !rt.noWarmCache
}

// demoteWarm is the warm-cache replacement for the hard local
// invalidation at session teardown: it records a revalidation baseline
// for every resident entry by re-encoding its page bytes, feeds the
// adaptive-eagerness accounting, then demotes the table rows and
// re-protects the cache pages in place. If the cache is in a state no
// trustworthy baseline can be built from (a provisional row surviving to
// teardown, or an encode failure), it falls back to the hard
// invalidation — losing warmth, never correctness.
//
// preEnc carries encodings the caller already produced on this same
// crossing (EndSession's dirty-item collection), so a modified datum is
// not encoded twice in one teardown. An entry may reuse its preEnc bytes
// only while the pages it spans are still clean: collectDirtyItems
// cleared the dirty bits right after encoding, so a clean span proves
// the page bytes have not changed since, and page and baseline still
// agree by construction. Everything else re-encodes here, all into one
// shared arena (one allocation for the whole pass; the views alias it,
// and they collectively retain essentially all of it).
func (rt *Runtime) demoteWarm(preEnc map[wire.LongPtr][]byte) {
	entries := rt.table.Entries()
	rt.recordEagerUsage(entries)
	type encoded struct {
		lp wire.LongPtr
		b  []byte
	}
	var dirtySet map[uint32]bool
	if len(preEnc) > 0 {
		if pages := rt.space.DirtyPages(); len(pages) > 0 {
			dirtySet = make(map[uint32]bool, len(pages))
			for _, pn := range pages {
				dirtySet[pn] = true
			}
		}
	}
	encs := make([]encoded, 0, len(entries))
	live := make(map[wire.LongPtr]bool, len(entries))
	arena := xdr.NewEncoder(0)
	var pend, offs []int // encs indexes and arena starts of this pass's encodes
	for _, e := range entries {
		if uint32(e.LP.Addr) >= provisionalBase {
			// An unflushed provisional allocation at teardown means the
			// protocol already failed; discard everything.
			rt.demoteFallback()
			return
		}
		if !e.Resident {
			if e.Stale {
				// Stale across consecutive sessions: the page was never
				// touched (still ProtNone), so the recorded baseline is
				// still exact.
				live[e.LP] = true
			}
			continue
		}
		if b, ok := preEnc[e.LP]; ok && !rt.spanDirty(dirtySet, e.Addr, e.Size) {
			live[e.LP] = true
			encs = append(encs, encoded{lp: e.LP, b: b})
			continue
		}
		rv, err := rt.res.Resolve(e.LP.Type)
		if err != nil {
			rt.demoteFallback()
			return
		}
		pend = append(pend, len(encs))
		offs = append(offs, arena.Len())
		if _, err := encodeObjectInto(arena, rt.space, rt.table, rt.res, rv.Desc, e.Addr); err != nil {
			rt.demoteFallback()
			return
		}
		live[e.LP] = true
		encs = append(encs, encoded{lp: e.LP})
	}
	backing := arena.Bytes()
	for k, ei := range pend {
		end := len(backing)
		if k+1 < len(offs) {
			end = offs[k+1]
		}
		encs[ei].b = backing[offs[k]:end]
	}
	rt.warm.mu.Lock()
	if rt.warm.views == nil {
		rt.warm.views = make(map[wire.LongPtr]*warmView, len(encs))
	}
	for _, en := range encs {
		v := rt.warm.views[en.lp]
		if v == nil {
			rt.warm.views[en.lp] = &warmView{ver: 1, sum: wire.Sum64(en.b), bytes: en.b}
		} else if !bytes.Equal(v.bytes, en.b) {
			v.ver++
			v.sum = wire.Sum64(en.b)
			v.bytes = en.b
		}
	}
	// Baselines for rows no longer in the table (freed data) are dead.
	for lp := range rt.warm.views {
		if !live[lp] {
			delete(rt.warm.views, lp)
		}
	}
	rt.warm.mu.Unlock()
	rt.table.DemoteAll()
	rt.space.DemoteCache()
}

// spanDirty reports whether any page of [addr, addr+size) is in the
// dirty set (nil means no page is dirty).
func (rt *Runtime) spanDirty(dirtySet map[uint32]bool, addr vmem.VAddr, size int) bool {
	if len(dirtySet) == 0 {
		return false
	}
	first := rt.space.PageOf(addr)
	last := rt.space.PageOf(addr + vmem.VAddr(size-1))
	for pn := first; pn <= last; pn++ {
		if dirtySet[pn] {
			return true
		}
	}
	return false
}

// demoteFallback is the hard local invalidation demoteWarm retreats to.
func (rt *Runtime) demoteFallback() {
	rt.warm.clearViews()
	rt.space.InvalidateCache()
	rt.table.Invalidate()
}

// validateTuplesFor builds the offer tuples for a set of stale long
// pointers. Entries without a recorded baseline (there should be none,
// but the degrade paths can leave one-sided state) are returned
// separately so the caller can strip their stale marks.
func (rt *Runtime) validateTuplesFor(lps []wire.LongPtr) (tuples []wire.ValidateTuple, without []wire.LongPtr) {
	rt.warm.mu.Lock()
	defer rt.warm.mu.Unlock()
	tuples = make([]wire.ValidateTuple, 0, len(lps))
	for _, lp := range lps {
		if v := rt.warm.views[lp]; v != nil {
			tuples = append(tuples, wire.ValidateTuple{LP: lp, Ver: v.ver, Sum: v.sum})
		} else {
			without = append(without, lp)
		}
	}
	return tuples, without
}

// degradeStale strips the warm state of the given tuples — stale marks
// and baselines — so the ordinary fetch path refetches them in full. It
// is the client's answer to any failed or unusable Validate exchange.
func (rt *Runtime) degradeStale(tuples []wire.ValidateTuple) {
	lps := make([]wire.LongPtr, len(tuples))
	for i, t := range tuples {
		lps[i] = t.LP
	}
	rt.degradeLPs(lps)
}

func (rt *Runtime) degradeLPs(lps []wire.LongPtr) {
	if len(lps) == 0 {
		return
	}
	rt.table.ClearStale(lps)
	rt.warm.mu.Lock()
	for _, lp := range lps {
		delete(rt.warm.views, lp)
	}
	rt.warm.mu.Unlock()
}

// validateFrom revalidates the faulting page's stale entries (all owned
// by origin) with one batched Validate round trip, piggybacking tuples
// for stale ride-alongs within the eagerness budget. On any failure the
// affected entries degrade to plain wants and the method returns nil —
// the caller's fetch loop refetches them in full, so a lost or corrupted
// reply costs a refetch, never a stale read.
//
// A promoted warm page exposes its swizzled pointers just like a fresh
// install does, so a successful revalidation asks for a prefetcher poke
// (poke=true). As with fetchFrom, the poke itself is deferred to
// completeFrom: it may only run after the in-flight registry slot is
// released, or an inline speculative completion could deadlock joining
// this goroutine's own entry.
func (rt *Runtime) validateFrom(sess uint64, pn, origin uint32, lps []wire.LongPtr) (poke bool, err error) {
	if !rt.noFetchBatch {
		extra, _ := rt.table.StaleWants(origin, pn, rt.budgetFor(origin))
		lps = append(lps, extra...)
	}
	tuples, without := rt.validateTuplesFor(lps)
	rt.table.ClearStale(without)
	if len(tuples) == 0 {
		return false, nil
	}
	p := wire.ValidatePayload{Tuples: tuples}
	payload := p.Encode()
	var items []wire.ValidateItem
	var release func()
	rerr := rt.retryLoop(origin, wire.KindValidate, func(seq uint64) (bool, error) {
		rt.stats.cohRevalidateMsgs.Add(1)
		rt.trace(Event{Kind: EvValidateSent, Target: origin, Page: pn, Count: len(tuples)})
		x, err := rt.sendAndStreamSeq(wire.Message{
			Kind:    wire.KindValidate,
			Session: sess,
			To:      origin,
			Payload: payload,
		}, seq)
		if err != nil {
			return !errors.Is(err, ErrClosed), err
		}
		items, release, err = rt.recvValidateReply(x)
		if err != nil {
			return errors.Is(err, errTransient), err
		}
		return false, nil
	})
	if rerr != nil {
		// A tripped fence is real state loss, not a lost reply: surface it.
		// Everything else keeps the seed's graceful degrade — the offered
		// tuples fall back to plain wants and the fetch loop refetches.
		if errors.Is(rerr, ErrOriginRestarted) {
			return false, rerr
		}
		rt.degradeStale(tuples)
		return false, nil
	}
	// Item bytes may alias pooled chunk frames; hold them until the apply
	// has consumed (cloned or patched from) every body.
	err = rt.applyValidateReply(tuples, items)
	release()
	if err != nil {
		return false, err
	}
	return true, nil
}

// recvValidateReply drains one Validate exchange: either the classic
// monolithic ValidateReply frame or a sequence of validate-flagged chunk
// frames, whose item vectors are concatenated in order. Unlike a fetch
// stream nothing is installed mid-drain — revalidation decisions need the
// full answer set (unanswered tuples degrade) — so streaming here buys
// pipelined encode/transmit on the origin, not early unblocking. The
// returned release frees the frames backing the item bytes; callers
// invoke it after the apply. Failures wrapped in errTransient — a stalled
// or torn stream, a frame corrupted in flight — are worth one more
// attempt under the retry policy; anything else (a protocol violation, a
// tripped incarnation fence) is terminal.
func (rt *Runtime) recvValidateReply(x *streamExchange) (items []wire.ValidateItem, release func(), err error) {
	var frames []wire.Message
	release = func() {
		for i := range frames {
			frames[i].ReleaseFrame()
		}
	}
	bad := func(e error) ([]wire.ValidateItem, func(), error) {
		release()
		x.abandon()
		return nil, func() {}, e
	}
	asm := &chunkAssembler{xid: x.seq}
	for {
		m, err := x.next()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return bad(err)
			}
			return bad(fmt.Errorf("%w: %w", errTransient, err))
		}
		frames = append(frames, m)
		// A frame corrupted in flight is a retryable wire fault, and its
		// Inc word is garbage — classify before fencing. Any other frame's
		// Inc is trustworthy (the origin sealed it), so fence *before*
		// interpreting an application error: a restarted origin answers a
		// stale session's requests with errors, and the restart is the
		// diagnosis, not the symptom.
		if m.Err == checksumRejectErr {
			return bad(fmt.Errorf("%w: %s", errTransient, m.Err))
		}
		if ferr := rt.fenceCheck(m.From, m.Inc); ferr != nil {
			return bad(ferr)
		}
		if m.Err != "" {
			return bad(fmt.Errorf("core: validate rejected by space %d: %s", m.From, m.Err))
		}
		if m.Kind == wire.KindValidateReply {
			if len(frames) > 1 {
				return bad(fmt.Errorf("core: monolithic validate reply inside a chunk stream"))
			}
			rp, err := wire.DecodeValidateReplyPayload(m.Payload)
			if err != nil {
				return bad(err)
			}
			return rp.Items, release, nil
		}
		if m.Kind != wire.KindFetchChunk {
			return bad(fmt.Errorf("core: unexpected %v in validate stream", m.Kind))
		}
		cp, err := wire.DecodeFetchChunkPayload(m.Payload)
		if err != nil {
			return bad(err)
		}
		if !cp.Validate {
			return bad(fmt.Errorf("core: fetch chunk in validate stream"))
		}
		if err := asm.accept(&cp); err != nil {
			// Torn chunk sequence: a chunk was dropped, duplicated, or
			// reordered in flight. Retryable.
			return bad(fmt.Errorf("%w: %w", errTransient, err))
		}
		rt.trace(Event{Kind: EvChunkRecv, Target: m.From, Page: cp.Chunk, Count: len(cp.VItems)})
		items = append(items, cp.VItems...)
		if cp.Final {
			return items, release, nil
		}
	}
}

// applyValidateReply installs the origin's per-tuple answers: tokens
// promote the stale entry in place (the page already holds the current
// bytes), deltas patch the recorded baseline, full bodies install as a
// fetch reply would. Every offered tuple ends the call either resident or
// degraded to a plain want, so the fetch loop always makes progress.
func (rt *Runtime) applyValidateReply(tuples []wire.ValidateTuple, items []wire.ValidateItem) error {
	// Revalidation installs into cache pages like installItems does, and
	// under the same serialization (see installItems).
	rt.installMu.Lock()
	defer rt.installMu.Unlock()
	expect := make(map[wire.LongPtr]bool, len(tuples))
	for _, t := range tuples {
		expect[t.LP] = true
	}
	touched := make(map[uint32]bool)
	for _, it := range items {
		if !expect[it.LP] {
			continue // unsolicited; ignore
		}
		delete(expect, it.LP)
		addr, ok := rt.table.LookupLP(it.LP)
		if !ok {
			continue // row vanished (freed meanwhile); nothing to promote
		}
		e, ok := rt.table.LookupAddr(addr)
		if !ok || !e.Stale {
			continue // already promoted or overwritten by another path
		}
		switch it.Form {
		case wire.ValidateCurrent:
			// The offered hash matched the origin's current encoding: the
			// page bytes under ProtNone are already exact. No decode.
			rt.table.MarkResident(addr)
			rt.stats.cohRevalidateHits.Add(1)
			rt.trace(Event{Kind: EvValidateHit, LP: it.LP})
		case wire.ValidateDelta, wire.ValidateFull:
			var body []byte
			if it.Form == wire.ValidateDelta {
				rt.warm.mu.Lock()
				v := rt.warm.views[it.LP]
				rt.warm.mu.Unlock()
				if v == nil {
					rt.degradeLPs([]wire.LongPtr{it.LP})
					continue
				}
				runs, err := delta.Decode(it.Bytes)
				if err != nil {
					rt.degradeLPs([]wire.LongPtr{it.LP})
					continue
				}
				body, err = delta.Apply(v.bytes, runs)
				if err != nil {
					rt.degradeLPs([]wire.LongPtr{it.LP})
					continue
				}
			} else {
				// Reply bytes alias the frame buffer; the decode below may
				// swizzle and recurse, so take a stable copy.
				body = slices.Clone(it.Bytes)
			}
			rv, err := rt.res.Resolve(it.LP.Type)
			if err != nil {
				return err
			}
			if err := decodeObject(rt.space, rt.table, rt.res, rv.Desc, addr, body); err != nil {
				return fmt.Errorf("revalidate install %v: %w", it.LP, err)
			}
			rt.table.MarkResident(addr)
			// Accounted by the revalidation counters alone, not by
			// ItemsInstalled/BytesInstalled: those track the fetch path,
			// where wire bytes equal body bytes. A delta install's wire
			// cost is the delta, and summing both families would double
			// count the same datum.
			rt.stats.cohRevalidateMisses.Add(1)
			rt.stats.cohRevalidateBytes.Add(uint64(len(it.Bytes)))
			rt.trace(Event{Kind: EvValidateMiss, LP: it.LP, Count: len(it.Bytes)})
		}
		first := rt.space.PageOf(addr)
		last := rt.space.PageOf(addr + vmem.VAddr(e.Size-1))
		for pn := first; pn <= last; pn++ {
			touched[pn] = true
		}
	}
	// Tuples the origin failed to answer degrade — otherwise the fetch
	// loop would re-offer them forever.
	if len(expect) > 0 {
		lps := make([]wire.LongPtr, 0, len(expect))
		for lp := range expect {
			lps = append(lps, lp)
		}
		rt.degradeLPs(lps)
	}
	pages := make([]uint32, 0, len(touched))
	for pn := range touched {
		pages = append(pages, pn)
	}
	slices.Sort(pages)
	for _, pn := range pages {
		prot, err := rt.space.ProtOf(pn)
		if err != nil {
			return err
		}
		if prot != vmem.ProtNone {
			continue
		}
		if !rt.table.AllResident(pn) {
			continue
		}
		if err := rt.space.SetProt(pn, vmem.ProtRead); err != nil {
			return err
		}
		rt.table.Seal(pn)
	}
	if rt.checkInv {
		return rt.CheckLocalInvariants()
	}
	return nil
}

// serveValidate answers a batched revalidation request: for each offered
// (pointer, version, hash) tuple it re-encodes the datum's current value
// and replies with a token when the hashes match, a range delta when the
// peer's recorded bytes are a usable base and the delta is smaller, or
// the full body. The served record updates to the current encoding either
// way, keeping future deltas small.
func (rt *Runtime) serveValidate(m wire.Message) {
	p, err := wire.DecodeValidatePayload(m.Payload)
	if err != nil {
		rt.reply(m, wire.KindValidateReply, nil, fmt.Sprintf("decode: %v", err))
		return
	}
	// Re-encoding reads the heap; hold the read side of the serve lock
	// against concurrently applied write-backs.
	rt.serveMu.RLock()
	defer rt.serveMu.RUnlock()
	// A reply heavy with full bodies streams as validate chunks, exactly
	// like a large fetch closure (chunkEmitter); the common all-token
	// reply stays well under the threshold and goes out monolithic.
	var em *chunkEmitter
	if !rt.noStreaming && rt.streamChunk > 0 {
		em = &chunkEmitter{rt: rt, req: m, limit: rt.streamChunk, validate: true}
	}
	accBytes := 0
	fail := func(errStr string) {
		if em != nil && em.sent > 0 {
			em.fail(errStr)
			return
		}
		rt.reply(m, wire.KindValidateReply, nil, errStr)
	}
	out := wire.ValidateReplyPayload{Items: make([]wire.ValidateItem, 0, len(p.Tuples))}
	rt.warm.mu.Lock()
	defer rt.warm.mu.Unlock()
	if rt.warm.served == nil {
		rt.warm.served = make(map[uint32]map[wire.LongPtr][]byte)
	}
	sv := rt.warm.served[m.From]
	if sv == nil {
		sv = make(map[wire.LongPtr][]byte, len(p.Tuples))
		rt.warm.served[m.From] = sv
	}
	encHits, encMisses := 0, 0
	for ti, t := range p.Tuples {
		if t.LP.Space != rt.id {
			fail(fmt.Sprintf("core: validate for datum %v not owned by space %d", t.LP, rt.id))
			return
		}
		rv, err := rt.res.Resolve(t.LP.Type)
		if err != nil {
			fail(err.Error())
			return
		}
		// A cache hit answers with the memoized bytes AND the memoized
		// content hash — the common "nothing changed" validate does no
		// encoding and no hashing at all.
		cur, curSum, hit := rt.encLookup(t.LP)
		if hit {
			encHits++
		} else {
			encMisses++
			pre, cacheable := rt.encPrepare(t.LP.Addr, rv.Layout.Size)
			enc := xdr.NewEncoder(rv.Canon)
			pure, err := encodeObjectInto(enc, rt.space, rt.table, rt.res, rv.Desc, t.LP.Addr)
			if err != nil {
				fail(fmt.Sprintf("encode %v: %v", t.LP, err))
				return
			}
			cur = enc.Bytes()
			curSum = wire.Sum64(cur)
			if cacheable && pure {
				rt.encPublish(t.LP, pre, cur)
			}
		}
		it := wire.ValidateItem{LP: t.LP}
		if curSum == t.Sum {
			it.Form = wire.ValidateCurrent
		} else {
			// The peer's baseline differs from the current value. Its exact
			// bytes are known to us only if our served record hashes to the
			// offered sum; then — and only then — a delta against it is sound.
			if base := sv[t.LP]; base != nil && wire.Sum64(base) == t.Sum {
				runs := delta.Diff(base, cur, delta.DefaultGap)
				if runs != nil && pad4(delta.EncodedSize(runs)) < pad4(len(cur)) {
					it.Form = wire.ValidateDelta
					it.Bytes = delta.Encode(runs)
				}
			}
			if it.Form == 0 {
				it.Form = wire.ValidateFull
				it.Bytes = cur
			}
		}
		sv[t.LP] = cur
		out.Items = append(out.Items, it)
		if em != nil {
			accBytes += wire.EncodedLongPtrSize + 8 + (len(it.Bytes)+3)&^3
			// As in buildClosureItems, only flush with tuples still pending
			// so a reply that ends exactly here stays monolithic. Emitted
			// batches are fully encoded into the chunk frame, so the slice
			// is reusable immediately.
			if accBytes >= em.limit && ti+1 < len(p.Tuples) {
				if err := em.emit(nil, out.Items, false); err != nil {
					return
				}
				out.Items = out.Items[:0]
				accBytes = 0
			}
		}
	}
	rt.encTraceServe(encHits, encMisses)
	rt.stats.cohRevalidateMsgs.Add(1)
	if em != nil && em.sent > 0 {
		_ = em.emit(nil, out.Items, true)
		return
	}
	rt.reply(m, wire.KindValidateReply, out.Encode(), "")
}

// recordServed notes the canonical bytes just shipped to peer in a fetch
// reply, seeding the delta base for future revalidations. Memory-only:
// it changes nothing on the wire.
func (rt *Runtime) recordServed(peer uint32, items []wire.DataItem) {
	if len(items) == 0 {
		return
	}
	rt.warm.mu.Lock()
	defer rt.warm.mu.Unlock()
	if rt.warm.served == nil {
		rt.warm.served = make(map[uint32]map[wire.LongPtr][]byte)
	}
	sv := rt.warm.served[peer]
	if sv == nil {
		sv = make(map[wire.LongPtr][]byte, len(items))
		rt.warm.served[peer] = sv
	}
	for _, it := range items {
		sv[it.LP] = it.Bytes
	}
}

package core

import (
	"runtime"
	"sync"
)

// This file implements the speculative pointer-graph prefetcher
// (Options.Prefetch). Installing a fetched object swizzles the pointers
// inside it, reserving slots on fresh protected pages the application has
// not touched yet — the swizzle table therefore already knows, one hop
// ahead, which pages a pointer-chasing traversal can reach next. The
// prefetcher turns that knowledge into bounded background work: after a
// completed exchange with an origin it picks up to depth non-resident
// pages from that origin's frontier (swizzle.Table.PrefetchCandidates) and
// completes them through the ordinary completePage path, overlapping
// their round trips with the application's own computation.
//
// Speculation is never load-bearing:
//
//   - A speculative completion is the same code path as a demand fault —
//     stale warm pages revalidate first, installs serialize under
//     installMu, page protection is released only when every entry is
//     resident — so a prefetched page is indistinguishable from a
//     demand-fetched one.
//   - A demand fault on a page whose speculative exchange is in flight
//     joins it through the in-flight registry (completeFrom) instead of
//     re-requesting; if that exchange fails, the registry entry is gone
//     by the time the joiner wakes, and its completion loop issues a
//     plain demand fetch. Failure costs the demand path nothing but the
//     wait it chose to share.
//   - Errors in a speculative completion are dropped silently; the page
//     simply stays protected and faults on first use.
//
// Teardown discipline: pfDrain disables the prefetcher and waits out
// every in-flight speculative completion before any session-teardown path
// (EndSession, serveInvalidate, AbortSession) touches the cache, so
// speculative installs never race demotion or invalidation. It then
// classifies each prefetch-completed page by its vmem accessed bit —
// touched pages were hits, untouched ones wasted speculation — feeding
// the PfHits/PfWasted counters and, through the shared eager-usage
// statistics, the per-origin depth adaptation (prefetchDepthFor).

// defaultPrefetchDepth is the baseline bound on in-flight speculative
// fetches per origin when Options.PrefetchDepth is unset (the adaptive
// scaling of prefetchDepthFor can grow an origin's effective depth to
// twice this). Two keeps one exchange in flight while the next candidate
// is being selected — enough to hide the round trip on a linear pointer
// chase without flooding the origin.
const defaultPrefetchDepth = 2

// prefetcher is the per-runtime speculation state; nil unless enabled.
type prefetcher struct {
	mu    sync.Mutex
	depth int
	sync  bool // run completions inline (Options.SyncPrefetch)
	// sess is the session speculation is running for; 0 disables pokes.
	sess uint64
	// queued marks pages a speculative completion was launched for this
	// session (dedup); completed marks the subset that finished cleanly,
	// awaiting hit/waste classification at drain time.
	queued    map[uint32]bool
	completed map[uint32]bool
	// outstanding counts in-flight speculative completions per origin.
	outstanding map[uint32]int
	wg          sync.WaitGroup
}

func newPrefetcher(depth int, sync bool) *prefetcher {
	return &prefetcher{
		depth:       depth,
		sync:        sync,
		queued:      make(map[uint32]bool),
		completed:   make(map[uint32]bool),
		outstanding: make(map[uint32]int),
	}
}

// pfBegin arms the prefetcher for a new session.
func (rt *Runtime) pfBegin(sess uint64) {
	p := rt.pf
	if p == nil {
		return
	}
	p.mu.Lock()
	p.sess = sess
	clear(p.queued)
	clear(p.completed)
	clear(p.outstanding)
	p.mu.Unlock()
}

// pfPoke is the speculation trigger: called after a completed exchange
// with origin (demand or speculative), it launches background completions
// for up to the origin's adapted depth of non-resident frontier pages.
// Cheap and non-blocking when speculation is disabled, the session has
// ended, or the origin's in-flight budget is spent.
func (rt *Runtime) pfPoke(origin uint32) {
	p := rt.pf
	if p == nil {
		return
	}
	p.mu.Lock()
	sess := p.sess
	depth := p.depth
	out := p.outstanding[origin]
	p.mu.Unlock()
	if sess == 0 || out >= depth {
		return
	}
	// An open per-origin breaker sheds speculation: prefetch is never
	// load-bearing, so a struggling origin is spared the optional traffic
	// while demand exchanges keep their full retry budget.
	if !rt.health.allowSpec(rt, origin) {
		return
	}
	if depth = rt.prefetchDepthFor(origin, depth); out >= depth {
		return
	}
	// Candidate selection walks the swizzle table outside p.mu (the table
	// has its own lock); over-fetch a little so queued pages don't starve
	// the launch loop below.
	cands := rt.table.PrefetchCandidates(origin, depth*2)
	if len(cands) == 0 {
		return
	}
	p.mu.Lock()
	if p.sess != sess {
		p.mu.Unlock()
		return
	}
	var launch []uint32
	for _, pn := range cands {
		if p.queued[pn] {
			continue
		}
		if p.outstanding[origin] >= depth {
			break
		}
		p.queued[pn] = true
		p.outstanding[origin]++
		p.wg.Add(1)
		launch = append(launch, pn)
	}
	p.mu.Unlock()
	if p.sync {
		for _, pn := range launch {
			rt.pfRun(sess, origin, pn)
		}
		return
	}
	for _, pn := range launch {
		go rt.pfRun(sess, origin, pn)
	}
	if len(launch) > 0 {
		// Yield so the fetchers can issue their requests now. A speculative
		// completion needs only a sliver of CPU before it blocks on the
		// network; without the yield, a single-processor runtime would not
		// schedule it until the application next blocks — which is exactly
		// the demand fault the speculation was meant to preempt.
		runtime.Gosched()
	}
}

// pfRun is one background speculative completion. Errors are dropped: the
// page stays protected and the demand path fetches it on first use.
func (rt *Runtime) pfRun(sess uint64, origin, pn uint32) {
	p := rt.pf
	err := rt.completePage(sess, pn, true)
	p.mu.Lock()
	p.outstanding[origin]--
	if err == nil && p.sess == sess {
		p.completed[pn] = true
	}
	p.mu.Unlock()
	p.wg.Done()
	if err == nil {
		// Chain one hop deeper: the install just performed may have
		// swizzled a fresh frontier.
		rt.pfPoke(origin)
	}
}

// pfDrain disables speculation, waits out every in-flight speculative
// completion, and classifies the prefetched pages as hits or waste by
// their accessed bits. It must run before any teardown path invalidates
// or demotes the cache: the accessed bits are about to be cleared, and a
// speculative install racing the demotion would corrupt the baseline.
func (rt *Runtime) pfDrain() {
	p := rt.pf
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.sess == 0 {
		p.mu.Unlock()
		return
	}
	p.sess = 0
	p.mu.Unlock()
	p.wg.Wait()
	p.mu.Lock()
	for pn := range p.completed {
		if rt.space.Accessed(pn) {
			rt.stats.pfHits.Add(1)
			rt.trace(Event{Kind: EvPrefetchHit, Page: pn})
		} else {
			rt.stats.pfWasted.Add(1)
			rt.trace(Event{Kind: EvPrefetchWasted, Page: pn})
		}
	}
	clear(p.queued)
	clear(p.completed)
	clear(p.outstanding)
	p.mu.Unlock()
}

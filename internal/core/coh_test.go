package core

import (
	"testing"

	"smartrpc/internal/delta"
	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
	"smartrpc/internal/xdr"
)

// cohPhase samples the traffic of one scenario phase: message and wire
// byte counts by kind from the network, plus each runtime's coherency
// counters (indexed A=0, B=1, C=2).
type cohPhase struct {
	calls, rets, fetches, freplies uint64
	callBytes, retBytes            uint64
	shipped, deltas, skipped       [3]uint64
	itemBytes                      [3]uint64
}

// cohChainRun is the complete sampled outcome of the three-space
// scenario.
type cohChainRun struct {
	phases   [3]cohPhase  // bump, bump, peek
	writeBck uint64       // write-back messages at session end
	invals   uint64       // invalidations at session end
	reads    [2]int64     // what space C observed per bump
	final    int64        // A's heap value after EndSession
	enc      [3][]byte    // canonical node encodings v1..v3
	lp       wire.LongPtr // the datum's identity
}

// encodeLocalObject returns the canonical encoding of a locally owned
// object, exactly as the coherency path would ship it.
func encodeLocalObject(t *testing.T, rt *Runtime, v Value) []byte {
	t.Helper()
	rv, err := rt.res.Resolve(v.LP.Type)
	if err != nil {
		t.Fatal(err)
	}
	enc := xdr.NewEncoder(0)
	if _, err := encodeObjectInto(enc, rt.space, rt.table, rt.res, rv.Desc, v.Addr); err != nil {
		t.Fatal(err)
	}
	return enc.Bytes()
}

// runCohChain drives the pinned scenario on a fresh three-space network:
// a single node owned by A travels A→B on a call, B→C on a nested call,
// and C→B on a callback, twice with an in-place modification at B (so
// bytes change between crossings) and once read-only (so nothing changes
// between crossings). Phase boundaries are quiescent — Call is
// synchronous and nested activity completes before it returns — so the
// per-phase samples are deterministic.
func runCohChain(t *testing.T, disable bool) cohChainRun {
	t.Helper()
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	mk := func(id uint32) *Runtime {
		node, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(Options{ID: id, Node: node, Registry: reg, DisableDeltaShip: disable})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		return rt
	}
	a, b, c := mk(1), mk(2), mk(3)
	rts := []*Runtime{a, b, c}

	// C's callback target on B: touch the pointer so the datum keeps
	// circulating over the C→B edge too.
	err = b.Register("echo", func(ctx *Ctx, args []Value) ([]Value, error) {
		return args, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// C reads the node and calls back into B before returning.
	err = c.Register("read", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		v, err := ref.Int("data", 0)
		if err != nil {
			return nil, err
		}
		if _, err := ctx.Call(2, "echo", args); err != nil {
			return nil, err
		}
		return []Value{Int64Value(v)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// B bumps the node in place, then forwards it to C.
	err = b.Register("bump", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		d, err := ref.Int("data", 0)
		if err != nil {
			return nil, err
		}
		if err := ref.SetInt("data", 0, d+1); err != nil {
			return nil, err
		}
		return ctx.Call(3, "read", args)
	})
	if err != nil {
		t.Fatal(err)
	}
	// B reads without modifying: the no-change-since-last-crossing phase.
	err = b.Register("peek", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		v, err := ref.Int("data", 0)
		if err != nil {
			return nil, err
		}
		return []Value{Int64Value(v)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	root := buildTree(t, a, 1) // one node, data = 1
	var run cohChainRun
	run.lp = root.LP
	run.enc[0] = encodeLocalObject(t, a, root)

	stats := net.Stats()
	sample := func() cohPhase {
		p := cohPhase{
			calls:     stats.KindMessages(uint32(wire.KindCall)),
			rets:      stats.KindMessages(uint32(wire.KindReturn)),
			fetches:   stats.KindMessages(uint32(wire.KindFetch)),
			freplies:  stats.KindMessages(uint32(wire.KindFetchReply)),
			callBytes: stats.KindBytes(uint32(wire.KindCall)),
			retBytes:  stats.KindBytes(uint32(wire.KindReturn)),
		}
		for i, rt := range rts {
			st := rt.Stats()
			p.shipped[i] = st.CohItemsShipped
			p.deltas[i] = st.CohDeltaItems
			p.skipped[i] = st.CohItemsSkipped
			p.itemBytes[i] = st.CohItemBytes
		}
		return p
	}
	diff := func(before, after cohPhase) cohPhase {
		d := cohPhase{
			calls: after.calls - before.calls, rets: after.rets - before.rets,
			fetches: after.fetches - before.fetches, freplies: after.freplies - before.freplies,
			callBytes: after.callBytes - before.callBytes, retBytes: after.retBytes - before.retBytes,
		}
		for i := range d.shipped {
			d.shipped[i] = after.shipped[i] - before.shipped[i]
			d.deltas[i] = after.deltas[i] - before.deltas[i]
			d.skipped[i] = after.skipped[i] - before.skipped[i]
			d.itemBytes[i] = after.itemBytes[i] - before.itemBytes[i]
		}
		return d
	}

	if err := a.BeginSession(); err != nil {
		t.Fatal(err)
	}
	before := sample()
	for i, proc := range []string{"bump", "bump", "peek"} {
		res, err := a.Call(2, proc, []Value{root})
		if err != nil {
			t.Fatalf("call %d (%s): %v", i, proc, err)
		}
		if i < 2 {
			run.reads[i] = res[0].Int64()
			run.enc[i+1] = encodeLocalObject(t, a, root)
		}
		after := sample()
		run.phases[i] = diff(before, after)
		before = after
	}
	if err := a.EndSession(); err != nil {
		t.Fatal(err)
	}
	run.writeBck = stats.KindMessages(uint32(wire.KindWriteBack))
	run.invals = stats.KindMessages(uint32(wire.KindInvalidate))
	ref, err := a.Deref(root)
	if err != nil {
		t.Fatal(err)
	}
	run.final, err = ref.Int("data", 0)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestNestedCallbackCrossingCounts pins the exact message and byte
// counts of every boundary crossing in a three-space call/callback chain
// (A calls B, B calls C, C calls back into B), under delta shipping and
// under the full-shipping ablation. The no-change-since-last-crossing
// phase must move zero coherency item bytes while the item's dirty
// obligation still crosses as a token.
func TestNestedCallbackCrossingCounts(t *testing.T) {
	ds := runCohChain(t, false) // delta shipping on
	fs := runCohChain(t, true)  // full-shipping ablation

	for _, run := range []struct {
		name string
		r    cohChainRun
	}{{"delta", ds}, {"fullship", fs}} {
		r := run.r
		// Correctness first: both protocols must agree on the values.
		if r.reads != [2]int64{2, 3} || r.final != 3 {
			t.Fatalf("%s: reads=%v final=%d, want [2 3] and 3", run.name, r.reads, r.final)
		}
		// Message counts per phase are protocol-independent: delta
		// shipping shrinks payloads, never adds or removes messages.
		// Phase 1 and 2 (bump): A→B call, one B→C nested call, one C→B
		// callback, and the three matching returns; only phase 1 faults
		// (one fetch against origin A). Phase 3 (peek): a single A↔B
		// round trip.
		wantMsgs := [3][4]uint64{
			{3, 3, 1, 1},
			{3, 3, 0, 0},
			{1, 1, 0, 0},
		}
		for i, p := range r.phases {
			got := [4]uint64{p.calls, p.rets, p.fetches, p.freplies}
			if got != wantMsgs[i] {
				t.Errorf("%s phase %d: calls/rets/fetches/freplies = %v, want %v", run.name, i, got, wantMsgs[i])
			}
		}
		if r.writeBck != 0 {
			// The origin received every modification on an earlier
			// crossing, so end-of-session write-back has nothing to send.
			t.Errorf("%s: %d write-back messages at session end, want 0", run.name, r.writeBck)
		}
		if r.invals != 2 {
			t.Errorf("%s: %d invalidations, want 2 (spaces B and C)", run.name, r.invals)
		}
	}

	full2 := uint64(len(ds.enc[1])) // canonical size after first bump
	full3 := uint64(len(ds.enc[2])) // after second bump
	if full2 == 0 || full2 != full3 {
		t.Fatalf("node encodings: %d and %d bytes, want equal and nonzero", full2, full3)
	}
	runs := delta.Diff(ds.enc[1], ds.enc[2], delta.DefaultGap)
	if runs == nil {
		t.Fatal("no byte-range diff between the two bump encodings")
	}
	dsz := uint64(delta.EncodedSize(runs))
	if dsz == 0 || dsz >= full3 {
		t.Fatalf("delta size %d vs full %d: delta must be the cheaper encoding here", dsz, full3)
	}

	// Coherency item accounting, exact per phase and per runtime.
	//
	// Delta shipping: phase 1 ships the changed node full on the two
	// first-exchange edges (B→C and B→A) and tokens everywhere the peer
	// is known current (C→B callback and both callback returns). Phase 2
	// re-ships the changed node as a byte-range delta on those same two
	// edges. Phase 3 changes nothing: every crossing is a token and the
	// coherency path moves ZERO item bytes.
	wantDS := [3]cohPhase{
		{shipped: [3]uint64{0, 2, 0}, deltas: [3]uint64{0, 0, 0}, skipped: [3]uint64{0, 1, 2}, itemBytes: [3]uint64{0, 2 * full2, 0}},
		{shipped: [3]uint64{0, 2, 0}, deltas: [3]uint64{0, 2, 0}, skipped: [3]uint64{1, 1, 2}, itemBytes: [3]uint64{0, 2 * dsz, 0}},
		{shipped: [3]uint64{0, 0, 0}, deltas: [3]uint64{0, 0, 0}, skipped: [3]uint64{1, 1, 0}, itemBytes: [3]uint64{0, 0, 0}},
	}
	// Full shipping re-encodes and re-transmits the complete body on
	// every crossing the item travels (§3.4): B ships it three times per
	// bump phase (nested call, callback return, return home), C twice
	// (callback, nested return), and A re-ships its circulating copy on
	// every later call.
	wantFS := [3]cohPhase{
		{shipped: [3]uint64{0, 3, 2}, itemBytes: [3]uint64{0, 3 * full2, 2 * full2}},
		{shipped: [3]uint64{1, 3, 2}, itemBytes: [3]uint64{full2, 3 * full3, 2 * full3}},
		{shipped: [3]uint64{1, 1, 0}, itemBytes: [3]uint64{full3, full3, 0}},
	}
	for i := range wantDS {
		got, want := ds.phases[i], wantDS[i]
		if got.shipped != want.shipped || got.deltas != want.deltas ||
			got.skipped != want.skipped || got.itemBytes != want.itemBytes {
			t.Errorf("delta phase %d: shipped=%v deltas=%v skipped=%v itemBytes=%v,\nwant shipped=%v deltas=%v skipped=%v itemBytes=%v",
				i, got.shipped, got.deltas, got.skipped, got.itemBytes,
				want.shipped, want.deltas, want.skipped, want.itemBytes)
		}
		got, want = fs.phases[i], wantFS[i]
		if got.shipped != want.shipped || got.deltas != want.deltas ||
			got.skipped != want.skipped || got.itemBytes != want.itemBytes {
			t.Errorf("fullship phase %d: shipped=%v deltas=%v skipped=%v itemBytes=%v,\nwant shipped=%v deltas=%v skipped=%v itemBytes=%v",
				i, got.shipped, got.deltas, got.skipped, got.itemBytes,
				want.shipped, want.deltas, want.skipped, want.itemBytes)
		}
	}

	// Wire-level byte counts, exact: the two runs carry identical
	// messages except where a full item body became a token or a delta,
	// so each phase's Call/Return byte gap is the sum of the per-item
	// encoding differences, computed from the real wire encoder.
	itemWire := func(it wire.DataItem) uint64 {
		p := wire.ItemsPayload{Items: []wire.DataItem{it}}
		return uint64(len(p.Encode()))
	}
	fullIt := itemWire(wire.DataItem{LP: ds.lp, Dirty: true, Bytes: ds.enc[1]})
	tokIt := itemWire(wire.DataItem{LP: ds.lp, Dirty: true, Delta: true, BaseVer: 1})
	deltIt := itemWire(wire.DataItem{LP: ds.lp, Dirty: true, Delta: true, BaseVer: 1, Bytes: delta.Encode(runs)})
	dTok := fullIt - tokIt    // bytes saved when a full body becomes a token
	dDelta := fullIt - deltIt // bytes saved when it becomes a range delta

	wantGap := [3][2]uint64{
		// phase 1: calls save one token (C→B callback); returns save two
		// (both callback returns).
		{dTok, 2 * dTok},
		// phase 2: calls save a token on A→B, a delta on B→C, and a token
		// on C→B; returns save two tokens and the B→A delta.
		{2*dTok + dDelta, 2*dTok + dDelta},
		// phase 3: one token each way.
		{dTok, dTok},
	}
	for i := range wantGap {
		callGap := fs.phases[i].callBytes - ds.phases[i].callBytes
		retGap := fs.phases[i].retBytes - ds.phases[i].retBytes
		if callGap != wantGap[i][0] || retGap != wantGap[i][1] {
			t.Errorf("phase %d wire gap: call=%d return=%d, want call=%d return=%d",
				i, callGap, retGap, wantGap[i][0], wantGap[i][1])
		}
	}
}

package core

import (
	"fmt"
	"math"

	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
	"smartrpc/internal/xdr"
)

// Value is one RPC argument or result: a scalar, or a pointer. Pointer
// values dereference through Runtime.Deref, which yields a Ref whose
// accessors behave exactly like local memory accesses — the first touch
// of remote data is resolved by the runtime underneath.
type Value struct {
	// Kind is the value's kind; pointers use types.Ptr.
	Kind types.Kind
	// Word holds a scalar's bits.
	Word uint64
	// Addr is a pointer's swizzled (local) address. Unused in lazy mode.
	Addr vmem.VAddr
	// LP is a pointer's long-format identity. Primary representation in
	// lazy mode; informational otherwise.
	LP wire.LongPtr
	// Elem is the pointed-to type for pointers.
	Elem types.ID
	// FnSpace and FnName identify a remote function for Kind ==
	// types.Func (the extension the paper defers to future work in §6).
	FnSpace uint32
	FnName  string
}

// Int64Value builds a signed integer value.
func Int64Value(v int64) Value { return Value{Kind: types.Int64, Word: uint64(v)} }

// Uint64Value builds an unsigned integer value.
func Uint64Value(v uint64) Value { return Value{Kind: types.Uint64, Word: v} }

// Float64Value builds a double-precision value.
func Float64Value(v float64) Value { return Value{Kind: types.Float64, Word: math.Float64bits(v)} }

// BoolValue builds a boolean value.
func BoolValue(v bool) Value {
	var w uint64
	if v {
		w = 1
	}
	return Value{Kind: types.Bool, Word: w}
}

// Int64 extracts a signed integer.
func (v Value) Int64() int64 { return int64(v.Word) }

// Uint64 extracts an unsigned integer.
func (v Value) Uint64() uint64 { return v.Word }

// Float64 extracts a double.
func (v Value) Float64() float64 { return math.Float64frombits(v.Word) }

// Bool extracts a boolean.
func (v Value) Bool() bool { return v.Word != 0 }

// IsNullPtr reports whether a pointer value is null.
func (v Value) IsNullPtr() bool {
	return v.Kind == types.Ptr && v.Addr == vmem.Null && v.LP.IsNull()
}

// NullPtr builds a null pointer value of the given element type.
func NullPtr(elem types.ID) Value {
	return Value{Kind: types.Ptr, Elem: elem}
}

// PtrValueAt builds a pointer value to a locally owned object.
func (rt *Runtime) PtrValueAt(addr vmem.VAddr, elem types.ID) Value {
	return Value{
		Kind: types.Ptr,
		Addr: addr,
		LP:   wire.LongPtr{Space: rt.id, Addr: addr, Type: elem},
		Elem: elem,
	}
}

// ImportPtr builds a pointer value from a long pointer learned out of
// band — a name service, a saved identity, a configuration file — rather
// than received as a call argument. A foreign pointer is swizzled into
// the cache exactly as an inbound argument would be (a reserved,
// non-resident slot that faults and fetches on first dereference inside a
// session); a local one is returned directly. This is how a client space
// reaches shared data it never exchanged a call with.
func (rt *Runtime) ImportPtr(lp wire.LongPtr) (Value, error) {
	if lp.IsNull() {
		return NullPtr(lp.Type), nil
	}
	if lp.Space == rt.id {
		return rt.PtrValueAt(lp.Addr, lp.Type), nil
	}
	v := Value{Kind: types.Ptr, LP: lp, Elem: lp.Type}
	if rt.policy != PolicyLazy {
		addr, _, err := rt.table.Swizzle(lp)
		if err != nil {
			return Value{}, err
		}
		v.Addr = addr
	}
	return v, nil
}

// FuncValue builds a remote function pointer to a procedure registered on
// this runtime. Passing it to other spaces lets them invoke the procedure
// through CallFunc, eliminating the paper's remaining limitation on
// pointers to functions.
func (rt *Runtime) FuncValue(name string) (Value, error) {
	rt.procsMu.RLock()
	_, ok := rt.procs[name]
	rt.procsMu.RUnlock()
	if !ok {
		return Value{}, fmt.Errorf("%w: %q", ErrUnknownProc, name)
	}
	return Value{Kind: types.Func, FnSpace: rt.id, FnName: name}, nil
}

// CallFunc invokes a function pointer value: local function pointers
// dispatch directly; remote ones issue an RPC to the owning space. The
// caller must be inside a session unless the function is local.
func (rt *Runtime) CallFunc(v Value, args []Value) ([]Value, error) {
	if v.Kind != types.Func {
		return nil, fmt.Errorf("core: CallFunc on %v value", v.Kind)
	}
	if v.FnSpace == rt.id {
		rt.procsMu.RLock()
		h, ok := rt.procs[v.FnName]
		rt.procsMu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownProc, v.FnName)
		}
		return h(&Ctx{rt: rt, from: rt.id}, args)
	}
	return rt.Call(v.FnSpace, v.FnName, args)
}

// valueToArg converts an outbound Value, unswizzling pointers (§3.2: "when
// a remote pointer is passed as an argument of a remote procedure, the
// pointer is unswizzled on the caller side").
func (rt *Runtime) valueToArg(v Value) (wire.Arg, error) {
	if v.Kind == types.Func {
		return wire.FuncArg(v.FnSpace, v.FnName), nil
	}
	if v.Kind != types.Ptr {
		return wire.ScalarArg(v.Kind, v.Word), nil
	}
	if rt.policy == PolicyLazy {
		lp, err := rt.resolveLP(v.LP)
		if err != nil {
			return wire.Arg{}, err
		}
		return wire.PtrArg(lp), nil
	}
	lp, err := rt.table.Unswizzle(v.Addr, v.Elem)
	if err != nil {
		return wire.Arg{}, err
	}
	return wire.PtrArg(lp), nil
}

// argsToValues converts inbound arguments, swizzling pointers into local
// ordinary pointers (the callee-stub half of §3.2). In lazy mode pointers
// stay in long format and every dereference calls back.
func (rt *Runtime) argsToValues(args []wire.Arg) ([]Value, error) {
	out := make([]Value, 0, len(args))
	for _, a := range args {
		if a.Kind == types.Func {
			out = append(out, Value{Kind: types.Func, FnSpace: a.FnSpace, FnName: a.FnName})
			continue
		}
		if a.Kind != types.Ptr {
			out = append(out, Value{Kind: a.Kind, Word: a.Word})
			continue
		}
		v := Value{Kind: types.Ptr, LP: a.Ptr, Elem: a.Ptr.Type}
		if rt.policy != PolicyLazy {
			addr, _, err := rt.table.Swizzle(a.Ptr)
			if err != nil {
				return nil, err
			}
			v.Addr = addr
		}
		out = append(out, v)
	}
	return out, nil
}

// Ref is a dereferenced pointer: a typed view of one object that can be
// read and written field by field. In smart and eager modes the accessors
// are ordinary (checked) memory accesses against the simulated address
// space — the first touch of a protected page triggers the fetch — so the
// runtime cost of access is exactly that of local data once cached. In
// lazy mode every accessor performs a callback.
type Ref struct {
	rt     *Runtime
	desc   *types.Desc
	layout *types.Layout // shared, immutable (from the resolver cache)
	addr   vmem.VAddr    // smart/eager
	lp     wire.LongPtr  // lazy
	data   []byte        // lazy: the object's canonical bytes, one callback's worth
}

// Deref resolves a pointer value into a Ref. In lazy mode this performs
// the per-dereference callback immediately (one callback per dereference,
// as in §2's naive approach): field accessors then read the fetched copy,
// but dereferencing the same pointer again calls back again — there is no
// caching across Refs.
//
// The Ref is returned by value: on the smart path a dereference is just a
// couple of table lookups and allocates nothing, matching the paper's
// claim that cached remote data costs the same as local data to access.
func (rt *Runtime) Deref(v Value) (Ref, error) {
	if v.Kind != types.Ptr {
		return Ref{}, fmt.Errorf("core: cannot deref %v value", v.Kind)
	}
	if v.IsNullPtr() {
		return Ref{}, vmem.ErrNull
	}
	rv, err := rt.res.Resolve(v.Elem)
	if err != nil {
		return Ref{}, err
	}
	r := Ref{rt: rt, desc: rv.Desc}
	if rt.policy == PolicyLazy {
		r.lp, err = rt.resolveLP(v.LP)
		if err != nil {
			return Ref{}, err
		}
		r.data, err = rt.fetchOne(r.lp)
		if err != nil {
			return Ref{}, err
		}
		return r, nil
	}
	r.layout = rv.Layout
	r.addr = v.Addr
	return r, nil
}

// Type returns the referenced object's descriptor.
func (r *Ref) Type() *types.Desc { return r.desc }

// Value returns the pointer value this Ref dereferences.
func (r *Ref) Value() Value {
	v := Value{Kind: types.Ptr, Elem: r.desc.ID, Addr: r.addr, LP: r.lp}
	if r.rt.policy != PolicyLazy && r.lp.IsNull() {
		if lp, err := r.rt.table.Unswizzle(r.addr, r.desc.ID); err == nil {
			v.LP = lp
		}
	}
	return v
}

// field resolves a field by name.
func (r *Ref) field(name string) (int, types.Field, error) {
	i := r.desc.FieldIndex(name)
	if i < 0 {
		return 0, types.Field{}, fmt.Errorf("core: type %s has no field %q", r.desc.Name, name)
	}
	return i, r.desc.Fields[i], nil
}

// Uint reads an unsigned scalar field element.
func (r *Ref) Uint(name string, idx int) (uint64, error) {
	i, f, err := r.field(name)
	if err != nil {
		return 0, err
	}
	if f.Kind == types.Ptr {
		return 0, fmt.Errorf("core: field %q is a pointer; use Ptr", name)
	}
	if r.rt.policy == PolicyLazy {
		return r.lazyScalar(i, f, idx)
	}
	fl := r.layout.Fields[i]
	return r.rt.space.ReadUint(r.addr+vmem.VAddr(fl.Offset+idx*fl.ElemSize), fl.ElemSize)
}

// SetUint writes an unsigned scalar field element.
func (r *Ref) SetUint(name string, idx int, v uint64) error {
	i, f, err := r.field(name)
	if err != nil {
		return err
	}
	if f.Kind == types.Ptr {
		return fmt.Errorf("core: field %q is a pointer; use SetPtr", name)
	}
	if r.rt.policy == PolicyLazy {
		return r.lazySetScalar(i, f, idx, v)
	}
	fl := r.layout.Fields[i]
	if err := r.rt.space.WriteUint(r.addr+vmem.VAddr(fl.Offset+idx*fl.ElemSize), fl.ElemSize, v); err != nil {
		return err
	}
	// A write to a locally owned object obsoletes its cached encoding. The
	// page-version bump inside the store already guarantees that; the
	// proactive drop keeps the invalidation counter deterministic. A write
	// to a cached foreign object instead joins the session's modified data
	// set (only objects actually written travel home at session end).
	if r.rt.space.InHeap(r.addr) {
		r.rt.encInvalidate(r.addr)
	} else {
		r.rt.touchObject(r.addr)
	}
	return nil
}

// Int reads a signed scalar field element, sign-extending from the
// field's width.
func (r *Ref) Int(name string, idx int) (int64, error) {
	i, f, err := r.field(name)
	if err != nil {
		return 0, err
	}
	raw, err := r.Uint(name, idx)
	if err != nil {
		return 0, err
	}
	_ = i
	switch f.Kind {
	case types.Int8:
		return int64(int8(raw)), nil
	case types.Int16:
		return int64(int16(raw)), nil
	case types.Int32:
		return int64(int32(raw)), nil
	default:
		return int64(raw), nil
	}
}

// SetInt writes a signed scalar field element.
func (r *Ref) SetInt(name string, idx int, v int64) error {
	return r.SetUint(name, idx, uint64(v))
}

// Float64Field reads a float64 field element.
func (r *Ref) Float64Field(name string, idx int) (float64, error) {
	raw, err := r.Uint(name, idx)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(raw), nil
}

// SetFloat64Field writes a float64 field element.
func (r *Ref) SetFloat64Field(name string, idx int, v float64) error {
	return r.SetUint(name, idx, math.Float64bits(v))
}

// Ptr reads a pointer field element, yielding a pointer Value that can be
// dereferenced in turn.
func (r *Ref) Ptr(name string, idx int) (Value, error) {
	i, f, err := r.field(name)
	if err != nil {
		return Value{}, err
	}
	if f.Kind != types.Ptr {
		return Value{}, fmt.Errorf("core: field %q is not a pointer", name)
	}
	if r.rt.policy == PolicyLazy {
		return r.lazyPtr(i, f, idx)
	}
	fl := r.layout.Fields[i]
	pv, err := r.rt.space.ReadPtr(r.addr + vmem.VAddr(fl.Offset+idx*fl.ElemSize))
	if err != nil {
		return Value{}, err
	}
	if pv == vmem.Null {
		return NullPtr(f.Elem), nil
	}
	v := Value{Kind: types.Ptr, Addr: pv, Elem: f.Elem}
	if lp, err := r.rt.table.Unswizzle(pv, f.Elem); err == nil {
		v.LP = lp
	}
	return v, nil
}

// SetPtr writes a pointer field element.
func (r *Ref) SetPtr(name string, idx int, v Value) error {
	i, f, err := r.field(name)
	if err != nil {
		return err
	}
	if f.Kind != types.Ptr {
		return fmt.Errorf("core: field %q is not a pointer", name)
	}
	if v.Kind != types.Ptr {
		return fmt.Errorf("core: SetPtr with %v value", v.Kind)
	}
	if r.rt.policy == PolicyLazy {
		return r.lazySetPtr(i, f, idx, v)
	}
	fl := r.layout.Fields[i]
	if err := r.rt.space.WritePtr(r.addr+vmem.VAddr(fl.Offset+idx*fl.ElemSize), v.Addr); err != nil {
		return err
	}
	if r.rt.space.InHeap(r.addr) {
		r.rt.encInvalidate(r.addr)
	} else {
		r.rt.touchObject(r.addr)
	}
	return nil
}

// --- lazy-mode accessors: one callback per dereference, no caching ---

// canonicalElemOffset locates element idx of field i in the canonical
// encoding.
func (r *Ref) canonicalElemOffset(i, idx int) int {
	return r.desc.CanonicalFieldOffset(i) + idx*types.CanonicalElemSize(r.desc.Fields[i].Kind)
}

func (r *Ref) lazyScalar(i int, f types.Field, idx int) (uint64, error) {
	dec := xdr.NewDecoder(r.data)
	if _, err := dec.FixedOpaque(r.canonicalElemOffset(i, idx)); err != nil {
		return 0, err
	}
	return decodeScalar(dec, f.Kind)
}

func (r *Ref) lazySetScalar(i int, f types.Field, idx int, v uint64) error {
	buf := make([]byte, len(r.data))
	copy(buf, r.data)
	enc := xdr.NewEncoder(8)
	encodeScalar(enc, f.Kind, v)
	off := r.canonicalElemOffset(i, idx)
	if off+enc.Len() > len(buf) {
		return fmt.Errorf("core: lazy write beyond object (%d+%d > %d)", off, enc.Len(), len(buf))
	}
	copy(buf[off:], enc.Bytes())
	r.data = buf
	return r.rt.writeOne(r.lp, buf)
}

func (r *Ref) lazyPtr(i int, f types.Field, idx int) (Value, error) {
	off := r.canonicalElemOffset(i, idx)
	dec := xdr.NewDecoder(r.data)
	if _, err := dec.FixedOpaque(off); err != nil {
		return Value{}, err
	}
	space, err := dec.Uint32()
	if err != nil {
		return Value{}, err
	}
	addr, err := dec.Uint32()
	if err != nil {
		return Value{}, err
	}
	ty, err := dec.Uint32()
	if err != nil {
		return Value{}, err
	}
	lp := wire.LongPtr{Space: space, Addr: vmem.VAddr(addr), Type: types.ID(ty)}
	if lp.IsNull() {
		return NullPtr(f.Elem), nil
	}
	return Value{Kind: types.Ptr, LP: lp, Elem: f.Elem}, nil
}

func (r *Ref) lazySetPtr(i int, f types.Field, idx int, v Value) error {
	lp := v.LP
	if v.Kind == types.Ptr && !v.IsNullPtr() {
		var err error
		if lp, err = r.rt.resolveLP(v.LP); err != nil {
			return err
		}
	}
	buf := make([]byte, len(r.data))
	copy(buf, r.data)
	enc := xdr.NewEncoder(12)
	enc.PutUint32(lp.Space)
	enc.PutUint32(uint32(lp.Addr))
	enc.PutUint32(uint32(lp.Type))
	off := r.canonicalElemOffset(i, idx)
	if off+12 > len(buf) {
		return fmt.Errorf("core: lazy pointer write beyond object")
	}
	copy(buf[off:], enc.Bytes())
	r.data = buf
	return r.rt.writeOne(r.lp, buf)
}

package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
)

// --- test transport: programmable send/receive faults ---

// flakyNode wraps a transport node with fault hooks. sendHook runs before
// every Send: returning errSwallowSend makes the frame vanish silently
// (the send "succeeds" but nothing is delivered), any other non-nil error
// fails the send, nil passes the frame through. recvHook runs on every
// received frame: deliver=false swallows it (the reply is lost), delay>0
// holds the receive loop that long before delivering (the reply is late).
// Hooks must be set before the runtime starts and manage their own state
// (use atomics: Send runs on application goroutines, Recv on the receive
// loop).
type flakyNode struct {
	transport.Node
	sendHook func(m wire.Message) error
	recvHook func(m wire.Message) (deliver bool, delay time.Duration)
}

var errSwallowSend = errors.New("flaky: frame swallowed")

func (f *flakyNode) Send(m wire.Message) error {
	if f.sendHook != nil {
		if err := f.sendHook(m); err != nil {
			if errors.Is(err, errSwallowSend) {
				return nil
			}
			return err
		}
	}
	return f.Node.Send(m)
}

func (f *flakyNode) Recv() (wire.Message, error) {
	for {
		m, err := f.Node.Recv()
		if err != nil || f.recvHook == nil {
			return m, err
		}
		deliver, delay := f.recvHook(m)
		if delay > 0 {
			time.Sleep(delay)
		}
		if !deliver {
			m.ReleaseFrame()
			continue
		}
		return m, nil
	}
}

// recoverNet builds a network with one plain origin (id 1) and one client
// (id 2) whose node is wrapped in a flakyNode. mut tweaks the client's
// options after the retry defaults are applied.
func recoverNet(t testing.TB, fn *flakyNode, mut func(o *Options)) (origin, client *Runtime, net *transport.Network) {
	t.Helper()
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	onode, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	origin, err = New(Options{ID: 1, Node: onode, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = origin.Close() })
	cnode, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	fn.Node = cnode
	o := Options{
		ID:          2,
		Node:        fn,
		Registry:    reg,
		CallTimeout: 150 * time.Millisecond,
		RetryBudget: 10 * time.Second,
	}
	if mut != nil {
		mut(&o)
	}
	client, err = New(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return origin, client, net
}

func importWalk(t testing.TB, client *Runtime, lp wire.LongPtr) int64 {
	t.Helper()
	v, err := client.ImportPtr(lp)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sumTree(client, v)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// --- backoff ---

func TestRetryBackoffDeterministicAndCapped(t *testing.T) {
	for attempt := 0; attempt < 12; attempt++ {
		d1 := retryBackoff(3, 77, attempt)
		d2 := retryBackoff(3, 77, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		base := retryBaseDelay << uint(attempt)
		if base > retryMaxDelay || base <= 0 {
			base = retryMaxDelay
		}
		if d1 < base/2 || d1 > base {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d1, base/2, base)
		}
	}
	// Distinct exchanges must desynchronize: over a handful of xids at the
	// same attempt, at least two delays differ.
	first := retryBackoff(1, 100, 2)
	varied := false
	for xid := uint64(101); xid < 110; xid++ {
		if retryBackoff(1, xid, 2) != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("backoff jitter is constant across exchange ids")
	}
}

// --- replay cache ---

func TestReplayCacheVerdicts(t *testing.T) {
	rc := newReplayCache()
	req := wire.Message{From: 2, Session: 9, Seq: wire.SeqWithAttempt(41, 0), Kind: wire.KindWriteBack}
	if v := rc.admit(req); v != admitExecute {
		t.Fatalf("first attempt verdict = %v, want execute", v)
	}
	// A retry arriving mid-execution is swallowed, and its newer seq
	// becomes the reply address.
	retry := req
	retry.Seq = wire.SeqWithAttempt(41, 1)
	if v := rc.admit(retry); v != admitSwallow {
		t.Fatalf("mid-execution retry verdict = %v, want swallow", v)
	}
	seq, ok := rc.complete(req, wire.KindWriteBackAck, []byte{1, 2}, "")
	if !ok || seq != retry.Seq {
		t.Fatalf("complete = (%d, %v), want (%d, true)", seq, ok, retry.Seq)
	}
	// A retry after completion replays.
	retry.Seq = wire.SeqWithAttempt(41, 2)
	if v := rc.admit(retry); v != admitReplay {
		t.Fatalf("post-completion retry verdict = %v, want replay", v)
	}
	// Completing twice is refused (the entry is already done).
	if _, ok := rc.complete(req, wire.KindWriteBackAck, nil, ""); ok {
		t.Error("second complete accepted")
	}
	// Dropping the session forgets the exchange entirely.
	rc.dropSession(9)
	if v := rc.admit(req); v != admitExecute {
		t.Fatalf("post-drop verdict = %v, want execute", v)
	}
	// A different exchange id is independent.
	other := wire.Message{From: 2, Session: 9, Seq: wire.SeqWithAttempt(42, 0), Kind: wire.KindCall}
	if v := rc.admit(other); v != admitExecute {
		t.Fatalf("distinct xid verdict = %v, want execute", v)
	}
}

func TestReplayCacheEviction(t *testing.T) {
	rc := newReplayCache()
	// One entry stays executing for the whole test: eviction must skip it.
	pinned := wire.Message{From: 3, Session: 1, Seq: wire.SeqWithAttempt(1, 0), Kind: wire.KindWriteBack}
	if v := rc.admit(pinned); v != admitExecute {
		t.Fatal("pinned admit refused")
	}
	for xid := uint64(2); xid < uint64(replayCacheEntries+200); xid++ {
		m := wire.Message{From: 3, Session: 1, Seq: wire.SeqWithAttempt(xid, 0), Kind: wire.KindWriteBack}
		if v := rc.admit(m); v != admitExecute {
			t.Fatalf("xid %d admit = %v, want execute", xid, v)
		}
		rc.complete(m, wire.KindWriteBackAck, nil, "")
	}
	rc.mu.Lock()
	n := len(rc.entries)
	rc.mu.Unlock()
	if n > replayCacheEntries {
		t.Errorf("cache holds %d entries, cap is %d", n, replayCacheEntries)
	}
	// The executing entry survived the churn.
	retry := pinned
	retry.Seq = wire.SeqWithAttempt(1, 1)
	if v := rc.admit(retry); v != admitSwallow {
		t.Errorf("pinned entry verdict after churn = %v, want swallow (still executing)", v)
	}
}

// --- breaker ---

func TestBreakerOpensShedsProbesCloses(t *testing.T) {
	caller, _ := pair(t, nil)
	const peer = 2
	for i := 0; i < breakerThreshold; i++ {
		caller.health.noteFailure(caller, peer)
	}
	if got := caller.Stats().BreakerOpens; got != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", got)
	}
	probes := 0
	for i := 0; i < breakerProbeEvery; i++ {
		if caller.health.allowSpec(caller, peer) {
			probes++
		}
	}
	if probes != 1 {
		t.Errorf("open breaker admitted %d of %d speculative launches, want exactly 1 probe", probes, breakerProbeEvery)
	}
	if got := caller.Stats().BreakerSheds; got != uint64(breakerProbeEvery-1) {
		t.Errorf("BreakerSheds = %d, want %d", got, breakerProbeEvery-1)
	}
	// Another origin is unaffected.
	if !caller.health.allowSpec(caller, 3) {
		t.Error("breaker for one origin shed speculation against another")
	}
	// One demand success closes the circuit.
	caller.health.noteSuccess(caller, peer)
	if !caller.health.allowSpec(caller, peer) {
		t.Error("speculation still shed after the breaker closed")
	}
	// Failures below the threshold never open it.
	caller.health.noteFailure(caller, peer)
	if !caller.health.allowSpec(caller, peer) {
		t.Error("a single failure opened the breaker")
	}
}

// --- transparent retry, end to end ---

func TestRetryRecoversFromSendErrors(t *testing.T) {
	var failed atomic.Int32
	fn := &flakyNode{sendHook: func(m wire.Message) error {
		if m.Kind == wire.KindFetch && failed.Add(1) <= 2 {
			return errors.New("flaky: link down")
		}
		return nil
	}}
	origin, client, _ := recoverNet(t, fn, nil)
	root := buildTree(t, origin, 4)
	lps := treeNodeLPs(t, origin, root)
	if err := client.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if got := importWalk(t, client, lps[0]); got != wantSum(4) {
		t.Errorf("sum = %d, want %d", got, wantSum(4))
	}
	if err := client.EndSession(); err != nil {
		t.Fatal(err)
	}
	st := client.Stats()
	if st.Retries < 2 {
		t.Errorf("Retries = %d, want >= 2", st.Retries)
	}
	if st.RetrySuccesses < 1 {
		t.Errorf("RetrySuccesses = %d, want >= 1", st.RetrySuccesses)
	}
	if st.RetriesExhausted != 0 {
		t.Errorf("RetriesExhausted = %d, want 0", st.RetriesExhausted)
	}
}

func TestRetryRecoversFromLostReplyAndDropsStale(t *testing.T) {
	// The first fetch reply is held past the client's deadline, then
	// delivered. The client must have moved on (retried), and the late
	// reply must be positively discarded — its frame released, the drop
	// counted — rather than matched to a dead exchange.
	var held atomic.Int32
	fn := &flakyNode{recvHook: func(m wire.Message) (bool, time.Duration) {
		if (m.Kind == wire.KindFetchReply || m.Kind == wire.KindFetchChunk) && held.CompareAndSwap(0, 1) {
			return true, 400 * time.Millisecond
		}
		return true, 0
	}}
	origin, client, _ := recoverNet(t, fn, nil)
	root := buildTree(t, origin, 3)
	lps := treeNodeLPs(t, origin, root)
	if err := client.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if got := importWalk(t, client, lps[0]); got != wantSum(3) {
		t.Errorf("sum = %d, want %d", got, wantSum(3))
	}
	if err := client.EndSession(); err != nil {
		t.Fatal(err)
	}
	st := client.Stats()
	if st.Retries < 1 {
		t.Errorf("Retries = %d, want >= 1", st.Retries)
	}
	if st.StaleReplyDrops < 1 {
		t.Errorf("StaleReplyDrops = %d, want >= 1 (the held reply arrived after its exchange died)", st.StaleReplyDrops)
	}
}

func TestRetriesExhaustedSurfacesError(t *testing.T) {
	fn := &flakyNode{sendHook: func(m wire.Message) error {
		if m.Kind == wire.KindFetch {
			return errors.New("flaky: link down")
		}
		return nil
	}}
	origin, client, _ := recoverNet(t, fn, func(o *Options) {
		o.RetryBudget = 200 * time.Millisecond
		o.MaxRetries = 2
	})
	root := buildTree(t, origin, 2)
	lps := treeNodeLPs(t, origin, root)
	if err := client.BeginSession(); err != nil {
		t.Fatal(err)
	}
	v, err := client.ImportPtr(lps[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sumTree(client, v); err == nil {
		t.Fatal("walk succeeded with every fetch send failing")
	}
	if got := client.Stats().RetriesExhausted; got < 1 {
		t.Errorf("RetriesExhausted = %d, want >= 1", got)
	}
}

// --- at-most-once execution under retries ---

func TestCallRetryExecutesExactlyOnce(t *testing.T) {
	// The origin's first Return is swallowed; the client times out and
	// retries the call. The origin's reply cache must answer the retry
	// without running the handler again.
	var swallowed atomic.Int32
	fn := &flakyNode{recvHook: func(m wire.Message) (bool, time.Duration) {
		if m.Kind == wire.KindReturn && swallowed.CompareAndSwap(0, 1) {
			return false, 0
		}
		return true, 0
	}}
	origin, client, _ := recoverNet(t, fn, nil)
	var runs atomic.Int32
	err := origin.Register("bump", func(*Ctx, []Value) ([]Value, error) {
		return []Value{Int64Value(int64(runs.Add(1)))}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.BeginSession(); err != nil {
		t.Fatal(err)
	}
	res, err := client.Call(1, "bump", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Int64(); got != 1 {
		t.Errorf("call result = %d, want 1", got)
	}
	if err := client.EndSession(); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("handler ran %d times, want exactly 1", got)
	}
	ost := origin.Stats()
	if ost.DedupReplays < 1 {
		t.Errorf("origin DedupReplays = %d, want >= 1", ost.DedupReplays)
	}
	if got := client.Stats().Retries; got < 1 {
		t.Errorf("client Retries = %d, want >= 1", got)
	}
}

func TestWriteBackRetryDedupedByOrigin(t *testing.T) {
	// The write-back's ack is swallowed once: the retried WRITEBACK must
	// be answered from the reply cache, not re-applied.
	var swallowed atomic.Int32
	fn := &flakyNode{recvHook: func(m wire.Message) (bool, time.Duration) {
		if m.Kind == wire.KindWriteBackAck && swallowed.CompareAndSwap(0, 1) {
			return false, 0
		}
		return true, 0
	}}
	origin, client, _ := recoverNet(t, fn, func(o *Options) {
		o.CheckInvariants = true
	})
	root := buildTree(t, origin, 2)
	lps := treeNodeLPs(t, origin, root)
	if err := client.BeginSession(); err != nil {
		t.Fatal(err)
	}
	v, err := client.ImportPtr(lps[0])
	if err != nil {
		t.Fatal(err)
	}
	ref, err := client.Deref(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetInt("data", 0, 7777); err != nil {
		t.Fatal(err)
	}
	if err := client.EndSession(); err != nil {
		t.Fatal(err)
	}
	ov, err := origin.ImportPtr(lps[0])
	if err != nil {
		t.Fatal(err)
	}
	oref, err := origin.Deref(ov)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := oref.Int("data", 0); err != nil || got != 7777 {
		t.Errorf("origin data = %d, %v; want 7777", got, err)
	}
	if got := origin.Stats().DedupReplays; got < 1 {
		t.Errorf("origin DedupReplays = %d, want >= 1", got)
	}
}

// --- incarnation fencing ---

func TestIncarnationFenceOnOriginRestart(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	mk := func(id, inc uint32) *Runtime {
		node, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(Options{ID: id, Node: node, Registry: reg, Incarnation: inc})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		return rt
	}
	origin := mk(1, 1)
	client := mk(2, 0)
	root := buildTree(t, origin, 3)
	lps := treeNodeLPs(t, origin, root)

	// Session 1 records the origin's incarnation (1) and leaves the
	// client holding warm state for it.
	if err := client.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if got := importWalk(t, client, lps[0]); got != wantSum(3) {
		t.Fatalf("session 1 sum = %d, want %d", got, wantSum(3))
	}
	if err := client.EndSession(); err != nil {
		t.Fatal(err)
	}

	// The origin crashes and restarts with a fresh heap.
	_ = origin.Close()
	_ = mk(1, 2)

	// The client's next exchange with the origin observes the new
	// incarnation and must fail typed — not retry, not silently degrade
	// into reading resurrected addresses.
	if err := client.BeginSession(); err != nil {
		t.Fatal(err)
	}
	v, err := client.ImportPtr(lps[0])
	if err != nil {
		t.Fatal(err)
	}
	_, err = sumTree(client, v)
	if !errors.Is(err, ErrOriginRestarted) {
		t.Fatalf("walk after origin restart: err = %v, want ErrOriginRestarted", err)
	}
	if got := client.Stats().FenceTrips; got < 1 {
		t.Errorf("FenceTrips = %d, want >= 1", got)
	}
}

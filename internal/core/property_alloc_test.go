package core

import (
	"fmt"
	"math/rand"
	"testing"

	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/vmem"
)

// Dynamic-allocation equivalence property: scripts that also create nodes
// in the owner's space via extended_malloc and release them via
// extended_free must leave the owner's reachable structure equal to the
// model's, and the owner's heap must end with exactly the live
// allocations (no leaks of freed nodes, no lost allocations).

// dynModel tracks k pool nodes plus dynamically created leaves hanging
// off pool nodes' left pointers.
type dynModel struct {
	data []int64 // pool node data
	// left[i]: -1 = null, >=0 = pool index, or ^dynIdx for a dynamic leaf
	left    []int
	dynData map[int]int64 // dynamic leaf id → data
	nextDyn int
}

func newDynModel(k int) *dynModel {
	m := &dynModel{
		data:    make([]int64, k),
		left:    make([]int, k),
		dynData: make(map[int]int64),
	}
	for i := range m.left {
		m.data[i] = int64(i + 1)
		m.left[i] = -1
	}
	return m
}

func (m *dynModel) dynRef(id int) int { return ^id }
func (m *dynModel) isDyn(v int) bool  { return v < -1 }
func (m *dynModel) dynID(v int) int   { return ^v }

func TestPropertyDynamicAllocation(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDynamicAllocProperty(t, seed)
		})
	}
}

func runDynamicAllocProperty(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const k = 8
	const nOps = 50

	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	mk := func(id uint32) *Runtime {
		node, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(Options{ID: id, Node: node, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		return rt
	}
	owner := mk(1)
	worker := mk(2)

	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// allocLeft creates a node in the OWNER's space, initializes it, and
	// hangs it off target.left.
	must(worker.Register("allocLeft", func(ctx *Ctx, args []Value) ([]Value, error) {
		rt := ctx.Runtime()
		fresh, err := rt.ExtendedMalloc(ctx.Caller(), nodeType)
		if err != nil {
			return nil, err
		}
		fref, err := rt.Deref(fresh)
		if err != nil {
			return nil, err
		}
		if err := fref.SetInt("data", 0, args[1].Int64()); err != nil {
			return nil, err
		}
		tref, err := rt.Deref(args[0])
		if err != nil {
			return nil, err
		}
		return nil, tref.SetPtr("left", 0, fresh)
	}))
	// unlinkLeft detaches target.left; when free is true it also releases
	// the detached node's storage in its origin space.
	must(worker.Register("unlinkLeft", func(ctx *Ctx, args []Value) ([]Value, error) {
		rt := ctx.Runtime()
		tref, err := rt.Deref(args[0])
		if err != nil {
			return nil, err
		}
		victim, err := tref.Ptr("left", 0)
		if err != nil {
			return nil, err
		}
		if victim.IsNullPtr() {
			return nil, nil
		}
		if err := tref.SetPtr("left", 0, NullPtr(nodeType)); err != nil {
			return nil, err
		}
		if args[1].Bool() {
			return nil, rt.ExtendedFree(victim)
		}
		return nil, nil
	}))
	// linkLeft points target.left at another pool node (or null).
	must(worker.Register("linkLeft", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		return nil, ref.SetPtr("left", 0, args[1])
	}))
	must(worker.Register("setData", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		return nil, ref.SetInt("data", 0, args[1].Int64())
	}))

	nodes := make([]Value, k)
	for i := range nodes {
		v, err := owner.NewObject(nodeType)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := owner.Deref(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.SetInt("data", 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
		nodes[i] = v
	}
	m := newDynModel(k)
	heapBase := owner.Space().HeapInUse()

	if err := owner.BeginSession(); err != nil {
		t.Fatal(err)
	}
	for op := 0; op < nOps; op++ {
		target := rng.Intn(k)
		switch rng.Intn(4) {
		case 0: // allocLeft
			val := rng.Int63n(1 << 30)
			_, err := owner.Call(2, "allocLeft", []Value{nodes[target], Int64Value(val)})
			if err != nil {
				t.Fatalf("op %d allocLeft: %v", op, err)
			}
			// The old left (if a dynamic leaf) becomes unreachable but is
			// NOT freed — exactly like C, that is a leak the model tracks.
			id := m.nextDyn
			m.nextDyn++
			m.dynData[id] = val
			m.left[target] = m.dynRef(id)
		case 1: // unlinkLeft, freeing dynamic leaves
			cur := m.left[target]
			freeIt := m.isDyn(cur) // only dynamic leaves are ever freed
			_, err := owner.Call(2, "unlinkLeft", []Value{nodes[target], BoolValue(freeIt)})
			if err != nil {
				t.Fatalf("op %d unlinkLeft: %v", op, err)
			}
			if freeIt {
				delete(m.dynData, m.dynID(cur))
			}
			m.left[target] = -1
		case 2: // linkLeft to a pool node or null
			other := rng.Intn(k+1) - 1
			arg := NullPtr(nodeType)
			if other >= 0 {
				arg = nodes[other]
			}
			_, err := owner.Call(2, "linkLeft", []Value{nodes[target], arg})
			if err != nil {
				t.Fatalf("op %d linkLeft: %v", op, err)
			}
			if other >= 0 {
				m.left[target] = other
			} else {
				m.left[target] = -1
			}
		case 3: // setData
			val := rng.Int63n(1 << 30)
			_, err := owner.Call(2, "setData", []Value{nodes[target], Int64Value(val)})
			if err != nil {
				t.Fatalf("op %d setData: %v", op, err)
			}
			m.data[target] = val
		}
	}
	if err := owner.EndSession(); err != nil {
		t.Fatal(err)
	}

	// Verify reachable structure against the model.
	addrToIdx := make(map[vmem.VAddr]int, k)
	for i, v := range nodes {
		addrToIdx[v.Addr] = i
	}
	liveDynAddrs := make(map[vmem.VAddr]bool)
	for i, v := range nodes {
		ref, err := owner.Deref(v)
		if err != nil {
			t.Fatal(err)
		}
		d, err := ref.Int("data", 0)
		if err != nil {
			t.Fatal(err)
		}
		if d != m.data[i] {
			t.Errorf("pool node %d data = %d, model %d", i, d, m.data[i])
		}
		l, err := ref.Ptr("left", 0)
		if err != nil {
			t.Fatal(err)
		}
		want := m.left[i]
		switch {
		case want == -1:
			if !l.IsNullPtr() {
				t.Errorf("pool node %d left = %#x, model null", i, uint32(l.Addr))
			}
		case m.isDyn(want):
			if l.IsNullPtr() {
				t.Fatalf("pool node %d left null, model dynamic leaf", i)
			}
			if !owner.Space().InHeap(l.Addr) {
				t.Errorf("dynamic leaf at %#x not in owner's heap", uint32(l.Addr))
			}
			liveDynAddrs[l.Addr] = true
			lref, err := owner.Deref(l)
			if err != nil {
				t.Fatal(err)
			}
			ld, err := lref.Int("data", 0)
			if err != nil {
				t.Fatal(err)
			}
			if wantD := m.dynData[m.dynID(want)]; ld != wantD {
				t.Errorf("dynamic leaf of pool %d data = %d, model %d", i, ld, wantD)
			}
		default:
			if got, ok := addrToIdx[l.Addr]; !ok || got != want {
				t.Errorf("pool node %d left -> %d (ok=%v), model %d", i, got, ok, want)
			}
		}
	}

	// Heap accounting: pool nodes plus every dynamic allocation that was
	// never freed (still linked, or leaked by overwriting the left
	// pointer — exactly C's semantics) remain live; freed ones are gone.
	perNode := heapBase / k
	wantHeap := heapBase + len(m.dynData)*perNode
	if got := owner.Space().HeapInUse(); got != wantHeap {
		t.Errorf("owner heap = %d bytes, want %d (base %d, unfreed dynamic %d, per-node %d)",
			got, wantHeap, heapBase, len(m.dynData), perNode)
	}
}

package core

import (
	"sync"

	"smartrpc/internal/wire"
)

// pendingShardCount is the number of lock stripes in the pending reply
// table. Power of two so the shard pick is a mask. Sixteen stripes keep
// the table's footprint trivial while pushing mutex collisions below
// measurement noise even when the prefetcher, the fan-out fetch path, and
// concurrent application goroutines all have replies outstanding at once
// (see BenchmarkPendingTable in pipeline_test.go for the measured win
// over the single-mutex map this replaces).
const pendingShardCount = 16

// pendingShard is one stripe: a mutex and the maps of waiters for the
// sequence numbers hashing to it — one-shot reply channels (m) and
// stream buffers for exchanges whose reply may arrive as a chunk
// sequence (st, lazily allocated: only fetch/validate requests stream).
type pendingShard struct {
	mu sync.Mutex
	m  map[uint64]chan wire.Message
	st map[uint64]*streamBuf
}

// pendingTable tracks the in-flight request sequence numbers awaiting
// replies, lock-striped by sequence number. Sequence numbers come from a
// single atomic counter, so consecutive requests land on consecutive
// shards — concurrent senders almost never contend.
type pendingTable struct {
	shards [pendingShardCount]pendingShard
}

func newPendingTable() *pendingTable {
	t := &pendingTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]chan wire.Message)
	}
	return t
}

func (t *pendingTable) shard(seq uint64) *pendingShard {
	return &t.shards[seq&(pendingShardCount-1)]
}

// put registers a reply channel for seq.
func (t *pendingTable) put(seq uint64, ch chan wire.Message) {
	s := t.shard(seq)
	s.mu.Lock()
	s.m[seq] = ch
	s.mu.Unlock()
}

// take removes and returns the channel registered for seq, if any. The
// dispatcher uses it to claim a reply's waiter exactly once.
func (t *pendingTable) take(seq uint64) (chan wire.Message, bool) {
	s := t.shard(seq)
	s.mu.Lock()
	ch, ok := s.m[seq]
	if ok {
		delete(s.m, seq)
	}
	s.mu.Unlock()
	return ch, ok
}

// drop removes seq's entry without returning it (request cleanup paths).
func (t *pendingTable) drop(seq uint64) {
	s := t.shard(seq)
	s.mu.Lock()
	delete(s.m, seq)
	s.mu.Unlock()
}

// putStream registers a stream buffer for seq (stream-capable requests).
func (t *pendingTable) putStream(seq uint64, sb *streamBuf) {
	s := t.shard(seq)
	s.mu.Lock()
	if s.st == nil {
		s.st = make(map[uint64]*streamBuf)
	}
	s.st[seq] = sb
	s.mu.Unlock()
}

// peekStream returns the stream buffer registered for seq without
// removing it: non-final chunks leave the exchange open for the rest of
// the sequence.
func (t *pendingTable) peekStream(seq uint64) (*streamBuf, bool) {
	s := t.shard(seq)
	s.mu.Lock()
	sb, ok := s.st[seq]
	s.mu.Unlock()
	return sb, ok
}

// takeStream removes and returns the stream buffer registered for seq:
// a final chunk (or a monolithic reply to a stream-capable request)
// closes the exchange's registration.
func (t *pendingTable) takeStream(seq uint64) (*streamBuf, bool) {
	s := t.shard(seq)
	s.mu.Lock()
	sb, ok := s.st[seq]
	if ok {
		delete(s.st, seq)
	}
	s.mu.Unlock()
	return sb, ok
}

// dropStream removes seq's stream registration (cleanup paths).
func (t *pendingTable) dropStream(seq uint64) {
	s := t.shard(seq)
	s.mu.Lock()
	delete(s.st, seq)
	s.mu.Unlock()
}

// drain removes every entry and fails its waiter — channels close,
// stream buffers fail. Only the shutdown path calls it.
func (t *pendingTable) drain() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for seq, ch := range s.m {
			close(ch)
			delete(s.m, seq)
		}
		streams := make([]*streamBuf, 0, len(s.st))
		for seq, sb := range s.st {
			streams = append(streams, sb)
			delete(s.st, seq)
		}
		s.mu.Unlock()
		// Fail outside the shard lock: fail releases queued frame
		// buffers, which is pure pool work but has no business under
		// the stripe mutex.
		for _, sb := range streams {
			sb.fail()
		}
	}
}

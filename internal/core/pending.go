package core

import (
	"sync"

	"smartrpc/internal/wire"
)

// pendingShardCount is the number of lock stripes in the pending reply
// table. Power of two so the shard pick is a mask. Sixteen stripes keep
// the table's footprint trivial while pushing mutex collisions below
// measurement noise even when the prefetcher, the fan-out fetch path, and
// concurrent application goroutines all have replies outstanding at once
// (see BenchmarkPendingTable in pipeline_test.go for the measured win
// over the single-mutex map this replaces).
const pendingShardCount = 16

// pendingShard is one stripe: a mutex and the map of reply channels for
// the sequence numbers hashing to it.
type pendingShard struct {
	mu sync.Mutex
	m  map[uint64]chan wire.Message
}

// pendingTable tracks the in-flight request sequence numbers awaiting
// replies, lock-striped by sequence number. Sequence numbers come from a
// single atomic counter, so consecutive requests land on consecutive
// shards — concurrent senders almost never contend.
type pendingTable struct {
	shards [pendingShardCount]pendingShard
}

func newPendingTable() *pendingTable {
	t := &pendingTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]chan wire.Message)
	}
	return t
}

func (t *pendingTable) shard(seq uint64) *pendingShard {
	return &t.shards[seq&(pendingShardCount-1)]
}

// put registers a reply channel for seq.
func (t *pendingTable) put(seq uint64, ch chan wire.Message) {
	s := t.shard(seq)
	s.mu.Lock()
	s.m[seq] = ch
	s.mu.Unlock()
}

// take removes and returns the channel registered for seq, if any. The
// dispatcher uses it to claim a reply's waiter exactly once.
func (t *pendingTable) take(seq uint64) (chan wire.Message, bool) {
	s := t.shard(seq)
	s.mu.Lock()
	ch, ok := s.m[seq]
	if ok {
		delete(s.m, seq)
	}
	s.mu.Unlock()
	return ch, ok
}

// drop removes seq's entry without returning it (request cleanup paths).
func (t *pendingTable) drop(seq uint64) {
	s := t.shard(seq)
	s.mu.Lock()
	delete(s.m, seq)
	s.mu.Unlock()
}

// drain removes every entry and closes its channel, failing all waiters.
// Only the shutdown path calls it.
func (t *pendingTable) drain() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for seq, ch := range s.m {
			close(ch)
			delete(s.m, seq)
		}
		s.mu.Unlock()
	}
}

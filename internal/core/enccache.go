package core

import (
	"sync"
	"sync/atomic"

	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
)

// This file implements the origin-side encode cache. The paper's origin
// re-marshals every served object per request, so N clients chasing the
// same hot structure pay the encode cost N times for byte-identical
// output. The cache memoizes the canonical full-form encoding produced
// by encodeObjectInto, keyed by the object's heap address, and amortizes
// the marshaling work across consumers — origin CPU and allocations per
// served fetch drop, while the bytes on the wire are exactly the ones a
// fresh encode would have produced.
//
// Correctness rests on making a stale entry unreachable by construction,
// not on hunting down every mutation site:
//
//   - Every heap page carries a write-version counter (vmem.HeapVersion)
//     advanced by every store, zero, or free touching the page. An entry
//     records the versions of the pages its object spanned at encode
//     time; a lookup revalidates them and drops the entry on mismatch.
//     Local writes, write-back installs, batched frees, and lazy-mode
//     write-throughs all funnel through vmem stores, so they invalidate
//     without knowing the cache exists. Hot protocol paths additionally
//     invalidate proactively (rt.encInvalidate) so the counters are
//     deterministic, but safety never depends on it.
//   - Only heap-pure encodings are admitted (encodeObjectInto): an
//     object whose pointer field aims into the cache region unswizzles
//     through data-allocation-table state that can change with no heap
//     write, which no page-version check could detect.
//   - Publishing snapshots the page versions BEFORE the encode and
//     re-checks them at insert, so an encode raced by a writer (possible
//     under Options.Concurrent) is simply not published.
//   - A crash-restart is cold by construction: the cache hangs off the
//     Runtime and dies with it.
//
// The cache is origin-local bookkeeping with zero wire-format change.
// Per-edge delta/cohstate forms stay per-edge; only the shared full-form
// body is cached. Capacity is bounded by Options.EncodeCacheBytes,
// enforced per shard with CLOCK (second-chance) eviction; the 16-way
// striping copies the pendingTable pattern so concurrent serves from
// different clients do not contend on one mutex.

const (
	// encShardCount stripes the cache; power of two (shard index is a
	// hash of the object address).
	encShardCount = 16
	// defaultEncodeCacheBytes is the Options.EncodeCacheBytes default.
	defaultEncodeCacheBytes = 4 << 20
	// encMaxSpanPages bounds the per-entry version vector. Objects
	// spanning more pages than this are served uncached — with 4 KiB
	// pages that is only reached by objects past 12 KiB.
	encMaxSpanPages = 4
)

// encPre is the page-version snapshot bracketing one encode: taken
// before the object is read, re-checked when the result is published.
type encPre struct {
	firstPN uint32
	n       int
	vers    [encMaxSpanPages]uint32
}

// encEntry is one cached encoding. bytes is immutable once published;
// sum is its FNV-1a content hash (wire.Sum64), which serveValidate
// compares against offered revalidation hashes and the invariant checker
// compares against a live re-encode.
type encEntry struct {
	lp    wire.LongPtr
	sum   uint64
	bytes []byte
	pre   encPre
	idx   int  // position in the shard ring (ring[idx] is this entry's key)
	ref   bool // CLOCK reference bit
}

// encShard is one stripe: a map for lookup plus a ring of keys the CLOCK
// hand sweeps. The ring holds exactly the map's keys (removal
// swap-deletes and patches the moved entry's idx), so it never
// accumulates holes. Entries live in the map by value — publishing tens
// of thousands of boxed entries during a large transfer made this the
// second-largest allocation site of the serve path, and every mutation
// site below is a single read-modify-write under the shard lock anyway.
type encShard struct {
	mu    sync.Mutex
	m     map[vmem.VAddr]encEntry
	ring  []vmem.VAddr
	hand  int
	bytes int
}

// encSnapshot is one entry's identity as seen by the invariant checker.
type encSnapshot struct {
	lp  wire.LongPtr
	sum uint64
	pre encPre
}

// encCache is the striped, byte-capped encode cache.
type encCache struct {
	space  *vmem.Space
	perCap int // byte budget per shard

	bytes         atomic.Int64
	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64

	shards [encShardCount]encShard
}

func newEncCache(space *vmem.Space, capBytes int) *encCache {
	if capBytes <= 0 {
		capBytes = defaultEncodeCacheBytes
	}
	perCap := capBytes / encShardCount
	if perCap < 1 {
		perCap = 1
	}
	c := &encCache{space: space, perCap: perCap}
	for i := range c.shards {
		c.shards[i].m = make(map[vmem.VAddr]encEntry)
	}
	return c
}

// shardOf picks the stripe for an object address. Heap addresses are
// aligned, so the low bits are poor discriminators; the multiplicative
// hash spreads them.
func (c *encCache) shardOf(addr vmem.VAddr) *encShard {
	h := uint32(addr) * 2654435761
	return &c.shards[h>>28&(encShardCount-1)]
}

// prepare snapshots the write versions of the heap pages an object at
// [addr, addr+size) spans. ok is false when the object is uncacheable
// (not in the heap, or spanning more pages than the version vector
// holds); the caller then encodes without consulting or feeding the
// cache.
func (c *encCache) prepare(addr vmem.VAddr, size int) (pre encPre, ok bool) {
	if size <= 0 || !c.space.InHeap(addr) {
		return pre, false
	}
	first := c.space.PageOf(addr)
	last := c.space.PageOf(addr + vmem.VAddr(size-1))
	n := int(last-first) + 1
	if n > encMaxSpanPages {
		return pre, false
	}
	pre.firstPN = first
	pre.n = n
	for i := 0; i < n; i++ {
		pre.vers[i] = c.space.HeapVersion(first + uint32(i))
	}
	return pre, true
}

// current reports whether the snapshot still matches the live page
// versions.
func (c *encCache) current(pre encPre) bool {
	for i := 0; i < pre.n; i++ {
		if c.space.HeapVersion(pre.firstPN+uint32(i)) != pre.vers[i] {
			return false
		}
	}
	return true
}

// lookup returns the cached encoding for lp if one exists and its page
// versions still match. A version mismatch (or an address reused by a
// different datum) drops the entry and counts an invalidation on top of
// the miss — that is the lazy half of the invalidation story.
func (c *encCache) lookup(lp wire.LongPtr) ([]byte, uint64, bool) {
	s := c.shardOf(lp.Addr)
	s.mu.Lock()
	e, ok := s.m[lp.Addr]
	if ok && (e.lp != lp || !c.current(e.pre)) {
		c.dropLocked(s, lp.Addr, e)
		c.invalidations.Add(1)
		ok = false
	}
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, 0, false
	}
	if !e.ref {
		e.ref = true
		s.m[lp.Addr] = e
	}
	b, sum := e.bytes, e.sum
	s.mu.Unlock()
	c.hits.Add(1)
	return b, sum, true
}

// publish inserts one freshly encoded body, provided the page versions
// still match the pre-encode snapshot (a concurrent writer raced the
// encode otherwise) and the body fits a shard's budget at all. evicted
// is how many colder entries the CLOCK hand displaced to make room.
func (c *encCache) publish(lp wire.LongPtr, pre encPre, sum uint64, b []byte) (published bool, evicted int) {
	if len(b) > c.perCap || !c.current(pre) {
		return false, 0
	}
	s := c.shardOf(lp.Addr)
	s.mu.Lock()
	if e, ok := s.m[lp.Addr]; ok {
		// Replace in place; the key keeps its ring slot.
		s.bytes -= len(e.bytes)
		c.bytes.Add(-int64(len(e.bytes)))
		s.m[lp.Addr] = encEntry{lp: lp, sum: sum, bytes: b, pre: pre, idx: e.idx}
	} else {
		s.m[lp.Addr] = encEntry{lp: lp, sum: sum, bytes: b, pre: pre, idx: len(s.ring)}
		s.ring = append(s.ring, lp.Addr)
	}
	s.bytes += len(b)
	c.bytes.Add(int64(len(b)))
	evicted = c.evictLocked(s)
	s.mu.Unlock()
	return true, evicted
}

// evictLocked runs the CLOCK hand until the shard is back under budget:
// referenced entries get a second chance (bit cleared, hand moves on),
// unreferenced ones are evicted. Called with s.mu held.
func (c *encCache) evictLocked(s *encShard) int {
	n := 0
	for s.bytes > c.perCap && len(s.ring) > 0 {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		addr := s.ring[s.hand]
		e := s.m[addr]
		if e.ref {
			e.ref = false
			s.m[addr] = e
			s.hand++
			continue
		}
		c.dropLocked(s, addr, e)
		c.evictions.Add(1)
		n++
	}
	return n
}

// dropLocked removes one entry from the map and swap-deletes its ring
// slot, patching the moved key's recorded index. Called with s.mu held.
func (c *encCache) dropLocked(s *encShard, addr vmem.VAddr, e encEntry) {
	delete(s.m, addr)
	s.bytes -= len(e.bytes)
	c.bytes.Add(-int64(len(e.bytes)))
	last := len(s.ring) - 1
	moved := s.ring[last]
	s.ring[e.idx] = moved
	s.ring = s.ring[:last]
	if me, ok := s.m[moved]; ok {
		me.idx = e.idx
		s.m[moved] = me
	}
}

// invalidate proactively drops the entry for one heap object, reporting
// whether one existed. The version counters already make stale entries
// unreachable; the proactive drop frees the memory immediately and keeps
// the invalidation counter deterministic for the protocol paths that
// know they just overwrote an object (write-back installs, frees).
func (c *encCache) invalidate(addr vmem.VAddr) bool {
	s := c.shardOf(addr)
	s.mu.Lock()
	e, ok := s.m[addr]
	if ok {
		c.dropLocked(s, addr, e)
	}
	s.mu.Unlock()
	if ok {
		c.invalidations.Add(1)
		return true
	}
	return false
}

// snapshot lists every entry's identity for the invariant checker.
func (c *encCache) snapshot() []encSnapshot {
	var out []encSnapshot
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.m {
			out = append(out, encSnapshot{lp: e.lp, sum: e.sum, pre: e.pre})
		}
		s.mu.Unlock()
	}
	return out
}

// --- runtime wiring ---

// encLookup consults the encode cache for lp's canonical body; a nil
// cache (DisableEncodeCache) misses without counting.
func (rt *Runtime) encLookup(lp wire.LongPtr) ([]byte, uint64, bool) {
	if rt.enc == nil {
		return nil, 0, false
	}
	return rt.enc.lookup(lp)
}

// encPrepare snapshots page versions ahead of an encode destined for the
// cache; ok is false when caching is off or the object is uncacheable.
func (rt *Runtime) encPrepare(addr vmem.VAddr, size int) (encPre, bool) {
	if rt.enc == nil {
		return encPre{}, false
	}
	return rt.enc.prepare(addr, size)
}

// encPublish feeds one freshly encoded, heap-pure body into the cache
// and traces any evictions it caused. b must be immutable from here on.
func (rt *Runtime) encPublish(lp wire.LongPtr, pre encPre, b []byte) {
	if rt.enc == nil {
		return
	}
	_, evicted := rt.enc.publish(lp, pre, wire.Sum64(b), b)
	if evicted > 0 {
		rt.trace(Event{Kind: EvEncCacheEvict, Count: evicted})
	}
}

// encInvalidate proactively drops lp's cache entry after a known
// overwrite or free of a local heap object.
func (rt *Runtime) encInvalidate(addr vmem.VAddr) {
	if rt.enc == nil {
		return
	}
	if rt.enc.invalidate(addr) {
		rt.trace(Event{Kind: EvEncCacheInvalidate, Page: rt.space.PageOf(addr)})
	}
}

// encTraceServe emits the per-serve aggregated hit/miss events (one
// event per serve rather than one per item, to keep tracer volume
// proportional to messages, not objects).
func (rt *Runtime) encTraceServe(hits, misses int) {
	if rt.enc == nil {
		return
	}
	if hits > 0 {
		rt.trace(Event{Kind: EvEncCacheHit, Count: hits})
	}
	if misses > 0 {
		rt.trace(Event{Kind: EvEncCacheMiss, Count: misses})
	}
}

// checkEncCacheInvariant verifies the cache's core promise: every entry
// whose page-version snapshot is still current re-encodes to the same
// content hash. (Entries with drifted versions are unreachable — lookup
// would drop them — so they are vacuously safe and skipped.) Called from
// CheckLocalInvariants.
func (rt *Runtime) checkEncCacheInvariant() error {
	if rt.enc == nil {
		return nil
	}
	for _, sn := range rt.enc.snapshot() {
		if !rt.enc.current(sn.pre) {
			continue
		}
		rv, err := rt.res.Resolve(sn.lp.Type)
		if err != nil {
			return invariantErr(rt.id, "encode-cache entry %v has unresolvable type: %v", sn.lp, err)
		}
		live, err := encodeObject(rt.space, rt.table, rt.res, rv.Desc, sn.lp.Addr)
		if err != nil {
			return invariantErr(rt.id, "encode-cache entry %v: live re-encode failed: %v", sn.lp, err)
		}
		if wire.Sum64(live) != sn.sum {
			return invariantErr(rt.id,
				"encode-cache entry %v is version-current but its bytes diverge from a live re-encode", sn.lp)
		}
	}
	return nil
}

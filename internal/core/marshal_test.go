package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"smartrpc/internal/arch"
	"smartrpc/internal/swizzle"
	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
)

// mixedDesc exercises every scalar kind plus pointers and arrays.
func mixedDesc() *types.Desc {
	return &types.Desc{
		ID:   9,
		Name: "Mixed",
		Fields: []types.Field{
			{Name: "i8", Kind: types.Int8},
			{Name: "u8", Kind: types.Uint8},
			{Name: "i16", Kind: types.Int16},
			{Name: "u16", Kind: types.Uint16},
			{Name: "i32", Kind: types.Int32},
			{Name: "u32", Kind: types.Uint32},
			{Name: "i64", Kind: types.Int64},
			{Name: "u64", Kind: types.Uint64},
			{Name: "f32", Kind: types.Float32},
			{Name: "f64", Kind: types.Float64},
			{Name: "ok", Kind: types.Bool},
			{Name: "arr", Kind: types.Uint16, Count: 3},
			{Name: "self", Kind: types.Ptr, Elem: 9},
		},
	}
}

func marshalFixture(t testing.TB, profile arch.Profile) (*vmem.Space, *swizzle.Table, *types.Registry) {
	t.Helper()
	sp, err := vmem.NewSpace(vmem.Config{Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	reg := types.NewRegistry()
	reg.MustRegister(mixedDesc())
	return sp, swizzle.New(sp, reg, 1, swizzle.PolicyPerOrigin), reg
}

// writeMixed stores deterministic values derived from seed into a Mixed
// object at addr.
func writeMixed(t testing.TB, sp *vmem.Space, reg *types.Registry, addr vmem.VAddr, seed int64) {
	t.Helper()
	d := mixedDesc()
	layout, err := reg.Layout(d.ID, sp.Profile())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i, f := range d.Fields {
		if f.Kind == types.Ptr {
			continue
		}
		count := f.Count
		if count <= 1 {
			count = 1
		}
		fl := layout.Fields[i]
		for e := 0; e < count; e++ {
			v := rng.Uint64()
			if f.Kind == types.Bool {
				v &= 1
			}
			off := addr + vmem.VAddr(fl.Offset+e*fl.ElemSize)
			if err := sp.WriteUintRaw(off, fl.ElemSize, v); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestEncodeObjectDeterministic(t *testing.T) {
	sp, tb, reg := marshalFixture(t, arch.SPARC32())
	d, _ := reg.Lookup(9)
	layout, _ := reg.Layout(9, sp.Profile())
	addr, err := sp.Alloc(layout.Size, layout.Align)
	if err != nil {
		t.Fatal(err)
	}
	writeMixed(t, sp, reg, addr, 42)
	b1, err := encodeObject(sp, tb, reg.ResolverFor(sp.Profile()), d, addr)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := encodeObject(sp, tb, reg.ResolverFor(sp.Profile()), d, addr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("encoding not deterministic")
	}
	if len(b1) != d.CanonicalSize() {
		t.Errorf("encoded %d bytes, canonical size %d", len(b1), d.CanonicalSize())
	}
}

// TestCrossArchitectureRoundTrip is the heterogeneity core property: an
// object encoded on one architecture and decoded on another must re-encode
// to identical canonical bytes, for every ordered pair of profiles.
func TestCrossArchitectureRoundTrip(t *testing.T) {
	profiles := []arch.Profile{arch.SPARC32(), arch.Alpha64(), arch.M68K32()}
	for _, src := range profiles {
		for _, dst := range profiles {
			srcSp, srcTb, reg := marshalFixture(t, src)
			d, _ := reg.Lookup(9)
			layout, _ := reg.Layout(9, src)
			addr, err := srcSp.Alloc(layout.Size, layout.Align)
			if err != nil {
				t.Fatal(err)
			}
			writeMixed(t, srcSp, reg, addr, 7)
			canonical, err := encodeObject(srcSp, srcTb, reg.ResolverFor(srcSp.Profile()), d, addr)
			if err != nil {
				t.Fatal(err)
			}

			dstSp, dstTb, dstReg := marshalFixture(t, dst)
			dstLayout, _ := dstReg.Layout(9, dst)
			dstD, _ := dstReg.Lookup(9)
			dstAddr, err := dstSp.Alloc(dstLayout.Size, dstLayout.Align)
			if err != nil {
				t.Fatal(err)
			}
			if err := decodeObject(dstSp, dstTb, dstReg.ResolverFor(dstSp.Profile()), dstD, dstAddr, canonical); err != nil {
				t.Fatalf("%s->%s decode: %v", src.Name, dst.Name, err)
			}
			back, err := encodeObject(dstSp, dstTb, dstReg.ResolverFor(dstSp.Profile()), dstD, dstAddr)
			if err != nil {
				t.Fatalf("%s->%s re-encode: %v", src.Name, dst.Name, err)
			}
			if !bytes.Equal(canonical, back) {
				t.Errorf("%s->%s canonical mismatch:\n src %x\nback %x", src.Name, dst.Name, canonical, back)
			}
		}
	}
}

func TestQuickCrossArchScalars(t *testing.T) {
	profiles := []arch.Profile{arch.SPARC32(), arch.Alpha64(), arch.M68K32()}
	f := func(seed int64, srcIdx, dstIdx uint8) bool {
		src := profiles[int(srcIdx)%len(profiles)]
		dst := profiles[int(dstIdx)%len(profiles)]
		srcSp, err := vmem.NewSpace(vmem.Config{Profile: src})
		if err != nil {
			return false
		}
		reg := types.NewRegistry()
		reg.MustRegister(mixedDesc())
		srcTb := swizzle.New(srcSp, reg, 1, swizzle.PolicyPerOrigin)
		layout, err := reg.Layout(9, src)
		if err != nil {
			return false
		}
		addr, err := srcSp.Alloc(layout.Size, layout.Align)
		if err != nil {
			return false
		}
		d, _ := reg.Lookup(9)
		rng := rand.New(rand.NewSource(seed))
		for i, fld := range d.Fields {
			if fld.Kind == types.Ptr {
				continue
			}
			count := fld.Count
			if count <= 1 {
				count = 1
			}
			fl := layout.Fields[i]
			for e := 0; e < count; e++ {
				v := rng.Uint64()
				if fld.Kind == types.Bool {
					v &= 1
				}
				if err := srcSp.WriteUintRaw(addr+vmem.VAddr(fl.Offset+e*fl.ElemSize), fl.ElemSize, v); err != nil {
					return false
				}
			}
		}
		canonical, err := encodeObject(srcSp, srcTb, reg.ResolverFor(srcSp.Profile()), d, addr)
		if err != nil {
			return false
		}
		dstSp, err := vmem.NewSpace(vmem.Config{Profile: dst})
		if err != nil {
			return false
		}
		dstTb := swizzle.New(dstSp, reg, 1, swizzle.PolicyPerOrigin)
		dstLayout, err := reg.Layout(9, dst)
		if err != nil {
			return false
		}
		dstAddr, err := dstSp.Alloc(dstLayout.Size, dstLayout.Align)
		if err != nil {
			return false
		}
		if err := decodeObject(dstSp, dstTb, reg.ResolverFor(dstSp.Profile()), d, dstAddr, canonical); err != nil {
			return false
		}
		back, err := encodeObject(dstSp, dstTb, reg.ResolverFor(dstSp.Profile()), d, dstAddr)
		if err != nil {
			return false
		}
		return bytes.Equal(canonical, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDecodeObjectSwizzlesPointers(t *testing.T) {
	sp, tb, reg := marshalFixture(t, arch.SPARC32())
	d, _ := reg.Lookup(9)
	layout, _ := reg.Layout(9, sp.Profile())
	addr, err := sp.Alloc(layout.Size, layout.Align)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical bytes with a foreign pointer in the "self" field.
	canonical := make([]byte, d.CanonicalSize())
	selfIdx := d.FieldIndex("self")
	off := d.CanonicalFieldOffset(selfIdx)
	// space=2, addr=0x5000, type=9, big-endian words.
	canonical[off+3] = 2
	canonical[off+4] = 0
	canonical[off+5] = 0
	canonical[off+6] = 0x50
	canonical[off+7] = 0
	canonical[off+11] = 9
	if err := decodeObject(sp, tb, reg.ResolverFor(sp.Profile()), d, addr, canonical); err != nil {
		t.Fatal(err)
	}
	ptrOff := layout.Fields[selfIdx].Offset
	pv, err := sp.ReadPtrRaw(addr + vmem.VAddr(ptrOff))
	if err != nil {
		t.Fatal(err)
	}
	if pv == vmem.Null || !sp.InCache(pv) {
		t.Errorf("foreign pointer swizzled to %#x, want cache address", uint32(pv))
	}
	// The table now knows the identity.
	lp, err := tb.Unswizzle(pv, 9)
	if err != nil || lp.Space != 2 || lp.Addr != 0x5000 {
		t.Errorf("unswizzle = %v, %v", lp, err)
	}
}

func TestDecodeObjectTruncatedFails(t *testing.T) {
	sp, tb, reg := marshalFixture(t, arch.SPARC32())
	d, _ := reg.Lookup(9)
	layout, _ := reg.Layout(9, sp.Profile())
	addr, err := sp.Alloc(layout.Size, layout.Align)
	if err != nil {
		t.Fatal(err)
	}
	short := make([]byte, d.CanonicalSize()-4)
	if err := decodeObject(sp, tb, reg.ResolverFor(sp.Profile()), d, addr, short); err == nil {
		t.Error("truncated canonical data accepted")
	}
}

func TestSignExtensionAcrossEncode(t *testing.T) {
	sp, tb, reg := marshalFixture(t, arch.SPARC32())
	d, _ := reg.Lookup(9)
	layout, _ := reg.Layout(9, sp.Profile())
	addr, err := sp.Alloc(layout.Size, layout.Align)
	if err != nil {
		t.Fatal(err)
	}
	// i8 = -1 must encode as XDR int32 -1 (sign-extended).
	i8 := d.FieldIndex("i8")
	if err := sp.WriteUintRaw(addr+vmem.VAddr(layout.Fields[i8].Offset), 1, 0xFF); err != nil {
		t.Fatal(err)
	}
	canonical, err := encodeObject(sp, tb, reg.ResolverFor(sp.Profile()), d, addr)
	if err != nil {
		t.Fatal(err)
	}
	off := d.CanonicalFieldOffset(i8)
	want := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if !bytes.Equal(canonical[off:off+4], want) {
		t.Errorf("int8(-1) canonical = %x, want %x", canonical[off:off+4], want)
	}
}

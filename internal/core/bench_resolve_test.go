package core

import (
	"sync/atomic"
	"testing"

	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
)

// BenchmarkResolveLP measures the provisional-pointer translation that
// sits on the lazy-mode argument and dereference hot paths. The map is
// published copy-on-write, so readers take no lock; the companion to
// BenchmarkVmemAccess for the allocation bookkeeping. Run with
// -benchmem: the steady state must be zero allocations.
//
//   - parallel: concurrent readers over a settled map (the common case —
//     every allocation long since flushed).
//   - churn: the same readers while a writer keeps republishing the map,
//     the worst case the old allocMu-guarded design serialized on.
func BenchmarkResolveLP(b *testing.B) {
	seed := func(rt *Runtime, n int) []wire.LongPtr {
		m := make(map[wire.LongPtr]wire.LongPtr, n)
		lps := make([]wire.LongPtr, n)
		for i := 0; i < n; i++ {
			prov := wire.LongPtr{Space: 2, Addr: vmem.VAddr(provisionalBase | uint32(i+1)), Type: 1}
			m[prov] = wire.LongPtr{Space: 2, Addr: vmem.VAddr(0x10000 + 64*i), Type: 1}
			lps[i] = prov
		}
		rt.provMap.Store(&m)
		return lps
	}
	b.Run("parallel", func(b *testing.B) {
		rt, _ := pair(b, nil)
		lps := seed(rt, 1024)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := rt.resolveLP(lps[i&1023]); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
	b.Run("churn", func(b *testing.B) {
		rt, _ := pair(b, nil)
		lps := seed(rt, 1024)
		stop := make(chan struct{})
		var published atomic.Uint64
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				old := *rt.provMap.Load()
				next := make(map[wire.LongPtr]wire.LongPtr, len(old))
				for k, v := range old {
					next[k] = v
				}
				rt.provMap.Store(&next)
				published.Add(1)
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := rt.resolveLP(lps[i&1023]); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
		b.StopTimer()
		close(stop)
	})
}

package core

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
	"smartrpc/internal/xdr"
)

// sessionCounter disambiguates sessions started by the same runtime.
var sessionCounter atomic.Uint64

// Ctx carries the session context into a Handler, allowing nested RPCs
// and callbacks (a callee remotely calling its caller, §3.1).
type Ctx struct {
	rt   *Runtime
	from uint32
}

// Runtime returns the runtime executing the handler.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// Caller returns the address-space ID of the calling space, the target
// for callbacks.
func (c *Ctx) Caller() uint32 { return c.from }

// Call issues a nested RPC (or a callback when target == Caller()).
func (c *Ctx) Call(target uint32, proc string, args []Value) ([]Value, error) {
	return c.rt.Call(target, proc, args)
}

// BeginSession starts an RPC session with this runtime's thread as the
// ground thread (§3.1). Remote pointers received during the session stay
// valid until EndSession.
func (rt *Runtime) BeginSession() error {
	rt.sessMu.Lock()
	defer rt.sessMu.Unlock()
	if rt.sess != 0 {
		return fmt.Errorf("%w (session %#x)", ErrSessionBusy, rt.sess)
	}
	rt.sess = uint64(rt.id)<<32 | (sessionCounter.Add(1) & 0xffffffff)
	rt.ground = true
	rt.parts = make(map[uint32]bool)
	// Defensive: a fresh session must start with no write obligations; a
	// torn-down adopted session that never saw its invalidate could
	// otherwise leak touched addresses into reused cache slots.
	rt.clearTouched()
	rt.pfBegin(rt.sess)
	rt.trace(Event{Kind: EvSessionBegin})
	return nil
}

// Session returns the current session identifier (0 when idle).
func (rt *Runtime) Session() uint64 {
	rt.sessMu.Lock()
	defer rt.sessMu.Unlock()
	return rt.sess
}

// EndSession performs the ground runtime's two end-of-session tasks
// (§3.4): write every modified page back to its original address space,
// and multicast an invalidation to every participating space. It then
// invalidates the local cache. Write-backs to distinct origins are
// independent of each other, as are the invalidations, so each phase
// fans out to all its targets concurrently and waits for the acks; the
// phases themselves stay ordered (no space may discard its cache before
// every modification has reached home).
func (rt *Runtime) EndSession() error {
	rt.sessMu.Lock()
	if rt.sess == 0 {
		rt.sessMu.Unlock()
		return ErrNoSession
	}
	if !rt.ground {
		rt.sessMu.Unlock()
		return errors.New("core: EndSession on a non-ground runtime")
	}
	sess := rt.sess
	rt.sessMu.Unlock()

	// Quiesce speculation and streamed-fetch tails first: in-flight
	// prefetches and background chunk drains install into the cache this
	// teardown is about to examine and demote.
	rt.pfDrain()
	rt.drainStreams()

	// Any allocations still batched must reach their origins first, so
	// that dirty data mentions only real addresses. (This may enlarge the
	// participant set — an origin reached only by its alloc batch still
	// needs the invalidation — so the set is snapshotted afterwards.)
	if err := rt.flushAllocBatches(sess); err != nil {
		return fmt.Errorf("end session: %w", err)
	}

	// 1. Examine the modified data set and write each modified page back
	// to the original address space.
	dirty, err := rt.collectDirtyItems()
	if err != nil {
		return fmt.Errorf("end session: %w", err)
	}
	byOrigin := make(map[uint32][]wire.DataItem)
	for _, it := range dirty {
		byOrigin[it.LP.Space] = append(byOrigin[it.LP.Space], it)
	}
	origins := make([]uint32, 0, len(byOrigin))
	for o := range byOrigin {
		origins = append(origins, o)
	}
	slices.Sort(origins)
	sends := make([]wire.Message, 0, len(origins))
	for _, origin := range origins {
		items := byOrigin[origin]
		if origin == rt.id {
			// Locally owned objects cached locally cannot occur (local
			// long pointers are identity-swizzled), but stay safe.
			if err := rt.applyWriteBack(items); err != nil {
				return fmt.Errorf("end session: local write-back: %w", err)
			}
			continue
		}
		// The ship-state transform runs sequentially (it mutates shared
		// per-peer views); only the network round trips overlap below.
		items = rt.deltaShipItems(origin, sess, items, true)
		if len(items) == 0 {
			// The origin already holds every final value (it received
			// them on an earlier crossing): no write-back needed.
			continue
		}
		rt.trace(Event{Kind: EvWriteBackSent, Target: origin, Count: len(items)})
		p := wire.ItemsPayload{Items: items}
		sends = append(sends, wire.Message{
			Kind:    wire.KindWriteBack,
			Session: sess,
			To:      origin,
			Payload: p.Encode(),
		})
	}
	writeBack := func(m wire.Message) error {
		reply, err := rt.sendAndWait(m)
		if err != nil {
			return fmt.Errorf("end session: write back to space %d: %w", m.To, err)
		}
		rt.stats.writeBackMsgs.Add(1)
		if reply.Err != "" {
			return fmt.Errorf("end session: space %d rejected write-back: %s", m.To, reply.Err)
		}
		return nil
	}
	if err := fanOut(sends, writeBack); err != nil {
		return err
	}
	// Write-back targets are participants too: the exchange above
	// recorded ship state on their side of the edge.
	rt.mergeParts(origins)

	rt.sessMu.Lock()
	parts := make([]uint32, 0, len(rt.parts))
	for p := range rt.parts {
		if p != rt.id {
			parts = append(parts, p)
		}
	}
	slices.Sort(parts)
	rt.sessMu.Unlock()

	// 2. Multicast the invalidation to the participating spaces.
	invalidate := func(p uint32) error {
		rt.trace(Event{Kind: EvInvalidateSent, Target: p})
		reply, err := rt.sendAndWait(wire.Message{
			Kind:    wire.KindInvalidate,
			Session: sess,
			To:      p,
			Payload: []byte{},
		})
		if err != nil {
			return fmt.Errorf("end session: invalidate space %d: %w", p, err)
		}
		if reply.Err != "" {
			return fmt.Errorf("end session: space %d rejected invalidate: %s", p, reply.Err)
		}
		return nil
	}
	if err := fanOut(parts, invalidate); err != nil {
		return err
	}

	// Local invalidation and session teardown. With the warm cache the
	// invalidation is a demotion: bytes and table rows survive as stale
	// copies revalidated on first use next session (warmcache.go). The
	// dirty collection above already encoded every modified datum on this
	// crossing; hand those bytes to the demotion so it does not encode the
	// same objects a second time.
	if rt.skipLocalInvalidate {
		// Test-only fault injection: leave the local cache readable across
		// the session boundary so the history checker can prove it catches
		// the resulting stale read. Never set outside tests.
	} else if rt.warmEnabled() {
		var preEnc map[wire.LongPtr][]byte
		if len(dirty) > 0 {
			preEnc = make(map[wire.LongPtr][]byte, len(dirty))
			for _, it := range dirty {
				preEnc[it.LP] = it.Bytes
			}
		}
		rt.demoteWarm(preEnc)
	} else {
		rt.space.InvalidateCache()
		rt.table.Invalidate()
	}
	// Teardown is session-selective: this runtime may simultaneously be a
	// passive origin for other clients' sessions, whose delta baselines
	// and circulating modified sets must survive this session's end.
	rt.clearTouched()
	rt.clearModified(sess)
	rt.coh.clearSession(sess)
	rt.trace(Event{Kind: EvSessionEnd})
	rt.sessMu.Lock()
	rt.sess = 0
	rt.ground = false
	rt.parts = make(map[uint32]bool)
	rt.sessMu.Unlock()
	if rt.checkInv {
		return rt.CheckIdleInvariants()
	}
	return nil
}

// AbortSession unconditionally tears down this runtime's session state
// without any network traffic: the cache and data allocation table are
// invalidated, the modified set, ship state, and batched allocations are
// dropped, and the session identifier is cleared. It is the failure
// recovery path for a session that can no longer complete its protocol —
// a partitioned or crashed peer left EndSession unable to deliver its
// write-backs or invalidations — and mirrors what serveInvalidate does
// when the invalidation does arrive. Modifications to remote data that
// were not yet written home are lost; locally owned heap data is
// untouched.
//
// The abort path never demotes: cached modifications that were not
// written home must not become revalidation baselines, so the warm
// views are cleared along with the cache.
func (rt *Runtime) AbortSession() {
	rt.pfDrain()
	rt.drainStreams()
	rt.warm.clearViews()
	rt.space.InvalidateCache()
	rt.table.Invalidate()
	rt.sessMu.Lock()
	rt.sess = 0
	rt.ground = false
	rt.parts = make(map[uint32]bool)
	rt.sessMu.Unlock()
	rt.allocMu.Lock()
	rt.batch = make(map[uint32]*originBatch)
	rt.allocMu.Unlock()
	// The abort clears are deliberately global (unlike EndSession's):
	// recovery drives every space back to a zero-coherency-state idle, and
	// a wedged peer session's leftovers must not survive it.
	rt.clearTouched()
	rt.clearAllModified()
	rt.coh.clear()
	rt.trace(Event{Kind: EvSessionEnd})
}

// fanOut runs f once per target concurrently and waits for all of them,
// returning the joined errors. One target short-circuits the goroutine
// spawn; the common session (two spaces) pays nothing for the fan-out.
func fanOut[T any](targets []T, f func(T) error) error {
	switch len(targets) {
	case 0:
		return nil
	case 1:
		return f(targets[0])
	}
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt T) {
			defer wg.Done()
			errs[i] = f(tgt)
		}(i, tgt)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// adoptSession joins an incoming message's session, enforcing the
// single-session-at-a-time rule.
func (rt *Runtime) adoptSession(sid uint64, from uint32) error {
	rt.sessMu.Lock()
	defer rt.sessMu.Unlock()
	switch rt.sess {
	case 0:
		rt.sess = sid
		rt.ground = false
		rt.parts = map[uint32]bool{from: true}
		rt.pfBegin(sid)
		return nil
	case sid:
		rt.parts[from] = true
		return nil
	default:
		return fmt.Errorf("%w: active %#x, got %#x", ErrSessionBusy, rt.sess, sid)
	}
}

// mergeParts folds a received participant set into the session state.
func (rt *Runtime) mergeParts(parts []uint32) {
	rt.sessMu.Lock()
	defer rt.sessMu.Unlock()
	for _, p := range parts {
		if p != rt.id {
			rt.parts[p] = true
		}
	}
}

// partsList snapshots the participant set (including self) for
// piggybacking on Call/Return.
func (rt *Runtime) partsList() []uint32 {
	rt.sessMu.Lock()
	defer rt.sessMu.Unlock()
	out := make([]uint32, 0, len(rt.parts)+1)
	out = append(out, rt.id)
	for p := range rt.parts {
		out = append(out, p)
	}
	slices.Sort(out)
	return out
}

// Call invokes proc on the target space, blocking until the results come
// back (§3.1: the calling thread is blocked; a thread on the callee
// executes the procedure). Must run inside a session.
func (rt *Runtime) Call(target uint32, proc string, args []Value) ([]Value, error) {
	rt.sessMu.Lock()
	sess := rt.sess
	if sess == 0 {
		rt.sessMu.Unlock()
		return nil, ErrNoSession
	}
	rt.parts[target] = true
	rt.sessMu.Unlock()

	payload, err := rt.buildTransferPayload(sess, target, args)
	if err != nil {
		return nil, fmt.Errorf("call %s@%d: %w", proc, target, err)
	}
	rt.stats.callsSent.Add(1)
	rt.trace(Event{Kind: EvCallSent, Target: target, Proc: proc})
	reply, err := rt.sendAndWait(wire.Message{
		Kind:    wire.KindCall,
		Session: sess,
		To:      target,
		Proc:    proc,
		Payload: payload.Encode(),
	})
	if err != nil {
		return nil, fmt.Errorf("call %s@%d: %w", proc, target, err)
	}
	if reply.Err != "" {
		// Error returns may still carry the callee's modified data set
		// (writes made before the failure are not transactional).
		if len(reply.Payload) > 0 {
			if rp, derr := wire.DecodeCallPayload(reply.Payload); derr == nil {
				rt.mergeParts(rp.Parts)
				_ = rt.installItems(target, sess, rp.Items, true)
			}
		}
		return nil, fmt.Errorf("call %s@%d: %w", proc, target, remoteErr(reply.Err))
	}
	rp, err := wire.DecodeCallPayload(reply.Payload)
	if err != nil {
		return nil, fmt.Errorf("call %s@%d: decode return: %w", proc, target, err)
	}
	rt.mergeParts(rp.Parts)
	if err := rt.installItems(target, sess, rp.Items, true); err != nil {
		return nil, fmt.Errorf("call %s@%d: install returned data: %w", proc, target, err)
	}
	return rt.argsToValues(rp.Args)
}

// remoteErr converts a callee-reported error string back into an error,
// re-typing sentinels that must survive multi-hop propagation: when a
// callee fences a restarted space deeper in the call chain, the fence
// crosses each hop as text in the Return's Err field, and every caller
// up the chain must still be able to match errors.Is(err,
// ErrOriginRestarted) — a nested restart is just as terminal (and just
// as non-retryable) as a direct one.
func remoteErr(s string) error {
	if tail := ErrOriginRestarted.Error(); strings.Contains(s, tail) {
		return fmt.Errorf("remote: %s%w", strings.TrimSuffix(s, tail), ErrOriginRestarted)
	}
	return fmt.Errorf("remote: %s", s)
}

// buildTransferPayload assembles the outbound payload for a control
// transfer to peer: converted arguments, the piggybacked modified data
// set, the eager closure (policy dependent), and the participant set. It
// first flushes batched remote allocations (§3.5: "the batch operations
// are performed when the activity of the thread moves to another address
// space"). Every item rides through the delta-shipping transform for the
// peer's edge (cohstate.go), so data the peer already holds crosses the
// boundary as a zero-byte token or a byte-range delta.
func (rt *Runtime) buildTransferPayload(sess uint64, peer uint32, args []Value) (*wire.CallPayload, error) {
	if err := rt.flushAllocBatches(sess); err != nil {
		return nil, err
	}
	wireArgs := make([]wire.Arg, 0, len(args))
	for _, v := range args {
		a, err := rt.valueToArg(v)
		if err != nil {
			return nil, err
		}
		wireArgs = append(wireArgs, a)
	}
	var items []wire.DataItem
	if rt.policy != PolicyLazy {
		dirty, err := rt.collectDirtyItems()
		if err != nil {
			return nil, err
		}
		if rt.coherence == CoherenceWriteBack && len(dirty) > 0 {
			// Ablation: send modifications home instead of along with the
			// thread of control.
			if err := rt.sendDirtyHome(sess, dirty); err != nil {
				return nil, err
			}
		} else {
			items = dirty
		}
		circulating, err := rt.modifiedSetItems(sess)
		if err != nil {
			return nil, err
		}
		items = append(items, circulating...)
	}
	if rt.policy == PolicyEager {
		closure, err := rt.eagerClosureFor(args)
		if err != nil {
			return nil, err
		}
		items = append(items, closure...)
	}
	items = rt.deltaShipItems(peer, sess, items, false)
	if rt.checkInv {
		if err := rt.CheckLocalInvariants(); err != nil {
			return nil, err
		}
	}
	return &wire.CallPayload{Args: wireArgs, Items: items, Parts: rt.partsList()}, nil
}

// modifiedSetItems encodes the current values of locally owned data that
// was modified during session sess, so the modified data set keeps
// traveling with the thread of control (§3.4).
func (rt *Runtime) modifiedSetItems(sess uint64) ([]wire.DataItem, error) {
	// The snapshot runs on every boundary crossing; reuse one scratch
	// slice instead of allocating a fresh one each time. The scratch is
	// claimed under modMu for the duration of the call (concurrent
	// claimants fall back to allocating).
	rt.modMu.Lock()
	lps := rt.modScratch[:0]
	rt.modScratch = nil
	for lp := range rt.sessionModified[sess] {
		lps = append(lps, lp)
	}
	rt.modMu.Unlock()
	defer func() {
		rt.modMu.Lock()
		rt.modScratch = lps[:0]
		rt.modMu.Unlock()
	}()
	if len(lps) == 0 {
		return nil, nil
	}
	slices.SortFunc(lps, func(a, b wire.LongPtr) int {
		if c := cmp.Compare(a.Space, b.Space); c != 0 {
			return c
		}
		return cmp.Compare(a.Addr, b.Addr)
	})
	// These are locally owned heap objects, so the snapshot is a cache
	// site too: a datum modified once but re-shipped on every subsequent
	// crossing hits after the first encode (its pages stopped changing).
	items := make([]wire.DataItem, 0, len(lps))
	arena := xdr.NewEncoder(len(lps) * 16)
	spans := make([]encSpan, 0, len(lps))
	hits, misses := 0, 0
	for _, lp := range lps {
		rv, err := rt.res.Resolve(lp.Type)
		if err != nil {
			return nil, err
		}
		var sp encSpan
		if b, _, ok := rt.encLookup(lp); ok {
			hits++
			sp.cached = b
		} else {
			misses++
			sp.pre, sp.publish = rt.encPrepare(lp.Addr, rv.Layout.Size)
			sp.start = arena.Len()
			pure, err := encodeObjectInto(arena, rt.space, rt.table, rt.res, rv.Desc, lp.Addr)
			if err != nil {
				return nil, fmt.Errorf("encode modified %v: %w", lp, err)
			}
			sp.end = arena.Len()
			sp.publish = sp.publish && pure
		}
		items = append(items, wire.DataItem{LP: lp, Dirty: true})
		spans = append(spans, sp)
	}
	backing := arena.Bytes()
	for k := range items {
		s := &spans[k]
		if s.cached != nil {
			items[k].Bytes = s.cached
			continue
		}
		items[k].Bytes = backing[s.start:s.end]
		if s.publish {
			rt.encPublish(items[k].LP, s.pre, items[k].Bytes)
		}
	}
	rt.encTraceServe(hits, misses)
	return items, nil
}

// markModified records lp in session sess's circulating modified set.
func (rt *Runtime) markModified(sess uint64, lp wire.LongPtr) {
	rt.modMu.Lock()
	set := rt.sessionModified[sess]
	if set == nil {
		set = make(map[wire.LongPtr]bool)
		rt.sessionModified[sess] = set
	}
	set[lp] = true
	rt.modMu.Unlock()
}

// dropModified forgets session-modified tracking for lp across every
// session (used when the datum is freed mid-session: the address may be
// recycled, so no session may keep re-encoding it).
func (rt *Runtime) dropModified(lp wire.LongPtr) {
	rt.modMu.Lock()
	for _, set := range rt.sessionModified {
		delete(set, lp)
	}
	rt.modMu.Unlock()
}

// clearModified drops session sess's modified set at its teardown,
// leaving other concurrent sessions' sets untouched.
func (rt *Runtime) clearModified(sess uint64) {
	rt.modMu.Lock()
	delete(rt.sessionModified, sess)
	rt.modMu.Unlock()
}

// clearAllModified resets every session's modified set (the failure
// recovery path).
func (rt *Runtime) clearAllModified() {
	rt.modMu.Lock()
	clear(rt.sessionModified)
	rt.modMu.Unlock()
}

// sendDirtyHome implements the CoherenceWriteBack ablation.
func (rt *Runtime) sendDirtyHome(sess uint64, dirty []wire.DataItem) error {
	byOrigin := make(map[uint32][]wire.DataItem)
	for _, it := range dirty {
		it.Dirty = false // arriving home; no onward obligation
		byOrigin[it.LP.Space] = append(byOrigin[it.LP.Space], it)
	}
	for origin, items := range byOrigin {
		if origin == rt.id {
			if err := rt.applyWriteBack(items); err != nil {
				return err
			}
			continue
		}
		items = rt.deltaShipItems(origin, sess, items, true)
		if len(items) == 0 {
			continue // origin already holds every value
		}
		p := wire.ItemsPayload{Items: items}
		reply, err := rt.sendAndWait(wire.Message{
			Kind:    wire.KindWriteBack,
			Session: sess,
			To:      origin,
			Payload: p.Encode(),
		})
		if err != nil {
			return err
		}
		rt.stats.writeBackMsgs.Add(1)
		if reply.Err != "" {
			return fmt.Errorf("space %d rejected write-back: %s", origin, reply.Err)
		}
	}
	return nil
}

// serveCall executes one incoming RPC request end to end.
func (rt *Runtime) serveCall(m wire.Message) {
	if err := rt.adoptSession(m.Session, m.From); err != nil {
		rt.reply(m, wire.KindReturn, nil, err.Error())
		return
	}
	p, err := wire.DecodeCallPayload(m.Payload)
	if err != nil {
		rt.reply(m, wire.KindReturn, nil, fmt.Sprintf("decode call: %v", err))
		return
	}
	rt.mergeParts(p.Parts)
	if err := rt.installItems(m.From, m.Session, p.Items, true); err != nil {
		rt.reply(m, wire.KindReturn, nil, fmt.Sprintf("install: %v", err))
		return
	}
	args, err := rt.argsToValues(p.Args)
	if err != nil {
		rt.reply(m, wire.KindReturn, nil, fmt.Sprintf("swizzle args: %v", err))
		return
	}
	rt.procsMu.RLock()
	h, ok := rt.procs[m.Proc]
	rt.procsMu.RUnlock()
	if !ok {
		rt.reply(m, wire.KindReturn, nil, fmt.Sprintf("%v: %q", ErrUnknownProc, m.Proc))
		return
	}
	rt.stats.callsServed.Add(1)
	rt.trace(Event{Kind: EvCallServed, Target: m.From, Proc: m.Proc})
	results, err := h(&Ctx{rt: rt, from: m.From}, args)
	if err != nil {
		// The paper's model has no transactions: writes the handler made
		// before failing already happened, so the modified data set still
		// travels back with the (error) return rather than being lost if
		// the session ends next.
		out, perr := rt.buildTransferPayload(m.Session, m.From, nil)
		if perr != nil {
			rt.reply(m, wire.KindReturn, nil, err.Error())
			return
		}
		rt.reply(m, wire.KindReturn, out.Encode(), err.Error())
		return
	}
	out, err := rt.buildTransferPayload(m.Session, m.From, results)
	if err != nil {
		rt.reply(m, wire.KindReturn, nil, fmt.Sprintf("build return: %v", err))
		return
	}
	rt.reply(m, wire.KindReturn, out.Encode(), "")
}

// serveInvalidate implements the end-of-session invalidation on a
// participant (§3.4). With the warm cache enabled the cached pages and
// table rows are demoted to revalidatable stale copies instead of being
// dropped; the seed behavior (discard outright) remains for the other
// policies and for DisableWarmCache.
//
// How much state goes depends on whether this space was adopted into the
// ending session. A participant (rt.sess == m.Session) tears down fully:
// cache, table, session identifier, batched allocations. A space that
// merely served the session as a passive origin — including an origin
// concurrently inside a *different* session of its own, or serving other
// clients' sessions — must lose only the ending session's edges: its
// delta-ship baselines and circulating modified set. Wiping another
// client's baselines here is exactly the single-client assumption this
// split removes ("delta ... without a baseline" failures when sessions
// overlap on one origin).
func (rt *Runtime) serveInvalidate(m wire.Message) {
	// The ending session's exchanges can no longer be retried: the
	// transport delivers each route in FIFO order, so every retry of the
	// session's requests has arrived before this frame did. Their
	// at-most-once replay entries are dead weight now.
	rt.replay.dropSession(m.Session)
	rt.sessMu.Lock()
	adopted := rt.sess == m.Session
	rt.sessMu.Unlock()
	if !adopted {
		rt.clearModified(m.Session)
		rt.coh.clearSession(m.Session)
		if rt.checkInv {
			// Other sessions' serves may be mutating the heap and cache
			// concurrently; hold the serve lock so the checker reads a
			// consistent snapshot.
			rt.serveMu.RLock()
			err := rt.CheckLocalInvariants()
			rt.serveMu.RUnlock()
			if err != nil {
				rt.reply(m, wire.KindInvalidateAck, nil, err.Error())
				return
			}
		}
		rt.reply(m, wire.KindInvalidateAck, nil, "")
		return
	}
	// Quiesce speculation and streamed-fetch tails before touching the
	// cache (see EndSession). The waits cannot starve the ground's
	// invalidation round trip: this serve runs on a pool worker, so the
	// receive loop keeps routing the fetch replies and chunks the
	// in-flight prefetches and background drains are blocked on.
	rt.pfDrain()
	rt.drainStreams()
	if rt.warmEnabled() {
		rt.demoteWarm(nil)
	} else {
		rt.space.InvalidateCache()
		rt.table.Invalidate()
	}
	rt.sessMu.Lock()
	if rt.sess == m.Session {
		rt.sess = 0
		rt.ground = false
		rt.parts = make(map[uint32]bool)
	}
	rt.sessMu.Unlock()
	rt.allocMu.Lock()
	rt.batch = make(map[uint32]*originBatch)
	rt.allocMu.Unlock()
	// The adopted session's write obligations died with its cache; a
	// leftover touched address would misfire on whatever object a later
	// session's swizzle places at the same cache slot.
	rt.clearTouched()
	rt.clearModified(m.Session)
	rt.coh.clearSession(m.Session)
	if rt.checkInv {
		if err := rt.CheckIdleInvariants(); err != nil {
			rt.reply(m, wire.KindInvalidateAck, nil, err.Error())
			return
		}
	}
	rt.reply(m, wire.KindInvalidateAck, nil, "")
}

// touchObject records that the cached foreign object at addr carries a
// write-back obligation for the current session: this space wrote it,
// allocated it, or adopted it as a circulating dirty item.
func (rt *Runtime) touchObject(addr vmem.VAddr) {
	rt.touchedMu.Lock()
	if rt.touched == nil {
		rt.touched = make(map[vmem.VAddr]bool)
	}
	rt.touched[addr] = true
	rt.touchedMu.Unlock()
}

// touchedSnapshot returns the current session's touched set (nil when
// nothing was written).
func (rt *Runtime) touchedSnapshot() map[vmem.VAddr]bool {
	rt.touchedMu.Lock()
	defer rt.touchedMu.Unlock()
	return rt.touched
}

// clearTouched drops the touched set at session end or abort.
func (rt *Runtime) clearTouched() {
	rt.touchedMu.Lock()
	rt.touched = nil
	rt.touchedMu.Unlock()
}

// touchedHas reports whether the object at addr carries a write-back
// obligation in the current session.
func (rt *Runtime) touchedHas(addr vmem.VAddr) bool {
	rt.touchedMu.Lock()
	defer rt.touchedMu.Unlock()
	return rt.touched[addr]
}

// collectDirtyItems encodes every touched object on a dirty cache page,
// clears the dirty bits, and drops the pages back to read-only so later
// writes fault again. This is the "modified data set" that travels with
// the thread of control. Dirty pages locate candidates; under
// Options.Concurrent the touched set decides — a resident neighbor that
// shares a dirty page but was never written this session must not
// travel, or its (possibly stale) cached value would overwrite a
// concurrent session's committed write at the origin. Without
// Concurrent the single-active-thread property makes the neighbor's
// bytes identical to the origin's committed value, so page-grain
// shipping (the paper's protocol) stays byte-for-byte intact.
func (rt *Runtime) collectDirtyItems() ([]wire.DataItem, error) {
	pages := rt.space.DirtyPages()
	if len(pages) == 0 {
		return nil, nil
	}
	var touched map[vmem.VAddr]bool
	if rt.concurrent {
		touched = rt.touchedSnapshot()
	}
	slices.Sort(pages)
	dirtySet := make(map[uint32]bool, len(pages))
	for _, pn := range pages {
		dirtySet[pn] = true
	}
	// Encode every resident object whose span touches a dirty page. An
	// object spanning pages may have been modified on any of them.
	var items []wire.DataItem
	arena := xdr.NewEncoder(0)
	var offs []int
	for _, e := range rt.table.Entries() {
		if !e.Resident {
			continue
		}
		first := rt.space.PageOf(e.Addr)
		last := rt.space.PageOf(e.Addr + vmem.VAddr(e.Size-1))
		hit := false
		for pn := first; pn <= last; pn++ {
			if dirtySet[pn] {
				hit = true
				break
			}
		}
		if !hit || (rt.concurrent && !touched[e.Addr]) {
			continue
		}
		rv, err := rt.res.Resolve(e.LP.Type)
		if err != nil {
			return nil, err
		}
		// Cached foreign data: addresses live in the cache region, so the
		// encode cache (keyed by local heap addresses) is not consulted.
		offs = append(offs, arena.Len())
		if _, err := encodeObjectInto(arena, rt.space, rt.table, rt.res, rv.Desc, e.Addr); err != nil {
			return nil, fmt.Errorf("encode dirty %v: %w", e.LP, err)
		}
		items = append(items, wire.DataItem{LP: e.LP, Dirty: true})
	}
	backing := arena.Bytes()
	for k := range items {
		end := len(backing)
		if k+1 < len(offs) {
			end = offs[k+1]
		}
		items[k].Bytes = backing[offs[k]:end]
	}
	// The dirtiness obligation travels with the thread of control: clean
	// the pages and drop writable pages to read-only so later writes
	// fault again. Pages still awaiting data (ProtNone, e.g. a partially
	// resident page that received a circulating modified item) must stay
	// fully protected — raising them would expose zeroed neighbors.
	for _, pn := range pages {
		if err := rt.space.MarkDirty(pn, false); err != nil {
			return nil, err
		}
		prot, err := rt.space.ProtOf(pn)
		if err != nil {
			return nil, err
		}
		if prot == vmem.ProtReadWrite {
			if err := rt.space.SetProt(pn, vmem.ProtRead); err != nil {
				return nil, err
			}
		}
	}
	rt.stats.dirtyItemsSent.Add(uint64(len(items)))
	rt.trace(Event{Kind: EvDirtyCollected, Count: len(items)})
	return items, nil
}

// applyHome installs body into the locally owned heap object at lp: the
// receiving half of the write-back path and of circulating modified
// items arriving home.
func (rt *Runtime) applyHome(lp wire.LongPtr, body []byte) error {
	if lp.Space != rt.id {
		return fmt.Errorf("write-back for foreign datum %v", lp)
	}
	rv, err := rt.res.Resolve(lp.Type)
	if err != nil {
		return err
	}
	if err := decodeObject(rt.space, rt.table, rt.res, rv.Desc, lp.Addr, body); err != nil {
		return fmt.Errorf("apply write-back %v: %w", lp, err)
	}
	// The heap-page version bumps inside the decode already made any cached
	// encoding unreachable; the proactive drop frees it now and keeps the
	// invalidation counter deterministic.
	rt.encInvalidate(lp.Addr)
	return nil
}

// applyWriteBack applies raw full-body items to the local heap (the
// purely local path; wire arrivals go through cohReceive first).
func (rt *Runtime) applyWriteBack(items []wire.DataItem) error {
	for _, it := range items {
		if err := rt.applyHome(it.LP, it.Bytes); err != nil {
			return err
		}
	}
	return nil
}

// serveWriteBack handles a write-back message from the ground runtime (or
// from the CoherenceWriteBack ablation). Items resolve through the ship
// state for the sender's edge, so delta-encoded bodies are patched
// against the recorded view before being applied.
func (rt *Runtime) serveWriteBack(m wire.Message) {
	p, err := wire.DecodeItemsPayload(m.Payload)
	if err != nil {
		rt.reply(m, wire.KindWriteBackAck, nil, fmt.Sprintf("decode: %v", err))
		return
	}
	// Applying mutates the heap other serves may be encoding from: take
	// the write side of the serve lock.
	rt.serveMu.Lock()
	defer rt.serveMu.Unlock()
	for _, it := range p.Items {
		full, fresh, err := rt.cohReceive(m.From, m.Session, it)
		if err != nil {
			rt.reply(m, wire.KindWriteBackAck, nil, err.Error())
			return
		}
		if !fresh {
			continue // the heap already holds this value from an earlier crossing
		}
		if err := rt.applyHome(it.LP, full); err != nil {
			rt.reply(m, wire.KindWriteBackAck, nil, err.Error())
			return
		}
	}
	rt.reply(m, wire.KindWriteBackAck, nil, "")
}

// installItems caches incoming data items from space `from` within
// session sess: the receiving half of fetch replies and of the
// piggybacked modified data set. Items whose origin is this space are
// applied directly to the heap (the modification has come home). For the
// rest, the object's bytes are installed in its protected page area
// slot; a page's protection is released only once every entry on it is
// resident, and released pages are sealed against further allocation so
// first accesses stay detectable.
//
// coh marks items on the coherency path (Call/Return piggybacks): those
// resolve through the ship state for the sender's edge, so delta bodies
// are patched against the recorded view and zero-byte tokens skip the
// decode entirely — the local copy is known current, and only the item's
// dirty obligation is honored. Fetch replies (coh=false) bypass the ship
// state; a delta item there is a protocol error.
func (rt *Runtime) installItems(from uint32, sess uint64, items []wire.DataItem, coh bool) error {
	if len(items) == 0 {
		return nil
	}
	// Installs are serialized: concurrent batches (demand fan-out,
	// prefetch, call returns) may share pages through ride-along wants,
	// and the release-protection decision below must observe a consistent
	// all-resident state.
	rt.installMu.Lock()
	defer rt.installMu.Unlock()
	touched := make(map[uint32]bool)
	dirtyPages := make(map[uint32]bool)
	for _, it := range items {
		body := it.Bytes
		fresh := true
		if coh {
			var err error
			body, fresh, err = rt.cohReceive(from, sess, it)
			if err != nil {
				return err
			}
		} else if it.Delta {
			return fmt.Errorf("core: delta item %v outside the coherency path", it.LP)
		}
		if it.LP.Space == rt.id {
			if fresh {
				if err := rt.applyHome(it.LP, body); err != nil {
					return err
				}
			}
			if it.Dirty && rt.coherence == CoherencePiggyback {
				// Keep the modification circulating until session end so
				// spaces holding older cached copies see it on the next
				// control transfer.
				rt.markModified(sess, it.LP)
			}
			continue
		}
		addr, _, err := rt.table.Swizzle(it.LP)
		if err != nil {
			return err
		}
		if fresh && !coh {
			// An object this session already wrote (or allocated) must not
			// be clobbered by a fetch-path copy arriving afterwards: the
			// bounded eager closure and the prefetcher both over-deliver,
			// and a ride-along body encoded from the origin's pre-write
			// state would silently revert the pending local modification
			// before it is collected. Coherency-path items are exempt — a
			// circulating modified set travels in thread-of-control order,
			// so its value supersedes the local copy (e.g. a chained call
			// that rewrote the same object downstream).
			if e, ok := rt.table.LookupAddr(addr); ok && e.Resident && rt.touchedHas(addr) {
				fresh = false
			}
		}
		if it.Dirty {
			// Adopting a circulating modification adopts its write-back
			// obligation: the item must survive the touched-set filter when
			// this session's modified data set is collected.
			rt.touchObject(addr)
		}
		if fresh {
			rv, err := rt.res.Resolve(it.LP.Type)
			if err != nil {
				return err
			}
			if err := decodeObject(rt.space, rt.table, rt.res, rv.Desc, addr, body); err != nil {
				return fmt.Errorf("install %v: %w", it.LP, err)
			}
			rt.stats.itemsInstalled.Add(1)
			rt.stats.bytesInstalled.Add(uint64(len(body)))
			rt.trace(Event{Kind: EvInstall, LP: it.LP, Count: len(body)})
		}
		rt.table.MarkResident(addr)
		e, _ := rt.table.LookupAddr(addr)
		first := rt.space.PageOf(addr)
		last := rt.space.PageOf(addr + vmem.VAddr(e.Size-1))
		for pn := first; pn <= last; pn++ {
			touched[pn] = true
			if it.Dirty {
				dirtyPages[pn] = true
			}
		}
	}
	pages := make([]uint32, 0, len(touched))
	for pn := range touched {
		pages = append(pages, pn)
	}
	slices.Sort(pages)
	for _, pn := range pages {
		if dirtyPages[pn] {
			if err := rt.space.MarkDirty(pn, true); err != nil {
				return err
			}
		}
		prot, err := rt.space.ProtOf(pn)
		if err != nil {
			return err
		}
		if prot != vmem.ProtNone {
			continue // already released earlier
		}
		if !rt.table.AllResident(pn) {
			continue // neighbors still missing; keep the page protected
		}
		newProt := vmem.ProtRead
		if dirtyPages[pn] {
			newProt = vmem.ProtReadWrite
		}
		if err := rt.space.SetProt(pn, newProt); err != nil {
			return err
		}
		rt.table.Seal(pn)
	}
	if rt.checkInv {
		return rt.CheckLocalInvariants()
	}
	return nil
}

package core

import (
	"fmt"
	"sync"
	"time"

	"smartrpc/internal/wire"
)

// streamBufMax bounds the number of undrained frames a stream buffer
// queues. A well-behaved origin never gets near it (the consumer drains
// chunks as fast as they decode); hitting the cap means the peer is
// violating the protocol, and the exchange fails rather than letting the
// queue grow without bound.
const streamBufMax = 4096

// streamBuf is the receive queue of one streamed exchange. The
// dispatcher pushes frames without ever blocking; the requester pops
// them one at a time. It replaces the one-shot reply channel for
// requests whose reply may arrive as a chunk sequence.
type streamBuf struct {
	mu     sync.Mutex
	msgs   []wire.Message
	closed bool
	wake   chan struct{}
}

func newStreamBuf() *streamBuf {
	return &streamBuf{wake: make(chan struct{}, 1)}
}

// push appends a frame and wakes the consumer. Never blocks. Frames
// pushed after close (late chunks of an abandoned exchange) release
// their buffers immediately.
func (b *streamBuf) push(m wire.Message) {
	b.mu.Lock()
	if b.closed || len(b.msgs) >= streamBufMax {
		b.mu.Unlock()
		m.ReleaseFrame()
		return
	}
	b.msgs = append(b.msgs, m)
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// fail closes the buffer, releasing any queued frames and waking the
// consumer (which will observe closed-and-empty).
func (b *streamBuf) fail() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	queued := b.msgs
	b.msgs = nil
	b.mu.Unlock()
	for i := range queued {
		queued[i].ReleaseFrame()
	}
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// pop removes the oldest queued frame, reporting closed when the buffer
// was failed and has nothing left to deliver.
func (b *streamBuf) pop() (m wire.Message, ok, closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.msgs) > 0 {
		m = b.msgs[0]
		b.msgs = b.msgs[1:]
		return m, true, false
	}
	return wire.Message{}, false, b.closed
}

// chunkAssembler validates the chunk sequence of one streamed reply:
// ordinals must be contiguous from zero, every chunk must echo the
// exchange id, and nothing may follow the final chunk. Any violation —
// a dropped, duplicated, or reordered chunk — is a protocol error; the
// caller abandons the exchange and refetches rather than installing a
// torn closure.
type chunkAssembler struct {
	xid  uint64
	next uint32
	done bool
}

// accept validates one decoded chunk against the stream position.
func (a *chunkAssembler) accept(p *wire.FetchChunkPayload) error {
	if a.done {
		return fmt.Errorf("core: chunk %d after final chunk", p.Chunk)
	}
	if p.XID != a.xid {
		return fmt.Errorf("core: chunk xid %d does not match exchange %d", p.XID, a.xid)
	}
	if p.Chunk != a.next {
		return fmt.Errorf("core: chunk ordinal %d, expected %d (dropped or reordered chunk)", p.Chunk, a.next)
	}
	a.next++
	if p.Final {
		a.done = true
	}
	return nil
}

// streamExchange is the client half of a request whose reply may stream:
// a registered stream buffer plus the exchange's sequence number. next()
// yields reply frames in arrival order; abandon() unregisters the
// exchange and releases anything still queued or in flight.
type streamExchange struct {
	rt  *Runtime
	seq uint64
	sb  *streamBuf
}

// sendAndStream sends a request and registers a stream-capable exchange
// for its reply. The origin chooses the reply form: a single monolithic
// reply frame or a KindFetchChunk sequence — both are delivered through
// the returned exchange.
func (rt *Runtime) sendAndStream(m wire.Message) (*streamExchange, error) {
	return rt.sendAndStreamSeq(m, rt.seq.Add(1)&wire.SeqXIDMask)
}

// sendAndStreamSeq is sendAndStream under a caller-supplied sequence
// number: the retry layer re-issues a failed streamed exchange with the
// same xid and a bumped attempt ordinal, registering a fresh stream
// buffer so the abandoned attempt's late chunks are dropped by seq.
func (rt *Runtime) sendAndStreamSeq(m wire.Message, seq uint64) (*streamExchange, error) {
	m.Seq = seq
	m.Seal()
	sb := newStreamBuf()
	rt.pending.putStream(seq, sb)
	if err := rt.node.Send(m); err != nil {
		rt.pending.dropStream(seq)
		return nil, fmt.Errorf("send %v to space %d: %w", m.Kind, m.To, err)
	}
	return &streamExchange{rt: rt, seq: seq, sb: sb}, nil
}

// next returns the next reply frame of the exchange, or an error when
// the runtime closes or the wait exceeds CallTimeout. Each wait gets a
// fresh timeout window: a streaming reply makes progress chunk by chunk,
// so per-chunk patience bounds a stalled exchange without penalizing
// long streams. The returned message may carry Err (remote failure or a
// frame corrupted in flight); classification is the caller's, exactly as
// for sendAndWait replies.
func (x *streamExchange) next() (wire.Message, error) {
	rt := x.rt
	var deadline <-chan time.Time
	if rt.callTimeout > 0 {
		timer := time.NewTimer(rt.callTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	for {
		m, ok, closed := x.sb.pop()
		if ok {
			return m, nil
		}
		if closed {
			return wire.Message{}, ErrClosed
		}
		select {
		case <-x.sb.wake:
		case <-deadline:
			x.abandon()
			return wire.Message{}, fmt.Errorf("streamed reply chunk after %v: %w",
				rt.callTimeout, ErrDeadline)
		case <-rt.stop:
			x.abandon()
			return wire.Message{}, ErrClosed
		}
	}
}

// abandon unregisters the exchange and releases queued frames. Late
// frames for the sequence number find no stream registered and are
// released by the dispatcher from then on. Idempotent.
func (x *streamExchange) abandon() {
	x.rt.pending.dropStream(x.seq)
	x.sb.fail()
}

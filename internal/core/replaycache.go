package core

import (
	"sync"

	"smartrpc/internal/wire"
)

// The at-most-once reply cache. A client that retries an exchange
// re-sends the same request under a fresh attempt sequence number (same
// xid, higher attempt ordinal — see wire.SeqXID). For idempotent
// exchanges (FETCH, VALIDATE, INVALIDATE) re-execution is harmless and
// nothing is cached. For the non-idempotent ones — CALL runs an
// arbitrary handler, WRITEBACK applies modifications and advances
// per-edge coherency versions, ALLOCBATCH allocates heap — a retry
// whose original did execute (only its reply was lost) must not run
// again. The dispatcher therefore admits every non-idempotent request
// through this cache:
//
//   - unseen xid        → execute; an entry is opened in the executing
//     state so a retry arriving mid-execution is recognized;
//   - executing xid     → swallow the retry, recording its seq so the
//     eventual reply is addressed to the newest attempt (the older
//     attempts' waiters are gone);
//   - completed xid     → replay the cached reply bytes to the retry's
//     seq without touching the heap.
//
// Entries are bounded (replayCacheEntries) with FIFO eviction that
// skips still-executing entries, and a session's entries are dropped
// when its INVALIDATE retires the session: the transport delivers each
// route in FIFO order, so every retry of a session's exchanges has
// arrived by the time its end-of-session INVALIDATE does.
const replayCacheEntries = 512

type replayState int

const (
	replayExecuting replayState = iota
	replayDone
)

// replayKey identifies one logical exchange: the sender, its session,
// and the exchange id shared by all the exchange's attempts.
type replayKey struct {
	from uint32
	sess uint64
	xid  uint64
}

type replayEntry struct {
	state   replayState
	lastSeq uint64 // newest attempt's seq; replies are addressed to it
	kind    wire.Kind
	payload []byte
	errStr  string
}

type replayCache struct {
	mu      sync.Mutex
	entries map[replayKey]*replayEntry
	order   []replayKey // insertion order; eviction scans from the front
}

func newReplayCache() *replayCache {
	return &replayCache{entries: make(map[replayKey]*replayEntry)}
}

// replayableRequest reports whether a request kind executes under
// at-most-once admission.
func replayableRequest(k wire.Kind) bool {
	switch k {
	case wire.KindCall, wire.KindWriteBack, wire.KindAllocBatch:
		return true
	default:
		return false
	}
}

// admitVerdict is the dispatcher's instruction for one admitted request.
type admitVerdict int

const (
	admitExecute admitVerdict = iota
	admitReplay
	admitSwallow
)

// admit classifies request m against the cache (see the package comment
// above for the three verdicts) and opens an executing entry for an
// unseen exchange.
func (rc *replayCache) admit(m wire.Message) admitVerdict {
	key := replayKey{from: m.From, sess: m.Session, xid: wire.SeqXID(m.Seq)}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	e := rc.entries[key]
	if e == nil {
		rc.evictLocked()
		rc.entries[key] = &replayEntry{state: replayExecuting, lastSeq: m.Seq}
		rc.order = append(rc.order, key)
		return admitExecute
	}
	e.lastSeq = m.Seq
	if e.state == replayExecuting {
		return admitSwallow
	}
	return admitReplay
}

// complete records the reply for an executing entry and returns the
// newest attempt's seq the reply must be addressed to. ok is false when
// no executing entry exists (the request was not admitted — an
// idempotent kind, or the entry was evicted mid-execution), in which
// case the caller replies to the request's own seq.
func (rc *replayCache) complete(m wire.Message, kind wire.Kind, payload []byte, errStr string) (uint64, bool) {
	key := replayKey{from: m.From, sess: m.Session, xid: wire.SeqXID(m.Seq)}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	e := rc.entries[key]
	if e == nil || e.state != replayExecuting {
		return 0, false
	}
	e.state = replayDone
	e.kind = kind
	// Copy: serve paths may recycle the payload's backing buffer after
	// the reply is sent.
	e.payload = append([]byte(nil), payload...)
	e.errStr = errStr
	return e.lastSeq, true
}

// resend replays a completed entry's cached reply to retry m.
func (rc *replayCache) resend(rt *Runtime, m wire.Message) {
	key := replayKey{from: m.From, sess: m.Session, xid: wire.SeqXID(m.Seq)}
	rc.mu.Lock()
	e := rc.entries[key]
	if e == nil || e.state != replayDone {
		rc.mu.Unlock()
		return
	}
	kind, payload, errStr, seq := e.kind, e.payload, e.errStr, e.lastSeq
	rc.mu.Unlock()
	rt.replyRaw(m.From, m.Session, seq, kind, payload, errStr)
}

// dropSession discards every entry belonging to one retired session.
// Keys linger in the order slice; eviction skips them.
func (rc *replayCache) dropSession(sess uint64) {
	rc.mu.Lock()
	for k := range rc.entries {
		if k.sess == sess {
			delete(rc.entries, k)
		}
	}
	rc.mu.Unlock()
}

// evictLocked makes room for one insertion, scanning the FIFO order
// from the front and skipping (re-queuing) entries still executing.
// Caller holds rc.mu.
func (rc *replayCache) evictLocked() {
	if len(rc.entries) < replayCacheEntries {
		return
	}
	scan := len(rc.order)
	for i := 0; i < scan && len(rc.entries) >= replayCacheEntries; i++ {
		k := rc.order[0]
		rc.order = rc.order[1:]
		e := rc.entries[k]
		switch {
		case e == nil: // already dropped with its session
		case e.state == replayExecuting:
			rc.order = append(rc.order, k)
		default:
			delete(rc.entries, k)
		}
	}
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smartrpc/internal/histcheck"
	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
)

// histGlue is the tracer that wires a runtime's session lifecycle events
// into a histcheck client, stamping the session-begin and
// end-of-session-ack times the checker's windows are built from.
type histGlue struct{ c *histcheck.Client }

func (g histGlue) Trace(e Event) {
	switch e.Kind {
	case EvSessionBegin:
		g.c.OnSessionBegin()
	case EvSessionEnd:
		g.c.OnSessionEnd()
	}
}

// sharedCluster builds one origin (space 1) plus n client runtimes
// (spaces 2..n+1) on an in-memory network. The mutator sees every
// runtime's options.
func sharedCluster(t testing.TB, n int, mut func(id uint32, o *Options)) (*Runtime, []*Runtime) {
	t.Helper()
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	mk := func(id uint32) *Runtime {
		node, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		// Concurrent: sessions on different runtimes overlap in real time,
		// so the modified data set needs precise per-object write tracking.
		o := Options{ID: id, Node: node, Registry: reg, Concurrent: true}
		if mut != nil {
			mut(id, &o)
		}
		rt, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		return rt
	}
	origin := mk(1)
	clients := make([]*Runtime, n)
	for i := range clients {
		clients[i] = mk(uint32(i + 2))
	}
	return origin, clients
}

// treeNodeLPs walks a locally built tree and returns every node's long
// pointer in preorder (matching buildTree's value assignment).
func treeNodeLPs(t testing.TB, origin *Runtime, root Value) []wire.LongPtr {
	t.Helper()
	var out []wire.LongPtr
	var walk func(v Value)
	walk = func(v Value) {
		if v.IsNullPtr() {
			return
		}
		out = append(out, v.LP)
		ref, err := origin.Deref(v)
		if err != nil {
			t.Fatal(err)
		}
		l, err := ref.Ptr("left", 0)
		if err != nil {
			t.Fatal(err)
		}
		r, err := ref.Ptr("right", 0)
		if err != nil {
			t.Fatal(err)
		}
		walk(l)
		walk(r)
	}
	walk(root)
	return out
}

// initRecorder seeds the recorder with every node's committed value as
// built at the origin.
func initRecorder(t testing.TB, origin *Runtime, rec *histcheck.Recorder, nodes []wire.LongPtr) {
	t.Helper()
	for _, lp := range nodes {
		v, err := origin.ImportPtr(lp)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := origin.Deref(v)
		if err != nil {
			t.Fatal(err)
		}
		d, err := ref.Int("data", 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Init(lp, d)
	}
}

// TestConcurrentSessionsLinearizable is the coherency oracle for
// concurrent shared-origin sessions: K clients hold overlapping sessions
// over one origin's tree, each randomly reading and writing node values
// through the full protocol stack (demand fetch, warm revalidation,
// speculative prefetch, write-back, invalidate fan-out), while a
// histcheck recorder captures every operation. The recorded history must
// be linearizable against a sequential shared-tree model.
func TestConcurrentSessionsLinearizable(t *testing.T) {
	const (
		treeLevels = 5 // 31 nodes
		rounds     = 5
		visits     = 6
	)
	configs := []struct {
		name string
		mut  func(id uint32, o *Options)
	}{
		{"full", func(id uint32, o *Options) {
			// Warm cache, encode cache, and speculative prefetch all on:
			// the richest machinery racing across sessions. SyncPrefetch
			// keeps speculation on the workload goroutines so histories
			// stay reproducible per seed.
			o.CheckInvariants = true
			o.Prefetch = true
			o.SyncPrefetch = true
			o.PageSize = 256
			o.ClosureSize = 256
		}},
		{"ablated", func(id uint32, o *Options) {
			// Seed protocol: no warm cache, no encode cache, no prefetch.
			o.CheckInvariants = true
			o.DisableWarmCache = true
			o.DisableEncodeCache = true
			o.PageSize = 256
			o.ClosureSize = 256
		}},
	}
	for _, cfg := range configs {
		for _, k := range []int{2, 4, 8} {
			for _, ratio := range []float64{0, 0.05, 0.25} {
				name := fmt.Sprintf("%s/clients=%d/mut=%v", cfg.name, k, ratio)
				t.Run(name, func(t *testing.T) {
					origin, clients := sharedCluster(t, k, cfg.mut)
					root := buildTree(t, origin, treeLevels)
					nodes := treeNodeLPs(t, origin, root)
					rec := histcheck.NewRecorder()
					initRecorder(t, origin, rec, nodes)

					var wg sync.WaitGroup
					errs := make([]error, k)
					for ci, rt := range clients {
						hc := rec.Client(ci)
						rt.SetTracer(histGlue{c: hc})
						wg.Add(1)
						go func(ci int, rt *Runtime, hc *histcheck.Client) {
							defer wg.Done()
							rng := rand.New(rand.NewSource(int64(1000*ci) + int64(k)<<20 + int64(ratio*100)))
							for round := 0; round < rounds; round++ {
								hs := hc.Begin()
								if err := rt.BeginSession(); err != nil {
									errs[ci] = err
									hs.Abandon()
									return
								}
								var opErr error
								for v := 0; v < visits; v++ {
									lp := nodes[rng.Intn(len(nodes))]
									pv, err := rt.ImportPtr(lp)
									if err != nil {
										opErr = err
										break
									}
									ref, err := rt.Deref(pv)
									if err != nil {
										opErr = err
										break
									}
									if rng.Float64() < ratio {
										wv := int64(ci+1)*1_000_000 + int64(round)*1_000 + int64(v)
										opErr = hs.Write(lp, wv, func() error {
											return ref.SetInt("data", 0, wv)
										})
									} else {
										_, opErr = hs.Read(lp, func() (int64, error) {
											return ref.Int("data", 0)
										})
									}
									if opErr != nil {
										break
									}
								}
								if opErr != nil {
									errs[ci] = opErr
									rt.AbortSession()
									hs.Abandon()
									return
								}
								if err := rt.EndSession(); err != nil {
									errs[ci] = err
									rt.AbortSession()
									hs.Abandon()
									return
								}
								hs.Commit()
							}
						}(ci, rt, hc)
					}
					wg.Wait()
					for ci, err := range errs {
						if err != nil {
							t.Fatalf("client %d: %v", ci, err)
						}
					}
					start := time.Now()
					res := rec.Check()
					elapsed := time.Since(start)
					if !res.Ok {
						t.Fatalf("history not linearizable:\n%s", res.Err())
					}
					if res.Ops == 0 {
						t.Fatal("recorder captured no operations")
					}
					if elapsed > 5*time.Second {
						t.Errorf("checking %d ops over %d partitions took %v, want < 5s", res.Ops, res.Partitions, elapsed)
					}
					t.Logf("checked %d ops over %d partitions in %v", res.Ops, res.Partitions, elapsed)
				})
			}
		}
	}
}

// sessionRead performs one recorded read of lp's data field inside the
// runtime's current session.
func sessionRead(t *testing.T, rt *Runtime, hs *histcheck.Session, lp wire.LongPtr) int64 {
	t.Helper()
	v, err := rt.ImportPtr(lp)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rt.Deref(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hs.Read(lp, func() (int64, error) { return ref.Int("data", 0) })
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestHistcheckCatchesSkippedInvalidate seeds the one coherency fault the
// runtime can express (skipLocalInvalidate makes EndSession skip §3.4's
// local invalidation, leaving the session's pages readable afterwards)
// and proves the history checker catches the resulting stale read with a
// small, self-explanatory counterexample.
func TestHistcheckCatchesSkippedInvalidate(t *testing.T) {
	origin, clients := sharedCluster(t, 2, func(id uint32, o *Options) {
		// No warm cache: the faulty runtime keeps the stale copy as an
		// exact resident page, the sharpest version of the bug (warm
		// demotion would be skipped by the same fault anyway).
		o.DisableWarmCache = true
	})
	reader, writer := clients[0], clients[1]
	reader.skipLocalInvalidate = true

	root := buildTree(t, origin, 3)
	nodes := treeNodeLPs(t, origin, root)
	rootLP := nodes[0]
	rec := histcheck.NewRecorder()
	initRecorder(t, origin, rec, nodes)
	rc, wc := rec.Client(0), rec.Client(1)
	reader.SetTracer(histGlue{c: rc})
	writer.SetTracer(histGlue{c: wc})

	// Reader session 1: cache the root (committed value 1).
	hs := rc.Begin()
	if err := reader.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if got := sessionRead(t, reader, hs, rootLP); got != 1 {
		t.Fatalf("initial read = %d, want 1", got)
	}
	if err := reader.EndSession(); err != nil {
		t.Fatal(err)
	}
	hs.Commit()

	// Writer session: overwrite the root and commit cleanly.
	ws := wc.Begin()
	if err := writer.BeginSession(); err != nil {
		t.Fatal(err)
	}
	wv, err := writer.ImportPtr(rootLP)
	if err != nil {
		t.Fatal(err)
	}
	wref, err := writer.Deref(wv)
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Write(rootLP, 777, func() error { return wref.SetInt("data", 0, 777) }); err != nil {
		t.Fatal(err)
	}
	if err := writer.EndSession(); err != nil {
		t.Fatal(err)
	}
	ws.Commit()

	// Reader session 2: the skipped invalidation left the old page
	// resident, so this read never faults and observes the stale value.
	hs2 := rc.Begin()
	if err := reader.BeginSession(); err != nil {
		t.Fatal(err)
	}
	stale := sessionRead(t, reader, hs2, rootLP)
	if err := reader.EndSession(); err != nil {
		t.Fatal(err)
	}
	hs2.Commit()
	if stale != 1 {
		t.Fatalf("seeded fault did not produce a stale read: got %d (want stale 1)", stale)
	}

	res := rec.Check()
	if res.Ok {
		t.Fatal("checker accepted a history containing a stale read")
	}
	if len(res.Counterexamples) != 1 {
		t.Fatalf("got %d counterexamples, want 1:\n%s", len(res.Counterexamples), res.Err())
	}
	ce := res.Counterexamples[0]
	if len(ce) > 12 {
		t.Errorf("counterexample has %d operations, want <= 12:\n%s", len(ce), res.Err())
	}
	t.Logf("shrunk counterexample (%d ops):\n%s", len(ce), res.Err())
}

// cloneItems deep-copies a closure reply so it cannot alias scratch
// buffers that are about to be recycled.
func cloneItems(items []wire.DataItem) []wire.DataItem {
	out := make([]wire.DataItem, len(items))
	for i, it := range items {
		out[i] = it
		out[i].Bytes = append([]byte(nil), it.Bytes...)
	}
	return out
}

// itemsDiffer compares two closure replies item by item.
func itemsDiffer(a, b []wire.DataItem) string {
	if len(a) != len(b) {
		return fmt.Sprintf("item count %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i].LP != b[i].LP {
			return fmt.Sprintf("item %d: LP %v != %v", i, a[i].LP, b[i].LP)
		}
		if a[i].Dirty != b[i].Dirty || a[i].Delta != b[i].Delta || a[i].BaseVer != b[i].BaseVer {
			return fmt.Sprintf("item %d: flags diverge", i)
		}
		if !bytes.Equal(a[i].Bytes, b[i].Bytes) {
			return fmt.Sprintf("item %d: body bytes diverge", i)
		}
	}
	return ""
}

// TestServeScratchPoolNoAliasing hammers the pooled closure-build scratch
// from 8 goroutines with interleaved request shapes and byte-compares
// every reply against a reference built with a private working set:
// pooled reuse must never let one request's reply alias or inherit
// another request's state.
func TestServeScratchPoolNoAliasing(t *testing.T) {
	rt, _ := pair(t, nil)
	root := buildTree(t, rt, 5)
	nodes := treeNodeLPs(t, rt, root)

	// Distinct (wants, budget) shapes, like concurrent clients fetching
	// different subtrees under different closure budgets.
	type shape struct {
		wants  []wire.LongPtr
		budget int
		ref    []wire.DataItem
	}
	picks := [][]wire.LongPtr{
		{nodes[0]},
		{nodes[1], nodes[len(nodes)/2]},
		{nodes[len(nodes)-1]},
		{nodes[2], nodes[3], nodes[5]},
	}
	budgets := []int{64, 256, 1024, 1 << 16}
	shapes := make([]shape, 0, len(picks)*len(budgets))
	for _, wants := range picks {
		for _, budget := range budgets {
			ref, err := rt.buildClosureItems(wants, 0, budget, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			shapes = append(shapes, shape{wants: wants, budget: budget, ref: cloneItems(ref)})
		}
	}

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				s := shapes[(w*7+it)%len(shapes)]
				// Exactly serveFetch's discipline: pooled scratch, read
				// lock across the build, reset+return after the reply is
				// consumed.
				sc := serveScratchPool.Get().(*serveScratch)
				rt.serveMu.RLock()
				items, err := rt.buildClosureItems(s.wants, 0, s.budget, sc, nil)
				rt.serveMu.RUnlock()
				if err != nil {
					t.Errorf("worker %d iter %d: %v", w, it, err)
				} else if d := itemsDiffer(items, s.ref); d != "" {
					t.Errorf("worker %d iter %d (budget %d): reply diverges from reference: %s",
						w, it, s.budget, d)
				}
				sc.reset()
				serveScratchPool.Put(sc)
			}
		}(w)
	}
	wg.Wait()
}

// TestTraceEventCoverage drives one workload per rare protocol path so
// that every registered trace event kind fires at least once, then
// iterates EventKinds(): a newly added event cannot ship without a test
// that emits it (the history checker depends on trace fidelity).
func TestTraceEventCoverage(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	rec := &RecordingTracer{}
	mk := func(id uint32, mut func(o *Options)) *Runtime {
		node, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		o := Options{ID: id, Node: node, Registry: reg}
		if mut != nil {
			mut(&o)
		}
		rt, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		rt.SetTracer(rec)
		return rt
	}
	// origin1 serves the main tree with the default encode cache; origin2
	// has a cache sized to hold one TreeNode encoding per shard but not
	// two, so serving its tree must evict (a sequential scan over one
	// tight shared LRU could otherwise complete hit-free AND evict-free).
	origin1 := mk(1, nil)
	origin2 := mk(4, func(o *Options) { o.EncodeCacheBytes = 16 * 40 })
	// clientA exercises the warm-cache revalidation path.
	clientA := mk(2, func(o *Options) { o.PageSize = 256; o.ClosureSize = 64 })
	// clientB exercises speculative prefetch; no warm cache, so every
	// session re-fetches and the origin's encode cache sees repeat serves.
	clientB := mk(3, func(o *Options) {
		o.DisableWarmCache = true
		o.Prefetch = true
		o.SyncPrefetch = true
		o.PageSize = 256
		o.ClosureSize = 64
	})
	registerSumProc(t, origin1)

	t1 := buildTree(t, origin1, 5)
	t2 := buildTree(t, origin2, 5)
	t1lps := treeNodeLPs(t, origin1, t1)
	t2lps := treeNodeLPs(t, origin2, t2)

	walk := func(rt *Runtime, lp wire.LongPtr) int64 {
		t.Helper()
		v, err := rt.ImportPtr(lp)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := sumTree(rt, v)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	begin := func(rt *Runtime) {
		t.Helper()
		if err := rt.BeginSession(); err != nil {
			t.Fatal(err)
		}
	}
	end := func(rt *Runtime) {
		t.Helper()
		if err := rt.EndSession(); err != nil {
			t.Fatal(err)
		}
	}

	// clientA session 1: a Call plus a full walk of origin1's tree.
	// Call/Fault/Fetch/Install events; origin1's encode cache records its
	// first-serve misses.
	begin(clientA)
	rv, err := clientA.ImportPtr(t1lps[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := clientA.Call(1, "sumTree", []Value{rv})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Int64(); got != wantSum(5) {
		t.Fatalf("remote sum = %d, want %d", got, wantSum(5))
	}
	if got := walk(clientA, t1lps[0]); got != wantSum(5) {
		t.Fatalf("walked sum = %d, want %d", got, wantSum(5))
	}
	end(clientA)

	// clientA session 2: revalidate the warm root (hit — nothing changed),
	// then dirty it so EndSession write-backs and invalidates.
	begin(clientA)
	av, err := clientA.ImportPtr(t1lps[0])
	if err != nil {
		t.Fatal(err)
	}
	aref, err := clientA.Deref(av)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := aref.Int("data", 0); err != nil || got != 1 {
		t.Fatalf("root read = %d, %v; want 1", got, err)
	}
	if err := aref.SetInt("data", 0, 1001); err != nil {
		t.Fatal(err)
	}
	end(clientA)

	// origin1 mutates two interior nodes locally: proactive encode-cache
	// invalidation now, warm-validate misses for clientA next session.
	for _, lp := range []wire.LongPtr{t1lps[1], t1lps[2]} {
		ov, err := origin1.ImportPtr(lp)
		if err != nil {
			t.Fatal(err)
		}
		oref, err := origin1.Deref(ov)
		if err != nil {
			t.Fatal(err)
		}
		d, err := oref.Int("data", 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := oref.SetInt("data", 0, d+500); err != nil {
			t.Fatal(err)
		}
	}

	// clientA session 3: re-walk — the mutated nodes miss revalidation.
	begin(clientA)
	if got, want := walk(clientA, t1lps[0]), wantSum(5)+1000+1000; got != want {
		t.Fatalf("post-mutation sum = %d, want %d", got, want)
	}
	end(clientA)

	// clientB session 1: touch only the root; the prefetcher speculates
	// the rest of the frontier, and those completed-but-unaccessed pages
	// drain as wasted at session end.
	begin(clientB)
	bv, err := clientB.ImportPtr(t1lps[0])
	if err != nil {
		t.Fatal(err)
	}
	bref, err := clientB.Deref(bv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bref.Int("data", 0); err != nil {
		t.Fatal(err)
	}
	end(clientB)

	// clientB sessions 2+3: two full walks. The second re-fetches
	// everything (no warm cache) against an unchanged origin, so origin1
	// serves it from the encode cache.
	for i := 0; i < 2; i++ {
		begin(clientB)
		if got, want := walk(clientB, t1lps[0]), wantSum(5)+1000+1000; got != want {
			t.Fatalf("clientB walk %d sum = %d, want %d", i, got, want)
		}
		end(clientB)
	}

	// clientB walks origin2's tree: serving it overflows origin2's tiny
	// encode cache and evicts.
	begin(clientB)
	if got, want := walk(clientB, t2lps[0]), wantSum(5); got != want {
		t.Fatalf("origin2 walk sum = %d, want %d", got, want)
	}
	end(clientB)

	// origin3 streams: its tiny chunk threshold splits the tree-walk
	// closure replies into chunk sequences (chunk-sent on the origin,
	// chunk-recv/chunk-install on the client).
	origin3 := mk(5, func(o *Options) { o.StreamChunkBytes = 128 })
	t3 := buildTree(t, origin3, 5)
	t3lps := treeNodeLPs(t, origin3, t3)
	clientC := mk(6, nil)
	begin(clientC)
	if got, want := walk(clientC, t3lps[0]), wantSum(5); got != want {
		t.Fatalf("origin3 walk sum = %d, want %d", got, want)
	}
	end(clientC)

	// A raw node sends origin1 a sealed-then-corrupted frame; the reply
	// arrives only after the origin traced the rejection.
	raw, err := net.Attach(9)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = raw.Close() })
	m := wire.Message{Kind: wire.KindFetch, To: 1, Session: 42, Seq: 7}
	m.Seal()
	m.Session++ // covered by the checksum; From is stamped post-seal and is not
	if err := raw.Send(m); err != nil {
		t.Fatal(err)
	}
	reply, err := raw.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Err == "" {
		t.Fatal("corrupted frame was not rejected")
	}

	// Rebind-evict finale: origin1 frees a node clientA still holds a
	// warm (non-resident) row for; the first-fit allocator hands the same
	// address to clientA's next batched remote alloc, and the rebind must
	// evict the stale row.
	freedLP := t1lps[len(t1lps)-1]
	fv, err := origin1.ImportPtr(freedLP)
	if err != nil {
		t.Fatal(err)
	}
	if err := origin1.ExtendedFree(fv); err != nil {
		t.Fatal(err)
	}
	begin(clientA)
	if _, err := clientA.ExtendedMalloc(1, nodeType); err != nil {
		t.Fatal(err)
	}
	end(clientA)

	// Recovery finale: a flaky link exercises the retry and breaker
	// paths, a swallowed Return forces an at-most-once replay, a shed
	// loop drives a half-open probe, and an origin restart trips the
	// incarnation fence.
	var fetchFails, returnSwallowed atomic.Int32
	fnode, err := net.Attach(10)
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyNode{
		Node: fnode,
		sendHook: func(m wire.Message) error {
			if m.Kind == wire.KindFetch && fetchFails.Add(1) <= int32(breakerThreshold) {
				return errors.New("flaky: link down")
			}
			return nil
		},
		recvHook: func(m wire.Message) (bool, time.Duration) {
			if m.Kind == wire.KindReturn && returnSwallowed.CompareAndSwap(0, 1) {
				return false, 0
			}
			return true, 0
		},
	}
	clientD, err := New(Options{
		ID:          10,
		Node:        flaky,
		Registry:    reg,
		CallTimeout: 200 * time.Millisecond,
		RetryBudget: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = clientD.Close() })
	clientD.SetTracer(rec)
	mkOrigin4 := func(inc uint32) *Runtime {
		node, err := net.Attach(11)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(Options{ID: 11, Node: node, Registry: reg, Incarnation: inc})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		rt.SetTracer(rec)
		return rt
	}
	origin4 := mkOrigin4(1)
	var bumps atomic.Int32
	if err := origin4.Register("bump", func(*Ctx, []Value) ([]Value, error) {
		return []Value{Int64Value(int64(bumps.Add(1)))}, nil
	}); err != nil {
		t.Fatal(err)
	}
	t4 := buildTree(t, origin4, 3)
	t4lps := treeNodeLPs(t, origin4, t4)
	// The first fetch exchange fails breakerThreshold sends in a row —
	// retry, breaker-open — then succeeds: breaker-close. The call's
	// swallowed Return forces a deadline retry the origin answers from
	// its reply cache: replayed-reply.
	begin(clientD)
	if got, want := walk(clientD, t4lps[0]), wantSum(3); got != want {
		t.Fatalf("clientD walk sum = %d, want %d", got, want)
	}
	dres, err := clientD.Call(11, "bump", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := dres[0].Int64(); got != 1 || bumps.Load() != 1 {
		t.Fatalf("bump result = %d (ran %d times), want 1 run", got, bumps.Load())
	}
	end(clientD)
	// Shed speculation against an open breaker until the half-open probe
	// slot comes up: breaker-probe.
	for i := 0; i < breakerThreshold; i++ {
		clientD.health.noteFailure(clientD, 99)
	}
	for i := 0; i < breakerProbeEvery; i++ {
		clientD.health.allowSpec(clientD, 99)
	}
	// origin4 restarts with a fresh heap: the next exchange's reply
	// carries incarnation 2 and the fence trips.
	_ = origin4.Close()
	_ = mkOrigin4(2)
	begin(clientD)
	dv, err := clientD.ImportPtr(t4lps[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sumTree(clientD, dv); !errors.Is(err, ErrOriginRestarted) {
		t.Fatalf("walk after origin restart: err = %v, want ErrOriginRestarted", err)
	}

	for _, k := range EventKinds() {
		if rec.Count(k) == 0 {
			t.Errorf("event kind %v was never emitted by the coverage workload", k)
		}
	}
}

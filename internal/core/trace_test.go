package core

import (
	"strings"
	"testing"
)

func TestTraceEventSequence(t *testing.T) {
	caller, callee := pair(t, nil)
	callerTr := &RecordingTracer{}
	calleeTr := &RecordingTracer{}
	caller.SetTracer(callerTr)
	callee.SetTracer(calleeTr)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 5)
	sessionCall(t, caller, 2, "sumTree", root)

	// Caller side: session bracketed, one call, fetches served.
	if callerTr.Count(EvSessionBegin) != 1 || callerTr.Count(EvSessionEnd) != 1 {
		t.Errorf("caller session events: begin=%d end=%d",
			callerTr.Count(EvSessionBegin), callerTr.Count(EvSessionEnd))
	}
	if callerTr.Count(EvCallSent) != 1 {
		t.Errorf("caller call-sent = %d", callerTr.Count(EvCallSent))
	}
	if callerTr.Count(EvFetchServed) == 0 {
		t.Error("caller served no fetches in trace")
	}
	if callerTr.Count(EvInvalidateSent) != 1 {
		t.Errorf("caller invalidate-sent = %d", callerTr.Count(EvInvalidateSent))
	}
	// Callee side: one call served, faults and fetches and installs.
	if calleeTr.Count(EvCallServed) != 1 {
		t.Errorf("callee call-served = %d", calleeTr.Count(EvCallServed))
	}
	for _, k := range []EventKind{EvFault, EvFetchSent, EvInstall} {
		if calleeTr.Count(k) == 0 {
			t.Errorf("callee trace missing %v events", k)
		}
	}
	// Event ordering sanity: first event is the served call, faults come
	// before their fetches.
	evs := calleeTr.Events()
	if evs[0].Kind != EvCallServed {
		t.Errorf("callee first event = %v", evs[0].Kind)
	}
	firstFault, firstFetch := -1, -1
	for i, e := range evs {
		if e.Kind == EvFault && firstFault < 0 {
			firstFault = i
		}
		if e.Kind == EvFetchSent && firstFetch < 0 {
			firstFetch = i
		}
	}
	if firstFault < 0 || firstFetch < 0 || firstFault > firstFetch {
		t.Errorf("fault (%d) must precede fetch (%d)", firstFault, firstFetch)
	}
}

func TestTraceUpdateEmitsDirtyAndWriteBack(t *testing.T) {
	caller, callee := pair(t, nil)
	calleeTr := &RecordingTracer{}
	callerTr := &RecordingTracer{}
	callee.SetTracer(calleeTr)
	caller.SetTracer(callerTr)
	err := callee.Register("set", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		return nil, ref.SetInt("data", 0, 9)
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 1)
	sessionCall(t, caller, 2, "set", root)
	if calleeTr.Count(EvDirtyCollected) == 0 {
		t.Error("no dirty-collected event on callee")
	}
}

func TestWriterTracer(t *testing.T) {
	var sb strings.Builder
	tr := NewWriterTracer(&sb)
	tr.Trace(Event{Kind: EvFault, Space: 2, Page: 7})
	tr.Trace(Event{Kind: EvCallSent, Space: 1, Target: 2, Proc: "x"})
	out := sb.String()
	if !strings.Contains(out, "fault page=7") || !strings.Contains(out, "call-sent x peer=2") {
		t.Errorf("writer output:\n%s", out)
	}
}

func TestRecordingTracerReset(t *testing.T) {
	tr := &RecordingTracer{}
	tr.Trace(Event{Kind: EvFault})
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Error("events survive reset")
	}
}

func TestEventKindString(t *testing.T) {
	if EvSessionBegin.String() != "session-begin" || EvAllocFlush.String() != "alloc-flush" {
		t.Error("EventKind.String mismatch")
	}
	if !strings.Contains(EventKind(99).String(), "99") {
		t.Error("unknown kind rendering")
	}
}

func TestTraceAllocFlush(t *testing.T) {
	caller, callee := pair(t, nil)
	calleeTr := &RecordingTracer{}
	callee.SetTracer(calleeTr)
	err := callee.Register("mk", func(ctx *Ctx, args []Value) ([]Value, error) {
		v, err := ctx.Runtime().ExtendedMalloc(ctx.Caller(), nodeType)
		if err != nil {
			return nil, err
		}
		return []Value{v}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sessionCall(t, caller, 2, "mk")
	if calleeTr.Count(EvAllocFlush) != 1 {
		t.Errorf("alloc-flush events = %d, want 1", calleeTr.Count(EvAllocFlush))
	}
}

func TestTraceWarmHitSessionSequence(t *testing.T) {
	// Pin the event shape of a warm second session: the callee faults on
	// its demoted page, sends exactly one batched Validate, and every
	// stale node promotes as a hit — no fetches, no installs.
	caller, callee := pair(t, nil)
	calleeTr := &RecordingTracer{}
	callee.SetTracer(calleeTr)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 4) // 15 nodes, one cache page
	sessionCall(t, caller, 2, "sumTree", root)
	calleeTr.Reset()

	sessionCall(t, caller, 2, "sumTree", root)
	if n := calleeTr.Count(EvValidateSent); n != 1 {
		t.Errorf("validate-sent = %d, want 1", n)
	}
	if n := calleeTr.Count(EvValidateHit); n != 15 {
		t.Errorf("validate-hit = %d, want 15", n)
	}
	for _, k := range []EventKind{EvValidateMiss, EvFetchSent, EvInstall} {
		if n := calleeTr.Count(k); n != 0 {
			t.Errorf("warm session emitted %d %v events, want 0", n, k)
		}
	}
	// Ordering: fault, then the batched validate, then its hits.
	evs := calleeTr.Events()
	seq := make([]EventKind, 0, 4)
	for _, e := range evs {
		switch e.Kind {
		case EvFault, EvValidateSent, EvValidateHit:
			if len(seq) == 0 || seq[len(seq)-1] != e.Kind {
				seq = append(seq, e.Kind)
			}
		}
	}
	want := []EventKind{EvFault, EvValidateSent, EvValidateHit}
	if len(seq) != len(want) {
		t.Fatalf("warm event shape = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("warm event shape = %v, want %v", seq, want)
		}
	}
	// The validate-sent event carries the batch size.
	for _, e := range evs {
		if e.Kind == EvValidateSent && e.Count != 15 {
			t.Errorf("validate-sent count = %d, want 15", e.Count)
		}
	}
}

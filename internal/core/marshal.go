// Package core implements the Smart RPC runtime: the paper's combination
// of virtual-memory manipulation, pointer swizzling, and the RPC-session
// coherency protocol, together with the fully eager and fully lazy
// baseline policies it is evaluated against.
package core

import (
	"fmt"

	"smartrpc/internal/swizzle"
	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
	"smartrpc/internal/xdr"
)

// encodeObject converts one in-memory object into its canonical (XDR)
// representation. Pointer fields are unswizzled into long pointers using
// the declared element type of the field; the conversion is therefore
// independent of the local architecture, which is what lets spaces with
// different profiles interoperate.
func encodeObject(sp *vmem.Space, tb *swizzle.Table, res *types.Resolver, d *types.Desc, addr vmem.VAddr) ([]byte, error) {
	enc := xdr.NewEncoder(d.CanonicalSize())
	if _, err := encodeObjectInto(enc, sp, tb, res, d, addr); err != nil {
		return nil, err
	}
	return enc.Bytes(), nil
}

// encodeObjectInto appends one object's canonical representation to enc.
// Multi-item paths (closure replies, the modified data set) encode into a
// shared arena encoder and slice the items out afterwards, so a reply
// costs a constant number of allocations rather than two per object.
//
// heapPure reports that the encoding is a pure function of the object's
// heap bytes: every pointer field was null or identity-swizzled (a heap
// address). A pointer into the cache region unswizzles through the data
// allocation table, whose rows mutate independently of the page bytes —
// such an encoding must never enter the version-validated encode cache
// (enccache.go), because no page-version check could detect the table
// changing under it.
func encodeObjectInto(enc *xdr.Encoder, sp *vmem.Space, tb *swizzle.Table, res *types.Resolver, d *types.Desc, addr vmem.VAddr) (heapPure bool, err error) {
	rv, err := res.Resolve(d.ID)
	if err != nil {
		return false, err
	}
	layout := rv.Layout
	heapPure = true
	for i, f := range d.Fields {
		fl := layout.Fields[i]
		count := f.Count
		if count <= 1 {
			count = 1
		}
		for e := 0; e < count; e++ {
			off := addr + vmem.VAddr(fl.Offset+e*fl.ElemSize)
			if f.Kind == types.Ptr {
				pv, err := sp.ReadPtrRaw(off)
				if err != nil {
					return false, err
				}
				if pv != vmem.Null && !sp.InHeap(pv) {
					heapPure = false
				}
				lp, err := tb.Unswizzle(pv, f.Elem)
				if err != nil {
					return false, fmt.Errorf("field %q: %w", f.Name, err)
				}
				enc.PutUint32(lp.Space)
				enc.PutUint32(uint32(lp.Addr))
				enc.PutUint32(uint32(lp.Type))
				continue
			}
			raw, err := sp.ReadUintRaw(off, fl.ElemSize)
			if err != nil {
				return false, err
			}
			encodeScalar(enc, f.Kind, raw)
		}
	}
	return heapPure, nil
}

// encodeScalar writes one scalar element canonically. Signed kinds are
// sign-extended to their XDR word, per RFC 1014.
func encodeScalar(enc *xdr.Encoder, k types.Kind, raw uint64) {
	switch k {
	case types.Int8:
		enc.PutInt32(int32(int8(raw)))
	case types.Int16:
		enc.PutInt32(int32(int16(raw)))
	case types.Int32, types.Float32:
		enc.PutUint32(uint32(raw))
	case types.Uint8, types.Uint16, types.Uint32, types.Bool:
		enc.PutUint32(uint32(raw))
	case types.Int64, types.Uint64, types.Float64:
		enc.PutUint64(raw)
	}
}

// decodeScalar reads one scalar element from the canonical form, returning
// the raw bits to store (truncated to the in-memory width by the caller).
func decodeScalar(dec *xdr.Decoder, k types.Kind) (uint64, error) {
	switch k {
	case types.Int64, types.Uint64, types.Float64:
		return dec.Uint64()
	default:
		v, err := dec.Uint32()
		return uint64(v), err
	}
}

// decodeObject installs one object's canonical bytes at addr, swizzling
// embedded long pointers into local ordinary pointers. Swizzling may
// reserve fresh protected page areas for long pointers seen for the first
// time — this is exactly the moment the paper allocates cache room for
// newly referenced remote data. Writes bypass protection (the runtime is
// the "kernel" here).
func decodeObject(sp *vmem.Space, tb *swizzle.Table, res *types.Resolver, d *types.Desc, addr vmem.VAddr, data []byte) error {
	rv, err := res.Resolve(d.ID)
	if err != nil {
		return err
	}
	layout := rv.Layout
	dec := xdr.NewDecoder(data)
	for i, f := range d.Fields {
		fl := layout.Fields[i]
		count := f.Count
		if count <= 1 {
			count = 1
		}
		for e := 0; e < count; e++ {
			off := addr + vmem.VAddr(fl.Offset+e*fl.ElemSize)
			if f.Kind == types.Ptr {
				space, err := dec.Uint32()
				if err != nil {
					return err
				}
				a, err := dec.Uint32()
				if err != nil {
					return err
				}
				ty, err := dec.Uint32()
				if err != nil {
					return err
				}
				lp := wire.LongPtr{Space: space, Addr: vmem.VAddr(a), Type: types.ID(ty)}
				local, _, err := tb.Swizzle(lp)
				if err != nil {
					return fmt.Errorf("field %q: %w", f.Name, err)
				}
				if err := sp.WritePtrRaw(off, local); err != nil {
					return err
				}
				continue
			}
			raw, err := decodeScalar(dec, f.Kind)
			if err != nil {
				return err
			}
			if err := sp.WriteUintRaw(off, fl.ElemSize, raw); err != nil {
				return err
			}
		}
	}
	return nil
}

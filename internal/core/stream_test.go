package core

import (
	"testing"
	"time"

	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
)

// streamNet builds a server (id 1) plus n client runtimes (ids 100+i) on
// one in-memory network, like pipelineNet, but also lets the test mutate
// the server's options — streaming is an origin-side knob, so chunked
// replies need a server with a lowered StreamChunkBytes.
func streamNet(t testing.TB, n int, serverMut, clientMut func(o *Options)) (*transport.Network, *Runtime, []*Runtime) {
	t.Helper()
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	mk := func(id uint32, mut func(o *Options)) *Runtime {
		node, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		o := Options{ID: id, Node: node, Registry: reg, Policy: PolicySmart}
		if mut != nil {
			mut(&o)
		}
		rt, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		return rt
	}
	server := mk(1, serverMut)
	clients := make([]*Runtime, n)
	for i := range clients {
		clients[i] = mk(100+uint32(i), clientMut)
	}
	return net, server, clients
}

// TestStreamedFetchCorrectness: with the origin's streaming threshold
// forced far below the closure budget, every demand fetch becomes a
// multi-chunk stream — the faulting access unblocks on chunk 0 while the
// rest of the closure drains in the background. The chase must still see
// exactly the right values, the network must actually have carried chunk
// frames, and session end must have drained every background stream.
func TestStreamedFetchCorrectness(t *testing.T) {
	net, server, clients := streamNet(t, 1,
		func(o *Options) { o.StreamChunkBytes = 128 },
		func(o *Options) { o.ClosureSize = 4096 })
	cl := clients[0]
	root, want := buildChain(t, server, 1024, 0)

	got, err := chase(cl, root)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("chase sum = %d, want %d", got, want)
	}
	if n := net.Stats().KindMessages(uint32(wire.KindFetchChunk)); n == 0 {
		t.Error("no chunk frames on the wire — streaming never engaged")
	}
	if n := cl.InflightFetches(); n != 0 {
		t.Errorf("%d in-flight registry entries leaked after session end", n)
	}
}

// TestJoinerOnPartiallyDrainedStream: a real link delay keeps speculative
// chunk streams in flight while the application keeps chasing, so demand
// faults land on pages whose exchange has already signaled its primary
// and is still draining trailing chunks in the background. The joiner
// must wait for the drain to finish (registry entry released), not
// re-request the page or read a half-installed closure. Run under -race
// this is the partially-drained-join concurrency check.
func TestJoinerOnPartiallyDrainedStream(t *testing.T) {
	net, server, clients := streamNet(t, 1,
		func(o *Options) { o.StreamChunkBytes = 128 },
		func(o *Options) {
			o.Prefetch = true
			o.ClosureSize = 2048
		})
	cl := clients[0]
	root, want := buildChain(t, server, 1024, 0)

	net.SetLinkDelay(2 * time.Millisecond)
	defer net.SetLinkDelay(0)
	got, err := chase(cl, root)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("chase sum = %d, want %d", got, want)
	}
	st := cl.Stats()
	if st.PfCoalesced == 0 {
		t.Errorf("no demand fault joined an in-flight streamed exchange: %+v", st)
	}
	if n := net.Stats().KindMessages(uint32(wire.KindFetchChunk)); n == 0 {
		t.Error("no chunk frames on the wire — streaming never engaged")
	}
	if sent, served := st.FetchesSent, server.Stats().FetchesServed; sent != served {
		t.Errorf("client sent %d fetches, server served %d", sent, served)
	}
	if n := cl.InflightFetches(); n != 0 {
		t.Errorf("%d in-flight registry entries leaked after session end", n)
	}
}

// TestSyncPrefetchOverChunkedStream: under SyncPrefetch the speculative
// completion runs inline on the demand goroutine and must consume its
// whole chunk stream there — speculative exchanges never early-unblock,
// so a wedged drain would hang the chase. The watchdog turns that hang
// into a failure instead of a test timeout.
func TestSyncPrefetchOverChunkedStream(t *testing.T) {
	net, server, clients := streamNet(t, 1,
		func(o *Options) { o.StreamChunkBytes = 128 },
		func(o *Options) {
			o.Prefetch = true
			o.SyncPrefetch = true
			o.ClosureSize = 256
		})
	cl := clients[0]
	root, want := buildChain(t, server, 512, 0)

	done := make(chan struct{})
	var got int64
	var chaseErr error
	go func() {
		defer close(done)
		got, chaseErr = chase(cl, root)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("chase wedged: inline speculative completion never finished its chunk stream")
	}
	if chaseErr != nil {
		t.Fatal(chaseErr)
	}
	if got != want {
		t.Fatalf("chase sum = %d, want %d", got, want)
	}
	if n := net.Stats().KindMessages(uint32(wire.KindFetchChunk)); n == 0 {
		t.Error("no chunk frames on the wire — streaming never engaged")
	}
	if n := cl.InflightFetches(); n != 0 {
		t.Errorf("%d in-flight registry entries leaked after session end", n)
	}
}

// BenchmarkInstallClosure measures the client-side cost of receiving and
// installing one full closure — the decode/install path the zero-copy
// chunk plumbing exists to keep cheap. Warm caching is off so every
// iteration refetches and reinstalls the whole chain. Run with -benchmem;
// CI gates on allocs/op not regressing.
func BenchmarkInstallClosure(b *testing.B) {
	for _, mode := range []struct {
		name  string
		chunk int
	}{
		{"streamed", 256},
		{"monolithic", -1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			_, server, clients := streamNet(b, 1,
				func(o *Options) {
					if mode.chunk < 0 {
						o.DisableStreaming = true
					} else {
						o.StreamChunkBytes = mode.chunk
					}
				},
				func(o *Options) {
					o.ClosureSize = 1 << 20
					o.DisableWarmCache = true
				})
			cl := clients[0]
			root, want := buildChain(b, server, 1024, 0)
			// One warm-up chase primes lazily-built tables on both ends.
			if got, err := chase(cl, root); err != nil || got != want {
				b.Fatalf("warm-up chase = %d, %v; want %d", got, err, want)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := chase(cl, root)
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("chase sum = %d, want %d", got, want)
				}
			}
		})
	}
}

package core

import (
	"fmt"
	"math"
	"sort"

	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
)

// onFault is the runtime's access-violation handler: the software analogue
// of the SIGSEGV handler the paper installs with the operating system
// kernel (§3.2). Read faults on protected pages trigger the fetch of all
// data allocated to the page; write faults on read-only pages implement
// dirty detection for the coherency protocol (§3.4).
func (rt *Runtime) onFault(f vmem.Fault) error {
	prot, err := rt.space.ProtOf(f.Page)
	if err != nil {
		return err
	}
	rt.trace(Event{Kind: EvFault, Page: f.Page})
	if prot == vmem.ProtRead {
		if f.Kind != vmem.FaultWrite {
			return fmt.Errorf("core: read fault on readable page %d", f.Page)
		}
		// Dirty detection: first write to a clean cached page.
		if err := rt.space.MarkDirty(f.Page, true); err != nil {
			return err
		}
		return rt.space.SetProt(f.Page, vmem.ProtReadWrite)
	}
	// ProtNone: the first access to a protected page area. Fetch every
	// datum allocated to the page — once protection is released, a first
	// access to the others could no longer be detected.
	if err := rt.fetchPage(f.Page); err != nil {
		return err
	}
	if f.Kind == vmem.FaultWrite {
		if err := rt.space.MarkDirty(f.Page, true); err != nil {
			return err
		}
		return rt.space.SetProt(f.Page, vmem.ProtReadWrite)
	}
	return nil
}

// fetchPage requests the data for every non-resident entry on page pn from
// the owning address spaces and installs the replies. Installing an object
// swizzles the pointers inside it, which can reserve fresh slots on this
// very page while it still has room — so the fetch iterates until every
// entry allocated to the page is resident, upholding §3.2's rule that all
// data allocated to a page is transferred before its protection is
// released.
func (rt *Runtime) fetchPage(pn uint32) error {
	rt.sessMu.Lock()
	sess := rt.sess
	rt.sessMu.Unlock()
	if sess == 0 {
		return fmt.Errorf("core: page fault on cached data outside a session (page %d)", pn)
	}
	if len(rt.table.PageEntries(pn)) == 0 {
		return fmt.Errorf("core: fault on cache page %d with no allocation table entries", pn)
	}
	for {
		// Group wants by origin. Under the paper's allocation heuristic
		// there is exactly one origin per page; PolicyMixed exercises the
		// multi-origin worst case.
		byOrigin := make(map[uint32][]wire.LongPtr)
		for _, e := range rt.table.PageEntries(pn) {
			if e.Resident {
				continue
			}
			byOrigin[e.LP.Space] = append(byOrigin[e.LP.Space], e.LP)
		}
		if len(byOrigin) == 0 {
			return nil
		}
		origins := make([]uint32, 0, len(byOrigin))
		for o := range byOrigin {
			origins = append(origins, o)
		}
		sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
		for _, origin := range origins {
			p := wire.FetchPayload{Wants: byOrigin[origin], Budget: uint32(rt.closure)}
			rt.stats.fetchesSent.Add(1)
			rt.trace(Event{Kind: EvFetchSent, Target: origin, Count: len(byOrigin[origin])})
			reply, err := rt.sendAndWait(wire.Message{
				Kind:    wire.KindFetch,
				Session: sess,
				To:      origin,
				Payload: p.Encode(),
			})
			if err != nil {
				return fmt.Errorf("fetch from space %d: %w", origin, err)
			}
			if reply.Err != "" {
				return fmt.Errorf("fetch from space %d: %s", origin, reply.Err)
			}
			rp, err := wire.DecodeItemsPayload(reply.Payload)
			if err != nil {
				return fmt.Errorf("fetch from space %d: decode: %w", origin, err)
			}
			if err := rt.installItems(rp.Items); err != nil {
				return fmt.Errorf("fetch from space %d: install: %w", origin, err)
			}
		}
	}
}

// serveFetch answers a data request: it sends the wanted objects plus a
// transitive closure bounded by the requested budget (§3.3).
func (rt *Runtime) serveFetch(m wire.Message) {
	p, err := wire.DecodeFetchPayload(m.Payload)
	if err != nil {
		rt.reply(m, wire.KindFetchReply, nil, fmt.Sprintf("decode: %v", err))
		return
	}
	rt.stats.fetchesServed.Add(1)
	rt.trace(Event{Kind: EvFetchServed, Target: m.From, Count: len(p.Wants)})
	items, err := rt.buildClosureItems(p.Wants, int(p.Budget))
	if err != nil {
		rt.reply(m, wire.KindFetchReply, nil, err.Error())
		return
	}
	out := wire.ItemsPayload{Items: items}
	rt.reply(m, wire.KindFetchReply, out.Encode(), "")
}

// buildClosureItems encodes the wanted objects unconditionally, then keeps
// traversing the pointer graph (breadth-first by default, §3.3) until the
// byte budget for additional data is exhausted. Only locally owned data
// can be served; pointers to third spaces are passed through as long
// pointers for the requester to resolve on its own faults.
func (rt *Runtime) buildClosureItems(wants []wire.LongPtr, budget int) ([]wire.DataItem, error) {
	type job struct {
		lp   wire.LongPtr
		want bool
	}
	seen := make(map[wire.LongPtr]bool, len(wants))
	queue := make([]job, 0, len(wants))
	for _, lp := range wants {
		queue = append(queue, job{lp: lp, want: true})
	}
	var items []wire.DataItem
	budgetLeft := budget
	for len(queue) > 0 {
		var j job
		if rt.traversal == TraverseDFS {
			j = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
		} else {
			j = queue[0]
			queue = queue[1:]
		}
		if j.lp.IsNull() || seen[j.lp] {
			continue
		}
		if j.lp.Space != rt.id {
			if j.want {
				return nil, fmt.Errorf("core: fetch for datum %v not owned by space %d", j.lp, rt.id)
			}
			continue
		}
		desc, err := rt.reg.Lookup(j.lp.Type)
		if err != nil {
			return nil, err
		}
		size := desc.CanonicalSize()
		if !j.want {
			if budgetLeft < size {
				continue // budget exhausted for optional data; keep draining queue for cheaper finds
			}
			budgetLeft -= size
		}
		seen[j.lp] = true
		b, err := encodeObject(rt.space, rt.table, rt.reg, desc, j.lp.Addr)
		if err != nil {
			return nil, fmt.Errorf("encode %v: %w", j.lp, err)
		}
		items = append(items, wire.DataItem{LP: j.lp, Bytes: b})
		// Enqueue the pointed-to data, honoring any programmer-supplied
		// closure shape hint for this type (§6: "use suggestions provided
		// by the programmer" to optimize the closure's shape).
		layout, err := rt.reg.Layout(desc.ID, rt.space.Profile())
		if err != nil {
			return nil, err
		}
		hint := rt.closureHint(desc.ID)
		for i, f := range desc.Fields {
			if f.Kind != types.Ptr {
				continue
			}
			if hint != nil && !hint[f.Name] {
				continue
			}
			count := f.Count
			if count <= 1 {
				count = 1
			}
			fl := layout.Fields[i]
			for e := 0; e < count; e++ {
				pv, err := rt.space.ReadPtrRaw(j.lp.Addr + vmem.VAddr(fl.Offset+e*fl.ElemSize))
				if err != nil {
					return nil, err
				}
				if pv == vmem.Null {
					continue
				}
				target, err := rt.table.Unswizzle(pv, f.Elem)
				if err != nil {
					return nil, err
				}
				queue = append(queue, job{lp: target})
			}
		}
	}
	return items, nil
}

// eagerClosureFor builds the full transitive closure of every locally
// owned pointer argument: the fully eager baseline's call-time transfer.
func (rt *Runtime) eagerClosureFor(args []Value) ([]wire.DataItem, error) {
	var roots []wire.LongPtr
	for _, v := range args {
		if v.Kind != types.Ptr || v.Addr == vmem.Null {
			continue
		}
		lp, err := rt.table.Unswizzle(v.Addr, v.Elem)
		if err != nil {
			return nil, err
		}
		if lp.Space == rt.id {
			roots = append(roots, lp)
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}
	return rt.buildClosureItems(roots, math.MaxInt32)
}

// fetchOne retrieves a single object's canonical bytes without caching:
// the fully lazy baseline's per-dereference callback.
func (rt *Runtime) fetchOne(lp wire.LongPtr) ([]byte, error) {
	if lp.Space == rt.id {
		// Locally owned data is read directly; no session needed.
		desc, err := rt.reg.Lookup(lp.Type)
		if err != nil {
			return nil, err
		}
		return encodeObject(rt.space, rt.table, rt.reg, desc, lp.Addr)
	}
	rt.sessMu.Lock()
	sess := rt.sess
	rt.sessMu.Unlock()
	if sess == 0 {
		return nil, ErrNoSession
	}
	p := wire.FetchPayload{Wants: []wire.LongPtr{lp}, Budget: 0}
	rt.stats.fetchesSent.Add(1)
	reply, err := rt.sendAndWait(wire.Message{
		Kind:    wire.KindFetch,
		Session: sess,
		To:      lp.Space,
		Payload: p.Encode(),
	})
	if err != nil {
		return nil, err
	}
	if reply.Err != "" {
		return nil, fmt.Errorf("fetch %v: %s", lp, reply.Err)
	}
	rp, err := wire.DecodeItemsPayload(reply.Payload)
	if err != nil {
		return nil, err
	}
	if len(rp.Items) != 1 || rp.Items[0].LP != lp {
		return nil, fmt.Errorf("fetch %v: unexpected reply shape (%d items)", lp, len(rp.Items))
	}
	return rp.Items[0].Bytes, nil
}

// writeOne sends a single object's canonical bytes home: the lazy
// baseline's write path (read-modify-write-back).
func (rt *Runtime) writeOne(lp wire.LongPtr, data []byte) error {
	if lp.Space == rt.id {
		// Locally owned data is written directly; no session needed.
		desc, err := rt.reg.Lookup(lp.Type)
		if err != nil {
			return err
		}
		return decodeObject(rt.space, rt.table, rt.reg, desc, lp.Addr, data)
	}
	rt.sessMu.Lock()
	sess := rt.sess
	rt.sessMu.Unlock()
	if sess == 0 {
		return ErrNoSession
	}
	p := wire.ItemsPayload{Items: []wire.DataItem{{LP: lp, Bytes: data}}}
	rt.stats.writeBackMsgs.Add(1)
	reply, err := rt.sendAndWait(wire.Message{
		Kind:    wire.KindWriteBack,
		Session: sess,
		To:      lp.Space,
		Payload: p.Encode(),
	})
	if err != nil {
		return err
	}
	if reply.Err != "" {
		return fmt.Errorf("write back %v: %s", lp, reply.Err)
	}
	return nil
}

package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
	"smartrpc/internal/xdr"
)

// onFault is the runtime's access-violation handler: the software analogue
// of the SIGSEGV handler the paper installs with the operating system
// kernel (§3.2). Read faults on protected pages trigger the fetch of all
// data allocated to the page; write faults on read-only pages implement
// dirty detection for the coherency protocol (§3.4).
func (rt *Runtime) onFault(f vmem.Fault) error {
	prot, err := rt.space.ProtOf(f.Page)
	if err != nil {
		return err
	}
	rt.trace(Event{Kind: EvFault, Page: f.Page})
	if prot == vmem.ProtRead {
		if f.Kind != vmem.FaultWrite {
			return fmt.Errorf("core: read fault on readable page %d", f.Page)
		}
		// Dirty detection: first write to a clean cached page.
		if err := rt.space.MarkDirty(f.Page, true); err != nil {
			return err
		}
		return rt.space.SetProt(f.Page, vmem.ProtReadWrite)
	}
	// ProtNone: the first access to a protected page area. Fetch every
	// datum allocated to the page — once protection is released, a first
	// access to the others could no longer be detected.
	if err := rt.fetchPage(f.Page); err != nil {
		return err
	}
	if f.Kind == vmem.FaultWrite {
		if err := rt.space.MarkDirty(f.Page, true); err != nil {
			return err
		}
		return rt.space.SetProt(f.Page, vmem.ProtReadWrite)
	}
	return nil
}

// fetchKey identifies one unit of in-flight completion work: one cache
// page's exchange (FETCH or VALIDATE) with one origin.
type fetchKey struct {
	pn     uint32
	origin uint32
}

// inflightFetch is one registry entry. done closes after the exchange
// finishes AND the entry has been removed from the registry, so a joiner
// that wakes and still finds the page incomplete re-enters the loop and
// issues its own request — a failed speculative fetch can park a demand
// fault only for the duration of the failure, never indefinitely.
//
// primary closes as soon as the exchange's primary wants — the faulting
// page's own entries — are resident, which on a streamed reply happens
// while later chunks are still in flight. Joiners wake on it so a demand
// fault is unblocked by the first chunk, not the last; a joiner that
// finds primary already closed is watching a background drain and waits
// for its next progress tick — each installed chunk may have made the
// joiner's entries resident, and a fault's latency must track the chunk
// that satisfies it, not the end of the stream. done still marks the
// slot's release (the page's remaining work becomes claimable only
// then).
type inflightFetch struct {
	spec        bool
	primary     chan struct{}
	primaryOnce sync.Once
	done        chan struct{}

	// tick is the drain's progress broadcast: closed and replaced after
	// every chunk install, under tickMu.
	tickMu sync.Mutex
	tick   chan struct{}
}

func newInflightFetch(spec bool) *inflightFetch {
	return &inflightFetch{
		spec:    spec,
		primary: make(chan struct{}),
		done:    make(chan struct{}),
		tick:    make(chan struct{}),
	}
}

// signalPrimary marks the primary wants resident (idempotent).
func (f *inflightFetch) signalPrimary() {
	f.primaryOnce.Do(func() { close(f.primary) })
}

// progress wakes every joiner parked on the drain: a chunk installed,
// so a re-scan may find their entries resident.
func (f *inflightFetch) progress() {
	f.tickMu.Lock()
	close(f.tick)
	f.tick = make(chan struct{})
	f.tickMu.Unlock()
}

// progressCh returns the channel the next progress call will close.
func (f *inflightFetch) progressCh() <-chan struct{} {
	f.tickMu.Lock()
	defer f.tickMu.Unlock()
	return f.tick
}

// fetchPage is the demand entry point: it completes page pn on behalf of
// the faulting application thread.
func (rt *Runtime) fetchPage(pn uint32) error {
	rt.sessMu.Lock()
	sess := rt.sess
	rt.sessMu.Unlock()
	if sess == 0 {
		return fmt.Errorf("core: page fault on cached data outside a session (page %d)", pn)
	}
	return rt.completePage(sess, pn, false)
}

// completePage makes every entry allocated to page pn resident, from
// however many origins the page spans. Installing an object swizzles the
// pointers inside it, which can reserve fresh slots on this very page
// while it still has room — so the fetch iterates until every entry
// allocated to the page is resident, upholding §3.2's rule that all data
// allocated to a page is transferred before its protection is released.
//
// Per pass, the page's non-resident entries group by origin; stale
// warm-cache entries are revalidated (one batched Validate round trip,
// warmcache.go) before anything is fetched in full. All per-origin
// exchanges of a pass are issued concurrently and joined — a PolicyMixed
// page spanning N origins pays one round-trip time, not N — and each
// exchange routes through the in-flight registry, so concurrent
// completions of the same (page, origin) — a demand fault overtaking a
// speculative prefetch, or two application threads faulting together —
// coalesce onto one pending reply instead of re-requesting.
//
// spec marks a speculative (prefetcher-issued) completion: its fetches
// carry the accounting flag, a missing page is not an error (the row may
// have been invalidated since prediction), and it never steals a demand
// fault's place in the registry.
func (rt *Runtime) completePage(sess uint64, pn uint32, spec bool) error {
	for pass := 0; ; pass++ {
		entries := rt.table.PageEntries(pn)
		if pass == 0 && len(entries) == 0 {
			if spec {
				return nil
			}
			return fmt.Errorf("core: fault on cache page %d with no allocation table entries", pn)
		}
		// Collect non-resident wants in offset order, splitting off the
		// stale entries. Under the paper's allocation heuristic there is
		// exactly one origin per page, so the common path is a single
		// group with no map allocation; PolicyMixed exercises the
		// multi-origin fan-out below.
		var wants, stale []wire.LongPtr
		sameOrigin, staleSame := true, true
		warm := rt.warmEnabled()
		for i := range entries {
			e := &entries[i]
			if e.Resident {
				continue
			}
			if warm && e.Stale {
				if len(stale) > 0 && e.LP.Space != stale[0].Space {
					staleSame = false
				}
				stale = append(stale, e.LP)
				continue
			}
			if len(wants) > 0 && e.LP.Space != wants[0].Space {
				sameOrigin = false
			}
			wants = append(wants, e.LP)
		}
		if len(stale) > 0 {
			// Every offered entry ends the exchange either resident (token,
			// delta, or full body) or degraded to a plain want, so the loop
			// always makes progress.
			if staleSame {
				if err := rt.completeFrom(sess, pn, stale[0].Space, stale, spec, true); err != nil {
					return err
				}
			} else if err := fanOut(groupByOrigin(stale), func(g originGroup) error {
				return rt.completeFrom(sess, pn, g.origin, g.lps, spec, true)
			}); err != nil {
				return err
			}
			continue
		}
		if len(wants) == 0 {
			return nil
		}
		if sameOrigin {
			if err := rt.completeFrom(sess, pn, wants[0].Space, wants, spec, false); err != nil {
				return err
			}
			continue
		}
		if err := fanOut(groupByOrigin(wants), func(g originGroup) error {
			return rt.completeFrom(sess, pn, g.origin, g.lps, spec, false)
		}); err != nil {
			return err
		}
	}
}

// originGroup is one origin's slice of a page's wants.
type originGroup struct {
	origin uint32
	lps    []wire.LongPtr
}

// groupByOrigin splits a want list by owning space, origins sorted.
func groupByOrigin(lps []wire.LongPtr) []originGroup {
	byOrigin := make(map[uint32][]wire.LongPtr)
	for _, lp := range lps {
		byOrigin[lp.Space] = append(byOrigin[lp.Space], lp)
	}
	groups := make([]originGroup, 0, len(byOrigin))
	for o, g := range byOrigin {
		groups = append(groups, originGroup{origin: o, lps: g})
	}
	slices.SortFunc(groups, func(a, b originGroup) int { return int(a.origin) - int(b.origin) })
	return groups
}

// completeFrom runs one (page, origin) exchange through the in-flight
// registry: if the pair is already outstanding — typically a speculative
// prefetch the application has now caught up with — the caller parks on
// the pending completion instead of re-requesting; otherwise it registers
// the exchange and performs it. Either way the caller's completion loop
// re-scans the page afterwards, so a joiner whose fetch failed on the
// other goroutine simply issues its own (a demand fault never inherits a
// speculative failure — it degrades to a plain demand fetch).
func (rt *Runtime) completeFrom(sess uint64, pn, origin uint32, lps []wire.LongPtr, spec, stale bool) error {
	key := fetchKey{pn: pn, origin: origin}
	rt.inflightMu.Lock()
	if f := rt.inflight[key]; f != nil {
		rt.inflightMu.Unlock()
		if !spec {
			rt.stats.pfCoalesced.Add(1)
			if f.spec {
				rt.trace(Event{Kind: EvPrefetchHit, Page: pn, Target: origin})
			}
		}
		// If the exchange's primary signal already fired, the entry is a
		// background drain of a streamed reply: waking on primary again
		// would spin (the caller's re-scan finds the same drain). Wait
		// for the drain's next chunk to install — the re-scan may then
		// find this caller's entries resident long before the stream
		// ends — or for the slot's release, whichever comes first.
		select {
		case <-f.primary:
			select {
			case <-f.progressCh():
				return nil
			case <-f.done:
				return nil
			case <-rt.stop:
				return ErrClosed
			}
		default:
		}
		select {
		case <-f.primary:
			return nil
		case <-rt.stop:
			return ErrClosed
		}
	}
	f := newInflightFetch(spec)
	rt.inflight[key] = f
	rt.inflightMu.Unlock()
	release := func() {
		// Remove before closing: a woken joiner that still finds work must
		// be able to register its own exchange immediately. primary closes
		// (idempotently) before done so no joiner can observe done without
		// primary.
		rt.inflightMu.Lock()
		delete(rt.inflight, key)
		rt.inflightMu.Unlock()
		f.signalPrimary()
		close(f.done)
	}
	var poke bool
	var bg func()
	err := func() error {
		var err error
		if stale {
			poke, err = rt.validateFrom(sess, pn, origin, lps)
		} else {
			poke, bg, err = rt.fetchFrom(sess, pn, origin, lps, spec, f)
		}
		return err
	}()
	if bg != nil {
		// A streamed reply unblocked the primary wants with chunks still
		// in flight: drain them in the background, releasing the registry
		// slot — and poking the prefetcher — only when the stream ends.
		// Teardown paths quiesce rt.bgDrain before touching the cache.
		rt.bgDrain.Add(1)
		go func() {
			defer rt.bgDrain.Done()
			bg()
			release()
			if poke {
				rt.pfPoke(origin)
			}
		}()
		return err
	}
	release()
	if poke {
		// The exchange exposed a fresh swizzled frontier; give the
		// prefetcher a chance to run ahead of the application. The poke must
		// come only after the registry slot is released: under
		// Options.SyncPrefetch it completes speculative pages inline, and
		// the candidates can include this very page (its frontier grew
		// during the install) — an inline completion must register its own
		// exchange, not join this goroutine's still-held entry and deadlock
		// waiting on itself.
		rt.pfPoke(origin)
	}
	return err
}

// drainStreams waits out every background chunk drainer (the tail of a
// streamed fetch whose primary wants already unblocked the faulting
// access). Teardown paths call it right after pfDrain, before demoting
// or invalidating the cache, so a drain never installs into a page being
// torn down. The wait is bounded: a stalled stream abandons itself at
// its next per-chunk CallTimeout (when one is set) and every drain wakes
// on runtime close.
func (rt *Runtime) drainStreams() {
	rt.bgDrain.Wait()
}

// InflightFetches reports how many (page, origin) exchanges are currently
// registered as outstanding. Zero on an idle runtime; the chaos oracle
// uses it to prove failed speculative fetches never wedge the registry.
func (rt *Runtime) InflightFetches() int {
	rt.inflightMu.Lock()
	defer rt.inflightMu.Unlock()
	return len(rt.inflight)
}

// fetchFrom sends one FETCH for the given wants (all owned by origin) and
// installs the reply. pn is the faulting page, excluded from ride-along
// batching because its own wants are already in the message. spec marks
// prefetcher-issued fetches: the wire flag and the pf counters are the
// only differences — the origin serves both identically.
//
// The origin picks the reply form: small closures arrive as one
// monolithic FetchReply and install exactly as the seed protocol did;
// large closures arrive as a KindFetchChunk stream, installed chunk by
// chunk as they are decoded. On a demand fetch, once every primary want
// is resident the faulting access is unblocked (f.signalPrimary) and the
// remaining chunks drain through the returned bg closure, which
// completeFrom runs on a background goroutine; a drain error just leaves
// entries non-resident for a later demand fetch to retry.
//
// poke reports that the caller should poke the prefetcher at this origin
// once the in-flight registry slot is released (completeFrom); poking from
// in here would let an inline speculative completion rejoin — and deadlock
// on — the slot this exchange still holds.
//
// The whole exchange retries under the runtime's retry policy
// (retryLoop): a stalled stream, a corrupted frame, or a torn chunk
// sequence abandons the attempt and re-issues the FETCH under a fresh
// attempt seq. Re-installing items an earlier attempt already delivered
// is idempotent, and the abandoned attempt's late chunks are dropped by
// seq. Failures inside a background drain never retry — a drain error
// just leaves entries non-resident for a later demand fetch.
func (rt *Runtime) fetchFrom(sess uint64, pn, origin uint32, wants []wire.LongPtr, spec bool, f *inflightFetch) (poke bool, bg func(), err error) {
	primary := len(wants)
	budget := rt.budgetFor(origin)
	if !rt.noFetchBatch {
		// Coalesce outstanding wants: non-resident entries from the
		// same origin stranded on partially resident pages ride
		// along in this FETCH, so those pages are completed before
		// they ever fault — one message instead of one per page.
		// The ride-alongs are frozen (Primary marks the boundary):
		// the server serves them but neither expands their pointer
		// fields nor charges them against the closure budget, which
		// stays fully available for the faulting page's own
		// frontier. Charging or expanding them starves the
		// productive closure and causes MORE faults, not fewer.
		extra, _ := rt.table.OutstandingWants(origin, pn, budget)
		wants = append(wants, extra...)
	}
	p := wire.FetchPayload{
		Wants:       wants,
		Budget:      uint32(budget),
		Primary:     uint32(primary),
		Speculative: spec,
	}
	payload := p.Encode()
	ferr := rt.retryLoop(origin, wire.KindFetch, func(seq uint64) (bool, error) {
		var transient bool
		poke, bg, transient, err = rt.fetchAttempt(sess, pn, origin, payload, wants, primary, spec, f, seq)
		return transient, err
	})
	return poke, bg, ferr
}

// fetchAttempt performs one attempt of a FETCH exchange under the given
// sequence number. transient classifies a failure for the retry loop:
// true for faults a retry can outrun (lost or late frames, corruption,
// a torn chunk sequence), false for terminal outcomes (remote
// application errors, decode or install failures, a tripped fence).
func (rt *Runtime) fetchAttempt(sess uint64, pn, origin uint32, payload []byte, wants []wire.LongPtr, primary int, spec bool, f *inflightFetch, seq uint64) (poke bool, bg func(), transient bool, err error) {
	rt.stats.fetchesSent.Add(1)
	if spec {
		rt.stats.pfIssued.Add(1)
		rt.trace(Event{Kind: EvPrefetchIssued, Page: pn, Target: origin, Count: len(wants)})
	} else {
		rt.trace(Event{Kind: EvFetchSent, Target: origin, Count: len(wants)})
	}
	x, err := rt.sendAndStreamSeq(wire.Message{
		Kind:    wire.KindFetch,
		Session: sess,
		To:      origin,
		Payload: payload,
	}, seq)
	if err != nil {
		return false, nil, !errors.Is(err, ErrClosed), fmt.Errorf("fetch from space %d: %w", origin, err)
	}
	reply, err := x.next()
	if err != nil {
		return false, nil, !errors.Is(err, ErrClosed), fmt.Errorf("fetch from space %d: %w", origin, err)
	}
	// A corrupted frame's incarnation word is garbage, so the checksum
	// rejection must precede the fence check. Any other reply's Inc is
	// trustworthy, so the fence runs *before* an application error is
	// interpreted: a restarted origin answers a stale session's requests
	// with errors, and the restart is the diagnosis, not the symptom.
	if reply.Err == checksumRejectErr {
		reply.ReleaseFrame()
		x.abandon()
		return false, nil, true, fmt.Errorf("fetch from space %d: %s", origin, reply.Err)
	}
	if ferr := rt.fenceCheck(origin, reply.Inc); ferr != nil {
		reply.ReleaseFrame()
		x.abandon()
		return false, nil, false, ferr
	}
	if reply.Err != "" {
		reply.ReleaseFrame()
		x.abandon()
		return false, nil, false, fmt.Errorf("fetch from space %d: %s", origin, reply.Err)
	}
	if reply.Kind == wire.KindFetchReply {
		// The classic single-frame reply (closure at or under the
		// origin's streaming threshold).
		rp, err := wire.DecodeItemsPayload(reply.Payload)
		if err != nil {
			return false, nil, false, fmt.Errorf("fetch from space %d: decode: %w", origin, err)
		}
		// Fetch replies bypass the delta-shipping state (coh=false): a datum
		// is fetched at most once per session, so there is no baseline to
		// diff against and tracking it would desynchronize the edge.
		if err := rt.installItems(origin, sess, rp.Items, false); err != nil {
			return false, nil, false, fmt.Errorf("fetch from space %d: install: %w", origin, err)
		}
		if spec {
			var n uint64
			for _, it := range rp.Items {
				n += uint64(len(it.Bytes))
			}
			rt.stats.pfBytes.Add(n)
			// Speculative completions chain through pfRun instead, after
			// their in-flight slot is released.
			return false, nil, false, nil
		}
		return true, nil, false, nil
	}
	// A streamed reply. Track which primary wants are still outstanding
	// so the faulting access unblocks on the first chunk that covers
	// them — by the protocol's contract that is chunk 0, but the client
	// verifies residency rather than trusting the origin's framing.
	missing := make(map[wire.LongPtr]bool, primary)
	for _, lp := range wants[:primary] {
		missing[lp] = true
	}
	asm := &chunkAssembler{xid: x.seq}
	// chunkTransient classifies installChunk failures for the retry
	// loop: lost, late, duplicated, or corrupted chunk frames are worth
	// a fresh attempt; decode and install failures are terminal.
	chunkTransient := false
	installChunk := func(m wire.Message) (final bool, err error) {
		defer m.ReleaseFrame()
		// Checksum rejection first (a corrupted frame's incarnation word
		// is garbage), then the fence, then application errors — see the
		// first-reply classification above.
		if m.Err == checksumRejectErr {
			x.abandon()
			chunkTransient = true
			return false, fmt.Errorf("fetch from space %d: %s", origin, m.Err)
		}
		if ferr := rt.fenceCheck(origin, m.Inc); ferr != nil {
			x.abandon()
			return false, ferr
		}
		if m.Err != "" {
			x.abandon()
			return false, fmt.Errorf("fetch from space %d: %s", origin, m.Err)
		}
		if m.Kind != wire.KindFetchChunk {
			x.abandon()
			return false, fmt.Errorf("fetch from space %d: %v frame inside a chunk stream", origin, m.Kind)
		}
		cp, err := wire.DecodeFetchChunkPayload(m.Payload)
		if err != nil {
			x.abandon()
			return false, fmt.Errorf("fetch from space %d: chunk decode: %w", origin, err)
		}
		if cp.Validate {
			x.abandon()
			return false, fmt.Errorf("fetch from space %d: validate chunk in a fetch stream", origin)
		}
		if err := asm.accept(&cp); err != nil {
			x.abandon()
			// A dropped, duplicated, or reordered chunk is a transport
			// fault: the stream is torn, but a retry streams it afresh.
			chunkTransient = true
			return false, fmt.Errorf("fetch from space %d: %w", origin, err)
		}
		rt.trace(Event{Kind: EvChunkRecv, Target: origin, Page: cp.Chunk, Count: len(cp.Items)})
		if err := rt.installItems(origin, sess, cp.Items, false); err != nil {
			x.abandon()
			return false, fmt.Errorf("fetch from space %d: install: %w", origin, err)
		}
		rt.trace(Event{Kind: EvChunkInstall, Target: origin, Page: cp.Chunk, Count: len(cp.Items)})
		for _, it := range cp.Items {
			delete(missing, it.LP)
		}
		if spec {
			var n uint64
			for _, it := range cp.Items {
				n += uint64(len(it.Bytes))
			}
			rt.stats.pfBytes.Add(n)
		}
		return cp.Final, nil
	}
	final, err := installChunk(reply)
	for !final && err == nil {
		if len(missing) == 0 && !spec {
			// Every primary want is resident: unblock the faulting
			// access and drain the tail in the background. Speculative
			// completions have no one waiting and drain inline.
			f.signalPrimary()
			drain := func() {
				for {
					m, err := x.next()
					if err != nil {
						return
					}
					final, err := installChunk(m)
					// Wake parked joiners after every install: a fault
					// whose entries this chunk covered unblocks now.
					f.progress()
					if final || err != nil {
						return
					}
				}
			}
			return true, drain, false, nil
		}
		var m wire.Message
		if m, err = x.next(); err == nil {
			final, err = installChunk(m)
		} else {
			// A stalled stream (per-chunk deadline) or a send-loop
			// failure: worth a fresh attempt unless the runtime closed.
			chunkTransient = !errors.Is(err, ErrClosed)
			err = fmt.Errorf("fetch from space %d: %w", origin, err)
		}
	}
	if err != nil {
		return false, nil, chunkTransient, err
	}
	if spec {
		return false, nil, false, nil
	}
	return true, nil, false, nil
}

// chunkEmitter streams one serve's reply as a KindFetchChunk sequence.
// buildClosureItems hands it item batches as the traversal produces them;
// each batch goes out as one individually checksummed chunk frame whose
// payload is encoded straight into a pooled frame buffer (the receiver
// releases it after installing the chunk). A send failure latches: the
// remaining build is not worth finishing for an unreachable peer.
type chunkEmitter struct {
	rt       *Runtime
	req      wire.Message
	limit    int // target item bytes per chunk (Options.StreamChunkBytes)
	validate bool
	next     uint32 // ordinal of the next chunk
	sent     int    // chunks emitted so far
	err      error  // first send failure (latched)
}

// emit sends one chunk carrying the given fetch items (or, for a
// validate stream, vitems).
func (em *chunkEmitter) emit(items []wire.DataItem, vitems []wire.ValidateItem, final bool) error {
	if em.err != nil {
		return em.err
	}
	if !em.validate && em.rt.warmEnabled() {
		// Remember what this peer now holds: the delta base for future
		// cross-session revalidations. Memory-only; nothing on the wire.
		em.rt.recordServed(em.req.From, items)
	}
	p := wire.FetchChunkPayload{
		XID:      em.req.Seq,
		Chunk:    em.next,
		Final:    final,
		Validate: em.validate,
		Items:    items,
		VItems:   vitems,
	}
	fb := wire.NewChunkBuf()
	p.EncodeTo(fb.Enc())
	out := wire.Message{
		Kind:    wire.KindFetchChunk,
		Session: em.req.Session,
		Seq:     em.req.Seq,
		To:      em.req.From,
		Payload: fb.Enc().Bytes(),
		Frame:   fb,
		Inc:     em.rt.incarnation,
	}
	out.Seal()
	em.rt.trace(Event{Kind: EvChunkSent, Target: em.req.From, Page: em.next, Count: len(items) + len(vitems)})
	if err := em.rt.node.Send(out); err != nil {
		// Send consumes the frame reference only when it serializes or
		// delivers; an undeliverable frame is released here.
		out.ReleaseFrame()
		em.err = err
		return err
	}
	em.next++
	em.sent++
	// Yield between chunks: the point of streaming is that the receiver
	// decodes and installs while this serve is still encoding, and on a
	// saturated (or single-CPU) host the encode loop would otherwise
	// monopolize the processor until preemption — the receiver would see
	// the whole stream arrive at once, monolithic with extra framing.
	runtime.Gosched()
	return nil
}

// fail ends a partially sent stream with an error chunk, so the client
// abandons the exchange immediately instead of waiting out its deadline.
func (em *chunkEmitter) fail(errStr string) {
	if em.err != nil {
		return // the peer is unreachable; nothing to tell it
	}
	rt := em.rt
	rt.reply(em.req, wire.KindFetchChunk, nil, errStr)
}

// serveFetch answers a data request: it sends the wanted objects plus a
// transitive closure bounded by the requested budget (§3.3). A
// speculative request is served identically — the flag is accounting on
// the requester. Closure encoding reads the heap, so the serve holds the
// read side of serveMu against concurrently applied write-backs.
//
// A closure whose encoded items exceed the streaming threshold goes out
// as a pipelined chunk sequence (chunkEmitter) — each chunk is sent as
// soon as the traversal fills it, so the client decodes and installs
// while this serve is still encoding. Smaller closures (and all closures
// under DisableStreaming) use the classic single reply frame.
func (rt *Runtime) serveFetch(m wire.Message) {
	p, err := wire.DecodeFetchPayload(m.Payload)
	if err != nil {
		rt.reply(m, wire.KindFetchReply, nil, fmt.Sprintf("decode: %v", err))
		return
	}
	rt.serveMu.RLock()
	defer rt.serveMu.RUnlock()
	rt.stats.fetchesServed.Add(1)
	rt.trace(Event{Kind: EvFetchServed, Target: m.From, Count: len(p.Wants)})
	// The working set (queue, seen set, item and span slices) is pooled
	// across serves; the reply payload and the encode arena are not (the
	// arena's bytes outlive the serve inside the encode cache and the
	// warm-cache served record).
	sc := serveScratchPool.Get().(*serveScratch)
	defer func() {
		sc.reset()
		serveScratchPool.Put(sc)
	}()
	var em *chunkEmitter
	if !rt.noStreaming && rt.streamChunk > 0 {
		em = &chunkEmitter{rt: rt, req: m, limit: rt.streamChunk}
	}
	items, err := rt.buildClosureItems(p.Wants, int(p.Primary), int(p.Budget), sc, em)
	if err != nil {
		if em != nil && em.sent > 0 {
			em.fail(err.Error())
			return
		}
		rt.reply(m, wire.KindFetchReply, nil, err.Error())
		return
	}
	if em != nil && em.sent > 0 {
		// The reply streamed: the final chunk is already on the wire and
		// recordServed ran per chunk.
		return
	}
	if rt.warmEnabled() {
		// Remember what this peer now holds: the delta base for future
		// cross-session revalidations. Memory-only; nothing on the wire.
		rt.recordServed(m.From, items)
	}
	out := wire.ItemsPayload{Items: items}
	rt.reply(m, wire.KindFetchReply, out.Encode(), "")
}

// closureJob is one queued traversal step of a closure build.
type closureJob struct {
	lp     wire.LongPtr
	want   bool
	frozen bool // serve, but do not expand children
}

// encSpan records where one served item's bytes came from: a cache hit
// carries them directly, a miss names an arena range plus the metadata
// needed to publish it afterwards.
type encSpan struct {
	start, end int    // arena range (miss)
	cached     []byte // cache-hit bytes (nil on a miss)
	pre        encPre
	publish    bool // miss was heap-pure and version-snapshotted
}

// serveScratch is the pooled per-serve working set: everything
// buildClosureItems needs besides the arena, reused across serveFetch
// calls so a hot origin stops allocating per fetch.
type serveScratch struct {
	seen  map[vmem.VAddr]bool
	queue []closureJob
	items []wire.DataItem
	spans []encSpan
}

func (sc *serveScratch) reset() {
	clear(sc.seen)
	sc.queue = sc.queue[:0]
	// Drop byte references so pooled scratch does not pin served bodies.
	clear(sc.items)
	sc.items = sc.items[:0]
	clear(sc.spans)
	sc.spans = sc.spans[:0]
}

var serveScratchPool = sync.Pool{
	New: func() any {
		return &serveScratch{seen: make(map[vmem.VAddr]bool, 64)}
	},
}

// buildClosureItems encodes the wanted objects unconditionally, then keeps
// traversing the pointer graph (breadth-first by default, §3.3) until the
// byte budget for additional data is exhausted. Only locally owned data
// can be served; pointers to third spaces are passed through as long
// pointers for the requester to resolve on its own faults.
//
// primary is the count of leading wants that seed the traversal; wants
// beyond it (the batched ride-alongs) are served but their pointer fields
// are not expanded, so the closure budget is spent entirely on the faulting
// page's own frontier. primary <= 0 means every want is primary.
//
// Each served object first consults the encode cache (enccache.go): a hit
// ships the memoized bytes with no encode at all; a miss encodes into the
// arena as before and, if the encoding was heap-pure and its page-version
// snapshot held, publishes the slice for the next requester. Traversal is
// unaffected either way — child expansion reads the heap directly, not
// the encoded form.
//
// sc, when non-nil, supplies the pooled working set (serveFetch); other
// callers pass nil and allocate fresh.
//
// em, when non-nil, enables streaming: once every want has been served
// (so chunk 0 always carries the faulting page's own entries and the
// batched ride-alongs) and the accumulated item bytes exceed the chunk
// limit, the accumulated items flush as one chunk and the traversal
// continues. If any chunk was flushed, the tail goes out as the final
// chunk and the function returns (nil, nil); a closure that never
// reached the limit returns its items for the classic monolithic reply.
// Under DFS (the ablation) wants drain last, so streaming effectively
// degrades to the monolithic form — the contract, not the chunk size,
// is what the client depends on.
func (rt *Runtime) buildClosureItems(wants []wire.LongPtr, primary, budget int, sc *serveScratch, em *chunkEmitter) ([]wire.DataItem, error) {
	if primary <= 0 {
		primary = len(wants)
	}
	// est guesses the item count: every want plus however many
	// minimum-size objects the budget can admit. Sizing the working set
	// once up front keeps the serve path free of growth reallocations.
	est := len(wants) + min(budget, 1<<16)/16 + 1
	// seen is keyed by local address: only locally owned objects are ever
	// encoded (foreign pointers pass through), and a uint32 key hashes
	// much cheaper than the full long-pointer struct.
	var (
		seen  map[vmem.VAddr]bool
		queue []closureJob
		items []wire.DataItem
		spans []encSpan
	)
	if sc != nil {
		seen, queue, items, spans = sc.seen, sc.queue, sc.items, sc.spans
		// Hand any slice growth back to the scratch on every exit, so the
		// pooled working set keeps its high-water capacity.
		defer func() {
			sc.seen, sc.queue, sc.items, sc.spans = seen, queue, items, spans
		}()
	} else {
		seen = make(map[vmem.VAddr]bool, est)
		queue = make([]closureJob, 0, est)
		items = make([]wire.DataItem, 0, est)
		spans = make([]encSpan, 0, est)
	}
	for i, lp := range wants {
		queue = append(queue, closureJob{lp: lp, want: true, frozen: i >= primary})
	}
	// All miss bytes are encoded into one arena; spans[k] records item k's
	// range (or its cache-hit bytes). Slicing happens after the loop, once
	// the arena has stopped growing. The arena is never pooled (its bytes
	// outlive the serve in the reply, the encode cache, and the warm-cache
	// served record) and is allocated only on the first miss — a fully
	// cache-hit serve allocates nothing here.
	var arena *xdr.Encoder
	budgetLeft := budget
	hits, misses := 0, 0
	// resolveSpans turns spans[lo:hi] into item bytes: cache hits carry
	// theirs already, misses slice the arena. Publishing mid-stream is
	// sound even though the arena may still grow — append reallocation
	// copies, so an already-sliced backing array is never written again.
	resolveSpans := func(lo, hi int) {
		var backing []byte
		if arena != nil {
			backing = arena.Bytes()
		}
		for k := lo; k < hi; k++ {
			s := &spans[k]
			if s.cached != nil {
				items[k].Bytes = s.cached
				continue
			}
			items[k].Bytes = backing[s.start:s.end]
			if s.publish {
				rt.encPublish(items[k].LP, s.pre, items[k].Bytes)
			}
		}
	}
	// Streaming state: wantsLeft counts unserved want jobs (no flush may
	// split them off chunk 0), accBytes the encoded size of the items
	// accumulated since the last flush, flushed the boundary.
	wantsLeft := len(wants)
	accBytes, flushed := 0, 0
	flush := func(final bool) error {
		resolveSpans(flushed, len(items))
		// Cap the slice so the emitter's batch cannot alias later growth.
		err := em.emit(items[flushed:len(items):len(items)], nil, final)
		flushed = len(items)
		accBytes = 0
		return err
	}
	// head indexes the BFS frontier instead of re-slicing queue, so a
	// pooled queue keeps its full backing array across serves.
	head := 0
	for head < len(queue) {
		var j closureJob
		if rt.traversal == TraverseDFS {
			j = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
		} else {
			j = queue[head]
			head++
		}
		if j.want {
			wantsLeft--
		}
		if j.lp.IsNull() {
			continue
		}
		if j.lp.Space != rt.id {
			if j.want {
				return nil, fmt.Errorf("core: fetch for datum %v not owned by space %d", j.lp, rt.id)
			}
			continue
		}
		if seen[j.lp.Addr] {
			continue
		}
		rv, err := rt.res.Resolve(j.lp.Type)
		if err != nil {
			return nil, err
		}
		if !j.want {
			if budgetLeft < rv.Canon {
				continue // budget exhausted for optional data; keep draining queue for cheaper finds
			}
			budgetLeft -= rv.Canon
		}
		seen[j.lp.Addr] = true
		var sp encSpan
		if b, _, ok := rt.encLookup(j.lp); ok {
			hits++
			sp.cached = b
		} else {
			misses++
			if arena == nil {
				arena = xdr.NewEncoder(len(wants)*16 + min(budget, 1<<16))
			}
			sp.pre, sp.publish = rt.encPrepare(j.lp.Addr, rv.Layout.Size)
			sp.start = arena.Len()
			pure, err := encodeObjectInto(arena, rt.space, rt.table, rt.res, rv.Desc, j.lp.Addr)
			if err != nil {
				return nil, fmt.Errorf("encode %v: %w", j.lp, err)
			}
			sp.end = arena.Len()
			// Only heap-pure encodings may be published: a cache-region
			// pointer unswizzles through allocation-table state that page
			// versions cannot observe.
			sp.publish = sp.publish && pure
		}
		items = append(items, wire.DataItem{LP: j.lp})
		spans = append(spans, sp)
		if !j.frozen {
			// Enqueue the pointed-to data, honoring any programmer-supplied
			// closure shape hint for this type (§6: "use suggestions provided
			// by the programmer" to optimize the closure's shape).
			desc, layout := rv.Desc, rv.Layout
			hint := rt.closureHint(desc.ID)
			for i, f := range desc.Fields {
				if f.Kind != types.Ptr {
					continue
				}
				if hint != nil && !hint[f.Name] {
					continue
				}
				count := f.Count
				if count <= 1 {
					count = 1
				}
				fl := layout.Fields[i]
				for e := 0; e < count; e++ {
					pv, err := rt.space.ReadPtrRaw(j.lp.Addr + vmem.VAddr(fl.Offset+e*fl.ElemSize))
					if err != nil {
						return nil, err
					}
					if pv == vmem.Null {
						continue
					}
					target, err := rt.table.Unswizzle(pv, f.Elem)
					if err != nil {
						return nil, err
					}
					queue = append(queue, closureJob{lp: target})
				}
			}
		}
		if em != nil {
			blen := len(sp.cached)
			if sp.cached == nil {
				blen = sp.end - sp.start
			}
			accBytes += wire.EncodedLongPtrSize + 8 + (blen+3)&^3
			// more is judged after this item's children were enqueued, so a
			// linear chain (each item feeding exactly one successor) streams
			// just like a bushy tree.
			more := head < len(queue)
			if rt.traversal == TraverseDFS {
				more = len(queue) > 0
			}
			// Flush only with traversal still pending: a closure that ends
			// exactly here stays monolithic (streaming with one chunk would
			// be the classic reply with extra framing).
			if wantsLeft == 0 && accBytes >= em.limit && more {
				if err := flush(false); err != nil {
					return nil, err
				}
			}
		}
	}
	rt.encTraceServe(hits, misses)
	if em != nil && em.sent > 0 {
		// The reply streamed; close it with the tail (possibly empty).
		if err := flush(true); err != nil {
			return nil, err
		}
		return nil, nil
	}
	resolveSpans(0, len(items))
	return items, nil
}

// eagerClosureFor builds the full transitive closure of every locally
// owned pointer argument: the fully eager baseline's call-time transfer.
func (rt *Runtime) eagerClosureFor(args []Value) ([]wire.DataItem, error) {
	var roots []wire.LongPtr
	for _, v := range args {
		if v.Kind != types.Ptr || v.Addr == vmem.Null {
			continue
		}
		lp, err := rt.table.Unswizzle(v.Addr, v.Elem)
		if err != nil {
			return nil, err
		}
		if lp.Space == rt.id {
			roots = append(roots, lp)
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}
	return rt.buildClosureItems(roots, 0, math.MaxInt32, nil, nil)
}

// fetchOne retrieves a single object's canonical bytes without caching:
// the fully lazy baseline's per-dereference callback.
func (rt *Runtime) fetchOne(lp wire.LongPtr) ([]byte, error) {
	if lp.Space == rt.id {
		// Locally owned data is read directly; no session needed. The
		// lazy baseline re-reads hot objects constantly, so it consults
		// the encode cache too.
		rv, err := rt.res.Resolve(lp.Type)
		if err != nil {
			return nil, err
		}
		if b, _, ok := rt.encLookup(lp); ok {
			rt.encTraceServe(1, 0)
			return b, nil
		}
		pre, cacheable := rt.encPrepare(lp.Addr, rv.Layout.Size)
		enc := xdr.NewEncoder(rv.Canon)
		pure, err := encodeObjectInto(enc, rt.space, rt.table, rt.res, rv.Desc, lp.Addr)
		if err != nil {
			return nil, err
		}
		b := enc.Bytes()
		if cacheable && pure {
			rt.encPublish(lp, pre, b)
		}
		rt.encTraceServe(0, 1)
		return b, nil
	}
	rt.sessMu.Lock()
	sess := rt.sess
	rt.sessMu.Unlock()
	if sess == 0 {
		return nil, ErrNoSession
	}
	p := wire.FetchPayload{Wants: []wire.LongPtr{lp}, Budget: 0}
	rt.stats.fetchesSent.Add(1)
	reply, err := rt.sendAndWait(wire.Message{
		Kind:    wire.KindFetch,
		Session: sess,
		To:      lp.Space,
		Payload: p.Encode(),
	})
	if err != nil {
		return nil, err
	}
	if reply.Err != "" {
		return nil, fmt.Errorf("fetch %v: %s", lp, reply.Err)
	}
	rp, err := wire.DecodeItemsPayload(reply.Payload)
	if err != nil {
		return nil, err
	}
	if len(rp.Items) != 1 || rp.Items[0].LP != lp {
		return nil, fmt.Errorf("fetch %v: unexpected reply shape (%d items)", lp, len(rp.Items))
	}
	return rp.Items[0].Bytes, nil
}

// writeOne sends a single object's canonical bytes home: the lazy
// baseline's write path (read-modify-write-back).
func (rt *Runtime) writeOne(lp wire.LongPtr, data []byte) error {
	if lp.Space == rt.id {
		// Locally owned data is written directly; no session needed.
		rv, err := rt.res.Resolve(lp.Type)
		if err != nil {
			return err
		}
		if err := decodeObject(rt.space, rt.table, rt.res, rv.Desc, lp.Addr, data); err != nil {
			return err
		}
		rt.encInvalidate(lp.Addr)
		return nil
	}
	rt.sessMu.Lock()
	sess := rt.sess
	rt.sessMu.Unlock()
	if sess == 0 {
		return ErrNoSession
	}
	// Writing through to the origin makes it a session participant even
	// if no call ever reaches it: the ship state this exchange records on
	// both ends must be torn down by the end-of-session invalidation.
	rt.mergeParts([]uint32{lp.Space})
	// Repeated read-modify-write of the same datum is the lazy baseline's
	// whole life; ship only what changed since the origin last saw it,
	// and nothing at all when the value is unchanged.
	items := rt.deltaShipItems(lp.Space, sess, []wire.DataItem{{LP: lp, Bytes: data}}, true)
	if len(items) == 0 {
		return nil
	}
	p := wire.ItemsPayload{Items: items}
	rt.stats.writeBackMsgs.Add(1)
	reply, err := rt.sendAndWait(wire.Message{
		Kind:    wire.KindWriteBack,
		Session: sess,
		To:      lp.Space,
		Payload: p.Encode(),
	})
	if err != nil {
		return err
	}
	if reply.Err != "" {
		return fmt.Errorf("write back %v: %s", lp, reply.Err)
	}
	return nil
}

package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"smartrpc/internal/wire"
)

// Per-origin health: incarnation fencing and a consecutive-failure
// circuit breaker.
//
// Fencing (§ PROTOCOL.md "Restart incarnations"): an origin configured
// with a nonzero Options.Incarnation stamps it into every reply it
// serves. The first stamped value a client observes for a peer is
// recorded as that relationship's epoch; any later reply carrying a
// different value proves the origin crashed and restarted with a fresh
// heap, so every address this space still holds from it — cached pages,
// warm baselines, swizzled pointers — is resurrected garbage. The fence
// fails the exchange with ErrOriginRestarted (never retried: the data
// is gone, not delayed) after demoting the origin's warm state, so the
// failure mode is a typed error, not a silent read of reused addresses.
//
// The breaker: consecutive demand-exchange failures against one origin
// open a per-origin circuit that sheds speculative (prefetch) traffic —
// speculation is never load-bearing, so refusing to launch it against a
// struggling peer is free — while demand traffic keeps its full retry
// budget. Every breakerProbeEvery'th shed lets one half-open probe
// through; the first demand success closes the circuit.

// breakerThreshold is how many consecutive demand failures against one
// origin open its circuit; breakerProbeEvery is how many speculative
// sheds admit one half-open probe.
const (
	breakerThreshold  = 3
	breakerProbeEvery = 8
)

// peerHealth is one origin's fence + breaker state.
type peerHealth struct {
	incSeen bool
	inc     uint32
	fails   int
	open    bool
	sheds   int
}

// healthState tracks per-origin health. One mutex covers the whole map:
// every touch is a few loads and stores, and the exchange paths it sits
// on each involve at least one network round trip.
type healthState struct {
	mu    sync.Mutex
	peers map[uint32]*peerHealth
}

// peer returns (creating if needed) the state for one origin. Caller
// holds h.mu.
func (h *healthState) peer(id uint32) *peerHealth {
	if h.peers == nil {
		h.peers = make(map[uint32]*peerHealth)
	}
	p := h.peers[id]
	if p == nil {
		p = &peerHealth{}
		h.peers[id] = p
	}
	return p
}

// fenceCheck validates the incarnation a reply from peer carried. The
// first observation records the epoch; a change trips the fence:
// record the new epoch (so the relationship can resume if the caller
// chooses to re-import), demote every warm view held for the origin,
// and return an ErrOriginRestarted-wrapped error.
func (rt *Runtime) fenceCheck(peer uint32, inc uint32) error {
	h := &rt.health
	h.mu.Lock()
	p := h.peer(peer)
	if !p.incSeen {
		p.incSeen = true
		p.inc = inc
		h.mu.Unlock()
		return nil
	}
	if p.inc == inc {
		h.mu.Unlock()
		return nil
	}
	old := p.inc
	p.inc = inc
	h.mu.Unlock()
	rt.stats.fenceTrips.Add(1)
	rt.trace(Event{Kind: EvFenceTrip, Target: peer, Page: old, Count: int(inc)})
	rt.fenceDemote(peer)
	return fmt.Errorf("core: space %d restarted (incarnation %d -> %d): %w",
		peer, old, inc, ErrOriginRestarted)
}

// fenceDemote strips the warm baselines held for a restarted origin:
// its heap is fresh, so no offered hash can match and no delta base is
// valid. The cached pages themselves are torn down by the session abort
// the fence error forces.
func (rt *Runtime) fenceDemote(origin uint32) {
	rt.warm.mu.Lock()
	var lps []wire.LongPtr
	for lp := range rt.warm.views {
		if lp.Space == origin {
			lps = append(lps, lp)
		}
	}
	rt.warm.mu.Unlock()
	rt.degradeLPs(lps)
}

// noteSuccess records a completed demand exchange with peer, closing
// its breaker if open.
func (h *healthState) noteSuccess(rt *Runtime, peer uint32) {
	h.mu.Lock()
	p := h.peer(peer)
	wasOpen := p.open
	p.fails, p.open, p.sheds = 0, false, 0
	h.mu.Unlock()
	if wasOpen {
		rt.trace(Event{Kind: EvBreakerClose, Target: peer})
	}
}

// noteFailure records a failed demand exchange attempt with peer,
// opening its breaker at the consecutive-failure threshold.
func (h *healthState) noteFailure(rt *Runtime, peer uint32) {
	h.mu.Lock()
	p := h.peer(peer)
	p.fails++
	opened := !p.open && p.fails >= breakerThreshold
	if opened {
		p.open = true
		p.sheds = 0
	}
	h.mu.Unlock()
	if opened {
		rt.stats.breakerOpens.Add(1)
		rt.trace(Event{Kind: EvBreakerOpen, Target: peer})
	}
}

// allowSpec reports whether a speculative launch against peer may
// proceed. An open breaker sheds it, except that every
// breakerProbeEvery'th shed is admitted as a half-open probe so the
// breaker discovers recovery even on an all-speculative edge.
func (h *healthState) allowSpec(rt *Runtime, peer uint32) bool {
	h.mu.Lock()
	p := h.peer(peer)
	if !p.open {
		h.mu.Unlock()
		return true
	}
	p.sheds++
	probe := p.sheds%breakerProbeEvery == 0
	h.mu.Unlock()
	if probe {
		rt.trace(Event{Kind: EvBreakerProbe, Target: peer})
		return true
	}
	rt.stats.breakerSheds.Add(1)
	return false
}

// errTransient is an internal classification sentinel: exchange
// failures wrapped with it (lost or late frames, corruption, torn
// chunk sequences) are worth re-issuing under the retry policy.
var errTransient = errors.New("core: transient exchange fault")

// retryLoop drives one logical exchange under the runtime's retry
// policy. attempt performs one try under the sequence number it is
// given (same xid, bumped attempt ordinal each call) and classifies its
// outcome: transient=true marks a failure worth re-issuing — deadline,
// send error, frame corrupted in flight, torn chunk stream — while
// transient=false is terminal either way (success, an application
// error, a fence trip). The odd corner (transient=true, err=nil) is a
// checksum-rejected reply the caller wants surfaced through its own
// reply plumbing if the budget runs out: exhaustion returns nil and the
// caller reads the captured reply.
//
// With Options.RetryBudget unset this is exactly one attempt with
// health accounting — nothing more on the wire than the seed protocol.
func (rt *Runtime) retryLoop(peer uint32, kind wire.Kind, attempt func(seq uint64) (transient bool, err error)) error {
	xid := rt.seq.Add(1) & wire.SeqXIDMask
	var deadline time.Time
	if rt.retryBudget > 0 {
		deadline = time.Now().Add(rt.retryBudget)
	}
	for a := 0; ; a++ {
		transient, err := attempt(wire.SeqWithAttempt(xid, uint8(a)))
		if !transient {
			if err == nil {
				rt.health.noteSuccess(rt, peer)
				if a > 0 {
					rt.stats.retrySuccesses.Add(1)
				}
			}
			return err
		}
		rt.health.noteFailure(rt, peer)
		if rt.retryBudget <= 0 || a >= rt.maxRetries {
			if rt.retryBudget > 0 {
				rt.stats.retriesExhausted.Add(1)
			}
			return err
		}
		delay := retryBackoff(rt.id, xid, a)
		if !time.Now().Add(delay).Before(deadline) {
			rt.stats.retriesExhausted.Add(1)
			return err
		}
		select {
		case <-time.After(delay):
		case <-rt.stop:
			return ErrClosed
		}
		rt.stats.retries.Add(1)
		rt.trace(Event{Kind: EvRetry, Target: peer, Proc: kind.String(), Count: a + 1})
	}
}

// Retry backoff: capped exponential with deterministic jitter. The
// jitter derives from (space id, exchange id, attempt) through a
// splitmix64 mix — a pure function, so a seeded chaos run replays the
// same pacing every time, yet distinct exchanges desynchronize instead
// of retrying in lockstep.
const (
	retryBaseDelay = 2 * time.Millisecond
	retryMaxDelay  = 50 * time.Millisecond
)

func retryBackoff(id uint32, xid uint64, attempt int) time.Duration {
	base := retryBaseDelay << uint(attempt)
	if base > retryMaxDelay || base <= 0 {
		base = retryMaxDelay
	}
	j := mix64(uint64(id)<<56 ^ xid<<8 ^ uint64(attempt))
	return base/2 + time.Duration(j%uint64(base/2+1))
}

// mix64 is the splitmix64 finalizer (Steele et al.), the same mixer the
// fault simulator uses for its deterministic per-frame draws.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

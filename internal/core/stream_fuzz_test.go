package core

import (
	"testing"

	"smartrpc/internal/wire"
)

// FuzzChunkReassembly drives the client-side chunk assembler with a
// well-formed chunk sequence plus one fuzz-chosen corruption — a dropped
// chunk, a duplicated chunk, an adjacent swap, a wrong exchange id, or a
// chunk after the final one — and checks the assembler accepts exactly
// the intact prefix and rejects the first out-of-contract chunk. The
// client installs chunks as they arrive, so this gate is all that stands
// between a reordering transport and a torn closure.
func FuzzChunkReassembly(f *testing.F) {
	f.Add(uint64(1), 5, 0, 0)
	f.Add(uint64(7), 8, 1, 3)
	f.Add(uint64(9), 2, 2, 1)
	f.Add(uint64(3), 6, 3, 2)
	f.Add(uint64(0xdeadbeef), 4, 4, 0)
	f.Add(uint64(2), 3, 5, 1)
	f.Fuzz(func(t *testing.T, xid uint64, n, mutate, pick int) {
		if n < 1 || n > 64 {
			return
		}
		seq := make([]wire.FetchChunkPayload, n)
		for i := range seq {
			seq[i] = wire.FetchChunkPayload{XID: xid, Chunk: uint32(i), Final: i == n-1}
		}
		if pick < 0 {
			pick = -(pick + 1)
		}
		// badAt is the index in the (mutated) sequence where the assembler
		// must reject; -1 means the whole sequence is in contract.
		badAt := -1
		switch m := ((mutate % 6) + 6) % 6; m {
		case 0: // intact
		case 1: // drop a non-final chunk (a dropped final is not a
			// reassembly error — the stream just never finishes, which the
			// timeout path owns, not the assembler)
			if n < 2 {
				return
			}
			at := pick % (n - 1)
			seq = append(seq[:at], seq[at+1:]...)
			badAt = at // the successor's ordinal skips one
		case 2: // duplicate one chunk
			at := pick % n
			seq = append(seq[:at+1], seq[at:]...)
			badAt = at + 1
		case 3: // swap adjacent chunks
			if n < 2 {
				return
			}
			at := pick % (n - 1)
			seq[at], seq[at+1] = seq[at+1], seq[at]
			badAt = at
		case 4: // wrong exchange id on one chunk
			at := pick % n
			seq[at].XID = xid + 1
			badAt = at
		case 5: // a chunk after the final one
			seq = append(seq, wire.FetchChunkPayload{XID: xid, Chunk: uint32(n), Final: true})
			badAt = n
		}
		asm := &chunkAssembler{xid: xid}
		for i := range seq {
			err := asm.accept(&seq[i])
			if badAt == -1 || i < badAt {
				if err != nil {
					t.Fatalf("chunk %d (ordinal %d) rejected in an intact prefix: %v", i, seq[i].Chunk, err)
				}
				continue
			}
			if err == nil {
				t.Fatalf("mutation %d: chunk %d (ordinal %d, xid %d) accepted; want reject",
					((mutate%6)+6)%6, i, seq[i].Chunk, seq[i].XID)
			}
			return
		}
		if badAt != -1 {
			t.Fatalf("mutated sequence fully accepted")
		}
		if !asm.done {
			t.Fatalf("intact sequence did not finish the assembler")
		}
	})
}

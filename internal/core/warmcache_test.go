package core

import (
	"testing"

	"smartrpc/internal/wire"
)

// warmPair builds a caller/callee pair with invariant checking on, so
// every warm-cache exchange is also validated by the checker.
func warmPair(t *testing.T, mut func(id uint32, o *Options)) (*Runtime, *Runtime) {
	t.Helper()
	return pair(t, func(id uint32, o *Options) {
		o.CheckInvariants = true
		if mut != nil {
			mut(id, o)
		}
	})
}

func TestWarmSecondSessionAllTokens(t *testing.T) {
	caller, callee := warmPair(t, nil)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 4) // 15 nodes

	if got := sessionCall(t, caller, 2, "sumTree", root)[0].Int64(); got != wantSum(4) {
		t.Fatalf("first session sum = %d, want %d", got, wantSum(4))
	}
	cold := callee.Stats()
	if cold.CohRevalidateHits != 0 || cold.CohRevalidateMisses != 0 {
		t.Fatalf("revalidation counters nonzero after first session: %+v", cold)
	}
	if cold.ItemsInstalled != 15 {
		t.Fatalf("first session installed %d items, want 15", cold.ItemsInstalled)
	}

	// Nothing changed: the second session must promote every cached node
	// with zero-byte tokens and install nothing new.
	if got := sessionCall(t, caller, 2, "sumTree", root)[0].Int64(); got != wantSum(4) {
		t.Fatalf("second session sum = %d, want %d", got, wantSum(4))
	}
	warm := callee.Stats()
	if warm.CohRevalidateHits != 15 {
		t.Errorf("revalidate hits = %d, want 15", warm.CohRevalidateHits)
	}
	if warm.CohRevalidateMisses != 0 {
		t.Errorf("revalidate misses = %d, want 0", warm.CohRevalidateMisses)
	}
	if warm.CohRevalidateBytes != 0 {
		t.Errorf("revalidate bytes = %d, want 0 (tokens only)", warm.CohRevalidateBytes)
	}
	if warm.ItemsInstalled != cold.ItemsInstalled {
		t.Errorf("second session re-installed items: %d -> %d (want no full refetches of unchanged data)",
			cold.ItemsInstalled, warm.ItemsInstalled)
	}
}

func TestWarmMutationShipsOnlyChangedData(t *testing.T) {
	caller, callee := warmPair(t, nil)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 4)
	sessionCall(t, caller, 2, "sumTree", root)

	// Mutate one node in the owner's heap between sessions.
	ref, err := caller.Deref(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetInt("data", 0, 1000); err != nil {
		t.Fatal(err)
	}

	want := wantSum(4) - 1 + 1000
	if got := sessionCall(t, caller, 2, "sumTree", root)[0].Int64(); got != want {
		t.Fatalf("post-mutation sum = %d, want %d", got, want)
	}
	s := callee.Stats()
	if s.CohRevalidateMisses != 1 {
		t.Errorf("revalidate misses = %d, want 1 (only the mutated node)", s.CohRevalidateMisses)
	}
	if s.CohRevalidateHits != 14 {
		t.Errorf("revalidate hits = %d, want 14", s.CohRevalidateHits)
	}
	if s.CohRevalidateBytes == 0 {
		t.Error("mutated node shipped zero bytes")
	}
	// The changed node should travel as a range delta, far below its
	// 40-byte canonical encoding.
	if s.CohRevalidateBytes >= 40 {
		t.Errorf("mutated node shipped %d bytes; expected a delta smaller than the full body", s.CohRevalidateBytes)
	}
}

func TestWarmRepeatedSessionsStayCoherent(t *testing.T) {
	caller, callee := warmPair(t, nil)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 4)
	ref, err := caller.Deref(root)
	if err != nil {
		t.Fatal(err)
	}
	base := wantSum(4) - 1
	for i := int64(0); i < 5; i++ {
		if err := ref.SetInt("data", 0, 100+i); err != nil {
			t.Fatal(err)
		}
		want := base + 100 + i
		if got := sessionCall(t, caller, 2, "sumTree", root)[0].Int64(); got != want {
			t.Fatalf("session %d sum = %d, want %d", i, got, want)
		}
	}
	s := callee.Stats()
	// Sessions 2..5: each revalidates 15 nodes, 14 unchanged + 1 changed.
	if s.CohRevalidateHits != 4*14 {
		t.Errorf("revalidate hits = %d, want %d", s.CohRevalidateHits, 4*14)
	}
	if s.CohRevalidateMisses != 4 {
		t.Errorf("revalidate misses = %d, want 4", s.CohRevalidateMisses)
	}
}

func TestWarmCalleeModificationTokensAfterWriteBack(t *testing.T) {
	// The callee modifies cached data; the write-back makes the origin's
	// heap equal to the callee's cache, so the next session must still be
	// all tokens — the hash check sees through the round trip.
	caller, callee := warmPair(t, nil)
	err := callee.Register("bump", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		v, err := ref.Int("data", 0)
		if err != nil {
			return nil, err
		}
		if err := ref.SetInt("data", 0, v+1); err != nil {
			return nil, err
		}
		return []Value{Int64Value(v + 1)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 1)
	if got := sessionCall(t, caller, 2, "bump", root)[0].Int64(); got != 2 {
		t.Fatalf("first bump = %d, want 2", got)
	}
	if got := sessionCall(t, caller, 2, "bump", root)[0].Int64(); got != 3 {
		t.Fatalf("second bump = %d, want 3", got)
	}
	s := callee.Stats()
	if s.CohRevalidateHits != 1 || s.CohRevalidateMisses != 0 {
		t.Errorf("callee-modified datum revalidated as hits=%d misses=%d, want 1/0",
			s.CohRevalidateHits, s.CohRevalidateMisses)
	}
}

func TestWarmAbortClearsBaselines(t *testing.T) {
	caller, callee := warmPair(t, nil)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 3)
	sessionCall(t, caller, 2, "sumTree", root)

	// An abort must drop the warm state: the next session pays full
	// fetches again, and still computes the right answer.
	callee.AbortSession()
	if got := sessionCall(t, caller, 2, "sumTree", root)[0].Int64(); got != wantSum(3) {
		t.Fatalf("post-abort sum = %d, want %d", got, wantSum(3))
	}
	if s := callee.Stats(); s.CohRevalidateHits != 0 || s.CohRevalidateMisses != 0 {
		t.Errorf("aborted cache still revalidated: hits=%d misses=%d",
			s.CohRevalidateHits, s.CohRevalidateMisses)
	}
}

func TestWarmDisabledNeverValidates(t *testing.T) {
	caller, callee := warmPair(t, func(id uint32, o *Options) { o.DisableWarmCache = true })
	registerSumProc(t, callee)
	root := buildTree(t, caller, 4)
	sessionCall(t, caller, 2, "sumTree", root)
	sessionCall(t, caller, 2, "sumTree", root)
	s := callee.Stats()
	if s.CohRevalidateMsgs != 0 || s.CohRevalidateHits != 0 {
		t.Errorf("warm-disabled runtime revalidated: %+v", s)
	}
	if s.ItemsInstalled != 30 {
		t.Errorf("items installed = %d, want 30 (two full sessions)", s.ItemsInstalled)
	}
}

func TestWarmFreedDatumDegradesCleanly(t *testing.T) {
	// Free a cached-and-demoted datum at its origin between sessions; the
	// revalidation must degrade (server-side encode error) without
	// poisoning the session.
	caller, callee := warmPair(t, nil)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 1) // a single node
	sessionCall(t, caller, 2, "sumTree", root)

	if err := caller.ExtendedFree(root); err != nil {
		t.Fatal(err)
	}
	// The callee's stale row now points at freed origin memory. A fresh
	// tree reuses the heap; the old row's revalidation (if its page is
	// faulted) must not serve stale bytes. Build a new tree and sum it.
	root2 := buildTree(t, caller, 2)
	if got := sessionCall(t, caller, 2, "sumTree", root2)[0].Int64(); got != wantSum(2) {
		t.Fatalf("post-free sum = %d, want %d", got, wantSum(2))
	}
}

func TestAdaptiveEagernessCountersAccumulate(t *testing.T) {
	caller, callee := warmPair(t, func(id uint32, o *Options) { o.AdaptiveEagerness = true })
	registerSumProc(t, callee)
	root := buildTree(t, caller, 5)
	sessionCall(t, caller, 2, "sumTree", root)
	usage := callee.EagerUsageStats()
	if len(usage) == 0 {
		t.Fatal("no eagerness usage recorded after a session")
	}
	var hits, waste uint64
	for _, u := range usage {
		if u.Origin != caller.ID() {
			t.Errorf("usage recorded for unexpected origin %d", u.Origin)
		}
		hits += u.Hits
		waste += u.Waste
	}
	// The tree walk touches every node, so the closure was all hit.
	if hits != 31 || waste != 0 {
		t.Errorf("usage hits=%d waste=%d, want 31/0", hits, waste)
	}
	// A second, identical session doubles the counters and stays correct.
	if got := sessionCall(t, caller, 2, "sumTree", root)[0].Int64(); got != wantSum(5) {
		t.Fatalf("adaptive second session sum = %d", got)
	}
}

func TestAdaptiveEagernessShrinksOnWaste(t *testing.T) {
	// A handler that touches only the root of a large shipped closure
	// wastes most of it; with adaptation on, the callee's budget for the
	// origin must shrink below the configured closure size. Small pages
	// spread the closure out so the page-granular accounting can see the
	// untouched remainder.
	caller, callee := warmPair(t, func(id uint32, o *Options) {
		o.AdaptiveEagerness = true
		o.PageSize = 256
	})
	err := callee.Register("peek", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		v, err := ref.Int("data", 0)
		if err != nil {
			return nil, err
		}
		return []Value{Int64Value(v)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 6) // big closure, mostly unread
	if got := sessionCall(t, caller, 2, "peek", root)[0].Int64(); got != 1 {
		t.Fatalf("peek = %d, want 1", got)
	}
	if b := callee.budgetFor(caller.ID()); b >= callee.ClosureSize() {
		t.Errorf("budget for origin = %d, want < %d after a wasted closure", b, callee.ClosureSize())
	}
	// Still correct with the shrunken budget.
	if got := sessionCall(t, caller, 2, "peek", root)[0].Int64(); got != 1 {
		t.Fatalf("second peek = %d, want 1", got)
	}
}

func TestValidateWireRoundTrip(t *testing.T) {
	// The request/reply payloads used by the warm path survive a codec
	// round trip with hash fidelity (belt over the fuzz targets).
	p := wire.ValidatePayload{Tuples: []wire.ValidateTuple{
		{LP: wire.LongPtr{Space: 1, Addr: 0x10000, Type: 1}, Ver: 7, Sum: wire.Sum64([]byte("abc"))},
	}}
	q, err := wire.DecodeValidatePayload(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tuples) != 1 || q.Tuples[0] != p.Tuples[0] {
		t.Fatalf("round trip changed tuples: %+v vs %+v", p.Tuples, q.Tuples)
	}
	r := wire.ValidateReplyPayload{Items: []wire.ValidateItem{
		{LP: p.Tuples[0].LP, Form: wire.ValidateCurrent},
		{LP: wire.LongPtr{Space: 1, Addr: 0x10040, Type: 1}, Form: wire.ValidateFull, Bytes: []byte{1, 2, 3, 4}},
	}}
	rr, err := wire.DecodeValidateReplyPayload(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Items) != 2 || rr.Items[0].Form != wire.ValidateCurrent || len(rr.Items[1].Bytes) != 4 {
		t.Fatalf("reply round trip changed items: %+v", rr.Items)
	}
}

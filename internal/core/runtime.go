package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"smartrpc/internal/arch"
	"smartrpc/internal/swizzle"
	"smartrpc/internal/transport"
	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
)

// Policy selects the pointer-transfer strategy. The paper evaluates its
// proposed method (PolicySmart) against two baselines built on the same
// substrate.
type Policy int

// Policies.
const (
	// PolicySmart is the paper's method: protected page areas, page-fault
	// driven fetch with a bounded eager closure, caching, and the session
	// coherency protocol.
	PolicySmart Policy = iota + 1
	// PolicyEager marshals the full transitive closure of every pointer
	// argument with the call (rpcgen-style), so the callee never faults.
	PolicyEager
	// PolicyLazy performs a callback for every pointer dereference, with
	// no caching — even repeated dereferences of the same pointer.
	PolicyLazy
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicySmart:
		return "smart"
	case PolicyEager:
		return "eager"
	case PolicyLazy:
		return "lazy"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Traversal selects the closure traversal order (§3.3; breadth-first is
// the paper's choice, depth-first is the ablation).
type Traversal int

// Traversal orders.
const (
	TraverseBFS Traversal = iota + 1
	TraverseDFS
)

// Coherence selects how the modified data set moves (§3.4).
type Coherence int

// Coherence protocols.
const (
	// CoherencePiggyback ships dirty cached data with every control
	// transfer (the paper's protocol).
	CoherencePiggyback Coherence = iota + 1
	// CoherenceWriteBack sends dirty data home to its origin space on
	// every control transfer instead (naive ablation). Correct only when
	// no third space re-reads data it cached before the modification; the
	// benchmarks use it on two-party workloads.
	CoherenceWriteBack
)

// Sentinel errors.
var (
	// ErrNoSession is returned by Call outside an RPC session.
	ErrNoSession = errors.New("core: no RPC session in progress")
	// ErrSessionBusy is returned when a message for a different session
	// arrives while one is active.
	ErrSessionBusy = errors.New("core: another RPC session is in progress")
	// ErrUnknownProc is returned for calls to unregistered procedures.
	ErrUnknownProc = errors.New("core: unknown remote procedure")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("core: runtime closed")
	// ErrDeadline is returned when a remote round trip exceeds the
	// runtime's CallTimeout: the peer is partitioned, crashed, or the
	// request or reply frame was lost. Match with errors.Is.
	ErrDeadline = errors.New("core: remote call deadline exceeded")
	// ErrOriginRestarted is returned when a reply carries a restart
	// incarnation different from the one this runtime first observed for
	// that origin: the origin crashed and came back with a fresh heap, so
	// every address this space still holds from it is resurrected
	// garbage. The error is never retried — consuming data from the new
	// incarnation under old pointers would silently read reused
	// addresses. Warm-cache state for the origin is demoted before the
	// error surfaces. Match with errors.Is.
	ErrOriginRestarted = errors.New("core: origin space restarted")
)

// Handler is a remote procedure body. Arguments and results are Values;
// pointer Values dereference transparently through the Ref API.
type Handler func(ctx *Ctx, args []Value) ([]Value, error)

// Options configures a Runtime.
type Options struct {
	// ID is the address-space identifier (must be nonzero and unique on
	// the network, and must not have the top bit set — that range is
	// reserved for provisional allocation bookkeeping).
	ID uint32
	// Node attaches the runtime to the network.
	Node transport.Node
	// Registry is the shared type database.
	Registry *types.Registry
	// PageSize overrides the simulated page size (default 4096).
	PageSize int
	// Profile sets the simulated architecture (default SPARC32).
	Profile arch.Profile
	// Policy selects smart/eager/lazy (default smart).
	Policy Policy
	// ClosureSize is the eager transfer budget in bytes (default 8192,
	// the paper's setting).
	ClosureSize int
	// AllocPolicy selects cache page grouping (default per-origin).
	AllocPolicy swizzle.AllocPolicy
	// Traversal selects closure order (default breadth-first).
	Traversal Traversal
	// Coherence selects the coherency protocol (default piggyback).
	Coherence Coherence
	// ClosureHints restricts which pointer fields the eager closure
	// follows per type (§6's programmer-supplied shape suggestions).
	// Types absent from the map follow every pointer field.
	ClosureHints map[types.ID][]string
	// DisableFetchBatch turns off multi-want FETCH coalescing: every page
	// fault requests only its own page's entries, the seed protocol's
	// behavior. Used by benchmarks and regression tests to measure the
	// batching win.
	DisableFetchBatch bool
	// DisableDeltaShip turns off delta shipping on the coherency path and
	// restores the paper's full-shipping protocol: every crossing
	// re-transmits the complete canonical encoding of every item in the
	// modified data set. The setting must be identical on every space of
	// a network — a full-shipping receiver rejects delta items. Used by
	// benchmarks and regression tests to measure the delta-shipping win.
	DisableDeltaShip bool
	// Concurrent makes the simulated address space take an internal lock
	// on data copies, giving word-level atomicity between application
	// goroutines that share the runtime outside the RPC protocol (e.g. a
	// multithreaded TCP server). It also switches the modified data set
	// to precise per-object write tracking: when other clients' sessions
	// can commit between this space's fetch and its write-back,
	// page-grain dirty shipping would carry stale unwritten neighbors
	// home and overwrite their committed values. The default relies on
	// the protocol's single-active-thread property (§3.1, §3.4) and is
	// lock-free, shipping at page grain exactly as the paper specifies.
	Concurrent bool
	// CallTimeout bounds every remote round trip this runtime issues:
	// Call requests, fetches, write-backs, invalidations, and alloc-batch
	// flushes. Zero (the default) waits forever, the seed protocol's
	// behavior. With a timeout set, a lost frame or a partitioned or
	// crashed peer fails the operation with an error matching ErrDeadline
	// instead of blocking the session indefinitely.
	CallTimeout time.Duration
	// CheckInvariants runs the coherency invariant checker
	// (invariant.go) after every address-space boundary crossing: on
	// every outbound transfer payload, after every batch of installed
	// items, and at session teardown. A violation surfaces as an error
	// matching ErrInvariant on the operation that crossed the boundary.
	// Intended for tests and chaos soaks; off by default.
	CheckInvariants bool
	// DisableWarmCache restores the seed teardown behavior for the smart
	// policy: session-end invalidation discards cached pages outright
	// instead of demoting them to revalidatable stale copies
	// (warmcache.go). Used by benchmarks and regression tests to measure
	// the warm-cache win; the other policies never cache across sessions
	// either way.
	DisableWarmCache bool
	// AdaptiveEagerness lets the runtime adjust its per-origin closure
	// fetch budget between sessions from the measured hit/waste ratio of
	// shipped closures (eager.go). Off by default: the budget stays at
	// ClosureSize, the paper's fixed setting.
	AdaptiveEagerness bool
	// Prefetch enables the speculative pointer-graph prefetcher
	// (prefetch.go): when installs swizzle pointers into fully
	// non-resident pages, bounded background fetches complete the
	// predicted-next pages before the application faults on them.
	// Speculation is never load-bearing — a failed or dropped prefetch
	// degrades silently to the ordinary demand fetch — and a demand fault
	// on a page whose prefetch is in flight joins it instead of
	// re-requesting. Off by default: the demand path's message counts and
	// wire bytes are exactly the seed protocol's.
	Prefetch bool
	// PrefetchDepth is the baseline for how many speculative page fetches
	// may be in flight per origin (default 2 when Prefetch is set). The
	// adaptive usage statistics scale the effective depth per origin:
	// mostly-wasted speculation shrinks it to zero, and mostly-used
	// speculation grows it up to twice the configured depth
	// (prefetchDepthFor) — the hard per-origin in-flight bound is
	// therefore 2×PrefetchDepth.
	PrefetchDepth int
	// SyncPrefetch runs speculative completions inline on the goroutine
	// that triggered them instead of in the background. Latency no longer
	// overlaps computation — the mode exists for the deterministic
	// benchmark rows and for tests, where background timing would make
	// message counts race-dependent. The protocol on the wire is
	// identical either way.
	SyncPrefetch bool
	// EncodeCacheBytes caps the origin-side encode cache (enccache.go),
	// which memoizes the canonical encodings this space serves so N
	// clients fetching the same hot structure pay the marshaling cost
	// once instead of N times. Origin-local with zero wire-format
	// change. Zero selects the default (4 MiB).
	EncodeCacheBytes int
	// DisableEncodeCache turns the encode cache off entirely: every
	// serve re-encodes from the heap, the seed behavior. Used by
	// benchmarks and regression tests to measure the caching win.
	DisableEncodeCache bool
	// StreamChunkBytes is both the streaming threshold and the chunk
	// size for served FETCH/VALIDATE replies: a reply whose encoded
	// items stay at or under the limit goes out as the classic single
	// reply frame (byte-identical to the seed protocol), a larger one
	// streams as a KindFetchChunk sequence whose chunks each carry about
	// this many item bytes. Streaming lets the client decode and
	// install while later chunks are still being encoded and sent, and
	// unblocks the faulting access as soon as the primary page is
	// resident. Zero selects the default (1 MiB — above every reply the
	// committed benchmark snapshots produce, so their wire traffic is
	// unchanged).
	StreamChunkBytes int
	// DisableStreaming forces every served reply monolithic regardless
	// of size (the seed behavior). Used by benchmarks and regression
	// tests to measure the streaming win.
	DisableStreaming bool
	// RetryBudget enables transparent exchange recovery: when an
	// individual round trip fails transiently (deadline, send error, or
	// a frame corrupted in flight), the runtime re-issues the exchange
	// under a fresh attempt sequence number with capped exponential
	// backoff and deterministic jitter, for up to RetryBudget of total
	// wall-clock time per exchange. Zero (the default) disables retries
	// entirely — every attempt is a single shot, the seed behavior, and
	// nothing on the wire changes. Retries only make sense with
	// CallTimeout set (an infinite wait never fails transiently).
	RetryBudget time.Duration
	// MaxRetries caps re-issued attempts per exchange beyond the first
	// (default 6 when RetryBudget is set; values above 255 clamp — the
	// attempt ordinal travels in the top 8 bits of Seq).
	MaxRetries int
	// Incarnation is this runtime's restart incarnation. A supervisor
	// that restarts a crashed space passes a value it increments per
	// restart; the runtime stamps it into every reply it serves, and
	// clients fence on it (ErrOriginRestarted) instead of silently
	// consuming resurrected addresses. Zero (the default) stamps
	// nothing and keeps every frame byte-identical to older builds.
	Incarnation uint32
}

func (o *Options) fill() error {
	if o.ID == 0 {
		return errors.New("core: runtime ID must be nonzero")
	}
	if o.ID&swizzle.ProvisionalAreaFlag != 0 {
		return fmt.Errorf("core: runtime ID %#x uses the reserved top bit", o.ID)
	}
	if o.Node == nil {
		return errors.New("core: transport node required")
	}
	if o.Registry == nil {
		return errors.New("core: type registry required")
	}
	if o.Policy == 0 {
		o.Policy = PolicySmart
	}
	if o.ClosureSize == 0 {
		o.ClosureSize = 8192
	}
	if o.ClosureSize < 0 {
		o.ClosureSize = 0
	}
	if o.AllocPolicy == 0 {
		o.AllocPolicy = swizzle.PolicyPerOrigin
	}
	if o.Traversal == 0 {
		o.Traversal = TraverseBFS
	}
	if o.Coherence == 0 {
		o.Coherence = CoherencePiggyback
	}
	if o.Prefetch && o.PrefetchDepth <= 0 {
		o.PrefetchDepth = defaultPrefetchDepth
	}
	if o.EncodeCacheBytes == 0 {
		o.EncodeCacheBytes = defaultEncodeCacheBytes
	}
	if o.EncodeCacheBytes < 0 {
		o.DisableEncodeCache = true
	}
	if o.StreamChunkBytes == 0 {
		o.StreamChunkBytes = defaultStreamChunkBytes
	}
	if o.StreamChunkBytes < 0 {
		o.DisableStreaming = true
	}
	if o.RetryBudget > 0 && o.MaxRetries == 0 {
		o.MaxRetries = defaultMaxRetries
	}
	if o.MaxRetries > 255 {
		o.MaxRetries = 255
	}
	return nil
}

// defaultMaxRetries is the default attempt cap beyond the first when
// Options.RetryBudget enables transparent retries.
const defaultMaxRetries = 6

// defaultStreamChunkBytes is the default streaming threshold and chunk
// size (Options.StreamChunkBytes).
const defaultStreamChunkBytes = 1 << 20

// Stats is a snapshot of one runtime's counters.
type Stats struct {
	// CallsSent and CallsServed count RPC requests issued and handled.
	CallsSent, CallsServed uint64
	// FetchesSent counts data-request messages issued: the paper's
	// "number of callbacks" (Figure 5).
	FetchesSent uint64
	// FetchesServed counts data requests answered.
	FetchesServed uint64
	// Faults counts access violations delivered by the simulated MMU.
	Faults uint64
	// ItemsInstalled and BytesInstalled count objects cached locally via
	// the fetch/transfer path, where wire bytes equal body bytes. Data
	// re-installed through revalidation is counted by the CohRevalidate
	// family instead, so the two byte columns sum without double counting.
	ItemsInstalled, BytesInstalled uint64
	// DirtyItemsSent counts modified objects shipped on control transfer.
	DirtyItemsSent uint64
	// WriteBackMsgs counts write-back messages sent.
	WriteBackMsgs uint64
	// AllocBatches counts batched remote allocation flushes.
	AllocBatches uint64
	// CohItemsShipped counts coherency-path items actually transmitted
	// (full bodies plus deltas), after delta-shipping elisions.
	CohItemsShipped uint64
	// CohDeltaItems counts the subset of CohItemsShipped sent as
	// byte-range deltas rather than full bodies.
	CohDeltaItems uint64
	// CohItemsSkipped counts coherency-path items elided entirely because
	// the receiving space already held the current version.
	CohItemsSkipped uint64
	// CohItemBytes sums the encoded payload bytes of transmitted
	// coherency-path items (delta items contribute their delta size).
	// With DisableDeltaShip it sums full bodies, making the two modes
	// directly comparable.
	CohItemBytes uint64
	// CohRevalidateMsgs counts Validate messages: batched revalidation
	// requests sent (client side) plus requests answered (server side).
	CohRevalidateMsgs uint64
	// CohRevalidateHits counts stale cached data promoted by a zero-byte
	// "still current" token — pages reused across sessions without
	// re-shipping their bytes.
	CohRevalidateHits uint64
	// CohRevalidateMisses counts stale cached data whose revalidation
	// came back as a delta or full body.
	CohRevalidateMisses uint64
	// CohRevalidateBytes sums the item-body bytes received on the
	// revalidation path (delta items contribute their delta size, tokens
	// contribute zero) — directly comparable to CohItemBytes.
	CohRevalidateBytes uint64
	// PfIssued counts speculative FETCH messages issued by the
	// prefetcher. FetchesSent counts demand and speculative fetches alike,
	// so FetchesSent - PfIssued is the number of fetch round trips the
	// application actually blocked on.
	PfIssued uint64
	// PfCoalesced counts demand faults that found their page's fetch
	// already in flight and joined the pending reply instead of
	// re-requesting (prefetch overlap plus concurrent-fault dedup).
	PfCoalesced uint64
	// PfHits and PfWasted classify prefetch-completed pages at session
	// teardown: a page the session touched through a checked access was a
	// hit, one it never touched was wasted speculation.
	PfHits, PfWasted uint64
	// PfBytes sums the body bytes installed from speculative fetch
	// replies (a subset of BytesInstalled).
	PfBytes uint64
	// EncCacheHits and EncCacheMisses count encode-cache consultations
	// on the origin-side serve paths (fetch closures, validate replies,
	// modified-set snapshots): a hit serves memoized canonical bytes, a
	// miss encodes from the heap and publishes the result.
	EncCacheHits, EncCacheMisses uint64
	// EncCacheEvictions counts entries the CLOCK hand displaced to stay
	// under Options.EncodeCacheBytes.
	EncCacheEvictions uint64
	// EncCacheInvalidations counts entries dropped because their object
	// changed: proactive drops on write-back installs and frees plus
	// lazy page-version mismatches discovered at lookup.
	EncCacheInvalidations uint64
	// EncCacheBytes is the cache's current resident body bytes (a
	// gauge, not a counter). Zero when the cache is disabled — and
	// right after a restart, since the cache dies with its runtime.
	EncCacheBytes uint64
	// Retries counts exchange attempts re-issued after a transient
	// failure (Options.RetryBudget). RetrySuccesses counts exchanges
	// that completed after at least one retry; RetriesExhausted counts
	// exchanges that failed with their budget or attempt cap spent.
	Retries, RetrySuccesses, RetriesExhausted uint64
	// StaleReplyDrops counts replies that arrived for an exchange
	// attempt its waiter had already abandoned (timed out or retried):
	// the dispatcher positively discards them and releases any pooled
	// frame buffer they carry.
	StaleReplyDrops uint64
	// DedupReplays counts retried requests this space answered from its
	// at-most-once reply cache instead of re-executing; DedupSwallowed
	// counts retried requests absorbed because the first attempt was
	// still executing (the eventual reply goes to the newest attempt).
	DedupReplays, DedupSwallowed uint64
	// FenceTrips counts replies rejected because the origin's restart
	// incarnation changed mid-relationship (ErrOriginRestarted).
	FenceTrips uint64
	// BreakerOpens counts per-origin circuit-breaker openings after
	// consecutive demand failures; BreakerSheds counts speculative
	// (prefetch) launches the open breaker refused.
	BreakerOpens, BreakerSheds uint64
}

// Runtime is one address space's Smart RPC runtime system.
type Runtime struct {
	id            uint32
	node          transport.Node
	reg           *types.Registry
	res           *types.Resolver // per-profile Lookup+Layout cache
	space         *vmem.Space
	table         *swizzle.Table
	policy        Policy
	closure       int
	traversal     Traversal
	coherence     Coherence
	noFetchBatch  bool
	noDeltaShip   bool
	noWarmCache   bool
	adaptiveEager bool
	concurrent    bool
	callTimeout   time.Duration
	checkInv      bool
	streamChunk   int
	noStreaming   bool
	retryBudget   time.Duration
	maxRetries    int
	incarnation   uint32

	// replay is the origin-side at-most-once reply cache
	// (replaycache.go): retried non-idempotent exchanges replay their
	// cached reply instead of re-executing.
	replay *replayCache

	// health is the per-origin fence + circuit-breaker state
	// (health.go): incarnation fencing against restarted origins, and
	// consecutive-failure tracking that sheds speculative traffic.
	health healthState

	// bgDrain tracks background chunk drainers: goroutines finishing the
	// tail of a streamed fetch after the faulting access was unblocked.
	// Teardown paths (session end, invalidation) quiesce it before
	// demoting or discarding the cache, so a drain never installs into a
	// page being torn down.
	bgDrain sync.WaitGroup

	// skipLocalInvalidate, when set, makes EndSession skip the local
	// demote/invalidate of this space's own cache after write-back. It
	// exists solely so tests can seed a coherency violation (a stale read
	// in the next session) and prove the history checker catches it;
	// nothing in the runtime ever sets it.
	skipLocalInvalidate bool

	// touched records, per session, the cache addresses of foreign
	// objects this space actually wrote (Ref setters), allocated
	// (ExtendedMalloc), or adopted a dirty obligation for (installItems).
	// Dirty-page tracking alone is too coarse for the modified data set:
	// a page holds several objects, and with concurrent sessions over a
	// shared origin, writing back a stale unmodified neighbor from a
	// dirty page would clobber another client's committed write.
	touchedMu sync.Mutex
	touched   map[vmem.VAddr]bool

	hintMu sync.RWMutex
	hints  map[types.ID]map[string]bool

	procsMu sync.RWMutex
	procs   map[string]Handler

	seq atomic.Uint64
	// pending maps in-flight request sequence numbers to their waiters'
	// reply channels, lock-striped (pending.go) so the fan-out fetch
	// path, the prefetcher, and concurrent application goroutines do not
	// contend on one mutex.
	pending *pendingTable

	// installMu serializes cache installs (installItems and the
	// revalidation install path): the page-protection discipline — every
	// entry resident before protection is released — is checked and acted
	// on per install batch, and concurrent batches may share pages through
	// ride-along wants, so install order must be total.
	installMu sync.Mutex

	// serveMu orders server-side heap access now that requests are served
	// concurrently off the receive loop: fetch/validate serves encode heap
	// objects under the read lock, write-back/alloc/invalidate serves
	// mutate state under the write lock. The protocol's single thread of
	// control makes contention impossible in a healthy session; the lock
	// matters when a chaos transport delays a write-back into a window
	// where another space's fetch is being served.
	serveMu sync.RWMutex

	// inflight is the in-flight fetch registry (fetch.go): one entry per
	// (cache page, origin) pair whose FETCH or VALIDATE exchange is
	// outstanding. A demand fault on a registered page joins the pending
	// completion instead of re-requesting.
	inflightMu sync.Mutex
	inflight   map[fetchKey]*inflightFetch

	// pf is the speculative prefetcher state; nil unless Options.Prefetch.
	pf *prefetcher

	// serveQ is the bounded worker pool serving non-Call requests off the
	// receive loop; messages are striped by sender so per-(from, session)
	// request order is preserved.
	serveQ  [serveWorkers]chan wire.Message
	serveWG sync.WaitGroup

	// dupMu guards the per-peer windows of recently seen request
	// sequence numbers. Transports may duplicate frames (and the chaos
	// transport does so deliberately); re-executing a Call or WriteBack
	// would double its side effects and desynchronize the per-edge
	// coherency versions, so the dispatcher drops exact duplicates.
	dupMu sync.Mutex
	dups  map[uint32]*seqWindow

	sessMu sync.Mutex
	sess   uint64
	ground bool
	parts  map[uint32]bool

	allocMu   sync.Mutex
	batch     map[uint32]*originBatch // origin → pending allocs/frees
	provCount uint32
	// provMap remembers every provisional → real rebinding performed by
	// flushAllocBatches. The smart/eager paths read rebound identities
	// out of the data allocation table, but a lazy-mode Value captured
	// from ExtendedMalloc carries the provisional long pointer by value,
	// so resolveLP must be able to translate it long after the flush —
	// including in later sessions, since the allocation itself persists.
	// The map is published copy-on-write: resolveLP sits on the argument
	// and dereference hot paths and loads it without taking allocMu;
	// flushAllocBatches builds the successor map under allocMu (one copy
	// per batch, not per allocation) and stores it here.
	provMap atomic.Pointer[map[wire.LongPtr]wire.LongPtr]

	// sessionModified tracks locally owned data modified by other spaces,
	// keyed by the session that modified it. The paper's protocol keeps
	// the modified data set circulating with the thread of control until
	// the session ends ("the modified data set is passed among the
	// address spaces with the transition of thread activation"), so the
	// origin must keep re-sending these with every outgoing transfer even
	// after applying them — otherwise a space that cached the datum
	// before the modification would read a stale copy. Keying by session
	// lets an origin serving several concurrent sessions drop one
	// session's set at its end without disturbing the others'.
	modMu           sync.Mutex
	sessionModified map[uint64]map[wire.LongPtr]bool
	modScratch      []wire.LongPtr // reusable key buffer for modifiedSetItems

	// coh is the delta-shipping ship state (cohstate.go).
	coh cohState

	// warm is the cross-session warm-cache state: client revalidation
	// baselines and per-peer served records (warmcache.go).
	warm warmCache

	// eager is the closure usage accounting and, when enabled, the
	// adaptive per-origin fetch budgets (eager.go).
	eager eagerState

	// enc is the origin-side encode cache (enccache.go); nil when
	// Options.DisableEncodeCache is set.
	enc *encCache

	tracer atomic.Pointer[tracerBox]

	stats struct {
		callsSent, callsServed         atomic.Uint64
		fetchesSent, fetchesServed     atomic.Uint64
		itemsInstalled, bytesInstalled atomic.Uint64
		dirtyItemsSent, writeBackMsgs  atomic.Uint64
		allocBatches                   atomic.Uint64
		cohItemsShipped, cohDeltaItems atomic.Uint64
		cohItemsSkipped, cohItemBytes  atomic.Uint64

		cohRevalidateMsgs, cohRevalidateHits    atomic.Uint64
		cohRevalidateMisses, cohRevalidateBytes atomic.Uint64

		pfIssued, pfCoalesced atomic.Uint64
		pfHits, pfWasted      atomic.Uint64
		pfBytes               atomic.Uint64

		retries, retrySuccesses, retriesExhausted atomic.Uint64
		staleReplyDrops                           atomic.Uint64
		dedupReplays, dedupSwallowed              atomic.Uint64
		fenceTrips                                atomic.Uint64
		breakerOpens, breakerSheds                atomic.Uint64
	}

	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// originBatch accumulates deferred allocation work for one origin space.
type originBatch struct {
	allocs []provAlloc
	frees  []wire.LongPtr
}

type provAlloc struct {
	lp wire.LongPtr // provisional long pointer
}

// New creates and starts a runtime. Callers must Close it.
func New(opts Options) (*Runtime, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	space, err := vmem.NewSpace(vmem.Config{
		PageSize:   opts.PageSize,
		Profile:    opts.Profile,
		Concurrent: opts.Concurrent,
	})
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		id:              opts.ID,
		node:            opts.Node,
		reg:             opts.Registry,
		res:             opts.Registry.ResolverFor(space.Profile()),
		space:           space,
		table:           swizzle.New(space, opts.Registry, opts.ID, opts.AllocPolicy),
		policy:          opts.Policy,
		closure:         opts.ClosureSize,
		traversal:       opts.Traversal,
		coherence:       opts.Coherence,
		noFetchBatch:    opts.DisableFetchBatch,
		noDeltaShip:     opts.DisableDeltaShip,
		noWarmCache:     opts.DisableWarmCache,
		adaptiveEager:   opts.AdaptiveEagerness,
		concurrent:      opts.Concurrent,
		callTimeout:     opts.CallTimeout,
		checkInv:        opts.CheckInvariants,
		streamChunk:     opts.StreamChunkBytes,
		noStreaming:     opts.DisableStreaming,
		retryBudget:     opts.RetryBudget,
		maxRetries:      opts.MaxRetries,
		incarnation:     opts.Incarnation,
		replay:          newReplayCache(),
		procs:           make(map[string]Handler),
		pending:         newPendingTable(),
		inflight:        make(map[fetchKey]*inflightFetch),
		dups:            make(map[uint32]*seqWindow),
		parts:           make(map[uint32]bool),
		batch:           make(map[uint32]*originBatch),
		sessionModified: make(map[uint64]map[wire.LongPtr]bool),
		stop:            make(chan struct{}),
		done:            make(chan struct{}),
	}
	empty := make(map[wire.LongPtr]wire.LongPtr)
	rt.provMap.Store(&empty)
	if !opts.DisableEncodeCache {
		rt.enc = newEncCache(space, opts.EncodeCacheBytes)
	}
	if opts.Prefetch {
		rt.pf = newPrefetcher(opts.PrefetchDepth, opts.SyncPrefetch)
	}
	for ty, fields := range opts.ClosureHints {
		if err := rt.SetClosureHint(ty, fields); err != nil {
			return nil, err
		}
	}
	space.SetHandler(rt.onFault)
	for i := range rt.serveQ {
		q := make(chan wire.Message, serveQueueDepth)
		rt.serveQ[i] = q
		rt.serveWG.Add(1)
		go rt.serveWorker(q)
	}
	go rt.loop()
	return rt, nil
}

// SetClosureHint restricts the eager closure to follow only the named
// pointer fields of type ty when this runtime serves fetches. Passing an
// empty list stops traversal at that type entirely; unknown field names
// are rejected.
func (rt *Runtime) SetClosureHint(ty types.ID, fields []string) error {
	desc, err := rt.reg.Lookup(ty)
	if err != nil {
		return err
	}
	set := make(map[string]bool, len(fields))
	for _, f := range fields {
		i := desc.FieldIndex(f)
		if i < 0 || desc.Fields[i].Kind != types.Ptr {
			return fmt.Errorf("core: closure hint for %s: %q is not a pointer field", desc.Name, f)
		}
		set[f] = true
	}
	rt.hintMu.Lock()
	defer rt.hintMu.Unlock()
	if rt.hints == nil {
		rt.hints = make(map[types.ID]map[string]bool)
	}
	rt.hints[ty] = set
	return nil
}

// closureHint returns the allowed pointer fields for ty, or nil when
// traversal is unrestricted.
func (rt *Runtime) closureHint(ty types.ID) map[string]bool {
	rt.hintMu.RLock()
	defer rt.hintMu.RUnlock()
	return rt.hints[ty]
}

// ID returns the runtime's address-space identifier.
func (rt *Runtime) ID() uint32 { return rt.id }

// Space exposes the simulated address space (examples and tests build
// data structures directly in it).
func (rt *Runtime) Space() *vmem.Space { return rt.space }

// Table exposes the data allocation table for inspection.
func (rt *Runtime) Table() *swizzle.Table { return rt.table }

// Registry returns the type database.
func (rt *Runtime) Registry() *types.Registry { return rt.reg }

// Policy returns the configured transfer policy.
func (rt *Runtime) Policy() Policy { return rt.policy }

// ClosureSize returns the eager transfer budget in bytes.
func (rt *Runtime) ClosureSize() int { return rt.closure }

// Register installs a remote procedure under name.
func (rt *Runtime) Register(name string, h Handler) error {
	if name == "" || h == nil {
		return errors.New("core: procedure needs a name and a handler")
	}
	rt.procsMu.Lock()
	defer rt.procsMu.Unlock()
	if _, ok := rt.procs[name]; ok {
		return fmt.Errorf("core: procedure %q already registered", name)
	}
	rt.procs[name] = h
	return nil
}

// Stats returns a snapshot of the runtime's counters.
func (rt *Runtime) Stats() Stats {
	s := Stats{
		CallsSent:      rt.stats.callsSent.Load(),
		CallsServed:    rt.stats.callsServed.Load(),
		FetchesSent:    rt.stats.fetchesSent.Load(),
		FetchesServed:  rt.stats.fetchesServed.Load(),
		Faults:         rt.space.Faults(),
		ItemsInstalled: rt.stats.itemsInstalled.Load(),
		BytesInstalled: rt.stats.bytesInstalled.Load(),
		DirtyItemsSent: rt.stats.dirtyItemsSent.Load(),
		WriteBackMsgs:  rt.stats.writeBackMsgs.Load(),
		AllocBatches:   rt.stats.allocBatches.Load(),

		CohItemsShipped: rt.stats.cohItemsShipped.Load(),
		CohDeltaItems:   rt.stats.cohDeltaItems.Load(),
		CohItemsSkipped: rt.stats.cohItemsSkipped.Load(),
		CohItemBytes:    rt.stats.cohItemBytes.Load(),

		CohRevalidateMsgs:   rt.stats.cohRevalidateMsgs.Load(),
		CohRevalidateHits:   rt.stats.cohRevalidateHits.Load(),
		CohRevalidateMisses: rt.stats.cohRevalidateMisses.Load(),
		CohRevalidateBytes:  rt.stats.cohRevalidateBytes.Load(),

		PfIssued:    rt.stats.pfIssued.Load(),
		PfCoalesced: rt.stats.pfCoalesced.Load(),
		PfHits:      rt.stats.pfHits.Load(),
		PfWasted:    rt.stats.pfWasted.Load(),
		PfBytes:     rt.stats.pfBytes.Load(),

		Retries:          rt.stats.retries.Load(),
		RetrySuccesses:   rt.stats.retrySuccesses.Load(),
		RetriesExhausted: rt.stats.retriesExhausted.Load(),
		StaleReplyDrops:  rt.stats.staleReplyDrops.Load(),
		DedupReplays:     rt.stats.dedupReplays.Load(),
		DedupSwallowed:   rt.stats.dedupSwallowed.Load(),
		FenceTrips:       rt.stats.fenceTrips.Load(),
		BreakerOpens:     rt.stats.breakerOpens.Load(),
		BreakerSheds:     rt.stats.breakerSheds.Load(),
	}
	if rt.enc != nil {
		s.EncCacheHits = rt.enc.hits.Load()
		s.EncCacheMisses = rt.enc.misses.Load()
		s.EncCacheEvictions = rt.enc.evictions.Load()
		s.EncCacheInvalidations = rt.enc.invalidations.Load()
		s.EncCacheBytes = uint64(rt.enc.bytes.Load())
	}
	return s
}

// Close shuts the runtime down and waits for its dispatcher to exit.
func (rt *Runtime) Close() error {
	rt.closeOnce.Do(func() {
		close(rt.stop)
		_ = rt.node.Close()
		<-rt.done
		// Fail any callers still waiting for replies.
		rt.pending.drain()
		// Background chunk drainers woke on stop (or their failed stream
		// buffers); reap them so Close leaves no goroutines behind.
		rt.bgDrain.Wait()
	})
	return nil
}

// seqWindowSize bounds how many request sequence numbers are remembered
// per peer for duplicate suppression. Requests are issued one at a time
// per edge (single thread of control), so even a deep fan-out session
// never has more than a handful in flight; the window only needs to span
// the horizon over which a transport could replay a frame.
const seqWindowSize = 128

// seqWindow remembers the most recent request identities seen from one
// peer: a ring for eviction order plus a set for O(1) membership. The
// identity is (session, seq), not seq alone: a crashed-and-restarted
// peer restarts its sequence counter, and its fresh requests must not be
// mistaken for replays of the old incarnation's. Sessions are minted by
// the ground space and never reused, so the pair is unique for as long
// as any transport could replay a frame.
type seqKey struct {
	sess uint64
	seq  uint64
}

type seqWindow struct {
	ring [seqWindowSize]seqKey
	next int
	set  map[seqKey]struct{}
}

// dupRequest records (from, session, seq) and reports whether it was
// already seen. Seq 0 is never tracked: it marks messages outside the
// request/reply protocol (handshakes, diagnostics).
func (rt *Runtime) dupRequest(from uint32, sess, seq uint64) bool {
	if seq == 0 {
		return false
	}
	rt.dupMu.Lock()
	defer rt.dupMu.Unlock()
	w := rt.dups[from]
	if w == nil {
		w = &seqWindow{set: make(map[seqKey]struct{}, seqWindowSize)}
		rt.dups[from] = w
	}
	k := seqKey{sess: sess, seq: seq}
	if _, ok := w.set[k]; ok {
		return true
	}
	if old := w.ring[w.next]; old != (seqKey{}) {
		delete(w.set, old)
	}
	w.ring[w.next] = k
	w.next = (w.next + 1) % seqWindowSize
	w.set[k] = struct{}{}
	return false
}

// serveWorkers is the size of the bounded pool serving non-Call requests,
// and serveQueueDepth each worker's queue capacity. Requests stripe by
// sender (from % serveWorkers), so one sender's requests execute in
// arrival order while distinct senders proceed in parallel — N clients
// fetching from one server no longer head-of-line block behind one
// closure build.
//
// Sizing: the fetch pipeline legitimately puts several concurrent
// requests on one edge — a multi-origin demand fault fans out one FETCH
// per origin group, and the prefetcher adds at most 2×PrefetchDepth
// speculative completions per origin (prefetchDepthFor) — but every one
// of those requesters then blocks awaiting its reply, so a well-behaved
// peer holds tens of requests in flight, not hundreds. Depth 256 per
// stripe therefore bounds only what a duplicating, replaying, or
// flooding transport can pile up. When a stripe does fill, the receive
// loop blocks (backpressure, with a shutdown escape) rather than growing
// without bound — deliberately: dropping would strand the sender until
// its call timeout, and NACKing would surface spurious errors on demand
// faults. The accepted cost is that a saturated stripe stalls the
// dispatcher, and with it reply delivery to local waiters (a stripe
// worker wedged in serveInvalidate→pfDrain waits for fetch replies only
// that loop can deliver) — reachable only if a peer breaches the
// request-concurrency envelope above by two orders of magnitude.
const (
	serveWorkers    = 8
	serveQueueDepth = 256
)

// serveWorker drains one stripe of the serve pool until the loop closes
// the queue at shutdown.
func (rt *Runtime) serveWorker(q chan wire.Message) {
	defer rt.serveWG.Done()
	for m := range q {
		switch m.Kind {
		case wire.KindFetch:
			rt.serveFetch(m)
		case wire.KindWriteBack:
			rt.serveWriteBack(m)
		case wire.KindInvalidate:
			rt.serveInvalidate(m)
		case wire.KindAllocBatch:
			rt.serveAllocBatch(m)
		case wire.KindValidate:
			rt.serveValidate(m)
		}
	}
}

// enqueueServe hands a request to its sender's stripe, blocking (with a
// shutdown escape) when the stripe is saturated.
func (rt *Runtime) enqueueServe(m wire.Message) {
	q := rt.serveQ[m.From%serveWorkers]
	select {
	case q <- m:
	case <-rt.stop:
	}
}

// loop is the dispatcher: it routes replies to waiting requesters and
// dispatches requests to their servers. Call servers run in their own
// goroutine (their handlers may block in nested calls or callbacks); the
// bookkeeping servers run on the bounded serve pool, striped by sender,
// so a slow closure build for one client never head-of-line blocks the
// loop or the other clients. Duplicated request frames are dropped
// (at-most-once execution); duplicated reply frames are harmless — the
// first one consumes the pending entry and the rest find no requester.
func (rt *Runtime) loop() {
	defer func() {
		for _, q := range rt.serveQ {
			close(q)
		}
		rt.serveWG.Wait()
		close(rt.done)
	}()
	for {
		m, err := rt.node.Recv()
		if err != nil {
			return
		}
		if !m.SumOK() {
			// A frame corrupted in flight. For a reply, surface the
			// corruption to the waiting requester as an ordinary remote
			// error (the payload cannot be trusted, so none is kept).
			// For a request, answer with an error so the sender is not
			// left to its deadline — its frame's identity fields are
			// covered by the checksum too, but a reply keyed on a
			// corrupted Seq simply finds no requester and is dropped.
			rt.trace(Event{Kind: EvChecksumReject, Target: m.From})
			if m.Kind.IsReply() {
				m.Err = checksumRejectErr
				m.Payload = nil
			} else {
				// Raw reply: the frame's identity fields are untrustworthy,
				// so it must not complete a replay-cache entry either.
				rt.replyRaw(m.From, m.Session, m.Seq, m.Kind.ReplyKind(), nil, checksumRejectErr)
				continue
			}
		}
		if m.Kind == wire.KindFetchChunk {
			// One chunk of a streamed reply. Non-final chunks leave the
			// exchange registered for the rest of the sequence; a final
			// chunk — including a corrupt frame, whose payload cannot
			// name an ordinal — closes it. Chunks with no registered
			// exchange (an abandoned or timed-out stream) release their
			// frame buffers and drop.
			var sb *streamBuf
			var ok bool
			if m.Err != "" || wire.ChunkIsFinal(m.Payload) {
				sb, ok = rt.pending.takeStream(m.Seq)
			} else {
				sb, ok = rt.pending.peekStream(m.Seq)
			}
			if ok {
				sb.push(m)
			} else {
				// Stale chunk: the stream's waiter abandoned the exchange
				// (timed out or retried under a fresh attempt seq).
				m.ReleaseFrame()
				rt.stats.staleReplyDrops.Add(1)
			}
			continue
		}
		if m.Kind.IsReply() {
			// A monolithic reply may answer a stream-capable request
			// (the origin answered below the streaming threshold).
			if sb, ok := rt.pending.takeStream(m.Seq); ok {
				sb.push(m)
				continue
			}
			if ch, ok := rt.pending.take(m.Seq); ok {
				ch <- m
				continue
			}
			// Stale reply: its waiter timed out or retried and abandoned
			// this attempt's sequence number. Positively discard it —
			// releasing any pooled frame buffer it carries — instead of
			// leaving the frame to the garbage collector.
			m.ReleaseFrame()
			rt.stats.staleReplyDrops.Add(1)
			continue
		}
		if rt.dupRequest(m.From, m.Session, m.Seq) {
			continue
		}
		// At-most-once admission for non-idempotent requests: a retried
		// exchange (same xid, higher attempt ordinal) must not re-execute.
		// A completed first attempt replays its cached reply to the new
		// attempt's seq; one still executing is swallowed, with the
		// eventual reply redirected to the newest attempt.
		if replayableRequest(m.Kind) {
			switch rt.replay.admit(m) {
			case admitReplay:
				rt.stats.dedupReplays.Add(1)
				rt.trace(Event{Kind: EvReplayedReply, Target: m.From})
				rt.replay.resend(rt, m)
				continue
			case admitSwallow:
				rt.stats.dedupSwallowed.Add(1)
				continue
			}
		}
		switch m.Kind {
		case wire.KindCall:
			go rt.serveCall(m)
		case wire.KindFetch, wire.KindWriteBack, wire.KindInvalidate,
			wire.KindAllocBatch, wire.KindValidate:
			rt.enqueueServe(m)
		}
	}
}

// replyChans recycles the one-shot reply channels sendAndWait blocks on,
// so steady-state requests allocate nothing. A channel is only returned to
// the pool after its single message has been received, so pooled channels
// are always empty and open.
var replyChans = sync.Pool{
	New: func() any { return make(chan wire.Message, 1) },
}

// checksumRejectErr is the reply-surface rendering of a frame that
// failed integrity verification: the dispatcher substitutes it for a
// corrupted reply's untrustworthy payload, and answers a corrupted
// request with it. The retry layer matches it by value — it is the one
// remote error string that marks a transient wire fault rather than an
// application outcome.
const checksumRejectErr = "wire: frame checksum mismatch (corrupted in flight)"

// sendAndWait sends a request and blocks for its reply, retrying
// transparently on transient failures when Options.RetryBudget is set
// (retryLoop, health.go). One exchange id is allocated for the whole
// exchange; each attempt travels under a distinct Seq (xid + attempt
// ordinal in the top bits), so a late reply to an abandoned attempt
// misses the pending table instead of masquerading as the current
// attempt's reply, and the origin's reply cache recognizes the retry by
// its xid. With the budget unset (the default), this is a single
// attempt — byte-identical to the seed protocol. A checksum-rejected
// reply that exhausts the budget is returned with its Err surface
// intact, exactly as a single-shot exchange would have surfaced it.
func (rt *Runtime) sendAndWait(m wire.Message) (wire.Message, error) {
	var r wire.Message
	err := rt.retryLoop(m.To, m.Kind, func(seq uint64) (bool, error) {
		var err error
		r, err = rt.sendAndWaitSeq(m, seq)
		if err != nil {
			return !errors.Is(err, ErrClosed), err
		}
		if r.Err == checksumRejectErr {
			// A corrupted frame's incarnation word is garbage; never
			// feed it to the fence.
			return true, nil
		}
		if ferr := rt.fenceCheck(m.To, r.Inc); ferr != nil {
			r = wire.Message{}
			return false, ferr
		}
		return false, nil
	})
	return r, err
}

// sendAndWaitSeq sends one attempt of a request under the given
// sequence number and blocks for its reply, or until the runtime closes
// or the configured call deadline expires.
func (rt *Runtime) sendAndWaitSeq(m wire.Message, seq uint64) (wire.Message, error) {
	m.Seq = seq
	m.Seal()
	ch := replyChans.Get().(chan wire.Message)
	rt.pending.put(seq, ch)
	cleanup := func() { rt.pending.drop(seq) }
	if err := rt.node.Send(m); err != nil {
		cleanup()
		return wire.Message{}, fmt.Errorf("send %v to space %d: %w", m.Kind, m.To, err)
	}
	var deadline <-chan time.Time
	if rt.callTimeout > 0 {
		timer := time.NewTimer(rt.callTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case r, ok := <-ch:
		if !ok {
			// Close drained the pending map and closed the channel; it must
			// not go back in the pool.
			return wire.Message{}, ErrClosed
		}
		replyChans.Put(ch)
		return r, nil
	case <-deadline:
		// A late reply finds no pending entry and is positively dropped
		// by the dispatcher; the channel may still receive a racing
		// delivery (it is buffered), so it cannot be pooled.
		cleanup()
		return wire.Message{}, fmt.Errorf("%v to space %d after %v: %w",
			m.Kind, m.To, rt.callTimeout, ErrDeadline)
	case <-rt.stop:
		// The dispatcher may have plucked the channel from the pending map
		// and be about to deliver into it, so it cannot be pooled either.
		cleanup()
		return wire.Message{}, ErrClosed
	}
}

// reply sends a response correlated to request m. For replayable
// (non-idempotent) exchanges it also completes the at-most-once cache
// entry the dispatcher admitted: the reply bytes are retained for
// replay to later retries, and the response is addressed to the newest
// attempt's sequence number in case a retry was swallowed while the
// request executed.
func (rt *Runtime) reply(m wire.Message, kind wire.Kind, payload []byte, errStr string) {
	seq := m.Seq
	if replayableRequest(m.Kind) {
		if last, ok := rt.replay.complete(m, kind, payload, errStr); ok {
			seq = last
		}
	}
	rt.replyRaw(m.From, m.Session, seq, kind, payload, errStr)
}

// replyRaw sends a response frame with no replay-cache interaction.
func (rt *Runtime) replyRaw(to uint32, sess, seq uint64, kind wire.Kind, payload []byte, errStr string) {
	if payload == nil {
		payload = []byte{}
	}
	resp := wire.Message{
		Kind:    kind,
		Session: sess,
		Seq:     seq,
		To:      to,
		Err:     errStr,
		Payload: payload,
		Inc:     rt.incarnation,
	}
	resp.Seal()
	_ = rt.node.Send(resp)
}

// CacheStats is a snapshot of the cache region's working set (§3.4
// discusses the "working set in distributed computation" that the RPC
// session delimits).
type CacheStats struct {
	// Entries is the number of data allocation table rows.
	Entries int
	// ResidentEntries counts rows whose data has been installed.
	ResidentEntries int
	// ResidentBytes sums the local sizes of resident rows.
	ResidentBytes int
	// DirtyPages counts cache pages holding unshipped modifications.
	DirtyPages int
}

// CacheStats snapshots the current working set of cached remote data.
func (rt *Runtime) CacheStats() CacheStats {
	var cs CacheStats
	for _, e := range rt.table.Entries() {
		cs.Entries++
		if e.Resident {
			cs.ResidentEntries++
			cs.ResidentBytes += e.Size
		}
	}
	cs.DirtyPages = len(rt.space.DirtyPages())
	return cs
}

package core

import (
	"fmt"
	"math/rand"
	"net"

	"smartrpc/internal/arch"
	"testing"

	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
)

// The equivalence property: an arbitrary script of reads, writes, and
// re-linkings executed by remote procedures against pointer arguments
// must leave the owner's heap in exactly the state a plain in-process
// model reaches — across nested RPCs, repeated sessions, and every
// policy-relevant configuration. This is the end-to-end check of the
// swizzling + caching + coherency machinery.

// opKind enumerates script operations.
type opKind int

const (
	opSetData opKind = iota + 1
	opLinkLeft
	opLinkRight
	opReadData // result checked against the model mid-script
)

type scriptOp struct {
	kind   opKind
	target int   // node index
	other  int   // second node index for links (-1 = null)
	value  int64 // for opSetData
}

// model is the plain-Go reference implementation.
type model struct {
	data        []int64
	left, right []int // node index or -1
}

func newModel(k int) *model {
	m := &model{data: make([]int64, k), left: make([]int, k), right: make([]int, k)}
	for i := range m.left {
		m.data[i] = int64(i + 1)
		m.left[i] = -1
		m.right[i] = -1
	}
	return m
}

func (m *model) apply(op scriptOp) int64 {
	switch op.kind {
	case opSetData:
		m.data[op.target] = op.value
	case opLinkLeft:
		m.left[op.target] = op.other
	case opLinkRight:
		m.right[op.target] = op.other
	case opReadData:
		return m.data[op.target]
	}
	return 0
}

func randomScript(rng *rand.Rand, k, n int) []scriptOp {
	ops := make([]scriptOp, 0, n)
	for i := 0; i < n; i++ {
		op := scriptOp{
			kind:   opKind(rng.Intn(4) + 1),
			target: rng.Intn(k),
			other:  rng.Intn(k+1) - 1, // -1 = null
			value:  rng.Int63n(1 << 40),
		}
		ops = append(ops, op)
	}
	return ops
}

// registerScriptOps installs the per-op remote procedures on rt.
func registerScriptOps(t *testing.T, rt *Runtime) {
	t.Helper()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(rt.Register("setData", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		return nil, ref.SetInt("data", 0, args[1].Int64())
	}))
	must(rt.Register("linkLeft", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		return nil, ref.SetPtr("left", 0, args[1])
	}))
	must(rt.Register("linkRight", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		return nil, ref.SetPtr("right", 0, args[1])
	}))
	must(rt.Register("readData", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		v, err := ref.Int("data", 0)
		if err != nil {
			return nil, err
		}
		return []Value{Int64Value(v)}, nil
	}))
	// chainOp forwards an op to a third space (nested RPC), exercising
	// dirty-set migration along the control path.
	must(rt.Register("chainOp", func(ctx *Ctx, args []Value) ([]Value, error) {
		proc := args[0]
		rest := args[2:]
		return ctx.Call(uint32(args[1].Int64()), procName(proc.Int64()), rest)
	}))
}

func procName(code int64) string {
	switch opKind(code) {
	case opSetData:
		return "setData"
	case opLinkLeft:
		return "linkLeft"
	case opLinkRight:
		return "linkRight"
	default:
		return "readData"
	}
}

// verifyAgainstModel compares every node in the owner's heap to the model.
func verifyAgainstModel(t *testing.T, owner *Runtime, nodes []Value, m *model) {
	t.Helper()
	addrToIdx := make(map[uint32]int, len(nodes))
	for i, v := range nodes {
		addrToIdx[uint32(v.Addr)] = i
	}
	for i, v := range nodes {
		ref, err := owner.Deref(v)
		if err != nil {
			t.Fatal(err)
		}
		d, err := ref.Int("data", 0)
		if err != nil {
			t.Fatal(err)
		}
		if d != m.data[i] {
			t.Errorf("node %d data = %d, model %d", i, d, m.data[i])
		}
		for _, side := range []string{"left", "right"} {
			p, err := ref.Ptr(side, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := m.left[i]
			if side == "right" {
				want = m.right[i]
			}
			if want == -1 {
				if !p.IsNullPtr() {
					t.Errorf("node %d %s = %#x, model null", i, side, uint32(p.Addr))
				}
				continue
			}
			// Under the lazy policy pointer values carry only the long
			// pointer; normalize to the owner-space address.
			addr := uint32(p.Addr)
			if addr == 0 && p.LP.Space == owner.ID() {
				addr = uint32(p.LP.Addr)
			}
			got, ok := addrToIdx[addr]
			if !ok || got != want {
				t.Errorf("node %d %s -> node %d (ok=%v), model %d", i, side, got, ok, want)
			}
		}
	}
}

func runScriptProperty(t *testing.T, seed int64, nested bool, mut func(id uint32, o *Options)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const k = 12
	const nOps = 60

	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	mk := func(id uint32) *Runtime {
		node, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		o := Options{ID: id, Node: node, Registry: reg}
		if mut != nil {
			mut(id, &o)
		}
		rt, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		return rt
	}
	owner := mk(1)
	worker := mk(2)
	registerScriptOps(t, worker)
	var third *Runtime
	if nested {
		third = mk(3)
		registerScriptOps(t, third)
	}

	// Node pool in the owner's heap.
	nodes := make([]Value, k)
	for i := range nodes {
		v, err := owner.NewObject(nodeType)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := owner.Deref(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.SetInt("data", 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
		nodes[i] = v
	}
	m := newModel(k)

	// Two sessions back to back: invalidation between them must not lose
	// or resurrect state.
	for sess := 0; sess < 2; sess++ {
		script := randomScript(rng, k, nOps)
		if err := owner.BeginSession(); err != nil {
			t.Fatal(err)
		}
		for opIdx, op := range script {
			args := []Value{nodes[op.target]}
			switch op.kind {
			case opSetData:
				args = append(args, Int64Value(op.value))
			case opLinkLeft, opLinkRight:
				if op.other == -1 {
					args = append(args, NullPtr(nodeType))
				} else {
					args = append(args, nodes[op.other])
				}
			}
			var res []Value
			var err error
			if nested && opIdx%3 == 0 {
				// Route through the worker to the third space.
				chainArgs := append([]Value{Int64Value(int64(op.kind)), Int64Value(3)}, args...)
				res, err = owner.Call(2, "chainOp", chainArgs)
			} else {
				res, err = owner.Call(2, procName(int64(op.kind)), args)
			}
			if err != nil {
				t.Fatalf("session %d op %d (%v): %v", sess, opIdx, op.kind, err)
			}
			want := m.apply(op)
			if op.kind == opReadData {
				if len(res) != 1 || res[0].Int64() != want {
					t.Fatalf("session %d op %d: remote read %v, model %d", sess, opIdx, res, want)
				}
			}
		}
		if err := owner.EndSession(); err != nil {
			t.Fatal(err)
		}
		verifyAgainstModel(t, owner, nodes, m)
	}
}

func TestPropertyRemoteScriptEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runScriptProperty(t, seed, false, nil)
		})
	}
}

func TestPropertyNestedScriptEquivalence(t *testing.T) {
	for seed := int64(100); seed <= 104; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runScriptProperty(t, seed, true, nil)
		})
	}
}

func TestPropertySmallPages(t *testing.T) {
	runScriptProperty(t, 7, true, func(id uint32, o *Options) { o.PageSize = 64 })
}

func TestPropertyTinyClosure(t *testing.T) {
	runScriptProperty(t, 9, false, func(id uint32, o *Options) { o.ClosureSize = 1 })
}

func TestPropertyHugeClosure(t *testing.T) {
	runScriptProperty(t, 11, false, func(id uint32, o *Options) { o.ClosureSize = 1 << 24 })
}

func TestPropertyHeterogeneousScript(t *testing.T) {
	runScriptProperty(t, 13, true, func(id uint32, o *Options) {
		switch id {
		case 1:
			o.Profile = sparc32Profile()
		case 2:
			o.Profile = alpha64Profile()
		default:
			o.Profile = m68k32Profile()
		}
	})
}

func TestPropertyDFSTraversal(t *testing.T) {
	runScriptProperty(t, 17, false, func(id uint32, o *Options) { o.Traversal = TraverseDFS })
}

// Profile helpers keep the property-test table terse.
func sparc32Profile() arch.Profile { return arch.SPARC32() }
func alpha64Profile() arch.Profile { return arch.Alpha64() }
func m68k32Profile() arch.Profile  { return arch.M68K32() }

// TestPropertySoak runs many more randomized scripts; skipped in -short.
func TestPropertySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for seed := int64(1000); seed < 1040; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runScriptProperty(t, seed, seed%2 == 0, func(id uint32, o *Options) {
				switch seed % 3 {
				case 0:
					o.PageSize = 128
				case 1:
					o.ClosureSize = 64
				}
			})
		})
	}
}

// TestPropertyPolicyAgreement runs the same script under all three
// transfer policies; each must match the model exactly (the policies are
// performance strategies, never semantics).
func TestPropertyPolicyAgreement(t *testing.T) {
	for _, pol := range []Policy{PolicySmart, PolicyEager, PolicyLazy} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			runScriptProperty(t, 21, false, func(id uint32, o *Options) { o.Policy = pol })
		})
	}
}

// TestPropertyOverTCP runs a randomized script with every message moving
// over real loopback TCP connections.
func TestPropertyOverTCP(t *testing.T) {
	// Build three TCP nodes with a full mutual address book. Ports are
	// reserved up front so every node can name every other.
	addrs := make(map[uint32]string, 3)
	for id := uint32(1); id <= 3; id++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[id] = ln.Addr().String()
		_ = ln.Close()
	}
	nodeA, err := transport.ListenTCP(1, addrs[1], addrs)
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := transport.ListenTCP(2, addrs[2], addrs)
	if err != nil {
		t.Fatal(err)
	}
	nodeC, err := transport.ListenTCP(3, addrs[3], addrs)
	if err != nil {
		t.Fatal(err)
	}
	reg := newTestRegistry(t)
	mk := func(id uint32, node transport.Node) *Runtime {
		rt, err := New(Options{ID: id, Node: node, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		return rt
	}
	owner := mk(1, nodeA)
	worker := mk(2, nodeB)
	third := mk(3, nodeC)
	registerScriptOps(t, worker)
	registerScriptOps(t, third)

	const k = 10
	nodes := make([]Value, k)
	for i := range nodes {
		v, err := owner.NewObject(nodeType)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := owner.Deref(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.SetInt("data", 0, int64(i+1)); err != nil {
			t.Fatal(err)
		}
		nodes[i] = v
	}
	m := newModel(k)
	rng := rand.New(rand.NewSource(31))
	script := randomScript(rng, k, 40)
	if err := owner.BeginSession(); err != nil {
		t.Fatal(err)
	}
	for opIdx, op := range script {
		args := []Value{nodes[op.target]}
		switch op.kind {
		case opSetData:
			args = append(args, Int64Value(op.value))
		case opLinkLeft, opLinkRight:
			if op.other == -1 {
				args = append(args, NullPtr(nodeType))
			} else {
				args = append(args, nodes[op.other])
			}
		}
		var res []Value
		var err error
		if opIdx%4 == 0 {
			chainArgs := append([]Value{Int64Value(int64(op.kind)), Int64Value(3)}, args...)
			res, err = owner.Call(2, "chainOp", chainArgs)
		} else {
			res, err = owner.Call(2, procName(int64(op.kind)), args)
		}
		if err != nil {
			t.Fatalf("op %d over TCP: %v", opIdx, err)
		}
		want := m.apply(op)
		if op.kind == opReadData && res[0].Int64() != want {
			t.Fatalf("op %d over TCP: read %d, model %d", opIdx, res[0].Int64(), want)
		}
	}
	if err := owner.EndSession(); err != nil {
		t.Fatal(err)
	}
	verifyAgainstModel(t, owner, nodes, m)
}

package core

import (
	"bytes"
	"fmt"
	"sync"

	"smartrpc/internal/delta"
	"smartrpc/internal/wire"
)

// This file implements delta shipping for the coherency protocol. The
// paper's protocol (§3.4) re-transmits the full modified data set on
// every address-space boundary crossing: all objects on dirty cache
// pages plus the origin's session-modified set, each as a complete
// canonical encoding. Most of those bytes are redundant — the page-grain
// dirty tracking sweeps up unmodified neighbors, and the circulating
// modified set is re-sent to spaces that already received it on an
// earlier crossing.
//
// The ship state remembers, per peer and per datum, the canonical bytes
// and crossing version that peer last exchanged with us (sent to it, or
// received from it — either way the peer holds them). On the next
// crossing to that peer a datum is:
//
//   - shipped as a zero-byte *token* when its bytes match the peer's
//     recorded view (the no-change-since-last-crossing case). The token
//     still carries the dirty bit: the write-back obligation and the
//     receiver's duty to keep re-circulating the item must keep hopping
//     with the thread of control even when no bytes need to move —
//     dropping the item entirely would strand the modification on a
//     space that is not the ground runtime and lose it at session end;
//   - dropped entirely on *final* shipments (end-of-session write-back,
//     where an up-to-date origin has already applied the value and no
//     onward obligation exists);
//   - shipped as a byte-range delta against the recorded view when that
//     is smaller than the full body;
//   - shipped full otherwise (and always on first exchange).
//
// Crossing versions advance by one on each item exchanged for a datum on
// a peer edge, in lockstep on both sides because both process the same
// item stream in the same order; a delta or token item carries the
// version it applies to, so any desynchronization is detected instead of
// silently corrupting data. State is session-scoped: each edge is tagged
// with the session it was recorded under, and a session's edges are
// dropped with the cache at that session's invalidation. An origin
// serving several concurrent sessions therefore keeps one independent
// edge per client — one client's end-of-session invalidation must not
// destroy the baselines another client's next delta will patch against.
//
// The Options.DisableDeltaShip ablation restores full shipping (the
// paper's modeled protocol); it must be set identically on every space.

// cohView is what one peer is known to hold for one datum.
type cohView struct {
	// ver counts the items exchanged with the peer for this datum; a
	// delta or token item names the version it patches.
	ver uint32
	// bytes is the canonical encoding at ver. Slices alias the encode
	// arena or the message payload they arrived in; neither is reused.
	bytes []byte
}

// cohPeer is one edge's ship state: the views recorded for a peer, tagged
// with the session they belong to. The protocol exchanges coherency items
// on an edge only within one session at a time (distinct concurrent
// clients are distinct peers), so a session change on an edge resets it.
// Views are stored by value: an eager transfer records tens of thousands
// of them in one crossing, and boxing each behind a pointer made this
// map the top allocation site of the whole transfer path.
type cohPeer struct {
	sess  uint64
	views map[wire.LongPtr]cohView
}

// cohState is a runtime's delta-shipping memory, guarded by its own
// mutex: the send side runs on the session's active thread while the
// receive side runs on dispatcher-spawned handlers — with concurrent
// shared-origin sessions, several of each at once.
type cohState struct {
	mu    sync.Mutex
	peers map[uint32]*cohPeer
}

// viewsFor returns the edge state for (peer, sess). An edge recorded
// under a different session is reset: its old baselines belong to a
// session that ended (or died) without this space seeing the teardown,
// and patching against them would corrupt data silently. hint pre-sizes
// a freshly created edge's map — callers shipping a whole batch pass its
// length so the map grows once instead of doubling through it.
func (cs *cohState) viewsFor(peer uint32, sess uint64, hint int) map[wire.LongPtr]cohView {
	if cs.peers == nil {
		cs.peers = make(map[uint32]*cohPeer)
	}
	p := cs.peers[peer]
	if p == nil || p.sess != sess {
		p = &cohPeer{sess: sess, views: make(map[wire.LongPtr]cohView, hint)}
		cs.peers[peer] = p
	}
	return p.views
}

// clear drops all ship state (the failure-reset path: AbortSession).
func (cs *cohState) clear() {
	cs.mu.Lock()
	cs.peers = nil
	cs.mu.Unlock()
}

// clearSession drops every edge recorded under sess (end-of-session
// teardown and received invalidations), leaving other sessions' edges
// untouched.
func (cs *cohState) clearSession(sess uint64) {
	cs.mu.Lock()
	for peer, p := range cs.peers {
		if p.sess == sess {
			delete(cs.peers, peer)
		}
	}
	cs.mu.Unlock()
}

// deltaShipItems rewrites a coherency-path item batch bound for peer
// through the ship state for session sess: items the peer already holds
// shrink to tokens (or, when final, disappear), changed items become
// deltas when profitable, and the rest ship full. Every surviving item
// advances the datum's crossing version on this edge. final marks
// shipments after which the receiver has no onward obligation
// (end-of-session and coherence-writeback deliveries to the origin):
// there an unchanged item is dropped outright instead of tokenized. The
// input slice is filtered in place; item bytes are retained as the new
// recorded view.
func (rt *Runtime) deltaShipItems(peer uint32, sess uint64, items []wire.DataItem, final bool) []wire.DataItem {
	if rt.noDeltaShip || len(items) == 0 {
		// Full shipping (the ablation) still feeds the accounting, so the
		// two modes compare on the same coherency-path byte counters.
		for _, it := range items {
			rt.stats.cohItemsShipped.Add(1)
			rt.stats.cohItemBytes.Add(uint64(len(it.Bytes)))
		}
		return items
	}
	rt.coh.mu.Lock()
	defer rt.coh.mu.Unlock()
	views := rt.coh.viewsFor(peer, sess, len(items))
	out := items[:0]
	for _, it := range items {
		v, ok := views[it.LP]
		if !ok {
			views[it.LP] = cohView{ver: 1, bytes: it.Bytes}
			rt.stats.cohItemsShipped.Add(1)
			rt.stats.cohItemBytes.Add(uint64(len(it.Bytes)))
			out = append(out, it)
			continue
		}
		if bytes.Equal(v.bytes, it.Bytes) {
			// Unchanged since the last crossing on this edge: the peer
			// holds exactly these bytes already, so no body travels.
			rt.stats.cohItemsSkipped.Add(1)
			if final {
				continue
			}
			out = append(out, wire.DataItem{
				LP:      it.LP,
				Dirty:   it.Dirty,
				Delta:   true,
				BaseVer: v.ver,
			})
			v.ver++
			views[it.LP] = v
			continue
		}
		runs := delta.Diff(v.bytes, it.Bytes, delta.DefaultGap)
		// A delta replaces the opaque body and adds the BaseVer word;
		// compare padded wire costs before committing to it.
		if runs != nil && 4+pad4(delta.EncodedSize(runs)) < pad4(len(it.Bytes)) {
			out = append(out, wire.DataItem{
				LP:      it.LP,
				Dirty:   it.Dirty,
				Delta:   true,
				BaseVer: v.ver,
				Bytes:   delta.Encode(runs),
			})
			rt.stats.cohDeltaItems.Add(1)
			rt.stats.cohItemBytes.Add(uint64(delta.EncodedSize(runs)))
		} else {
			rt.stats.cohItemBytes.Add(uint64(len(it.Bytes)))
			out = append(out, it)
		}
		rt.stats.cohItemsShipped.Add(1)
		v.ver++
		v.bytes = it.Bytes
		views[it.LP] = v
	}
	return out
}

func pad4(n int) int { return (n + 3) &^ 3 }

// cohReceive resolves an incoming coherency-path item from peer (within
// session sess) to its full canonical bytes — patching a delta item
// against the recorded view — and advances the ship state to mirror the
// sender's. fresh reports whether the bytes differ from what this space
// last exchanged for the datum: a false return means the local copy is
// already current and the caller may skip re-installing the value (it
// must still honor the item's dirty bit).
func (rt *Runtime) cohReceive(peer uint32, sess uint64, it wire.DataItem) (full []byte, fresh bool, err error) {
	if rt.noDeltaShip {
		if it.Delta {
			return nil, false, fmt.Errorf("core: delta item for %v received with delta shipping disabled", it.LP)
		}
		return it.Bytes, true, nil
	}
	rt.coh.mu.Lock()
	defer rt.coh.mu.Unlock()
	views := rt.coh.viewsFor(peer, sess, 1)
	v, ok := views[it.LP]
	if it.Delta {
		if !ok {
			return nil, false, fmt.Errorf("core: delta for %v from space %d without a baseline", it.LP, peer)
		}
		if v.ver != it.BaseVer {
			return nil, false, fmt.Errorf("core: delta for %v from space %d patches version %d, have %d",
				it.LP, peer, it.BaseVer, v.ver)
		}
		if len(it.Bytes) == 0 {
			// Token: no change since the last crossing; the recorded view
			// is the current value.
			v.ver++
			views[it.LP] = v
			return v.bytes, false, nil
		}
		runs, err := delta.Decode(it.Bytes)
		if err != nil {
			return nil, false, fmt.Errorf("core: delta for %v: %w", it.LP, err)
		}
		patched, err := delta.Apply(v.bytes, runs)
		if err != nil {
			return nil, false, fmt.Errorf("core: delta for %v: %w", it.LP, err)
		}
		v.ver++
		v.bytes = patched
		views[it.LP] = v
		return patched, true, nil
	}
	if !ok {
		views[it.LP] = cohView{ver: 1, bytes: it.Bytes}
	} else {
		v.ver++
		v.bytes = it.Bytes
		views[it.LP] = v
	}
	return it.Bytes, true, nil
}

package core

import (
	"slices"
	"sync"

	"smartrpc/internal/swizzle"
	"smartrpc/internal/types"
)

// Adaptive eagerness. The closure budget (§3.3) decides how much of a
// datum's pointer neighborhood rides along with each fetch; the paper
// fixes it per policy. This controller measures, per (origin space,
// datum type), how much of the shipped closure the session actually
// touched — vmem keeps an accessed bit per cache page that only the
// checked access paths set — and, when Options.AdaptiveEagerness is on,
// grows or shrinks each origin's budget between sessions: mostly-wasted
// closures halve it, mostly-used ones double it. The cumulative counters
// are always maintained; they are free at demotion time and feed the
// TESTING.md eagerness-tuning workflow even when adaptation is off.

const (
	// eagerAdaptMin is the minimum sample (hits+waste) before a session's
	// usage moves an origin's budget; below it the evidence is noise.
	eagerAdaptMin = 16
	// eagerShrinkRatio and eagerGrowRatio bound the dead band: waste
	// above the former halves the budget, below the latter doubles it.
	eagerShrinkRatio = 0.5
	eagerGrowRatio   = 0.125
	// minEagerBudget and maxEagerBudget clamp adaptation.
	minEagerBudget = 1024
	maxEagerBudget = 1 << 20
)

type eagerKey struct {
	Origin uint32
	Type   types.ID
}

// EagerUsage is the cumulative closure-usage record for one (origin,
// type) pair: Hits counts entries demoted from an accessed page, Waste
// entries demoted from a page the session never touched.
type EagerUsage struct {
	Origin uint32
	Type   types.ID
	Hits   uint64
	Waste  uint64
}

type eagerState struct {
	mu      sync.Mutex
	usage   map[eagerKey]*EagerUsage
	budgets map[uint32]int
}

// budgetFor returns the closure byte budget to use when fetching from
// origin: the adapted per-origin value when adaptation is enabled and
// has evidence, the configured closure budget otherwise.
func (rt *Runtime) budgetFor(origin uint32) int {
	if !rt.adaptiveEager {
		return rt.closure
	}
	rt.eager.mu.Lock()
	defer rt.eager.mu.Unlock()
	if b, ok := rt.eager.budgets[origin]; ok {
		return b
	}
	return rt.closure
}

// recordEagerUsage runs at demotion/invalidation time, while the table
// rows still say what was resident and vmem still says which pages the
// session touched. Page-granular: an entry counts as hit if the first
// page it occupies was accessed.
func (rt *Runtime) recordEagerUsage(entries []swizzle.Entry) {
	type sessionUse struct{ hits, waste uint64 }
	perOrigin := make(map[uint32]*sessionUse)
	rt.eager.mu.Lock()
	defer rt.eager.mu.Unlock()
	if rt.eager.usage == nil {
		rt.eager.usage = make(map[eagerKey]*EagerUsage)
	}
	for _, e := range entries {
		if !e.Resident {
			continue
		}
		k := eagerKey{Origin: e.LP.Space, Type: e.LP.Type}
		u := rt.eager.usage[k]
		if u == nil {
			u = &EagerUsage{Origin: k.Origin, Type: k.Type}
			rt.eager.usage[k] = u
		}
		s := perOrigin[k.Origin]
		if s == nil {
			s = &sessionUse{}
			perOrigin[k.Origin] = s
		}
		if rt.space.Accessed(rt.space.PageOf(e.Addr)) {
			u.Hits++
			s.hits++
		} else {
			u.Waste++
			s.waste++
		}
	}
	if !rt.adaptiveEager {
		return
	}
	if rt.eager.budgets == nil {
		rt.eager.budgets = make(map[uint32]int)
	}
	for origin, s := range perOrigin {
		total := s.hits + s.waste
		if total < eagerAdaptMin {
			continue
		}
		b, ok := rt.eager.budgets[origin]
		if !ok {
			b = rt.closure
		}
		switch ratio := float64(s.waste) / float64(total); {
		case ratio > eagerShrinkRatio:
			b /= 2
		case ratio < eagerGrowRatio:
			b *= 2
		}
		rt.eager.budgets[origin] = min(max(b, minEagerBudget), maxEagerBudget)
	}
}

// prefetchDepthFor scales the configured speculative prefetch depth for
// one origin by the same closure-usage evidence the adaptive budget uses:
// the cumulative per-(origin, type) hit/waste counters recorded at
// demotion time. An origin whose shipped data is mostly wasted gets its
// speculation shut off entirely (waste above eagerShrinkRatio → depth 0);
// one whose data is almost always used prefetches twice as deep (waste
// below eagerGrowRatio). With less than eagerAdaptMin of evidence the
// configured depth stands.
func (rt *Runtime) prefetchDepthFor(origin uint32, depth int) int {
	rt.eager.mu.Lock()
	defer rt.eager.mu.Unlock()
	var hits, waste uint64
	for k, u := range rt.eager.usage {
		if k.Origin == origin {
			hits += u.Hits
			waste += u.Waste
		}
	}
	total := hits + waste
	if total < eagerAdaptMin {
		return depth
	}
	switch ratio := float64(waste) / float64(total); {
	case ratio > eagerShrinkRatio:
		return 0
	case ratio < eagerGrowRatio:
		return depth * 2
	default:
		return depth
	}
}

// EagerUsageStats returns the cumulative per-(origin, type) closure
// usage counters, sorted by origin then type.
func (rt *Runtime) EagerUsageStats() []EagerUsage {
	rt.eager.mu.Lock()
	defer rt.eager.mu.Unlock()
	out := make([]EagerUsage, 0, len(rt.eager.usage))
	for _, u := range rt.eager.usage {
		out = append(out, *u)
	}
	slices.SortFunc(out, func(a, b EagerUsage) int {
		if a.Origin != b.Origin {
			return int(a.Origin) - int(b.Origin)
		}
		return int(a.Type) - int(b.Type)
	})
	return out
}

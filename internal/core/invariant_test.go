package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
)

// --- positive checks: the invariants hold through real sessions ---

func TestInvariantsHoldThroughSession(t *testing.T) {
	for _, pol := range []Policy{PolicySmart, PolicyEager, PolicyLazy} {
		t.Run(pol.String(), func(t *testing.T) {
			caller, callee := pair(t, func(id uint32, o *Options) {
				o.Policy = pol
				o.CheckInvariants = true
			})
			registerSumProc(t, callee)
			root := buildTree(t, caller, 5)
			res := sessionCall(t, caller, 2, "sumTree", root)
			if got := res[0].Int64(); got != wantSum(5) {
				t.Errorf("sum = %d, want %d", got, wantSum(5))
			}
			// Quiescent, no session: every space must satisfy the full
			// network-level check with no thread of control anywhere.
			if err := CheckNetworkInvariants(nil, []*Runtime{caller, callee}); err != nil {
				t.Errorf("network invariants after clean session: %v", err)
			}
			for _, rt := range []*Runtime{caller, callee} {
				if err := rt.CheckIdleInvariants(); err != nil {
					t.Errorf("idle invariants space %d: %v", rt.ID(), err)
				}
			}
		})
	}
}

func TestInvariantsHoldMidSessionWithMutation(t *testing.T) {
	caller, callee := pair(t, func(id uint32, o *Options) { o.CheckInvariants = true })
	err := callee.Register("incAll", func(ctx *Ctx, args []Value) ([]Value, error) {
		rt := ctx.Runtime()
		var walk func(v Value) error
		walk = func(v Value) error {
			if v.IsNullPtr() {
				return nil
			}
			ref, err := rt.Deref(v)
			if err != nil {
				return err
			}
			n, err := ref.Int("data", 0)
			if err != nil {
				return err
			}
			if err := ref.SetInt("data", 0, n+1); err != nil {
				return err
			}
			for _, f := range []string{"left", "right"} {
				c, err := ref.Ptr(f, 0)
				if err != nil {
					return err
				}
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		}
		return nil, walk(args[0])
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 4)
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Call(2, "incAll", []Value{root}); err != nil {
		t.Fatal(err)
	}
	// Mid-session quiescent point: thread of control is back on the
	// caller, so only the caller may hold dirty pages.
	if err := CheckNetworkInvariants(caller, []*Runtime{caller, callee}); err != nil {
		t.Errorf("network invariants mid-session: %v", err)
	}
	if err := caller.EndSession(); err != nil {
		t.Fatal(err)
	}
	got, err := sumTree(caller, root)
	if err != nil {
		t.Fatal(err)
	}
	if want := wantSum(4) + (1<<4 - 1); got != want {
		t.Errorf("sum after remote increment = %d, want %d", got, want)
	}
}

// --- mutation tests: each deliberately broken invariant is caught ---

func TestInvariantCatchesForeignModifiedEntry(t *testing.T) {
	caller, _ := pair(t, nil)
	if err := caller.CheckLocalInvariants(); err != nil {
		t.Fatalf("clean runtime fails local check: %v", err)
	}
	caller.markModified(1, wire.LongPtr{Space: 99, Addr: 0x1_0000, Type: nodeType})
	err := caller.CheckLocalInvariants()
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("foreign modified entry not caught, err = %v", err)
	}
	if !strings.Contains(err.Error(), "foreign") {
		t.Errorf("error %q does not name the violation", err)
	}
}

func TestInvariantCatchesDanglingPointer(t *testing.T) {
	caller, callee := pair(t, nil)
	registerSumProc(t, callee)
	errCh := make(chan error, 1)
	err := callee.Register("corrupt", func(ctx *Ctx, args []Value) ([]Value, error) {
		rt := ctx.Runtime()
		// Walk the tree first so cached rows become resident.
		if _, err := sumTree(rt, args[0]); err != nil {
			return nil, err
		}
		if err := rt.CheckLocalInvariants(); err != nil {
			errCh <- err
			return nil, nil
		}
		// Smash a pointer word of a resident cached node with an address
		// that is neither heap nor a table row.
		for _, e := range rt.Table().Entries() {
			if !e.Resident {
				continue
			}
			if err := rt.Space().WritePtrRaw(e.Addr, vmem.VAddr(0x4242)); err != nil {
				errCh <- err
				return nil, nil
			}
			break
		}
		errCh <- rt.CheckLocalInvariants()
		// Put nulls back so end-of-session teardown stays sane.
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 3)
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Call(2, "corrupt", []Value{root}); err != nil {
		t.Fatal(err)
	}
	caller.AbortSession()
	callee.AbortSession()
	got := <-errCh
	if !errors.Is(got, ErrInvariant) {
		t.Fatalf("dangling pointer not caught, err = %v", got)
	}
	if !strings.Contains(got.Error(), "dangling") {
		t.Errorf("error %q does not name the violation", got)
	}
}

func TestInvariantCatchesVersionSplit(t *testing.T) {
	caller, callee := pair(t, nil)
	// A mutating call ships the modified set back on return, which is
	// what records delta-shipping views on both ends of the edge (the
	// read-only fetch path deliberately bypasses them).
	err := callee.Register("bump", func(ctx *Ctx, args []Value) ([]Value, error) {
		ref, err := ctx.Runtime().Deref(args[0])
		if err != nil {
			return nil, err
		}
		n, err := ref.Int("data", 0)
		if err != nil {
			return nil, err
		}
		return nil, ref.SetInt("data", 0, n+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	root := buildTree(t, caller, 3)
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Call(2, "bump", []Value{root}); err != nil {
		t.Fatal(err)
	}
	if err := CheckCohLockstep(caller, callee); err != nil {
		t.Fatalf("lockstep broken after clean call: %v", err)
	}
	// Advance one datum's crossing version on the caller side only —
	// exactly what a dropped or duplicated items frame would cause.
	caller.coh.mu.Lock()
	edge := caller.coh.peers[callee.ID()]
	if edge == nil || len(edge.views) == 0 {
		caller.coh.mu.Unlock()
		t.Fatal("no delta-shipping views recorded on the edge")
	}
	for lp, v := range edge.views {
		v.ver++
		edge.views[lp] = v
		break
	}
	caller.coh.mu.Unlock()
	err = CheckCohLockstep(caller, callee)
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("version split not caught, err = %v", err)
	}
	if !strings.Contains(err.Error(), "version split") {
		t.Errorf("error %q does not name the violation", err)
	}
	caller.AbortSession()
	callee.AbortSession()
}

func TestIdleInvariantsCatchLeftoverState(t *testing.T) {
	caller, callee := pair(t, nil)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 3)
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Call(2, "sumTree", []Value{root}); err != nil {
		t.Fatal(err)
	}
	// Mid-session the callee holds cached rows; it must NOT pass the
	// idle check — this is what a lost end-of-session invalidation
	// leaves behind.
	if err := callee.CheckIdleInvariants(); !errors.Is(err, ErrInvariant) {
		t.Fatalf("leftover cache rows not caught, err = %v", err)
	}
	if err := caller.EndSession(); err != nil {
		t.Fatal(err)
	}
	if err := callee.CheckIdleInvariants(); err != nil {
		t.Fatalf("callee not idle after clean end: %v", err)
	}
}

// --- AbortSession recovery ---

func TestAbortSessionRecoversBothSides(t *testing.T) {
	caller, callee := pair(t, func(id uint32, o *Options) { o.CheckInvariants = true })
	registerSumProc(t, callee)
	root := buildTree(t, caller, 4)
	if err := caller.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Call(2, "sumTree", []Value{root}); err != nil {
		t.Fatal(err)
	}
	// Abandon the session without the invalidation handshake, as a
	// harness would after a fault wedged it.
	caller.AbortSession()
	callee.AbortSession()
	for _, rt := range []*Runtime{caller, callee} {
		if err := rt.CheckIdleInvariants(); err != nil {
			t.Fatalf("space %d not idle after abort: %v", rt.ID(), err)
		}
	}
	// A fresh session works end to end.
	res := sessionCall(t, caller, 2, "sumTree", root)
	if got := res[0].Int64(); got != wantSum(4) {
		t.Errorf("sum after abort+restart = %d, want %d", got, wantSum(4))
	}
}

// --- call deadline ---

func TestCallTimeoutReturnsTypedError(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	node, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Options{
		ID: 1, Node: node, Registry: newTestRegistry(t),
		CallTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	// Space 7 is attached but never serves anything — a silent partition.
	_ = rawAttach(t, net, 7)
	if err := rt.BeginSession(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = rt.Call(7, "anything", nil)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("call to silent peer: err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline took %v, want ~50ms", elapsed)
	}
	rt.AbortSession()
	if err := rt.CheckIdleInvariants(); err != nil {
		t.Errorf("caller not clean after deadline+abort: %v", err)
	}
}

func TestNoTimeoutByDefault(t *testing.T) {
	caller, callee := pair(t, nil)
	registerSumProc(t, callee)
	root := buildTree(t, caller, 3)
	res := sessionCall(t, caller, 2, "sumTree", root)
	if got := res[0].Int64(); got != wantSum(3) {
		t.Errorf("sum = %d, want %d", got, wantSum(3))
	}
}

// --- duplicate request suppression ---

func TestDuplicateRequestExecutesOnce(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	rt := newRuntimeOnNet(t, net, 2)
	calls := 0
	err = rt.Register("count", func(*Ctx, []Value) ([]Value, error) {
		calls++
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	raw := rawAttach(t, net, 7)
	p := wire.CallPayload{}
	msg := wire.Message{
		Kind: wire.KindCall, Session: 0x700000001, Seq: 5,
		From: 7, To: 2, Proc: "count", Payload: p.Encode(),
	}
	// Original plus a duplicated frame, then a distinct second request.
	for i := 0; i < 2; i++ {
		if err := raw.Send(sealed(msg)); err != nil {
			t.Fatal(err)
		}
	}
	msg2 := msg
	msg2.Seq = 6
	if err := raw.Send(sealed(msg2)); err != nil {
		t.Fatal(err)
	}
	// Exactly two replies arrive: one per distinct request; none for the
	// duplicate.
	for i := 0; i < 2; i++ {
		reply, err := raw.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if reply.Kind != wire.KindReturn || reply.Err != "" {
			t.Fatalf("reply %d = %+v", i, reply)
		}
	}
	if calls != 2 {
		t.Errorf("handler ran %d times, want 2 (duplicate must be suppressed)", calls)
	}
	select {
	case m := <-recvChan(raw):
		t.Fatalf("unexpected extra reply %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
}

func recvChan(n transport.Node) <-chan wire.Message {
	ch := make(chan wire.Message, 1)
	go func() {
		if m, err := n.Recv(); err == nil {
			ch <- m
		}
	}()
	return ch
}

package core

import (
	"errors"
	"testing"

	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/types"
)

// --- remote function pointers (§6 future work, implemented) ---

func TestFuncValueRequiresRegistration(t *testing.T) {
	caller, _ := pair(t, nil)
	if _, err := caller.FuncValue("nope"); !errors.Is(err, ErrUnknownProc) {
		t.Errorf("FuncValue of unregistered proc: %v", err)
	}
}

func TestFunctionPointerAsArgument(t *testing.T) {
	caller, callee := pair(t, nil)
	// The caller exports a local procedure and passes a POINTER TO IT to
	// the callee, which invokes it: the classic callback-by-function-
	// pointer idiom the paper says conventional RPC cannot express.
	err := caller.Register("double", func(ctx *Ctx, args []Value) ([]Value, error) {
		return []Value{Int64Value(args[0].Int64() * 2)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = callee.Register("apply", func(ctx *Ctx, args []Value) ([]Value, error) {
		fn, x := args[0], args[1]
		return ctx.Runtime().CallFunc(fn, []Value{x})
	})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := caller.FuncValue("double")
	if err != nil {
		t.Fatal(err)
	}
	res := sessionCall(t, caller, 2, "apply", fn, Int64Value(21))
	if res[0].Int64() != 42 {
		t.Errorf("apply(double, 21) = %d, want 42", res[0].Int64())
	}
}

func TestFunctionPointerForwardedToThirdSpace(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = net.Close() })
	reg := newTestRegistry(t)
	mk := func(id uint32) *Runtime {
		node, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(Options{ID: id, Node: node, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = rt.Close() })
		return rt
	}
	a, b, c := mk(1), mk(2), mk(3)
	err = a.Register("stamp", func(ctx *Ctx, args []Value) ([]Value, error) {
		return []Value{Int64Value(args[0].Int64() + 1000)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// B forwards the function pointer to C without inspecting it; C calls
	// it, reaching back to A. Location transparency of the capability.
	err = b.Register("forward", func(ctx *Ctx, args []Value) ([]Value, error) {
		return ctx.Call(3, "invoke", args)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Register("invoke", func(ctx *Ctx, args []Value) ([]Value, error) {
		return ctx.Runtime().CallFunc(args[0], []Value{Int64Value(7)})
	})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := a.FuncValue("stamp")
	if err != nil {
		t.Fatal(err)
	}
	res := sessionCall(t, a, 2, "forward", fn)
	if res[0].Int64() != 1007 {
		t.Errorf("forwarded function pointer result = %d, want 1007", res[0].Int64())
	}
}

func TestCallFuncLocalDispatch(t *testing.T) {
	caller, _ := pair(t, nil)
	err := caller.Register("inc", func(ctx *Ctx, args []Value) ([]Value, error) {
		return []Value{Int64Value(args[0].Int64() + 1)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := caller.FuncValue("inc")
	if err != nil {
		t.Fatal(err)
	}
	// Local function pointers dispatch without a session or network.
	res, err := caller.CallFunc(fn, []Value{Int64Value(1)})
	if err != nil || res[0].Int64() != 2 {
		t.Errorf("local CallFunc = %v, %v", res, err)
	}
	if got := caller.Stats().CallsSent; got != 0 {
		t.Errorf("local dispatch sent %d RPCs", got)
	}
}

func TestCallFuncOnNonFunc(t *testing.T) {
	caller, _ := pair(t, nil)
	if _, err := caller.CallFunc(Int64Value(1), nil); err == nil {
		t.Error("CallFunc on scalar succeeded")
	}
}

func TestFuncForbiddenInStructFields(t *testing.T) {
	d := &types.Desc{
		ID: 5, Name: "Bad",
		Fields: []types.Field{{Name: "f", Kind: types.Func}},
	}
	if err := d.Validate(); err == nil {
		t.Error("function pointer field accepted in struct")
	}
}

// --- closure shape hints (§6 future work, implemented) ---

func TestClosureHintValidation(t *testing.T) {
	caller, _ := pair(t, nil)
	if err := caller.SetClosureHint(nodeType, []string{"data"}); err == nil {
		t.Error("hint on scalar field accepted")
	}
	if err := caller.SetClosureHint(nodeType, []string{"missing"}); err == nil {
		t.Error("hint on unknown field accepted")
	}
	if err := caller.SetClosureHint(99, nil); err == nil {
		t.Error("hint on unknown type accepted")
	}
	if err := caller.SetClosureHint(nodeType, []string{"left"}); err != nil {
		t.Errorf("valid hint rejected: %v", err)
	}
}

func TestClosureHintShapesPrefetch(t *testing.T) {
	// A leftmost-path workload: with a "left"-only hint on the server
	// (data owner), the closure carries no right subtrees, so far fewer
	// bytes move for the same path visit.
	runPath := func(hint bool) uint64 {
		clock := &netsim.Clock{}
		stats := &netsim.Stats{}
		net, err := transport.NewNetwork(netsim.Model{}, clock, stats)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = net.Close() })
		reg := newTestRegistry(t)
		an, _ := net.Attach(1)
		bn, _ := net.Attach(2)
		opts := Options{ID: 1, Node: an, Registry: reg, ClosureSize: 4096}
		if hint {
			opts.ClosureHints = map[types.ID][]string{nodeType: {"left"}}
		}
		owner, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = owner.Close() })
		walker, err := New(Options{ID: 2, Node: bn, Registry: reg, ClosureSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = walker.Close() })
		err = walker.Register("leftPath", func(ctx *Ctx, args []Value) ([]Value, error) {
			rt := ctx.Runtime()
			n := int64(0)
			v := args[0]
			for !v.IsNullPtr() {
				ref, err := rt.Deref(v)
				if err != nil {
					return nil, err
				}
				n++
				if v, err = ref.Ptr("left", 0); err != nil {
					return nil, err
				}
			}
			return []Value{Int64Value(n)}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		root := buildTree(t, owner, 10) // 1023 nodes, path depth 10
		if err := owner.BeginSession(); err != nil {
			t.Fatal(err)
		}
		res, err := owner.Call(2, "leftPath", []Value{root})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Int64() != 10 {
			t.Fatalf("path length = %d", res[0].Int64())
		}
		if err := owner.EndSession(); err != nil {
			t.Fatal(err)
		}
		return stats.Bytes()
	}
	unhinted := runPath(false)
	hinted := runPath(true)
	if hinted >= unhinted {
		t.Errorf("hinted closure moved %d bytes, unhinted %d; hint should reduce traffic", hinted, unhinted)
	}
}

func TestClosureHintEmptyStopsTraversal(t *testing.T) {
	caller, callee := pair(t, func(id uint32, o *Options) {
		o.ClosureHints = map[types.ID][]string{nodeType: {}}
		o.ClosureSize = 1 << 20
	})
	registerSumProc(t, callee)
	root := buildTree(t, caller, 5)
	res := sessionCall(t, caller, 2, "sumTree", root)
	if res[0].Int64() != wantSum(5) {
		t.Errorf("sum with traversal-stopping hint = %d", res[0].Int64())
	}
	// With traversal stopped at every node, the huge closure budget is
	// useless: fetches stay frequent (still page-batched, but no
	// prefetch beyond the faulted pages' entries).
	if callee.Stats().FetchesSent == 1 {
		t.Error("closure still prefetched despite empty hint")
	}
}

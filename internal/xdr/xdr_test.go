package xdr

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestUint32RoundTrip(t *testing.T) {
	cases := []uint32{0, 1, 0x7fffffff, 0x80000000, 0xffffffff, 42}
	for _, v := range cases {
		e := NewEncoder(8)
		e.PutUint32(v)
		got, err := NewDecoder(e.Bytes()).Uint32()
		if err != nil {
			t.Fatalf("Uint32(%#x): %v", v, err)
		}
		if got != v {
			t.Errorf("Uint32 round trip: got %#x, want %#x", got, v)
		}
	}
}

func TestUint32BigEndianWire(t *testing.T) {
	e := NewEncoder(4)
	e.PutUint32(0x01020304)
	want := []byte{1, 2, 3, 4}
	if !bytes.Equal(e.Bytes(), want) {
		t.Errorf("wire format = %v, want %v", e.Bytes(), want)
	}
}

func TestInt32Negative(t *testing.T) {
	e := NewEncoder(4)
	e.PutInt32(-1)
	if !bytes.Equal(e.Bytes(), []byte{0xff, 0xff, 0xff, 0xff}) {
		t.Errorf("int32(-1) wire = %v", e.Bytes())
	}
	got, err := NewDecoder(e.Bytes()).Int32()
	if err != nil || got != -1 {
		t.Errorf("Int32() = %d, %v; want -1, nil", got, err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 1 << 32, math.MaxUint64, 0x0102030405060708}
	for _, v := range cases {
		e := NewEncoder(8)
		e.PutUint64(v)
		got, err := NewDecoder(e.Bytes()).Uint64()
		if err != nil || got != v {
			t.Errorf("Uint64(%#x) round trip = %#x, %v", v, got, err)
		}
	}
}

func TestBool(t *testing.T) {
	e := NewEncoder(8)
	e.PutBool(true)
	e.PutBool(false)
	d := NewDecoder(e.Bytes())
	v1, err1 := d.Bool()
	v2, err2 := d.Bool()
	if err1 != nil || err2 != nil || !v1 || v2 {
		t.Errorf("bool round trip: %v %v %v %v", v1, err1, v2, err2)
	}
}

func TestBoolRejectsOther(t *testing.T) {
	e := NewEncoder(4)
	e.PutUint32(2)
	if _, err := NewDecoder(e.Bytes()).Bool(); err == nil {
		t.Error("Bool() accepted 2, want error")
	}
}

func TestFloats(t *testing.T) {
	e := NewEncoder(16)
	e.PutFloat32(3.25)
	e.PutFloat64(-1.5e300)
	d := NewDecoder(e.Bytes())
	f32, err := d.Float32()
	if err != nil || f32 != 3.25 {
		t.Errorf("Float32 = %v, %v", f32, err)
	}
	f64, err := d.Float64()
	if err != nil || f64 != -1.5e300 {
		t.Errorf("Float64 = %v, %v", f64, err)
	}
}

func TestFloatNaN(t *testing.T) {
	e := NewEncoder(8)
	e.PutFloat64(math.NaN())
	f, err := NewDecoder(e.Bytes()).Float64()
	if err != nil || !math.IsNaN(f) {
		t.Errorf("NaN round trip = %v, %v", f, err)
	}
}

func TestStringPadding(t *testing.T) {
	for _, s := range []string{"", "a", "ab", "abc", "abcd", "abcde"} {
		e := NewEncoder(16)
		e.PutString(s)
		if e.Len()%4 != 0 {
			t.Errorf("PutString(%q): length %d not 4-aligned", s, e.Len())
		}
		got, err := NewDecoder(e.Bytes()).String()
		if err != nil || got != s {
			t.Errorf("String round trip %q = %q, %v", s, got, err)
		}
	}
}

func TestOpaqueRoundTrip(t *testing.T) {
	b := []byte{1, 2, 3, 4, 5}
	e := NewEncoder(16)
	e.PutOpaque(b)
	got, err := NewDecoder(e.Bytes()).Opaque()
	if err != nil || !bytes.Equal(got, b) {
		t.Errorf("Opaque round trip = %v, %v", got, err)
	}
}

func TestFixedOpaque(t *testing.T) {
	b := []byte{9, 8, 7}
	e := NewEncoder(8)
	e.PutFixedOpaque(b)
	if e.Len() != 4 {
		t.Fatalf("fixed opaque of 3 bytes encodes to %d bytes, want 4", e.Len())
	}
	got, err := NewDecoder(e.Bytes()).FixedOpaque(3)
	if err != nil || !bytes.Equal(got, b) {
		t.Errorf("FixedOpaque round trip = %v, %v", got, err)
	}
}

func TestNonZeroPaddingRejected(t *testing.T) {
	raw := []byte{0, 0, 0, 1, 'x', 0, 0, 1} // length 1, data 'x', bad pad byte
	if _, err := NewDecoder(raw).Opaque(); err != ErrPadding {
		t.Errorf("Opaque with dirty padding: err = %v, want ErrPadding", err)
	}
}

func TestShortBufferErrors(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if _, err := d.Uint32(); err != ErrShortBuffer {
		t.Errorf("Uint32 on short buffer: %v", err)
	}
	d = NewDecoder([]byte{0, 0, 0, 8, 'a'})
	if _, err := d.Opaque(); err != ErrShortBuffer {
		t.Errorf("Opaque with truncated body: %v", err)
	}
}

func TestOversizeLengthRejected(t *testing.T) {
	e := NewEncoder(4)
	e.PutUint32(0xffffffff)
	if _, err := NewDecoder(e.Bytes()).Opaque(); err == nil {
		t.Error("Opaque accepted absurd length")
	}
}

func TestDecoderOffsetTracking(t *testing.T) {
	e := NewEncoder(16)
	e.PutUint32(1)
	e.PutUint64(2)
	d := NewDecoder(e.Bytes())
	if _, err := d.Uint32(); err != nil {
		t.Fatal(err)
	}
	if d.Offset() != 4 || d.Remaining() != 8 {
		t.Errorf("after Uint32: offset %d remaining %d", d.Offset(), d.Remaining())
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(8)
	e.PutUint32(7)
	e.Reset()
	if e.Len() != 0 {
		t.Errorf("after Reset: len %d", e.Len())
	}
	e.PutUint32(9)
	got, _ := NewDecoder(e.Bytes()).Uint32()
	if got != 9 {
		t.Errorf("after Reset+Put: %d", got)
	}
}

// Property-based round trips for every scalar kind.

func TestQuickUint32(t *testing.T) {
	f := func(v uint32) bool {
		e := NewEncoder(4)
		e.PutUint32(v)
		got, err := NewDecoder(e.Bytes()).Uint32()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInt64(t *testing.T) {
	f := func(v int64) bool {
		e := NewEncoder(8)
		e.PutInt64(v)
		got, err := NewDecoder(e.Bytes()).Int64()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFloat64(t *testing.T) {
	f := func(v float64) bool {
		e := NewEncoder(8)
		e.PutFloat64(v)
		got, err := NewDecoder(e.Bytes()).Float64()
		if err != nil {
			return false
		}
		return got == v || (math.IsNaN(got) && math.IsNaN(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOpaque(t *testing.T) {
	f := func(b []byte) bool {
		e := NewEncoder(len(b) + 8)
		e.PutOpaque(b)
		if e.Len()%4 != 0 {
			return false
		}
		got, err := NewDecoder(e.Bytes()).Opaque()
		return err == nil && bytes.Equal(got, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickString(t *testing.T) {
	f := func(s string) bool {
		e := NewEncoder(len(s) + 8)
		e.PutString(s)
		got, err := NewDecoder(e.Bytes()).String()
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSequence(t *testing.T) {
	// Interleaved items decode in order regardless of values.
	f := func(a uint32, b int64, s string, c bool) bool {
		e := NewEncoder(64)
		e.PutUint32(a)
		e.PutInt64(b)
		e.PutString(s)
		e.PutBool(c)
		d := NewDecoder(e.Bytes())
		ga, e1 := d.Uint32()
		gb, e2 := d.Int64()
		gs, e3 := d.String()
		gc, e4 := d.Bool()
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
			return false
		}
		return ga == a && gb == b && gs == s && gc == c && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

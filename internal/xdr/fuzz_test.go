package xdr

import "testing"

// FuzzXDRDecode drives a decoder through an operation script drawn from
// the first input while decoding the second. Every primitive must either
// return a value or an error — no panics, no negative Remaining, no
// consuming past the buffer — whatever order the operations arrive in.
func FuzzXDRDecode(f *testing.F) {
	enc := NewEncoder(64)
	enc.PutUint32(7)
	enc.PutUint64(1 << 40)
	enc.PutString("hello")
	enc.PutOpaque([]byte{1, 2, 3})
	enc.PutBool(true)
	enc.PutFloat64(3.25)
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, enc.Bytes())
	f.Add([]byte{3, 3, 3}, []byte{0xff, 0xff, 0xff, 0xff, 0, 0})
	f.Fuzz(func(t *testing.T, script, data []byte) {
		d := NewDecoder(data)
		for _, op := range script {
			before := d.Remaining()
			var err error
			switch op % 10 {
			case 0:
				_, err = d.Uint32()
			case 1:
				_, err = d.Uint64()
			case 2:
				_, err = d.Int32()
			case 3:
				_, err = d.Int64()
			case 4:
				_, err = d.Bool()
			case 5:
				_, err = d.Float32()
			case 6:
				_, err = d.Float64()
			case 7:
				_, err = d.Opaque()
			case 8:
				_, err = d.String()
			case 9:
				_, err = d.FixedOpaque(int(op) * 3)
			}
			if d.Remaining() < 0 {
				t.Fatalf("Remaining went negative after op %d", op)
			}
			if d.Remaining() > before {
				t.Fatalf("op %d grew the buffer", op)
			}
			if err != nil && d.Offset() > len(data) {
				t.Fatalf("offset %d past end %d after error", d.Offset(), len(data))
			}
		}
	})
}

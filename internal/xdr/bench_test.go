package xdr

import "testing"

// BenchmarkXDREncode measures canonical encoding of a representative
// record mix (fixed-width fields, opaque payload, string) into a reused
// encoder. Run with -benchmem: with Reset-based reuse the steady state
// must be zero allocations.
func BenchmarkXDREncode(b *testing.B) {
	opaque := make([]byte, 256)
	for i := range opaque {
		opaque[i] = byte(i)
	}
	enc := NewEncoder(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Reset()
		enc.PutUint32(uint32(i))
		enc.PutUint64(uint64(i) * 3)
		enc.PutBool(i&1 == 0)
		enc.PutFloat64(float64(i))
		enc.PutString("node_search")
		enc.PutOpaque(opaque)
		if enc.Len() == 0 {
			b.Fatal("empty encoding")
		}
	}
}

// BenchmarkXDRDecode measures the matching decode path. The decoder
// aliases its input for opaque fields, so the only allocation per
// iteration is the decoded string.
func BenchmarkXDRDecode(b *testing.B) {
	opaque := make([]byte, 256)
	enc := NewEncoder(1024)
	enc.PutUint32(7)
	enc.PutUint64(21)
	enc.PutBool(true)
	enc.PutFloat64(3.5)
	enc.PutString("node_search")
	enc.PutOpaque(opaque)
	buf := enc.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(buf)
		if _, err := d.Uint32(); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Uint64(); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Bool(); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Float64(); err != nil {
			b.Fatal(err)
		}
		if _, err := d.String(); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Opaque(); err != nil {
			b.Fatal(err)
		}
	}
}

// Package xdr implements the subset of XDR (External Data Representation,
// RFC 1014) used as the canonical data representation between address
// spaces, mirroring the paper's use of the SunOS XDR library.
//
// All quantities are encoded big-endian and padded to 4-byte alignment, per
// the standard. The package is written from scratch against the RFC: it has
// no dependency beyond the standard library.
package xdr

import (
	"errors"
	"fmt"
	"math"
)

// ErrShortBuffer is returned by Decoder methods when the input is exhausted
// before a complete item could be decoded.
var ErrShortBuffer = errors.New("xdr: short buffer")

// ErrPadding is returned when opaque/string padding bytes are non-zero,
// which RFC 1014 forbids.
var ErrPadding = errors.New("xdr: non-zero padding")

// maxLen bounds variable-length items to protect decoders from hostile or
// corrupt length words.
const maxLen = 1 << 30

// pad returns the number of zero bytes needed to pad n to a multiple of 4.
func pad(n int) int {
	return (4 - n%4) % 4
}

// Encoder appends XDR-encoded items to an internal buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder whose buffer has the given capacity hint.
func NewEncoder(capHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capHint)}
}

// Bytes returns the encoded buffer. The slice aliases the encoder's
// internal storage; it remains valid until the next Put call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUint32 encodes an unsigned 32-bit integer.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// PutInt32 encodes a signed 32-bit integer (two's complement).
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutUint64 encodes an unsigned 64-bit integer ("unsigned hyper").
func (e *Encoder) PutUint64(v uint64) {
	e.PutUint32(uint32(v >> 32))
	e.PutUint32(uint32(v))
}

// PutInt64 encodes a signed 64-bit integer ("hyper").
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutBool encodes a boolean as 0 or 1.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

// PutFloat32 encodes an IEEE-754 single-precision float.
func (e *Encoder) PutFloat32(v float32) { e.PutUint32(math.Float32bits(v)) }

// PutFloat64 encodes an IEEE-754 double-precision float.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// PutFixedOpaque encodes fixed-length opaque data (length is implicit in
// the protocol), padded to 4 bytes.
func (e *Encoder) PutFixedOpaque(b []byte) {
	e.buf = append(e.buf, b...)
	for i := 0; i < pad(len(b)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// PutOpaque encodes variable-length opaque data: length word then bytes,
// padded to 4 bytes.
func (e *Encoder) PutOpaque(b []byte) {
	e.PutUint32(uint32(len(b)))
	e.PutFixedOpaque(b)
}

// PutString encodes a string as variable-length opaque data.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	for i := 0; i < pad(len(s)); i++ {
		e.buf = append(e.buf, 0)
	}
}

// Decoder consumes XDR-encoded items from a buffer.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a Decoder reading from b. The decoder does not copy b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the number of consumed bytes.
func (d *Decoder) Offset() int { return d.off }

// Uint32 decodes an unsigned 32-bit integer.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, ErrShortBuffer
	}
	b := d.buf[d.off:]
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	d.off += 4
	return v, nil
}

// Int32 decodes a signed 32-bit integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes an unsigned 64-bit integer.
func (d *Decoder) Uint64() (uint64, error) {
	hi, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	lo, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	return uint64(hi)<<32 | uint64(lo), nil
}

// Int64 decodes a signed 64-bit integer.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool decodes a boolean; any value other than 0 or 1 is an error.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("xdr: bool value %d not in {0,1}", v)
	}
}

// Float32 decodes an IEEE-754 single-precision float.
func (d *Decoder) Float32() (float32, error) {
	v, err := d.Uint32()
	return math.Float32frombits(v), err
}

// Float64 decodes an IEEE-754 double-precision float.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}

// FixedOpaque decodes n bytes of fixed-length opaque data plus padding.
// The returned slice aliases the decoder's buffer.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	if n < 0 || n > maxLen {
		return nil, fmt.Errorf("xdr: opaque length %d out of range", n)
	}
	total := n + pad(n)
	if d.Remaining() < total {
		return nil, ErrShortBuffer
	}
	b := d.buf[d.off : d.off+n]
	for _, p := range d.buf[d.off+n : d.off+total] {
		if p != 0 {
			return nil, ErrPadding
		}
	}
	d.off += total
	return b, nil
}

// Opaque decodes variable-length opaque data.
// The returned slice aliases the decoder's buffer.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	return d.FixedOpaque(int(n))
}

// String decodes a string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	return string(b), err
}

// Package vmem simulates the virtual-memory hardware the paper's runtime
// relies on.
//
// The original system used the SPARC MMU through SunOS primitives: it
// allocated *protected page areas* for remotely referenced data, caught the
// access-violation exception raised by the first touch, fetched the data,
// and then released the protection. Dirty detection for the coherency
// protocol likewise used read-only page protection.
//
// Go programs cannot take over SIGSEGV (the runtime owns signal handling)
// and cannot fabricate pointers past the garbage collector, so this package
// provides the same machinery in software: a 32-bit virtual address space
// made of fixed-size pages with per-page protection, where every load and
// store checks protection and delivers a Fault to a registered handler —
// exactly the control flow of the paper's exception path, with the MMU's
// hardware check replaced by a bounds-and-protection check per access.
//
// The address space is split into two regions: a heap for locally owned
// data and a cache region where protected page areas for remote data are
// carved out. Addresses are plain uint32 values (VAddr); address 0 is the
// null pointer.
//
// # Concurrency model
//
// Page lookup is a flat slice index per region (both regions are
// bump-allocated, so the mapped pages of each region are dense) against an
// atomically published page table, and per-page protection and dirty bits
// are atomics, so the metadata side of every operation is lock-free.
//
// Data copies come in two flavors, selected by Config.Concurrent:
//
//   - Concurrent=false (default): copies take no lock at all. This relies
//     on the paper's single-active-thread property (§3.1, §3.4): within an
//     RPC session exactly one thread of control is active across the whole
//     system, and the control-transfer messages that hand it off establish
//     happens-before edges, so two goroutines never race on page data. The
//     in-memory and TCP transports both deliver messages over channels,
//     which gives exactly that ordering.
//   - Concurrent=true: copies additionally hold an internal mutex, giving
//     word-level atomicity between application goroutines that share one
//     Space outside the RPC protocol (e.g. a multithreaded server probing
//     its own heap while handlers run).
package vmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"smartrpc/internal/arch"
)

// VAddr is an ordinary pointer: an address valid only within one simulated
// address space. Long pointers (package swizzle) extend these across the
// distributed system.
type VAddr uint32

// Null is the null ordinary pointer.
const Null VAddr = 0

// Prot is a page protection level.
type Prot int

// Protection levels. ProtNone pages fault on any access (the paper's
// protected page area before its data arrives); ProtRead pages fault on
// write (dirty detection); ProtReadWrite pages never fault.
const (
	ProtNone Prot = iota + 1
	ProtRead
	ProtReadWrite
)

// String returns a mprotect-style rendering of the protection.
func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtReadWrite:
		return "rw-"
	default:
		return fmt.Sprintf("Prot(%d)", int(p))
	}
}

// FaultKind distinguishes read from write access violations.
type FaultKind int

// Fault kinds.
const (
	FaultRead FaultKind = iota + 1
	FaultWrite
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultRead:
		return "read"
	case FaultWrite:
		return "write"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault describes one access violation, as delivered to the handler.
type Fault struct {
	// Addr is the faulting address.
	Addr VAddr
	// Page is the faulting page number (Addr / PageSize).
	Page uint32
	// Kind says whether the access was a read or a write.
	Kind FaultKind
}

// Handler resolves a fault, typically by fetching remote data and raising
// the page protection. If it returns an error the faulting access fails
// with that error. A handler that leaves the protection unchanged causes
// the access to fail with ErrFaultUnresolved.
type Handler func(Fault) error

// Region boundaries. The heap starts above page 0 so that small integers
// never alias valid pointers; the cache region occupies the upper half.
const (
	heapBase  VAddr = 0x0001_0000
	cacheBase VAddr = 0x4000_0000
	spaceTop  VAddr = 0xF000_0000
)

// Sentinel errors.
var (
	// ErrNull is returned for any access through the null pointer.
	ErrNull = errors.New("vmem: null pointer access")
	// ErrUnmapped is returned for access to a page that was never allocated.
	ErrUnmapped = errors.New("vmem: unmapped address")
	// ErrNoHandler is returned when a fault occurs and no handler is set.
	ErrNoHandler = errors.New("vmem: access violation with no fault handler")
	// ErrFaultUnresolved is returned when the handler ran but the page is
	// still inaccessible.
	ErrFaultUnresolved = errors.New("vmem: fault handler did not resolve protection")
	// ErrOutOfMemory is returned when a region is exhausted.
	ErrOutOfMemory = errors.New("vmem: out of memory")
	// ErrBadFree is returned for Free of an address that was not returned
	// by Alloc (or was already freed).
	ErrBadFree = errors.New("vmem: bad free")
)

// page is one unit of protection and transfer. data is fixed at creation;
// prot and dirty are atomics so protection checks and dirty bookkeeping
// never take a lock.
type page struct {
	data     []byte
	prot     atomic.Int32
	dirty    atomic.Bool   // cache page modified since install (coherency protocol)
	accessed atomic.Bool   // cache page touched by a checked access since the last demotion
	ver      atomic.Uint32 // heap page write version (see HeapVersion)
	cache    bool          // page lives in the cache region
}

// bumpVer advances a heap page's write-version counter. Called on every
// store path before the bytes change, so a reader that validated against
// the pre-bump version can only have observed strictly pre-write data.
// Cache pages carry no version: their contents are governed by the
// coherency protocol, not by local stores.
func (p *page) bumpVer() {
	if !p.cache {
		p.ver.Add(1)
	}
}

// markAccessed notes a checked (user-mode) access on a cache page for the
// adaptive-eagerness accounting. The load-before-store keeps the hot path
// from writing a shared cache line on every access once the bit is set.
func (p *page) markAccessed() {
	if p.cache && !p.accessed.Load() {
		p.accessed.Store(true)
	}
}

// pageTable is the immutable flat page table: one dense slice per region,
// indexed by page number minus the region's base page number. Growth
// copies the affected slice and publishes a fresh table; *page pointers
// stay stable across growth.
type pageTable struct {
	heap  []*page
	cache []*page
}

// Config parameterizes a Space.
type Config struct {
	// PageSize is the protection grain in bytes; must be a power of two
	// ≥ 64. Defaults to 4096.
	PageSize int
	// Profile is the simulated architecture. Defaults to arch.SPARC32.
	Profile arch.Profile
	// Concurrent makes data copies hold an internal lock so goroutines
	// sharing the Space outside the RPC protocol get word-level atomicity.
	// The default (false) is lock-free and relies on the protocol's
	// single-active-thread property; see the package comment.
	Concurrent bool
}

func (c *Config) fill() error {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.PageSize < 64 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("vmem: page size %d must be a power of two >= 64", c.PageSize)
	}
	if c.Profile.Name == "" {
		c.Profile = arch.SPARC32()
	}
	return c.Profile.Validate()
}

// Space is one simulated address space: a page table, a heap for local
// data, a cache region for remote data, and a fault handler.
//
// Metadata operations (protection, dirty bits, fault accounting) are safe
// for concurrent use. Data copies are lock-free unless Config.Concurrent
// is set; see the package comment for when that is sound. The fault
// handler is invoked without any lock held, so it may call back into the
// Space.
type Space struct {
	pageSize   int
	pageShift  uint
	pageMask   uint32
	concurrent bool
	profile    arch.Profile

	heapPN0  uint32 // first heap page number
	cachePN0 uint32 // first cache page number
	topPN    uint32 // first page number past the cache region

	table   atomic.Pointer[pageTable]
	handler atomic.Pointer[Handler]
	faults  atomic.Uint64

	mu        sync.Mutex // guards growth, heap allocator, cacheNext; copies too when concurrent
	heap      allocator
	cacheNext VAddr // bump pointer for cache page allocation
}

// NewSpace creates an empty address space.
func NewSpace(cfg Config) (*Space, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	shift := uint(0)
	for 1<<shift != cfg.PageSize {
		shift++
	}
	s := &Space{
		pageSize:   cfg.PageSize,
		pageShift:  shift,
		pageMask:   uint32(cfg.PageSize - 1),
		concurrent: cfg.Concurrent,
		profile:    cfg.Profile,
		heapPN0:    uint32(heapBase) >> shift,
		cachePN0:   uint32(cacheBase) >> shift,
		topPN:      uint32(spaceTop) >> shift,
		cacheNext:  cacheBase,
	}
	s.table.Store(&pageTable{})
	s.heap.init(heapBase, cacheBase)
	return s, nil
}

// PageSize returns the protection grain.
func (s *Space) PageSize() int { return s.pageSize }

// Profile returns the simulated architecture.
func (s *Space) Profile() arch.Profile { return s.profile }

// PointerSize returns the in-memory size of an ordinary pointer.
func (s *Space) PointerSize() int { return s.profile.PointerSize }

// SetHandler installs the fault handler.
func (s *Space) SetHandler(h Handler) {
	s.handler.Store(&h)
}

// loadHandler returns the installed handler (nil if none).
func (s *Space) loadHandler() Handler {
	if hp := s.handler.Load(); hp != nil {
		return *hp
	}
	return nil
}

// Faults returns the number of access violations delivered so far.
func (s *Space) Faults() uint64 {
	return s.faults.Load()
}

// PageOf returns the page number containing addr.
func (s *Space) PageOf(addr VAddr) uint32 {
	return uint32(addr) >> s.pageShift
}

// PageBase returns the first address of page pn.
func (s *Space) PageBase(pn uint32) VAddr {
	return VAddr(pn << s.pageShift)
}

// InCache reports whether addr lies in the cache region (i.e. the data is
// a cached copy of remote data rather than locally owned).
func (s *Space) InCache(addr VAddr) bool {
	return addr >= cacheBase && addr < spaceTop
}

// InHeap reports whether addr lies in the local heap region.
func (s *Space) InHeap(addr VAddr) bool {
	return addr >= heapBase && addr < cacheBase
}

// pageAt returns the page with number pn in table t, or nil if unmapped.
func (s *Space) pageAt(t *pageTable, pn uint32) *page {
	if pn >= s.cachePN0 {
		if pn >= s.topPN {
			return nil
		}
		if i := pn - s.cachePN0; i < uint32(len(t.cache)) {
			return t.cache[i]
		}
		return nil
	}
	if pn >= s.heapPN0 {
		if i := pn - s.heapPN0; i < uint32(len(t.heap)) {
			return t.heap[i]
		}
	}
	return nil
}

// lookup loads the current table and returns the page for pn (nil if
// unmapped).
func (s *Space) lookup(pn uint32) *page {
	return s.pageAt(s.table.Load(), pn)
}

// allows reports whether protection p admits an access of the given kind.
func allows(p Prot, kind FaultKind) bool {
	return p == ProtReadWrite || (kind == FaultRead && p == ProtRead)
}

// --- allocation ---

// Alloc reserves size bytes (aligned to align, a power of two) in the local
// heap. Heap pages are mapped read-write; locally owned data never faults.
func (s *Space) Alloc(size, align int) (VAddr, error) {
	if size <= 0 {
		return Null, fmt.Errorf("vmem: alloc size %d", size)
	}
	if align <= 0 {
		align = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, err := s.heap.alloc(size, align)
	if err != nil {
		return Null, err
	}
	s.mapRangeLocked(addr, size, ProtReadWrite, false)
	return addr, nil
}

// Free releases a heap allocation made by Alloc. The freed span's pages
// advance their write versions: any cached derivation of the old bytes
// (an encode-cache entry) must become unreachable before the allocator
// can hand the address out again.
func (s *Space) Free(addr VAddr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	size, sizeErr := s.heap.sizeOf(addr)
	if err := s.heap.free(addr); err != nil {
		return err
	}
	if sizeErr == nil && size > 0 {
		t := s.table.Load()
		first := uint32(addr) >> s.pageShift
		last := (uint32(addr) + uint32(size) - 1) >> s.pageShift
		for pn := first; pn <= last; pn++ {
			if p := s.pageAt(t, pn); p != nil {
				p.bumpVer()
			}
		}
	}
	return nil
}

// HeapVersion returns the write-version counter of heap page pn. The
// counter advances on every store, zero, or free that touches the page,
// so equal versions across two reads prove the page bytes did not change
// between them. Unmapped and cache-region pages report 0; a page cannot
// transition out of either state while holding data anyone derived
// values from, so 0==0 comparisons are sound too.
func (s *Space) HeapVersion(pn uint32) uint32 {
	p := s.lookup(pn)
	if p == nil || p.cache {
		return 0
	}
	return p.ver.Load()
}

// AllocSize reports the size recorded for a live heap allocation.
func (s *Space) AllocSize(addr VAddr) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heap.sizeOf(addr)
}

// HeapInUse returns the number of live heap bytes.
func (s *Space) HeapInUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heap.inUse
}

// AllocCachePages reserves n fresh, contiguous cache pages with ProtNone:
// a protected page area in the paper's terms. It returns the base address.
// The pages contain no data yet; the first access faults.
func (s *Space) AllocCachePages(n int) (VAddr, error) {
	if n <= 0 {
		return Null, fmt.Errorf("vmem: cache page count %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	need := VAddr(n * s.pageSize)
	if s.cacheNext+need < s.cacheNext || s.cacheNext+need > spaceTop {
		return Null, fmt.Errorf("%w: cache region exhausted", ErrOutOfMemory)
	}
	base := s.cacheNext
	s.cacheNext += need
	s.mapRangeLocked(base, int(need), ProtNone, true)
	return base, nil
}

// mapRangeLocked ensures pages covering [addr, addr+size) exist with the
// given protection. Existing pages keep their data and protection. Called
// with s.mu held; publishes a fresh page table (copy-on-write) so lock-free
// readers never observe a partially updated slice.
func (s *Space) mapRangeLocked(addr VAddr, size int, prot Prot, cache bool) {
	first := uint32(addr) >> s.pageShift
	last := (uint32(addr) + uint32(size) - 1) >> s.pageShift

	old := s.table.Load()
	missing := false
	for pn := first; pn <= last; pn++ {
		if s.pageAt(old, pn) == nil {
			missing = true
			break
		}
	}
	if !missing {
		return
	}

	// Copy-on-write: clone each region slice at most once, then fill the
	// missing slots. Readers index the published slices without a lock, so
	// the old slices are never mutated in place.
	nt := &pageTable{heap: old.heap, cache: old.cache}
	grow := func(region []*page, idx uint32) []*page {
		need := int(idx) + 1
		if need < len(region) {
			need = len(region)
		}
		out := make([]*page, need, need+need/2)
		copy(out, region)
		return out
	}
	heapCopied, cacheCopied := false, false
	for pn := first; pn <= last; pn++ {
		var slot **page
		if pn >= s.cachePN0 {
			idx := pn - s.cachePN0
			if !cacheCopied {
				nt.cache = grow(nt.cache, idx)
				cacheCopied = true
			} else if int(idx) >= len(nt.cache) {
				nt.cache = grow(nt.cache, idx)
			}
			slot = &nt.cache[idx]
		} else {
			idx := pn - s.heapPN0
			if !heapCopied {
				nt.heap = grow(nt.heap, idx)
				heapCopied = true
			} else if int(idx) >= len(nt.heap) {
				nt.heap = grow(nt.heap, idx)
			}
			slot = &nt.heap[idx]
		}
		if *slot == nil {
			p := &page{data: make([]byte, s.pageSize), cache: cache}
			p.prot.Store(int32(prot))
			*slot = p
		}
	}
	s.table.Store(nt)
}

// --- protection and dirty bookkeeping ---

// SetProt changes the protection of page pn. It is the runtime's analogue
// of mprotect(2).
func (s *Space) SetProt(pn uint32, prot Prot) error {
	p := s.lookup(pn)
	if p == nil {
		return fmt.Errorf("%w: page %d", ErrUnmapped, pn)
	}
	p.prot.Store(int32(prot))
	return nil
}

// ProtOf returns the protection of page pn.
func (s *Space) ProtOf(pn uint32) (Prot, error) {
	p := s.lookup(pn)
	if p == nil {
		return 0, fmt.Errorf("%w: page %d", ErrUnmapped, pn)
	}
	return Prot(p.prot.Load()), nil
}

// MarkDirty sets or clears the dirty bit of a cache page.
func (s *Space) MarkDirty(pn uint32, dirty bool) error {
	p := s.lookup(pn)
	if p == nil {
		return fmt.Errorf("%w: page %d", ErrUnmapped, pn)
	}
	p.dirty.Store(dirty)
	return nil
}

// IsDirty reports the dirty bit of page pn (false for unmapped pages).
func (s *Space) IsDirty(pn uint32) bool {
	p := s.lookup(pn)
	return p != nil && p.dirty.Load()
}

// DirtyPages returns the page numbers of all dirty cache pages in
// ascending order: the "modified data set" the coherency protocol ships on
// control transfer.
func (s *Space) DirtyPages() []uint32 {
	t := s.table.Load()
	var out []uint32
	for i, p := range t.cache {
		if p != nil && p.dirty.Load() {
			out = append(out, s.cachePN0+uint32(i))
		}
	}
	return out
}

// InvalidateCache discards every cache page: data is zeroed, protection
// returns to ProtNone, and dirty bits clear. This implements the
// end-of-session invalidation multicast's effect on one space. The cache
// address range stays reserved so stale ordinary pointers fault rather
// than alias new data.
func (s *Space) InvalidateCache() {
	if s.concurrent {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	t := s.table.Load()
	for _, p := range t.cache {
		if p == nil {
			continue
		}
		clear(p.data)
		p.prot.Store(int32(ProtNone))
		p.dirty.Store(false)
		p.accessed.Store(false)
	}
}

// DemoteCache re-protects every cache page without discarding its data:
// protection returns to ProtNone so the next touch faults, while the page
// bytes survive as the baseline for warm-cache revalidation. Dirty and
// accessed bits clear. Compare InvalidateCache, which also zeroes the data.
func (s *Space) DemoteCache() {
	if s.concurrent {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	t := s.table.Load()
	for _, p := range t.cache {
		if p == nil {
			continue
		}
		p.prot.Store(int32(ProtNone))
		p.dirty.Store(false)
		p.accessed.Store(false)
	}
}

// Accessed reports whether page pn has seen a checked access since the
// last demotion (false for unmapped pages). The adaptive-eagerness
// controller uses it to tell shipped-and-used pages from shipped-and-
// wasted ones.
func (s *Space) Accessed(pn uint32) bool {
	p := s.lookup(pn)
	return p != nil && p.accessed.Load()
}

// --- raw (kernel-mode) access: no protection checks, no faults ---

// ReadRaw copies len(buf) bytes from addr without protection checks. The
// runtime uses it to marshal data out of pages regardless of protection.
func (s *Space) ReadRaw(addr VAddr, buf []byte) error {
	return s.rawAccess(addr, buf, true)
}

// WriteRaw copies data to addr without protection checks or dirty
// bookkeeping. The runtime uses it to install fetched data.
func (s *Space) WriteRaw(addr VAddr, data []byte) error {
	return s.rawAccess(addr, data, false)
}

func (s *Space) rawAccess(addr VAddr, buf []byte, read bool) error {
	if addr == Null {
		return ErrNull
	}
	if len(buf) == 0 {
		return nil
	}
	t := s.table.Load()
	// Fast path: the whole access falls inside one mapped page.
	po := int(uint32(addr) & s.pageMask)
	if po+len(buf) <= s.pageSize {
		p := s.pageAt(t, uint32(addr)>>s.pageShift)
		if p == nil {
			return fmt.Errorf("%w: %#x", ErrUnmapped, uint32(addr))
		}
		if s.concurrent {
			s.mu.Lock()
		}
		if read {
			copy(buf, p.data[po:po+len(buf)])
		} else {
			p.bumpVer()
			copy(p.data[po:po+len(buf)], buf)
		}
		if s.concurrent {
			s.mu.Unlock()
		}
		return nil
	}
	if s.concurrent {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	off := 0
	for off < len(buf) {
		a := addr + VAddr(off)
		p := s.pageAt(t, uint32(a)>>s.pageShift)
		if p == nil {
			return fmt.Errorf("%w: %#x", ErrUnmapped, uint32(a))
		}
		po := int(uint32(a) & s.pageMask)
		n := s.pageSize - po
		if n > len(buf)-off {
			n = len(buf) - off
		}
		if read {
			copy(buf[off:off+n], p.data[po:po+n])
		} else {
			p.bumpVer()
			copy(p.data[po:po+n], buf[off:off+n])
		}
		off += n
	}
	return nil
}

// Zero clears size bytes starting at addr without protection checks and
// without allocating a scratch buffer. The runtime uses it to initialize
// fresh objects.
func (s *Space) Zero(addr VAddr, size int) error {
	if addr == Null {
		return ErrNull
	}
	if size <= 0 {
		return nil
	}
	if s.concurrent {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	t := s.table.Load()
	off := 0
	for off < size {
		a := addr + VAddr(off)
		p := s.pageAt(t, uint32(a)>>s.pageShift)
		if p == nil {
			return fmt.Errorf("%w: %#x", ErrUnmapped, uint32(a))
		}
		po := int(uint32(a) & s.pageMask)
		n := s.pageSize - po
		if n > size-off {
			n = size - off
		}
		p.bumpVer()
		clear(p.data[po : po+n])
		off += n
	}
	return nil
}

// --- checked (user-mode) access: protection checks with fault delivery ---

// Read copies len(buf) bytes from addr, delivering faults for pages below
// ProtRead. This is what application-level loads go through.
func (s *Space) Read(addr VAddr, buf []byte) error {
	return s.access(addr, buf, FaultRead)
}

// Write copies data to addr, delivering faults for pages below
// ProtReadWrite. This is what application-level stores go through.
func (s *Space) Write(addr VAddr, data []byte) error {
	return s.access(addr, data, FaultWrite)
}

// access performs a checked copy. The fast path — a single already
// accessible page — is lock-free (one atomic table load plus one atomic
// protection load); everything else goes through accessSlow.
func (s *Space) access(addr VAddr, buf []byte, kind FaultKind) error {
	if addr == Null {
		return ErrNull
	}
	if len(buf) == 0 {
		return nil
	}
	po := int(uint32(addr) & s.pageMask)
	if po+len(buf) <= s.pageSize {
		if p := s.lookup(uint32(addr) >> s.pageShift); p != nil && allows(Prot(p.prot.Load()), kind) {
			p.markAccessed()
			if s.concurrent {
				s.mu.Lock()
			}
			if kind == FaultRead {
				copy(buf, p.data[po:po+len(buf)])
			} else {
				p.bumpVer()
				copy(p.data[po:po+len(buf)], buf)
			}
			if s.concurrent {
				s.mu.Unlock()
			}
			return nil
		}
	}
	return s.accessSlow(addr, buf, kind)
}

// accessSlow handles faulting and page-straddling checked accesses. It is
// fault-atomic: every page the access touches is faulted in and verified
// accessible before the first byte is copied, so an unresolved fault on a
// later page aborts the access with memory unchanged. (In Concurrent mode
// another goroutine can still change protection between the verification
// scan and the copy — the same window the original locked implementation
// had between its per-page protection check and copy.)
func (s *Space) accessSlow(addr VAddr, buf []byte, kind FaultKind) error {
	first := uint32(addr) >> s.pageShift
	last := (uint32(addr) + uint32(len(buf)) - 1) >> s.pageShift
	// Bounded rounds defend against handlers that flap protection.
	const maxRounds = 3
	for round := 0; ; round++ {
		faulted := false
		for pn := first; pn <= last; pn++ {
			p := s.lookup(pn)
			a := addr
			if pn != first {
				a = s.PageBase(pn)
			}
			if p == nil {
				return fmt.Errorf("%w: %#x", ErrUnmapped, uint32(a))
			}
			if allows(Prot(p.prot.Load()), kind) {
				continue
			}
			if round >= maxRounds {
				return fmt.Errorf("%w: %s of %#x", ErrFaultUnresolved, kind, uint32(a))
			}
			h := s.loadHandler()
			s.faults.Add(1)
			if h == nil {
				return fmt.Errorf("%w: %s of %#x", ErrNoHandler, kind, uint32(a))
			}
			if err := h(Fault{Addr: a, Page: pn, Kind: kind}); err != nil {
				return fmt.Errorf("vmem: %s fault at %#x: %w", kind, uint32(a), err)
			}
			faulted = true
		}
		if !faulted {
			break
		}
	}
	if s.concurrent {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	t := s.table.Load()
	off := 0
	for off < len(buf) {
		a := addr + VAddr(off)
		p := s.pageAt(t, uint32(a)>>s.pageShift)
		if p == nil {
			return fmt.Errorf("%w: %#x", ErrUnmapped, uint32(a))
		}
		po := int(uint32(a) & s.pageMask)
		n := s.pageSize - po
		if n > len(buf)-off {
			n = len(buf) - off
		}
		p.markAccessed()
		if kind == FaultRead {
			copy(buf[off:off+n], p.data[po:po+n])
		} else {
			p.bumpVer()
			copy(p.data[po:po+n], buf[off:off+n])
		}
		off += n
	}
	return nil
}

// --- typed access (profile byte order) ---

// ReadUint reads an unsigned integer of the given byte width (1, 2, 4, 8)
// through the checked path. The accessible single-page case is
// zero-allocation and lock-free.
func (s *Space) ReadUint(addr VAddr, width int) (uint64, error) {
	if addr != Null {
		po := int(uint32(addr) & s.pageMask)
		if po+width <= s.pageSize {
			if p := s.lookup(uint32(addr) >> s.pageShift); p != nil && allows(Prot(p.prot.Load()), FaultRead) {
				p.markAccessed()
				if s.concurrent {
					s.mu.Lock()
				}
				v := decodeUint(p.data[po:po+width], s.profile.Order)
				if s.concurrent {
					s.mu.Unlock()
				}
				return v, nil
			}
		}
	}
	var buf [8]byte
	if err := s.Read(addr, buf[:width]); err != nil {
		return 0, err
	}
	return decodeUint(buf[:width], s.profile.Order), nil
}

// WriteUint writes an unsigned integer of the given byte width through the
// checked path. The accessible single-page case is zero-allocation and
// lock-free.
func (s *Space) WriteUint(addr VAddr, width int, v uint64) error {
	if addr != Null {
		po := int(uint32(addr) & s.pageMask)
		if po+width <= s.pageSize {
			if p := s.lookup(uint32(addr) >> s.pageShift); p != nil && allows(Prot(p.prot.Load()), FaultWrite) {
				p.markAccessed()
				if s.concurrent {
					s.mu.Lock()
				}
				p.bumpVer()
				encodeUint(p.data[po:po+width], s.profile.Order, v)
				if s.concurrent {
					s.mu.Unlock()
				}
				return nil
			}
		}
	}
	var buf [8]byte
	encodeUint(buf[:width], s.profile.Order, v)
	return s.Write(addr, buf[:width])
}

// ReadPtr reads an ordinary pointer (profile pointer size) through the
// checked path.
func (s *Space) ReadPtr(addr VAddr) (VAddr, error) {
	v, err := s.ReadUint(addr, s.profile.PointerSize)
	return VAddr(v), err
}

// WritePtr writes an ordinary pointer through the checked path.
func (s *Space) WritePtr(addr VAddr, v VAddr) error {
	return s.WriteUint(addr, s.profile.PointerSize, uint64(v))
}

// ReadUintRaw reads an unsigned integer without protection checks.
func (s *Space) ReadUintRaw(addr VAddr, width int) (uint64, error) {
	if addr != Null {
		po := int(uint32(addr) & s.pageMask)
		if po+width <= s.pageSize {
			if p := s.lookup(uint32(addr) >> s.pageShift); p != nil {
				if s.concurrent {
					s.mu.Lock()
				}
				v := decodeUint(p.data[po:po+width], s.profile.Order)
				if s.concurrent {
					s.mu.Unlock()
				}
				return v, nil
			}
		}
	}
	var buf [8]byte
	if err := s.ReadRaw(addr, buf[:width]); err != nil {
		return 0, err
	}
	return decodeUint(buf[:width], s.profile.Order), nil
}

// WriteUintRaw writes an unsigned integer without protection checks.
func (s *Space) WriteUintRaw(addr VAddr, width int, v uint64) error {
	if addr != Null {
		po := int(uint32(addr) & s.pageMask)
		if po+width <= s.pageSize {
			if p := s.lookup(uint32(addr) >> s.pageShift); p != nil {
				if s.concurrent {
					s.mu.Lock()
				}
				p.bumpVer()
				encodeUint(p.data[po:po+width], s.profile.Order, v)
				if s.concurrent {
					s.mu.Unlock()
				}
				return nil
			}
		}
	}
	var buf [8]byte
	encodeUint(buf[:width], s.profile.Order, v)
	return s.WriteRaw(addr, buf[:width])
}

// ReadPtrRaw reads an ordinary pointer without protection checks.
func (s *Space) ReadPtrRaw(addr VAddr) (VAddr, error) {
	v, err := s.ReadUintRaw(addr, s.profile.PointerSize)
	return VAddr(v), err
}

// WritePtrRaw writes an ordinary pointer without protection checks.
func (s *Space) WritePtrRaw(addr VAddr, v VAddr) error {
	return s.WriteUintRaw(addr, s.profile.PointerSize, uint64(v))
}

func decodeUint(b []byte, order arch.ByteOrder) uint64 {
	var v uint64
	if order == arch.BigEndian {
		for _, x := range b {
			v = v<<8 | uint64(x)
		}
	} else {
		for i := len(b) - 1; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
	}
	return v
}

func encodeUint(b []byte, order arch.ByteOrder, v uint64) {
	if order == arch.BigEndian {
		for i := len(b) - 1; i >= 0; i-- {
			b[i] = byte(v)
			v >>= 8
		}
	} else {
		for i := range b {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

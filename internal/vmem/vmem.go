// Package vmem simulates the virtual-memory hardware the paper's runtime
// relies on.
//
// The original system used the SPARC MMU through SunOS primitives: it
// allocated *protected page areas* for remotely referenced data, caught the
// access-violation exception raised by the first touch, fetched the data,
// and then released the protection. Dirty detection for the coherency
// protocol likewise used read-only page protection.
//
// Go programs cannot take over SIGSEGV (the runtime owns signal handling)
// and cannot fabricate pointers past the garbage collector, so this package
// provides the same machinery in software: a 32-bit virtual address space
// made of fixed-size pages with per-page protection, where every load and
// store checks protection and delivers a Fault to a registered handler —
// exactly the control flow of the paper's exception path, with the MMU's
// hardware check replaced by a bounds-and-protection check per access.
//
// The address space is split into two regions: a heap for locally owned
// data and a cache region where protected page areas for remote data are
// carved out. Addresses are plain uint32 values (VAddr); address 0 is the
// null pointer.
package vmem

import (
	"errors"
	"fmt"
	"sync"

	"smartrpc/internal/arch"
)

// VAddr is an ordinary pointer: an address valid only within one simulated
// address space. Long pointers (package swizzle) extend these across the
// distributed system.
type VAddr uint32

// Null is the null ordinary pointer.
const Null VAddr = 0

// Prot is a page protection level.
type Prot int

// Protection levels. ProtNone pages fault on any access (the paper's
// protected page area before its data arrives); ProtRead pages fault on
// write (dirty detection); ProtReadWrite pages never fault.
const (
	ProtNone Prot = iota + 1
	ProtRead
	ProtReadWrite
)

// String returns a mprotect-style rendering of the protection.
func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtReadWrite:
		return "rw-"
	default:
		return fmt.Sprintf("Prot(%d)", int(p))
	}
}

// FaultKind distinguishes read from write access violations.
type FaultKind int

// Fault kinds.
const (
	FaultRead FaultKind = iota + 1
	FaultWrite
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultRead:
		return "read"
	case FaultWrite:
		return "write"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault describes one access violation, as delivered to the handler.
type Fault struct {
	// Addr is the faulting address.
	Addr VAddr
	// Page is the faulting page number (Addr / PageSize).
	Page uint32
	// Kind says whether the access was a read or a write.
	Kind FaultKind
}

// Handler resolves a fault, typically by fetching remote data and raising
// the page protection. If it returns an error the faulting access fails
// with that error. A handler that leaves the protection unchanged causes
// the access to fail with ErrFaultUnresolved.
type Handler func(Fault) error

// Region boundaries. The heap starts above page 0 so that small integers
// never alias valid pointers; the cache region occupies the upper half.
const (
	heapBase  VAddr = 0x0001_0000
	cacheBase VAddr = 0x4000_0000
	spaceTop  VAddr = 0xF000_0000
)

// Sentinel errors.
var (
	// ErrNull is returned for any access through the null pointer.
	ErrNull = errors.New("vmem: null pointer access")
	// ErrUnmapped is returned for access to a page that was never allocated.
	ErrUnmapped = errors.New("vmem: unmapped address")
	// ErrNoHandler is returned when a fault occurs and no handler is set.
	ErrNoHandler = errors.New("vmem: access violation with no fault handler")
	// ErrFaultUnresolved is returned when the handler ran but the page is
	// still inaccessible.
	ErrFaultUnresolved = errors.New("vmem: fault handler did not resolve protection")
	// ErrOutOfMemory is returned when a region is exhausted.
	ErrOutOfMemory = errors.New("vmem: out of memory")
	// ErrBadFree is returned for Free of an address that was not returned
	// by Alloc (or was already freed).
	ErrBadFree = errors.New("vmem: bad free")
)

// page is one unit of protection and transfer.
type page struct {
	data  []byte
	prot  Prot
	cache bool // page lives in the cache region
	dirty bool // cache page modified since install (coherency protocol)
}

// Config parameterizes a Space.
type Config struct {
	// PageSize is the protection grain in bytes; must be a power of two
	// ≥ 64. Defaults to 4096.
	PageSize int
	// Profile is the simulated architecture. Defaults to arch.SPARC32.
	Profile arch.Profile
}

func (c *Config) fill() error {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.PageSize < 64 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("vmem: page size %d must be a power of two >= 64", c.PageSize)
	}
	if c.Profile.Name == "" {
		c.Profile = arch.SPARC32()
	}
	return c.Profile.Validate()
}

// Space is one simulated address space: a page table, a heap for local
// data, a cache region for remote data, and a fault handler.
//
// All methods are safe for concurrent use; the fault handler is invoked
// without the space lock held, so it may call back into the Space.
type Space struct {
	pageSize  int
	pageShift uint
	profile   arch.Profile

	mu        sync.Mutex
	pages     map[uint32]*page
	handler   Handler
	heap      allocator
	cacheNext VAddr // bump pointer for cache page allocation
	faults    uint64
}

// NewSpace creates an empty address space.
func NewSpace(cfg Config) (*Space, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	shift := uint(0)
	for 1<<shift != cfg.PageSize {
		shift++
	}
	s := &Space{
		pageSize:  cfg.PageSize,
		pageShift: shift,
		profile:   cfg.Profile,
		pages:     make(map[uint32]*page),
		cacheNext: cacheBase,
	}
	s.heap.init(heapBase, cacheBase)
	return s, nil
}

// PageSize returns the protection grain.
func (s *Space) PageSize() int { return s.pageSize }

// Profile returns the simulated architecture.
func (s *Space) Profile() arch.Profile { return s.profile }

// PointerSize returns the in-memory size of an ordinary pointer.
func (s *Space) PointerSize() int { return s.profile.PointerSize }

// SetHandler installs the fault handler.
func (s *Space) SetHandler(h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handler = h
}

// Faults returns the number of access violations delivered so far.
func (s *Space) Faults() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// PageOf returns the page number containing addr.
func (s *Space) PageOf(addr VAddr) uint32 {
	return uint32(addr) >> s.pageShift
}

// PageBase returns the first address of page pn.
func (s *Space) PageBase(pn uint32) VAddr {
	return VAddr(pn << s.pageShift)
}

// InCache reports whether addr lies in the cache region (i.e. the data is
// a cached copy of remote data rather than locally owned).
func (s *Space) InCache(addr VAddr) bool {
	return addr >= cacheBase && addr < spaceTop
}

// InHeap reports whether addr lies in the local heap region.
func (s *Space) InHeap(addr VAddr) bool {
	return addr >= heapBase && addr < cacheBase
}

// --- allocation ---

// Alloc reserves size bytes (aligned to align, a power of two) in the local
// heap. Heap pages are mapped read-write; locally owned data never faults.
func (s *Space) Alloc(size, align int) (VAddr, error) {
	if size <= 0 {
		return Null, fmt.Errorf("vmem: alloc size %d", size)
	}
	if align <= 0 {
		align = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, err := s.heap.alloc(size, align)
	if err != nil {
		return Null, err
	}
	s.mapRangeLocked(addr, size, ProtReadWrite, false)
	return addr, nil
}

// Free releases a heap allocation made by Alloc.
func (s *Space) Free(addr VAddr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heap.free(addr)
}

// AllocSize reports the size recorded for a live heap allocation.
func (s *Space) AllocSize(addr VAddr) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heap.sizeOf(addr)
}

// HeapInUse returns the number of live heap bytes.
func (s *Space) HeapInUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heap.inUse
}

// AllocCachePages reserves n fresh, contiguous cache pages with ProtNone:
// a protected page area in the paper's terms. It returns the base address.
// The pages contain no data yet; the first access faults.
func (s *Space) AllocCachePages(n int) (VAddr, error) {
	if n <= 0 {
		return Null, fmt.Errorf("vmem: cache page count %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	need := VAddr(n * s.pageSize)
	if s.cacheNext+need < s.cacheNext || s.cacheNext+need > spaceTop {
		return Null, fmt.Errorf("%w: cache region exhausted", ErrOutOfMemory)
	}
	base := s.cacheNext
	s.cacheNext += need
	s.mapRangeLocked(base, int(need), ProtNone, true)
	return base, nil
}

// mapRangeLocked ensures pages covering [addr, addr+size) exist with the
// given protection. Existing pages keep their data and protection.
func (s *Space) mapRangeLocked(addr VAddr, size int, prot Prot, cache bool) {
	first := uint32(addr) >> s.pageShift
	last := (uint32(addr) + uint32(size) - 1) >> s.pageShift
	for pn := first; pn <= last; pn++ {
		if _, ok := s.pages[pn]; !ok {
			s.pages[pn] = &page{
				data:  make([]byte, s.pageSize),
				prot:  prot,
				cache: cache,
			}
		}
	}
}

// --- protection and dirty bookkeeping ---

// SetProt changes the protection of page pn. It is the runtime's analogue
// of mprotect(2).
func (s *Space) SetProt(pn uint32, prot Prot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[pn]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrUnmapped, pn)
	}
	p.prot = prot
	return nil
}

// ProtOf returns the protection of page pn.
func (s *Space) ProtOf(pn uint32) (Prot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[pn]
	if !ok {
		return 0, fmt.Errorf("%w: page %d", ErrUnmapped, pn)
	}
	return p.prot, nil
}

// MarkDirty sets or clears the dirty bit of a cache page.
func (s *Space) MarkDirty(pn uint32, dirty bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[pn]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrUnmapped, pn)
	}
	p.dirty = dirty
	return nil
}

// IsDirty reports the dirty bit of page pn (false for unmapped pages).
func (s *Space) IsDirty(pn uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[pn]
	return ok && p.dirty
}

// DirtyPages returns the page numbers of all dirty cache pages: the
// "modified data set" the coherency protocol ships on control transfer.
func (s *Space) DirtyPages() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []uint32
	for pn, p := range s.pages {
		if p.cache && p.dirty {
			out = append(out, pn)
		}
	}
	return out
}

// InvalidateCache discards every cache page: data is zeroed, protection
// returns to ProtNone, and dirty bits clear. This implements the
// end-of-session invalidation multicast's effect on one space. The cache
// address range stays reserved so stale ordinary pointers fault rather
// than alias new data.
func (s *Space) InvalidateCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.pages {
		if !p.cache {
			continue
		}
		for i := range p.data {
			p.data[i] = 0
		}
		p.prot = ProtNone
		p.dirty = false
	}
}

// --- raw (kernel-mode) access: no protection checks, no faults ---

// ReadRaw copies len(buf) bytes from addr without protection checks. The
// runtime uses it to marshal data out of pages regardless of protection.
func (s *Space) ReadRaw(addr VAddr, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.copyLocked(addr, buf, true)
}

// WriteRaw copies data to addr without protection checks or dirty
// bookkeeping. The runtime uses it to install fetched data.
func (s *Space) WriteRaw(addr VAddr, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.copyLocked(addr, data, false)
}

func (s *Space) copyLocked(addr VAddr, buf []byte, read bool) error {
	if addr == Null {
		return ErrNull
	}
	off := 0
	for off < len(buf) {
		a := addr + VAddr(off)
		pn := uint32(a) >> s.pageShift
		p, ok := s.pages[pn]
		if !ok {
			return fmt.Errorf("%w: %#x", ErrUnmapped, uint32(a))
		}
		po := int(uint32(a) & uint32(s.pageSize-1))
		n := s.pageSize - po
		if n > len(buf)-off {
			n = len(buf) - off
		}
		if read {
			copy(buf[off:off+n], p.data[po:po+n])
		} else {
			copy(p.data[po:po+n], buf[off:off+n])
		}
		off += n
	}
	return nil
}

// --- checked (user-mode) access: protection checks with fault delivery ---

// Read copies len(buf) bytes from addr, delivering faults for pages below
// ProtRead. This is what application-level loads go through.
func (s *Space) Read(addr VAddr, buf []byte) error {
	return s.access(addr, buf, FaultRead)
}

// Write copies data to addr, delivering faults for pages below
// ProtReadWrite. This is what application-level stores go through.
func (s *Space) Write(addr VAddr, data []byte) error {
	return s.access(addr, data, FaultWrite)
}

// access performs a checked copy, faulting page by page as needed.
func (s *Space) access(addr VAddr, buf []byte, kind FaultKind) error {
	if addr == Null {
		return ErrNull
	}
	if len(buf) == 0 {
		return nil
	}
	off := 0
	for off < len(buf) {
		a := addr + VAddr(off)
		pn := uint32(a) >> s.pageShift
		if err := s.ensureAccess(a, pn, kind); err != nil {
			return err
		}
		s.mu.Lock()
		p, ok := s.pages[pn]
		if !ok {
			s.mu.Unlock()
			return fmt.Errorf("%w: %#x", ErrUnmapped, uint32(a))
		}
		po := int(uint32(a) & uint32(s.pageSize-1))
		n := s.pageSize - po
		if n > len(buf)-off {
			n = len(buf) - off
		}
		if kind == FaultRead {
			copy(buf[off:off+n], p.data[po:po+n])
		} else {
			copy(p.data[po:po+n], buf[off:off+n])
		}
		s.mu.Unlock()
		off += n
	}
	return nil
}

// ensureAccess checks protection for one access and runs the fault handler
// until the page is accessible. Bounded retries defend against handlers
// that flap protection.
func (s *Space) ensureAccess(addr VAddr, pn uint32, kind FaultKind) error {
	const maxRetries = 3
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		p, ok := s.pages[pn]
		if !ok {
			s.mu.Unlock()
			return fmt.Errorf("%w: %#x", ErrUnmapped, uint32(addr))
		}
		ok = p.prot == ProtReadWrite || (kind == FaultRead && p.prot == ProtRead)
		if ok {
			s.mu.Unlock()
			return nil
		}
		if attempt >= maxRetries {
			s.mu.Unlock()
			return fmt.Errorf("%w: %s of %#x", ErrFaultUnresolved, kind, uint32(addr))
		}
		h := s.handler
		s.faults++
		s.mu.Unlock()
		if h == nil {
			return fmt.Errorf("%w: %s of %#x", ErrNoHandler, kind, uint32(addr))
		}
		if err := h(Fault{Addr: addr, Page: pn, Kind: kind}); err != nil {
			return fmt.Errorf("vmem: %s fault at %#x: %w", kind, uint32(addr), err)
		}
	}
}

// --- typed access (profile byte order) ---

// ReadUint reads an unsigned integer of the given byte width (1, 2, 4, 8)
// through the checked path.
func (s *Space) ReadUint(addr VAddr, width int) (uint64, error) {
	var buf [8]byte
	if err := s.Read(addr, buf[:width]); err != nil {
		return 0, err
	}
	return decodeUint(buf[:width], s.profile.Order), nil
}

// WriteUint writes an unsigned integer of the given byte width through the
// checked path.
func (s *Space) WriteUint(addr VAddr, width int, v uint64) error {
	var buf [8]byte
	encodeUint(buf[:width], s.profile.Order, v)
	return s.Write(addr, buf[:width])
}

// ReadPtr reads an ordinary pointer (profile pointer size) through the
// checked path.
func (s *Space) ReadPtr(addr VAddr) (VAddr, error) {
	v, err := s.ReadUint(addr, s.profile.PointerSize)
	return VAddr(v), err
}

// WritePtr writes an ordinary pointer through the checked path.
func (s *Space) WritePtr(addr VAddr, v VAddr) error {
	return s.WriteUint(addr, s.profile.PointerSize, uint64(v))
}

// ReadUintRaw reads an unsigned integer without protection checks.
func (s *Space) ReadUintRaw(addr VAddr, width int) (uint64, error) {
	var buf [8]byte
	if err := s.ReadRaw(addr, buf[:width]); err != nil {
		return 0, err
	}
	return decodeUint(buf[:width], s.profile.Order), nil
}

// WriteUintRaw writes an unsigned integer without protection checks.
func (s *Space) WriteUintRaw(addr VAddr, width int, v uint64) error {
	var buf [8]byte
	encodeUint(buf[:width], s.profile.Order, v)
	return s.WriteRaw(addr, buf[:width])
}

// ReadPtrRaw reads an ordinary pointer without protection checks.
func (s *Space) ReadPtrRaw(addr VAddr) (VAddr, error) {
	v, err := s.ReadUintRaw(addr, s.profile.PointerSize)
	return VAddr(v), err
}

// WritePtrRaw writes an ordinary pointer without protection checks.
func (s *Space) WritePtrRaw(addr VAddr, v VAddr) error {
	return s.WriteUintRaw(addr, s.profile.PointerSize, uint64(v))
}

func decodeUint(b []byte, order arch.ByteOrder) uint64 {
	var v uint64
	if order == arch.BigEndian {
		for _, x := range b {
			v = v<<8 | uint64(x)
		}
	} else {
		for i := len(b) - 1; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
	}
	return v
}

func encodeUint(b []byte, order arch.ByteOrder, v uint64) {
	if order == arch.BigEndian {
		for i := len(b) - 1; i >= 0; i-- {
			b[i] = byte(v)
			v >>= 8
		}
	} else {
		for i := range b {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

package vmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"smartrpc/internal/arch"
)

func newSpace(t *testing.T, cfg Config) *Space {
	t.Helper()
	s, err := NewSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigDefaults(t *testing.T) {
	s := newSpace(t, Config{})
	if s.PageSize() != 4096 {
		t.Errorf("default page size = %d, want 4096", s.PageSize())
	}
	if s.Profile().Name != "sparc32" {
		t.Errorf("default profile = %q, want sparc32", s.Profile().Name)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSpace(Config{PageSize: 100}); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
	if _, err := NewSpace(Config{PageSize: 32}); err == nil {
		t.Error("tiny page size accepted")
	}
	if _, err := NewSpace(Config{Profile: arch.Profile{Name: "bad", PointerSize: 3}}); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestAllocReadWrite(t *testing.T) {
	s := newSpace(t, Config{})
	addr, err := s.Alloc(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !s.InHeap(addr) {
		t.Errorf("Alloc returned %#x outside heap region", uint32(addr))
	}
	want := []byte{1, 2, 3, 4, 5}
	if err := s.Write(addr, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := s.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("read back %v, want %v", got, want)
		}
	}
}

func TestNullAccess(t *testing.T) {
	s := newSpace(t, Config{})
	if err := s.Read(Null, make([]byte, 4)); !errors.Is(err, ErrNull) {
		t.Errorf("Read(Null) err = %v, want ErrNull", err)
	}
	if err := s.WriteRaw(Null, []byte{1}); !errors.Is(err, ErrNull) {
		t.Errorf("WriteRaw(Null) err = %v, want ErrNull", err)
	}
}

func TestUnmappedAccess(t *testing.T) {
	s := newSpace(t, Config{})
	if err := s.Read(0x2000_0000, make([]byte, 4)); !errors.Is(err, ErrUnmapped) {
		t.Errorf("unmapped read err = %v, want ErrUnmapped", err)
	}
}

func TestCachePageFaultsOnFirstAccess(t *testing.T) {
	s := newSpace(t, Config{})
	base, err := s.AllocCachePages(1)
	if err != nil {
		t.Fatal(err)
	}
	if !s.InCache(base) {
		t.Errorf("cache page at %#x not in cache region", uint32(base))
	}
	var faulted []Fault
	s.SetHandler(func(f Fault) error {
		faulted = append(faulted, f)
		// Simulate the runtime: install data, release protection.
		if err := s.WriteRaw(s.PageBase(f.Page), []byte{0xAB}); err != nil {
			return err
		}
		return s.SetProt(f.Page, ProtRead)
	})
	buf := make([]byte, 1)
	if err := s.Read(base, buf); err != nil {
		t.Fatal(err)
	}
	if len(faulted) != 1 || faulted[0].Kind != FaultRead || faulted[0].Page != s.PageOf(base) {
		t.Fatalf("faults = %+v", faulted)
	}
	if buf[0] != 0xAB {
		t.Errorf("read %#x after install, want 0xAB", buf[0])
	}
	// Second read: no further fault (data is cached).
	if err := s.Read(base, buf); err != nil {
		t.Fatal(err)
	}
	if len(faulted) != 1 {
		t.Errorf("second read faulted again: %d faults", len(faulted))
	}
}

func TestWriteFaultOnReadOnlyPage(t *testing.T) {
	s := newSpace(t, Config{})
	base, err := s.AllocCachePages(1)
	if err != nil {
		t.Fatal(err)
	}
	pn := s.PageOf(base)
	if err := s.SetProt(pn, ProtRead); err != nil {
		t.Fatal(err)
	}
	var kinds []FaultKind
	s.SetHandler(func(f Fault) error {
		kinds = append(kinds, f.Kind)
		// Dirty-detection path: mark dirty, upgrade protection.
		if err := s.MarkDirty(f.Page, true); err != nil {
			return err
		}
		return s.SetProt(f.Page, ProtReadWrite)
	})
	if err := s.Write(base, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 1 || kinds[0] != FaultWrite {
		t.Fatalf("fault kinds = %v, want [write]", kinds)
	}
	if !s.IsDirty(pn) {
		t.Error("page not marked dirty after write fault")
	}
	// Reads never fault on ProtRead pages.
	if err := s.Read(base, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 1 {
		t.Errorf("read faulted on rw page")
	}
}

func TestFaultWithoutHandler(t *testing.T) {
	s := newSpace(t, Config{})
	base, _ := s.AllocCachePages(1)
	if err := s.Read(base, make([]byte, 1)); !errors.Is(err, ErrNoHandler) {
		t.Errorf("err = %v, want ErrNoHandler", err)
	}
}

func TestFaultHandlerError(t *testing.T) {
	s := newSpace(t, Config{})
	base, _ := s.AllocCachePages(1)
	boom := errors.New("boom")
	s.SetHandler(func(Fault) error { return boom })
	if err := s.Read(base, make([]byte, 1)); !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestFaultUnresolved(t *testing.T) {
	s := newSpace(t, Config{})
	base, _ := s.AllocCachePages(1)
	calls := 0
	s.SetHandler(func(Fault) error { calls++; return nil })
	if err := s.Read(base, make([]byte, 1)); !errors.Is(err, ErrFaultUnresolved) {
		t.Errorf("err = %v, want ErrFaultUnresolved", err)
	}
	if calls == 0 || calls > 4 {
		t.Errorf("handler ran %d times, want bounded retries", calls)
	}
}

func TestFaultCounter(t *testing.T) {
	s := newSpace(t, Config{})
	base, _ := s.AllocCachePages(2)
	s.SetHandler(func(f Fault) error { return s.SetProt(f.Page, ProtReadWrite) })
	if err := s.Write(base, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(base+VAddr(s.PageSize()), make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if got := s.Faults(); got != 2 {
		t.Errorf("Faults() = %d, want 2", got)
	}
}

func TestAccessSpanningPages(t *testing.T) {
	s := newSpace(t, Config{PageSize: 64})
	base, err := s.AllocCachePages(2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetHandler(func(f Fault) error { return s.SetProt(f.Page, ProtReadWrite) })
	data := make([]byte, 60)
	for i := range data {
		data[i] = byte(i)
	}
	start := base + 30 // crosses the page boundary at 64
	if err := s.Write(start, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 60)
	if err := s.Read(start, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
	if s.Faults() != 2 {
		t.Errorf("spanning write delivered %d faults, want 2 (one per page)", s.Faults())
	}
}

func TestSpanningAccessFaultAtomic(t *testing.T) {
	// A write that straddles a page boundary where the second page's fault
	// cannot be resolved must abort without modifying either page: all
	// pages in the span are faulted in and verified before any byte moves.
	s := newSpace(t, Config{PageSize: 64})
	base, err := s.AllocCachePages(2)
	if err != nil {
		t.Fatal(err)
	}
	secondPN := s.PageOf(base) + 1
	s.SetHandler(func(f Fault) error {
		if f.Page == secondPN {
			return nil // leave protection unchanged: unresolvable
		}
		return s.SetProt(f.Page, ProtReadWrite)
	})
	data := make([]byte, 60)
	for i := range data {
		data[i] = 0xEE
	}
	start := base + 30 // crosses the boundary at offset 64
	if err := s.Write(start, data); !errors.Is(err, ErrFaultUnresolved) {
		t.Fatalf("spanning write err = %v, want ErrFaultUnresolved", err)
	}
	// Nothing may have been written, not even the first page's portion.
	got := make([]byte, 60)
	if err := s.ReadRaw(start, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x after aborted spanning write, want 0", i, b)
		}
	}
	// Reads spanning the same boundary abort without partial results too.
	probe := []byte{1, 2, 3}
	buf := make([]byte, 60)
	copy(buf, probe)
	if err := s.Read(start, buf); !errors.Is(err, ErrFaultUnresolved) {
		t.Fatalf("spanning read err = %v, want ErrFaultUnresolved", err)
	}
	for i, b := range probe {
		if buf[i] != b {
			t.Fatalf("aborted spanning read clobbered buf[%d] = %#x", i, buf[i])
		}
	}
}

func TestZero(t *testing.T) {
	s := newSpace(t, Config{PageSize: 64})
	addr, err := s.Alloc(150, 8) // spans three 64-byte pages
	if err != nil {
		t.Fatal(err)
	}
	fill := make([]byte, 150)
	for i := range fill {
		fill[i] = 0xFF
	}
	if err := s.WriteRaw(addr, fill); err != nil {
		t.Fatal(err)
	}
	if err := s.Zero(addr+5, 140); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 150)
	if err := s.ReadRaw(addr, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(0)
		if i < 5 || i >= 145 {
			want = 0xFF
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
	if err := s.Zero(Null, 8); !errors.Is(err, ErrNull) {
		t.Errorf("Zero(Null) err = %v, want ErrNull", err)
	}
	if err := s.Zero(0x2000_0000, 8); !errors.Is(err, ErrUnmapped) {
		t.Errorf("Zero(unmapped) err = %v, want ErrUnmapped", err)
	}
}

func TestTypedAccessByteOrder(t *testing.T) {
	big := newSpace(t, Config{Profile: arch.SPARC32()})
	little := newSpace(t, Config{Profile: arch.Alpha64()})
	for _, s := range []*Space{big, little} {
		addr, err := s.Alloc(16, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WriteUint(addr, 4, 0x01020304); err != nil {
			t.Fatal(err)
		}
		v, err := s.ReadUint(addr, 4)
		if err != nil || v != 0x01020304 {
			t.Fatalf("%s: ReadUint = %#x, %v", s.Profile().Name, v, err)
		}
	}
	// Verify the in-memory representation actually differs.
	a1, _ := big.Alloc(8, 8)
	a2, _ := little.Alloc(8, 8)
	_ = big.WriteUint(a1, 4, 0x01020304)
	_ = little.WriteUint(a2, 4, 0x01020304)
	b1 := make([]byte, 4)
	b2 := make([]byte, 4)
	_ = big.ReadRaw(a1, b1)
	_ = little.ReadRaw(a2, b2)
	if b1[0] != 0x01 || b2[0] != 0x04 {
		t.Errorf("byte order not honored: big %v little %v", b1, b2)
	}
}

func TestPointerWidthPerProfile(t *testing.T) {
	s64 := newSpace(t, Config{Profile: arch.Alpha64()})
	addr, _ := s64.Alloc(16, 8)
	if err := s64.WritePtr(addr, 0x12345678); err != nil {
		t.Fatal(err)
	}
	v, err := s64.ReadPtr(addr)
	if err != nil || v != 0x12345678 {
		t.Fatalf("ReadPtr = %#x, %v", uint32(v), err)
	}
	if s64.PointerSize() != 8 {
		t.Errorf("alpha64 pointer size = %d", s64.PointerSize())
	}
}

func TestDirtyPagesAndInvalidate(t *testing.T) {
	s := newSpace(t, Config{})
	base, _ := s.AllocCachePages(3)
	for i := 0; i < 3; i++ {
		pn := s.PageOf(base) + uint32(i)
		if err := s.SetProt(pn, ProtRead); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.MarkDirty(s.PageOf(base)+1, true); err != nil {
		t.Fatal(err)
	}
	dirty := s.DirtyPages()
	if len(dirty) != 1 || dirty[0] != s.PageOf(base)+1 {
		t.Fatalf("DirtyPages = %v", dirty)
	}
	// Heap pages never count as dirty cache pages.
	ha, _ := s.Alloc(8, 8)
	_ = s.Write(ha, []byte{1})
	if len(s.DirtyPages()) != 1 {
		t.Error("heap write polluted dirty cache set")
	}
	_ = s.WriteRaw(base, []byte{0xFF})
	s.InvalidateCache()
	if len(s.DirtyPages()) != 0 {
		t.Error("dirty pages survive invalidation")
	}
	p, err := s.ProtOf(s.PageOf(base))
	if err != nil || p != ProtNone {
		t.Errorf("cache page prot after invalidate = %v, %v", p, err)
	}
	b := make([]byte, 1)
	if err := s.ReadRaw(base, b); err != nil || b[0] != 0 {
		t.Errorf("cache data survives invalidation: %v %v", b, err)
	}
}

func TestAllocCachePagesContiguous(t *testing.T) {
	s := newSpace(t, Config{PageSize: 256})
	a, err := s.AllocCachePages(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.AllocCachePages(1)
	if err != nil {
		t.Fatal(err)
	}
	if b != a+VAddr(4*256) {
		t.Errorf("second area at %#x, want %#x", uint32(b), uint32(a+1024))
	}
}

func TestHeapFreeAndReuse(t *testing.T) {
	s := newSpace(t, Config{})
	a, err := s.Alloc(128, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.HeapInUse() != 128 {
		t.Errorf("HeapInUse = %d", s.HeapInUse())
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if s.HeapInUse() != 0 {
		t.Errorf("HeapInUse after free = %d", s.HeapInUse())
	}
	b, err := s.Alloc(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Errorf("freed block not reused: got %#x want %#x", uint32(b), uint32(a))
	}
}

func TestDoubleFree(t *testing.T) {
	s := newSpace(t, Config{})
	a, _ := s.Alloc(8, 8)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(a); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free err = %v, want ErrBadFree", err)
	}
	if err := s.Free(0x123); !errors.Is(err, ErrBadFree) {
		t.Errorf("wild free err = %v, want ErrBadFree", err)
	}
}

func TestAllocSize(t *testing.T) {
	s := newSpace(t, Config{})
	a, _ := s.Alloc(10, 8)
	n, err := s.AllocSize(a)
	if err != nil || n != 16 { // rounded to 8
		t.Errorf("AllocSize = %d, %v; want 16", n, err)
	}
}

func TestAllocAlignment(t *testing.T) {
	s := newSpace(t, Config{})
	for _, align := range []int{1, 2, 4, 8, 16, 64} {
		a, err := s.Alloc(3, align)
		if err != nil {
			t.Fatal(err)
		}
		if uint32(a)%uint32(align) != 0 {
			t.Errorf("Alloc align %d returned %#x", align, uint32(a))
		}
	}
}

func TestAllocRejectsBadSize(t *testing.T) {
	s := newSpace(t, Config{})
	if _, err := s.Alloc(0, 8); err == nil {
		t.Error("Alloc(0) succeeded")
	}
	if _, err := s.Alloc(-5, 8); err == nil {
		t.Error("Alloc(-5) succeeded")
	}
	if _, err := s.AllocCachePages(0); err == nil {
		t.Error("AllocCachePages(0) succeeded")
	}
}

func TestProtString(t *testing.T) {
	if ProtNone.String() != "---" || ProtRead.String() != "r--" || ProtReadWrite.String() != "rw-" {
		t.Error("Prot.String mismatch")
	}
	if FaultRead.String() != "read" || FaultWrite.String() != "write" {
		t.Error("FaultKind.String mismatch")
	}
}

func TestConcurrentFaultingReaders(t *testing.T) {
	// Many goroutines touch the same protected page concurrently; the
	// handler installs data exactly like the runtime would. All readers
	// must see the installed bytes, with no deadlock or panic. Sharing a
	// Space between application goroutines outside the RPC protocol's
	// single-active-thread discipline requires Concurrent mode.
	s := newSpace(t, Config{Concurrent: true})
	base, err := s.AllocCachePages(1)
	if err != nil {
		t.Fatal(err)
	}
	var installs atomic.Int64
	s.SetHandler(func(f Fault) error {
		installs.Add(1)
		if err := s.WriteRaw(s.PageBase(f.Page), []byte{0xCD}); err != nil {
			return err
		}
		return s.SetProt(f.Page, ProtRead)
	})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 1)
			if err := s.Read(base, buf); err != nil {
				errs <- err
				return
			}
			if buf[0] != 0xCD {
				errs <- fmt.Errorf("read %#x", buf[0])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if installs.Load() == 0 {
		t.Error("no install happened")
	}
}

func TestConcurrentMixedAccess(t *testing.T) {
	// Concurrent readers and writers on heap memory: in Concurrent mode
	// the space's internal locking must keep every access atomic at the
	// word level.
	s := newSpace(t, Config{Concurrent: true})
	addr, err := s.Alloc(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		v := uint64(i+1) * 0x0101010101010101
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_ = s.WriteUint(addr, 8, v)
			}
		}()
	}
	stop := make(chan struct{})
	bad := make(chan uint64, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			got, err := s.ReadUint(addr, 8)
			if err != nil {
				return
			}
			// Word-level atomicity: every observed value is one of the
			// written patterns or zero.
			if got != 0 && (got%0x0101010101010101 != 0 || got/0x0101010101010101 > 16) {
				select {
				case bad <- got:
				default:
				}
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	select {
	case v := <-bad:
		t.Errorf("torn read observed: %#x", v)
	default:
	}
}

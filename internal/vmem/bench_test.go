package vmem

import "testing"

// BenchmarkVmemAccess measures the simulated-memory load/store fast path
// (flat page table, no lock in the default single-active-thread mode).
// Run with -benchmem: the steady state must be zero allocations.
func BenchmarkVmemAccess(b *testing.B) {
	for _, cfg := range []struct {
		name string
		conc bool
	}{{"lockfree", false}, {"concurrent", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			s, err := NewSpace(Config{Concurrent: cfg.conc})
			if err != nil {
				b.Fatal(err)
			}
			addr, err := s.Alloc(4096, 8)
			if err != nil {
				b.Fatal(err)
			}
			var buf [64]byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := VAddr(uint32(i) % 64 * 64)
				if err := s.WriteUint(addr+off%4032, 4, uint64(i)); err != nil {
					b.Fatal(err)
				}
				if _, err := s.ReadUint(addr+off%4032, 4); err != nil {
					b.Fatal(err)
				}
				if err := s.Read(addr, buf[:]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package vmem

import "fmt"

// allocator is a simple first-fit free-list allocator over a region of the
// virtual address space. Block metadata is kept outside the simulated
// memory (a side table), which keeps the simulation honest: the paper's
// malloc metadata is likewise invisible to the swizzled heap contents.
//
// allocator methods require the owning Space lock to be held.
type allocator struct {
	base, limit VAddr
	next        VAddr         // bump pointer; space above is virgin
	freeList    []span        // sorted, coalesced free spans below next
	live        map[VAddr]int // live allocation sizes (rounded)
	inUse       int           // live bytes
}

type span struct {
	addr VAddr
	size int
}

func (a *allocator) init(base, limit VAddr) {
	a.base = base
	a.limit = limit
	a.next = base
	a.live = make(map[VAddr]int)
}

// roundSize rounds allocation sizes to 8 bytes so freed blocks are easy to
// reuse across slightly different request sizes.
func roundSize(n int) int {
	return (n + 7) &^ 7
}

func (a *allocator) alloc(size, align int) (VAddr, error) {
	size = roundSize(size)
	if align < 1 {
		align = 1
	}
	// First fit in the free list.
	for i, sp := range a.freeList {
		start := VAddr(alignUpU(uint32(sp.addr), uint32(align)))
		pre := int(start - sp.addr)
		if pre+size > sp.size {
			continue
		}
		post := sp.size - pre - size
		// Replace the span with the (possibly empty) pre and post remnants.
		// rest must be copied: appending below would clobber the shared
		// backing array before it is re-appended.
		rest := append([]span(nil), a.freeList[i+1:]...)
		a.freeList = a.freeList[:i]
		if pre > 0 {
			a.freeList = append(a.freeList, span{addr: sp.addr, size: pre})
		}
		if post > 0 {
			a.freeList = append(a.freeList, span{addr: start + VAddr(size), size: post})
		}
		a.freeList = append(a.freeList, rest...)
		a.live[start] = size
		a.inUse += size
		return start, nil
	}
	// Bump allocation.
	start := VAddr(alignUpU(uint32(a.next), uint32(align)))
	if pre := int(start - a.next); pre > 0 {
		a.freeList = append(a.freeList, span{addr: a.next, size: pre})
	}
	end := start + VAddr(size)
	if end < start || end > a.limit {
		return Null, fmt.Errorf("%w: heap region exhausted", ErrOutOfMemory)
	}
	a.next = end
	a.live[start] = size
	a.inUse += size
	return start, nil
}

func (a *allocator) free(addr VAddr) error {
	size, ok := a.live[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadFree, uint32(addr))
	}
	delete(a.live, addr)
	a.inUse -= size
	a.insertSpan(span{addr: addr, size: size})
	return nil
}

// insertSpan adds a span to the free list, keeping it sorted by address and
// coalescing adjacent spans.
func (a *allocator) insertSpan(s span) {
	// Binary search for insertion point.
	lo, hi := 0, len(a.freeList)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.freeList[mid].addr < s.addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	a.freeList = append(a.freeList, span{})
	copy(a.freeList[lo+1:], a.freeList[lo:])
	a.freeList[lo] = s
	// Coalesce with successor.
	if lo+1 < len(a.freeList) && s.addr+VAddr(s.size) == a.freeList[lo+1].addr {
		a.freeList[lo].size += a.freeList[lo+1].size
		a.freeList = append(a.freeList[:lo+1], a.freeList[lo+2:]...)
	}
	// Coalesce with predecessor.
	if lo > 0 && a.freeList[lo-1].addr+VAddr(a.freeList[lo-1].size) == a.freeList[lo].addr {
		a.freeList[lo-1].size += a.freeList[lo].size
		a.freeList = append(a.freeList[:lo], a.freeList[lo+1:]...)
	}
}

func (a *allocator) sizeOf(addr VAddr) (int, error) {
	size, ok := a.live[addr]
	if !ok {
		return 0, fmt.Errorf("%w: %#x not a live allocation", ErrBadFree, uint32(addr))
	}
	return size, nil
}

func alignUpU(n, a uint32) uint32 {
	return (n + a - 1) / a * a
}

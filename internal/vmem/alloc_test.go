package vmem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocatorCoalescing(t *testing.T) {
	s := newSpace(t, Config{})
	a, _ := s.Alloc(64, 8)
	b, _ := s.Alloc(64, 8)
	c, _ := s.Alloc(64, 8)
	// Free middle, then neighbors; the three blocks must coalesce so a
	// larger allocation fits in their footprint.
	if err := s.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(c); err != nil {
		t.Fatal(err)
	}
	big, err := s.Alloc(192, 8)
	if err != nil {
		t.Fatal(err)
	}
	if big != a {
		t.Errorf("coalesced alloc at %#x, want %#x", uint32(big), uint32(a))
	}
}

func TestAllocatorSplitsSpans(t *testing.T) {
	s := newSpace(t, Config{})
	a, _ := s.Alloc(256, 8)
	marker, _ := s.Alloc(8, 8)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	small1, _ := s.Alloc(64, 8)
	small2, _ := s.Alloc(64, 8)
	if small1 != a || small2 != a+64 {
		t.Errorf("span splitting: got %#x, %#x; want %#x, %#x",
			uint32(small1), uint32(small2), uint32(a), uint32(a+64))
	}
	_ = marker
}

// Property: after arbitrary interleavings of alloc and free, no two live
// allocations overlap, all stay in the heap region, and inUse equals the
// sum of live sizes.
func TestQuickAllocatorInvariants(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		s, err := NewSpace(Config{})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var live []VAddr
		sizes := make(map[VAddr]int)
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := rng.Intn(len(live))
				addr := live[i]
				if err := s.Free(addr); err != nil {
					return false
				}
				delete(sizes, addr)
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := int(op%500) + 1
			addr, err := s.Alloc(size, 8)
			if err != nil {
				return false
			}
			sizes[addr] = roundSize(size)
			live = append(live, addr)
		}
		// Overlap check.
		total := 0
		for a, sa := range sizes {
			total += sa
			if !s.InHeap(a) {
				return false
			}
			for b, sb := range sizes {
				if a == b {
					continue
				}
				if a < b+VAddr(sb) && b < a+VAddr(sa) {
					return false
				}
			}
		}
		return s.HeapInUse() == total
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: typed loads read back typed stores for every width at random
// (aligned) offsets.
func TestQuickTypedRoundTrip(t *testing.T) {
	s, err := NewSpace(Config{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Alloc(4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, v uint64, w uint8) bool {
		width := []int{1, 2, 4, 8}[w%4]
		addr := base + VAddr(int(off)%(4096-8))
		mask := ^uint64(0)
		if width < 8 {
			mask = 1<<(8*width) - 1
		}
		if err := s.WriteUint(addr, width, v); err != nil {
			return false
		}
		got, err := s.ReadUint(addr, width)
		return err == nil && got == v&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package swizzle

import (
	"errors"
	"testing"
	"testing/quick"

	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
)

const (
	selfID   = 1
	remoteID = 2
	otherID  = 3
)

func testRegistry(t *testing.T) *types.Registry {
	t.Helper()
	r := types.NewRegistry()
	node := &types.Desc{
		ID:   1,
		Name: "TreeNode",
		Fields: []types.Field{
			{Name: "left", Kind: types.Ptr, Elem: 1},
			{Name: "right", Kind: types.Ptr, Elem: 1},
			{Name: "data", Kind: types.Int64},
		},
	}
	big := &types.Desc{
		ID:   2,
		Name: "BigBlob",
		Fields: []types.Field{
			{Name: "payload", Kind: types.Uint8, Count: 10000},
		},
	}
	if err := r.Register(node); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(big); err != nil {
		t.Fatal(err)
	}
	return r
}

func newTable(t *testing.T, policy AllocPolicy) (*Table, *vmem.Space) {
	t.Helper()
	sp, err := vmem.NewSpace(vmem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(sp, testRegistry(t), selfID, policy), sp
}

func lp(space uint32, addr vmem.VAddr, ty types.ID) wire.LongPtr {
	return wire.LongPtr{Space: space, Addr: addr, Type: ty}
}

func TestSwizzleNull(t *testing.T) {
	tb, _ := newTable(t, 0)
	addr, fresh, err := tb.Swizzle(wire.LongPtr{})
	if err != nil || addr != vmem.Null || fresh {
		t.Errorf("Swizzle(null) = %#x, %v, %v", uint32(addr), fresh, err)
	}
}

func TestSwizzleLocalPointerIsIdentity(t *testing.T) {
	tb, sp := newTable(t, 0)
	local, err := sp.Alloc(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	addr, fresh, err := tb.Swizzle(lp(selfID, local, 1))
	if err != nil || addr != local || fresh {
		t.Errorf("local swizzle = %#x, %v, %v; want %#x", uint32(addr), fresh, err, uint32(local))
	}
}

func TestSwizzleRemoteAllocatesProtectedArea(t *testing.T) {
	tb, sp := newTable(t, 0)
	remote := lp(remoteID, 0x5000, 1)
	addr, fresh, err := tb.Swizzle(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh {
		t.Error("first swizzle not fresh")
	}
	if !sp.InCache(addr) {
		t.Errorf("swizzled address %#x outside cache region", uint32(addr))
	}
	prot, err := sp.ProtOf(sp.PageOf(addr))
	if err != nil || prot != vmem.ProtNone {
		t.Errorf("protected page area prot = %v, %v; want ---", prot, err)
	}
}

func TestSwizzleIdempotent(t *testing.T) {
	tb, _ := newTable(t, 0)
	remote := lp(remoteID, 0x5000, 1)
	a1, _, err := tb.Swizzle(remote)
	if err != nil {
		t.Fatal(err)
	}
	a2, fresh, err := tb.Swizzle(remote)
	if err != nil || fresh || a2 != a1 {
		t.Errorf("second swizzle = %#x, %v, %v; want %#x, false", uint32(a2), fresh, err, uint32(a1))
	}
	if tb.Len() != 1 {
		t.Errorf("table has %d entries, want 1", tb.Len())
	}
}

// TestDataAllocationTablePaperExample reproduces Table 1 of the paper:
// after pointers A and B are swizzled in the callee, the data allocation
// table holds two rows on the same page with their offsets and long
// pointers.
func TestDataAllocationTablePaperExample(t *testing.T) {
	tb, sp := newTable(t, 0)
	ptrA := lp(remoteID, 0xA000, 1)
	ptrB := lp(remoteID, 0xB000, 1)
	addrA, _, err := tb.Swizzle(ptrA)
	if err != nil {
		t.Fatal(err)
	}
	addrB, _, err := tb.Swizzle(ptrB)
	if err != nil {
		t.Fatal(err)
	}
	if sp.PageOf(addrA) != sp.PageOf(addrB) {
		t.Fatalf("A and B on different pages (%d, %d); heuristic should share one page",
			sp.PageOf(addrA), sp.PageOf(addrB))
	}
	rows := tb.PageEntries(sp.PageOf(addrA))
	if len(rows) != 2 {
		t.Fatalf("table rows on page = %d, want 2", len(rows))
	}
	if rows[0].LP != ptrA || rows[1].LP != ptrB {
		t.Errorf("rows = %+v; want A then B by offset", rows)
	}
	if rows[0].Offset >= rows[1].Offset {
		t.Errorf("offsets not increasing: %d, %d", rows[0].Offset, rows[1].Offset)
	}
}

func TestPerOriginPolicySeparatesPages(t *testing.T) {
	tb, sp := newTable(t, PolicyPerOrigin)
	a, _, err := tb.Swizzle(lp(remoteID, 0x100, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := tb.Swizzle(lp(otherID, 0x100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if sp.PageOf(a) == sp.PageOf(b) {
		t.Error("objects from different origins share a page under PolicyPerOrigin")
	}
}

func TestMixedPolicySharesPages(t *testing.T) {
	tb, sp := newTable(t, PolicyMixed)
	a, _, err := tb.Swizzle(lp(remoteID, 0x100, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := tb.Swizzle(lp(otherID, 0x100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if sp.PageOf(a) != sp.PageOf(b) {
		t.Error("objects from different origins on different pages under PolicyMixed")
	}
}

func TestSwizzleLargeObjectSpansPages(t *testing.T) {
	tb, sp := newTable(t, 0)
	addr, _, err := tb.Swizzle(lp(remoteID, 0x100, 2)) // 10000-byte blob
	if err != nil {
		t.Fatal(err)
	}
	e, ok := tb.LookupAddr(addr)
	if !ok || e.Size != 10000 {
		t.Fatalf("entry = %+v, %v", e, ok)
	}
	// The whole object is addressable cache space.
	if !sp.InCache(addr + vmem.VAddr(e.Size-1)) {
		t.Error("large object tail outside cache")
	}
}

func TestUnswizzleRoundTrip(t *testing.T) {
	tb, _ := newTable(t, 0)
	remote := lp(remoteID, 0x5000, 1)
	addr, _, err := tb.Swizzle(remote)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tb.Unswizzle(addr, 1)
	if err != nil || got != remote {
		t.Errorf("Unswizzle = %v, %v; want %v", got, err, remote)
	}
}

func TestUnswizzleNull(t *testing.T) {
	tb, _ := newTable(t, 0)
	got, err := tb.Unswizzle(vmem.Null, 1)
	if err != nil || !got.IsNull() {
		t.Errorf("Unswizzle(null) = %v, %v", got, err)
	}
}

func TestUnswizzleHeapPointer(t *testing.T) {
	tb, sp := newTable(t, 0)
	local, _ := sp.Alloc(16, 8)
	got, err := tb.Unswizzle(local, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := lp(selfID, local, 1)
	if got != want {
		t.Errorf("Unswizzle(heap) = %v, want %v", got, want)
	}
}

func TestUnswizzleUnknownCacheAddr(t *testing.T) {
	tb, sp := newTable(t, 0)
	base, _ := sp.AllocCachePages(1)
	if _, err := tb.Unswizzle(base+8, 1); !errors.Is(err, ErrNotSwizzled) {
		t.Errorf("err = %v, want ErrNotSwizzled", err)
	}
}

func TestRebindProvisionalPointer(t *testing.T) {
	tb, _ := newTable(t, 0)
	prov := lp(remoteID, 0xFFFF0001, 1) // provisional address from extended_malloc
	addr, _, err := tb.Swizzle(prov)
	if err != nil {
		t.Fatal(err)
	}
	real := lp(remoteID, 0x00020000, 1)
	evicted, err := tb.Rebind(prov, real)
	if err != nil {
		t.Fatal(err)
	}
	if evicted {
		t.Error("rebind onto a fresh identity reported an eviction")
	}
	// The ordinary pointer is unchanged; identity maps updated.
	got, err := tb.Unswizzle(addr, 1)
	if err != nil || got != real {
		t.Errorf("after rebind Unswizzle = %v, %v; want %v", got, err, real)
	}
	if _, ok := tb.LookupLP(prov); ok {
		t.Error("provisional identity still mapped after rebind")
	}
	if a, ok := tb.LookupLP(real); !ok || a != addr {
		t.Errorf("real identity maps to %#x, %v; want %#x", uint32(a), ok, uint32(addr))
	}
	// Page rows follow.
	e, _ := tb.LookupAddr(addr)
	rows := tb.PageEntries(e.Page)
	if len(rows) != 1 || rows[0].LP != real {
		t.Errorf("page rows after rebind = %+v", rows)
	}
}

func TestRebindErrors(t *testing.T) {
	tb, _ := newTable(t, 0)
	a := lp(remoteID, 0x100, 1)
	b := lp(remoteID, 0x200, 1)
	if _, err := tb.Rebind(a, b); !errors.Is(err, ErrRebindUnknown) {
		t.Errorf("rebind unknown = %v", err)
	}
	if _, _, err := tb.Swizzle(a); err != nil {
		t.Fatal(err)
	}
	baddr, _, err := tb.Swizzle(b)
	if err != nil {
		t.Fatal(err)
	}
	// A RESIDENT row under the target identity is a live datum; rebinding
	// a second datum onto it must fail.
	tb.MarkResident(baddr)
	if _, err := tb.Rebind(a, b); err == nil {
		t.Error("rebind onto resident mapping succeeded")
	}
}

// TestRebindEvictsDeadRow: the origin assigning an address for a fresh
// allocation proves nothing live exists there, so a leftover non-resident
// row under that identity — a plain want, or a stale warm-cache baseline
// surviving an origin-side free/crash-restart and address reuse — is
// evicted and the rebound row takes over the identity.
func TestRebindEvictsDeadRow(t *testing.T) {
	for _, tc := range []struct {
		name  string
		stale bool
	}{{"want", false}, {"stale", true}} {
		t.Run(tc.name, func(t *testing.T) {
			tb, sp := newTable(t, 0)
			dead := lp(remoteID, 0x300, 1)
			deadAddr, _, err := tb.Swizzle(dead)
			if err != nil {
				t.Fatal(err)
			}
			if tc.stale {
				tb.MarkResident(deadAddr)
				tb.DemoteAll()
			}
			deadEntry, ok := tb.LookupAddr(deadAddr)
			if !ok {
				t.Fatal("dead row not found before rebind")
			}
			prov := lp(remoteID, 0xFFFF0002, 1)
			provAddr, _, err := tb.Swizzle(prov)
			if err != nil {
				t.Fatal(err)
			}
			evicted, err := tb.Rebind(prov, dead)
			if err != nil {
				t.Fatalf("rebind onto %s row: %v", tc.name, err)
			}
			if !evicted {
				t.Errorf("rebind onto %s row did not report the eviction", tc.name)
			}
			// The dead slot is poisoned: a dangling dereference reads the
			// deterministic pattern, not the slot's previous (stale) bytes.
			buf := make([]byte, deadEntry.Size)
			if err := sp.ReadRaw(deadAddr, buf); err != nil {
				t.Fatalf("read evicted slot: %v", err)
			}
			for _, bb := range buf {
				if bb != rebindPoison {
					t.Errorf("evicted slot bytes = % x, want all %#x", buf, rebindPoison)
					break
				}
			}
			if a, ok := tb.LookupLP(dead); !ok || a != provAddr {
				t.Errorf("identity maps to %#x, %v; want the rebound row %#x",
					uint32(a), ok, uint32(provAddr))
			}
			if _, ok := tb.LookupAddr(deadAddr); ok {
				t.Error("evicted row still reachable by cache address")
			}
			// The evicted row's page bookkeeping must not retain it.
			for _, row := range tb.PageEntries(deadEntry.Page) {
				if row.Addr == deadAddr {
					t.Error("evicted row still listed on its page")
				}
			}
		})
	}
}

func TestInvalidateClearsTable(t *testing.T) {
	tb, _ := newTable(t, 0)
	if _, _, err := tb.Swizzle(lp(remoteID, 0x100, 1)); err != nil {
		t.Fatal(err)
	}
	tb.Invalidate()
	if tb.Len() != 0 {
		t.Errorf("table len after invalidate = %d", tb.Len())
	}
	// Re-swizzling works and produces a fresh area.
	addr, fresh, err := tb.Swizzle(lp(remoteID, 0x100, 1))
	if err != nil || !fresh || addr == vmem.Null {
		t.Errorf("post-invalidate swizzle = %#x, %v, %v", uint32(addr), fresh, err)
	}
}

func TestEntriesSorted(t *testing.T) {
	tb, _ := newTable(t, PolicyPerOrigin)
	for i := 0; i < 10; i++ {
		if _, _, err := tb.Swizzle(lp(remoteID, vmem.VAddr(0x100+i*16), 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, _, err := tb.Swizzle(lp(otherID, vmem.VAddr(0x100+i*16), 1)); err != nil {
			t.Fatal(err)
		}
	}
	es := tb.Entries()
	if len(es) != 20 {
		t.Fatalf("entries = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Page < es[i-1].Page ||
			(es[i].Page == es[i-1].Page && es[i].Offset <= es[i-1].Offset) {
			t.Fatalf("entries not sorted at %d: %+v %+v", i, es[i-1], es[i])
		}
	}
}

func TestUnknownTypeFails(t *testing.T) {
	tb, _ := newTable(t, 0)
	if _, _, err := tb.Swizzle(lp(remoteID, 0x100, 99)); err == nil {
		t.Error("swizzle with unknown type succeeded")
	}
}

// Property: swizzle is injective (distinct long pointers get distinct,
// non-overlapping addresses) and unswizzle inverts it.
func TestQuickSwizzleInjective(t *testing.T) {
	f := func(addrs []uint32, originSel []bool) bool {
		sp, err := vmem.NewSpace(vmem.Config{})
		if err != nil {
			return false
		}
		reg := types.NewRegistry()
		if err := reg.Register(&types.Desc{
			ID: 1, Name: "N",
			Fields: []types.Field{{Name: "x", Kind: types.Int64}, {Name: "p", Kind: types.Ptr, Elem: 1}},
		}); err != nil {
			return false
		}
		tb := New(sp, reg, selfID, PolicyPerOrigin)
		seen := make(map[vmem.VAddr]wire.LongPtr)
		for i, raw := range addrs {
			if raw == 0 {
				continue
			}
			origin := uint32(remoteID)
			if i < len(originSel) && originSel[i] {
				origin = otherID
			}
			p := lp(origin, vmem.VAddr(raw), 1)
			a, _, err := tb.Swizzle(p)
			if err != nil {
				return false
			}
			if prev, ok := seen[a]; ok && prev != p {
				return false // two long pointers share an address
			}
			seen[a] = p
			back, err := tb.Unswizzle(a, 1)
			if err != nil || back != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMarkResidentAndAllResident(t *testing.T) {
	tb, sp := newTable(t, 0)
	a, _, err := tb.Swizzle(lp(remoteID, 0x100, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := tb.Swizzle(lp(remoteID, 0x200, 1))
	if err != nil {
		t.Fatal(err)
	}
	pn := sp.PageOf(a)
	if tb.AllResident(pn) {
		t.Error("fresh entries reported resident")
	}
	tb.MarkResident(a)
	if tb.AllResident(pn) {
		t.Error("half-resident page reported all-resident")
	}
	tb.MarkResident(b)
	if !tb.AllResident(pn) {
		t.Error("fully installed page not all-resident")
	}
	e, ok := tb.LookupAddr(a)
	if !ok || !e.Resident {
		t.Errorf("entry resident flag = %+v, %v", e, ok)
	}
	rows := tb.PageEntries(pn)
	for _, r := range rows {
		if !r.Resident {
			t.Errorf("page row not resident: %+v", r)
		}
	}
}

func TestAllResidentEmptyPage(t *testing.T) {
	tb, _ := newTable(t, 0)
	if !tb.AllResident(12345) {
		t.Error("page with no entries not trivially resident")
	}
}

func TestMarkResidentUnknownAddrIsNoop(t *testing.T) {
	tb, _ := newTable(t, 0)
	tb.MarkResident(0x4000_0000) // must not panic
}

func TestSealForcesFreshPage(t *testing.T) {
	tb, sp := newTable(t, 0)
	a, _, err := tb.Swizzle(lp(remoteID, 0x100, 1))
	if err != nil {
		t.Fatal(err)
	}
	tb.Seal(sp.PageOf(a))
	b, _, err := tb.Swizzle(lp(remoteID, 0x200, 1))
	if err != nil {
		t.Fatal(err)
	}
	if sp.PageOf(b) == sp.PageOf(a) {
		t.Error("entry placed on sealed page")
	}
}

func TestSealUnrelatedPageKeepsArea(t *testing.T) {
	tb, sp := newTable(t, 0)
	a, _, err := tb.Swizzle(lp(remoteID, 0x100, 1))
	if err != nil {
		t.Fatal(err)
	}
	tb.Seal(sp.PageOf(a) + 999)
	b, _, err := tb.Swizzle(lp(remoteID, 0x200, 1))
	if err != nil {
		t.Fatal(err)
	}
	if sp.PageOf(b) != sp.PageOf(a) {
		t.Error("unrelated seal closed the open area")
	}
}

func TestRemoveEntry(t *testing.T) {
	tb, sp := newTable(t, 0)
	target := lp(remoteID, 0x100, 1)
	a, _, err := tb.Swizzle(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Remove(a); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.LookupAddr(a); ok {
		t.Error("entry still present after Remove")
	}
	if _, ok := tb.LookupLP(target); ok {
		t.Error("identity still mapped after Remove")
	}
	if rows := tb.PageEntries(sp.PageOf(a)); len(rows) != 0 {
		t.Errorf("page rows after Remove: %+v", rows)
	}
	if err := tb.Remove(a); !errors.Is(err, ErrNotSwizzled) {
		t.Errorf("second Remove err = %v", err)
	}
	// Re-swizzling the identity yields a fresh slot (the old one is not
	// reused).
	b, fresh, err := tb.Swizzle(target)
	if err != nil || !fresh {
		t.Fatalf("re-swizzle = %#x, %v, %v", uint32(b), fresh, err)
	}
	if b == a {
		t.Error("removed slot reused; stale pointers would alias new data")
	}
}

func TestProvisionalAreaSeparation(t *testing.T) {
	tb, sp := newTable(t, 0)
	normal, _, err := tb.Swizzle(lp(remoteID, 0x100, 1))
	if err != nil {
		t.Fatal(err)
	}
	prov, _, err := tb.SwizzleIn(lp(remoteID, 0xF0000001, 1), remoteID|ProvisionalAreaFlag)
	if err != nil {
		t.Fatal(err)
	}
	if sp.PageOf(normal) == sp.PageOf(prov) {
		t.Error("provisional object shares page with fetch-destined data")
	}
}

func TestProvisionalSeparationUnderMixedPolicy(t *testing.T) {
	tb, sp := newTable(t, PolicyMixed)
	normal, _, err := tb.Swizzle(lp(remoteID, 0x100, 1))
	if err != nil {
		t.Fatal(err)
	}
	prov, _, err := tb.SwizzleIn(lp(otherID, 0xF0000001, 1), otherID|ProvisionalAreaFlag)
	if err != nil {
		t.Fatal(err)
	}
	if sp.PageOf(normal) == sp.PageOf(prov) {
		t.Error("mixed policy merged provisional and fetch areas")
	}
}

// Package swizzle implements pointer swizzling and the data allocation
// table of §3.2 of the paper.
//
// A long pointer arriving from another address space must be translated
// into an ordinary pointer ("swizzled") before the hardware — here, the
// simulated memory of package vmem — can use it. The first time a long
// pointer is seen, the table reserves room for the referenced datum inside
// a protected page area of the cache region and records the triple
// (page number, offset within the page, long pointer): exactly the data
// allocation table in the paper's Table 1. Subsequent swizzles of the same
// long pointer return the same ordinary pointer, and unswizzling reverses
// the mapping when data is marshaled back out.
//
// Placement follows the paper's heuristic (§6): all data allocated to one
// page originates from a single address space, so a page fault can be
// served with one Fetch message. PolicyMixed disables the heuristic to
// reproduce the worst case the paper warns about (an ablation).
package swizzle

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"smartrpc/internal/types"
	"smartrpc/internal/vmem"
	"smartrpc/internal/wire"
)

// AllocPolicy selects how cache room is grouped onto pages.
type AllocPolicy int

// Policies.
const (
	// PolicyPerOrigin gives each origin address space its own open page
	// (the paper's heuristic).
	PolicyPerOrigin AllocPolicy = iota + 1
	// PolicyMixed packs objects from all origins onto shared pages
	// (worst-case ablation: one fault can require fetches from many
	// spaces).
	PolicyMixed
)

// Sentinel errors.
var (
	// ErrNotSwizzled is returned when unswizzling an address with no table
	// entry.
	ErrNotSwizzled = errors.New("swizzle: address has no table entry")
	// ErrRebindUnknown is returned when rebinding a long pointer that is
	// not in the table.
	ErrRebindUnknown = errors.New("swizzle: rebind of unknown long pointer")
)

// Entry is one row of the data allocation table.
type Entry struct {
	// Page is the cache page number holding the datum.
	Page uint32
	// Offset is the datum's offset within the page.
	Offset uint32
	// LP is the long pointer identifying the original datum.
	LP wire.LongPtr
	// Addr is the swizzled ordinary pointer (page base + offset).
	Addr vmem.VAddr
	// Size is the datum's size under the local architecture.
	Size int
	// Resident reports whether the datum's bytes have been installed.
	// A page's protection may only be released once every entry on it is
	// resident — otherwise the first access to a neighbor could no longer
	// be detected (§3.2).
	Resident bool
	// Stale marks a warm-cache entry: the datum was resident in an earlier
	// session and its bytes survive on the (re-protected) page as a
	// revalidation baseline. A stale entry is non-resident — touching its
	// page faults — but the fault is served by Validate instead of Fetch.
	Stale bool
}

// area is an open protected page area accepting new data from one origin.
type area struct {
	base vmem.VAddr // current page run base
	off  int        // bump offset within the run
	size int        // run size in bytes (0 = no open run)
}

// Table is the data allocation table plus the swizzle/unswizzle maps for
// one address space. It is safe for concurrent use.
//
// Rows live in one append-only slice; the lookup maps hold indices into
// it. A swizzle therefore costs one slice append and two small-key map
// inserts, and marking a datum resident is a single in-place store — the
// table sits on both the install path (one swizzle per pointer field
// received) and the fault path, so its constant factors dominate the
// runtime's hot loops. The peak row count is remembered across Invalidate
// and used to pre-size the next session's maps, so steady-state sessions
// never pay incremental map growth.
type Table struct {
	space  *vmem.Space
	reg    *types.Registry
	res    *types.Resolver
	selfID uint32
	policy AllocPolicy

	mu   sync.Mutex
	rows []Entry
	// byLP and byAddr map a long pointer / swizzled address to its row's
	// index. Removed rows are deleted from the maps and from byPage but
	// stay in rows as unreachable tombstones; their slots are not reused,
	// matching the no-reuse rule for freed cache addresses.
	byLP   map[wire.LongPtr]int32
	byAddr map[vmem.VAddr]int32
	// byPage lists row indices per cache page. Reservation is a bump
	// allocator over fresh page runs, so the per-page lists are naturally
	// in increasing-offset order — the (page, offset) order §3.2's fetch
	// needs — without sorting.
	byPage map[uint32][]int32
	areas  map[uint32]*area
	hint   int // peak row count observed, carried across Invalidate
}

// New creates a table for space, which has identifier selfID in the
// distributed system. Types are resolved through reg.
func New(space *vmem.Space, reg *types.Registry, selfID uint32, policy AllocPolicy) *Table {
	if policy == 0 {
		policy = PolicyPerOrigin
	}
	t := &Table{
		space:  space,
		reg:    reg,
		res:    reg.ResolverFor(space.Profile()),
		selfID: selfID,
		policy: policy,
	}
	t.reset()
	return t
}

// reset drops the row store and maps. They are re-created lazily by the
// next insert (ensureLocked), pre-sized to the largest population seen so
// far — a table that is invalidated and never refilled (end of the last
// session) costs nothing. Caller holds t.mu (or is the constructor).
func (t *Table) reset() {
	if n := len(t.rows); n > t.hint {
		t.hint = n
	}
	t.rows = nil
	t.byLP = nil
	t.byAddr = nil
	t.byPage = nil
	t.areas = nil
}

// ensureLocked materializes the row store and maps if reset dropped them.
// Lookups on the nil maps behave as misses, so only inserts need this.
func (t *Table) ensureLocked() {
	if t.byLP != nil {
		return
	}
	t.rows = make([]Entry, 0, t.hint)
	t.byLP = make(map[wire.LongPtr]int32, t.hint)
	t.byAddr = make(map[vmem.VAddr]int32, t.hint)
	t.byPage = make(map[uint32][]int32, t.hint/4+1)
	t.areas = make(map[uint32]*area)
}

// SelfID returns the owning space's identifier.
func (t *Table) SelfID() uint32 { return t.selfID }

// Swizzle translates a long pointer into an ordinary pointer, reserving a
// protected page area slot on first sight. The returned bool is true when
// the entry is new (no data present yet). Long pointers into the local
// space translate to their plain address.
func (t *Table) Swizzle(lp wire.LongPtr) (vmem.VAddr, bool, error) {
	return t.SwizzleIn(lp, lp.Space)
}

// SwizzleIn is Swizzle with an explicit area key: new entries are placed
// in the page area identified by areaKey instead of the origin's default
// area. The runtime uses a distinct key for objects created locally by
// extended_malloc, whose pages are born resident and writable and must
// therefore never share a page with not-yet-fetched remote data.
func (t *Table) SwizzleIn(lp wire.LongPtr, areaKey uint32) (vmem.VAddr, bool, error) {
	if lp.IsNull() {
		return vmem.Null, false, nil
	}
	if lp.Space == t.selfID {
		return lp.Addr, false, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.byLP[lp]; ok {
		return t.rows[i].Addr, false, nil
	}
	t.ensureLocked()
	rv, err := t.res.Resolve(lp.Type)
	if err != nil {
		return vmem.Null, false, fmt.Errorf("swizzle %v: %w", lp, err)
	}
	layout := rv.Layout
	addr, err := t.reserveLocked(areaKey, layout.Size, layout.Align)
	if err != nil {
		return vmem.Null, false, fmt.Errorf("swizzle %v: %w", lp, err)
	}
	pn := t.space.PageOf(addr)
	i := int32(len(t.rows))
	t.rows = append(t.rows, Entry{
		Page:   pn,
		Offset: uint32(addr) - uint32(t.space.PageBase(pn)),
		LP:     lp,
		Addr:   addr,
		Size:   layout.Size,
	})
	t.byLP[lp] = i
	t.byAddr[addr] = i
	t.byPage[pn] = append(t.byPage[pn], i)
	return addr, true, nil
}

// reserveLocked carves size bytes out of the keyed open page area,
// opening a fresh protected area when the current one is exhausted.
func (t *Table) reserveLocked(areaKey uint32, size, align int) (vmem.VAddr, error) {
	key := areaKey
	if t.policy == PolicyMixed {
		// Collapse all origins into one shared area, but keep areas with
		// the provisional flag apart: locally created objects must never
		// share pages with not-yet-fetched data.
		key = areaKey & ProvisionalAreaFlag
	}
	a, ok := t.areas[key]
	if !ok {
		a = &area{}
		t.areas[key] = a
	}
	ps := t.space.PageSize()
	for {
		if a.size > 0 {
			off := alignUp(a.off, align)
			if off+size <= a.size {
				a.off = off + size
				return a.base + vmem.VAddr(off), nil
			}
		}
		pages := (size + ps - 1) / ps
		if pages < 1 {
			pages = 1
		}
		base, err := t.space.AllocCachePages(pages)
		if err != nil {
			return vmem.Null, err
		}
		a.base = base
		a.off = 0
		a.size = pages * ps
	}
}

// ProvisionalAreaFlag, or'ed into a SwizzleIn area key, marks areas for
// locally created (extended_malloc) objects; such areas are never merged
// with fetch-destined areas, even under PolicyMixed.
const ProvisionalAreaFlag uint32 = 0x8000_0000

// MarkResident records that the datum at addr has its bytes installed.
func (t *Table) MarkResident(addr vmem.VAddr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.byAddr[addr]; ok {
		t.rows[i].Resident = true
		t.rows[i].Stale = false
	}
}

// Remove deletes the table entry for a swizzled address (used when the
// referenced datum is freed: a freed object must not be fetched or written
// back). The cache slot itself is not reused; stale ordinary pointers to
// it keep faulting or reading zeroes rather than aliasing new data.
func (t *Table) Remove(addr vmem.VAddr) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.byAddr[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNotSwizzled, uint32(addr))
	}
	t.removeLocked(i)
	return nil
}

// removeLocked deletes row i from every index map. The caller holds t.mu.
func (t *Table) removeLocked(i int32) {
	e := t.rows[i]
	delete(t.byAddr, e.Addr)
	delete(t.byLP, e.LP)
	idxs := t.byPage[e.Page]
	for k, ri := range idxs {
		if ri == i {
			idxs = append(idxs[:k], idxs[k+1:]...)
			break
		}
	}
	if len(idxs) == 0 {
		delete(t.byPage, e.Page)
	} else {
		t.byPage[e.Page] = idxs
	}
}

// AllResident reports whether every entry on page pn has been installed.
// A page with no entries is trivially resident.
func (t *Table) AllResident(pn uint32) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, i := range t.byPage[pn] {
		if !t.rows[i].Resident {
			return false
		}
	}
	return true
}

// Seal closes any open area whose current run covers page pn, so that no
// future entry can be placed on a page whose protection has already been
// released (the first access to such an entry could not be detected).
func (t *Table) Seal(pn uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, a := range t.areas {
		if a.size == 0 {
			continue
		}
		first := t.space.PageOf(a.base)
		last := t.space.PageOf(a.base + vmem.VAddr(a.size-1))
		if pn >= first && pn <= last {
			a.size = 0
			a.off = 0
		}
	}
}

// Unswizzle translates an ordinary pointer back into a long pointer.
// declared is the pointer field's element type, needed to build long
// pointers for locally owned data (the heap has no per-object table).
func (t *Table) Unswizzle(addr vmem.VAddr, declared types.ID) (wire.LongPtr, error) {
	if addr == vmem.Null {
		return wire.LongPtr{}, nil
	}
	if t.space.InCache(addr) {
		t.mu.Lock()
		i, ok := t.byAddr[addr]
		var lp wire.LongPtr
		if ok {
			lp = t.rows[i].LP
		}
		t.mu.Unlock()
		if !ok {
			return wire.LongPtr{}, fmt.Errorf("%w: %#x", ErrNotSwizzled, uint32(addr))
		}
		return lp, nil
	}
	return wire.LongPtr{Space: t.selfID, Addr: addr, Type: declared}, nil
}

// LookupAddr returns the table entry for a swizzled address.
func (t *Table) LookupAddr(addr vmem.VAddr) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.byAddr[addr]
	if !ok {
		return Entry{}, false
	}
	return t.rows[i], true
}

// LookupLP returns the swizzled address for a long pointer, if present.
func (t *Table) LookupLP(lp wire.LongPtr) (vmem.VAddr, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.byLP[lp]
	if !ok {
		return vmem.Null, false
	}
	return t.rows[i].Addr, true
}

// PageEntries returns the table rows for one page, ordered by offset:
// everything that must be fetched when the page faults (§3.2: "all of the
// other data allocated to the page must be transferred at this time").
func (t *Table) PageEntries(pn uint32) []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	idxs := t.byPage[pn]
	if len(idxs) == 0 {
		return nil
	}
	out := make([]Entry, len(idxs))
	for k, i := range idxs {
		out[k] = t.rows[i]
	}
	return out
}

// OutstandingWants returns the long pointers of non-resident entries
// originating from origin that live on *partially resident* pages other
// than excludePN, in (page, offset) order, stopping once their accumulated
// canonical sizes would exceed budget bytes (a cap bounding per-message
// eagerness). It also reports the bytes selected.
//
// A partially resident page is one where a previous transfer's byte budget
// ran out mid-page: some entries are installed, the rest are not, and the
// page's protection cannot be released until they all are (§3.2). Such a
// page is certain to cost its own FETCH round-trip on first touch, so the
// fetch path piggybacks its remaining wants onto the current faulting
// page's FETCH message instead — one message where the single-want
// protocol needs two. Fully non-resident pages are deliberately excluded:
// prefetching them is speculation that cascades (each install swizzles
// fresh frontier entries), inflating transferred bytes on sparse access
// patterns.
func (t *Table) OutstandingWants(origin uint32, excludePN uint32, budget int) ([]wire.LongPtr, int) {
	if budget <= 0 {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var pages []uint32
	for pn, idxs := range t.byPage {
		if pn == excludePN {
			continue
		}
		missing, resident := false, false
		for _, i := range idxs {
			if t.rows[i].Resident {
				resident = true
			} else if t.rows[i].LP.Space == origin {
				missing = true
			}
		}
		if missing && resident {
			pages = append(pages, pn)
		}
	}
	if len(pages) == 0 {
		return nil, 0
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	var out []wire.LongPtr
	left := budget
	for _, pn := range pages {
		for _, i := range t.byPage[pn] {
			e := &t.rows[i]
			if e.Resident || e.LP.Space != origin {
				continue
			}
			// Charge canonical (wire) size, the unit the serving side's
			// closure budget is denominated in, so a batched FETCH never
			// ships more bytes than a single-want one.
			size := e.Size
			if rv, err := t.res.Resolve(e.LP.Type); err == nil {
				size = rv.Canon
			}
			if size > left {
				return out, budget - left
			}
			left -= size
			out = append(out, e.LP)
		}
	}
	return out, budget - left
}

// PrefetchCandidates returns up to max page numbers, ascending, of pages
// holding at least one non-resident entry originating from origin: the
// speculative prefetcher's prediction set. Such entries were swizzled in
// by installs of data the application IS using — in pointer-graph terms
// each candidate page is one hop ahead of the resident working set — and
// ascending page order approximates the closure traversal's frontier
// order. Both fully cold pages and partially resident ones qualify: a
// closure shipment routinely strands its tail object on a fresh page, so
// the chase's very next page usually already has one resident entry.
// Pages whose non-resident entries are stale are included too: a
// prefetched stale page revalidates first like any other (completePage),
// it is never blind-fetched. Fully resident pages never qualify, so a
// page is predicted at most until its protection is released.
func (t *Table) PrefetchCandidates(origin uint32, max int) []uint32 {
	if max <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var pages []uint32
	for pn, idxs := range t.byPage {
		for _, i := range idxs {
			if !t.rows[i].Resident && t.rows[i].LP.Space == origin {
				pages = append(pages, pn)
				break
			}
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	if len(pages) > max {
		pages = pages[:max]
	}
	return pages
}

// Entries returns every table row, ordered by page then offset. Used by
// diagnostics and the Table 1 reproduction.
func (t *Table) Entries() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Entry, 0, len(t.byAddr))
	for _, i := range t.byAddr {
		out = append(out, t.rows[i])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Page != out[j].Page {
			return out[i].Page < out[j].Page
		}
		return out[i].Offset < out[j].Offset
	})
	return out
}

// Len returns the number of table rows.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byAddr)
}

// Rebind rewrites the long-pointer identity of an existing entry. The
// batched remote-allocation protocol (§3.5) uses it: a provisional long
// pointer issued by extended_malloc is bound to the real address assigned
// by the origin space when the batch is flushed. The swizzled ordinary
// pointer — and therefore every pointer word already stored in local
// memory — is unchanged; only the identity maps update.
//
// The origin assigning an address proves no live datum exists there, so a
// leftover non-resident row under the target identity — a stale
// warm-cache baseline or a plain want surviving from before the origin
// freed (or crash-reset) and reallocated that address — is evicted and
// the fresh allocation takes over the identity. A RESIDENT collision is
// still an error: bytes installed this session claim the identity is
// live, and two live datums cannot share one long pointer.
//
// The eviction is reported (evicted=true) so the runtime can count and
// trace it, and the dead row's cache slot is overwritten with the
// rebindPoison pattern: the slot's address can no longer unswizzle (the
// identity maps drop it), and a local pointer word already swizzled to it
// that the application still dereferences — an application-level
// use-after-free, since the origin freed and reallocated the address —
// reads deterministic poison instead of plausible stale bytes.
func (t *Table) Rebind(old, new wire.LongPtr) (evicted bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.byLP[old]
	if !ok {
		return false, fmt.Errorf("%w: %v", ErrRebindUnknown, old)
	}
	if j, exists := t.byLP[new]; exists {
		if t.rows[j].Resident {
			return false, fmt.Errorf("swizzle: rebind target %v already mapped", new)
		}
		t.poisonLocked(j)
		t.removeLocked(j)
		evicted = true
	}
	delete(t.byLP, old)
	t.byLP[new] = i
	t.rows[i].LP = new
	return evicted, nil
}

// rebindPoison fills the cache slot of a row evicted by Rebind, so a
// dangling dereference of the dead address reads a recognizable pattern
// deterministically instead of whatever stale bytes the slot last held.
const rebindPoison byte = 0xDB

// poisonLocked overwrites row i's cache slot with rebindPoison. The
// caller holds t.mu. Best effort via a raw (protection-bypassing) write:
// the slot's page usually still holds other non-resident entries and is
// therefore protected, and a poisoning hiccup must not fail the caller.
func (t *Table) poisonLocked(i int32) {
	e := t.rows[i]
	if e.Size <= 0 {
		return
	}
	buf := make([]byte, e.Size)
	for k := range buf {
		buf[k] = rebindPoison
	}
	_ = t.space.WriteRaw(e.Addr, buf)
}

// Invalidate drops every table entry and closes all open areas, matching
// the end-of-session invalidation (§3.4). The underlying cache pages are
// invalidated by the caller through vmem.
func (t *Table) Invalidate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reset()
}

// DemoteAll is the warm-cache alternative to Invalidate: every resident
// row becomes stale (non-resident, bytes kept on the page as the
// revalidation baseline) and all open areas close, so no future entry can
// land on a page whose bytes must stay frozen. Rows that never became
// resident are untouched — they stay plain wants. The caller re-protects
// the cache pages through vmem.DemoteCache.
func (t *Table) DemoteAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, i := range t.byAddr {
		if t.rows[i].Resident {
			t.rows[i].Resident = false
			t.rows[i].Stale = true
		}
	}
	for _, a := range t.areas {
		a.size = 0
		a.off = 0
	}
}

// ClearStale strips the stale mark from the given long pointers, turning
// them back into plain non-resident wants that the next fault fetches in
// full. The revalidation path degrades through it when a Validate exchange
// fails: correctness never depends on a warm baseline.
func (t *Table) ClearStale(lps []wire.LongPtr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, lp := range lps {
		if i, ok := t.byLP[lp]; ok {
			t.rows[i].Stale = false
		}
	}
}

// StaleWants returns the long pointers of stale entries originating from
// origin on pages other than excludePN, in (page, offset) order, stopping
// once their accumulated canonical sizes would exceed budget bytes. It
// mirrors OutstandingWants for the revalidation path: every selected
// entry's page is certain to fault on first touch, so offering its tuple
// on the current Validate message trades a guaranteed future round-trip
// for a few tuple bytes now.
func (t *Table) StaleWants(origin uint32, excludePN uint32, budget int) ([]wire.LongPtr, int) {
	if budget <= 0 {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var pages []uint32
	for pn, idxs := range t.byPage {
		if pn == excludePN {
			continue
		}
		for _, i := range idxs {
			if t.rows[i].Stale && t.rows[i].LP.Space == origin {
				pages = append(pages, pn)
				break
			}
		}
	}
	if len(pages) == 0 {
		return nil, 0
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	var out []wire.LongPtr
	left := budget
	for _, pn := range pages {
		for _, i := range t.byPage[pn] {
			e := &t.rows[i]
			if !e.Stale || e.LP.Space != origin {
				continue
			}
			size := e.Size
			if rv, err := t.res.Resolve(e.LP.Type); err == nil {
				size = rv.Canon
			}
			if size > left {
				return out, budget - left
			}
			left -= size
			out = append(out, e.LP)
		}
	}
	return out, budget - left
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

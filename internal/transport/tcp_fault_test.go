package transport

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"smartrpc/internal/wire"
)

// These tests cover the TCP transport's failure edges: write errors
// mid-frame, truncated frames on the read side, and Close racing
// in-flight sends. The invariant throughout: a connection that has
// failed is torn down completely, and the node stays usable — the next
// Send redials on a clean stream.

// failAfterWriter accepts the first allow bytes, then fails every write.
// allow = 0 models an immediately dead socket; allow > 0 models a
// connection that dies mid-frame, leaving a partial frame behind.
type failAfterWriter struct {
	allow int
	wrote int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.wrote >= w.allow {
		return 0, errors.New("injected write failure")
	}
	n := w.allow - w.wrote
	if n > len(p) {
		n = len(p)
	}
	w.wrote += n
	return n, errors.New("injected write failure")
}

// breakWriteSide swaps node n's buffered writer to peer for one backed
// by w, simulating a socket whose write side has died without the node
// having noticed yet (the real conn stays in place so teardown has
// something to close).
func breakWriteSide(t *testing.T, n *TCPNode, peer uint32, w io.Writer) {
	t.Helper()
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.conns[peer]; !ok {
		t.Fatalf("no established connection to space %d", peer)
	}
	n.bufs[peer] = bufio.NewWriter(w)
}

func tcpPair(t *testing.T) (a, b *TCPNode) {
	t.Helper()
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b, err = ListenTCP(2, "127.0.0.1:0", map[uint32]string{1: a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return a, b
}

// establish pushes one frame b→a so both sides hold a live connection.
func establish(t *testing.T, a, b *TCPNode) {
	t.Helper()
	if err := b.Send(wire.Message{Kind: wire.KindFetch, To: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPSendErrorRedialsOnce(t *testing.T) {
	a, b := tcpPair(t)
	establish(t, a, b)

	// The established connection's write side is dead, but the node has
	// not noticed. Send's first attempt fails mid-frame and tears the
	// connection down; its one transparent redial delivers the frame on a
	// fresh stream.
	breakWriteSide(t, b, 1, &failAfterWriter{})
	if err := b.Send(wire.Message{Kind: wire.KindCall, To: 1, Proc: "recovered"}); err != nil {
		t.Fatalf("Send over dead socket did not recover via redial: %v", err)
	}
	got, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Proc != "recovered" {
		t.Errorf("received %q, want the redialed frame", got.Proc)
	}
	// The redial registered a fresh connection.
	b.mu.Lock()
	_, hasConn := b.conns[1]
	_, hasBuf := b.bufs[1]
	b.mu.Unlock()
	if !hasConn || !hasBuf {
		t.Fatalf("redialed connection not registered (conn=%v buf=%v)", hasConn, hasBuf)
	}
}

func TestTCPSendFailsWhenRedialFails(t *testing.T) {
	a, b := tcpPair(t)
	establish(t, a, b)

	// Kill both the established stream and the peer's listener: the
	// retry's redial must fail too, and the error surfaces.
	_ = a.Close()
	breakWriteSide(t, b, 1, &failAfterWriter{})
	err := b.Send(wire.Message{Kind: wire.KindCall, To: 1, Proc: "doomed"})
	if err == nil {
		t.Fatal("Send succeeded with the peer gone")
	}
	// The failed connection must be gone from both maps: a half-written
	// frame means the stream can never carry another intact frame.
	b.mu.Lock()
	_, hasConn := b.conns[1]
	_, hasBuf := b.bufs[1]
	b.mu.Unlock()
	if hasConn || hasBuf {
		t.Fatalf("failed connection still registered (conn=%v buf=%v)", hasConn, hasBuf)
	}
}

func TestTCPShortWriteMidFrameRecovers(t *testing.T) {
	a, b := tcpPair(t)
	establish(t, a, b)

	// Die 10 bytes into the frame — header written, body truncated. The
	// teardown-and-redial must deliver the frame intact, not resume the
	// torn stream.
	breakWriteSide(t, b, 1, &failAfterWriter{allow: 10})
	if err := b.Send(wire.Message{Kind: wire.KindCall, To: 1, Proc: "whole", Payload: make([]byte, 256)}); err != nil {
		t.Fatalf("Send did not recover from a mid-frame write failure: %v", err)
	}
	got, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Proc != "whole" || len(got.Payload) != 256 {
		t.Errorf("received %q (%d payload bytes), want the intact 256-byte frame", got.Proc, len(got.Payload))
	}
}

func TestTCPAcceptorLearnsDialerAddress(t *testing.T) {
	// a's book is empty: it can only reach space 2 through the listen
	// address the handshake announced. After the established connection
	// dies under a's first write attempt, a's transparent redial must use
	// the learned address — the teardown asymmetry this closes is that
	// only the original dialer could ever reconnect.
	a, b := tcpPair(t)
	establish(t, a, b)

	a.mu.Lock()
	learned, ok := a.book[2]
	a.mu.Unlock()
	if !ok || learned != b.Addr() {
		t.Fatalf("acceptor learned address %q (ok=%v), want %q from the handshake", learned, ok, b.Addr())
	}

	breakWriteSide(t, a, 2, &failAfterWriter{})
	if err := a.Send(wire.Message{Kind: wire.KindReturn, To: 2, Proc: "dialback"}); err != nil {
		t.Fatalf("acceptor-side Send after teardown: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Proc != "dialback" || got.From != 1 {
		t.Errorf("received %+v, want the acceptor's dialback frame", got)
	}
}

func TestTCPHandshakeNeverOverridesBook(t *testing.T) {
	// An explicit book entry wins over the handshake announcement: a peer
	// cannot redirect an already-configured route.
	a, err := ListenTCP(1, "127.0.0.1:0", map[uint32]string{2: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b, err := ListenTCP(2, "127.0.0.1:0", map[uint32]string{1: a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	if err := b.Send(wire.Message{Kind: wire.KindFetch, To: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(); err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	addr := a.book[2]
	a.mu.Unlock()
	if addr != "127.0.0.1:1" {
		t.Errorf("book entry for space 2 = %q, handshake overrode the configured %q", addr, "127.0.0.1:1")
	}
}

func TestWriteFrameFlushPropagatesShortWrite(t *testing.T) {
	// An io.Writer that reports n < len(p) with a nil error violates the
	// io contract; bufio surfaces it as io.ErrShortWrite, and the frame
	// writer must pass that through rather than report success.
	short := writerFunc(func(p []byte) (int, error) { return len(p) / 2, nil })
	bw := bufio.NewWriter(short)
	m := wire.Message{Kind: wire.KindCall, To: 1, Payload: make([]byte, 128)}
	if err := writeFrameFlush(bw, &m); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("writeFrameFlush = %v, want io.ErrShortWrite", err)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestTCPTruncatedInboundFrameIsolatedToItsConnection(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// A raw peer handshakes, then sends half a frame and drops the
	// connection — the classic mid-frame network drop.
	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var frames bytes.Buffer
	hello := wire.Message{Kind: wire.KindInvalidateAck, From: 9, To: 1}
	if err := wire.WriteFrame(&frames, &hello); err != nil {
		t.Fatal(err)
	}
	partial := wire.Message{Kind: wire.KindCall, From: 9, To: 1, Proc: "lost", Payload: make([]byte, 512)}
	var pbuf bytes.Buffer
	if err := wire.WriteFrame(&pbuf, &partial); err != nil {
		t.Fatal(err)
	}
	frames.Write(pbuf.Bytes()[:pbuf.Len()/2])
	if _, err := conn.Write(frames.Bytes()); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()

	// The truncated frame must never surface, and the node must remain
	// fully usable for a well-behaved peer afterwards.
	b, err := ListenTCP(2, "127.0.0.1:0", map[uint32]string{1: a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Send(wire.Message{Kind: wire.KindCall, To: 1, Proc: "intact"}); err != nil {
		t.Fatal(err)
	}
	got, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Proc != "intact" || got.From != 2 {
		t.Fatalf("received %+v, want the intact frame from space 2", got)
	}
	// Nothing else (in particular no fragment of the truncated frame)
	// may be sitting in the inbox.
	select {
	case m := <-a.inbox:
		t.Fatalf("unexpected extra message %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestTCPConcurrentCloseVsInFlightSend(t *testing.T) {
	a, b := tcpPair(t)
	establish(t, a, b)

	// Drain a so b's sends never stall on a full inbox.
	go func() {
		for {
			if _, err := a.Recv(); err != nil {
				return
			}
		}
	}()

	const senders = 4
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; ; j++ {
				err := b.Send(wire.Message{Kind: wire.KindCall, To: 1, Seq: uint64(j)})
				if err != nil {
					// Once Close has won the race every send must keep
					// failing — the node never resurrects itself.
					if err2 := b.Send(wire.Message{Kind: wire.KindCall, To: 1}); err2 == nil {
						t.Error("Send succeeded after a post-close failure")
					}
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(20 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatalf("Close with sends in flight: %v", err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("senders did not observe the close within 5s")
	}
	if err := b.Send(wire.Message{Kind: wire.KindCall, To: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
}

// Package transport moves wire messages between address spaces.
//
// Two implementations are provided. The in-memory Network connects spaces
// within one process and charges every message to a netsim cost model,
// which is how the benchmark harness reproduces the paper's measurements
// deterministically. The TCP transport (tcp.go) connects real processes
// over the network, as the original system did between SPARCstations.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"smartrpc/internal/netsim"
	"smartrpc/internal/wire"
)

// ErrClosed is returned by operations on a closed node or network.
var ErrClosed = errors.New("transport: closed")

// Node is one address space's attachment to the network. Send routes by
// the message's To field; Recv blocks for the next inbound message and
// returns ErrClosed once the node is shut down.
type Node interface {
	// ID returns the attached space's identifier.
	ID() uint32
	// Send routes m to the space identified by m.To.
	Send(m wire.Message) error
	// Recv blocks until a message arrives or the node closes.
	Recv() (wire.Message, error)
	// Close detaches the node; pending and future Recv calls fail.
	Close() error
}

// inboxSize bounds per-node buffering. RPC sessions have a single active
// thread, so very few messages are ever in flight; the buffer absorbs
// acks and piggybacks without blocking senders.
const inboxSize = 256

// Network is an in-process message switch with deterministic cost
// accounting. It is safe for concurrent use.
type Network struct {
	model netsim.Model
	clock *netsim.Clock
	stats *netsim.Stats

	// delay is an optional real (wall-clock) per-message latency, in
	// nanoseconds. The virtual cost model measures modeled time; the delay
	// makes latency overlap physically observable, so wall-clock
	// experiments (e.g. the prefetch pipeline) can demonstrate round trips
	// actually hidden behind computation. Zero (the default) keeps
	// delivery instantaneous.
	//
	// The delay is per frame and pipelined, like a real link's propagation
	// time: Send stamps the frame's due time and returns immediately, and
	// a per-destination delivery goroutine releases frames into the inbox
	// in FIFO order as they come due. N back-to-back frames therefore
	// arrive ~delay after their sends, not N×delay — which is what lets a
	// streamed chunk sequence overlap its flight time with the receiver's
	// decode/install work.
	delay atomic.Int64

	mu     sync.Mutex
	nodes  map[uint32]*memNode
	closed bool
}

// SetLinkDelay installs a real per-frame delivery delay (see the delay
// field). It applies to messages sent after the call. Set it before
// traffic starts: frames sent with zero delay bypass the delay queue and
// can overtake frames still held in it.
func (n *Network) SetLinkDelay(d time.Duration) { n.delay.Store(int64(d)) }

// NewNetwork creates a network charging each message to model. A nil clock
// or stats allocates fresh ones.
func NewNetwork(model netsim.Model, clock *netsim.Clock, stats *netsim.Stats) (*Network, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		clock = &netsim.Clock{}
	}
	if stats == nil {
		stats = &netsim.Stats{}
	}
	return &Network{
		model: model,
		clock: clock,
		stats: stats,
		nodes: make(map[uint32]*memNode),
	}, nil
}

// Clock returns the network's virtual clock.
func (n *Network) Clock() *netsim.Clock { return n.clock }

// Stats returns the network's traffic counters.
func (n *Network) Stats() *netsim.Stats { return n.stats }

// Attach registers a space and returns its node.
func (n *Network) Attach(id uint32) (Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.nodes[id]; ok {
		return nil, fmt.Errorf("transport: space %d already attached", id)
	}
	node := &memNode{
		id:    id,
		net:   n,
		inbox: make(chan wire.Message, inboxSize),
		done:  make(chan struct{}),
	}
	n.nodes[id] = node
	return node, nil
}

// Close shuts the network and every attached node down.
func (n *Network) Close() error {
	n.mu.Lock()
	nodes := make([]*memNode, 0, len(n.nodes))
	for _, node := range n.nodes {
		nodes = append(nodes, node)
	}
	n.closed = true
	n.mu.Unlock()
	for _, node := range nodes {
		_ = node.Close()
	}
	return nil
}

// route delivers m to its destination, charging the cost model.
func (n *Network) route(m wire.Message) error {
	n.mu.Lock()
	dst, ok := n.nodes[m.To]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("transport: no route to space %d", m.To)
	}
	size := m.WireSize()
	n.clock.Advance(n.model.Cost(size))
	n.stats.RecordKind(uint32(m.Kind), size)
	if d := n.delay.Load(); d > 0 {
		// Hand the frame to the destination's delay line. Like a real
		// NIC, the send completes once the frame is on the wire; a
		// destination that closes mid-flight just drops it.
		dst.enqueueDelayed(m, time.Now().Add(time.Duration(d)))
		return nil
	}
	select {
	case dst.inbox <- m:
		return nil
	case <-dst.done:
		return fmt.Errorf("transport: space %d: %w", m.To, ErrClosed)
	}
}

// memNode is the in-memory Node implementation.
type memNode struct {
	id    uint32
	net   *Network
	inbox chan wire.Message

	// The delay line: frames waiting out the configured link delay, in
	// FIFO order by due time (stamped from a monotonic clock at send, so
	// arrival order equals send order). delayLoop starts lazily on the
	// first delayed frame and releases frames into the inbox as they come
	// due.
	delayMu   sync.Mutex
	delayQ    []delayedFrame
	delayWake chan struct{}
	delayOnce sync.Once

	closeOnce sync.Once
	done      chan struct{}
}

// delayedFrame is one frame in a node's delay line.
type delayedFrame struct {
	m   wire.Message
	due time.Time
}

// enqueueDelayed appends a frame to the node's delay line, starting the
// delivery goroutine on first use.
func (n *memNode) enqueueDelayed(m wire.Message, due time.Time) {
	n.delayOnce.Do(func() {
		n.delayWake = make(chan struct{}, 1)
		go n.delayLoop()
	})
	n.delayMu.Lock()
	n.delayQ = append(n.delayQ, delayedFrame{m: m, due: due})
	n.delayMu.Unlock()
	select {
	case n.delayWake <- struct{}{}:
	default:
	}
}

// delayLoop releases delayed frames into the inbox in FIFO order as they
// come due, until the node closes.
func (n *memNode) delayLoop() {
	for {
		n.delayMu.Lock()
		if len(n.delayQ) == 0 {
			n.delayMu.Unlock()
			select {
			case <-n.delayWake:
				continue
			case <-n.done:
				return
			}
		}
		f := n.delayQ[0]
		n.delayQ = n.delayQ[1:]
		n.delayMu.Unlock()
		if wait := time.Until(f.due); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-n.done:
				timer.Stop()
				return
			}
		}
		select {
		case n.inbox <- f.m:
		case <-n.done:
			return
		}
	}
}

var _ Node = (*memNode)(nil)

func (n *memNode) ID() uint32 { return n.id }

func (n *memNode) Send(m wire.Message) error {
	select {
	case <-n.done:
		return ErrClosed
	default:
	}
	m.From = n.id
	return n.net.route(m)
}

func (n *memNode) Recv() (wire.Message, error) {
	select {
	case m := <-n.inbox:
		return m, nil
	case <-n.done:
		// Drain anything that raced with Close so shutdown is orderly.
		select {
		case m := <-n.inbox:
			return m, nil
		default:
			return wire.Message{}, ErrClosed
		}
	}
}

func (n *memNode) Close() error {
	n.closeOnce.Do(func() {
		close(n.done)
		n.net.mu.Lock()
		delete(n.net.nodes, n.id)
		n.net.mu.Unlock()
	})
	return nil
}

package transport

import (
	"bufio"
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"smartrpc/internal/netsim"
	"smartrpc/internal/wire"
)

func newTestNetwork(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestNetworkSendRecv(t *testing.T) {
	net := newTestNetwork(t)
	a, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	msg := wire.Message{Kind: wire.KindCall, To: 2, Proc: "p", Payload: []byte{1}}
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 1 || got.Proc != "p" {
		t.Errorf("received %+v", got)
	}
}

func TestNetworkSendStampsFrom(t *testing.T) {
	net := newTestNetwork(t)
	a, _ := net.Attach(7)
	b, _ := net.Attach(8)
	_ = a.Send(wire.Message{Kind: wire.KindFetch, To: 8, From: 999})
	got, _ := b.Recv()
	if got.From != 7 {
		t.Errorf("From = %d, want sender id 7", got.From)
	}
}

func TestNetworkNoRoute(t *testing.T) {
	net := newTestNetwork(t)
	a, _ := net.Attach(1)
	if err := a.Send(wire.Message{Kind: wire.KindCall, To: 99}); err == nil {
		t.Error("send to unattached space succeeded")
	}
}

func TestNetworkDuplicateAttach(t *testing.T) {
	net := newTestNetwork(t)
	if _, err := net.Attach(1); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach(1); err == nil {
		t.Error("duplicate attach succeeded")
	}
}

func TestNetworkCostAccounting(t *testing.T) {
	model := netsim.Model{PerMessage: time.Millisecond, BytesPerSecond: 1e6}
	clock := &netsim.Clock{}
	stats := &netsim.Stats{}
	net, err := NewNetwork(model, clock, stats)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	a, _ := net.Attach(1)
	b, _ := net.Attach(2)
	msg := wire.Message{Kind: wire.KindCall, To: 2, Payload: make([]byte, 1000)}
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if stats.Messages() != 1 {
		t.Errorf("messages = %d", stats.Messages())
	}
	wantBytes := uint64(msg.WireSize())
	if stats.Bytes() != wantBytes {
		t.Errorf("bytes = %d, want %d", stats.Bytes(), wantBytes)
	}
	if clock.Now() < time.Millisecond {
		t.Errorf("clock = %v, want >= 1ms", clock.Now())
	}
}

func TestNetworkRejectsInvalidModel(t *testing.T) {
	if _, err := NewNetwork(netsim.Model{PerMessage: -1}, nil, nil); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestNodeCloseUnblocksRecv(t *testing.T) {
	net := newTestNetwork(t)
	a, _ := net.Attach(1)
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after close = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestSendAfterClose(t *testing.T) {
	net := newTestNetwork(t)
	a, _ := net.Attach(1)
	_, _ = net.Attach(2)
	_ = a.Close()
	if err := a.Send(wire.Message{To: 2}); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close = %v, want ErrClosed", err)
	}
}

func TestNetworkCloseAll(t *testing.T) {
	net := newTestNetwork(t)
	a, _ := net.Attach(1)
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach(3); !errors.Is(err, ErrClosed) {
		t.Errorf("attach after close = %v", err)
	}
	if _, err := a.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("recv after network close = %v", err)
	}
}

func TestNetworkConcurrentTraffic(t *testing.T) {
	net := newTestNetwork(t)
	const peers = 8
	nodes := make([]Node, peers)
	for i := range nodes {
		var err error
		nodes[i], err = net.Attach(uint32(i + 1))
		if err != nil {
			t.Fatal(err)
		}
	}
	const msgsPerPeer = 50
	var wg sync.WaitGroup
	// Every node sends to its right neighbor; every node receives its quota.
	for i := 0; i < peers; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			dst := uint32((i+1)%peers + 1)
			for j := 0; j < msgsPerPeer; j++ {
				if err := nodes[i].Send(wire.Message{Kind: wire.KindFetch, To: dst}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < msgsPerPeer; j++ {
				if _, err := nodes[i].Recv(); err != nil {
					t.Errorf("recv: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := net.Stats().Messages(); got != peers*msgsPerPeer {
		t.Errorf("messages = %d, want %d", got, peers*msgsPerPeer)
	}
}

func TestNetworkPerKindAccounting(t *testing.T) {
	stats := &netsim.Stats{}
	net, err := NewNetwork(netsim.Model{}, nil, stats)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	a, _ := net.Attach(1)
	b, _ := net.Attach(2)
	call := wire.Message{Kind: wire.KindCall, To: 2, Payload: make([]byte, 100)}
	fetch := wire.Message{Kind: wire.KindFetch, To: 2, Payload: make([]byte, 40)}
	for _, m := range []wire.Message{call, fetch, fetch} {
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if got := stats.KindMessages(uint32(wire.KindCall)); got != 1 {
		t.Errorf("call messages = %d, want 1", got)
	}
	if got := stats.KindBytes(uint32(wire.KindCall)); got != uint64(call.WireSize()) {
		t.Errorf("call bytes = %d, want %d", got, call.WireSize())
	}
	if got := stats.KindMessages(uint32(wire.KindFetch)); got != 2 {
		t.Errorf("fetch messages = %d, want 2", got)
	}
	if got := stats.KindBytes(uint32(wire.KindFetch)); got != 2*uint64(fetch.WireSize()) {
		t.Errorf("fetch bytes = %d, want %d", got, 2*fetch.WireSize())
	}
	// The per-kind breakdown supplements the totals; it must not skew them.
	if got := stats.Messages(); got != 3 {
		t.Errorf("total messages = %d, want 3", got)
	}
	wantTotal := uint64(call.WireSize()) + 2*uint64(fetch.WireSize())
	if got := stats.Bytes(); got != wantTotal {
		t.Errorf("total bytes = %d, want %d", got, wantTotal)
	}
}

// --- TCP transport ---

// countingWriter counts the Write calls that reach the "socket".
type countingWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

func TestTCPWritePathOneWritePerFrame(t *testing.T) {
	var cw countingWriter
	bw := bufio.NewWriter(&cw)
	msgs := []wire.Message{
		{Kind: wire.KindCall, From: 1, To: 2, Proc: "p", Payload: make([]byte, 512)},
		{Kind: wire.KindReturn, From: 2, To: 1, Payload: []byte{7}},
	}
	for i, m := range msgs {
		before := cw.writes
		if err := writeFrameFlush(bw, &m); err != nil {
			t.Fatal(err)
		}
		// Header and body must leave in a single write (the point of the
		// buffered writer: one syscall per frame instead of two).
		if got := cw.writes - before; got != 1 {
			t.Errorf("frame %d reached the connection in %d writes, want 1", i, got)
		}
	}
	for i := range msgs {
		got, err := wire.ReadFrame(&cw.buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != msgs[i].Kind || got.From != msgs[i].From || len(got.Payload) != len(msgs[i].Payload) {
			t.Errorf("frame %d round-trip = %+v", i, got)
		}
	}
	if cw.buf.Len() != 0 {
		t.Errorf("%d trailing bytes after reading all frames", cw.buf.Len())
	}
}

func TestTCPLargeFrame(t *testing.T) {
	// A frame bigger than the bufio buffer must still arrive intact.
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", map[uint32]string{1: a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := b.Send(wire.Message{Kind: wire.KindFetchReply, To: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	got, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Error("large payload corrupted in transit")
	}
}

func TestTCPSendRecv(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	book := map[uint32]string{1: a.Addr()}
	b, err := ListenTCP(2, "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	msg := wire.Message{Kind: wire.KindCall, To: 1, Proc: "hello", Payload: []byte{1, 2, 3}}
	if err := b.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 2 || got.Proc != "hello" || len(got.Payload) != 3 {
		t.Errorf("received %+v", got)
	}
}

func TestTCPBidirectionalReuse(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", map[uint32]string{1: a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// b dials a; a replies over the same connection (a has no book entry
	// for b, so reuse is the only way the reply can arrive).
	if err := b.Send(wire.Message{Kind: wire.KindFetch, To: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(wire.Message{Kind: wire.KindFetchReply, To: 2, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != wire.KindFetchReply || got.From != 1 {
		t.Errorf("reply = %+v", got)
	}
}

func TestTCPManyMessages(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(2, "127.0.0.1:0", map[uint32]string{1: a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			_ = b.Send(wire.Message{Kind: wire.KindCall, To: 1, Seq: uint64(i)})
		}
	}()
	for i := 0; i < n; i++ {
		got, err := a.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != uint64(i) {
			t.Fatalf("out of order: got seq %d at %d", got.Seq, i)
		}
	}
}

func TestTCPNoAddress(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(wire.Message{To: 42}); err == nil {
		t.Error("send without address book entry succeeded")
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Recv = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
	// Close is idempotent.
	if err := a.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

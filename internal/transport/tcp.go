package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"smartrpc/internal/wire"
)

// TCPNode is a Node implementation over real TCP connections, one listener
// per address space plus on-demand dials to peers, mirroring the paper's
// deployment (TCP with TCP_NODELAY between workstations).
//
// Peers are located through a static address book: space ID → host:port.
// Connections carry a one-frame handshake identifying the dialer so each
// side can route replies.
type TCPNode struct {
	id       uint32
	listener net.Listener
	book     map[uint32]string

	mu    sync.Mutex
	conns map[uint32]net.Conn
	// bufs buffers each connection's write side so a frame's header and
	// body leave in one syscall instead of two; Send flushes per frame,
	// so nothing lingers (the sockets run TCP_NODELAY, and a half-sent
	// frame would stall the peer's reader).
	bufs   map[uint32]*bufio.Writer
	closed bool

	inbox chan wire.Message
	done  chan struct{}
	wg    sync.WaitGroup
}

var _ Node = (*TCPNode)(nil)

// ListenTCP starts a node for space id on addr ("host:port", ":0" for an
// ephemeral port). book maps peer space IDs to their listen addresses; it
// may omit this node's own entry.
func ListenTCP(id uint32, addr string, book map[uint32]string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:       id,
		listener: ln,
		book:     make(map[uint32]string, len(book)),
		conns:    make(map[uint32]net.Conn),
		bufs:     make(map[uint32]*bufio.Writer),
		inbox:    make(chan wire.Message, inboxSize),
		done:     make(chan struct{}),
	}
	for k, v := range book {
		n.book[k] = v
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address (useful with ":0").
func (n *TCPNode) Addr() string { return n.listener.Addr().String() }

// ID returns the attached space's identifier.
func (n *TCPNode) ID() uint32 { return n.id }

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		// Handshake: peer announces its space ID in frame zero.
		hello, err := wire.ReadFrame(conn)
		if err != nil {
			_ = conn.Close()
			continue
		}
		peer := hello.From
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		// Learn the dialer's listen address from the handshake so this
		// side can dial back after a teardown. Without it, a book that
		// omits the peer (the common case for the accepting side) leaves
		// reconnection possible in one direction only: the dialer redials
		// a dead connection fine, while the acceptor's next Send fails
		// with "no address". An explicit book entry always wins — the
		// handshake can fill a hole, never override configuration.
		if _, ok := n.book[peer]; !ok {
			if addr := string(hello.Payload); addr != "" {
				n.book[peer] = addr
			}
		}
		if old, ok := n.conns[peer]; ok {
			_ = old.Close()
		}
		n.conns[peer] = conn
		n.bufs[peer] = bufio.NewWriter(conn)
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(peer, conn)
	}
}

func (n *TCPNode) readLoop(peer uint32, conn net.Conn) {
	defer n.wg.Done()
	for {
		m, err := wire.ReadFrame(conn)
		if err != nil {
			n.mu.Lock()
			if n.conns[peer] == conn {
				delete(n.conns, peer)
				delete(n.bufs, peer)
			}
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		select {
		case n.inbox <- m:
		case <-n.done:
			_ = conn.Close()
			return
		}
	}
}

// connTo returns (dialing if necessary) the connection to peer.
func (n *TCPNode) connTo(peer uint32) (net.Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := n.conns[peer]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.book[peer]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no address for space %d", peer)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial space %d at %s: %w", peer, addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// The paper sets TCP_NODELAY so small packets go out immediately.
		_ = tc.SetNoDelay(true)
	}
	bw := bufio.NewWriter(conn)
	// The handshake announces this node's space ID and its listen
	// address, so the acceptor can dial back after either side tears the
	// connection down (see acceptLoop). Old peers ignore the payload.
	hello := wire.Message{Kind: wire.KindInvalidateAck, From: n.id, To: peer,
		Payload: []byte(n.listener.Addr().String())}
	if err := writeFrameFlush(bw, &hello); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: handshake with space %d: %w", peer, err)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := n.conns[peer]; ok {
		// Lost a dial race; use the established connection.
		n.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	n.conns[peer] = conn
	n.bufs[peer] = bw
	n.mu.Unlock()
	n.wg.Add(1)
	go n.readLoop(peer, conn)
	return conn, nil
}

// writeFrameFlush writes one frame into bw and flushes it, so the header
// and body reach the socket in a single write.
func writeFrameFlush(bw *bufio.Writer, m *wire.Message) error {
	if err := wire.WriteFrame(bw, m); err != nil {
		return err
	}
	return bw.Flush()
}

// Send routes m to the space identified by m.To, transparently redialing
// once when the connection fails under the frame: a mid-frame write
// error forces a teardown either way (the stream is no longer
// frame-aligned), and a single fresh dial hides the common case of a
// connection that idled out or was torn down by the peer between
// exchanges. The pooled frame is released only after the final attempt,
// since a retry re-serializes the payload.
func (n *TCPNode) Send(m wire.Message) error {
	m.From = n.id
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		if err = n.sendOnce(&m); err == nil || errors.Is(err, ErrClosed) {
			break
		}
	}
	m.ReleaseFrame()
	if err != nil {
		return fmt.Errorf("transport: send to space %d: %w", m.To, err)
	}
	return nil
}

// sendOnce performs one connect-and-write attempt, tearing the
// connection down on a write failure.
func (n *TCPNode) sendOnce(m *wire.Message) error {
	if _, err := n.connTo(m.To); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	bw, ok := n.bufs[m.To]
	if !ok {
		// The connection dropped between connTo and the send.
		return errors.New("connection lost before write")
	}
	if err := writeFrameFlush(bw, m); err != nil {
		// A failed (possibly partial) write leaves the stream mid-frame:
		// the peer's reader and this writer no longer agree on frame
		// boundaries, so every later frame on this connection would be
		// garbage. Tear it down; the retry (or the next Send) redials
		// cleanly.
		if c, ok := n.conns[m.To]; ok {
			_ = c.Close()
			delete(n.conns, m.To)
			delete(n.bufs, m.To)
		}
		return err
	}
	return nil
}

// Recv blocks until a message arrives or the node closes.
func (n *TCPNode) Recv() (wire.Message, error) {
	select {
	case m := <-n.inbox:
		return m, nil
	case <-n.done:
		select {
		case m := <-n.inbox:
			return m, nil
		default:
			return wire.Message{}, ErrClosed
		}
	}
}

// Close shuts the node down and waits for its goroutines to exit.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]net.Conn, 0, len(n.conns))
	for _, c := range n.conns {
		conns = append(conns, c)
	}
	n.conns = make(map[uint32]net.Conn)
	n.bufs = make(map[uint32]*bufio.Writer)
	n.mu.Unlock()
	close(n.done)
	_ = n.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	n.wg.Wait()
	return nil
}

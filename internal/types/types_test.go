package types

import (
	"errors"
	"testing"
	"testing/quick"

	"smartrpc/internal/arch"
)

// treeNode builds the paper's experimental node type: two pointers and
// 8 bytes of data (16 bytes total on a 32-bit machine).
func treeNode() *Desc {
	return &Desc{
		ID:   1,
		Name: "TreeNode",
		Fields: []Field{
			{Name: "left", Kind: Ptr, Elem: 1},
			{Name: "right", Kind: Ptr, Elem: 1},
			{Name: "data", Kind: Int64},
		},
	}
}

func TestPaperNodeIs16BytesOnSPARC(t *testing.T) {
	l := LayoutOf(treeNode(), arch.SPARC32())
	if l.Size != 16 {
		t.Errorf("TreeNode size on sparc32 = %d, want 16 (paper: 16-byte nodes)", l.Size)
	}
	if got := len(l.PtrOffsets); got != 2 {
		t.Errorf("pointer words = %d, want 2", got)
	}
	if l.PtrOffsets[0] != 0 || l.PtrOffsets[1] != 4 {
		t.Errorf("pointer offsets = %v, want [0 4]", l.PtrOffsets)
	}
	if l.Fields[2].Offset != 8 {
		t.Errorf("data offset = %d, want 8", l.Fields[2].Offset)
	}
}

func TestLayoutDiffersAcrossArchitectures(t *testing.T) {
	d := treeNode()
	sparc := LayoutOf(d, arch.SPARC32())
	alpha := LayoutOf(d, arch.Alpha64())
	if sparc.Size == alpha.Size {
		t.Errorf("heterogeneity lost: sparc size %d == alpha size %d", sparc.Size, alpha.Size)
	}
	if alpha.Size != 24 {
		t.Errorf("TreeNode on alpha64 = %d bytes, want 24 (two 8-byte ptrs + int64)", alpha.Size)
	}
}

func TestLayoutPacksUnderMaxAlign(t *testing.T) {
	d := &Desc{
		ID:   7,
		Name: "Packed",
		Fields: []Field{
			{Name: "b", Kind: Uint8},
			{Name: "x", Kind: Int64},
		},
	}
	m68k := LayoutOf(d, arch.M68K32())
	if m68k.Fields[1].Offset != 2 {
		t.Errorf("m68k int64 offset = %d, want 2 (MaxAlign 2)", m68k.Fields[1].Offset)
	}
	sparc := LayoutOf(d, arch.SPARC32())
	if sparc.Fields[1].Offset != 8 {
		t.Errorf("sparc int64 offset = %d, want 8", sparc.Fields[1].Offset)
	}
}

func TestLayoutArrayFields(t *testing.T) {
	d := &Desc{
		ID:   3,
		Name: "Blob",
		Fields: []Field{
			{Name: "hdr", Kind: Uint32},
			{Name: "ptrs", Kind: Ptr, Elem: 3, Count: 4},
			{Name: "pay", Kind: Uint8, Count: 5},
		},
	}
	l := LayoutOf(d, arch.SPARC32())
	if len(l.PtrOffsets) != 4 {
		t.Fatalf("array of 4 pointers yields %d pointer offsets", len(l.PtrOffsets))
	}
	want := []int{4, 8, 12, 16}
	for i, off := range l.PtrOffsets {
		if off != want[i] {
			t.Errorf("PtrOffsets[%d] = %d, want %d", i, off, want[i])
		}
	}
	if l.Size != 28 {
		t.Errorf("Blob size = %d, want 28", l.Size)
	}
}

func TestCanonicalSize(t *testing.T) {
	// Two pointers (12 bytes each as long pointers) + int64 (8).
	if got := treeNode().CanonicalSize(); got != 32 {
		t.Errorf("canonical size = %d, want 32", got)
	}
}

func TestDescValidate(t *testing.T) {
	cases := []struct {
		name string
		d    Desc
	}{
		{"zero id", Desc{Name: "x", Fields: []Field{{Name: "a", Kind: Int32}}}},
		{"empty name", Desc{ID: 1, Fields: []Field{{Name: "a", Kind: Int32}}}},
		{"no fields", Desc{ID: 1, Name: "x"}},
		{"dup field", Desc{ID: 1, Name: "x", Fields: []Field{{Name: "a", Kind: Int32}, {Name: "a", Kind: Int32}}}},
		{"bad kind", Desc{ID: 1, Name: "x", Fields: []Field{{Name: "a", Kind: Kind(99)}}}},
		{"ptr without elem", Desc{ID: 1, Name: "x", Fields: []Field{{Name: "a", Kind: Ptr}}}},
		{"negative count", Desc{ID: 1, Name: "x", Fields: []Field{{Name: "a", Kind: Int32, Count: -1}}}},
	}
	for _, tc := range cases {
		if err := tc.d.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(treeNode()); err != nil {
		t.Fatal(err)
	}
	d, err := r.Lookup(1)
	if err != nil || d.Name != "TreeNode" {
		t.Fatalf("Lookup(1) = %v, %v", d, err)
	}
	d, err = r.LookupName("TreeNode")
	if err != nil || d.ID != 1 {
		t.Fatalf("LookupName = %v, %v", d, err)
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(treeNode()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(treeNode()); err == nil {
		t.Error("duplicate ID accepted")
	}
	other := treeNode()
	other.ID = 2
	if err := r.Register(other); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestRegistryUnknownLookup(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Lookup(42); !errors.Is(err, ErrUnknownType) {
		t.Errorf("Lookup(42) err = %v, want ErrUnknownType", err)
	}
	if _, err := r.LookupName("nope"); !errors.Is(err, ErrUnknownType) {
		t.Errorf("LookupName err = %v, want ErrUnknownType", err)
	}
}

func TestRegistryValidateDanglingPtr(t *testing.T) {
	r := NewRegistry()
	d := &Desc{ID: 1, Name: "A", Fields: []Field{{Name: "p", Kind: Ptr, Elem: 99}}}
	if err := r.Register(d); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); !errors.Is(err, ErrUnknownType) {
		t.Errorf("Validate err = %v, want ErrUnknownType", err)
	}
}

func TestRegistryValidateMutualRecursion(t *testing.T) {
	r := NewRegistry()
	a := &Desc{ID: 1, Name: "A", Fields: []Field{{Name: "b", Kind: Ptr, Elem: 2}}}
	b := &Desc{ID: 2, Name: "B", Fields: []Field{{Name: "a", Kind: Ptr, Elem: 1}}}
	if err := r.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(b); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("mutually recursive schema rejected: %v", err)
	}
}

func TestRegistryLayoutCaching(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(treeNode()); err != nil {
		t.Fatal(err)
	}
	l1, err := r.Layout(1, arch.SPARC32())
	if err != nil {
		t.Fatal(err)
	}
	l2, err := r.Layout(1, arch.SPARC32())
	if err != nil {
		t.Fatal(err)
	}
	if l1.Size != l2.Size || l1.Size != 16 {
		t.Errorf("cached layout mismatch: %d vs %d", l1.Size, l2.Size)
	}
	if _, err := r.Layout(9, arch.SPARC32()); err == nil {
		t.Error("Layout of unknown type succeeded")
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	for i, n := range []string{"zebra", "alpha", "mid"} {
		d := &Desc{ID: ID(i + 1), Name: n, Fields: []Field{{Name: "x", Kind: Int32}}}
		if err := r.Register(d); err != nil {
			t.Fatal(err)
		}
	}
	names := r.Names()
	want := []string{"alpha", "mid", "zebra"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestRegistryMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister did not panic on invalid descriptor")
		}
	}()
	NewRegistry().MustRegister(&Desc{})
}

// Property: field offsets are monotonically non-decreasing, aligned, and
// inside the object, for arbitrary small schemas under every profile.
func TestQuickLayoutInvariants(t *testing.T) {
	profiles := []arch.Profile{arch.SPARC32(), arch.Alpha64(), arch.M68K32()}
	kinds := []Kind{Int8, Uint8, Int16, Uint16, Int32, Uint32, Int64, Uint64, Float32, Float64, Bool, Ptr}
	f := func(seed []byte) bool {
		if len(seed) == 0 {
			return true
		}
		d := &Desc{ID: 1, Name: "T"}
		for i, b := range seed {
			if i >= 12 {
				break
			}
			k := kinds[int(b)%len(kinds)]
			fld := Field{Name: string(rune('a' + i)), Kind: k, Count: int(b>>4)%3 + 1}
			if k == Ptr {
				fld.Elem = 1
			}
			d.Fields = append(d.Fields, fld)
		}
		for _, p := range profiles {
			l := LayoutOf(d, p)
			prevEnd := 0
			for i, fl := range l.Fields {
				if fl.Offset < prevEnd {
					return false
				}
				if fl.Offset%memAlign(d.Fields[i].Kind, p) != 0 {
					return false
				}
				prevEnd = fl.Offset + fl.ElemSize*d.Fields[i].elems()
			}
			if prevEnd > l.Size || l.Size%l.Align != 0 {
				return false
			}
			for _, po := range l.PtrOffsets {
				if po < 0 || po+p.PointerSize > l.Size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCanonicalFieldOffsets(t *testing.T) {
	d := treeNode() // ptr, ptr, int64
	if got := d.CanonicalFieldOffset(0); got != 0 {
		t.Errorf("offset(left) = %d", got)
	}
	if got := d.CanonicalFieldOffset(1); got != 12 {
		t.Errorf("offset(right) = %d, want 12 (one long pointer)", got)
	}
	if got := d.CanonicalFieldOffset(2); got != 24 {
		t.Errorf("offset(data) = %d, want 24", got)
	}
	if got := CanonicalElemSize(Ptr); got != 12 {
		t.Errorf("CanonicalElemSize(Ptr) = %d", got)
	}
	if got := CanonicalElemSize(Int16); got != 4 {
		t.Errorf("CanonicalElemSize(Int16) = %d (XDR widens to a word)", got)
	}
}

func TestCanonicalOffsetsConsistentWithSize(t *testing.T) {
	d := &Desc{
		ID: 4, Name: "Mix",
		Fields: []Field{
			{Name: "a", Kind: Uint8, Count: 5},
			{Name: "b", Kind: Float64},
			{Name: "c", Kind: Ptr, Elem: 4, Count: 2},
		},
	}
	// Last field offset + its canonical extent == CanonicalSize.
	last := d.CanonicalFieldOffset(2) + 2*CanonicalElemSize(Ptr)
	if last != d.CanonicalSize() {
		t.Errorf("offset arithmetic inconsistent: %d vs %d", last, d.CanonicalSize())
	}
}

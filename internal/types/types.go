// Package types implements the data-type specifier database of the paper.
//
// A long pointer carries a data-type ID; the runtime resolves it against a
// type database (the paper assumes "a database that serves as a network
// name server") to learn the actual structure of the referenced data. The
// descriptor both drives canonical (XDR) conversion between heterogeneous
// architectures and tells the swizzler which words of an object hold
// pointers.
package types

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"smartrpc/internal/arch"
)

// ID identifies a data type across the whole distributed system.
type ID uint32

// Kind enumerates the scalar field kinds a descriptor can contain.
type Kind int

// Field kinds. Ptr is the reason this package exists: a Ptr field stores an
// ordinary pointer in memory and travels as a long pointer on the wire.
const (
	Int8 Kind = iota + 1
	Uint8
	Int16
	Uint16
	Int32
	Uint32
	Int64
	Uint64
	Float32
	Float64
	Bool
	Ptr
	// Func is a remote function pointer: a capability naming a procedure
	// registered in some address space. The paper lists function pointers
	// as an open limitation (§6, citing Ohori & Kato's stub method); this
	// implementation supports them as first-class argument values, though
	// not as struct fields (data pages hold no code).
	Func
)

var kindNames = map[Kind]string{
	Int8: "int8", Uint8: "uint8", Int16: "int16", Uint16: "uint16",
	Int32: "int32", Uint32: "uint32", Int64: "int64", Uint64: "uint64",
	Float32: "float32", Float64: "float64", Bool: "bool", Ptr: "ptr",
	Func: "func",
}

// String returns the IDL name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// canonicalSize returns the XDR-encoded size of one element of kind k.
// XDR encodes everything 4-byte aligned; 8-bit and 16-bit quantities occupy
// a full word, hypers and doubles two. Pointers travel as long pointers
// (space, address, type), three words.
func canonicalSize(k Kind) int {
	switch k {
	case Int64, Uint64, Float64:
		return 8
	case Ptr:
		return 12
	default:
		return 4
	}
}

// memSize returns the in-memory size of one element of kind k under p.
func memSize(k Kind, p arch.Profile) int {
	switch k {
	case Int8, Uint8, Bool:
		return 1
	case Int16, Uint16:
		return 2
	case Int32, Uint32, Float32:
		return 4
	case Int64, Uint64, Float64:
		return 8
	case Ptr:
		return p.PointerSize
	default:
		return 0
	}
}

// memAlign returns the in-memory alignment of kind k under p.
func memAlign(k Kind, p arch.Profile) int {
	a := memSize(k, p)
	if k == Ptr {
		a = p.PointerAlign
	}
	if a > p.MaxAlign {
		a = p.MaxAlign
	}
	if a < 1 {
		a = 1
	}
	return a
}

// Field describes one member of a structured type.
type Field struct {
	// Name is the field name as written in the IDL.
	Name string
	// Kind is the element kind.
	Kind Kind
	// Elem names the pointed-to type for Ptr fields; ignored otherwise.
	Elem ID
	// Count is the fixed array length; 0 and 1 both mean a single element.
	Count int
}

// elems returns the number of elements the field stores.
func (f Field) elems() int {
	if f.Count <= 1 {
		return 1
	}
	return f.Count
}

// Desc describes a structured data type: the unit of allocation, transfer,
// and swizzling.
type Desc struct {
	// ID is the system-wide type identifier.
	ID ID
	// Name is the IDL-level type name.
	Name string
	// Fields lists members in declaration order.
	Fields []Field
}

// Validate checks internal consistency of the descriptor (not cross-type
// references; see Registry.Validate).
func (d *Desc) Validate() error {
	if d.ID == 0 {
		return fmt.Errorf("type %q: zero type ID is reserved", d.Name)
	}
	if d.Name == "" {
		return fmt.Errorf("type %d: empty name", d.ID)
	}
	if len(d.Fields) == 0 {
		return fmt.Errorf("type %q: no fields", d.Name)
	}
	seen := make(map[string]bool, len(d.Fields))
	for i, f := range d.Fields {
		if f.Name == "" {
			return fmt.Errorf("type %q: field %d has empty name", d.Name, i)
		}
		if seen[f.Name] {
			return fmt.Errorf("type %q: duplicate field %q", d.Name, f.Name)
		}
		seen[f.Name] = true
		if !f.Kind.Valid() {
			return fmt.Errorf("type %q: field %q has invalid kind %d", d.Name, f.Name, int(f.Kind))
		}
		if f.Kind == Func {
			return fmt.Errorf("type %q: field %q: function pointers cannot be stored in data structures", d.Name, f.Name)
		}
		if f.Count < 0 {
			return fmt.Errorf("type %q: field %q has negative count", d.Name, f.Name)
		}
		if f.Kind == Ptr && f.Elem == 0 {
			return fmt.Errorf("type %q: pointer field %q has no element type", d.Name, f.Name)
		}
	}
	return nil
}

// CanonicalSize returns the XDR-encoded size of one value of this type.
func (d *Desc) CanonicalSize() int {
	n := 0
	for _, f := range d.Fields {
		n += canonicalSize(f.Kind) * f.elems()
	}
	return n
}

// CanonicalFieldOffset returns the byte offset of field i's first element
// within the canonical (XDR) encoding of a value of this type.
func (d *Desc) CanonicalFieldOffset(i int) int {
	off := 0
	for j := 0; j < i && j < len(d.Fields); j++ {
		f := d.Fields[j]
		off += canonicalSize(f.Kind) * f.elems()
	}
	return off
}

// CanonicalElemSize returns the canonical size of one element of kind k.
func CanonicalElemSize(k Kind) int { return canonicalSize(k) }

// FieldIndex returns the index of the named field, or -1.
func (d *Desc) FieldIndex(name string) int {
	for i, f := range d.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// FieldLayout gives the placement of one field in a concrete layout.
type FieldLayout struct {
	// Offset is the byte offset of the field within the object.
	Offset int
	// ElemSize is the in-memory size of one element.
	ElemSize int
}

// Layout is the concrete in-memory arrangement of a type under one
// architecture profile.
type Layout struct {
	// Size is the total object size including tail padding.
	Size int
	// Align is the object alignment.
	Align int
	// Fields has one entry per descriptor field, in order.
	Fields []FieldLayout
	// PtrOffsets lists the byte offset of every pointer word in the object
	// (array pointer fields contribute one entry per element). The swizzler
	// walks this list.
	PtrOffsets []int
}

// LayoutOf computes the in-memory layout of d under profile p, using
// C-like rules: each field aligned to min(natural alignment, MaxAlign),
// object size rounded up to the object alignment.
func LayoutOf(d *Desc, p arch.Profile) Layout {
	var l Layout
	l.Align = 1
	off := 0
	for _, f := range d.Fields {
		a := memAlign(f.Kind, p)
		sz := memSize(f.Kind, p)
		if a > l.Align {
			l.Align = a
		}
		off = alignUp(off, a)
		l.Fields = append(l.Fields, FieldLayout{Offset: off, ElemSize: sz})
		if f.Kind == Ptr {
			for i := 0; i < f.elems(); i++ {
				l.PtrOffsets = append(l.PtrOffsets, off+i*sz)
			}
		}
		off += sz * f.elems()
	}
	l.Size = alignUp(off, l.Align)
	return l
}

func alignUp(n, a int) int {
	return (n + a - 1) / a * a
}

// ErrUnknownType is wrapped by Registry lookups that miss.
var ErrUnknownType = errors.New("types: unknown type")

// Registry is the type database. It is safe for concurrent use. In a real
// deployment this is the network name server; here every runtime holds a
// reference to a shared (or replicated) registry.
//
// Lookups are on the runtime's hottest paths (every dereference and every
// marshaled object resolves its descriptor and layout), so the registry
// publishes an immutable snapshot through an atomic pointer: reads take no
// lock at all, and the rare writes (schema registration, a layout-cache
// fill) copy the snapshot under a mutex and republish it.
type Registry struct {
	mu        sync.Mutex // serializes writers
	state     atomic.Pointer[regState]
	resolvers []*Resolver // shared per-profile caches, see ResolverFor
}

// regState is one immutable registry snapshot. Maps reachable from it are
// never mutated after publication.
type regState struct {
	byID    map[ID]*Desc
	byName  map[string]*Desc
	layouts map[layoutKey]Layout
}

type layoutKey struct {
	id   ID
	arch string
}

// NewRegistry returns an empty type database.
func NewRegistry() *Registry {
	r := &Registry{}
	r.state.Store(&regState{
		byID:    make(map[ID]*Desc),
		byName:  make(map[string]*Desc),
		layouts: make(map[layoutKey]Layout),
	})
	return r
}

// Register adds a descriptor. Pointer element types may be registered in
// any order (mutually recursive types are the common case); call Validate
// once the full schema is in.
func (r *Registry) Register(d *Desc) error {
	if err := d.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state.Load()
	if prev, ok := st.byID[d.ID]; ok {
		return fmt.Errorf("types: ID %d already registered as %q", d.ID, prev.Name)
	}
	if prev, ok := st.byName[d.Name]; ok {
		return fmt.Errorf("types: name %q already registered as ID %d", d.Name, prev.ID)
	}
	cp := *d
	cp.Fields = append([]Field(nil), d.Fields...)
	ns := &regState{
		byID:    make(map[ID]*Desc, len(st.byID)+1),
		byName:  make(map[string]*Desc, len(st.byName)+1),
		layouts: st.layouts,
	}
	for k, v := range st.byID {
		ns.byID[k] = v
	}
	for k, v := range st.byName {
		ns.byName[k] = v
	}
	ns.byID[d.ID] = &cp
	ns.byName[d.Name] = &cp
	r.state.Store(ns)
	return nil
}

// MustRegister is Register for schemas known correct at construction time.
// It panics on error, for use during program initialization only.
func (r *Registry) MustRegister(d *Desc) {
	if err := r.Register(d); err != nil {
		panic(err)
	}
}

// Lookup resolves a type ID.
func (r *Registry) Lookup(id ID) (*Desc, error) {
	d, ok := r.state.Load().byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: ID %d", ErrUnknownType, id)
	}
	return d, nil
}

// LookupName resolves a type name.
func (r *Registry) LookupName(name string) (*Desc, error) {
	d, ok := r.state.Load().byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: name %q", ErrUnknownType, name)
	}
	return d, nil
}

// Layout returns the (cached) layout of type id under profile p.
func (r *Registry) Layout(id ID, p arch.Profile) (Layout, error) {
	key := layoutKey{id: id, arch: p.Name}
	st := r.state.Load()
	if l, ok := st.layouts[key]; ok {
		return l, nil
	}
	d, ok := st.byID[id]
	if !ok {
		return Layout{}, fmt.Errorf("%w: ID %d", ErrUnknownType, id)
	}
	l := LayoutOf(d, p)
	r.mu.Lock()
	st = r.state.Load()
	if cached, ok := st.layouts[key]; ok {
		r.mu.Unlock()
		return cached, nil
	}
	ns := &regState{
		byID:    st.byID,
		byName:  st.byName,
		layouts: make(map[layoutKey]Layout, len(st.layouts)+1),
	}
	for k, v := range st.layouts {
		ns.layouts[k] = v
	}
	ns.layouts[key] = l
	r.state.Store(ns)
	r.mu.Unlock()
	return l, nil
}

// Resolved bundles everything the runtime needs to act on one type under
// one architecture profile: the descriptor, its concrete layout, and the
// canonical (XDR) encoded size. The layout is shared and immutable.
type Resolved struct {
	Desc   *Desc
	Layout *Layout
	// Canon is Desc.CanonicalSize(), precomputed: closure budgeting
	// charges it once per served object.
	Canon int
}

// Resolver is a per-profile resolution cache in front of a Registry. A
// hit is one small-key map lookup returning shared pointers — no string
// hashing (the registry's layout cache is keyed by profile name) and no
// layout copying. Descriptors are immutable once registered, so cached
// entries never go stale. Obtain one with Registry.ResolverFor; resolvers
// for the same profile are shared.
type Resolver struct {
	reg *Registry
	p   arch.Profile

	mu    sync.Mutex // serializes cache fills
	state atomic.Pointer[map[ID]Resolved]
}

// ResolverFor returns the shared resolver for profile p, creating it on
// first use.
func (r *Registry) ResolverFor(p arch.Profile) *Resolver {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rs := range r.resolvers {
		if rs.p.Name == p.Name {
			return rs
		}
	}
	rs := &Resolver{reg: r, p: p}
	empty := make(map[ID]Resolved)
	rs.state.Store(&empty)
	r.resolvers = append(r.resolvers, rs)
	return rs
}

// Resolve returns the descriptor, layout, and canonical size of type id.
func (rs *Resolver) Resolve(id ID) (Resolved, error) {
	if e, ok := (*rs.state.Load())[id]; ok {
		return e, nil
	}
	return rs.fill(id)
}

// fill computes and publishes the cache entry for id (copy-on-write, like
// the registry's own snapshot).
func (rs *Resolver) fill(id ID) (Resolved, error) {
	d, err := rs.reg.Lookup(id)
	if err != nil {
		return Resolved{}, err
	}
	l, err := rs.reg.Layout(id, rs.p)
	if err != nil {
		return Resolved{}, err
	}
	e := Resolved{Desc: d, Layout: &l, Canon: d.CanonicalSize()}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	old := *rs.state.Load()
	if prev, ok := old[id]; ok {
		return prev, nil
	}
	next := make(map[ID]Resolved, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = e
	rs.state.Store(&next)
	return e, nil
}

// Validate checks that every pointer field references a registered type.
func (r *Registry) Validate() error {
	st := r.state.Load()
	ids := make([]ID, 0, len(st.byID))
	for id := range st.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		d := st.byID[id]
		for _, f := range d.Fields {
			if f.Kind != Ptr {
				continue
			}
			if _, ok := st.byID[f.Elem]; !ok {
				return fmt.Errorf("type %q field %q: %w: ID %d", d.Name, f.Name, ErrUnknownType, f.Elem)
			}
		}
	}
	return nil
}

// Names returns all registered type names, sorted.
func (r *Registry) Names() []string {
	st := r.state.Load()
	names := make([]string, 0, len(st.byName))
	for n := range st.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

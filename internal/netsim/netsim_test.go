package netsim

import (
	"sync"
	"testing"
	"time"
)

func TestModelCostComponents(t *testing.T) {
	m := Model{
		PerMessage:     100 * time.Microsecond,
		BytesPerSecond: 1e6,
		PerByteCPU:     time.Microsecond,
	}
	// 1000 bytes: 100µs fixed + 1ms wire + 1ms cpu.
	got := m.Cost(1000)
	want := 100*time.Microsecond + time.Millisecond + time.Millisecond
	if got != want {
		t.Errorf("Cost(1000) = %v, want %v", got, want)
	}
}

func TestModelCostZeroPayload(t *testing.T) {
	m := Ethernet10SPARC()
	if got := m.Cost(0); got != m.PerMessage {
		t.Errorf("Cost(0) = %v, want %v", got, m.PerMessage)
	}
}

func TestModelZeroBandwidthSkipsWireTerm(t *testing.T) {
	m := Model{PerMessage: time.Millisecond}
	if got := m.Cost(1 << 20); got != time.Millisecond {
		t.Errorf("Cost with zero bandwidth = %v", got)
	}
}

func TestModelMonotonicInSize(t *testing.T) {
	m := Ethernet10SPARC()
	prev := time.Duration(-1)
	for _, n := range []int{0, 1, 16, 4096, 1 << 20} {
		c := m.Cost(n)
		if c <= prev {
			t.Fatalf("Cost not monotonic: Cost(%d)=%v <= %v", n, c, prev)
		}
		prev = c
	}
}

func TestModelValidate(t *testing.T) {
	if err := Ethernet10SPARC().Validate(); err != nil {
		t.Errorf("calibrated model invalid: %v", err)
	}
	bad := Model{PerMessage: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative model accepted")
	}
}

func TestClockAccumulates(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(500 * time.Millisecond)
	c.Advance(0)  // no-ops
	c.Advance(-1) // ignored
	if got := c.Now(); got != 1500*time.Millisecond {
		t.Errorf("Now() = %v, want 1.5s", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Now() after reset = %v", c.Now())
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 5000*time.Microsecond {
		t.Errorf("concurrent Now() = %v, want 5ms", got)
	}
}

func TestStatsCounting(t *testing.T) {
	var s Stats
	s.Record(100)
	s.Record(50)
	if s.Messages() != 2 || s.Bytes() != 150 {
		t.Errorf("stats = %d msgs %d bytes", s.Messages(), s.Bytes())
	}
	s.Reset()
	if s.Messages() != 0 || s.Bytes() != 0 {
		t.Error("Reset did not zero stats")
	}
}

func TestStatsConcurrent(t *testing.T) {
	var s Stats
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Record(3)
			}
		}()
	}
	wg.Wait()
	if s.Messages() != 2000 || s.Bytes() != 6000 {
		t.Errorf("stats = %d msgs %d bytes", s.Messages(), s.Bytes())
	}
}

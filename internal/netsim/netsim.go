// Package netsim provides the deterministic network cost model and the
// message statistics used to reproduce the paper's measurements.
//
// The paper's numbers come from Sun SPARCstations (28.5 MIPS) on 10 Mbps
// Ethernet with TCP_NODELAY. The *shape* of every figure is determined by
// how many messages each method sends (per-message latency), how many bytes
// it moves (bandwidth), and how much conversion work it does (per-byte CPU
// for XDR encode/decode). Model makes those three terms explicit; Clock
// accumulates them into a virtual elapsed time, so benchmark results are
// reproducible on any host and directly comparable to the paper's curves.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Model is a linear network + conversion cost model.
type Model struct {
	// PerMessage is the fixed cost of one message: protocol processing,
	// interrupt handling, and propagation (one way).
	PerMessage time.Duration
	// BytesPerSecond is the link bandwidth.
	BytesPerSecond float64
	// PerByteCPU is the data-conversion (XDR encode+decode) cost per
	// payload byte, modeling the heterogeneity overhead the paper's
	// system pays on every transfer.
	PerByteCPU time.Duration
}

// Ethernet10SPARC approximates the paper's testbed: 10 Mbps Ethernet
// between 28.5 MIPS SPARCstations over TCP with TCP_NODELAY.
//
// The constants are calibrated so the reproduced curves land in the same
// regime as the paper's Figures 4-7 (fully eager ≈ 2.5 s for a 512 KiB
// tree; fully lazy ≈ 12 s at access ratio 1.0 with ~33 k callbacks).
func Ethernet10SPARC() Model {
	return Model{
		PerMessage:     150 * time.Microsecond,
		BytesPerSecond: 10e6 / 8, // 10 Mbps
		PerByteCPU:     1500 * time.Nanosecond,
	}
}

// Cost returns the modeled time to move one message with the given payload
// size one way, including conversion work.
func (m Model) Cost(payloadBytes int) time.Duration {
	d := m.PerMessage
	if m.BytesPerSecond > 0 {
		d += time.Duration(float64(payloadBytes) / m.BytesPerSecond * float64(time.Second))
	}
	d += time.Duration(payloadBytes) * m.PerByteCPU
	return d
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.PerMessage < 0 || m.BytesPerSecond < 0 || m.PerByteCPU < 0 {
		return fmt.Errorf("netsim: negative cost parameter %+v", m)
	}
	return nil
}

// Clock accumulates virtual time. It is safe for concurrent use, though
// the paper's RPC sessions are single-threaded by construction.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// Advance adds d to the virtual time.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Reset zeroes the virtual time.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}

// maxKinds bounds the per-kind counter range. Message kinds are a small
// dense enumeration (wire.Kind starts at 1); kinds at or beyond the range
// fold into slot 0, the "unclassified" bucket.
const maxKinds = 16

// Stats counts network traffic, in total and broken out by message kind,
// so the benchmark harness can attribute bytes on the wire to protocol
// paths (calls/returns vs fetches vs coherency write-backs). All methods
// are safe for concurrent use.
type Stats struct {
	messages  atomic.Uint64
	bytes     atomic.Uint64
	kindMsgs  [maxKinds]atomic.Uint64
	kindBytes [maxKinds]atomic.Uint64
}

// Record notes one message of unclassified kind with the given payload
// size.
func (s *Stats) Record(payloadBytes int) { s.RecordKind(0, payloadBytes) }

// RecordKind notes one message of the given kind with the given payload
// size.
func (s *Stats) RecordKind(kind uint32, payloadBytes int) {
	s.messages.Add(1)
	s.bytes.Add(uint64(payloadBytes))
	if kind >= maxKinds {
		kind = 0
	}
	s.kindMsgs[kind].Add(1)
	s.kindBytes[kind].Add(uint64(payloadBytes))
}

// Messages returns the number of messages recorded.
func (s *Stats) Messages() uint64 { return s.messages.Load() }

// Bytes returns the total payload bytes recorded.
func (s *Stats) Bytes() uint64 { return s.bytes.Load() }

// KindMessages returns the number of messages recorded for kind.
func (s *Stats) KindMessages(kind uint32) uint64 {
	if kind >= maxKinds {
		kind = 0
	}
	return s.kindMsgs[kind].Load()
}

// KindBytes returns the payload bytes recorded for kind.
func (s *Stats) KindBytes(kind uint32) uint64 {
	if kind >= maxKinds {
		kind = 0
	}
	return s.kindBytes[kind].Load()
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.messages.Store(0)
	s.bytes.Store(0)
	for i := range s.kindMsgs {
		s.kindMsgs[i].Store(0)
		s.kindBytes[i].Store(0)
	}
}

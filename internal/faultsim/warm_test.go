package faultsim

import (
	"math/rand"
	"testing"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
)

// TestWarmValidateFaultsDegradeToRefetch is the targeted oracle for the
// warm-cache revalidation exchange: when every Validate request or reply
// is lost, corrupted, or delayed, the faulting space must degrade to a
// full refetch and return current data — never a stale read from its
// demoted baseline, and never a stuck session. The ground heap is
// mutated between sessions precisely so a wrongly-promoted baseline
// would change the observable sum.
//
// The kind filter confines faults to the Validate exchange itself; the
// refetch path the client falls back to stays reliable, so recovery is
// required to be transparent (no typed error escapes the call).
func TestWarmValidateFaultsDegradeToRefetch(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		fault Fault
	}{
		{"drop-request", Config{DropPermille: 1000, OnlyKinds: []wire.Kind{wire.KindValidate}}, FaultDrop},
		{"drop-reply", Config{DropPermille: 1000, OnlyKinds: []wire.Kind{wire.KindValidateReply}}, FaultDrop},
		{"corrupt-request", Config{CorruptPermille: 1000, OnlyKinds: []wire.Kind{wire.KindValidate}}, FaultCorrupt},
		{"corrupt-reply", Config{CorruptPermille: 1000, OnlyKinds: []wire.Kind{wire.KindValidateReply}}, FaultCorrupt},
		{"delay-reply", Config{DelayPermille: 1000, OnlyKinds: []wire.Kind{wire.KindValidateReply}}, FaultDelay},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Seed = 7
			net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { net.Close() })
			chaos := New(net, tc.cfg)
			chaos.SetEnabled(false) // session 1 warms the cache cleanly

			reg := registry()
			newRT := func(id uint32, timeout time.Duration) *core.Runtime {
				node, err := chaos.Attach(id)
				if err != nil {
					t.Fatal(err)
				}
				rt, err := core.New(core.Options{
					ID:              id,
					Node:            node,
					Registry:        reg,
					Policy:          core.PolicySmart,
					Concurrent:      true,
					CallTimeout:     timeout,
					CheckInvariants: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { rt.Close() })
				if err := registerProcs(rt, 2); err != nil {
					t.Fatal(err)
				}
				return rt
			}
			// The worker's validate round trip must expire (and degrade)
			// well inside the ground's outer call deadline — per-runtime
			// timeouts make that split possible.
			ground := newRT(1, 5*time.Second)
			worker := newRT(2, 100*time.Millisecond)

			rng := rand.New(rand.NewSource(42))
			root, model, err := buildTree(ground, rng, 4)
			if err != nil {
				t.Fatal(err)
			}

			call := func(label string) int64 {
				t.Helper()
				if err := ground.BeginSession(); err != nil {
					t.Fatalf("%s: begin: %v", label, err)
				}
				res, err := ground.Call(2, "sum", []core.Value{root})
				if err != nil {
					t.Fatalf("%s: sum: %v", label, err)
				}
				if err := ground.EndSession(); err != nil {
					t.Fatalf("%s: end: %v", label, err)
				}
				return res[0].Int64()
			}

			if got, want := call("session 1"), model.sum(); got != want {
				t.Fatalf("session 1 sum = %d, want %d", got, want)
			}

			// Mutate the ground heap locally (no frames, no faults) so a
			// stale baseline is observable as a wrong sum.
			if err := incTree(ground, root, 5); err != nil {
				t.Fatal(err)
			}
			model.inc(5)

			chaos.SetEnabled(true)
			got := call("session 2 (validate faulted)")
			chaos.SetEnabled(false)
			if chaos.Count(tc.fault) == 0 {
				t.Fatalf("no %v fault injected — the oracle never engaged", tc.fault)
			}
			if want := model.sum(); got != want {
				t.Fatalf("stale read through faulted validate: sum = %d, want %d", got, want)
			}
			if hits := worker.Stats().CohRevalidateHits; hits != 0 {
				t.Fatalf("faulted validate produced %d hits, want 0 (must degrade)", hits)
			}

			// A fault-free third session must re-warm and token-validate
			// from the refetched baseline — degradation is per-session,
			// not a permanent disable.
			if got, want := call("session 3"), model.sum(); got != want {
				t.Fatalf("session 3 sum = %d, want %d", got, want)
			}
			if hits := worker.Stats().CohRevalidateHits; hits == 0 {
				t.Fatal("no revalidation hits after recovery — warm cache did not re-warm")
			}

			for i, rt := range []*core.Runtime{ground, worker} {
				if err := rt.CheckIdleInvariants(); err != nil {
					t.Errorf("space %d not idle-clean: %v", i+1, err)
				}
			}
			if err := core.CheckNetworkInvariants(nil, []*core.Runtime{ground, worker}); err != nil {
				t.Errorf("network invariants: %v", err)
			}
		})
	}
}

// TestChaosKindFilterConfinesFaults pins the OnlyKinds contract the
// oracle above depends on: non-matching kinds pass through untouched
// even at 1000 permille.
func TestChaosKindFilterConfinesFaults(t *testing.T) {
	cfg := Config{Seed: 1, DropPermille: 1000, OnlyKinds: []wire.Kind{wire.KindValidate}}
	c, a, b := chaosPair(t, cfg)
	bc := pump(b)
	for seq := uint64(1); seq <= 5; seq++ {
		if err := a.Send(frame(2, seq, nil)); err != nil { // KindCall frames
			t.Fatal(err)
		}
	}
	if got := countArrivals(bc, 100*time.Millisecond); got != 5 {
		t.Errorf("%d of 5 non-target frames arrived, want all 5", got)
	}
	if err := a.Send(wire.Message{Kind: wire.KindValidate, Session: 1, Seq: 6, To: 2}); err != nil {
		t.Fatal(err)
	}
	if got := countArrivals(bc, 100*time.Millisecond); got != 0 {
		t.Errorf("target-kind frame crossed a total drop")
	}
	if c.Count(FaultDrop) != 1 {
		t.Errorf("recorded %d drops, want 1", c.Count(FaultDrop))
	}
}

package faultsim

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/histcheck"
	"smartrpc/internal/wire"
)

// This file is the concurrent-sessions side of the harness. Where
// runOp (workload.go) drives one ground session at a time and checks
// exact values against a pure-Go model, runConcurrent gives every
// non-ground space its own goroutine holding overlapping sessions over
// one shared ground-owned tree — concurrent EndSession write-back and
// invalidate fan-outs racing other clients' demand fetches, warm
// revalidates, and speculative prefetches through the serve pool. An
// exact value model is meaningless under that interleaving, so the
// oracle is internal/histcheck: every read and write is recorded with
// its real-time window and the whole multi-client history must be
// linearizable against a sequential register per tree node.

// histTracer forwards a runtime's session lifecycle trace events into a
// histcheck client, stamping the session-begin and end-of-session-ack
// times the checker's windows are built from.
type histTracer struct{ c *histcheck.Client }

func (t histTracer) Trace(e core.Event) {
	switch e.Kind {
	case core.EvSessionBegin:
		t.c.OnSessionBegin()
	case core.EvSessionEnd:
		t.c.OnSessionEnd()
	}
}

// collectNodes walks a ground-local tree in preorder and returns every
// node's long pointer alongside its committed data value, seeding the
// recorder's initial state.
func collectNodes(rt *core.Runtime, root core.Value) ([]wire.LongPtr, []int64, error) {
	var lps []wire.LongPtr
	var vals []int64
	var walk func(v core.Value) error
	walk = func(v core.Value) error {
		if v.IsNullPtr() {
			return nil
		}
		ref, err := rt.Deref(v)
		if err != nil {
			return err
		}
		d, err := ref.Int("data", 0)
		if err != nil {
			return err
		}
		lps = append(lps, v.LP)
		vals = append(vals, d)
		for _, f := range []string{"left", "right"} {
			c, err := ref.Ptr(f, 0)
			if err != nil {
				return err
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, nil, err
	}
	return lps, vals, nil
}

// runConcurrent executes a Scenario with Concurrent set: spaces 2..N
// each run sc.Ops sessions over the shared tree on their own goroutine,
// crash-restarting their own runtime and partitioning their own edge to
// ground between sessions (the ground space, which owns the data, is
// never crashed — clients have nothing to recover for it). A session
// that fails is abandoned (all its writes become maybe-operations) and
// the client moves on; at the end the network must quiesce to
// idle-clean and the recorded history must be linearizable.
func (h *harness) runConcurrent() error {
	levels := 4 + h.rng.Intn(2) // 15 or 31 nodes
	root, _, err := buildTree(h.ground(), h.rng, levels)
	if err != nil {
		return h.fail("concurrent: build shared tree: %v", err)
	}
	nodes, vals, err := collectNodes(h.ground(), root)
	if err != nil {
		return h.fail("concurrent: collect tree nodes: %v", err)
	}
	rec := histcheck.NewRecorder()
	for i, lp := range nodes {
		rec.Init(lp, vals[i])
	}

	clients := h.sc.Spaces - 1
	var wg sync.WaitGroup
	var mu sync.Mutex // guards h.res counters and the failure slot
	var failure *FailureError
	setFailure := func(fe *FailureError) {
		mu.Lock()
		if failure == nil {
			failure = fe
		}
		mu.Unlock()
	}

	for ci := 0; ci < clients; ci++ {
		idx := ci + 1 // h.rts index; space id is idx+1
		hc := rec.Client(ci)
		h.rts[idx].SetTracer(histTracer{c: hc})
		wg.Add(1)
		go func(ci, idx int, hc *histcheck.Client) {
			defer wg.Done()
			// Each client's decisions derive from its own stream so one
			// client's fault reactions cannot reshape another's workload.
			crng := rand.New(rand.NewSource(int64(splitmix64(h.sc.Seed ^ 0xc0c0 ^ uint64(ci)))))
			for round := 0; round < h.sc.Ops; round++ {
				rt := h.rts[idx]
				// Crash-restart between sessions: only this goroutine's own
				// runtime, so nobody else is mid-call into it.
				if crng.Intn(1000) < h.sc.CrashPermille {
					_ = rt.Close()
					h.crashes[idx]++ // own slot only; no other goroutine touches it
					nrt, err := h.newRuntime(uint32(idx + 1))
					if err != nil {
						setFailure(h.fail("concurrent: re-attach space %d after crash: %v", idx+1, err))
						return
					}
					nrt.SetTracer(histTracer{c: hc})
					h.rts[idx] = nrt
					rt = nrt
					mu.Lock()
					h.res.Crashes++
					mu.Unlock()
				}
				// One-way partition on this client's own edge to ground for
				// the duration of one session.
				heal := func() {}
				if crng.Intn(1000) < h.sc.PartitionPermille {
					from, to := uint32(idx+1), uint32(1)
					if crng.Intn(2) == 0 {
						from, to = to, from
					}
					h.chaos.PartitionOneWay(from, to, true)
					heal = func() { h.chaos.PartitionOneWay(from, to, false) }
					mu.Lock()
					h.res.Partitions++
					mu.Unlock()
				}
				mu.Lock()
				h.res.Ops++
				mu.Unlock()
				sessErr := h.concurrentSession(rt, hc, crng, nodes, ci, round)
				heal()
				if sessErr != nil {
					if errors.Is(sessErr, core.ErrInvariant) {
						setFailure(h.fail("concurrent: client %d round %d: invariant violation: %v", ci, round, sessErr))
						return
					}
					mu.Lock()
					h.res.Errors++
					mu.Unlock()
				}
			}
		}(ci, idx, hc)
	}
	wg.Wait()
	if failure != nil {
		return failure
	}

	h.res.Faults = h.chaos.Total()
	// Crash-restarts are abnormal without being injected chaos faults: a
	// session racing another client's crash (or fencing a restarted peer
	// under Recovery) may fail with nothing on the chaos counter.
	if h.res.Faults == 0 && h.res.Errors > 0 && h.res.Crashes == 0 {
		return h.fail("concurrent: %d sessions failed with no fault injected", h.res.Errors)
	}

	// Quiesce: let anything blocked on a dropped round trip hit its
	// deadline, discard held frames, then abort-retry every space to
	// idle-clean (frames still in flight can re-populate a space after
	// its abort, so the check retries before declaring failure).
	if h.res.Errors > 0 {
		time.Sleep(3 * h.sc.CallTimeout)
	}
	h.chaos.Drain()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, rt := range h.rts {
			rt.AbortSession()
		}
		ferr := h.checkAllIdle(-1, "after concurrent rounds")
		if ferr == nil {
			break
		}
		if time.Now().After(deadline) {
			return ferr
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := core.CheckNetworkInvariants(nil, h.rts); err != nil {
		return h.fail("concurrent: network invariants after quiesce: %v", err)
	}

	// The oracle: no interleaving excuse survives this.
	cres := rec.Check()
	h.res.Verified += cres.Ops
	if !cres.Ok {
		return h.fail("concurrent history not linearizable:\n%s", cres.Err())
	}
	return nil
}

// concurrentSession runs one recorded session: a handful of random node
// visits, each a read or (1 in 4) a write of a value unique to
// (client, round, visit) so the checker can attribute every observation.
// Any error aborts the session and abandons its history (writes become
// maybe-operations — their write-back may or may not have landed).
func (h *harness) concurrentSession(rt *core.Runtime, hc *histcheck.Client, rng *rand.Rand, nodes []wire.LongPtr, ci, round int) error {
	hs := hc.Begin()
	if err := rt.BeginSession(); err != nil {
		hs.Abandon()
		return err
	}
	abort := func(err error) error {
		rt.AbortSession()
		hs.Abandon()
		return err
	}
	visits := 3 + rng.Intn(4)
	for v := 0; v < visits; v++ {
		lp := nodes[rng.Intn(len(nodes))]
		pv, err := rt.ImportPtr(lp)
		if err != nil {
			return abort(err)
		}
		ref, err := rt.Deref(pv)
		if err != nil {
			return abort(err)
		}
		if rng.Intn(4) == 0 {
			wv := int64(ci+1)*1_000_000 + int64(round)*1_000 + int64(v)
			if err := hs.Write(lp, wv, func() error {
				return ref.SetInt("data", 0, wv)
			}); err != nil {
				return abort(err)
			}
		} else {
			if _, err := hs.Read(lp, func() (int64, error) {
				return ref.Int("data", 0)
			}); err != nil {
				return abort(err)
			}
		}
	}
	if err := rt.EndSession(); err != nil {
		return abort(err)
	}
	hs.Commit()
	return nil
}

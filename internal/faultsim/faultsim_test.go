package faultsim

import (
	"bytes"
	"testing"
	"time"

	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/wire"
)

// chaosPair builds a two-node network behind a chaos wrapper.
func chaosPair(t *testing.T, cfg Config) (*Chaos, transport.Node, transport.Node) {
	t.Helper()
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { net.Close() })
	c := New(net, cfg)
	a, err := c.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	return c, a, b
}

// pump drains a node into a channel so tests can count and inspect
// arrivals without leaking a blocked Recv between assertions. The
// goroutine exits when the node is closed at cleanup.
func pump(n transport.Node) <-chan wire.Message {
	ch := make(chan wire.Message, 64)
	go func() {
		defer close(ch)
		for {
			m, err := n.Recv()
			if err != nil {
				return
			}
			ch <- m
		}
	}()
	return ch
}

// recvOrTimeout receives one frame or fails the test.
func recvOrTimeout(t *testing.T, ch <-chan wire.Message) wire.Message {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatal("node closed")
		}
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("recv timed out")
		return wire.Message{}
	}
}

// countArrivals counts everything that shows up within a settle window.
func countArrivals(ch <-chan wire.Message, window time.Duration) int {
	got := 0
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return got
			}
			got++
		case <-time.After(window):
			return got
		}
	}
}

func frame(to uint32, seq uint64, payload []byte) wire.Message {
	return wire.Message{Kind: wire.KindCall, Session: 1, Seq: seq, To: to, Payload: payload}
}

// TestChaosDeterministicSchedule: the same seed over the same frame
// sequence must produce the identical event schedule — the harness's
// repro guarantee.
func TestChaosDeterministicSchedule(t *testing.T) {
	run := func() []Event {
		cfg := Config{Seed: 99, DropPermille: 300, DupPermille: 300, CorruptPermille: 300}
		c, a, b := chaosPair(t, cfg)
		bc := pump(b)
		for seq := uint64(1); seq <= 40; seq++ {
			if err := a.Send(frame(2, seq, []byte{1, 2, 3, 4})); err != nil {
				t.Fatal(err)
			}
		}
		countArrivals(bc, 100*time.Millisecond)
		return c.Events()
	}
	e1 := run()
	e2 := run()
	if len(e1) == 0 {
		t.Fatal("no faults injected at 300 permille over 40 frames")
	}
	if len(e1) != len(e2) {
		t.Fatalf("schedules differ in length: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("schedule diverges at %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

// TestChaosDropLosesFrames: at 1000 permille every frame is dropped and
// recorded.
func TestChaosDropLosesFrames(t *testing.T) {
	c, a, b := chaosPair(t, Config{Seed: 1, DropPermille: 1000})
	bc := pump(b)
	for seq := uint64(1); seq <= 5; seq++ {
		if err := a.Send(frame(2, seq, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if got := countArrivals(bc, 100*time.Millisecond); got != 0 {
		t.Errorf("%d frames arrived through a total drop", got)
	}
	if c.Count(FaultDrop) != 5 {
		t.Errorf("recorded %d drops, want 5", c.Count(FaultDrop))
	}
}

// TestChaosDupDelivers: at 1000 permille every frame arrives twice.
func TestChaosDupDelivers(t *testing.T) {
	c, a, b := chaosPair(t, Config{Seed: 1, DupPermille: 1000})
	bc := pump(b)
	if err := a.Send(frame(2, 1, nil)); err != nil {
		t.Fatal(err)
	}
	if got := countArrivals(bc, 100*time.Millisecond); got != 2 {
		t.Errorf("%d arrivals of a duplicated frame, want 2", got)
	}
	if c.Count(FaultDup) != 1 {
		t.Errorf("recorded %d dups, want 1", c.Count(FaultDup))
	}
}

// TestChaosCorruptCopiesPayload: corruption must flip bits in the
// delivered frame while leaving the sender's buffer untouched — mutating
// the shared buffer would corrupt the sender's delta-shipping baseline
// identically and mask desynchronization.
func TestChaosCorruptCopiesPayload(t *testing.T) {
	c, a, b := chaosPair(t, Config{Seed: 1, CorruptPermille: 1000})
	bc := pump(b)
	orig := []byte{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF}
	sent := append([]byte(nil), orig...)
	if err := a.Send(frame(2, 1, sent)); err != nil {
		t.Fatal(err)
	}
	got := recvOrTimeout(t, bc)
	if bytes.Equal(got.Payload, orig) {
		t.Error("payload arrived uncorrupted at 1000 permille")
	}
	if !bytes.Equal(sent, orig) {
		t.Error("corruption mutated the sender's buffer")
	}
	if c.Count(FaultCorrupt) != 1 {
		t.Errorf("recorded %d corruptions, want 1", c.Count(FaultCorrupt))
	}
}

// TestChaosDelayReordersReplies: a delayed reply is held until later
// traffic passes, then delivered — and only reply kinds are ever held.
func TestChaosDelayReordersReplies(t *testing.T) {
	c, a, b := chaosPair(t, Config{Seed: 1, DelayPermille: 1000})
	bc := pump(b)

	// Requests are never delayed even at 1000 permille.
	if err := a.Send(frame(2, 1, nil)); err != nil {
		t.Fatal(err)
	}
	if got := recvOrTimeout(t, bc); got.Seq != 1 {
		t.Fatalf("request arrived with seq %d, want 1", got.Seq)
	}
	if c.Count(FaultDelay) != 0 {
		t.Fatal("a request frame was delayed")
	}

	// A reply is held, then released by subsequent traffic on its edge.
	reply := wire.Message{Kind: wire.KindReturn, Session: 1, Seq: 2, To: 2}
	if err := a.Send(reply); err != nil {
		t.Fatal(err)
	}
	if c.Count(FaultDelay) != 1 {
		t.Fatalf("reply was not delayed: %d delay events", c.Count(FaultDelay))
	}
	// Push non-reply traffic until the held frame comes due (distance ≤ 3).
	for seq := uint64(10); seq < 14; seq++ {
		if err := a.Send(frame(2, seq, nil)); err != nil {
			t.Fatal(err)
		}
	}
	got := countArrivals(bc, 100*time.Millisecond)
	if got != 5 { // 4 pushes + the released reply
		t.Errorf("%d arrivals after releasing the held reply, want 5", got)
	}
}

// TestChaosPartitionOneWay: a one-way partition blocks exactly one
// direction and heals cleanly.
func TestChaosPartitionOneWay(t *testing.T) {
	c, a, b := chaosPair(t, Config{Seed: 1})
	ac, bc := pump(a), pump(b)
	c.PartitionOneWay(1, 2, true)

	if err := a.Send(frame(2, 1, nil)); err != nil {
		t.Fatal(err)
	}
	if got := countArrivals(bc, 100*time.Millisecond); got != 0 {
		t.Error("frame crossed a partitioned edge")
	}
	// Reverse direction unaffected.
	if err := b.Send(frame(1, 1, nil)); err != nil {
		t.Fatal(err)
	}
	if got := recvOrTimeout(t, ac); got.From != 2 {
		t.Errorf("reverse frame arrived from %d, want 2", got.From)
	}
	if c.Count(FaultPartition) != 1 {
		t.Errorf("recorded %d partition events, want 1", c.Count(FaultPartition))
	}

	c.PartitionOneWay(1, 2, false)
	if err := a.Send(frame(2, 2, nil)); err != nil {
		t.Fatal(err)
	}
	if got := recvOrTimeout(t, bc); got.Seq != 2 {
		t.Errorf("post-heal frame has seq %d, want 2", got.Seq)
	}
}

// TestChaosDisabledIsTransparent: SetEnabled(false) passes everything
// through even with a saturated fault config.
func TestChaosDisabledIsTransparent(t *testing.T) {
	c, a, b := chaosPair(t, Config{Seed: 1, DropPermille: 1000})
	bc := pump(b)
	c.SetEnabled(false)
	for seq := uint64(1); seq <= 5; seq++ {
		if err := a.Send(frame(2, seq, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if got := countArrivals(bc, 100*time.Millisecond); got != 5 {
		t.Errorf("%d of 5 frames arrived while disabled", got)
	}
	if c.Total() != 0 {
		t.Errorf("%d faults recorded while disabled", c.Total())
	}
}

// TestChaosDrainDiscardsHeld: Drain clears held frames so they cannot
// leak into a later scenario.
func TestChaosDrainDiscardsHeld(t *testing.T) {
	c, a, b := chaosPair(t, Config{Seed: 1, DelayPermille: 1000})
	bc := pump(b)
	if err := a.Send(wire.Message{Kind: wire.KindReturn, Session: 1, Seq: 1, To: 2}); err != nil {
		t.Fatal(err)
	}
	if c.Count(FaultDelay) != 1 {
		t.Fatal("reply was not held")
	}
	c.Drain()
	c.SetEnabled(false)
	for seq := uint64(2); seq <= 5; seq++ {
		if err := a.Send(frame(2, seq, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if got := countArrivals(bc, 100*time.Millisecond); got != 4 {
		t.Errorf("%d arrivals after drain, want exactly the 4 new frames", got)
	}
}

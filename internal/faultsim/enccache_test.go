package faultsim

import (
	"math/rand"
	"testing"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
)

// sumViaAPI walks a (possibly remote) tree through the core API inside
// the calling runtime, faulting pages in as it goes.
func sumViaAPI(rt *core.Runtime, v core.Value) (int64, error) {
	if v.IsNullPtr() {
		return 0, nil
	}
	ref, err := rt.Deref(v)
	if err != nil {
		return 0, err
	}
	sum, err := ref.Int("data", 0)
	if err != nil {
		return 0, err
	}
	for _, f := range []string{"left", "right"} {
		c, err := ref.Ptr(f, 0)
		if err != nil {
			return 0, err
		}
		s, err := sumViaAPI(rt, c)
		if err != nil {
			return 0, err
		}
		sum += s
	}
	return sum, nil
}

// TestEncodeCacheColdAfterRestart pins the crash-restart story of the
// origin-side encode cache: the cache hangs off the Runtime, so a
// restarted space starts cold — no pre-crash encodings survive to be
// served stale, EncCacheBytes restarts at zero, and the first post-crash
// serves are all misses against freshly built state.
func TestEncodeCacheColdAfterRestart(t *testing.T) {
	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { net.Close() })
	chaos := New(net, Config{Seed: 11})

	reg := registry()
	newRT := func(id uint32) *core.Runtime {
		node, err := chaos.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := core.New(core.Options{
			ID:              id,
			Node:            node,
			Registry:        reg,
			Policy:          core.PolicySmart,
			Concurrent:      true,
			CallTimeout:     5 * time.Second,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := registerProcs(rt, 2); err != nil {
			t.Fatal(err)
		}
		return rt
	}
	ground := newRT(1)
	t.Cleanup(func() { ground.Close() })
	worker := newRT(2)

	// Session 1: the worker owns a tree, the ground walks it. Every fetch
	// the worker serves feeds its encode cache.
	rng := rand.New(rand.NewSource(3))
	root, model, err := buildTree(worker, rng, 4)
	if err != nil {
		t.Fatal(err)
	}
	walk := func(rootV core.Value, label string) int64 {
		t.Helper()
		v, err := ground.ImportPtr(rootV.LP)
		if err != nil {
			t.Fatalf("%s: import: %v", label, err)
		}
		if err := ground.BeginSession(); err != nil {
			t.Fatalf("%s: begin: %v", label, err)
		}
		sum, err := sumViaAPI(ground, v)
		if err != nil {
			t.Fatalf("%s: walk: %v", label, err)
		}
		if err := ground.EndSession(); err != nil {
			t.Fatalf("%s: end: %v", label, err)
		}
		return sum
	}
	if got, want := walk(root, "pre-crash"), model.sum(); got != want {
		t.Fatalf("pre-crash sum = %d, want %d", got, want)
	}
	warm := worker.Stats()
	if warm.EncCacheBytes == 0 || warm.EncCacheMisses == 0 {
		t.Fatalf("serving did not warm the encode cache: %+v", warm)
	}

	// Crash-restart the worker: close it and attach a fresh runtime under
	// the same ID. Its heap, tables, and encode cache are all gone.
	_ = worker.Close()
	worker = newRT(2)
	t.Cleanup(func() { worker.Close() })
	cold := worker.Stats()
	if cold.EncCacheBytes != 0 || cold.EncCacheHits != 0 || cold.EncCacheMisses != 0 {
		t.Fatalf("restarted space's encode cache is not cold: %+v", cold)
	}

	// The restarted worker serves fresh data correctly, from a cold cache:
	// the first walk is all misses, no hits carried over.
	root2, model2, err := buildTree(worker, rng, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := walk(root2, "post-crash"), model2.sum(); got != want {
		t.Fatalf("post-crash sum = %d, want %d", got, want)
	}
	after := worker.Stats()
	if after.EncCacheHits != 0 {
		t.Errorf("post-crash serves hit %d cached entries; the cache must start empty", after.EncCacheHits)
	}
	if after.EncCacheMisses == 0 || after.EncCacheBytes == 0 {
		t.Errorf("post-crash serves did not repopulate the cache: %+v", after)
	}
	if err := worker.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}

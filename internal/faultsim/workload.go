package faultsim

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"smartrpc/internal/core"
	"smartrpc/internal/netsim"
	"smartrpc/internal/transport"
	"smartrpc/internal/types"
)

// This file is the randomized workload side of the harness: a scenario
// derives a session workload (nested calls, callbacks via demand
// fetching, mutations, extended_malloc/free) and a fault schedule from
// one seed, runs it against a real network of runtimes wrapped in the
// chaos transport, and checks three things after every operation:
//
//  1. Fault-free operations return exactly the values a pure-Go model
//     of the trees predicts.
//  2. Faulted operations either succeed with correct values or fail
//     with an ordinary typed error — never a panic, never an error
//     matching core.ErrInvariant, never a hang (the caller enforces a
//     scenario deadline).
//  3. Every quiescent point satisfies the coherency invariants: after a
//     clean session end all spaces are idle-clean; after a failed one,
//     AbortSession must return them to idle-clean.

const nodeType types.ID = 1

// Scenario is one fully determined chaos run. Zero-valued fields mean
// "none of that fault"; DefaultScenario derives a varied mix from a seed.
type Scenario struct {
	Seed   uint64
	Spaces int // total spaces including ground (>= 2)
	Ops    int // sessions to run

	Faults            Config // Seed field is overridden with Seed
	CrashPermille     int    // per-op chance of crash-restarting a space
	PartitionPermille int    // per-op chance of a one-way partition for that op

	Policy           core.Policy
	DisableDeltaShip bool
	// Prefetch enables the asynchronous speculative prefetcher on every
	// space, so fetch chaos also hits speculative FETCH exchanges and
	// their in-flight registry joins.
	Prefetch bool
	// EncodeCache enables the origin-side encode cache on every space, so
	// the chaos mix (crashes included — a restarted space is cold by
	// construction) also runs with cached serve paths and their
	// invalidation machinery engaged.
	EncodeCache bool
	// Concurrent switches the workload from one ground session at a time
	// to a goroutine per non-ground space, all holding overlapping
	// sessions over one shared ground-owned tree (concurrent.go). The
	// value oracle becomes the internal/histcheck linearizability
	// checker; the policy is forced to smart (the coherency protocol
	// under test is the smart-pointer one).
	Concurrent  bool
	CallTimeout time.Duration
	// StreamChunkBytes, when > 0, lowers every space's streaming
	// threshold so ordinary fetch/validate replies split into chunked
	// streams, putting KindFetchChunk frames in the fault mix's reach.
	// Zero keeps the production default (only oversized replies stream).
	StreamChunkBytes int
	// Recovery turns on transparent exchange recovery for every space:
	// each client exchange runs under a retry budget (so dropped,
	// corrupted, and delayed frames are absorbed instead of surfacing as
	// typed errors), origins answer retried non-idempotent exchanges from
	// their replay cache, and every space stamps its restart incarnation
	// (1 + its crash count) into replies so a client talking to a
	// crashed-and-restarted space gets a fence error instead of trusting
	// resurrected addresses. Off reproduces the seed's fail-fast behavior.
	Recovery bool
}

// DefaultScenario derives a varied scenario from a seed: 2–4 spaces,
// 6–10 sessions, a moderate mix of every fault class, and a
// seed-dependent policy so lazy and eager paths soak too.
func DefaultScenario(seed uint64) Scenario {
	rng := rand.New(rand.NewSource(int64(splitmix64(seed ^ 0xdecafbad))))
	sc := Scenario{
		Seed:   seed,
		Spaces: 2 + rng.Intn(3),
		Ops:    6 + rng.Intn(5),
		Faults: Config{
			DropPermille:    20 + rng.Intn(40),
			DupPermille:     20 + rng.Intn(40),
			CorruptPermille: 10 + rng.Intn(30),
			DelayPermille:   20 + rng.Intn(40),
		},
		CrashPermille:     100,
		PartitionPermille: 100,
		CallTimeout:       100 * time.Millisecond,
	}
	switch rng.Intn(10) {
	case 0, 1:
		sc.Policy = core.PolicyEager
	case 2:
		sc.Policy = core.PolicyLazy
	default:
		sc.Policy = core.PolicySmart
	}
	sc.DisableDeltaShip = rng.Intn(8) == 0
	// Drawn last so the scenarios older seeds derive stay unchanged in
	// every other dimension.
	sc.Prefetch = rng.Intn(2) == 0
	// Drawn after Prefetch for the same reason: on for most seeds (the
	// production default), off for some so the ablated serve paths soak
	// too.
	sc.EncodeCache = rng.Intn(4) != 0
	// Drawn after EncodeCache, before Concurrent's draws would have run
	// under older orderings — appended at the end so every dimension
	// older seeds derived stays unchanged. A third of seeds run the
	// concurrent multi-client workload, with 2–4 clients sharing the
	// ground tree.
	sc.Concurrent = rng.Intn(3) == 0
	if sc.Concurrent {
		sc.Spaces = 3 + rng.Intn(3)
	}
	// Drawn last: a third of seeds force a tiny streaming threshold
	// (128–1024 bytes) so the scenario's small closures split into
	// chunked streams and the fault mix lands on KindFetchChunk frames,
	// partially drained exchanges, and mid-stream teardown.
	if rng.Intn(3) == 0 {
		sc.StreamChunkBytes = 128 << rng.Intn(4)
	}
	// Drawn last, after every dimension older seeds derived: a third of
	// seeds run with transparent exchange recovery on, so the chaos corpus
	// soaks the retry/replay-cache/incarnation-fence machinery alongside
	// the seed's fail-fast behavior.
	sc.Recovery = rng.Intn(3) == 0
	return sc
}

// Result summarizes a completed scenario.
type Result struct {
	Ops        int // sessions attempted
	Errors     int // sessions that failed with an acceptable typed error
	Faults     uint64
	Crashes    int
	Partitions int  // ops run under an injected one-way partition
	Trusted    bool // value oracle stayed authoritative to the end
	Verified   int  // operations whose values were checked against the model

	// Recovery-machinery totals, summed over every space at the end of the
	// run (all zero unless Scenario.Recovery is set).
	Retries    uint64 // client retry attempts across all exchanges
	Replays    uint64 // origin replay-cache hits serving retried exchanges
	FenceTrips uint64 // incarnation fences tripped by restarted peers
}

// FailureError is a scenario failure: a real bug surfaced (invariant
// violation, wrong value on a fault-free operation, panic, or a space
// that could not be returned to a clean state). It carries everything
// needed to reproduce: the seed and the injected-fault schedule.
type FailureError struct {
	Seed   uint64
	Reason string
	Events []Event
}

func (e *FailureError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faultsim: seed %d: %s", e.Seed, e.Reason)
	if len(e.Events) > 0 {
		fmt.Fprintf(&b, "\n  injected schedule (%d faults):", len(e.Events))
		for _, ev := range e.Events {
			fmt.Fprintf(&b, "\n    %s", ev)
		}
	}
	return b.String()
}

// mnode mirrors one tree node in the pure-Go model.
type mnode struct {
	data        int64
	left, right *mnode
}

func (m *mnode) sum() int64 {
	if m == nil {
		return 0
	}
	return m.data + m.left.sum() + m.right.sum()
}

func (m *mnode) inc(delta int64) {
	if m == nil {
		return
	}
	m.data += delta
	m.left.inc(delta)
	m.right.inc(delta)
}

// graftPos walks the left spine to the first node without a left child —
// the same deterministic walk the graft handler performs remotely.
func (m *mnode) graftPos() *mnode {
	for m.left != nil {
		m = m.left
	}
	return m
}

// tree pairs a real root in the ground space with its model mirror.
type tree struct {
	root     core.Value
	model    *mnode
	poisoned bool // a failed mutating session left its real state unknown
}

// registry builds the TreeNode schema every scenario shares.
func registry() *types.Registry {
	r := types.NewRegistry()
	r.MustRegister(&types.Desc{
		ID:   nodeType,
		Name: "TreeNode",
		Fields: []types.Field{
			{Name: "left", Kind: types.Ptr, Elem: nodeType},
			{Name: "right", Kind: types.Ptr, Elem: nodeType},
			{Name: "data", Kind: types.Int64},
		},
	})
	if err := r.Validate(); err != nil {
		panic(err)
	}
	return r
}

// buildTree grows a complete binary tree in rt's local heap (no network
// involved) and returns the root alongside its model mirror. Node values
// come from rng so different trees are distinguishable.
func buildTree(rt *core.Runtime, rng *rand.Rand, levels int) (core.Value, *mnode, error) {
	var build func(level int) (core.Value, *mnode, error)
	build = func(level int) (core.Value, *mnode, error) {
		if level == 0 {
			return core.NullPtr(nodeType), nil, nil
		}
		v, err := rt.NewObject(nodeType)
		if err != nil {
			return core.Value{}, nil, err
		}
		ref, err := rt.Deref(v)
		if err != nil {
			return core.Value{}, nil, err
		}
		m := &mnode{data: int64(rng.Intn(1000))}
		if err := ref.SetInt("data", 0, m.data); err != nil {
			return core.Value{}, nil, err
		}
		lv, lm, err := build(level - 1)
		if err != nil {
			return core.Value{}, nil, err
		}
		if err := ref.SetPtr("left", 0, lv); err != nil {
			return core.Value{}, nil, err
		}
		m.left = lm
		rv, rm, err := build(level - 1)
		if err != nil {
			return core.Value{}, nil, err
		}
		if err := ref.SetPtr("right", 0, rv); err != nil {
			return core.Value{}, nil, err
		}
		m.right = rm
		return v, m, nil
	}
	return build(levels)
}

// sumTree walks a tree through the Ref API — on a remote space this is
// what drives demand fetching and its callbacks.
func sumTree(rt *core.Runtime, root core.Value) (int64, error) {
	if root.IsNullPtr() {
		return 0, nil
	}
	ref, err := rt.Deref(root)
	if err != nil {
		return 0, err
	}
	v, err := ref.Int("data", 0)
	if err != nil {
		return 0, err
	}
	for _, f := range []string{"left", "right"} {
		c, err := ref.Ptr(f, 0)
		if err != nil {
			return 0, err
		}
		s, err := sumTree(rt, c)
		if err != nil {
			return 0, err
		}
		v += s
	}
	return v, nil
}

func incTree(rt *core.Runtime, root core.Value, delta int64) error {
	if root.IsNullPtr() {
		return nil
	}
	ref, err := rt.Deref(root)
	if err != nil {
		return err
	}
	n, err := ref.Int("data", 0)
	if err != nil {
		return err
	}
	if err := ref.SetInt("data", 0, n+delta); err != nil {
		return err
	}
	for _, f := range []string{"left", "right"} {
		c, err := ref.Ptr(f, 0)
		if err != nil {
			return err
		}
		if err := incTree(rt, c, delta); err != nil {
			return err
		}
	}
	return nil
}

// registerProcs installs the workload's handlers on one runtime.
// nSpaces fixes the ring for nested calls (space i calls i%nSpaces+1).
func registerProcs(rt *core.Runtime, nSpaces int) error {
	procs := map[string]core.Handler{
		// sum: pure read — demand fetching, callbacks, closure transfer.
		"sum": func(ctx *core.Ctx, args []core.Value) ([]core.Value, error) {
			total, err := sumTree(ctx.Runtime(), args[0])
			if err != nil {
				return nil, err
			}
			return []core.Value{core.Int64Value(total)}, nil
		},
		// inc: mutate every node, then return the new sum — exercises the
		// circulating modified data set and end-of-session write-back.
		"inc": func(ctx *core.Ctx, args []core.Value) ([]core.Value, error) {
			r := ctx.Runtime()
			if err := incTree(r, args[0], args[1].Int64()); err != nil {
				return nil, err
			}
			total, err := sumTree(r, args[0])
			if err != nil {
				return nil, err
			}
			return []core.Value{core.Int64Value(total)}, nil
		},
		// graft: extended_malloc a node in the caller's space and link it
		// at the leftmost spine position.
		"graft": func(ctx *core.Ctx, args []core.Value) ([]core.Value, error) {
			r := ctx.Runtime()
			nv, err := r.ExtendedMalloc(ctx.Caller(), nodeType)
			if err != nil {
				return nil, err
			}
			nref, err := r.Deref(nv)
			if err != nil {
				return nil, err
			}
			if err := nref.SetInt("data", 0, args[1].Int64()); err != nil {
				return nil, err
			}
			at := args[0]
			for {
				ref, err := r.Deref(at)
				if err != nil {
					return nil, err
				}
				l, err := ref.Ptr("left", 0)
				if err != nil {
					return nil, err
				}
				if l.IsNullPtr() {
					return nil, ref.SetPtr("left", 0, nv)
				}
				at = l
			}
		},
		// nest: hop the call around the space ring, then sum at the last
		// hop — deep nesting with the tree's data crossing every space.
		"nest": func(ctx *core.Ctx, args []core.Value) ([]core.Value, error) {
			hops := args[1].Int64()
			if hops <= 0 {
				total, err := sumTree(ctx.Runtime(), args[0])
				if err != nil {
					return nil, err
				}
				return []core.Value{core.Int64Value(total)}, nil
			}
			next := ctx.Runtime().ID()%uint32(nSpaces) + 1
			return ctx.Call(next, "nest", []core.Value{args[0], core.Int64Value(hops - 1)})
		},
	}
	for name, h := range procs {
		if err := rt.Register(name, h); err != nil {
			return err
		}
	}
	return nil
}

// harness is the live state of one running scenario.
type harness struct {
	sc    Scenario
	rng   *rand.Rand
	chaos *Chaos
	reg   *types.Registry
	rts   []*core.Runtime // index 0 = ground (space 1)
	// crashes counts crash-restarts per space (index = space id - 1); a
	// Recovery scenario's restarted space comes back with incarnation
	// 1 + its crash count so clients can fence it. In the concurrent
	// workload each goroutine only ever touches its own slot.
	crashes []int
	trees   []*tree
	res     Result
}

func (h *harness) fail(format string, args ...any) *FailureError {
	return &FailureError{
		Seed:   h.sc.Seed,
		Reason: fmt.Sprintf(format, args...),
		Events: h.chaos.Events(),
	}
}

func (h *harness) ground() *core.Runtime { return h.rts[0] }

func (h *harness) newRuntime(id uint32) (*core.Runtime, error) {
	node, err := h.chaos.Attach(id)
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		ID:               id,
		Node:             node,
		Registry:         h.reg,
		Policy:           h.sc.Policy,
		DisableDeltaShip: h.sc.DisableDeltaShip,
		Prefetch:         h.sc.Prefetch,
		// Concurrent scenarios keep speculation on the workload
		// goroutines so each client's frame stream stays a function of
		// its own seed stream.
		SyncPrefetch:       h.sc.Concurrent && h.sc.Prefetch,
		DisableEncodeCache: !h.sc.EncodeCache,
		StreamChunkBytes:   h.sc.StreamChunkBytes,
		Concurrent:         true,
		CallTimeout:        h.sc.CallTimeout,
		CheckInvariants:    true,
	}
	if h.sc.Recovery {
		// The budget must be generous relative to CallTimeout: recovery
		// nests, so a caller's CALL attempt times out not only when its
		// own frames fault but whenever the callee is stuck absorbing
		// faults of its own (each inner retry costs a full CallTimeout).
		// 30 call timeouts stays far inside the scenario deadline while
		// covering several levels of nested absorption. The incarnation
		// (1 + this space's crash count) lets every peer fence the space
		// after a crash-restart.
		opts.RetryBudget = 30 * h.sc.CallTimeout
		opts.MaxRetries = 25
		opts.Incarnation = uint32(1 + h.crashes[id-1])
	}
	rt, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	if err := registerProcs(rt, h.sc.Spaces); err != nil {
		_ = rt.Close()
		return nil, err
	}
	return rt, nil
}

// Run executes one scenario. A nil error means the protocol survived the
// schedule: every fault either was transparent, or surfaced as a typed
// error with all spaces recovered to a clean state. A *FailureError
// means a real bug: invariant violation, silent corruption, a panic, or
// unrecoverable state.
func Run(sc Scenario) (res Result, err error) {
	if sc.Spaces < 2 {
		sc.Spaces = 2
	}
	if sc.Ops <= 0 {
		sc.Ops = 6
	}
	if sc.CallTimeout <= 0 {
		sc.CallTimeout = 100 * time.Millisecond
	}
	if sc.Concurrent {
		if sc.Spaces < 3 {
			sc.Spaces = 3 // at least two clients, or nothing overlaps
		}
		sc.Policy = core.PolicySmart
	}
	sc.Faults.Seed = sc.Seed

	h := &harness{
		sc:      sc,
		rng:     rand.New(rand.NewSource(int64(splitmix64(sc.Seed)))),
		reg:     registry(),
		crashes: make([]int, sc.Spaces),
	}
	defer func() {
		if r := recover(); r != nil {
			err = h.fail("panic: %v", r)
		}
	}()

	net, err := transport.NewNetwork(netsim.Model{}, nil, nil)
	if err != nil {
		return res, err
	}
	defer net.Close()
	h.chaos = New(net, sc.Faults)

	for i := 0; i < sc.Spaces; i++ {
		rt, err := h.newRuntime(uint32(i + 1))
		if err != nil {
			return res, err
		}
		h.rts = append(h.rts, rt)
	}
	defer func() {
		for _, rt := range h.rts {
			_ = rt.Close()
		}
	}()
	// Runs before the closes above (LIFO): fold every space's recovery
	// counters into the result so soaks and the chaos CLI can report how
	// much work the retry/replay/fence machinery actually did.
	defer func() {
		for _, rt := range h.rts {
			s := rt.Stats()
			res.Retries += s.Retries
			res.Replays += s.DedupReplays
			res.FenceTrips += s.FenceTrips
		}
	}()

	h.res.Trusted = true
	if sc.Concurrent {
		if ferr := h.runConcurrent(); ferr != nil {
			return h.res, ferr
		}
		return h.res, nil
	}

	// Seed data: a couple of ground-owned trees, built locally (no
	// network traffic, so no faults can touch the baseline).
	for i := 0; i < 2; i++ {
		root, model, err := buildTree(h.ground(), h.rng, 3+h.rng.Intn(2))
		if err != nil {
			return res, err
		}
		h.trees = append(h.trees, &tree{root: root, model: model})
	}

	for op := 0; op < sc.Ops; op++ {
		if ferr := h.runOp(op); ferr != nil {
			return h.res, ferr
		}
	}
	h.res.Faults = h.chaos.Total()
	return h.res, nil
}

// pickTree returns a healthy tree, growing a replacement locally if every
// existing one was poisoned by a failed mutating session.
func (h *harness) pickTree() (*tree, error) {
	healthy := h.trees[:0:0]
	for _, t := range h.trees {
		if !t.poisoned {
			healthy = append(healthy, t)
		}
	}
	if len(healthy) == 0 {
		root, model, err := buildTree(h.ground(), h.rng, 3)
		if err != nil {
			return nil, err
		}
		nt := &tree{root: root, model: model}
		h.trees = append(h.trees, nt)
		return nt, nil
	}
	return healthy[h.rng.Intn(len(healthy))], nil
}

// runOp runs one session (1–3 calls) plus its pre-op crash/partition
// schedule and post-op checks. Only *FailureError (or a setup error)
// comes back; protocol-level typed errors are the expected currency.
func (h *harness) runOp(op int) error {
	rng := h.rng
	h.res.Ops++

	// Crash-restart a non-ground space between sessions.
	if h.sc.Spaces > 1 && rng.Intn(1000) < h.sc.CrashPermille {
		idx := 1 + rng.Intn(h.sc.Spaces-1)
		_ = h.rts[idx].Close()
		h.crashes[idx]++
		rt, err := h.newRuntime(uint32(idx + 1))
		if err != nil {
			return h.fail("op %d: re-attach space %d after crash: %v", op, idx+1, err)
		}
		h.rts[idx] = rt
		h.res.Crashes++
	}

	// One-way partition for the duration of this op.
	partFrom, partTo := uint32(0), uint32(0)
	if rng.Intn(1000) < h.sc.PartitionPermille {
		a := uint32(1 + rng.Intn(h.sc.Spaces))
		b := uint32(1 + rng.Intn(h.sc.Spaces))
		if a != b {
			partFrom, partTo = a, b
			h.res.Partitions++
			h.chaos.PartitionOneWay(partFrom, partTo, true)
			defer h.chaos.PartitionOneWay(partFrom, partTo, false)
		}
	}

	faultsBefore := h.chaos.Total()
	ground := h.ground()

	var opTrees []*tree
	opMutates := false
	opErr := ground.BeginSession()
	if opErr == nil {
		nCalls := 1 + rng.Intn(3)
		for c := 0; c < nCalls && opErr == nil; c++ {
			tr, err := h.pickTree()
			if err != nil {
				return h.fail("op %d: grow replacement tree: %v", op, err)
			}
			opTrees = append(opTrees, tr)
			target := uint32(2 + rng.Intn(h.sc.Spaces-1))
			switch rng.Intn(5) {
			case 0: // read
				var res []core.Value
				res, opErr = ground.Call(target, "sum", []core.Value{tr.root})
				if opErr == nil && h.res.Trusted {
					h.res.Verified++
					if got, want := res[0].Int64(), tr.model.sum(); got != want {
						return h.fail("op %d: sum = %d, want %d (tree silently corrupted)", op, got, want)
					}
				}
			case 1: // mutate
				opMutates = true
				delta := int64(1 + rng.Intn(9))
				var res []core.Value
				res, opErr = ground.Call(target, "inc", []core.Value{tr.root, core.Int64Value(delta)})
				if opErr == nil {
					tr.model.inc(delta)
					if h.res.Trusted {
						h.res.Verified++
						if got, want := res[0].Int64(), tr.model.sum(); got != want {
							return h.fail("op %d: inc sum = %d, want %d", op, got, want)
						}
					}
				}
			case 2: // extended_malloc + link
				opMutates = true
				val := int64(rng.Intn(1000))
				_, opErr = ground.Call(target, "graft", []core.Value{tr.root, core.Int64Value(val)})
				if opErr == nil {
					tr.model.graftPos().left = &mnode{data: val}
				}
			case 3: // nested ring call
				hops := int64(1 + rng.Intn(h.sc.Spaces))
				var res []core.Value
				res, opErr = ground.Call(target, "nest", []core.Value{tr.root, core.Int64Value(hops)})
				if opErr == nil && h.res.Trusted {
					h.res.Verified++
					if got, want := res[0].Int64(), tr.model.sum(); got != want {
						return h.fail("op %d: nested sum = %d, want %d", op, got, want)
					}
				}
			case 4: // extended_malloc / extended_free round trip, unlinked
				opMutates = true
				var v core.Value
				v, opErr = ground.ExtendedMalloc(target, nodeType)
				if opErr == nil {
					var ref core.Ref
					ref, opErr = ground.Deref(v)
					if opErr == nil {
						opErr = ref.SetInt("data", 0, 77)
					}
					if opErr == nil && rng.Intn(2) == 0 {
						opErr = ground.ExtendedFree(v)
					}
				}
			}
		}
	}
	if opErr == nil {
		opErr = ground.EndSession()
	}

	if opErr != nil {
		return h.recoverOp(op, opErr, faultsBefore, opTrees, opMutates, partFrom != 0)
	}

	// Clean end: every space must be idle-clean and the network
	// coherency-consistent — regardless of what faults were injected
	// (they were all absorbed or retransparent).
	if ferr := h.checkAllIdle(op, "after clean session end"); ferr != nil {
		return ferr
	}
	if err := core.CheckNetworkInvariants(nil, h.rts); err != nil {
		return h.fail("op %d: network invariants after clean end: %v", op, err)
	}
	return nil
}

// recoverOp classifies a failed operation and drives recovery. The error
// is acceptable only if it is an ordinary typed error AND something
// abnormal actually happened to this op (an injected fault, a partition,
// or a tree already poisoned by an earlier failure); a fault-free error
// is a bug. Invariant violations are always bugs.
func (h *harness) recoverOp(op int, opErr error, faultsBefore uint64, opTrees []*tree, opMutates, partitioned bool) error {
	if errors.Is(opErr, core.ErrInvariant) {
		return h.fail("op %d: invariant violation: %v", op, opErr)
	}
	poisonedInput := false
	for _, t := range opTrees {
		if t.poisoned {
			poisonedInput = true
		}
	}
	// An incarnation fence is the recovery machinery doing its job: a
	// crash-restart is abnormal even though it is not an injected chaos
	// fault, so a fence error is acceptable whenever some space actually
	// crashed this run. Without a crash it is a bug like any other
	// fault-free failure.
	fenced := errors.Is(opErr, core.ErrOriginRestarted) && h.res.Crashes > 0
	if h.chaos.Total() == faultsBefore && !partitioned && !poisonedInput && !fenced {
		return h.fail("op %d: failed with no fault injected: %v", op, opErr)
	}
	if os.Getenv("CHAOS_DEBUG") != "" {
		fmt.Fprintf(os.Stderr, "seed %d op %d failed: %v\n", h.sc.Seed, op, opErr)
	}
	h.res.Errors++
	if opMutates {
		// The session died with mutations possibly half-applied; the
		// trees it touched can no longer be checked against the model.
		h.res.Trusted = false
		for _, t := range opTrees {
			t.poisoned = true
		}
	}

	// Let any handler still blocked on a partitioned or dropped round
	// trip hit its own deadline and unwind, then tear every space down
	// and verify the network returns to a clean state. Frames still in
	// flight can re-populate a space after its abort, so abort-and-check
	// retries a few times before declaring the state unrecoverable.
	time.Sleep(3 * h.sc.CallTimeout)
	h.chaos.Drain()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, rt := range h.rts {
			rt.AbortSession()
		}
		ferr := h.checkAllIdle(op, "after abort recovery")
		if ferr == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return ferr
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (h *harness) checkAllIdle(op int, when string) *FailureError {
	for _, rt := range h.rts {
		if err := rt.CheckIdleInvariants(); err != nil {
			return h.fail("op %d: space %d %s: %v", op, rt.ID(), when, err)
		}
		// A quiescent space must have drained its in-flight fetch registry:
		// a leaked entry means a dropped or corrupted (possibly speculative)
		// exchange wedged a (page, origin) slot forever.
		if n := rt.InflightFetches(); n != 0 {
			return h.fail("op %d: space %d %s: %d in-flight fetch registry entries leaked",
				op, rt.ID(), when, n)
		}
	}
	return nil
}

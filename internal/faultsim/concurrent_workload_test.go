package faultsim

import (
	"testing"
)

// TestConcurrentFaultFreeLinearizable: with no faults configured, every
// concurrent session must commit and the recorded multi-client history
// must be linearizable (the checker runs inside Run; an error here is a
// real coherency bug, not an injection artifact).
func TestConcurrentFaultFreeLinearizable(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		sc := DefaultScenario(seed)
		sc.Concurrent = true
		sc.Faults = Config{}
		sc.CrashPermille = 0
		sc.PartitionPermille = 0
		sc.Ops = 6
		res, err := RunWithTimeout(sc, scenarioTimeout)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Errors != 0 {
			t.Errorf("seed %d: %d errored sessions in a fault-free concurrent run", seed, res.Errors)
		}
		if res.Verified == 0 {
			t.Errorf("seed %d: history checker verified zero operations", seed)
		}
		if res.Faults != 0 {
			t.Errorf("seed %d: %d faults injected with zero config", seed, res.Faults)
		}
	}
}

// TestConcurrentChaosSoak forces the concurrent workload under the full
// default fault mix (drops, dups, corruption, delays, per-client
// crash-restarts and partitions): sessions may fail with typed errors,
// but the surviving history must still be linearizable and every space
// must quiesce to idle-clean.
func TestConcurrentChaosSoak(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 4
	}
	var ops, errs, verified int
	var faults uint64
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		sc := DefaultScenario(seed)
		sc.Concurrent = true
		if sc.Spaces < 3 {
			sc.Spaces = 3
		}
		res, err := RunWithTimeout(sc, scenarioTimeout)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ops += res.Ops
		errs += res.Errors
		verified += res.Verified
		faults += res.Faults
	}
	t.Logf("concurrent soak: %d seeds, %d sessions, %d typed errors, %d checked ops, %d faults injected",
		seeds, ops, errs, verified, faults)
	if faults == 0 {
		t.Error("concurrent soak injected zero faults — fault mix is miswired")
	}
	if verified == 0 {
		t.Error("concurrent soak verified zero operations — history oracle is miswired")
	}
}
